package turbo_test

import (
	"testing"
	"time"

	"turbo"
	"turbo/internal/eval"
	"turbo/internal/feature"
	"turbo/internal/gnn"
)

// TestPublicFacade exercises the root package exactly the way the README
// quick start shows: create a system, attach a model, stream behavior,
// register an application, audit.
func TestPublicFacade(t *testing.T) {
	t0 := time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC)
	sys, err := turbo.New(turbo.Config{}, t0)
	if err != nil {
		t.Fatal(err)
	}
	dim := 2 + feature.NumStatFeatures()
	model := gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 1})
	sys.SetModel(model, nil)

	sys.Ingest(turbo.Log{User: 1, Type: turbo.DeviceID, Value: "dev", Time: t0.Add(time.Minute)})
	sys.Ingest(turbo.Log{User: 2, Type: turbo.DeviceID, Value: "dev", Time: t0.Add(2 * time.Minute)})
	for u := turbo.UserID(1); u <= 2; u++ {
		if err := sys.RegisterApplication(u, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Advance(t0.Add(26 * time.Hour))

	pred, err := sys.Audit(1, t0.Add(27*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if pred.SubgraphNodes != 2 {
		t.Fatalf("shared device should connect the users: %d nodes", pred.SubgraphNodes)
	}
}

// TestFacadeTypeConstants pins the re-exported Table I constants to the
// behavior package values.
func TestFacadeTypeConstants(t *testing.T) {
	if turbo.DeviceID != 0 || turbo.Workplace != 9 {
		t.Fatal("behavior type constants re-exported wrong")
	}
	if turbo.BehaviorType(turbo.IMEI).String() != "IMEI" {
		t.Fatal("type alias broken")
	}
}

// TestFacadeWithTrainedHAG runs the README flow with a real (tiny) HAG.
func TestFacadeWithTrainedHAG(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	a := benchAssembled() // tiny assembled world shared with benches
	h := benchHyper()
	h.Epochs = 20
	model, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)

	sys, err := turbo.New(turbo.Config{Threshold: 0.85}, a.Data.Start)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetModel(model, a.Norm.Apply)
	sys.IngestBatch(a.Data.Logs)
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			t.Fatal(err)
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))

	var fraudSum, fraudN, normSum, normN float64
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if i%7 != 0 { // sample for speed
			continue
		}
		pred, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if u.Fraud {
			fraudSum += pred.Probability
			fraudN++
		} else {
			normSum += pred.Probability
			normN++
		}
	}
	if fraudN == 0 || normN == 0 {
		t.Skip("sample missed a class")
	}
	if fraudSum/fraudN <= normSum/normN {
		t.Fatalf("online HAG scores do not separate: fraud %v vs normal %v",
			fraudSum/fraudN, normSum/normN)
	}
}
