// Package turbo is the public entry point of this repository — a Go
// reproduction of "Turbo: Fraud Detection in Deposit-free Leasing
// Service via Real-Time Behavior Network Mining" (ICDE 2021).
//
// The package re-exports the end-to-end system facade. A Turbo system
// ingests user behavior logs, maintains the time-evolving heterogeneous
// Behavior Network (BN, §III) with hierarchical time windows and inverse
// weight assignment, serves profile/transaction/statistical features,
// and answers real-time audit requests with the HAG graph neural
// network (§IV).
//
//	sys, err := turbo.New(turbo.Config{}, time.Now())
//	sys.SetModel(trainedHAG, normalizer)
//	sys.Ingest(turbo.Log{User: 42, Type: turbo.DeviceID, Value: "dev-1", Time: time.Now()})
//	sys.RegisterApplication(42, features)
//	pred, err := sys.Audit(42, time.Now())
//
// Deeper building blocks live in the internal packages: internal/bn
// (Algorithm 1), internal/hag (SAO + CFO), internal/gnn (baseline GNNs
// and training), internal/eval (the experiment harness regenerating
// every table and figure of the paper), internal/datagen (the synthetic
// Jimi-like world). See DESIGN.md for the full inventory.
package turbo

import (
	"time"

	"turbo/internal/behavior"
	"turbo/internal/core"
)

// System is a running Turbo instance (BN server + feature management +
// prediction server, Fig. 2).
type System = core.System

// Config parameterizes a Turbo system.
type Config = core.Config

// Log is one user behavior record [uid, r, s, t].
type Log = behavior.Log

// UserID identifies a user.
type UserID = behavior.UserID

// BehaviorType enumerates the Table I behavior (= BN edge) types.
type BehaviorType = behavior.Type

// The Table I behavior types.
const (
	DeviceID  = behavior.DeviceID
	IMEI      = behavior.IMEI
	IMSI      = behavior.IMSI
	IPv4      = behavior.IPv4
	WiFiMAC   = behavior.WiFiMAC
	GPS       = behavior.GPS
	GPS100    = behavior.GPS100
	GPSDev    = behavior.GPSDev
	GPSDev100 = behavior.GPSDev100
	Workplace = behavior.Workplace
)

// New creates a Turbo system anchored at t0; attach a trained model with
// SetModel before serving audits.
func New(cfg Config, t0 time.Time) (*System, error) { return core.New(cfg, t0) }
