module turbo

go 1.22
