// Model management (Fig. 2's fourth component): serve audits while the
// model manager retrains HAG in the background on the accumulating data
// and hot-swaps it into the prediction server, as the paper's deployment
// does daily.
//
//	go run ./examples/retraining
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/gnn"
)

func main() {
	log.SetFlags(0)

	cfg := datagen.Tiny()
	a := eval.Assemble(cfg, eval.AssembleOptions{})
	h := eval.Hyper{Hidden: []int{16, 8}, AttHidden: 8, MLPHidden: 8, Epochs: 30, LR: 1e-2}

	// Day 0: an initial model goes live.
	initial, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
	sys, err := core.New(core.Config{Threshold: 0.85}, a.Data.Start)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetModel(initial, a.Norm.Apply)
	sys.IngestBatch(a.Data.Logs)
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			log.Fatal(err)
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))
	fmt.Println("initial HAG model serving")

	// The "daily" retrain: here every 300 ms with a fresh seed so the
	// swap is observable.
	var seed uint64 = 1
	train := func() (gnn.Model, func([]float64) []float64, error) {
		seed++
		fmt.Printf("  retraining (seed %d)…\n", seed)
		m, _ := eval.TrainHAG(a, eval.HAGFull, h, seed)
		return m, a.Norm.Apply, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	mgr, err := sys.StartRetraining(ctx, 300*time.Millisecond, train)
	if err != nil {
		log.Fatal(err)
	}

	// Keep auditing while retrains happen underneath.
	u := &a.Data.Users[0]
	deadline := time.Now().Add(3 * time.Second)
	audits := 0
	for time.Now().Before(deadline) {
		if _, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour)); err != nil {
			log.Fatal(err)
		}
		audits++
	}
	cancel()
	retrains, lastSwap, lastErr := mgr.Status()
	fmt.Printf("served %d audits during %d hot swaps (last %s ago, err=%v)\n",
		audits, retrains, time.Since(lastSwap).Round(time.Millisecond), lastErr)
}
