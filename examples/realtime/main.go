// Real-time serving (Fig. 2 end to end): train HAG offline, stand up a
// live Turbo system, replay a fresh stream of users through it — ingest
// logs, register applications, run the scheduled BN window jobs — and
// audit each application 24 h after it is filed, printing the §V
// latency digests at the end.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"time"

	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/eval"
)

func main() {
	log.SetFlags(0)

	// Offline: train on history.
	histCfg := datagen.Tiny()
	hist := eval.Assemble(histCfg, eval.AssembleOptions{})
	h := eval.Hyper{Hidden: []int{16, 8}, AttHidden: 8, MLPHidden: 8, Epochs: 60, LR: 1e-2}
	model, _ := eval.TrainHAG(hist, eval.HAGFull, h, 1)
	fmt.Println("offline: HAG trained on historical world")

	// Online: a fresh live world streams through the system.
	liveCfg := histCfg
	liveCfg.Seed = 1234
	liveCfg.Users = 120
	live := datagen.Generate(liveCfg)

	sys, err := core.New(core.Config{Threshold: 0.85}, live.Start)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetModel(model, hist.Norm.Apply)

	// Stream ingestion (bulk here; Ingest(l) is the per-event path).
	sys.IngestBatch(live.Logs)
	for i := range live.Users {
		u := &live.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			log.Fatal(err)
		}
	}
	// The scheduler tick materializes BN edges from the ingested logs and
	// republishes the BN server's immutable read snapshot: every audit
	// below samples its 2-hop subgraph from that epoch, lock-free, while
	// any further ingestion would keep mutating the live sharded graph.
	// Until the next Advance, audits see the BN as of this tick.
	jobs := sys.Advance(live.End.Add(48 * time.Hour))
	fmt.Printf("online: %d window jobs ran; live BN has %d edges\n",
		jobs, sys.BNServer().Graph().NumEdges())

	// Audit every application at its audit time (application + 24 h).
	var blocked, blockedFraud, totalFraud int
	for i := range live.Users {
		u := &live.Users[i]
		pred, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour))
		if err != nil {
			log.Fatal(err)
		}
		if u.Fraud {
			totalFraud++
		}
		if pred.Fraud {
			blocked++
			if u.Fraud {
				blockedFraud++
			}
		}
	}
	fmt.Printf("audited %d applications: blocked %d (%d true fraud of %d total fraud)\n",
		len(live.Users), blocked, blockedFraud, totalFraud)

	fmt.Println("\nlatency digests (§V):")
	for name, s := range sys.PredictionServer().LatencySummaries() {
		fmt.Printf("  %-9s %v\n", name, s)
	}
}
