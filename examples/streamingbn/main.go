// Streaming BN construction (§III-A + §V): feed behavior logs day by
// day into the BN server, run the hierarchical-window jobs as simulated
// time advances, and watch edges appear from co-occurrences and expire
// under the 60-day TTL.
//
//	go run ./examples/streamingbn
package main

import (
	"fmt"
	"log"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/datagen"
	"turbo/internal/server"
)

func main() {
	log.SetFlags(0)

	cfg := datagen.Tiny()
	cfg.Duration = 200 * 24 * time.Hour
	world := datagen.Generate(cfg)
	fmt.Printf("replaying %d logs from %d users over %v\n",
		len(world.Logs), len(world.Users), cfg.Duration)

	// A short TTL makes expiry visible within the replay window.
	bnServer, err := server.NewBNServer(bn.Config{TTL: 30 * 24 * time.Hour}, world.Start)
	if err != nil {
		log.Fatal(err)
	}

	// Bucket logs by day so the replay is chronological.
	byDay := make(map[int][]behavior.Log)
	for _, l := range world.Logs {
		day := int(l.Time.Sub(world.Start).Hours() / 24)
		byDay[day] = append(byDay[day], l)
	}

	days := int(cfg.Duration.Hours()/24) + 1
	fmt.Printf("%8s %10s %10s %10s\n", "day", "logs", "edges", "jobs")
	var totalJobs int
	for day := 0; day <= days; day++ {
		bnServer.IngestBatch(byDay[day])
		now := world.Start.Add(time.Duration(day+1) * 24 * time.Hour)
		totalJobs += bnServer.Advance(now)
		if day%20 == 0 {
			fmt.Printf("%8d %10d %10d %10d\n",
				day, bnServer.Store().Len(), bnServer.Graph().NumEdges(), totalJobs)
		}
	}

	stats := bnServer.Graph().Stats()
	fmt.Printf("\nfinal BN: %d nodes, %d edges\n", stats.Nodes, stats.Edges)
	fmt.Println("edges per behavior type:")
	for t, c := range stats.EdgesByType {
		if c > 0 {
			fmt.Printf("  %-10s %d\n", behavior.Type(t), c)
		}
	}

	// Fast-forward past the TTL: the graph drains.
	future := world.End.Add(60 * 24 * time.Hour)
	bnServer.Advance(future)
	fmt.Printf("\nafter %v of silence (TTL %v): %d edges remain\n",
		60*24*time.Hour, 30*24*time.Hour, bnServer.Graph().NumEdges())
}
