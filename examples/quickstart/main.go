// Quickstart: generate a small synthetic leasing world, build the
// behavior network, train HAG, and score a few applications.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/gnn"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a synthetic world: users, fraud rings, behavior logs.
	cfg := datagen.Tiny()
	fmt.Printf("generating %q: %d users…\n", cfg.Name, cfg.Users)

	// 2. Assemble: behavior store → BN (Algorithm 1) → features → split.
	a := eval.Assemble(cfg, eval.AssembleOptions{})
	fmt.Printf("BN: %d nodes, %d edges across %d behavior types\n",
		a.Graph.NumNodes(), a.Graph.NumEdges(), a.Graph.NumEdgeTypes())

	// 3. Train HAG (SAO + CFO) on the training split.
	h := eval.Hyper{Hidden: []int{24, 12}, AttHidden: 12, MLPHidden: 8, Epochs: 120, LR: 1e-2}
	model, batch := eval.TrainHAG(a, eval.HAGFull, h, 1)

	// 4. Evaluate on the held-out 20%.
	scores := gnn.Scores(model, batch)
	report := a.EvaluateScores(scores, 0.5)
	fmt.Printf("test split: %v\n", report)

	// 5. Score a few individual applications.
	fmt.Println("\nsample predictions:")
	shown := 0
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if !u.Fraud && shown%2 == 0 {
			continue // alternate fraud/normal for the demo
		}
		fmt.Printf("  user %4d  fraud=%-5v  P(fraud)=%.3f\n", u.ID, u.Fraud, scores[i])
		shown++
		if shown >= 6 {
			break
		}
	}
}
