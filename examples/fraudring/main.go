// Fraud-ring case study (the Fig. 9 scenario): train HAG on a synthetic
// world, pick the most suspicious fraud node, visualize its computation
// subgraph as Graphviz DOT, and print the influence-distribution heat
// map showing that fraud nodes influence each other more than background
// pairs.
//
//	go run ./examples/fraudring > ring.dot-and-heatmap.txt
package main

import (
	"fmt"
	"log"
	"os"

	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/graph"
)

func main() {
	log.SetFlags(0)

	cfg := datagen.Tiny()
	cfg.Seed = 99
	a := eval.Assemble(cfg, eval.AssembleOptions{})
	fmt.Printf("world: %d users, %d fraud, BN %d edges\n",
		len(a.Data.Users), a.Data.Positives(), a.Graph.NumEdges())

	h := eval.Hyper{Hidden: []int{16, 8}, AttHidden: 8, MLPHidden: 8, Epochs: 60, LR: 1e-2}
	cs := eval.RunCaseStudy(a, h, 1, 5)

	// The influence heat map of Definition 1 (Fig. 9b): columns are
	// nodes; fraud-to-fraud influence should exceed the background.
	fmt.Println()
	fmt.Print(cs.String())

	intra, background := cs.MeanIntraFraudInfluence()
	if intra > background {
		fmt.Printf("\n✓ fraud nodes influence each other %.1f× more than background pairs\n",
			intra/background)
	}

	// Graphviz rendering of the ring neighborhood (Fig. 9a).
	f, err := os.Create("ring.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	classOf := func(n graph.NodeID) int {
		if a.Bools[int(n)] {
			return 1
		}
		return 0
	}
	if err := cs.Subgraph.WriteDOT(f, "fraud-ring", classOf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote ring.dot — render with: dot -Tpng ring.dot -o ring.png")
}
