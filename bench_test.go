// Benchmarks regenerating every table and figure of the paper (see the
// DESIGN.md experiment index) plus ablation benches for the design
// choices §III-A calls out, and micro-benchmarks of the hot paths.
//
// Experiment benches run on the tiny preset so `go test -bench=.` stays
// tractable; the full-size runs live in cmd/turbo-bench. Each bench logs
// the artifact it regenerates, so `-bench=. -benchtime=1x -v` doubles as
// a miniature reproduction report.
package turbo_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turbo/internal/baselines"
	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/hag"
	"turbo/internal/server"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

var (
	benchOnce sync.Once
	benchA    *eval.Assembled
)

func benchAssembled() *eval.Assembled {
	benchOnce.Do(func() {
		benchA = eval.Assemble(datagen.Tiny(), eval.AssembleOptions{})
	})
	return benchA
}

func benchHyper() eval.Hyper {
	return eval.Hyper{Hidden: []int{12, 6}, AttHidden: 6, MLPHidden: 6, Epochs: 40, LR: 1e-2}
}

// --- Tables ------------------------------------------------------------------

// BenchmarkTable2DatasetStats regenerates Table II (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := eval.Assemble(datagen.Tiny(), eval.AssembleOptions{})
		st := a.Graph.Stats()
		if i == 0 {
			b.Logf("Table II: #node=%d #positive=%d #edge=%d", st.Nodes, a.Data.Positives(), st.Edges)
		}
	}
}

// BenchmarkTable3MethodComparison regenerates Table III (all methods).
func BenchmarkTable3MethodComparison(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := eval.Table3(a, h, []uint64{1})
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkTable4LargeDataset regenerates Table IV (G-SAGE vs HAG on D2).
func BenchmarkTable4LargeDataset(b *testing.B) {
	a2 := eval.Assemble(datagen.D2(400), eval.AssembleOptions{})
	h := benchHyper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := eval.Table4(a2, h, []uint64{1})
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkTable5OperatorAblation regenerates Table V (SAO/CFO ablation).
func BenchmarkTable5OperatorAblation(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := eval.Table5(a, h, []uint64{1})
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// --- Figures -----------------------------------------------------------------

// BenchmarkFigure4TimeBurst regenerates the Fig. 4a/4b series.
func BenchmarkFigure4TimeBurst(b *testing.B) {
	a := benchAssembled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normal, fraud := a.BurstConcentration(36 * time.Hour)
		if i == 0 {
			b.Logf("Fig 4a/b: logs within ±36h of application — normal %.1f%%, fraud %.1f%%",
				100*normal, 100*fraud)
		}
	}
}

// BenchmarkFigure4TemporalAggregation regenerates Fig. 4c.
func BenchmarkFigure4TemporalAggregation(b *testing.B) {
	a := benchAssembled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normal, fraud := a.TemporalAggregation(14, 5000)
		if i == 0 {
			b.Logf("Fig 4c: <3d pair share (IPv4) — normal %.1f%%, fraud %.1f%%",
				100*normal[behavior.IPv4].ShortIntervalShare(3),
				100*fraud[behavior.IPv4].ShortIntervalShare(3))
		}
	}
}

// BenchmarkFigure4Homophily regenerates Fig. 4d–g.
func BenchmarkFigure4Homophily(b *testing.B) {
	a := benchAssembled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a.Homophily(3, 50, -1)
		if i == 0 {
			b.Logf("Fig 4d: fraud-neighbor ratio by hop — normal %v, fraud %v", s.Normal, s.Fraud)
		}
	}
}

// BenchmarkFigure4StructuralDifference regenerates Fig. 4h/4i.
func BenchmarkFigure4StructuralDifference(b *testing.B) {
	a := benchAssembled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dw := a.StructuralDifference(3, 50, true)
		if i == 0 {
			b.Logf("Fig 4i: weighted degree by hop — normal %v, fraud %v", dw.Normal, dw.Fraud)
		}
	}
}

// BenchmarkFigure7EdgeTypeAblation regenerates Fig. 7 (per-type AUC drop).
func BenchmarkFigure7EdgeTypeAblation(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	h.Epochs = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.Figure7(a, h, 1)
		if i == 0 {
			b.Logf("\n%s", eval.RenderFigure7(res))
		}
	}
}

// BenchmarkFigure8ResponseTime regenerates Fig. 8a (module latencies).
func BenchmarkFigure8ResponseTime(b *testing.B) {
	a := benchAssembled()
	model, _ := eval.TrainHAG(a, eval.HAGFull, benchHyper(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := eval.RunResponseTimeStudy(a, model, 50, 1)
		if i == 0 {
			var total time.Duration
			for _, d := range series.Total {
				total += d
			}
			b.Logf("Fig 8a: mean end-to-end audit latency %v over %d requests",
				total/time.Duration(len(series.Total)), len(series.Total))
		}
	}
}

// BenchmarkFigure8Scalability regenerates Fig. 8b (size sweep).
func BenchmarkFigure8Scalability(b *testing.B) {
	h := benchHyper()
	h.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := eval.RunScalability(datagen.Tiny(), []int{1, 2}, h, 1)
		if i == 0 {
			b.Logf("\n%s", eval.RenderScalability(points))
		}
	}
}

// BenchmarkSection5CacheOptimization regenerates the §V latency study.
func BenchmarkSection5CacheOptimization(b *testing.B) {
	h := benchHyper()
	h.Epochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := eval.RunLatencyStudy(datagen.Tiny(), eval.LatencyOptions{
			Requests: 40, DBLatency: 2 * time.Millisecond, Hyper: h,
		})
		if i == 0 {
			b.Logf("§V: cold mean %v vs warm mean %v",
				study.Cold["total"].Mean, study.Warm["total"].Mean)
		}
	}
}

// BenchmarkFigure9Influence regenerates the Fig. 9 influence heat map.
func BenchmarkFigure9Influence(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	h.Epochs = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := eval.RunCaseStudy(a, h, 1, 4)
		if i == 0 {
			intra, back := cs.MeanIntraFraudInfluence()
			b.Logf("Fig 9: intra-fraud influence %.4f vs background %.4f", intra, back)
		}
	}
}

// BenchmarkOnlineABTest regenerates the §VI-E online A/B simulation.
func BenchmarkOnlineABTest(b *testing.B) {
	h := benchHyper()
	for i := 0; i < b.N; i++ {
		res := eval.RunABTest(datagen.Tiny(), h, 1)
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// --- Ablation benches for DESIGN.md §5 design choices -------------------------

// ablationAUC assembles with the given BN config and returns HAG test AUC.
func ablationAUC(b *testing.B, bnCfg bn.Config, raw bool) float64 {
	b.Helper()
	a := eval.Assemble(datagen.Tiny(), eval.AssembleOptions{BN: bnCfg})
	h := benchHyper()
	var batch *gnn.Batch
	if raw {
		batch = a.FullBatchRaw()
	} else {
		batch = a.FullBatch()
	}
	m := eval.NewHAG(eval.HAGFull, hagConfig(h, batch.X.Cols, a.Graph.NumEdgeTypes()))
	gnn.Train(m, batch, a.TrainIdx, a.Labels, gnn.TrainConfig{
		Epochs: h.Epochs, LR: h.LR, BalanceClasses: true, Seed: 1,
	})
	return a.EvaluateScores(gnn.Scores(m, batch), 0.5).AUC
}

func hagConfig(h eval.Hyper, in, types int) hag.Config {
	return hag.Config{
		InDim:        in,
		NumEdgeTypes: types,
		Hidden:       h.Hidden,
		AttHidden:    h.AttHidden,
		MLPHidden:    h.MLPHidden,
		Seed:         1,
	}
}

// BenchmarkAblationInverseWeights compares inverse weight assignment
// against uniform co-occurrence weights.
func BenchmarkAblationInverseWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inv := ablationAUC(b, bn.Config{}, false)
		uni := ablationAUC(b, bn.Config{UniformWeights: true}, false)
		if i == 0 {
			b.Logf("inverse weights AUC %.4f vs uniform %.4f", inv, uni)
		}
	}
}

// BenchmarkAblationHierarchicalWindows compares the full window
// hierarchy against a single 1-day window.
func BenchmarkAblationHierarchicalWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hier := ablationAUC(b, bn.Config{}, false)
		single := ablationAUC(b, bn.Config{Windows: []time.Duration{24 * time.Hour}}, false)
		if i == 0 {
			b.Logf("hierarchical windows AUC %.4f vs single 1d window %.4f", hier, single)
		}
	}
}

// BenchmarkAblationNormalization compares §III-A symmetric edge-weight
// normalization against raw weights.
func BenchmarkAblationNormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		norm := ablationAUC(b, bn.Config{}, false)
		raw := ablationAUC(b, bn.Config{}, true)
		if i == 0 {
			b.Logf("normalized AUC %.4f vs raw weights %.4f", norm, raw)
		}
	}
}

// --- Micro-benchmarks of hot paths --------------------------------------------

// BenchmarkBNConstruction measures Algorithm 1 over the tiny world.
func BenchmarkBNConstruction(b *testing.B) {
	world := datagen.Generate(datagen.Tiny())
	store := world.Store()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.New(behavior.NumTypes)
		builder, err := bn.NewBuilder(bn.Config{}, store, g, world.Start)
		if err != nil {
			b.Fatal(err)
		}
		builder.BuildRange(world.Start, world.End)
	}
}

// BenchmarkSubgraphSampling measures 2-hop computation-subgraph
// extraction (the BN server's per-request graph work).
func BenchmarkSubgraphSampling(b *testing.B) {
	a := benchAssembled()
	rng := tensor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := a.Nodes[rng.Intn(len(a.Nodes))]
		a.Graph.Sample(u, graph.SampleOptions{Hops: 2, MaxNeighbors: 32})
	}
}

// buildBenchGraph constructs a live BN over the tiny world and returns
// it with the node list.
func buildBenchGraph(b *testing.B) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	world := datagen.Generate(datagen.Tiny())
	g := graph.New(behavior.NumTypes)
	builder, err := bn.NewBuilder(bn.Config{}, world.Store(), g, world.Start)
	if err != nil {
		b.Fatal(err)
	}
	builder.BuildRange(world.Start, world.End)
	nodes := make([]graph.NodeID, len(world.Users))
	for i := range world.Users {
		nodes[i] = graph.NodeID(world.Users[i].ID)
	}
	return g, nodes
}

// BenchmarkGraphSnapshotSample compares subgraph sampling through the
// two GraphView implementations — the live sharded graph (per-call shard
// RLocks) and an immutable snapshot (zero locks) — under parallel
// readers. The snapshot path is the one the BN server serves predictions
// from.
func BenchmarkGraphSnapshotSample(b *testing.B) {
	g, nodes := buildBenchGraph(b)
	snap := g.Snapshot()
	for _, bc := range []struct {
		name string
		view graph.GraphView
	}{{"live", g}, {"snapshot", snap}} {
		b.Run(bc.name, func(b *testing.B) {
			var seed atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				rng := tensor.NewRNG(seed.Add(1))
				for pb.Next() {
					u := nodes[rng.Intn(len(nodes))]
					bc.view.Sample(u, graph.SampleOptions{Hops: 2, MaxNeighbors: 32})
				}
			})
		})
	}
}

// BenchmarkConcurrentIngestPredict measures the Fig. 2 contention
// scenario: one writer goroutine keeps mutating the BN (edge upserts
// plus periodic Advance ticks that republish the snapshot) while
// GOMAXPROCS reader goroutines serve Sample requests from the current
// snapshot. Reader throughput should scale with goroutines because the
// prediction path takes no graph mutex; compare ns/op against
// BenchmarkGraphSnapshotSample/snapshot to see the residual cost.
func BenchmarkConcurrentIngestPredict(b *testing.B) {
	world := datagen.Generate(datagen.Tiny())
	bnServer, err := server.NewBNServer(bn.Config{}, world.Start)
	if err != nil {
		b.Fatal(err)
	}
	bnServer.IngestBatch(world.Logs)
	for i := range world.Users {
		bnServer.RegisterTransaction(world.Users[i].ID)
	}
	bnServer.Advance(world.End)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() { // window-job writer: upserts + epoch republication
		defer close(writerDone)
		g := bnServer.Graph()
		// Re-accumulate weight onto the existing edge set (what repeated
		// window jobs do), keeping topology — and thus sampling cost —
		// constant so the benchmark isolates lock contention.
		es := g.Edges()
		if len(es) == 0 {
			return
		}
		never := world.End.Add(10000 * time.Hour)
		tick := world.End
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := es[i%len(es)]
			_ = g.AddEdgeWeight(e.Type, e.U, e.V, 1e-9, never)
			if i%4096 == 4095 {
				tick = tick.Add(time.Hour)
				bnServer.Advance(tick)
			}
		}
	}()

	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := tensor.NewRNG(100 + seed.Add(1))
		for pb.Next() {
			bnServer.Sample(world.Users[rng.Intn(len(world.Users))].ID)
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkHAGInference measures one HAG forward pass on a sampled
// computation subgraph (the prediction server's per-request model work).
func BenchmarkHAGInference(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	model, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
	sg := a.Graph.Sample(a.Nodes[0], graph.SampleOptions{Hops: 2, MaxNeighbors: 32})
	x := tensor.New(sg.NumNodes(), a.X.Cols)
	for i, n := range sg.Nodes {
		copy(x.Row(i), a.X.Row(int(n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gnn.Score(model, gnn.NewBatch(sg, x))
	}
}

// BenchmarkHAGTrainEpoch measures one full-graph training epoch.
func BenchmarkHAGTrainEpoch(b *testing.B) {
	a := benchAssembled()
	h := benchHyper()
	batch := a.FullBatch()
	m := eval.NewHAG(eval.HAGFull, hagConfig(h, batch.X.Cols, a.Graph.NumEdgeTypes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gnn.Train(m, batch, a.TrainIdx, a.Labels, gnn.TrainConfig{Epochs: 1, LR: h.LR, Seed: 1})
	}
}

// BenchmarkFeatureVector measures one cold feature-vector computation.
func BenchmarkFeatureVector(b *testing.B) {
	a := benchAssembled()
	u := a.Data.Users[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Feat.Vector(u.ID, u.AppTime.Add(24*time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTFit measures the boosted-tree baseline fit.
func BenchmarkGBDTFit(b *testing.B) {
	a := benchAssembled()
	x := a.FeatureRows(a.TrainIdx)
	y := a.LabelsAt(a.TrainIdx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &baselines.GBDT{Trees: 30, Balance: true, Seed: 1}
		clf.Fit(x, y)
	}
}

// BenchmarkMatMul measures the dense kernel under the GNN's typical
// shape (N×F by F×H).
func BenchmarkMatMul(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(2000, 26, 1, rng)
	w := tensor.RandNormal(26, 64, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(w)
	}
}

// BenchmarkScoreEveryoneNaive re-scores every user of the BN the way the
// serving path would if asked one user at a time: extract that user's
// uncapped 2-hop computation subgraph, gather its features, compile a
// batch, run one forward. This is the pre-sweep full-graph re-score
// baseline that BenchmarkFullGraphSweep replaces; the internal/sweep
// tests pin the two paths to per-node agreement within 1e-12.
func BenchmarkScoreEveryoneNaive(b *testing.B) {
	a := benchAssembled()
	m := eval.NewHAG(eval.HAGFull, hagConfig(benchHyper(), a.X.Cols, a.Graph.NumEdgeTypes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range a.Nodes {
			sg := graph.SampleView(a.Graph, u, graph.SampleOptions{Hops: 2})
			x := tensor.New(sg.NumNodes(), a.X.Cols)
			for j, n := range sg.Nodes {
				copy(x.Row(j), a.X.Row(int(n)))
			}
			batch := gnn.NewBatch(sg, x)
			gnn.Score(m, batch)
			batch.Release()
		}
	}
	b.ReportMetric(float64(len(a.Nodes)), "nodes/sweep")
}

// BenchmarkFullGraphSweep re-scores every user through one shard-parallel
// layer-at-a-time GAS sweep (internal/sweep): the snapshot is exported
// once, each layer runs for all nodes before the next, and one worker per
// shard streams out per-node probabilities. Compare ns/op against
// BenchmarkScoreEveryoneNaive — the sweep shares each layer's work across
// all nodes instead of recomputing overlapping neighborhoods per user.
func BenchmarkFullGraphSweep(b *testing.B) {
	a := benchAssembled()
	m := eval.NewHAG(eval.HAGFull, hagConfig(benchHyper(), a.X.Cols, a.Graph.NumEdgeTypes()))
	out := make([]float64, len(a.Nodes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := a.FullBatch()
		st := sweep.ScoresInto(out, m, batch, sweep.Options{})
		if st.Fallback {
			b.Fatal("sweep fell back to per-batch inference")
		}
		batch.Release()
	}
	b.ReportMetric(float64(len(a.Nodes)), "nodes/sweep")
}
