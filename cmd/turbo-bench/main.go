// Command turbo-bench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). Each artifact prints in a
// paper-like text layout; absolute numbers come from the synthetic
// substitute dataset, so the shapes — orderings, relative gaps,
// crossovers — are what should be compared against the paper.
//
// Usage:
//
//	turbo-bench -table 3            # Table III method comparison
//	turbo-bench -table all -quick   # all tables on the tiny dataset
//	turbo-bench -figure 4d          # Fig. 4d homophily series
//	turbo-bench -figure 8b          # scalability study
//	turbo-bench -table latency      # §V cache optimization
//	turbo-bench -table ab           # §VI-E online A/B simulation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/graph"
	"turbo/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-bench: ")

	table := flag.String("table", "", "table to regenerate: 2, 3, 4, 5, latency, ab, all")
	figure := flag.String("figure", "", "figure to regenerate: 4ab, 4c, 4d, 4e, 4h, 4i, 5, 7, 8a, 8b, 9, all")
	quick := flag.Bool("quick", false, "use the tiny dataset and fewer epochs (fast sanity pass)")
	seeds := flag.Int("seeds", 3, "number of seeds for averaged tables")
	flag.Parse()

	if *table == "" && *figure == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := datagen.Default()
	h := eval.DefaultHyper()
	h.Epochs = 80
	if *quick {
		cfg = datagen.Tiny()
		h.Epochs = 40
	}

	runSeeds := make([]uint64, *seeds)
	for i := range runSeeds {
		runSeeds[i] = uint64(i + 1)
	}

	var a *eval.Assembled
	assemble := func() *eval.Assembled {
		if a == nil {
			start := time.Now()
			a = eval.Assemble(cfg, eval.AssembleOptions{})
			log.Printf("assembled %q in %v: %d nodes, %d edges, %d positives",
				cfg.Name, time.Since(start), a.Graph.NumNodes(), a.Graph.NumEdges(), a.Data.Positives())
		}
		return a
	}

	switch *table {
	case "":
	case "2":
		runTable2(cfg, *quick)
	case "3":
		fmt.Println(eval.Table3(assemble(), h, runSeeds))
	case "4":
		runTable4(*quick, h, runSeeds)
	case "5":
		fmt.Println(eval.Table5(assemble(), h, runSeeds))
	case "latency":
		fmt.Println(eval.RunLatencyStudy(cfg, eval.LatencyOptions{Hyper: h}))
	case "ab":
		fmt.Println(eval.RunABTest(cfg, h, 1))
	case "all":
		runTable2(cfg, *quick)
		fmt.Println(eval.Table3(assemble(), h, runSeeds))
		runTable4(*quick, h, runSeeds)
		fmt.Println(eval.Table5(assemble(), h, runSeeds))
		fmt.Println(eval.RunLatencyStudy(cfg, eval.LatencyOptions{Hyper: h}))
		fmt.Println(eval.RunABTest(cfg, h, 1))
	default:
		log.Fatalf("unknown table %q", *table)
	}

	switch *figure {
	case "":
	case "4ab":
		runFigure4ab(assemble())
	case "4c":
		runFigure4c(assemble())
	case "4d":
		fmt.Print(renderHomophily(assemble(), -1))
	case "4e":
		for _, t := range []behavior.Type{behavior.DeviceID, behavior.IPv4, behavior.GPS100} {
			fmt.Print(renderHomophily(assemble(), int(t)))
		}
	case "4h":
		s := assemble().StructuralDifference(3, 200, false)
		fmt.Print(eval.RenderSeries("Figure 4h — mean degree of n-hop neighbors", s.Normal, s.Fraud))
	case "4i":
		s := assemble().StructuralDifference(3, 200, true)
		fmt.Print(eval.RenderSeries("Figure 4i — mean weighted degree of n-hop neighbors", s.Normal, s.Fraud))
	case "5":
		runFigure5(assemble())
	case "7":
		fmt.Print(eval.RenderFigure7(eval.Figure7(assemble(), h, 1)))
	case "8a":
		runFigure8a(assemble(), h)
	case "8b":
		scales := []int{1, 2, 4}
		if *quick {
			scales = []int{1, 2}
		}
		fmt.Print(eval.RenderScalability(eval.RunScalability(cfg, scales, h, 1)))
	case "9":
		cs := eval.RunCaseStudy(assemble(), h, 1, 6)
		fmt.Print(cs.String())
	case "all":
		runFigure4ab(assemble())
		runFigure4c(assemble())
		fmt.Print(renderHomophily(assemble(), -1))
		for _, t := range []behavior.Type{behavior.DeviceID, behavior.IPv4, behavior.GPS100} {
			fmt.Print(renderHomophily(assemble(), int(t)))
		}
		sh := assemble().StructuralDifference(3, 200, false)
		fmt.Print(eval.RenderSeries("Figure 4h — mean degree of n-hop neighbors", sh.Normal, sh.Fraud))
		si := assemble().StructuralDifference(3, 200, true)
		fmt.Print(eval.RenderSeries("Figure 4i — mean weighted degree of n-hop neighbors", si.Normal, si.Fraud))
		runFigure5(assemble())
		fmt.Print(eval.RenderFigure7(eval.Figure7(assemble(), h, 1)))
		runFigure8a(assemble(), h)
		fmt.Print(eval.RenderScalability(eval.RunScalability(cfg, []int{1, 2, 4}, h, 1)))
		cs := eval.RunCaseStudy(assemble(), h, 1, 6)
		fmt.Print(cs.String())
	default:
		log.Fatalf("unknown figure %q", *figure)
	}
}

func runTable2(cfg datagen.Config, quick bool) {
	fmt.Println("Table II — dataset statistics")
	d1 := eval.Assemble(cfg, eval.AssembleOptions{})
	st1 := d1.Graph.Stats()
	fmt.Printf("%-8s #node=%d #positive=%d #edge=%d #type=%d\n",
		cfg.Name, st1.Nodes, d1.Data.Positives(), st1.Edges, countNonZero(st1.EdgesByType))
	d2cfg := datagen.D2(cfg.Users * 2)
	if quick {
		d2cfg = datagen.D2(cfg.Users)
	}
	d2 := eval.Assemble(d2cfg, eval.AssembleOptions{})
	st2 := d2.Graph.Stats()
	fmt.Printf("%-8s #node=%d #positive=%d #edge=%d #type=%d\n\n",
		d2cfg.Name, st2.Nodes, d2.Data.Positives(), st2.Edges, countNonZero(st2.EdgesByType))
}

func runTable4(quick bool, h eval.Hyper, seeds []uint64) {
	scale := 4000
	if quick {
		scale = 600
	}
	a2 := eval.Assemble(datagen.D2(scale), eval.AssembleOptions{})
	fmt.Println(eval.Table4(a2, h, seeds))
}

func countNonZero(xs []int) int {
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return n
}

func runFigure4ab(a *eval.Assembled) {
	normal, fraud := a.BurstConcentration(36 * time.Hour)
	fmt.Println("Figure 4a/4b — time-burst summary: share of logs within ±36h of application")
	fmt.Printf("normal users: %.1f%%   fraudsters: %.1f%%\n\n", 100*normal, 100*fraud)
}

func runFigure4c(a *eval.Assembled) {
	normal, fraud := a.TemporalAggregation(14, 20000)
	fmt.Println("Figure 4c — temporal aggregation: share of same-behavior pairs within 3 days")
	fmt.Printf("%-10s %10s %10s\n", "type", "normal", "fraud")
	for t := range normal {
		if normal[t].Total == 0 && fraud[t].Total == 0 {
			continue
		}
		fmt.Printf("%-10s %9.1f%% %9.1f%%\n", behavior.Type(t),
			100*normal[t].ShortIntervalShare(3), 100*fraud[t].ShortIntervalShare(3))
	}
	fmt.Println()
}

func renderHomophily(a *eval.Assembled, onlyType int) string {
	s := a.Homophily(3, 200, onlyType)
	title := "Figure 4d — fraud ratio of n-hop neighbors (all edge types)"
	if onlyType >= 0 {
		title = fmt.Sprintf("Figure 4e–g — fraud ratio of n-hop neighbors (%s edges)", behavior.Type(onlyType))
	}
	return eval.RenderSeries(title, s.Normal, s.Fraud)
}

func runFigure5(a *eval.Assembled) {
	// Pick a connected fraud node and render its 2-hop neighborhood.
	target := a.Nodes[0]
	for i := range a.Bools {
		if a.Bools[i] && a.Graph.Degree(a.Nodes[i]) >= 3 {
			target = a.Nodes[i]
			break
		}
	}
	sg := a.Graph.Sample(target, graph.SampleOptions{Hops: 2, MaxNeighbors: 5})
	fmt.Println("Figure 5/6 — DOT visualization of a case subgraph (render with graphviz):")
	err := sg.WriteDOT(os.Stdout, "bn-case", func(n graph.NodeID) int {
		if a.Bools[int(n)] {
			return 1
		}
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runFigure8a prints the per-module response-time digest over a stream
// of audit requests (Fig. 8a).
func runFigure8a(a *eval.Assembled, h eval.Hyper) {
	model, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
	series := eval.RunResponseTimeStudy(a, model, 200, 1)
	fmt.Println("Figure 8a — response time of the three online modules (200 requests)")
	fmt.Printf("%-9s %12s %12s %12s\n", "module", "mean", "p50", "p99")
	for _, m := range []struct {
		name string
		ds   []time.Duration
	}{
		{"sampling", series.Sample},
		{"features", series.Feature},
		{"predict", series.Predict},
		{"total", series.Total},
	} {
		rec := metricsRecorder(m.ds)
		fmt.Printf("%-9s %12v %12v %12v\n", m.name, rec.Mean(), rec.Percentile(50), rec.Percentile(99))
	}
	fmt.Println()
}

func metricsRecorder(ds []time.Duration) *metrics.LatencyRecorder {
	rec := metrics.NewLatencyRecorder()
	for _, d := range ds {
		rec.Record(d)
	}
	return rec
}
