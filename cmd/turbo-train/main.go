// Command turbo-train assembles a dataset, trains one of the paper's
// models, reports its test-split metrics, and optionally saves the
// trained parameters.
//
// Usage:
//
//	turbo-train -preset default -model hag -epochs 120 -save hag.model
//	turbo-train -preset tiny -model gsage
//	turbo-train -preset default -model gbdt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"path/filepath"

	"turbo/internal/baselines"
	"turbo/internal/behavior"
	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/gnn"
	"turbo/internal/metrics"
	"turbo/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-train: ")

	preset := flag.String("preset", "default", "dataset preset: default, tiny, d1, d2")
	dataDir := flag.String("data", "", "load logs.jsonl/users.jsonl from this directory instead of generating")
	model := flag.String("model", "hag", "model: hag, sao-, cfo-, both-, gcn, gsage, gat, lr, svm, gbdt, dnn, blp, dtx1, dtx2")
	epochs := flag.Int("epochs", 0, "training epochs (0 = harness default)")
	seed := flag.Uint64("seed", 1, "RNG seed")
	paper := flag.Bool("paper-hyper", false, "use the paper's §VI-A layer sizes (slower)")
	save := flag.String("save", "", "save trained GNN/HAG parameters to this file")
	flag.Parse()

	h := eval.DefaultHyper()
	if *paper {
		h = eval.PaperHyper()
	}
	if *epochs > 0 {
		h.Epochs = *epochs
	}

	start := time.Now()
	var a *eval.Assembled
	if *dataDir != "" {
		data, err := loadDataset(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		a = eval.AssembleDataset(data, eval.AssembleOptions{SplitSeed: *seed})
	} else {
		cfg, err := presetConfig(*preset)
		if err != nil {
			log.Fatal(err)
		}
		a = eval.Assemble(cfg, eval.AssembleOptions{SplitSeed: *seed})
	}
	log.Printf("assembled %q in %v: %d nodes, %d edges, %d positives",
		a.Data.Config.Name, time.Since(start), a.Graph.NumNodes(), a.Graph.NumEdges(), a.Data.Positives())

	start = time.Now()
	report, trained, err := runModel(a, strings.ToLower(*model), h, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s trained in %v", *model, time.Since(start))
	fmt.Println(report)

	if *save != "" {
		if trained == nil {
			log.Fatalf("-save is only supported for GNN/HAG models")
		}
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := nn.SaveState(f, trained); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved %d parameters to %s", nn.ParamCount(trained), *save)
	}
}

// loadDataset reads a directory produced by turbo-datagen.
func loadDataset(dir string) (*datagen.Dataset, error) {
	lf, err := os.Open(filepath.Join(dir, "logs.jsonl"))
	if err != nil {
		return nil, err
	}
	defer lf.Close()
	logs, err := behavior.ReadJSONL(lf)
	if err != nil {
		return nil, err
	}
	uf, err := os.Open(filepath.Join(dir, "users.jsonl"))
	if err != nil {
		return nil, err
	}
	defer uf.Close()
	users, err := datagen.ReadUsersJSONL(uf)
	if err != nil {
		return nil, err
	}
	return datagen.FromParts(filepath.Base(dir), users, logs)
}

func presetConfig(name string) (datagen.Config, error) {
	switch name {
	case "default":
		return datagen.Default(), nil
	case "tiny":
		return datagen.Tiny(), nil
	case "d1":
		return datagen.D1Full(), nil
	case "d2":
		return datagen.D2(0), nil
	}
	return datagen.Config{}, fmt.Errorf("unknown preset %q", name)
}

func runModel(a *eval.Assembled, model string, h eval.Hyper, seed uint64) (metrics.Report, nn.Module, error) {
	switch model {
	case "hag", "sao-", "cfo-", "both-":
		v := map[string]eval.HAGVariant{
			"hag": eval.HAGFull, "sao-": eval.HAGNoSAO, "cfo-": eval.HAGNoCFO, "both-": eval.HAGNeither,
		}[model]
		m, b := eval.TrainHAG(a, v, h, seed)
		scores := gnn.Scores(m, b)
		return metrics.Evaluate(a.ScoresAt(scores), a.TestLabels(), h.Threshold), m, nil
	case "gcn":
		return eval.RunGNN(a, eval.KindGCN, h, seed), nil, nil
	case "gsage":
		return eval.RunGNN(a, eval.KindSAGE, h, seed), nil, nil
	case "gat":
		return eval.RunGNN(a, eval.KindGAT, h, seed), nil, nil
	case "lr":
		return eval.RunFeatureModel(a, &baselines.LogisticRegression{Balance: true}, h), nil, nil
	case "svm":
		return eval.RunFeatureModel(a, &baselines.LinearSVM{Balance: true, Seed: seed}, h), nil, nil
	case "gbdt":
		return eval.RunFeatureModel(a, &baselines.GBDT{Balance: true, Seed: seed}, h), nil, nil
	case "dnn":
		return eval.RunFeatureModel(a, &baselines.DNN{Balance: true, Seed: seed}, h), nil, nil
	case "blp":
		return eval.RunBLP(a, h, seed), nil, nil
	case "dtx1":
		return eval.RunDTX(a, false, h, seed), nil, nil
	case "dtx2":
		return eval.RunDTX(a, true, h, seed), nil, nil
	}
	return metrics.Report{}, nil, fmt.Errorf("unknown model %q", model)
}
