// Command turbo-server runs the full online anti-fraud stack of Fig. 2:
// it assembles a historical dataset, trains HAG (plus the feature-only
// fallback model of the degradation ladder), loads the history into a
// live core.System, and serves the HTTP API (ingest / transaction /
// predict / latency / stats / healthz / readyz) with per-stage
// deadlines, a feature-service circuit breaker, and load shedding.
//
// Usage:
//
//	turbo-server -preset tiny -addr :8080
//	curl 'localhost:8080/predict?uid=42'
//	curl localhost:8080/latency
//
// Chaos demo — inject a total feature outage and watch audits degrade
// instead of failing:
//
//	turbo-server -preset tiny -fault.feature-error-rate 1
//	curl 'localhost:8080/predict?uid=0'   # 200, "served_by":"fallback"/"prior"
//	curl localhost:8080/stats             # served_by counters, breaker state
//
// The server drains gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"turbo/internal/baselines"
	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/eval"
	"turbo/internal/graph"
	"turbo/internal/resilience"
	"turbo/internal/server"
	"turbo/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-server: ")

	preset := flag.String("preset", "tiny", "dataset preset: default, tiny")
	addr := flag.String("addr", ":8080", "listen address")
	epochs := flag.Int("epochs", 0, "training epochs (0 = harness default)")
	threshold := flag.Float64("threshold", 0.85, "online fraud threshold (§VI-E uses 0.85)")
	advanceEvery := flag.Duration("advance-every", 10*time.Second, "BN window-job scheduler period")

	// Resilience posture.
	maxInFlight := flag.Int("max-inflight", 256, "concurrent audit cap; excess load is shed with 429 (0 = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive feature failures that open the breaker")
	breakerCoolDown := flag.Duration("breaker-cooldown", 10*time.Second, "breaker open → half-open cool-down")
	retryAttempts := flag.Int("retry-attempts", 2, "attempts per feature fetch (1 = no retry)")
	fanoutWorkers := flag.Int("fanout-workers", 0, "concurrent feature fetches per audit (0 = min(8, GOMAXPROCS), 1 = sequential)")
	sampleTimeout := flag.Duration("sample-timeout", 500*time.Millisecond, "subgraph sampling deadline (0 = none)")
	featureTimeout := flag.Duration("feature-timeout", time.Second, "feature fan-out deadline (0 = none)")
	totalTimeout := flag.Duration("total-timeout", 2*time.Second, "end-to-end audit deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")

	// Fault injection (chaos demo; all off by default).
	faultErrRate := flag.Float64("fault.feature-error-rate", 0, "probability a feature fetch fails")
	faultDelay := flag.Duration("fault.feature-delay", 0, "injected latency per feature fetch")
	faultDelayRate := flag.Float64("fault.feature-delay-rate", 0, "probability of the injected feature delay (0 with a delay set = always)")
	faultHangRate := flag.Float64("fault.feature-hang-rate", 0, "probability a feature fetch hangs")
	faultHang := flag.Duration("fault.feature-hang", 30*time.Second, "duration of an injected feature hang")
	faultSampleDelay := flag.Duration("fault.sample-delay", 0, "injected latency per subgraph sample")
	faultSampleDelayRate := flag.Float64("fault.sample-delay-rate", 0, "probability of the injected sample delay (0 with a delay set = always)")
	faultSeed := flag.Uint64("fault.seed", 1, "fault-injection RNG seed (deterministic fault sequences)")

	// Telemetry.
	debugAddr := flag.String("debug.addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	telBuckets := flag.String("telemetry.buckets", "", "comma-separated latency histogram bucket bounds in seconds (empty = defaults)")
	traceRingSize := flag.Int("telemetry.trace-ring", 256, "completed-trace ring size behind /debug/traces")
	slowThreshold := flag.Duration("telemetry.slow-threshold", 500*time.Millisecond, "log the span breakdown of audits at least this slow (0 = off)")
	flag.Parse()

	buckets, err := parseBuckets(*telBuckets)
	if err != nil {
		log.Fatalf("-telemetry.buckets: %v", err)
	}

	var cfg datagen.Config
	switch *preset {
	case "default":
		cfg = datagen.Default()
	case "tiny":
		cfg = datagen.Tiny()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	h := eval.DefaultHyper()
	if *epochs > 0 {
		h.Epochs = *epochs
	}

	log.Printf("assembling %q and training HAG…", cfg.Name)
	a := eval.Assemble(cfg, eval.AssembleOptions{})
	model, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
	log.Printf("trained on %d nodes / %d edges", a.Graph.NumNodes(), a.Graph.NumEdges())

	// Tier-2 fallback: logistic regression over the same normalized
	// feature rows HAG consumes, fitted on the training split. When the
	// graph or feature fan-out cannot answer in budget, this scores the
	// target user's own vector.
	fbX := tensor.New(len(a.TrainIdx), a.X.Cols)
	fbY := make([]float64, len(a.TrainIdx))
	for i, idx := range a.TrainIdx {
		copy(fbX.Row(i), a.X.Row(idx))
		fbY[i] = a.Labels[idx]
	}
	fallback := &baselines.LogisticRegression{Balance: true}
	fallback.Fit(fbX, fbY)
	log.Printf("trained LR fallback on %d rows", fbX.Rows)

	sys, err := core.New(core.Config{
		Threshold: *threshold,
		Telemetry: server.TelemetryOptions{
			Buckets:       buckets,
			TraceRingSize: *traceRingSize,
			SlowThreshold: *slowThreshold,
			Logger:        log.Default(),
		},
	}, a.Data.Start)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetModel(model, a.Norm.Apply)
	sys.IngestBatch(a.Data.Logs)
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			log.Fatal(err)
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))
	log.Printf("live BN: %d nodes, %d edges", sys.BNServer().Graph().NumNodes(), sys.BNServer().Graph().NumEdges())

	pred := sys.PredictionServer()
	tel := sys.Telemetry()
	pred.Fallback = fallback
	pred.Admission = resilience.NewAdmission(*maxInFlight)
	pred.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: *breakerThreshold,
		CoolDown:         *breakerCoolDown,
		OnStateChange:    tel.BreakerHook(),
	})
	pred.Retry = resilience.RetryConfig{Attempts: *retryAttempts, BaseDelay: 5 * time.Millisecond, Seed: *faultSeed}
	pred.FanoutWorkers = *fanoutWorkers
	pred.Deadlines = server.StageDeadlines{
		Sample:  *sampleTimeout,
		Feature: *featureTimeout,
		Total:   *totalTimeout,
	}

	if *faultErrRate > 0 || *faultDelay > 0 || *faultHangRate > 0 {
		inj := resilience.NewInjector(resilience.FaultConfig{
			ErrorRate: *faultErrRate,
			Delay:     *faultDelay,
			DelayRate: *faultDelayRate,
			HangRate:  *faultHangRate,
			Hang:      *faultHang,
			Seed:      *faultSeed,
		})
		tel.WireInjector(inj)
		pred.SetFeatureSource(resilience.InjectFeatures(sys.Features(), inj))
		log.Printf("CHAOS: feature faults on (err=%.2f delay=%v hang=%.2f seed=%d)",
			*faultErrRate, *faultDelay, *faultHangRate, *faultSeed)
	}
	if *faultSampleDelay > 0 {
		inj := resilience.NewInjector(resilience.FaultConfig{
			Delay:     *faultSampleDelay,
			DelayRate: *faultSampleDelayRate,
			Seed:      *faultSeed,
		})
		tel.WireInjector(inj)
		sys.BNServer().SetViewWrapper(func(v graph.GraphView) graph.GraphView {
			return resilience.InjectView(v, inj)
		})
		log.Printf("CHAOS: sampling delay on (%v, seed=%d)", *faultSampleDelay, *faultSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The scheduler tick: window jobs run in parallel to predictions.
	go func() {
		ticker := time.NewTicker(*advanceEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				sys.Advance(time.Now())
			case <-ctx.Done():
				return
			}
		}
	}()

	// Optional pprof endpoint on its own listener, so profiling traffic
	// never rides the audit port.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	api := sys.API()
	api.ErrorLog = log.Default()
	srv := &http.Server{Addr: *addr, Handler: api}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s — try /predict?uid=0, /stats, /latency, /metrics, /debug/traces\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight audits for up
	// to the drain budget, then exit.
	log.Printf("signal received, draining for up to %v…", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained; bye")
}

// parseBuckets parses "0.001,0.01,0.1" into ascending bucket bounds.
func parseBuckets(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", p, err)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("bounds must be strictly ascending: %v after %v", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	return out, nil
}
