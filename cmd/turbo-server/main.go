// Command turbo-server runs the full online anti-fraud stack of Fig. 2:
// it assembles a historical dataset, trains HAG (plus the feature-only
// fallback model of the degradation ladder), loads the history into a
// live core.System, and serves the HTTP API (ingest / transaction /
// predict / latency / stats / healthz / readyz) with per-stage
// deadlines, a feature-service circuit breaker, and load shedding.
//
// Usage:
//
//	turbo-server -preset tiny -addr :8080
//	curl 'localhost:8080/predict?uid=42'
//	curl localhost:8080/latency
//
// With -data.dir the state is durable: ingested events are write-ahead
// logged, the BN is checkpointed periodically, and every trained model
// becomes a versioned artifact. A restart recovers the latest checkpoint,
// replays the WAL tail and reloads the newest model instead of
// retraining:
//
//	turbo-server -preset tiny -data.dir /var/lib/turbo
//	kill -9 <pid>; turbo-server -preset tiny -data.dir /var/lib/turbo
//	# → "recovered: checkpoint lsn=…, replayed N events" and the same BN
//
// Chaos demo — inject a total feature outage and watch audits degrade
// instead of failing:
//
//	turbo-server -preset tiny -fault.feature-error-rate 1
//	curl 'localhost:8080/predict?uid=0'   # 200, "served_by":"fallback"/"prior"
//	curl localhost:8080/stats             # served_by counters, breaker state
//
// The server drains gracefully on SIGINT/SIGTERM, writing a final
// checkpoint when -data.dir is set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"turbo/internal/baselines"
	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/embed"
	"turbo/internal/eval"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/lifecycle"
	"turbo/internal/persist"
	"turbo/internal/resilience"
	"turbo/internal/server"
	"turbo/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-server: ")

	preset := flag.String("preset", "tiny", "dataset preset: default, tiny")
	addr := flag.String("addr", ":8080", "listen address")
	epochs := flag.Int("epochs", 0, "training epochs (0 = harness default)")
	threshold := flag.Float64("threshold", 0.85, "online fraud threshold (§VI-E uses 0.85)")
	advanceEvery := flag.Duration("advance-every", 10*time.Second, "BN window-job scheduler period")

	// Lambda embedding-serving tier.
	embedServe := flag.Bool("embed.serve", true, "serve clean-neighborhood audits from precomputed penultimate embeddings (dirty neighborhoods always fall through to full scoring)")
	embedRefreshEvery := flag.Duration("embed.refresh-every", time.Second, "background incremental re-embed period for the dirty set")
	embedTrustBoot := flag.Bool("embed.trust-boot-table", false, "serve a reloaded embedding table without re-embedding it first (assert no edges changed while the process was down)")

	// Durable state (all off unless -data.dir is set).
	dataDir := flag.String("data.dir", "", "data directory for the WAL, checkpoints and model artifacts (empty = memory-only)")
	walFsync := flag.String("wal.fsync", "interval", "WAL fsync policy: always, interval, none")
	walFsyncInterval := flag.Duration("wal.fsync-interval", 100*time.Millisecond, "background fsync period under -wal.fsync=interval")
	walSegmentSize := flag.Int64("wal.segment-size", 16<<20, "WAL segment rotation size in bytes")
	checkpointInterval := flag.Duration("checkpoint.interval", time.Minute, "period between full-state checkpoints")

	// Resilience posture.
	maxInFlight := flag.Int("max-inflight", 256, "concurrent audit cap; excess load is shed with 429 (0 = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive feature failures that open the breaker")
	breakerCoolDown := flag.Duration("breaker-cooldown", 10*time.Second, "breaker open → half-open cool-down")
	retryAttempts := flag.Int("retry-attempts", 2, "attempts per feature fetch (1 = no retry)")
	fanoutWorkers := flag.Int("fanout-workers", 0, "concurrent feature fetches per audit (0 = adaptive: sequential for small subgraphs, min(8, GOMAXPROCS) for large; 1 = always sequential)")
	sampleTimeout := flag.Duration("sample-timeout", 500*time.Millisecond, "subgraph sampling deadline (0 = none)")
	featureTimeout := flag.Duration("feature-timeout", time.Second, "feature fan-out deadline (0 = none)")
	totalTimeout := flag.Duration("total-timeout", 2*time.Second, "end-to-end audit deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")

	// Validation-gated model lifecycle (gate off unless -gate is set).
	inferF32 := flag.Bool("infer.f32", false, "serve audits through the float32 kernel path when the model passes the logit-tolerance gate (float64 stays the reference; re-validated on every model swap)")
	inferF32Tol := flag.Float64("infer.f32-tol", 5e-3, "max per-node |float64−float32| logit gap allowed by the -infer.f32 gate")
	gateEnable := flag.Bool("gate", false, "validation-gate retrained models: shadow-evaluate each candidate, quarantine rejects, monitor accepted swaps")
	gateMinAUC := flag.Float64("gate.min-auc", 0.75, "holdout ROC-AUC floor a candidate must reach")
	gateMinRecall := flag.Float64("gate.min-recall", 0.5, "recall floor at -gate.precision-floor on the holdout")
	gatePrecisionFloor := flag.Float64("gate.precision-floor", 0.8, "precision floor for the recall-at-precision criterion")
	gateMaxPSI := flag.Float64("gate.max-psi", 0.25, "max candidate-vs-live PSI on the shadow cohort")
	gateMaxKS := flag.Float64("gate.max-ks", 0.3, "max candidate-vs-live KS statistic on the shadow cohort")
	gateMaxDisagree := flag.Float64("gate.max-disagreement", 0.15, "max candidate-vs-live decision disagreement rate at the audit threshold")
	gateCohort := flag.Int("gate.cohort", 512, "shadow-cohort size cap (0 = every audit-eligible user)")
	monWindow := flag.Duration("monitor.window", 2*time.Minute, "post-swap rollback watch window (0 = no monitor)")
	monMinAudits := flag.Int64("monitor.min-audits", 50, "post-swap audits required before health rates are judged")
	monMaxErr := flag.Float64("monitor.max-error-rate", 0.05, "post-swap failed-audit rate that triggers auto-rollback")
	monMaxDegraded := flag.Float64("monitor.max-degraded-rate", 0.5, "post-swap degraded-tier rate that triggers auto-rollback")
	monMaxShift := flag.Float64("monitor.max-score-shift", 0, "post-swap cohort PSI vs the pre-swap baseline that triggers auto-rollback (0 = off)")

	// HTTP hardening.
	maxBody := flag.Int64("http.max-body", 1<<20, "max POST body bytes; larger requests get 413")
	readHeaderTimeout := flag.Duration("http.read-header-timeout", 5*time.Second, "deadline for reading request headers (slowloris guard)")
	readTimeout := flag.Duration("http.read-timeout", 30*time.Second, "deadline for reading a full request")
	writeTimeout := flag.Duration("http.write-timeout", 10*time.Minute, "deadline for writing a response (covers synchronous /admin/retrain and pprof profiles)")
	idleTimeout := flag.Duration("http.idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")

	// Fault injection (chaos demo; all off by default).
	faultErrRate := flag.Float64("fault.feature-error-rate", 0, "probability a feature fetch fails")
	faultDelay := flag.Duration("fault.feature-delay", 0, "injected latency per feature fetch")
	faultDelayRate := flag.Float64("fault.feature-delay-rate", 0, "probability of the injected feature delay (0 with a delay set = always)")
	faultHangRate := flag.Float64("fault.feature-hang-rate", 0, "probability a feature fetch hangs")
	faultHang := flag.Duration("fault.feature-hang", 30*time.Second, "duration of an injected feature hang")
	faultSampleDelay := flag.Duration("fault.sample-delay", 0, "injected latency per subgraph sample")
	faultSampleDelayRate := flag.Float64("fault.sample-delay-rate", 0, "probability of the injected sample delay (0 with a delay set = always)")
	faultSeed := flag.Uint64("fault.seed", 1, "fault-injection RNG seed (deterministic fault sequences)")

	// Telemetry.
	debugAddr := flag.String("debug.addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	telBuckets := flag.String("telemetry.buckets", "", "comma-separated latency histogram bucket bounds in seconds (empty = defaults)")
	traceRingSize := flag.Int("telemetry.trace-ring", 256, "completed-trace ring size behind /debug/traces")
	slowThreshold := flag.Duration("telemetry.slow-threshold", 500*time.Millisecond, "log the span breakdown of audits at least this slow (0 = off)")
	flag.Parse()

	buckets, err := parseBuckets(*telBuckets)
	if err != nil {
		log.Fatalf("-telemetry.buckets: %v", err)
	}

	var cfg datagen.Config
	switch *preset {
	case "default":
		cfg = datagen.Default()
	case "tiny":
		cfg = datagen.Tiny()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	h := eval.DefaultHyper()
	if *epochs > 0 {
		h.Epochs = *epochs
	}

	// The dataset is always assembled: it provides the feature profiles
	// (which are derived data, not journaled) and the training corpus for
	// the first boot and for retrains.
	log.Printf("assembling %q…", cfg.Name)
	a := eval.Assemble(cfg, eval.AssembleOptions{})

	sys, err := core.New(core.Config{
		Threshold: *threshold,
		Telemetry: server.TelemetryOptions{
			Buckets:       buckets,
			TraceRingSize: *traceRingSize,
			SlowThreshold: *slowThreshold,
			Logger:        log.Default(),
		},
	}, a.Data.Start)
	if err != nil {
		log.Fatal(err)
	}

	// Durable state: open the WAL + checkpoint manager and the model
	// artifact store, then recover whatever a previous process left.
	var journal *persist.Manager
	var modelStore *persist.ModelStore
	recovered := false
	if *dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("-wal.fsync: %v", err)
		}
		journal, err = persist.Open(persist.Config{
			Dir:           *dataDir,
			SegmentSize:   *walSegmentSize,
			Fsync:         policy,
			FsyncInterval: *walFsyncInterval,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		modelStore, err = persist.NewModelStore(filepath.Join(*dataDir, "models"), log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		sys.AttachPersistence(journal)
		rs, err := sys.Recover()
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		recovered = rs.CheckpointLoaded || rs.ReplayedLogs+rs.ReplayedTxns > 0
		if recovered {
			log.Printf("recovered: checkpoint=%v (lsn=%d), replayed %d logs + %d txns, %d corrupt records dropped",
				rs.CheckpointLoaded, rs.CheckpointLSN, rs.ReplayedLogs, rs.ReplayedTxns, rs.CorruptRecords)
		} else {
			log.Printf("data dir %s is fresh; seeding from %q", *dataDir, cfg.Name)
		}
	}

	// Model: prefer the newest persisted artifact (bitwise the weights
	// that were serving before the restart); train from scratch only when
	// none exists.
	var model gnn.Model
	var normalizer func([]float64) []float64
	var fallback *baselines.LogisticRegression
	loadedArtifact := false
	servingVersion := 0
	if modelStore != nil {
		lm, err := modelStore.LoadLatest()
		switch {
		case err == nil:
			model = lm.Model
			norm := &eval.Normalizer{Mean: lm.NormMean, Std: lm.NormStd}
			normalizer = norm.Apply
			fallback = lm.Fallback
			loadedArtifact = true
			servingVersion = lm.Manifest.Version
			log.Printf("loaded model artifact v%d (%s, %d params, checksum %s)",
				lm.Manifest.Version, lm.Manifest.Kind, lm.Manifest.Params, lm.Manifest.Checksum)
		case errors.Is(err, persist.ErrNoArtifact):
			log.Printf("no model artifact yet; training")
		default:
			log.Fatalf("model artifacts: %v", err)
		}
	}
	if model == nil {
		log.Printf("training HAG…")
		model, _ = eval.TrainHAG(a, eval.HAGFull, h, 1)
		normalizer = a.Norm.Apply
		log.Printf("trained on %d nodes / %d edges", a.Graph.NumNodes(), a.Graph.NumEdges())
	}
	if fallback == nil {
		// Tier-2 fallback: logistic regression over the same normalized
		// feature rows HAG consumes, fitted on the training split. When the
		// graph or feature fan-out cannot answer in budget, this scores the
		// target user's own vector.
		fbX := tensor.New(len(a.TrainIdx), a.X.Cols)
		fbY := make([]float64, len(a.TrainIdx))
		for i, idx := range a.TrainIdx {
			copy(fbX.Row(i), a.X.Row(idx))
			fbY[i] = a.Labels[idx]
		}
		fallback = &baselines.LogisticRegression{Balance: true}
		fallback.Fit(fbX, fbY)
		log.Printf("trained LR fallback on %d rows", fbX.Rows)
	}
	sys.SetModel(model, normalizer)
	if modelStore != nil && !loadedArtifact {
		man, err := modelStore.Save(model, persist.Extras{
			NormMean: a.Norm.Mean, NormStd: a.Norm.Std, Fallback: fallback,
		})
		if err != nil {
			log.Printf("persisting model artifact: %v", err)
			sys.Telemetry().ArtifactSaved(false)
		} else {
			servingVersion = man.Version
			log.Printf("persisted model artifact v%d (%s)", man.Version, man.Kind)
			sys.Telemetry().ArtifactSaved(true)
		}
	}

	// Data: a fresh instance journals the seed history through the WAL; a
	// recovered one already holds it and only needs the derived feature
	// profiles re-installed.
	if recovered {
		for i := range a.Data.Users {
			u := &a.Data.Users[i]
			if err := sys.Features().PutProfile(u.ID, u.Features()); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		sys.IngestBatch(a.Data.Logs)
		for i := range a.Data.Users {
			u := &a.Data.Users[i]
			if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
				log.Fatal(err)
			}
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))
	log.Printf("live BN: %d nodes, %d edges", sys.BNServer().Graph().NumNodes(), sys.BNServer().Graph().NumEdges())

	pred := sys.PredictionServer()
	tel := sys.Telemetry()
	pred.Fallback = fallback
	pred.Admission = resilience.NewAdmission(*maxInFlight)
	pred.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: *breakerThreshold,
		CoolDown:         *breakerCoolDown,
		OnStateChange:    tel.BreakerHook(),
	})
	pred.Retry = resilience.RetryConfig{Attempts: *retryAttempts, BaseDelay: 5 * time.Millisecond, Seed: *faultSeed}
	pred.FanoutWorkers = *fanoutWorkers
	pred.Deadlines = server.StageDeadlines{
		Sample:  *sampleTimeout,
		Feature: *featureTimeout,
		Total:   *totalTimeout,
	}

	if *faultErrRate > 0 || *faultDelay > 0 || *faultHangRate > 0 {
		inj := resilience.NewInjector(resilience.FaultConfig{
			ErrorRate: *faultErrRate,
			Delay:     *faultDelay,
			DelayRate: *faultDelayRate,
			HangRate:  *faultHangRate,
			Hang:      *faultHang,
			Seed:      *faultSeed,
		})
		tel.WireInjector(inj)
		pred.SetFeatureSource(resilience.InjectFeatures(sys.Features(), inj))
		log.Printf("CHAOS: feature faults on (err=%.2f delay=%v hang=%.2f seed=%d)",
			*faultErrRate, *faultDelay, *faultHangRate, *faultSeed)
	}
	if *faultSampleDelay > 0 {
		inj := resilience.NewInjector(resilience.FaultConfig{
			Delay:     *faultSampleDelay,
			DelayRate: *faultSampleDelayRate,
			Seed:      *faultSeed,
		})
		tel.WireInjector(inj)
		sys.BNServer().SetViewWrapper(func(v graph.GraphView) graph.GraphView {
			return resilience.InjectView(v, inj)
		})
		log.Printf("CHAOS: sampling delay on (%v, seed=%d)", *faultSampleDelay, *faultSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Lambda embedding tier: install the engine (delta observer +
	// mark-before-publish hook) before any retrain machinery references
	// it; the table itself is built or reloaded after the artifact
	// version is pinned below.
	var embedEng *server.EmbedEngine
	var embedStore *persist.EmbedStore
	if *embedServe {
		var eerr error
		embedEng, eerr = sys.EnableEmbedTier()
		if eerr != nil {
			log.Fatal(eerr)
		}
		if modelStore != nil {
			embedStore, eerr = persist.NewEmbedStore(modelStore.Dir(), log.Printf)
			if eerr != nil {
				log.Fatal(eerr)
			}
		}
	}
	saveEmbedTable := func() {
		if embedEng == nil || embedStore == nil {
			return
		}
		tab := embedEng.Store().Table()
		if tab == nil {
			return
		}
		if d := tab.Export(); d != nil {
			if err := embedStore.Save(d); err != nil {
				log.Printf("persisting embed table: %v", err)
			}
		}
	}

	// Model management: /admin/retrain runs one pass on demand; every
	// accepted retrain is persisted as the next artifact version.
	trainFn := func() (gnn.Model, func([]float64) []float64, error) {
		m, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
		return m, a.Norm.Apply, nil
	}
	mgr := server.NewModelManager(pred, trainFn)
	// After every accepted swap, re-score the whole graph so cached
	// scores reflect the new model immediately. With the embedding tier
	// on, the table rebuild doubles as that sweep (its sweep scores the
	// final layer anyway and refreshes the tier-3 cache).
	mgr.SetResweep(func() {
		if embedEng != nil {
			rep, err := embedEng.RebuildOnce(ctx)
			if err != nil {
				log.Printf("post-retrain embed rebuild: %v", err)
				return
			}
			if rep.Servable {
				log.Printf("post-retrain embed rebuild: %d rows in %v (%d skipped)",
					rep.Rows, rep.Elapsed, rep.Skipped)
				saveEmbedTable()
				return
			}
			log.Printf("post-retrain: model has no embedding decomposition; sweeping")
		}
		rep, err := sys.Resweep(ctx)
		if err != nil {
			log.Printf("post-retrain sweep: %v", err)
			return
		}
		log.Printf("post-retrain sweep: %d/%d users re-scored in %v (%d workers, %d skipped)",
			rep.Scored, rep.Candidates, rep.Elapsed, rep.Workers, rep.Skipped)
	})
	if modelStore != nil {
		mgr.SetArtifacts(modelStore, func() persist.Extras {
			return persist.Extras{NormMean: a.Norm.Mean, NormStd: a.Norm.Std, Fallback: fallback}
		})
		mgr.SetCurrentVersion(servingVersion)
	}
	// Rollback reconstructs a serving normalizer from the persisted
	// z-score statistics, so a reinstalled artifact is bitwise the model
	// (and normalizer) that served before the bad swap.
	mgr.SetNormBuilder(func(mean, std []float64) func([]float64) []float64 {
		return (&eval.Normalizer{Mean: mean, Std: std}).Apply
	})
	if *gateEnable {
		mgr.EnableGate(server.GateOptions{
			Gate: lifecycle.GateConfig{
				MinAUC:               *gateMinAUC,
				MinRecallAtPrecision: *gateMinRecall,
				PrecisionFloor:       *gatePrecisionFloor,
				MaxPSI:               *gateMaxPSI,
				MaxKS:                *gateMaxKS,
				MaxDisagreement:      *gateMaxDisagree,
			},
			Monitor: lifecycle.MonitorConfig{
				Window:          *monWindow,
				MinAudits:       *monMinAudits,
				MaxErrorRate:    *monMaxErr,
				MaxDegradedRate: *monMaxDegraded,
				MaxScoreShift:   *monMaxShift,
			},
			Holdout:    a.HoldoutGate(*threshold, *gatePrecisionFloor),
			Engine:     sys.Sweeper(),
			CohortSize: *gateCohort,
			Logf:       log.Printf,
		})
		log.Printf("validation gate on: min-auc=%.2f min-recall=%.2f@p%.2f max-psi=%.2f max-ks=%.2f max-disagreement=%.2f, monitor window=%v",
			*gateMinAUC, *gateMinRecall, *gatePrecisionFloor, *gateMaxPSI, *gateMaxKS, *gateMaxDisagree, *monWindow)
	}

	if *inferF32 {
		// Validate the quantized path against the float64 reference on the
		// assembled full graph; the closure re-runs on every model swap.
		vb := a.FullBatch()
		tol := *inferF32Tol
		maxDelta, ok := pred.ConfigureF32(func(m gnn.Model) (float64, bool) {
			if !gnn.CanInfer32(m) {
				return 0, false
			}
			return gnn.ValidateF32(m, vb, tol)
		})
		if ok {
			log.Printf("f32 inference on: max logit delta %.3g within tol %.1g (%d validation nodes)", maxDelta, tol, vb.NumNodes)
		} else {
			log.Printf("f32 inference requested but gate failed (max logit delta %.3g, tol %.1g): serving float64", maxDelta, tol)
		}
	}

	// Embedding-table boot recovery: reload the table persisted for the
	// serving artifact version when one exists (re-embedding it unless
	// the operator vouches no edges changed while down), else run the
	// initial rebuild sweep. Then start the background dirty-set refresh.
	if embedEng != nil {
		loadedTable := false
		if embedStore != nil && servingVersion > 0 {
			d, lerr := embedStore.Load(servingVersion)
			switch {
			case lerr == nil:
				if es, ok := model.(gnn.EmbedServing); ok {
					snap := sys.BNServer().Snapshot()
					tab, ierr := embed.ImportTable(d, es, snap, 0)
					if ierr != nil {
						log.Printf("embed table v%d unusable: %v; rebuilding", servingVersion, ierr)
					} else {
						if !*embedTrustBoot {
							tab.MarkAll()
						}
						embedEng.Store().Install(tab, snap)
						loadedTable = true
						log.Printf("loaded embed table v%d (%d rows, built %s)",
							servingVersion, tab.NumRows(), d.BuiltAt.Format(time.RFC3339))
					}
				}
			case errors.Is(lerr, persist.ErrNoEmbedTable):
				// First boot on this artifact: rebuild below.
			default:
				log.Printf("embed table artifacts: %v; rebuilding", lerr)
			}
		}
		if !loadedTable {
			rep, rerr := embedEng.RebuildOnce(ctx)
			if rerr != nil {
				log.Printf("embed rebuild: %v", rerr)
			} else if rep.Servable {
				log.Printf("embed table built: %d rows in %v (%d skipped)", rep.Rows, rep.Elapsed, rep.Skipped)
				saveEmbedTable()
			} else {
				log.Printf("embedding tier idle: model has no embedding decomposition")
			}
		} else if !*embedTrustBoot {
			rep := embedEng.RefreshOnce()
			log.Printf("embed boot re-embed: %d rows refreshed in %v", rep.Ball, rep.Elapsed)
			saveEmbedTable()
		}
		go embedEng.RunRefreshLoop(ctx, *embedRefreshEvery)
	}

	// The scheduler tick: window jobs run in parallel to predictions.
	go func() {
		ticker := time.NewTicker(*advanceEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				sys.Advance(time.Now())
			case <-ctx.Done():
				return
			}
		}
	}()

	// The background checkpointer: periodic full-state checkpoints, plus
	// a final one when the context is cancelled.
	checkpointerDone := make(chan struct{})
	if journal != nil {
		go func() {
			defer close(checkpointerDone)
			journal.Run(ctx, *checkpointInterval)
		}()
	} else {
		close(checkpointerDone)
	}

	// Optional pprof endpoint on its own listener, so profiling traffic
	// never rides the audit port.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: *readHeaderTimeout,
			ReadTimeout:       *readTimeout,
			// CPU profiles stream for their whole sampling window, so the
			// debug listener shares the long API write budget.
			WriteTimeout: *writeTimeout,
			IdleTimeout:  *idleTimeout,
		}
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	api := sys.API()
	api.ErrorLog = log.Default()
	api.MaxBodyBytes = *maxBody
	api.Admin.Retrain = mgr.RetrainOnceCtx
	api.Admin.Rollback = mgr.Rollback
	api.Admin.Models = mgr.Models
	api.Admin.Lifecycle = mgr.Lifecycle
	if journal != nil {
		api.Admin.Checkpoint = func() (persist.CheckpointInfo, error) {
			info, err := journal.CheckpointNow()
			if err == nil {
				log.Printf("checkpoint: lsn=%d %dB in %v (%d segments truncated)",
					info.LSN, info.Bytes, info.Took, info.TruncatedSegments)
			}
			return info, err
		}
	}
	// State is rebuilt and the model is loaded — flip readiness last.
	api.SetReady(true)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s — try /predict?uid=0, /stats, /latency, /metrics, /debug/traces\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight audits for up
	// to the drain budget, then persist the final state and exit.
	log.Printf("signal received, draining for up to %v…", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if journal != nil {
		<-checkpointerDone // the checkpointer's final checkpoint
		if err := journal.Close(); err != nil {
			log.Printf("closing wal: %v", err)
		}
	}
	log.Printf("drained; bye")
}

// parseBuckets parses "0.001,0.01,0.1" into ascending bucket bounds.
func parseBuckets(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q: %v", p, err)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("bounds must be strictly ascending: %v after %v", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	return out, nil
}
