// Command turbo-server runs the full online anti-fraud stack of Fig. 2:
// it assembles a historical dataset, trains HAG, loads the history into
// a live core.System, and serves the HTTP API (ingest / transaction /
// predict / latency / stats).
//
// Usage:
//
//	turbo-server -preset tiny -addr :8080
//	curl 'localhost:8080/predict?uid=42'
//	curl localhost:8080/latency
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-server: ")

	preset := flag.String("preset", "tiny", "dataset preset: default, tiny")
	addr := flag.String("addr", ":8080", "listen address")
	epochs := flag.Int("epochs", 0, "training epochs (0 = harness default)")
	threshold := flag.Float64("threshold", 0.85, "online fraud threshold (§VI-E uses 0.85)")
	advanceEvery := flag.Duration("advance-every", 10*time.Second, "BN window-job scheduler period")
	flag.Parse()

	var cfg datagen.Config
	switch *preset {
	case "default":
		cfg = datagen.Default()
	case "tiny":
		cfg = datagen.Tiny()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	h := eval.DefaultHyper()
	if *epochs > 0 {
		h.Epochs = *epochs
	}

	log.Printf("assembling %q and training HAG…", cfg.Name)
	a := eval.Assemble(cfg, eval.AssembleOptions{})
	model, _ := eval.TrainHAG(a, eval.HAGFull, h, 1)
	log.Printf("trained on %d nodes / %d edges", a.Graph.NumNodes(), a.Graph.NumEdges())

	sys, err := core.New(core.Config{Threshold: *threshold}, a.Data.Start)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetModel(model, a.Norm.Apply)
	sys.IngestBatch(a.Data.Logs)
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			log.Fatal(err)
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))
	log.Printf("live BN: %d nodes, %d edges", sys.BNServer().Graph().NumNodes(), sys.BNServer().Graph().NumEdges())

	// The scheduler tick: window jobs run in parallel to predictions.
	go func() {
		for range time.Tick(*advanceEvery) {
			sys.Advance(time.Now())
		}
	}()

	fmt.Printf("serving on %s — try /predict?uid=0, /stats, /latency\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, sys.API()))
}
