// Command turbo-datagen generates a synthetic deposit-free-leasing world
// (the stand-in for the proprietary Jimi dataset, see DESIGN.md §2) and
// writes it to JSONL files: logs.jsonl with the behavior logs and
// users.jsonl with per-user features and labels.
//
// Usage:
//
//	turbo-datagen -preset default -out ./data
//	turbo-datagen -preset tiny -users 500 -seed 7 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-datagen: ")

	preset := flag.String("preset", "default", "dataset preset: default, tiny, d1, d2")
	users := flag.Int("users", 0, "override user count")
	seed := flag.Uint64("seed", 0, "override RNG seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	cfg, err := presetConfig(*preset)
	if err != nil {
		log.Fatal(err)
	}
	if *users > 0 {
		cfg.Users = *users
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	start := time.Now()
	d := datagen.Generate(cfg)
	log.Printf("generated %q: %d users (%d positives), %d logs in %v",
		cfg.Name, len(d.Users), d.Positives(), len(d.Logs), time.Since(start))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeLogs(filepath.Join(*out, "logs.jsonl"), d.Logs); err != nil {
		log.Fatal(err)
	}
	if err := writeUsers(filepath.Join(*out, "users.jsonl"), d); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s and %s", filepath.Join(*out, "logs.jsonl"), filepath.Join(*out, "users.jsonl"))
}

func presetConfig(name string) (datagen.Config, error) {
	switch name {
	case "default":
		return datagen.Default(), nil
	case "tiny":
		return datagen.Tiny(), nil
	case "d1":
		return datagen.D1Full(), nil
	case "d2":
		return datagen.D2(0), nil
	}
	return datagen.Config{}, fmt.Errorf("unknown preset %q (want default, tiny, d1, d2)", name)
}

func writeLogs(path string, logs []behavior.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := behavior.WriteJSONL(f, logs); err != nil {
		return err
	}
	return f.Close()
}

func writeUsers(path string, d *datagen.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := datagen.WriteUsersJSONL(f, d); err != nil {
		return err
	}
	return f.Close()
}
