// Command turbo-loadgen drives a running turbo-server with an
// open-loop (schedule-based, coordinated-omission-safe) arrival
// process and writes the latency scoreboard to BENCH_load.json.
//
// The arrival schedule is fixed before the run — op i starts at
// t0 + i/QPS — and every op's latency is measured from that intended
// start, so server stalls surface in the percentiles instead of
// silently stretching the run (see DESIGN.md §12).
//
// Usage:
//
//	turbo-server -preset tiny &
//	turbo-loadgen -base http://127.0.0.1:8080 -qps 200 -duration 10s
//	turbo-loadgen -base http://127.0.0.1:8080 -ramp 100:100:1000:5s   # find max sustainable QPS
//	cat BENCH_load.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/datagen"
	"turbo/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("turbo-loadgen: ")

	base := flag.String("base", "http://127.0.0.1:8080", "turbo-server base URL")
	qps := flag.Float64("qps", 100, "offered rate for a single-stage run")
	duration := flag.Duration("duration", 10*time.Second, "duration of a single-stage run")
	stagesSpec := flag.String("stages", "", "explicit stages as qps:dur[,qps:dur...] (overrides -qps/-duration)")
	rampSpec := flag.String("ramp", "", "stepped ramp start:step:max:dur to find max sustainable QPS (stops at first unsustained stage)")
	auditFrac := flag.Float64("mix.audit", 0.5, "fraction of ops that are audits (GET /predict); the rest ingest (POST /ingest)")
	users := flag.Int("users", 300, "audit uid space [1,users]; match the server's preset or streamed world")
	zipf := flag.Float64("zipf", 0, "Zipf(s) skew for audit uid draws, 0<s<1 (0 = uniform; 0.99 = heavy repeat-target mix, the embedding tier's showcase); deterministic under -seed")
	workers := flag.Int("workers", 128, "in-flight request bound (shapes concurrency, never the schedule)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	seed := flag.Uint64("seed", 42, "workload seed (op mix, uids, payloads)")
	streamUsers := flag.Int("stream.users", 0, "draw ingest payloads from the streaming datagen world of this many users (0 = synthetic source); supports million-user workloads in constant memory")
	out := flag.String("out", "BENCH_load.json", "scoreboard output path (- for stdout only)")
	readyWait := flag.Duration("ready-wait", 30*time.Second, "how long to wait for /readyz before starting")
	flag.Parse()

	cfg := loadgen.Config{
		AuditFrac: *auditFrac,
		Users:     *users,
		Workers:   *workers,
		Timeout:   *timeout,
		Seed:      *seed,
		ZipfS:     *zipf,
	}
	switch {
	case *rampSpec != "":
		start, step, max, d, err := parseRamp(*rampSpec)
		if err != nil {
			log.Fatalf("-ramp: %v", err)
		}
		cfg.Stages = loadgen.RampStages(start, step, max, d)
		cfg.StopAfterUnsustained = true
	case *stagesSpec != "":
		st, err := parseStages(*stagesSpec)
		if err != nil {
			log.Fatalf("-stages: %v", err)
		}
		cfg.Stages = st
	default:
		cfg.Stages = []loadgen.Stage{{QPS: *qps, Duration: *duration}}
	}
	if *streamUsers > 0 {
		scfg := datagen.DefaultStreamConfig(*streamUsers)
		scfg.Seed = *seed
		cfg.Source = &streamSource{s: datagen.NewStream(scfg)}
		if *users == 300 { // widen the default audit space to the streamed world
			cfg.Users = *streamUsers
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	target := loadgen.NewHTTPTarget(*base, cfg.Workers)
	waitCtx, cancel := context.WithTimeout(ctx, *readyWait)
	err := target.WaitReady(waitCtx)
	cancel()
	if err != nil {
		log.Fatal(err)
	}

	uidDist := "uniform uids"
	if cfg.ZipfS > 0 {
		uidDist = fmt.Sprintf("zipf(%.2f) uids", cfg.ZipfS)
	}
	log.Printf("driving %s: %d stage(s), mix %.0f%% audit (%s), %d workers, seed %d",
		*base, len(cfg.Stages), cfg.AuditFrac*100, uidDist, cfg.Workers, cfg.Seed)
	rep, err := loadgen.Run(ctx, cfg, target)
	if err != nil {
		log.Fatal(err)
	}
	rep.Target = *base

	for _, st := range rep.Stages {
		verdict := "SUSTAINED"
		if !st.Sustained {
			verdict = "unsustained"
		}
		log.Printf("stage %6.0f qps: achieved %7.1f, errors %5.2f%%  [%s]",
			st.OfferedQPS, st.AchievedQPS, st.ErrorRate*100, verdict)
		for kind, ep := range st.Endpoints {
			log.Printf("  %-6s p50 %8.2fms  p99 %8.2fms  p999 %8.2fms  max %8.2fms  (service p50 %.2fms)",
				kind, ep.P50Ms, ep.P99Ms, ep.P999Ms, ep.MaxMs, ep.ServiceP50Ms)
		}
	}
	log.Printf("max sustainable QPS: %.0f", rep.MaxSustainableQPS)
	if len(rep.ServedBy) > 0 {
		tiers := make([]string, 0, len(rep.ServedBy))
		for tier := range rep.ServedBy {
			tiers = append(tiers, tier)
		}
		sort.Strings(tiers)
		var sb strings.Builder
		for _, tier := range tiers {
			fmt.Fprintf(&sb, " %s=%d", tier, rep.ServedBy[tier])
		}
		log.Printf("audits served by tier:%s", sb.String())
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("scoreboard written to %s", *out)
}

// streamSource adapts the streaming datagen world as an ingest payload
// source: event values come from the stream (rings, shared assets),
// timestamps are re-stamped to the schedule so the server's ingest-lag
// watermark tracks the wall clock. The stream restarts when exhausted.
type streamSource struct {
	s *datagen.Stream
}

func (ss *streamSource) NextLog(now time.Time) behavior.Log {
	l, ok := ss.s.Next()
	if !ok {
		// Wrap around: long runs replay the world.
		cfg := datagen.DefaultStreamConfig(ss.s.Users())
		ss.s = datagen.NewStream(cfg)
		l, _ = ss.s.Next()
	}
	l.Time = now
	return l
}

// parseStages parses "100:10s,200:10s".
func parseStages(spec string) ([]loadgen.Stage, error) {
	var stages []loadgen.Stage
	for _, part := range strings.Split(spec, ",") {
		qs, ds, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("stage %q: want qps:duration", part)
		}
		qps, err := strconv.ParseFloat(qs, 64)
		if err != nil || qps <= 0 {
			return nil, fmt.Errorf("stage %q: bad qps", part)
		}
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("stage %q: bad duration", part)
		}
		stages = append(stages, loadgen.Stage{QPS: qps, Duration: d})
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("empty spec")
	}
	return stages, nil
}

// parseRamp parses "start:step:max:dur".
func parseRamp(spec string) (start, step, max float64, d time.Duration, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("%q: want start:step:max:duration", spec)
	}
	if start, err = strconv.ParseFloat(parts[0], 64); err != nil || start <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("bad start %q", parts[0])
	}
	if step, err = strconv.ParseFloat(parts[1], 64); err != nil || step <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("bad step %q", parts[1])
	}
	if max, err = strconv.ParseFloat(parts[2], 64); err != nil || max < start {
		return 0, 0, 0, 0, fmt.Errorf("bad max %q", parts[2])
	}
	if d, err = time.ParseDuration(parts[3]); err != nil || d <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("bad duration %q", parts[3])
	}
	return start, step, max, d, nil
}
