// Package store provides the storage substrate of §V: an in-memory
// key-value cache with per-key TTL standing in for the Redis cluster,
// and an embedded table store standing in for the MySQL cluster, with
// primary-and-replica failover semantics. The feature management module
// and BN server use the cache-aside pattern over these two layers, which
// is what produces the paper's 6.8 s → 0.8 s latency drop.
package store

import (
	"sync"
	"time"
)

// Clock abstracts time for deterministic TTL tests.
type Clock func() time.Time

// KV is a concurrency-safe in-memory key-value cache with optional
// per-key TTL and a hit/miss counter.
type KV struct {
	mu    sync.RWMutex
	data  map[string]kvEntry
	clock Clock

	hits   int64
	misses int64
}

type kvEntry struct {
	value    any
	expireAt time.Time // zero means no expiry
}

// NewKV returns an empty cache using the real clock.
func NewKV() *KV { return NewKVWithClock(time.Now) }

// NewKVWithClock returns an empty cache with a custom clock.
func NewKVWithClock(clock Clock) *KV {
	return &KV{data: make(map[string]kvEntry), clock: clock}
}

// Set stores value under key with no expiry.
func (k *KV) Set(key string, value any) { k.SetTTL(key, value, 0) }

// SetTTL stores value under key; ttl <= 0 means no expiry.
func (k *KV) SetTTL(key string, value any, ttl time.Duration) {
	var exp time.Time
	if ttl > 0 {
		exp = k.clock().Add(ttl)
	}
	k.mu.Lock()
	k.data[key] = kvEntry{value: value, expireAt: exp}
	k.mu.Unlock()
}

// Get returns the live value under key. Expired entries count as misses
// and are lazily evicted.
func (k *KV) Get(key string) (any, bool) {
	k.mu.RLock()
	e, ok := k.data[key]
	k.mu.RUnlock()
	if ok && !e.expireAt.IsZero() && k.clock().After(e.expireAt) {
		k.mu.Lock()
		// Re-check under the write lock; another writer may have
		// refreshed the key.
		if e2, still := k.data[key]; still && !e2.expireAt.IsZero() && k.clock().After(e2.expireAt) {
			delete(k.data, key)
		}
		k.mu.Unlock()
		ok = false
	}
	k.mu.Lock()
	if ok {
		k.hits++
	} else {
		k.misses++
	}
	k.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.value, true
}

// Delete removes a key.
func (k *KV) Delete(key string) {
	k.mu.Lock()
	delete(k.data, key)
	k.mu.Unlock()
}

// Len returns the number of stored (possibly expired) entries.
func (k *KV) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.data)
}

// Stats returns cumulative (hits, misses).
func (k *KV) Stats() (hits, misses int64) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.hits, k.misses
}

// Flush removes every entry.
func (k *KV) Flush() {
	k.mu.Lock()
	k.data = make(map[string]kvEntry)
	k.mu.Unlock()
}

// Sweep evicts all expired entries eagerly and returns how many.
func (k *KV) Sweep() int {
	now := k.clock()
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for key, e := range k.data {
		if !e.expireAt.IsZero() && now.After(e.expireAt) {
			delete(k.data, key)
			n++
		}
	}
	return n
}
