package store

import (
	"errors"
	"sync"
)

// ErrUnavailable is returned when neither primary nor replica can serve.
var ErrUnavailable = errors.New("store: no replica available")

// ErrNotFound is returned for missing rows.
var ErrNotFound = errors.New("store: row not found")

// Table is a simple embedded table: string primary key to opaque row.
// It stands in for one MySQL table.
type Table struct {
	mu   sync.RWMutex
	rows map[string]any
	// down simulates a crashed database instance for failover tests.
	down bool
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{rows: make(map[string]any)} }

// Put inserts or replaces a row.
func (t *Table) Put(key string, row any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return ErrUnavailable
	}
	t.rows[key] = row
	return nil
}

// Get fetches a row.
func (t *Table) Get(key string) (any, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.down {
		return nil, ErrUnavailable
	}
	row, ok := t.rows[key]
	if !ok {
		return nil, ErrNotFound
	}
	return row, nil
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// SetDown toggles the simulated-crash state.
func (t *Table) SetDown(down bool) {
	t.mu.Lock()
	t.down = down
	t.mu.Unlock()
}

// ReplicatedTable is a primary table with a synchronously updated
// replica and automatic read failover — the "primary-and-replica
// switching" of §V.
type ReplicatedTable struct {
	primary *Table
	replica *Table
}

// NewReplicatedTable returns an empty replicated table.
func NewReplicatedTable() *ReplicatedTable {
	return &ReplicatedTable{primary: NewTable(), replica: NewTable()}
}

// Put writes through to both primary and replica; it succeeds if at
// least one write lands (split-brain is out of scope — writes re-sync
// on recovery in real deployments).
func (r *ReplicatedTable) Put(key string, row any) error {
	e1 := r.primary.Put(key, row)
	e2 := r.replica.Put(key, row)
	if e1 != nil && e2 != nil {
		return ErrUnavailable
	}
	return nil
}

// Get reads from the primary, failing over to the replica when the
// primary is down.
func (r *ReplicatedTable) Get(key string) (any, error) {
	row, err := r.primary.Get(key)
	if errors.Is(err, ErrUnavailable) {
		return r.replica.Get(key)
	}
	return row, err
}

// Primary exposes the primary for fault injection in tests.
func (r *ReplicatedTable) Primary() *Table { return r.primary }

// Replica exposes the replica for fault injection in tests.
func (r *ReplicatedTable) Replica() *Table { return r.replica }
