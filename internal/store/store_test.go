package store

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestKVSetGet(t *testing.T) {
	kv := NewKV()
	kv.Set("a", 42)
	v, ok := kv.Get("a")
	if !ok || v.(int) != 42 {
		t.Fatalf("get: %v %v", v, ok)
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestKVTTLExpiry(t *testing.T) {
	clock := &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	kv := NewKVWithClock(clock.Now)
	kv.SetTTL("a", "x", time.Minute)
	if _, ok := kv.Get("a"); !ok {
		t.Fatal("fresh key should be live")
	}
	clock.Advance(2 * time.Minute)
	if _, ok := kv.Get("a"); ok {
		t.Fatal("expired key should be gone")
	}
	if kv.Len() != 0 {
		t.Fatal("expired key not lazily evicted")
	}
}

func TestKVZeroTTLNeverExpires(t *testing.T) {
	clock := &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	kv := NewKVWithClock(clock.Now)
	kv.SetTTL("a", 1, 0)
	clock.Advance(1000 * time.Hour)
	if _, ok := kv.Get("a"); !ok {
		t.Fatal("no-TTL key expired")
	}
}

func TestKVOverwriteRefreshesTTL(t *testing.T) {
	clock := &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	kv := NewKVWithClock(clock.Now)
	kv.SetTTL("a", 1, time.Minute)
	clock.Advance(50 * time.Second)
	kv.SetTTL("a", 2, time.Minute)
	clock.Advance(30 * time.Second)
	v, ok := kv.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("refreshed key should be live: %v %v", v, ok)
	}
}

func TestKVStats(t *testing.T) {
	kv := NewKV()
	kv.Set("a", 1)
	kv.Get("a")
	kv.Get("a")
	kv.Get("b")
	hits, misses := kv.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestKVDeleteFlushSweep(t *testing.T) {
	clock := &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	kv := NewKVWithClock(clock.Now)
	kv.Set("keep", 1)
	kv.SetTTL("dies", 1, time.Second)
	kv.Set("del", 1)
	kv.Delete("del")
	clock.Advance(time.Minute)
	if n := kv.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d want 1", n)
	}
	if kv.Len() != 1 {
		t.Fatalf("len %d", kv.Len())
	}
	kv.Flush()
	if kv.Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestKVConcurrent(t *testing.T) {
	kv := NewKV()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				kv.SetTTL(key, i, time.Minute)
				kv.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if kv.Len() != 8 {
		t.Fatalf("len %d", kv.Len())
	}
}

func TestTableCRUD(t *testing.T) {
	tb := NewTable()
	if err := tb.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := tb.Get("k")
	if err != nil || v.(string) != "v" {
		t.Fatalf("get: %v %v", v, err)
	}
	if _, err := tb.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d", tb.Len())
	}
}

func TestTableDown(t *testing.T) {
	tb := NewTable()
	tb.SetDown(true)
	if err := tb.Put("k", 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put on down table: %v", err)
	}
	if _, err := tb.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("get on down table: %v", err)
	}
	tb.SetDown(false)
	if err := tb.Put("k", 1); err != nil {
		t.Fatalf("recovered table: %v", err)
	}
}

func TestReplicatedFailover(t *testing.T) {
	r := NewReplicatedTable()
	if err := r.Put("k", 7); err != nil {
		t.Fatal(err)
	}
	// Primary crashes: reads fail over to the replica.
	r.Primary().SetDown(true)
	v, err := r.Get("k")
	if err != nil || v.(int) != 7 {
		t.Fatalf("failover read: %v %v", v, err)
	}
	// Writes still land on the replica.
	if err := r.Put("k2", 8); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if v, err := r.Get("k2"); err != nil || v.(int) != 8 {
		t.Fatalf("read after degraded write: %v %v", v, err)
	}
}

func TestReplicatedBothDown(t *testing.T) {
	r := NewReplicatedTable()
	_ = r.Put("k", 1)
	r.Primary().SetDown(true)
	r.Replica().SetDown(true)
	if err := r.Put("x", 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if _, err := r.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestReplicatedNotFoundIsNotFailover(t *testing.T) {
	r := NewReplicatedTable()
	// A missing row on a healthy primary must not mask as unavailable.
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestReplicaRecoveryAfterPrimaryRestores(t *testing.T) {
	r := NewReplicatedTable()
	r.Primary().SetDown(true)
	_ = r.Put("k", 1) // lands only on replica
	r.Primary().SetDown(false)
	_ = r.Put("k", 2) // now both
	v, err := r.Get("k")
	if err != nil || v.(int) != 2 {
		t.Fatalf("after recovery: %v %v", v, err)
	}
}
