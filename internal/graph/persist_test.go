package graph

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestGraphPersistRoundtrip(t *testing.T) {
	g := New(3)
	exp := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = g.AddEdgeWeight(0, 1, 2, 0.5, exp)
	_ = g.AddEdgeWeight(2, 3, 4, 1.5, exp)
	g.AddNode(9) // isolated node must survive

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if got.EdgeWeight(0, 1, 2) != 0.5 || got.EdgeWeight(2, 3, 4) != 1.5 {
		t.Fatal("edge weights lost")
	}
	if !got.HasNode(9) {
		t.Fatal("isolated node lost")
	}
	// TTL must survive: pruning after the expiry drops the edges.
	if n := got.Prune(exp.Add(time.Hour)); n != 2 {
		t.Fatalf("restored TTL wrong: pruned %d", n)
	}
}

func TestGraphReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not gob data")); err == nil {
		t.Fatal("expected decode error")
	}
}
