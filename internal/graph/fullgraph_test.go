package graph

import (
	"reflect"
	"testing"
	"time"

	"turbo/internal/tensor"
)

// fullGraph builds a random multigraph with non-expiring edges so the
// live store, its snapshot and any generic view expose the identical
// edge set (randomGraph's expiries would make liveness time-dependent).
func fullGraph(seed uint64, nodes, edges int) *Graph {
	rng := tensor.NewRNG(seed | 1)
	g := New(3)
	exp := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nodes; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < edges; i++ {
		u := NodeID(rng.Intn(nodes))
		v := NodeID(rng.Intn(nodes))
		if u == v {
			continue
		}
		_ = g.AddEdgeWeight(EdgeType(rng.Intn(3)), u, v, rng.Float64()+0.01, exp)
	}
	g.AddNode(NodeID(nodes + 5)) // isolated node: rows with zero degree
	return g
}

// viewOnly hides the concrete *Snapshot type so FullSubgraph takes the
// generic GraphView path instead of the flat-array fast path.
type viewOnly struct{ GraphView }

// TestFullSubgraphPathsAgree pins the snapshot fast path, the generic
// path over the same snapshot, and the generic path over the live store
// to bitwise-identical subgraphs for raw and normalized weights and for
// edge-type masking.
func TestFullSubgraphPathsAgree(t *testing.T) {
	g := fullGraph(3, 40, 400)
	s := g.Snapshot()
	nodes := s.Nodes()
	for _, raw := range []bool{false, true} {
		for _, mask := range []EdgeMask{NoMask, MaskEdgeType(1)} {
			opts := FullOptions{Nodes: nodes, RawWeights: raw, Mask: mask}
			fast := FullSubgraph(s, opts)
			generic := FullSubgraph(viewOnly{s}, opts)
			live := FullSubgraph(g, opts)
			for _, sg := range []*Subgraph{fast, generic, live} {
				if len(sg.TypedEdges[1]) != 0 && mask.masked() == 1 {
					t.Fatalf("masked type still has edges")
				}
			}
			if !reflect.DeepEqual(fast.Nodes, generic.Nodes) || !reflect.DeepEqual(fast.Nodes, live.Nodes) {
				t.Fatalf("raw=%v node order differs across paths", raw)
			}
			if !reflect.DeepEqual(fast.TypedEdges, generic.TypedEdges) {
				t.Fatalf("raw=%v mask=%d: fast path edges differ from generic path", raw, mask.masked())
			}
			if !reflect.DeepEqual(fast.TypedEdges, live.TypedEdges) {
				t.Fatalf("raw=%v mask=%d: snapshot edges differ from live view", raw, mask.masked())
			}
		}
	}
}

// TestFullSubgraphDefaultsAndFilter checks the default node set (every
// node in sorted-ID order), the Filter restriction, and that a filtered
// export equals the equivalent explicit-Nodes export.
func TestFullSubgraphDefaultsAndFilter(t *testing.T) {
	g := fullGraph(7, 30, 250)
	s := g.Snapshot()
	all := FullSubgraph(s, FullOptions{})
	if !reflect.DeepEqual(all.Nodes, s.Nodes()) {
		t.Fatalf("default node set is not the sorted snapshot node list")
	}
	even := func(id NodeID) bool { return id%2 == 0 }
	filtered := FullSubgraph(s, FullOptions{Filter: even})
	var want []NodeID
	for _, id := range s.Nodes() {
		if even(id) {
			want = append(want, id)
		}
	}
	if !reflect.DeepEqual(filtered.Nodes, want) {
		t.Fatalf("filtered nodes %v, want %v", filtered.Nodes, want)
	}
	explicit := FullSubgraph(s, FullOptions{Nodes: want})
	if !reflect.DeepEqual(filtered.TypedEdges, explicit.TypedEdges) {
		t.Fatalf("filter path and explicit-Nodes path disagree")
	}
	for t2, edges := range filtered.TypedEdges {
		for _, e := range edges {
			if filtered.Nodes[e.Src]%2 != 0 || filtered.Nodes[e.Dst]%2 != 0 {
				t.Fatalf("type %d edge %v escapes the filtered set", t2, e)
			}
		}
	}
}

// TestFullSubgraphCallerOrder verifies a caller-supplied row order is
// preserved and the local indices stay consistent: reversing the node
// list must yield the same edge set under the row permutation.
func TestFullSubgraphCallerOrder(t *testing.T) {
	g := fullGraph(11, 20, 150)
	s := g.Snapshot()
	nodes := s.Nodes()
	rev := make([]NodeID, len(nodes))
	for i, id := range nodes {
		rev[len(nodes)-1-i] = id
	}
	fwd := FullSubgraph(s, FullOptions{Nodes: nodes})
	bwd := FullSubgraph(s, FullOptions{Nodes: rev})
	if !reflect.DeepEqual(bwd.Nodes, rev) {
		t.Fatalf("caller node order not preserved")
	}
	for i, id := range bwd.Nodes {
		if bwd.Index[id] != i {
			t.Fatalf("Index[%d] = %d, want %d", id, bwd.Index[id], i)
		}
	}
	type edgeKey struct {
		t    int
		u, v NodeID
		w    float64
	}
	collect := func(sg *Subgraph) map[edgeKey]int {
		m := make(map[edgeKey]int)
		for t2, edges := range sg.TypedEdges {
			for _, e := range edges {
				m[edgeKey{t2, sg.Nodes[e.Src], sg.Nodes[e.Dst], e.Weight}]++
			}
		}
		return m
	}
	if !reflect.DeepEqual(collect(fwd), collect(bwd)) {
		t.Fatalf("edge multiset changed under row permutation")
	}
}
