package graph

import (
	"math"
	"sort"
	"time"
)

// Snapshot is an immutable, lock-free view of a Graph at one epoch:
// flat CSR-like adjacency arrays per edge type plus precomputed typed
// weighted degrees, so EdgeWeight/NormalizedWeight are O(log d) binary
// searches with no lock and no degree scan. Snapshots are published by
// Graph.Snapshot() (copy-on-write: the live graph keeps mutating, the
// snapshot never changes) and are safe for unbounded concurrent use.
type Snapshot struct {
	epoch    uint64
	numTypes int

	ids   []NodeID         // sorted registered node IDs
	index map[NodeID]int32 // id → dense row

	// Per type t, row i of node ids[i] spans nbr[t][offsets[t][i]:offsets[t][i+1]],
	// sorted by neighbor ID; wts and exp run parallel to nbr.
	offsets [][]int32
	nbr     [][]NodeID
	wts     [][]float64
	exp     [][]time.Time
	deg     [][]float64 // deg[t][i] = typed weighted degree of ids[i]

	numEdges    int
	edgesByType []int
}

// Snapshot publishes an immutable view of the current graph state. It
// briefly read-locks every shard simultaneously (so no half-written edge
// is ever captured), copies adjacency into flat arrays, and stamps the
// result with a monotonically increasing epoch. Cost is O(V + E); the
// BN server calls it once per scheduler tick, off the prediction path.
func (g *Graph) Snapshot() *Snapshot {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
	defer func() {
		for i := range g.shards {
			g.shards[i].mu.RUnlock()
		}
	}()

	s := &Snapshot{
		epoch:    g.epoch.Add(1),
		numTypes: g.numTypes,
		numEdges: int(g.edgeCount.Load()),
	}
	s.edgesByType = make([]int, g.numTypes)
	for t := range s.edgesByType {
		s.edgesByType[t] = int(g.edgesByType[t].Load())
	}

	s.ids = make([]NodeID, 0, g.nodeCount.Load())
	for i := range g.shards {
		for id := range g.shards[i].nodes {
			s.ids = append(s.ids, id)
		}
	}
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	n := len(s.ids)
	s.index = make(map[NodeID]int32, n)
	for i, id := range s.ids {
		s.index[id] = int32(i)
	}

	s.offsets = make([][]int32, g.numTypes)
	s.nbr = make([][]NodeID, g.numTypes)
	s.wts = make([][]float64, g.numTypes)
	s.exp = make([][]time.Time, g.numTypes)
	s.deg = make([][]float64, g.numTypes)
	for t := 0; t < g.numTypes; t++ {
		halves := 2 * s.edgesByType[t]
		s.offsets[t] = make([]int32, n+1)
		s.nbr[t] = make([]NodeID, 0, halves)
		s.wts[t] = make([]float64, 0, halves)
		s.exp[t] = make([]time.Time, 0, halves)
		s.deg[t] = make([]float64, n)
	}
	for i, id := range s.ids {
		na := g.shards[shardOf(id)].adj[id]
		for t := 0; t < g.numTypes; t++ {
			if na != nil {
				for _, e := range na.byType[t] {
					s.nbr[t] = append(s.nbr[t], e.to)
					s.wts[t] = append(s.wts[t], e.weight)
					s.exp[t] = append(s.exp[t], e.expireAt)
				}
				s.deg[t][i] = na.deg[t]
			}
			s.offsets[t][i+1] = int32(len(s.nbr[t]))
		}
	}
	return s
}

// Epoch returns the snapshot's monotonically increasing publication
// number (unique per source graph).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumEdgeTypes returns how many edge types the snapshot supports.
func (s *Snapshot) NumEdgeTypes() int { return s.numTypes }

// NumNodes returns the number of registered nodes.
func (s *Snapshot) NumNodes() int { return len(s.ids) }

// NumEdges returns the number of distinct typed undirected edges.
func (s *Snapshot) NumEdges() int { return s.numEdges }

// Nodes returns all node IDs, sorted.
func (s *Snapshot) Nodes() []NodeID { return append([]NodeID(nil), s.ids...) }

// HasNode reports whether u was registered at snapshot time.
func (s *Snapshot) HasNode(u NodeID) bool {
	_, ok := s.index[u]
	return ok
}

// row returns the dense row of u, or -1.
func (s *Snapshot) row(u NodeID) int32 {
	if i, ok := s.index[u]; ok {
		return i
	}
	return -1
}

// rowSpan returns the [lo, hi) span of u's type-t adjacency.
func (s *Snapshot) rowSpan(u NodeID, t EdgeType) (int32, int32, bool) {
	if int(t) >= s.numTypes {
		return 0, 0, false
	}
	i := s.row(u)
	if i < 0 {
		return 0, 0, false
	}
	return s.offsets[t][i], s.offsets[t][i+1], true
}

// NeighborsByType returns u's neighbors over edges of type t, sorted by
// node ID.
func (s *Snapshot) NeighborsByType(u NodeID, t EdgeType) []Neighbor {
	lo, hi, ok := s.rowSpan(u, t)
	if !ok || lo == hi {
		return nil
	}
	ns := make([]Neighbor, hi-lo)
	for k := lo; k < hi; k++ {
		ns[k-lo] = Neighbor{Node: s.nbr[t][k], Weight: s.wts[t][k]}
	}
	return ns
}

// Neighbors returns u's distinct neighbors across all edge types, sorted.
func (s *Snapshot) Neighbors(u NodeID) []NodeID {
	i := s.row(u)
	if i < 0 {
		return nil
	}
	seen := make(map[NodeID]struct{})
	for t := 0; t < s.numTypes; t++ {
		lo, hi := s.offsets[t][i], s.offsets[t][i+1]
		for k := lo; k < hi; k++ {
			seen[s.nbr[t][k]] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachTypedNeighbor calls fn for every type-t neighbor of u in
// ascending node-ID order, with the raw (un-normalized) edge weight.
// Zero-allocation — the embedding star builder and the dirty-set BFS
// walk whole neighborhoods per node, where the allocating accessors
// would dominate.
func (s *Snapshot) ForEachTypedNeighbor(u NodeID, t EdgeType, fn func(v NodeID, w float64)) {
	lo, hi, ok := s.rowSpan(u, t)
	if !ok {
		return
	}
	for k := lo; k < hi; k++ {
		fn(s.nbr[t][k], s.wts[t][k])
	}
}

// ForEachNeighbor calls fn for every adjacency entry of u across all
// edge types; a neighbor connected by several types is visited once per
// type. Zero-allocation.
func (s *Snapshot) ForEachNeighbor(u NodeID, fn func(v NodeID)) {
	i := s.row(u)
	if i < 0 {
		return
	}
	for t := 0; t < s.numTypes; t++ {
		lo, hi := s.offsets[t][i], s.offsets[t][i+1]
		for k := lo; k < hi; k++ {
			fn(s.nbr[t][k])
		}
	}
}

// Degree returns the number of distinct neighbors of u across all types.
func (s *Snapshot) Degree(u NodeID) int { return len(s.Neighbors(u)) }

// WeightedDegree returns Σ over all types and neighbors of edge weights.
func (s *Snapshot) WeightedDegree(u NodeID) float64 {
	i := s.row(u)
	if i < 0 {
		return 0
	}
	var d float64
	for t := 0; t < s.numTypes; t++ {
		d += s.deg[t][i]
	}
	return d
}

// TypedWeightedDegree returns the precomputed deg'_r(u); O(1), no lock.
func (s *Snapshot) TypedWeightedDegree(u NodeID, t EdgeType) float64 {
	if int(t) >= s.numTypes {
		return 0
	}
	i := s.row(u)
	if i < 0 {
		return 0
	}
	return s.deg[t][i]
}

// findEdge binary-searches u's type-t row for v and returns the flat
// index, or -1.
func (s *Snapshot) findEdge(t EdgeType, u, v NodeID) int32 {
	lo, hi, ok := s.rowSpan(u, t)
	if !ok {
		return -1
	}
	row := s.nbr[t][lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if k < len(row) && row[k] == v {
		return lo + int32(k)
	}
	return -1
}

// EdgeWeight returns the weight of the typed edge (u, v), or 0.
func (s *Snapshot) EdgeWeight(t EdgeType, u, v NodeID) float64 {
	if k := s.findEdge(t, u, v); k >= 0 {
		return s.wts[t][k]
	}
	return 0
}

// NormalizedWeight returns the §III-A symmetric normalized weight in
// O(log d) with no lock: a binary search for the edge plus two O(1)
// precomputed degree lookups.
func (s *Snapshot) NormalizedWeight(t EdgeType, u, v NodeID) float64 {
	k := s.findEdge(t, u, v)
	if k < 0 {
		return 0
	}
	du := s.deg[t][s.row(u)]
	dv := s.TypedWeightedDegree(v, t)
	if du == 0 || dv == 0 {
		return 0
	}
	return s.wts[t][k] / math.Sqrt(du*dv)
}

// EdgeCountByType returns the number of undirected edges per type.
func (s *Snapshot) EdgeCountByType() []int {
	return append([]int(nil), s.edgesByType...)
}

// Stats summarizes the snapshot's size.
func (s *Snapshot) Stats() Stats {
	return Stats{Nodes: s.NumNodes(), Edges: s.NumEdges(), EdgesByType: s.EdgeCountByType()}
}

// Edges returns every typed undirected edge once (U < V), sorted by
// (type, U, V).
func (s *Snapshot) Edges() []Edge {
	var es []Edge
	for t := 0; t < s.numTypes; t++ {
		for i, u := range s.ids {
			lo, hi := s.offsets[t][i], s.offsets[t][i+1]
			for k := lo; k < hi; k++ {
				if v := s.nbr[t][k]; u < v {
					es = append(es, Edge{Type: EdgeType(t), U: u, V: v, Weight: s.wts[t][k], ExpireAt: s.exp[t][k]})
				}
			}
		}
	}
	// Rows are visited in ascending u and each row is sorted by v, so es
	// is already sorted by (type, U, V).
	return es
}
