package graph

import "math"

// fullgraph.go flattens an entire GraphView into one Subgraph — the
// full-graph analogue of SampleView. The layer-at-a-time sweep engine
// (internal/sweep) compiles this once per snapshot instead of sampling a
// computation subgraph once per audited user, and the eval harness
// delegates its full-batch compilation here so both paths share one
// definition of the §III-A edge set and normalization.

// FullOptions controls FullSubgraph extraction.
type FullOptions struct {
	// Nodes, when non-nil, fixes the subgraph's node set and row order.
	// Callers with an established alignment between rows and feature
	// vectors (eval's Assembled.Nodes) pass it so activations line up
	// with their feature matrix. Nil selects every node of the view in
	// sorted-ID order.
	Nodes []NodeID
	// Filter, when non-nil, restricts the node set (ignored when Nodes
	// is given); the sweep engine keeps only users with transactions.
	Filter func(NodeID) bool
	// RawWeights disables the §III-A symmetric normalization (ablation
	// benches).
	RawWeights bool
	// Mask omits all edges of one type (Fig. 7 edge ablation).
	Mask EdgeMask
}

// FullSubgraph builds a Subgraph over the given nodes with every
// (unmasked) typed edge among them. Edges of type t appear grouped by
// type, then by source row in node order, then by ascending neighbor ID
// — the deterministic order the GNN batch compiler relies on. Rows whose
// typed weighted degree is zero contribute no edges of that type (they
// have none), and edges to nodes outside the set are dropped, so the
// result is self-contained. A *Snapshot view takes a lock-free fast path
// over its flat adjacency arrays; any other view goes through the
// GraphView interface. Both paths produce bitwise-identical weights.
func FullSubgraph(g GraphView, opts FullOptions) *Subgraph {
	var nodes []NodeID
	if opts.Nodes != nil {
		nodes = append([]NodeID(nil), opts.Nodes...)
	} else {
		for _, id := range g.Nodes() {
			if opts.Filter == nil || opts.Filter(id) {
				nodes = append(nodes, id)
			}
		}
	}
	sg := &Subgraph{
		Nodes:      nodes,
		Index:      make(map[NodeID]int, len(nodes)),
		TypedEdges: make([][]LocalEdge, g.NumEdgeTypes()),
		Hops:       make([]int, len(nodes)),
	}
	for i, id := range sg.Nodes {
		sg.Index[id] = i
	}
	masked := opts.Mask.masked()
	if s, ok := g.(*Snapshot); ok {
		s.fillFullSubgraph(sg, masked, opts.RawWeights)
	} else {
		fillFullSubgraphView(g, sg, masked, opts.RawWeights)
	}
	return sg
}

// fillFullSubgraphView materializes the typed edges through the
// GraphView interface. The per-edge arithmetic — w = weight/√(du·dv)
// with full-graph typed weighted degrees — matches SampleView and the
// snapshot fast path exactly.
func fillFullSubgraphView(g GraphView, sg *Subgraph, masked int, rawWeights bool) {
	for t := 0; t < g.NumEdgeTypes(); t++ {
		if t == masked {
			continue
		}
		for i, u := range sg.Nodes {
			du := g.TypedWeightedDegree(u, EdgeType(t))
			if du == 0 {
				continue
			}
			for _, nb := range g.NeighborsByType(u, EdgeType(t)) {
				j, ok := sg.Index[nb.Node]
				if !ok {
					continue
				}
				w := nb.Weight
				if !rawWeights {
					dv := g.TypedWeightedDegree(nb.Node, EdgeType(t))
					if dv == 0 {
						continue
					}
					w = nb.Weight / math.Sqrt(du*dv)
				}
				sg.TypedEdges[t] = append(sg.TypedEdges[t], LocalEdge{Src: i, Dst: j, Weight: w})
			}
		}
	}
}

// fillFullSubgraph is the snapshot fast path: it walks the flat
// per-type adjacency arrays directly — no Neighbor slice allocation, no
// per-neighbor degree map lookups — and translates snapshot rows to
// local indices through a dense table. Iteration order (types outer,
// local rows in order, neighbors ascending by ID) and weight arithmetic
// are identical to fillFullSubgraphView.
func (s *Snapshot) fillFullSubgraph(sg *Subgraph, masked int, rawWeights bool) {
	rows := make([]int32, len(sg.Nodes))
	local := make([]int32, len(s.ids))
	for i := range local {
		local[i] = -1
	}
	for li, id := range sg.Nodes {
		rows[li] = s.row(id)
		if rows[li] >= 0 {
			local[rows[li]] = int32(li)
		}
	}
	for t := 0; t < s.numTypes; t++ {
		if t == masked {
			continue
		}
		for li, r := range rows {
			if r < 0 {
				continue
			}
			du := s.deg[t][r]
			if du == 0 {
				continue
			}
			lo, hi := s.offsets[t][r], s.offsets[t][r+1]
			for k := lo; k < hi; k++ {
				vr := s.row(s.nbr[t][k])
				lj := local[vr]
				if lj < 0 {
					continue
				}
				w := s.wts[t][k]
				if !rawWeights {
					dv := s.deg[t][vr]
					if dv == 0 {
						continue
					}
					w = s.wts[t][k] / math.Sqrt(du*dv)
				}
				sg.TypedEdges[t] = append(sg.TypedEdges[t], LocalEdge{Src: li, Dst: int(lj), Weight: w})
			}
		}
	}
}
