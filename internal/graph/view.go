package graph

// GraphView is the read-only boundary of the BN storage layer. Every
// reader outside this package — subgraph sampling, BN statistics, GNN
// batch construction, eval figure scans, the BLP/DTX baselines — consumes
// a GraphView, never the adjacency internals.
//
// Two implementations exist:
//
//   - *Graph: the live sharded store. Always fresh; each call takes the
//     owning shard's read lock.
//   - *Snapshot: an immutable copy-on-write epoch published by
//     Graph.Snapshot(). Completely lock-free; reads are as of the
//     snapshot epoch. The BN server serves predictions from the current
//     snapshot so the read path never contends with window-job writes.
type GraphView interface {
	// NumEdgeTypes returns how many edge types the view supports.
	NumEdgeTypes() int
	// NumNodes returns the number of registered nodes.
	NumNodes() int
	// NumEdges returns the number of distinct typed undirected edges.
	NumEdges() int
	// Nodes returns all node IDs, sorted.
	Nodes() []NodeID
	// HasNode reports whether u is registered.
	HasNode(u NodeID) bool
	// NeighborsByType returns u's neighbors over edges of type t, sorted
	// by node ID.
	NeighborsByType(u NodeID, t EdgeType) []Neighbor
	// Neighbors returns u's distinct neighbors across all types, sorted.
	Neighbors(u NodeID) []NodeID
	// Degree returns the number of distinct neighbors of u.
	Degree(u NodeID) int
	// WeightedDegree returns the total edge weight incident to u.
	WeightedDegree(u NodeID) float64
	// TypedWeightedDegree returns deg'_r(u), the §III-A typed weighted degree.
	TypedWeightedDegree(u NodeID, t EdgeType) float64
	// EdgeWeight returns the weight of the typed edge (u, v), or 0.
	EdgeWeight(t EdgeType, u, v NodeID) float64
	// NormalizedWeight returns the §III-A symmetric normalized weight.
	NormalizedWeight(t EdgeType, u, v NodeID) float64
	// EdgeCountByType returns the number of undirected edges per type.
	EdgeCountByType() []int
	// Stats summarizes the view's size.
	Stats() Stats
	// Edges returns every typed undirected edge once (U < V), sorted.
	Edges() []Edge
	// Sample extracts the k-hop computation subgraph of target (§III-A).
	Sample(target NodeID, opts SampleOptions) *Subgraph
	// FraudRatioByHop backs the Fig. 4d–g homophily study.
	FraudRatioByHop(u NodeID, maxHops, onlyType int, isFraud func(NodeID) bool) []float64
	// MeanDegreeByHop backs the Fig. 4h/4i structural study.
	MeanDegreeByHop(u NodeID, maxHops int, weighted bool) []float64
}

// Both implementations must satisfy the boundary.
var (
	_ GraphView = (*Graph)(nil)
	_ GraphView = (*Snapshot)(nil)
)
