package graph

import (
	"fmt"
	"io"
	"strings"
)

// dotColors assigns a Graphviz color per edge type, echoing Fig. 5/6 of
// the paper where edge color encodes the behavior type.
var dotColors = []string{
	"orange", "green", "red", "brown", "gray",
	"purple", "violet", "slategray", "lightslategray", "blue",
}

// WriteDOT renders the subgraph in Graphviz DOT format: node fill color
// comes from nodeClass (0 normal/green, 1 fraud/red, 2 pending/yellow),
// edge color encodes type and penwidth encodes weight. It reproduces the
// visualizations of Figs. 5 and 6.
func (s *Subgraph) WriteDOT(w io.Writer, title string, nodeClass func(NodeID) int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  layout=neato;\n  node [style=filled, shape=circle, fontsize=8];\n")
	for i, id := range s.Nodes {
		color := "palegreen"
		if nodeClass != nil {
			switch nodeClass(id) {
			case 1:
				color = "salmon"
			case 2:
				color = "khaki"
			}
		}
		fmt.Fprintf(&b, "  n%d [label=\"%d\", fillcolor=%s];\n", i, id, color)
	}
	maxW := 0.0
	for _, es := range s.TypedEdges {
		for _, e := range es {
			if e.Weight > maxW {
				maxW = e.Weight
			}
		}
	}
	if maxW == 0 {
		maxW = 1
	}
	for t, es := range s.TypedEdges {
		color := dotColors[t%len(dotColors)]
		for _, e := range es {
			if e.Src >= e.Dst { // undirected: emit each edge once
				continue
			}
			pen := 0.5 + 2.5*e.Weight/maxW
			fmt.Fprintf(&b, "  n%d -- n%d [color=%s, penwidth=%.2f];\n", e.Src, e.Dst, color, pen)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
