package graph

import (
	"sync"
	"testing"
	"time"

	"turbo/internal/tensor"
)

// TestConcurrentMutationAndReads hammers the sharded store from many
// goroutines at once — writers accumulating edges, a pruner expiring
// them, readers sampling subgraphs and walking hops, and a snapshotter
// republishing epochs — and then checks counter/adjacency consistency.
// Run with -race; this is the regression test for the shard locking
// protocol.
func TestConcurrentMutationAndReads(t *testing.T) {
	g := New(4)
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	const (
		writers = 4
		readers = 4
		nodes   = 200
		rounds  = 400
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			for i := 0; i < rounds; i++ {
				u := NodeID(rng.Intn(nodes))
				v := NodeID(rng.Intn(nodes))
				if u == v {
					continue
				}
				exp := base.Add(time.Duration(rng.Intn(96)) * time.Hour)
				_ = g.AddEdgeWeight(EdgeType(rng.Intn(4)), u, v, rng.Float64()+0.01, exp)
			}
		}(uint64(w + 1))
	}

	wg.Add(1)
	go func() { // pruner
		defer wg.Done()
		for i := 0; i < 20; i++ {
			g.Prune(base.Add(time.Duration(i*4) * time.Hour))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := NodeID(rng.Intn(nodes))
				g.Sample(u, SampleOptions{Hops: 2, MaxNeighbors: 8})
				g.NormalizedWeight(EdgeType(rng.Intn(4)), u, NodeID(rng.Intn(nodes)))
				g.FraudRatioByHop(u, 2, -1, func(n NodeID) bool { return n%2 == 0 })
				g.Stats()
			}
		}(uint64(100 + r))
	}

	wg.Add(1)
	go func() { // snapshotter: publish epochs while writes are in flight
		defer wg.Done()
		var last uint64
		for i := 0; i < 30; i++ {
			s := g.Snapshot()
			if s.Epoch() <= last {
				t.Error("snapshot epoch went backwards")
				return
			}
			last = s.Epoch()
			// A snapshot must be internally consistent even mid-write:
			// NumEdges equals the materialized edge list length.
			if len(s.Edges()) != s.NumEdges() {
				t.Errorf("snapshot inconsistent: %d edges listed, counter %d", len(s.Edges()), s.NumEdges())
				return
			}
		}
	}()

	// Wait for writers+pruner+snapshotter (3 groups), then release readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	// Quiescent consistency: counters match a full walk.
	if got, want := len(g.Edges()), g.NumEdges(); got != want {
		t.Fatalf("edge counter drifted: walk %d counter %d", got, want)
	}
	byType := make([]int, 4)
	for _, e := range g.Edges() {
		byType[e.Type]++
	}
	for typ, c := range g.EdgeCountByType() {
		if byType[typ] != c {
			t.Fatalf("type %d counter drifted: walk %d counter %d", typ, byType[typ], c)
		}
	}
	// Degree caches match a fresh sum.
	for _, u := range g.Nodes() {
		for typ := 0; typ < 4; typ++ {
			var sum float64
			for _, nb := range g.NeighborsByType(u, EdgeType(typ)) {
				sum += nb.Weight
			}
			if d := g.TypedWeightedDegree(u, EdgeType(typ)); !close2(d, sum) {
				t.Fatalf("degree cache drifted at node %d type %d: cache %v sum %v", u, typ, d, sum)
			}
		}
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
