// Package graph implements the time-evolving heterogeneous weighted
// multigraph underlying the behavior network (BN): user nodes connected
// by typed, weighted, TTL-bounded undirected edges, with k-hop subgraph
// extraction and the symmetric edge-weight normalization of §III-A.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a node (a user).
type NodeID uint32

// EdgeType identifies an edge type; in the BN it equals the behavior type.
type EdgeType uint8

// Edge is one typed, weighted undirected edge.
type Edge struct {
	Type     EdgeType
	U, V     NodeID
	Weight   float64
	ExpireAt time.Time
}

// Neighbor is one adjacency entry.
type Neighbor struct {
	Node   NodeID
	Weight float64
}

type edgeVal struct {
	weight   float64
	expireAt time.Time
}

// Graph is a concurrency-safe heterogeneous multigraph. An edge of a
// given type between two nodes is unique; repeated additions accumulate
// weight and extend the TTL, matching Algorithm 1 where weights from
// different windows and window sizes sum onto a single typed edge.
type Graph struct {
	mu       sync.RWMutex
	numTypes int
	adj      []map[NodeID]map[NodeID]*edgeVal // adj[type][u][v]
	nodes    map[NodeID]struct{}
	numEdges int // undirected edges counted once, summed over types
}

// New creates a graph supporting edge types [0, numTypes).
func New(numTypes int) *Graph {
	if numTypes <= 0 {
		panic("graph: numTypes must be positive")
	}
	g := &Graph{
		numTypes: numTypes,
		adj:      make([]map[NodeID]map[NodeID]*edgeVal, numTypes),
		nodes:    make(map[NodeID]struct{}),
	}
	for i := range g.adj {
		g.adj[i] = make(map[NodeID]map[NodeID]*edgeVal)
	}
	return g
}

// NumEdgeTypes returns how many edge types the graph supports.
func (g *Graph) NumEdgeTypes() int { return g.numTypes }

// AddNode registers a node even if it has no edges yet.
func (g *Graph) AddNode(u NodeID) {
	g.mu.Lock()
	g.nodes[u] = struct{}{}
	g.mu.Unlock()
}

// AddEdgeWeight accumulates weight w onto the typed undirected edge
// (u, v) and extends its expiry to at least expireAt. Self-loops and
// non-positive weights are rejected.
func (g *Graph) AddEdgeWeight(t EdgeType, u, v NodeID, w float64, expireAt time.Time) error {
	if int(t) >= g.numTypes {
		return fmt.Errorf("graph: edge type %d out of range [0,%d)", t, g.numTypes)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: invalid edge weight %v", w)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nodes[u] = struct{}{}
	g.nodes[v] = struct{}{}
	if g.upsertHalf(t, u, v, w, expireAt) {
		g.numEdges++
	}
	g.upsertHalf(t, v, u, w, expireAt)
	return nil
}

// upsertHalf updates one direction and reports whether it created a new edge.
func (g *Graph) upsertHalf(t EdgeType, u, v NodeID, w float64, expireAt time.Time) bool {
	m := g.adj[t][u]
	if m == nil {
		m = make(map[NodeID]*edgeVal)
		g.adj[t][u] = m
	}
	if e := m[v]; e != nil {
		e.weight += w
		if expireAt.After(e.expireAt) {
			e.expireAt = expireAt
		}
		return false
	}
	m[v] = &edgeVal{weight: w, expireAt: expireAt}
	return true
}

// EdgeWeight returns the weight of the typed edge (u, v), or 0.
func (g *Graph) EdgeWeight(t EdgeType, u, v NodeID) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if e := g.adj[t][u][v]; e != nil {
		return e.weight
	}
	return 0
}

// NumNodes returns the number of registered nodes.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the number of distinct typed undirected edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.numEdges
}

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HasNode reports whether u is registered.
func (g *Graph) HasNode(u NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[u]
	return ok
}

// NeighborsByType returns u's neighbors over edges of type t, sorted by
// node ID for determinism.
func (g *Graph) NeighborsByType(u NodeID, t EdgeType) []Neighbor {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m := g.adj[t][u]
	ns := make([]Neighbor, 0, len(m))
	for v, e := range m {
		ns = append(ns, Neighbor{Node: v, Weight: e.weight})
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].Node < ns[j].Node })
	return ns
}

// Neighbors returns u's distinct neighbors across all edge types, sorted.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[NodeID]struct{})
	for t := 0; t < g.numTypes; t++ {
		for v := range g.adj[t][u] {
			seen[v] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of distinct neighbors of u across all types.
func (g *Graph) Degree(u NodeID) int { return len(g.Neighbors(u)) }

// WeightedDegree returns Σ over all types and neighbors of edge weights.
func (g *Graph) WeightedDegree(u NodeID) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var s float64
	for t := 0; t < g.numTypes; t++ {
		for _, e := range g.adj[t][u] {
			s += e.weight
		}
	}
	return s
}

// TypedWeightedDegree returns deg'_r(u) = Σ_{i∈N_r(u)} w(u, i), the
// weighted degree on one edge type used by the §III-A normalization.
func (g *Graph) TypedWeightedDegree(u NodeID, t EdgeType) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var s float64
	for _, e := range g.adj[t][u] {
		s += e.weight
	}
	return s
}

// NormalizedWeight returns w'_r(u,v) = w_r(u,v)·(deg'_r(u)·deg'_r(v))^{-1/2},
// the type-aware symmetric normalization of §III-A, or 0 if no edge.
func (g *Graph) NormalizedWeight(t EdgeType, u, v NodeID) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e := g.adj[t][u][v]
	if e == nil {
		return 0
	}
	du := 0.0
	for _, ev := range g.adj[t][u] {
		du += ev.weight
	}
	dv := 0.0
	for _, ev := range g.adj[t][v] {
		dv += ev.weight
	}
	if du == 0 || dv == 0 {
		return 0
	}
	return e.weight / math.Sqrt(du*dv)
}

// Prune removes edges whose TTL expired before now and returns how many
// undirected edges were dropped. Isolated nodes remain registered.
func (g *Graph) Prune(now time.Time) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	dropped := 0
	for t := 0; t < g.numTypes; t++ {
		for u, m := range g.adj[t] {
			for v, e := range m {
				if e.expireAt.Before(now) {
					delete(m, v)
					if u < v { // count each undirected edge once
						dropped++
					}
				}
			}
			if len(m) == 0 {
				delete(g.adj[t], u)
			}
		}
	}
	g.numEdges -= dropped
	return dropped
}

// Edges returns every typed undirected edge once (U < V), sorted by
// (type, U, V) for determinism.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var es []Edge
	for t := 0; t < g.numTypes; t++ {
		for u, m := range g.adj[t] {
			for v, e := range m {
				if u < v {
					es = append(es, Edge{Type: EdgeType(t), U: u, V: v, Weight: e.weight, ExpireAt: e.expireAt})
				}
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return es
}

// EdgeCountByType returns the number of undirected edges per type.
func (g *Graph) EdgeCountByType() []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	counts := make([]int, g.numTypes)
	for t := 0; t < g.numTypes; t++ {
		for u, m := range g.adj[t] {
			for v := range m {
				if u < v {
					counts[t]++
				}
			}
		}
	}
	return counts
}

// Stats summarizes the graph.
type Stats struct {
	Nodes       int
	Edges       int
	EdgesByType []int
}

// Stats returns a snapshot of graph size.
func (g *Graph) Stats() Stats {
	return Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), EdgesByType: g.EdgeCountByType()}
}
