// Package graph implements the time-evolving heterogeneous weighted
// multigraph underlying the behavior network (BN): user nodes connected
// by typed, weighted, TTL-bounded undirected edges, with k-hop subgraph
// extraction and the symmetric edge-weight normalization of §III-A.
//
// Storage is sharded by NodeID: each shard owns the adjacency of its
// nodes behind its own RWMutex, so concurrent window-job writes and
// reads on different shards never contend. Readers that must not touch
// any lock at all (the prediction path) consume an immutable Snapshot
// published by Snapshot(); both *Graph and *Snapshot satisfy the
// read-only GraphView interface.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a node (a user).
type NodeID uint32

// EdgeType identifies an edge type; in the BN it equals the behavior type.
type EdgeType uint8

// Edge is one typed, weighted undirected edge.
type Edge struct {
	Type     EdgeType
	U, V     NodeID
	Weight   float64
	ExpireAt time.Time
}

// Neighbor is one adjacency entry.
type Neighbor struct {
	Node   NodeID
	Weight float64
}

// halfEdge is one direction of an undirected edge. AddEdgeWeight always
// writes both halves with identical weight and expiry, so the two halves
// of an edge never disagree.
type halfEdge struct {
	to       NodeID
	weight   float64
	expireAt time.Time
}

// nodeAdj is the adjacency of one node: per edge type, a slice of half
// edges kept sorted by destination NodeID (binary-searchable), plus the
// cached typed weighted degree deg'_r(u) maintained incrementally so the
// §III-A normalization never rescans adjacency.
type nodeAdj struct {
	byType [][]halfEdge
	deg    []float64
}

// shard owns the registered-node set and adjacency of the NodeIDs that
// hash to it.
type shard struct {
	mu    sync.RWMutex
	nodes map[NodeID]struct{}
	adj   map[NodeID]*nodeAdj
}

// numShards is the shard count (power of two). 32 shards keep write
// contention negligible up to tens of scheduler goroutines while the
// full-lock operations (Snapshot) stay cheap.
const numShards = 32

func shardOf(u NodeID) uint32 { return uint32(u) & (numShards - 1) }

// Graph is a concurrency-safe heterogeneous multigraph. An edge of a
// given type between two nodes is unique; repeated additions accumulate
// weight and extend the TTL, matching Algorithm 1 where weights from
// different windows and window sizes sum onto a single typed edge.
type Graph struct {
	numTypes int
	shards   [numShards]shard

	nodeCount   atomic.Int64
	edgeCount   atomic.Int64 // undirected edges counted once, summed over types
	edgesByType []atomic.Int64
	epoch       atomic.Uint64 // bumped by Snapshot()

	// deltaObs, when set, is called once per edge mutation (weight
	// accumulation or TTL expiry) with the edge endpoints — the hook the
	// embedding dirty-set tracker hangs off. Called outside shard locks.
	deltaObs atomic.Pointer[func(u, v NodeID)]
}

// SetDeltaObserver registers fn to observe every edge delta: each
// AddEdgeWeight call and each undirected edge dropped by Prune fires fn
// once with the edge endpoints, after the shard locks are released. fn
// must be cheap and must not mutate the graph; pass nil to unregister.
func (g *Graph) SetDeltaObserver(fn func(u, v NodeID)) {
	if fn == nil {
		g.deltaObs.Store(nil)
		return
	}
	g.deltaObs.Store(&fn)
}

// notifyDelta fires the registered delta observer, if any.
func (g *Graph) notifyDelta(u, v NodeID) {
	if obs := g.deltaObs.Load(); obs != nil {
		(*obs)(u, v)
	}
}

// New creates a graph supporting edge types [0, numTypes).
func New(numTypes int) *Graph {
	if numTypes <= 0 {
		panic("graph: numTypes must be positive")
	}
	g := &Graph{numTypes: numTypes, edgesByType: make([]atomic.Int64, numTypes)}
	for i := range g.shards {
		g.shards[i].nodes = make(map[NodeID]struct{})
		g.shards[i].adj = make(map[NodeID]*nodeAdj)
	}
	return g
}

// NumEdgeTypes returns how many edge types the graph supports.
func (g *Graph) NumEdgeTypes() int { return g.numTypes }

// AddNode registers a node even if it has no edges yet.
func (g *Graph) AddNode(u NodeID) {
	sh := &g.shards[shardOf(u)]
	sh.mu.Lock()
	g.registerLocked(sh, u)
	sh.mu.Unlock()
}

// registerLocked adds u to sh's node set; sh.mu must be held.
func (g *Graph) registerLocked(sh *shard, u NodeID) {
	if _, ok := sh.nodes[u]; !ok {
		sh.nodes[u] = struct{}{}
		g.nodeCount.Add(1)
	}
}

// AddEdgeWeight accumulates weight w onto the typed undirected edge
// (u, v) and extends its expiry to at least expireAt. Self-loops and
// non-positive weights are rejected.
func (g *Graph) AddEdgeWeight(t EdgeType, u, v NodeID, w float64, expireAt time.Time) error {
	if int(t) >= g.numTypes {
		return fmt.Errorf("graph: edge type %d out of range [0,%d)", t, g.numTypes)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: invalid edge weight %v", w)
	}
	iu, iv := shardOf(u), shardOf(v)
	su, sv := &g.shards[iu], &g.shards[iv]
	// Lock both endpoint shards in index order so the edge appears in
	// both halves atomically (Snapshot holds every shard lock and thus
	// never observes half an edge).
	g.lockPair(iu, iv)
	g.registerLocked(su, u)
	g.registerLocked(sv, v)
	if g.upsertHalf(su, t, u, v, w, expireAt) {
		g.edgeCount.Add(1)
		g.edgesByType[t].Add(1)
	}
	g.upsertHalf(sv, t, v, u, w, expireAt)
	g.unlockPair(iu, iv)
	g.notifyDelta(u, v)
	return nil
}

// lockPair write-locks shards a and b in ascending index order (deadlock
// freedom against concurrent cross-shard writers).
func (g *Graph) lockPair(a, b uint32) {
	if a == b {
		g.shards[a].mu.Lock()
		return
	}
	if a > b {
		a, b = b, a
	}
	g.shards[a].mu.Lock()
	g.shards[b].mu.Lock()
}

func (g *Graph) unlockPair(a, b uint32) {
	g.shards[a].mu.Unlock()
	if a != b {
		g.shards[b].mu.Unlock()
	}
}

// upsertHalf updates one direction inside sh (locked by the caller) and
// reports whether it created a new edge.
func (g *Graph) upsertHalf(sh *shard, t EdgeType, u, v NodeID, w float64, expireAt time.Time) bool {
	na := sh.adj[u]
	if na == nil {
		na = &nodeAdj{byType: make([][]halfEdge, g.numTypes), deg: make([]float64, g.numTypes)}
		sh.adj[u] = na
	}
	list := na.byType[t]
	i := sort.Search(len(list), func(i int) bool { return list[i].to >= v })
	if i < len(list) && list[i].to == v {
		list[i].weight += w
		if expireAt.After(list[i].expireAt) {
			list[i].expireAt = expireAt
		}
		na.deg[t] += w
		return false
	}
	list = append(list, halfEdge{})
	copy(list[i+1:], list[i:])
	list[i] = halfEdge{to: v, weight: w, expireAt: expireAt}
	na.byType[t] = list
	na.deg[t] += w
	return true
}

// findHalf returns the half edge (u → v, type t) inside sh, or nil;
// sh.mu must be held (read or write).
func findHalf(sh *shard, t EdgeType, u, v NodeID) *halfEdge {
	na := sh.adj[u]
	if na == nil {
		return nil
	}
	list := na.byType[t]
	i := sort.Search(len(list), func(i int) bool { return list[i].to >= v })
	if i < len(list) && list[i].to == v {
		return &list[i]
	}
	return nil
}

// EdgeWeight returns the weight of the typed edge (u, v), or 0.
func (g *Graph) EdgeWeight(t EdgeType, u, v NodeID) float64 {
	if int(t) >= g.numTypes {
		return 0
	}
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e := findHalf(sh, t, u, v); e != nil {
		return e.weight
	}
	return 0
}

// NumNodes returns the number of registered nodes.
func (g *Graph) NumNodes() int { return int(g.nodeCount.Load()) }

// ShardSizes returns the registered-node count of every shard — the
// telemetry hook behind the shard-skew gauge (a hot shard means one
// NodeID range is absorbing most writes). Each shard is read-locked
// individually, so the scan never blocks writers globally.
func (g *Graph) ShardSizes() []int {
	out := make([]int, len(g.shards))
	for i := range g.shards {
		g.shards[i].mu.RLock()
		out[i] = len(g.shards[i].nodes)
		g.shards[i].mu.RUnlock()
	}
	return out
}

// ShardSkew returns max/mean of the per-shard node counts (1 = perfectly
// balanced, 0 = empty graph).
func (g *Graph) ShardSkew() float64 {
	sizes := g.ShardSizes()
	total, max := 0, 0
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(sizes)) / float64(total)
}

// NumEdges returns the number of distinct typed undirected edges.
func (g *Graph) NumEdges() int { return int(g.edgeCount.Load()) }

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, g.NumNodes())
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for id := range sh.nodes {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HasNode reports whether u is registered.
func (g *Graph) HasNode(u NodeID) bool {
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	_, ok := sh.nodes[u]
	sh.mu.RUnlock()
	return ok
}

// NeighborsByType returns u's neighbors over edges of type t, sorted by
// node ID for determinism.
func (g *Graph) NeighborsByType(u NodeID, t EdgeType) []Neighbor {
	if int(t) >= g.numTypes {
		return nil
	}
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	na := sh.adj[u]
	if na == nil || len(na.byType[t]) == 0 {
		return nil
	}
	list := na.byType[t]
	ns := make([]Neighbor, len(list))
	for i, e := range list {
		ns[i] = Neighbor{Node: e.to, Weight: e.weight}
	}
	return ns
}

// Neighbors returns u's distinct neighbors across all edge types, sorted.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	na := sh.adj[u]
	if na == nil {
		return nil
	}
	seen := make(map[NodeID]struct{})
	for t := 0; t < g.numTypes; t++ {
		for _, e := range na.byType[t] {
			seen[e.to] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of distinct neighbors of u across all types.
func (g *Graph) Degree(u NodeID) int { return len(g.Neighbors(u)) }

// WeightedDegree returns Σ over all types and neighbors of edge weights.
func (g *Graph) WeightedDegree(u NodeID) float64 {
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	na := sh.adj[u]
	if na == nil {
		return 0
	}
	var s float64
	for _, d := range na.deg {
		s += d
	}
	return s
}

// TypedWeightedDegree returns deg'_r(u) = Σ_{i∈N_r(u)} w(u, i), the
// weighted degree on one edge type used by the §III-A normalization.
// The value is maintained incrementally, so this is O(1).
func (g *Graph) TypedWeightedDegree(u NodeID, t EdgeType) float64 {
	if int(t) >= g.numTypes {
		return 0
	}
	sh := &g.shards[shardOf(u)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if na := sh.adj[u]; na != nil {
		return na.deg[t]
	}
	return 0
}

// NormalizedWeight returns w'_r(u,v) = w_r(u,v)·(deg'_r(u)·deg'_r(v))^{-1/2},
// the type-aware symmetric normalization of §III-A, or 0 if no edge.
// With cached typed degrees this is O(log d) per call.
func (g *Graph) NormalizedWeight(t EdgeType, u, v NodeID) float64 {
	if int(t) >= g.numTypes {
		return 0
	}
	su := &g.shards[shardOf(u)]
	su.mu.RLock()
	e := findHalf(su, t, u, v)
	var w, du float64
	if e != nil {
		w = e.weight
		du = su.adj[u].deg[t]
	}
	su.mu.RUnlock()
	if e == nil {
		return 0
	}
	dv := g.TypedWeightedDegree(v, t)
	if du == 0 || dv == 0 {
		return 0
	}
	return w / math.Sqrt(du*dv)
}

// Prune removes edges whose TTL expired before now and returns how many
// undirected edges were dropped. Nodes whose adjacency becomes empty are
// dropped from the per-shard adjacency index (reclaiming memory), but
// stay in the registered-node set: isolated nodes remain registered.
func (g *Graph) Prune(now time.Time) int {
	dropped := 0
	var expired [][2]NodeID // fired once per undirected edge, outside locks
	observing := g.deltaObs.Load() != nil
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for u, na := range sh.adj {
			empty := true
			for t := 0; t < g.numTypes; t++ {
				list := na.byType[t]
				if len(list) == 0 {
					continue
				}
				kept := list[:0]
				var deg float64
				for _, e := range list {
					if e.expireAt.Before(now) {
						if u < e.to { // count each undirected edge once
							dropped++
							g.edgesByType[t].Add(-1)
							if observing {
								expired = append(expired, [2]NodeID{u, e.to})
							}
						}
						continue
					}
					kept = append(kept, e)
					deg += e.weight
				}
				na.byType[t] = kept
				na.deg[t] = deg
				if len(kept) > 0 {
					empty = false
				}
			}
			if empty {
				delete(sh.adj, u)
			}
		}
		sh.mu.Unlock()
	}
	g.edgeCount.Add(int64(-dropped))
	for _, p := range expired {
		g.notifyDelta(p[0], p[1])
	}
	return dropped
}

// Edges returns every typed undirected edge once (U < V), sorted by
// (type, U, V) for determinism.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for u, na := range sh.adj {
			for t := 0; t < g.numTypes; t++ {
				for _, e := range na.byType[t] {
					if u < e.to {
						es = append(es, Edge{Type: EdgeType(t), U: u, V: e.to, Weight: e.weight, ExpireAt: e.expireAt})
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return es
}

// EdgeCountByType returns the number of undirected edges per type. The
// counters are maintained incrementally, so this is O(numTypes), not a
// full adjacency walk.
func (g *Graph) EdgeCountByType() []int {
	counts := make([]int, g.numTypes)
	for t := range counts {
		counts[t] = int(g.edgesByType[t].Load())
	}
	return counts
}

// Stats summarizes the graph.
type Stats struct {
	Nodes       int
	Edges       int
	EdgesByType []int
}

// Stats returns a snapshot of graph size.
func (g *Graph) Stats() Stats {
	return Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), EdgesByType: g.EdgeCountByType()}
}
