package graph

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// gobGraph is the gob-serialized form of a graph (distinct from the
// in-memory read Snapshot).
type gobGraph struct {
	NumTypes int
	Nodes    []NodeID
	Edges    []Edge
}

// Write serializes the graph (nodes, typed edges with weights and
// expiries) in gob format, so a BN server can persist its state across
// restarts (the paper's local-database role).
func (g *Graph) Write(w io.Writer) error {
	snap := gobGraph{
		NumTypes: g.NumEdgeTypes(),
		Nodes:    g.Nodes(),
		Edges:    g.Edges(),
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("graph: encode snapshot: %w", err)
	}
	return nil
}

// Read reconstructs a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	var snap gobGraph
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("graph: decode snapshot: %w", err)
	}
	if snap.NumTypes <= 0 {
		return nil, fmt.Errorf("graph: snapshot has invalid type count %d", snap.NumTypes)
	}
	g := New(snap.NumTypes)
	for _, n := range snap.Nodes {
		g.AddNode(n)
	}
	for _, e := range snap.Edges {
		exp := e.ExpireAt
		if exp.IsZero() {
			exp = time.Unix(1<<40, 0) // effectively immortal
		}
		if err := g.AddEdgeWeight(e.Type, e.U, e.V, e.Weight, exp); err != nil {
			return nil, fmt.Errorf("graph: snapshot edge %v: %w", e, err)
		}
	}
	return g, nil
}
