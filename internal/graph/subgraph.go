package graph

import (
	"math"
	"sort"

	"turbo/internal/tensor"
)

// LocalEdge is an edge inside a Subgraph, expressed in local indices.
type LocalEdge struct {
	Src, Dst int // local node indices
	Weight   float64
}

// Subgraph is the computation subgraph G_v of §III-A: the k-hop
// neighborhood a GNN needs to compute the target node's representation,
// extracted so inference is inductive (the model never sees the full BN).
// Nodes[0] is always the target node. TypedEdges[t] holds, per edge type,
// the directed adjacency (both directions of each undirected edge) with
// the §III-A symmetric normalized weights.
type Subgraph struct {
	Nodes      []NodeID
	Index      map[NodeID]int
	TypedEdges [][]LocalEdge
	Hops       []int // hop distance of each node from the target
}

// NumNodes returns the node count.
func (s *Subgraph) NumNodes() int { return len(s.Nodes) }

// NumEdges returns the number of directed typed edges.
func (s *Subgraph) NumEdges() int {
	n := 0
	for _, es := range s.TypedEdges {
		n += len(es)
	}
	return n
}

// SampleOptions controls computation-subgraph extraction.
type SampleOptions struct {
	// Hops is the neighborhood radius (the paper uses k = 2).
	Hops int
	// MaxNeighbors caps the number of neighbors expanded per node per
	// type per hop (GraphSAGE-style fixed-size sampling). 0 = unlimited.
	MaxNeighbors int
	// Filter, when non-nil, restricts the subgraph to accepted nodes;
	// the BN server uses it to keep only users with transactions.
	Filter func(NodeID) bool
	// RNG drives neighbor sampling when MaxNeighbors truncates; nil
	// selects the highest-weight neighbors deterministically.
	RNG *tensor.RNG
	// RawWeights disables the symmetric normalization (used by ablation
	// benches); the default is normalized weights as in the paper.
	RawWeights bool
	// Mask omits all edges of one type (Fig. 7 edge ablation). The zero
	// value NoMask keeps every type; use MaskEdgeType to build a mask.
	Mask EdgeMask
}

// EdgeMask optionally designates one edge type to exclude from sampling.
// The zero value excludes nothing.
type EdgeMask int

// NoMask keeps all edge types.
const NoMask EdgeMask = 0

// MaskEdgeType returns a mask excluding edges of type t.
func MaskEdgeType(t EdgeType) EdgeMask { return EdgeMask(t) + 1 }

// masked returns the excluded type index, or -1.
func (m EdgeMask) masked() int { return int(m) - 1 }

// Sample extracts the computation subgraph of target from the live graph.
func (g *Graph) Sample(target NodeID, opts SampleOptions) *Subgraph {
	return SampleView(g, target, opts)
}

// Sample extracts the computation subgraph of target from the snapshot,
// acquiring no locks.
func (s *Snapshot) Sample(target NodeID, opts SampleOptions) *Subgraph {
	return SampleView(s, target, opts)
}

// SampleView extracts the computation subgraph of target under opts from
// any GraphView. The target is always included even when Filter rejects
// it.
func SampleView(g GraphView, target NodeID, opts SampleOptions) *Subgraph {
	if opts.Hops <= 0 {
		opts.Hops = 2
	}
	numTypes := g.NumEdgeTypes()
	masked := opts.Mask.masked()
	sg := &Subgraph{
		Nodes:      []NodeID{target},
		Index:      map[NodeID]int{target: 0},
		TypedEdges: make([][]LocalEdge, numTypes),
		Hops:       []int{0},
	}
	frontier := []NodeID{target}
	for hop := 1; hop <= opts.Hops; hop++ {
		var next []NodeID
		for _, u := range frontier {
			for t := 0; t < numTypes; t++ {
				if t == masked {
					continue
				}
				ns := g.NeighborsByType(u, EdgeType(t))
				ns = filterNeighbors(ns, opts.Filter)
				ns = capNeighbors(ns, opts.MaxNeighbors, opts.RNG)
				for _, nb := range ns {
					if _, ok := sg.Index[nb.Node]; !ok {
						sg.Index[nb.Node] = len(sg.Nodes)
						sg.Nodes = append(sg.Nodes, nb.Node)
						sg.Hops = append(sg.Hops, hop)
						next = append(next, nb.Node)
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	// Materialize all typed edges among included nodes. Typed weighted
	// degrees (over the full graph, as the paper normalizes) are cached
	// per subgraph node to avoid rescanning adjacency per edge.
	for t := 0; t < numTypes; t++ {
		if t == masked {
			continue
		}
		var deg []float64
		if !opts.RawWeights {
			deg = make([]float64, len(sg.Nodes))
			for li, u := range sg.Nodes {
				deg[li] = g.TypedWeightedDegree(u, EdgeType(t))
			}
		}
		for li, u := range sg.Nodes {
			for _, nb := range g.NeighborsByType(u, EdgeType(t)) {
				lj, ok := sg.Index[nb.Node]
				if !ok {
					continue
				}
				w := nb.Weight
				if !opts.RawWeights {
					if deg[li] == 0 || deg[lj] == 0 {
						continue
					}
					w = nb.Weight / math.Sqrt(deg[li]*deg[lj])
				}
				if w <= 0 {
					continue
				}
				sg.TypedEdges[t] = append(sg.TypedEdges[t], LocalEdge{Src: li, Dst: lj, Weight: w})
			}
		}
	}
	return sg
}

func filterNeighbors(ns []Neighbor, filter func(NodeID) bool) []Neighbor {
	if filter == nil {
		return ns
	}
	out := ns[:0]
	for _, n := range ns {
		if filter(n.Node) {
			out = append(out, n)
		}
	}
	return out
}

func capNeighbors(ns []Neighbor, max int, rng *tensor.RNG) []Neighbor {
	if max <= 0 || len(ns) <= max {
		return ns
	}
	if rng == nil {
		sorted := append([]Neighbor(nil), ns...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Weight != sorted[j].Weight {
				return sorted[i].Weight > sorted[j].Weight
			}
			return sorted[i].Node < sorted[j].Node
		})
		return sorted[:max]
	}
	sampled := append([]Neighbor(nil), ns...)
	rng.Shuffle(len(sampled), func(i, j int) { sampled[i], sampled[j] = sampled[j], sampled[i] })
	return sampled[:max]
}

// FraudRatioByHop delegates to FraudRatioByHopView on the live graph.
func (g *Graph) FraudRatioByHop(u NodeID, maxHops, onlyType int, isFraud func(NodeID) bool) []float64 {
	return FraudRatioByHopView(g, u, maxHops, onlyType, isFraud)
}

// FraudRatioByHop delegates to FraudRatioByHopView on the snapshot.
func (s *Snapshot) FraudRatioByHop(u NodeID, maxHops, onlyType int, isFraud func(NodeID) bool) []float64 {
	return FraudRatioByHopView(s, u, maxHops, onlyType, isFraud)
}

// FraudRatioByHopView returns, for each hop 1..maxHops from node u, the
// fraction of nodes at exactly that hop for which isFraud is true. It
// backs the Fig. 4d–g homophily study: onlyType < 0 walks all edge types
// (Fig. 4d); onlyType >= 0 restricts the walk to that edge type
// (Fig. 4e–g per-type homophily). A hop with no nodes reports 0.
func FraudRatioByHopView(g GraphView, u NodeID, maxHops, onlyType int, isFraud func(NodeID) bool) []float64 {
	hops := hopSets(g, u, maxHops, onlyType)
	out := make([]float64, maxHops)
	for h := 1; h <= maxHops; h++ {
		set := hops[h]
		if len(set) == 0 {
			continue
		}
		fraud := 0
		for v := range set {
			if isFraud(v) {
				fraud++
			}
		}
		out[h-1] = float64(fraud) / float64(len(set))
	}
	return out
}

// MeanDegreeByHop delegates to MeanDegreeByHopView on the live graph.
func (g *Graph) MeanDegreeByHop(u NodeID, maxHops int, weighted bool) []float64 {
	return MeanDegreeByHopView(g, u, maxHops, weighted)
}

// MeanDegreeByHop delegates to MeanDegreeByHopView on the snapshot.
func (s *Snapshot) MeanDegreeByHop(u NodeID, maxHops int, weighted bool) []float64 {
	return MeanDegreeByHopView(s, u, maxHops, weighted)
}

// MeanDegreeByHopView returns the mean (optionally weighted) degree of
// the nodes at each hop 1..maxHops from u — the Fig. 4h/4i structural
// study.
func MeanDegreeByHopView(g GraphView, u NodeID, maxHops int, weighted bool) []float64 {
	hops := hopSets(g, u, maxHops, -1) // all edge types
	out := make([]float64, maxHops)
	for h := 1; h <= maxHops; h++ {
		set := hops[h]
		if len(set) == 0 {
			continue
		}
		var s float64
		for v := range set {
			if weighted {
				s += g.WeightedDegree(v)
			} else {
				s += float64(g.Degree(v))
			}
		}
		out[h-1] = s / float64(len(set))
	}
	return out
}

// hopSets returns, for hops 0..maxHops, the set of nodes first reached at
// exactly that hop; onlyType >= 0 restricts the walk to that edge type.
func hopSets(g GraphView, u NodeID, maxHops, onlyType int) []map[NodeID]struct{} {
	numTypes := g.NumEdgeTypes()
	sets := make([]map[NodeID]struct{}, maxHops+1)
	sets[0] = map[NodeID]struct{}{u: {}}
	visited := map[NodeID]struct{}{u: {}}
	frontier := []NodeID{u}
	for h := 1; h <= maxHops; h++ {
		sets[h] = make(map[NodeID]struct{})
		var next []NodeID
		for _, x := range frontier {
			for t := 0; t < numTypes; t++ {
				if onlyType >= 0 && t != onlyType {
					continue
				}
				for _, nb := range g.NeighborsByType(x, EdgeType(t)) {
					if _, ok := visited[nb.Node]; ok {
						continue
					}
					visited[nb.Node] = struct{}{}
					sets[h][nb.Node] = struct{}{}
					next = append(next, nb.Node)
				}
			}
		}
		frontier = next
	}
	return sets
}
