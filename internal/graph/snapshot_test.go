package graph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"turbo/internal/tensor"
)

// randomGraph builds a random multigraph for equivalence checks.
func randomGraph(seed uint64, nodes, edges int) *Graph {
	rng := tensor.NewRNG(seed | 1)
	g := New(3)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < edges; i++ {
		u := NodeID(rng.Intn(nodes))
		v := NodeID(rng.Intn(nodes))
		if u == v {
			continue
		}
		exp := base.Add(time.Duration(rng.Intn(200)) * time.Hour)
		_ = g.AddEdgeWeight(EdgeType(rng.Intn(3)), u, v, rng.Float64()+0.01, exp)
	}
	g.AddNode(NodeID(nodes + 5)) // one isolated registered node
	return g
}

// TestSnapshotMatchesLiveView: every GraphView accessor must agree
// between the live graph and a snapshot taken from it.
func TestSnapshotMatchesLiveView(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 12, 80)
		s := g.Snapshot()
		if !reflect.DeepEqual(g.Nodes(), s.Nodes()) {
			t.Logf("nodes differ")
			return false
		}
		if g.NumNodes() != s.NumNodes() || g.NumEdges() != s.NumEdges() {
			return false
		}
		if !reflect.DeepEqual(g.EdgeCountByType(), s.EdgeCountByType()) {
			return false
		}
		if !reflect.DeepEqual(g.Edges(), s.Edges()) {
			return false
		}
		if !reflect.DeepEqual(g.Stats(), s.Stats()) {
			return false
		}
		for _, u := range g.Nodes() {
			if !reflect.DeepEqual(g.Neighbors(u), s.Neighbors(u)) {
				return false
			}
			if g.Degree(u) != s.Degree(u) {
				return false
			}
			if math.Abs(g.WeightedDegree(u)-s.WeightedDegree(u)) > 1e-12 {
				return false
			}
			for typ := 0; typ < 3; typ++ {
				et := EdgeType(typ)
				if !reflect.DeepEqual(g.NeighborsByType(u, et), s.NeighborsByType(u, et)) {
					return false
				}
				if math.Abs(g.TypedWeightedDegree(u, et)-s.TypedWeightedDegree(u, et)) > 1e-12 {
					return false
				}
				for _, v := range g.Nodes() {
					if math.Abs(g.EdgeWeight(et, u, v)-s.EdgeWeight(et, u, v)) > 1e-12 {
						return false
					}
					if math.Abs(g.NormalizedWeight(et, u, v)-s.NormalizedWeight(et, u, v)) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSampleMatchesLive: deterministic sampling must produce the
// same computation subgraph from either view.
func TestSnapshotSampleMatchesLive(t *testing.T) {
	g := randomGraph(7, 20, 120)
	s := g.Snapshot()
	for _, u := range g.Nodes() {
		for _, opts := range []SampleOptions{
			{Hops: 2},
			{Hops: 2, MaxNeighbors: 3},
			{Hops: 3, RawWeights: true},
			{Hops: 2, Mask: MaskEdgeType(1)},
		} {
			a, b := g.Sample(u, opts), s.Sample(u, opts)
			if !reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Hops, b.Hops) {
				t.Fatalf("sample nodes differ for %d %+v", u, opts)
			}
			if !reflect.DeepEqual(a.TypedEdges, b.TypedEdges) {
				t.Fatalf("sample edges differ for %d %+v", u, opts)
			}
		}
	}
}

// TestSnapshotHopScansMatchLive checks the Fig. 4 scan helpers agree.
func TestSnapshotHopScansMatchLive(t *testing.T) {
	g := randomGraph(11, 15, 60)
	s := g.Snapshot()
	isFraud := func(n NodeID) bool { return n%3 == 0 }
	for _, u := range g.Nodes() {
		for only := -1; only < 3; only++ {
			if !reflect.DeepEqual(g.FraudRatioByHop(u, 3, only, isFraud), s.FraudRatioByHop(u, 3, only, isFraud)) {
				t.Fatalf("fraud ratio differs at %d type %d", u, only)
			}
		}
		// Hop sets are maps, so summation order differs run to run;
		// compare the means with a tolerance.
		gm, sm := g.MeanDegreeByHop(u, 3, true), s.MeanDegreeByHop(u, 3, true)
		for h := range gm {
			if math.Abs(gm[h]-sm[h]) > 1e-9 {
				t.Fatalf("mean degree differs at %d hop %d: %v vs %v", u, h+1, gm[h], sm[h])
			}
		}
	}
}

// TestSnapshotIsImmutable: mutations after Snapshot() must not leak into
// the published epoch (copy-on-write semantics).
func TestSnapshotIsImmutable(t *testing.T) {
	g := New(2)
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	s := g.Snapshot()
	_ = g.AddEdgeWeight(0, 1, 2, 5, never) // accumulate onto existing edge
	_ = g.AddEdgeWeight(1, 1, 3, 2, never) // brand-new edge
	g.Prune(never.Add(time.Hour))          // drop everything from the live graph

	if w := s.EdgeWeight(0, 1, 2); w != 1 {
		t.Fatalf("snapshot edge weight mutated: %v", w)
	}
	if s.NumEdges() != 1 || s.EdgeWeight(1, 1, 3) != 0 {
		t.Fatal("snapshot gained edges written after publication")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("live graph should be pruned empty, has %d", g.NumEdges())
	}
}

// TestSnapshotEpochMonotonic: publication numbers strictly increase.
func TestSnapshotEpochMonotonic(t *testing.T) {
	g := New(1)
	s1 := g.Snapshot()
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	s2 := g.Snapshot()
	if s2.Epoch() <= s1.Epoch() {
		t.Fatalf("epochs not increasing: %d then %d", s1.Epoch(), s2.Epoch())
	}
}

// TestPruneDropsIsolatedAdjacencyKeepsRegisteredNodes documents the
// registered-node semantics of Prune: adjacency entries of nodes whose
// edges all expired are removed from the shard indexes (memory reclaim,
// observable as empty neighbor lists), while the nodes themselves stay
// registered — isolated users are still classified.
func TestPruneDropsIsolatedAdjacencyKeepsRegisteredNodes(t *testing.T) {
	g := New(2)
	soon := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = g.AddEdgeWeight(0, 1, 2, 1, soon)  // expires
	_ = g.AddEdgeWeight(1, 3, 4, 1, never) // survives
	g.AddNode(9)

	if n := g.Prune(soon.Add(time.Hour)); n != 1 {
		t.Fatalf("dropped %d want 1", n)
	}
	// Nodes 1 and 2 are now isolated: no adjacency left in any shard...
	for _, u := range []NodeID{1, 2} {
		if ns := g.Neighbors(u); len(ns) != 0 {
			t.Fatalf("node %d still has neighbors %v after prune", u, ns)
		}
		if sh := &g.shards[shardOf(u)]; sh.adj[u] != nil {
			t.Fatalf("node %d adjacency not dropped from shard index", u)
		}
	}
	// ...but every node remains registered.
	for _, u := range []NodeID{1, 2, 3, 4, 9} {
		if !g.HasNode(u) {
			t.Fatalf("node %d lost registration after prune", u)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes %d want 5", g.NumNodes())
	}
	// The surviving edge and its degree cache are intact.
	if g.TypedWeightedDegree(3, 1) != 1 || g.EdgeWeight(1, 3, 4) != 1 {
		t.Fatal("surviving edge damaged by prune")
	}
}
