package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAddEdgeAccumulatesWeight(t *testing.T) {
	g := New(2)
	if err := g.AddEdgeWeight(0, 1, 2, 0.25, never); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdgeWeight(0, 2, 1, 0.5, never); err != nil { // reversed order, same edge
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0, 1, 2); w != 0.75 {
		t.Fatalf("weight %v want 0.75", w)
	}
	if w := g.EdgeWeight(0, 2, 1); w != 0.75 {
		t.Fatalf("undirected symmetry broken: %v", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges %d want 1", g.NumEdges())
	}
}

func TestEdgesOfDifferentTypesAreDistinct(t *testing.T) {
	g := New(3)
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	_ = g.AddEdgeWeight(2, 1, 2, 1, never)
	if g.NumEdges() != 2 {
		t.Fatalf("typed edges should be distinct: %d", g.NumEdges())
	}
	if g.EdgeWeight(1, 1, 2) != 0 {
		t.Fatal("type 1 should have no edge")
	}
}

func TestAddEdgeRejectsInvalid(t *testing.T) {
	g := New(1)
	if err := g.AddEdgeWeight(0, 1, 1, 1, never); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdgeWeight(0, 1, 2, 0, never); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.AddEdgeWeight(0, 1, 2, -1, never); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.AddEdgeWeight(0, 1, 2, math.NaN(), never); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if err := g.AddEdgeWeight(5, 1, 2, 1, never); err == nil {
		t.Fatal("out-of-range type accepted")
	}
	if g.NumEdges() != 0 {
		t.Fatal("invalid edges should not be stored")
	}
}

func TestNodesAndDegrees(t *testing.T) {
	g := New(2)
	g.AddNode(9)
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	_ = g.AddEdgeWeight(1, 1, 3, 2, never)
	if g.NumNodes() != 4 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if !g.HasNode(9) || g.HasNode(100) {
		t.Fatal("HasNode wrong")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("degree %d", d)
	}
	if wd := g.WeightedDegree(1); wd != 3 {
		t.Fatalf("weighted degree %v", wd)
	}
	if td := g.TypedWeightedDegree(1, 1); td != 2 {
		t.Fatalf("typed weighted degree %v", td)
	}
	if d := g.Degree(9); d != 0 {
		t.Fatalf("isolated node degree %d", d)
	}
}

func TestNeighborsSortedAndTyped(t *testing.T) {
	g := New(2)
	_ = g.AddEdgeWeight(0, 5, 9, 1, never)
	_ = g.AddEdgeWeight(0, 5, 3, 1, never)
	_ = g.AddEdgeWeight(1, 5, 7, 1, never)
	ns := g.Neighbors(5)
	if len(ns) != 3 || ns[0] != 3 || ns[1] != 7 || ns[2] != 9 {
		t.Fatalf("neighbors %v", ns)
	}
	typed := g.NeighborsByType(5, 0)
	if len(typed) != 2 || typed[0].Node != 3 {
		t.Fatalf("typed neighbors %v", typed)
	}
}

func TestNormalizedWeightFormula(t *testing.T) {
	g := New(1)
	_ = g.AddEdgeWeight(0, 1, 2, 2, never)
	_ = g.AddEdgeWeight(0, 1, 3, 6, never)
	_ = g.AddEdgeWeight(0, 2, 3, 2, never)
	// deg'(1)=8, deg'(2)=4: w'(1,2) = 2/sqrt(8*4)
	want := 2 / math.Sqrt(32)
	if got := g.NormalizedWeight(0, 1, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("normalized weight %v want %v", got, want)
	}
	if g.NormalizedWeight(0, 1, 9) != 0 {
		t.Fatal("missing edge should normalize to 0")
	}
}

func TestPruneExpiredEdges(t *testing.T) {
	g := New(1)
	soon := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = g.AddEdgeWeight(0, 1, 2, 1, soon)
	_ = g.AddEdgeWeight(0, 2, 3, 1, never)
	dropped := g.Prune(soon.Add(time.Hour))
	if dropped != 1 {
		t.Fatalf("dropped %d want 1", dropped)
	}
	if g.NumEdges() != 1 || g.EdgeWeight(0, 1, 2) != 0 || g.EdgeWeight(0, 2, 3) != 1 {
		t.Fatal("wrong edge pruned")
	}
}

func TestPruneExtendsTTLOnUpdate(t *testing.T) {
	g := New(1)
	early := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	late := early.Add(100 * time.Hour)
	_ = g.AddEdgeWeight(0, 1, 2, 1, early)
	_ = g.AddEdgeWeight(0, 1, 2, 1, late) // refresh
	if n := g.Prune(early.Add(time.Hour)); n != 0 {
		t.Fatalf("refreshed edge pruned (%d)", n)
	}
	if n := g.Prune(late.Add(time.Hour)); n != 1 {
		t.Fatalf("expired edge survived (%d)", n)
	}
}

func TestEdgesListSortedAndOnce(t *testing.T) {
	g := New(2)
	_ = g.AddEdgeWeight(1, 4, 2, 1, never)
	_ = g.AddEdgeWeight(0, 3, 1, 1, never)
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges %v", es)
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %v", i, e)
		}
		if i > 0 {
			prev := es[i-1]
			if e.Type < prev.Type || (e.Type == prev.Type && e.U < prev.U) {
				t.Fatal("edges not sorted")
			}
		}
	}
}

func TestEdgeCountByTypeAndStats(t *testing.T) {
	g := New(3)
	_ = g.AddEdgeWeight(0, 1, 2, 1, never)
	_ = g.AddEdgeWeight(0, 1, 3, 1, never)
	_ = g.AddEdgeWeight(2, 1, 2, 1, never)
	counts := g.EdgeCountByType()
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts %v", counts)
	}
	st := g.Stats()
	if st.Nodes != 3 || st.Edges != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestNumEdgesConsistencyProperty: after random additions and prunes,
// NumEdges equals the length of Edges().
func TestNumEdgesConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		g := New(3)
		base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 60; i++ {
			u := NodeID(rng.Intn(10))
			v := NodeID(rng.Intn(10))
			if u == v {
				continue
			}
			exp := base.Add(time.Duration(rng.Intn(100)) * time.Hour)
			_ = g.AddEdgeWeight(EdgeType(rng.Intn(3)), u, v, rng.Float64()+0.01, exp)
		}
		g.Prune(base.Add(time.Duration(rng.Intn(120)) * time.Hour))
		return g.NumEdges() == len(g.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// buildLine constructs 0 - 1 - 2 - 3 over type 0.
func buildLine(t *testing.T) *Graph {
	t.Helper()
	g := New(2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdgeWeight(0, NodeID(i), NodeID(i+1), 1, never); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSampleHops(t *testing.T) {
	g := buildLine(t)
	sg := g.Sample(0, SampleOptions{Hops: 1})
	if sg.NumNodes() != 2 {
		t.Fatalf("1-hop from end of line: %d nodes", sg.NumNodes())
	}
	sg = g.Sample(0, SampleOptions{Hops: 2})
	if sg.NumNodes() != 3 {
		t.Fatalf("2-hop: %d nodes", sg.NumNodes())
	}
	if sg.Nodes[0] != 0 {
		t.Fatal("target must be node 0 of the subgraph")
	}
	if sg.Hops[0] != 0 || sg.Hops[len(sg.Hops)-1] != 2 {
		t.Fatalf("hop annotation wrong: %v", sg.Hops)
	}
}

func TestSampleFilterKeepsTarget(t *testing.T) {
	g := buildLine(t)
	sg := g.Sample(1, SampleOptions{
		Hops:   2,
		Filter: func(n NodeID) bool { return n == 2 }, // rejects even the target's other neighbors
	})
	if sg.Nodes[0] != 1 {
		t.Fatal("filtered target dropped")
	}
	for _, n := range sg.Nodes[1:] {
		if n != 2 {
			t.Fatalf("filter leaked node %d", n)
		}
	}
}

func TestSampleMaxNeighborsCap(t *testing.T) {
	g := New(1)
	for i := 1; i <= 20; i++ {
		_ = g.AddEdgeWeight(0, 0, NodeID(i), float64(i), never)
	}
	sg := g.Sample(0, SampleOptions{Hops: 1, MaxNeighbors: 5})
	if sg.NumNodes() != 6 {
		t.Fatalf("cap not applied: %d nodes", sg.NumNodes())
	}
	// Deterministic cap keeps the heaviest neighbors.
	for _, n := range sg.Nodes[1:] {
		if n < 16 {
			t.Fatalf("expected top-weight neighbors, got %d", n)
		}
	}
	// Randomized cap also returns the right count.
	sg = g.Sample(0, SampleOptions{Hops: 1, MaxNeighbors: 5, RNG: tensor.NewRNG(1)})
	if sg.NumNodes() != 6 {
		t.Fatalf("random cap wrong: %d nodes", sg.NumNodes())
	}
}

func TestSampleMaskExcludesType(t *testing.T) {
	g := New(2)
	_ = g.AddEdgeWeight(0, 0, 1, 1, never)
	_ = g.AddEdgeWeight(1, 0, 2, 1, never)
	sg := g.Sample(0, SampleOptions{Hops: 1, Mask: MaskEdgeType(0)})
	if _, ok := sg.Index[1]; ok {
		t.Fatal("masked-type neighbor included")
	}
	if _, ok := sg.Index[2]; !ok {
		t.Fatal("unmasked neighbor missing")
	}
	if len(sg.TypedEdges[0]) != 0 {
		t.Fatal("masked type edges materialized")
	}
}

func TestSampleEdgesNormalized(t *testing.T) {
	g := New(1)
	_ = g.AddEdgeWeight(0, 0, 1, 2, never)
	sg := g.Sample(0, SampleOptions{Hops: 1})
	// Both nodes have typed weighted degree 2 → w' = 2/sqrt(4) = 1.
	for _, e := range sg.TypedEdges[0] {
		if math.Abs(e.Weight-1) > 1e-12 {
			t.Fatalf("normalized weight %v want 1", e.Weight)
		}
	}
	raw := g.Sample(0, SampleOptions{Hops: 1, RawWeights: true})
	for _, e := range raw.TypedEdges[0] {
		if e.Weight != 2 {
			t.Fatalf("raw weight %v want 2", e.Weight)
		}
	}
}

func TestSubgraphEdgesBothDirections(t *testing.T) {
	g := buildLine(t)
	sg := g.Sample(1, SampleOptions{Hops: 1})
	// Edges 1-0 and 1-2 should appear in both directions among included nodes.
	if sg.NumEdges() != 4 {
		t.Fatalf("directed edge count %d want 4", sg.NumEdges())
	}
}

func TestFraudRatioByHop(t *testing.T) {
	g := buildLine(t) // 0-1-2-3
	isFraud := func(n NodeID) bool { return n == 1 || n == 2 }
	ratios := g.FraudRatioByHop(0, 3, -1, isFraud)
	if ratios[0] != 1 { // hop1 = {1}
		t.Fatalf("hop1 ratio %v", ratios[0])
	}
	if ratios[1] != 1 { // hop2 = {2}
		t.Fatalf("hop2 ratio %v", ratios[1])
	}
	if ratios[2] != 0 { // hop3 = {3}
		t.Fatalf("hop3 ratio %v", ratios[2])
	}
}

func TestFraudRatioByHopOnlyType(t *testing.T) {
	g := New(2)
	_ = g.AddEdgeWeight(0, 0, 1, 1, never) // type 0 to fraud
	_ = g.AddEdgeWeight(1, 0, 2, 1, never) // type 1 to normal
	isFraud := func(n NodeID) bool { return n == 1 }
	if r := g.FraudRatioByHop(0, 1, 0, isFraud); r[0] != 1 {
		t.Fatalf("type-0 ratio %v", r)
	}
	if r := g.FraudRatioByHop(0, 1, 1, isFraud); r[0] != 0 {
		t.Fatalf("type-1 ratio %v", r)
	}
}

func TestMeanDegreeByHop(t *testing.T) {
	// Star: 0 connected to 1,2,3; node 1 also connected to 4.
	g := New(1)
	for i := 1; i <= 3; i++ {
		_ = g.AddEdgeWeight(0, 0, NodeID(i), 2, never)
	}
	_ = g.AddEdgeWeight(0, 1, 4, 2, never)
	got := g.MeanDegreeByHop(0, 2, false)
	// hop1 = {1,2,3} with degrees 2,1,1 → mean 4/3.
	if math.Abs(got[0]-4.0/3.0) > 1e-12 {
		t.Fatalf("hop1 mean degree %v", got[0])
	}
	weighted := g.MeanDegreeByHop(0, 2, true)
	// weighted degrees 4,2,2 → mean 8/3.
	if math.Abs(weighted[0]-8.0/3.0) > 1e-12 {
		t.Fatalf("hop1 mean weighted degree %v", weighted[0])
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildLine(t)
	sg := g.Sample(0, SampleOptions{Hops: 2})
	var b strings.Builder
	err := sg.WriteDOT(&b, "test", func(n NodeID) int { return int(n) % 3 })
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph \"test\"", "n0", "salmon", "khaki", "--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
