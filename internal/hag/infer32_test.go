package hag

import (
	"math"
	"testing"

	"turbo/internal/gnn"
)

const f32LogitTol = 1e-3

// TestHAGInfer32MatchesFloat64 pins the float32 logits to the float64
// reference for HAG and all three ablation variants.
func TestHAGInfer32MatchesFloat64(t *testing.T) {
	for _, m := range hagVariants(1) {
		if !gnn.CanInfer32(m) {
			t.Fatalf("%s does not implement gnn.Inferer32", m.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			b := randomHagBatch(seed, 20, 2, 5)
			maxDelta, ok := gnn.ValidateF32(m, b, f32LogitTol)
			if !ok {
				t.Errorf("%s seed %d: f32 logit gap %.3g exceeds %.1g", m.Name(), seed, maxDelta, f32LogitTol)
			}
			b.Release()
		}
	}
}

// targetRowTol bounds InferTarget32 against the full Infer32: the
// target path runs tanh/softmax on 1×k matrices whose tails fall to the
// scalar Exp32 while the full pass uses the 8-wide kernel, so matching
// elements may differ in the final ulp (≈1e-7 relative) before the
// layers amplify it slightly.
const targetRowTol = 1e-5

// TestHAGInferTarget32MatchesFull pins the single-target float32 path
// to row 0 of the full float32 forward (within the vector/scalar exp
// ulp bound above), and Score32 to the tape score.
func TestHAGInferTarget32MatchesFull(t *testing.T) {
	for _, m := range hagVariants(2) {
		for seed := uint64(1); seed <= 3; seed++ {
			b := randomHagBatch(seed, 20, 2, 5)
			f := gnn.AcquireFwd32()
			full := m.Infer32(f, b).Data[0]
			gnn.ReleaseFwd32(f)
			f = gnn.AcquireFwd32()
			row := m.InferTarget32(f, b, 0)
			gnn.ReleaseFwd32(f)
			if math.Abs(float64(row)-float64(full)) > targetRowTol {
				t.Errorf("%s seed %d: InferTarget32 %.8g != Infer32 row 0 %.8g", m.Name(), seed, row, full)
			}
			want := gnn.TapeScore(m, b)
			got, ok := gnn.Score32(m, b)
			if !ok {
				t.Fatalf("%s: Score32 reported unsupported", m.Name())
			}
			if math.Abs(got-want) > f32LogitTol {
				t.Errorf("%s seed %d: Score32 %.8g vs tape %.8g", m.Name(), seed, got, want)
			}
			b.Release()
		}
	}
}

// BenchmarkHAGScoreTapeVsInfer32 extends the HAG tape-vs-infer
// benchmark with the float32 serving path on the same batch shape.
func BenchmarkHAGScoreTapeVsInfer32(b *testing.B) {
	m := New(Config{InDim: 16, NumEdgeTypes: 2, Hidden: []int{32, 16}, AttHidden: 8, Seed: 1})
	batch := randomHagBatch(1, 64, 2, 16)
	if _, ok := gnn.Score32(m, batch); !ok {
		b.Fatal("HAG does not implement the f32 path")
	}
	b.Run("infer32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gnn.Score32(m, batch)
		}
	})
}
