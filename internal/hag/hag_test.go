package hag

import (
	"bytes"
	"math"
	"testing"
	"time"

	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// cliqueBatch builds a single homogeneous clique of n nodes with random
// but distinct features — the over-smoothing setting of Theorem 1.
func cliqueBatch(n int, seed uint64) *gnn.Batch {
	g := graph.New(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = g.AddEdgeWeight(0, graph.NodeID(i), graph.NodeID(j), 1, never)
		}
	}
	sg := &graph.Subgraph{Index: make(map[graph.NodeID]int), TypedEdges: make([][]graph.LocalEdge, 1)}
	for i := 0; i < n; i++ {
		sg.Nodes = append(sg.Nodes, graph.NodeID(i))
		sg.Index[graph.NodeID(i)] = i
		sg.Hops = append(sg.Hops, 0)
	}
	for i := 0; i < n; i++ {
		for _, nb := range g.NeighborsByType(graph.NodeID(i), 0) {
			sg.TypedEdges[0] = append(sg.TypedEdges[0],
				graph.LocalEdge{Src: i, Dst: sg.Index[nb.Node], Weight: nb.Weight})
		}
	}
	x := tensor.RandNormal(n, 6, 1, tensor.NewRNG(seed))
	return gnn.NewBatch(sg, x)
}

// embeddingSpread is the mean pairwise distance between node embeddings,
// normalized by the mean embedding norm — a collapse detector.
func embeddingSpread(h *tensor.Matrix) float64 {
	n := h.Rows
	var dist, norm float64
	for i := 0; i < n; i++ {
		ri := h.Row(i)
		var nrm float64
		for _, v := range ri {
			nrm += v * v
		}
		norm += math.Sqrt(nrm)
		for j := i + 1; j < n; j++ {
			rj := h.Row(j)
			var d float64
			for k := range ri {
				d += (ri[k] - rj[k]) * (ri[k] - rj[k])
			}
			dist += math.Sqrt(d)
		}
	}
	pairs := float64(n*(n-1)) / 2
	if norm == 0 {
		return 0
	}
	return (dist / pairs) / (norm / float64(n))
}

// TestSAOResistsCliqueOversmoothing is the Theorem 1 / SAO story: on a
// pure clique, the GCN aggregation collapses all nodes to (nearly) the
// same embedding after one round, while SAO's self-aware gate preserves
// the nodes' distinguishability.
func TestSAOResistsCliqueOversmoothing(t *testing.T) {
	b := cliqueBatch(12, 3)

	// GCN-style: one unweighted mean over Ñ(v) (no transform, to isolate
	// the aggregation operator itself).
	gcnAgg := b.MergedRWCSR().MatMul(b.X)
	gcnSpread := embeddingSpread(gcnAgg)
	inputSpread := embeddingSpread(b.X)
	if gcnSpread > 0.25*inputSpread {
		t.Fatalf("clique mean aggregation should collapse embeddings: spread %v vs input %v",
			gcnSpread, inputSpread)
	}

	// SAO keeps a gated self path: embeddings must stay distinguishable.
	m := New(Config{InDim: 6, NumEdgeTypes: 1, Hidden: []int{6}, AttHidden: 4, Seed: 1})
	tape := autodiff.NewTape()
	h := m.Embed(tape, b, tape.Const(b.X), nil)
	saoSpread := embeddingSpread(h.Value)
	if saoSpread < 4*gcnSpread {
		t.Fatalf("SAO should preserve far more spread than plain mean aggregation: %v vs %v",
			saoSpread, gcnSpread)
	}
}

// multiTypeBatch builds two edge types with opposite label alignment so
// CFO's type attention has something to learn.
func multiTypeBatch(t *testing.T) (*gnn.Batch, []int, []float64) {
	t.Helper()
	g := graph.New(2)
	// Type 0: clique among fraud nodes 0..3 (informative).
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = g.AddEdgeWeight(0, graph.NodeID(i), graph.NodeID(j), 1, never)
		}
	}
	// Type 1: random noisy edges crossing the classes.
	rng := tensor.NewRNG(5)
	for k := 0; k < 12; k++ {
		u, v := graph.NodeID(rng.Intn(10)), graph.NodeID(rng.Intn(10))
		if u != v {
			_ = g.AddEdgeWeight(1, u, v, 0.3, never)
		}
	}
	for i := 0; i < 10; i++ {
		g.AddNode(graph.NodeID(i))
	}
	sg := &graph.Subgraph{Index: make(map[graph.NodeID]int), TypedEdges: make([][]graph.LocalEdge, 2)}
	for i := 0; i < 10; i++ {
		sg.Nodes = append(sg.Nodes, graph.NodeID(i))
		sg.Index[graph.NodeID(i)] = i
		sg.Hops = append(sg.Hops, 0)
	}
	for typ := 0; typ < 2; typ++ {
		for i := 0; i < 10; i++ {
			for _, nb := range g.NeighborsByType(graph.NodeID(i), graph.EdgeType(typ)) {
				sg.TypedEdges[typ] = append(sg.TypedEdges[typ],
					graph.LocalEdge{Src: i, Dst: sg.Index[nb.Node], Weight: nb.Weight})
			}
		}
	}
	x := tensor.RandNormal(10, 4, 1, tensor.NewRNG(11))
	labels := make([]float64, 10)
	for i := 0; i < 4; i++ {
		labels[i] = 1
		x.Set(i, 0, x.At(i, 0)+1.2) // moderate feature signal
	}
	return gnn.NewBatch(sg, x), []int{0, 1, 2, 4, 5, 6, 7}, labels
}

func trainHAG(t *testing.T, cfg Config) (*HAG, *gnn.Batch, []float64) {
	t.Helper()
	b, train, labels := multiTypeBatch(t)
	cfg.InDim = 4
	cfg.NumEdgeTypes = 2
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{8, 8}
	}
	cfg.AttHidden = 4
	m := New(cfg)
	gnn.Train(m, b, train, labels, gnn.TrainConfig{Epochs: 150, LR: 0.02, BalanceClasses: true})
	return m, b, gnn.Scores(m, b)
}

func TestHAGLearnsHeldOutFraud(t *testing.T) {
	// Seed 2: the 10-node toy is seed-sensitive (3 training positives);
	// generalization at scale is asserted by the eval harness.
	// Held-out nodes: 3 (fraud) vs 8, 9 (normal). The 10-node toy with
	// three training positives is highly seed-sensitive, so average over
	// several seeds and require the fraud node to beat the normal mean;
	// generalization at scale is asserted by the eval harness.
	var fraud, normal float64
	for seed := uint64(1); seed <= 4; seed++ {
		_, _, scores := trainHAG(t, Config{Seed: seed})
		fraud += scores[3]
		normal += (scores[8] + scores[9]) / 2
	}
	if fraud <= normal {
		t.Fatalf("HAG failed on held-out fraud: mean %v vs normal mean %v", fraud/4, normal/4)
	}
}

func TestHAGVariantsTrainAndAreNamed(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		name string
	}{
		{Config{Seed: 1}, "HAG"},
		{Config{Seed: 1, DisableSAOGate: true}, "HAG-SAO(-)"},
		{Config{Seed: 1, DisableCFO: true}, "HAG-CFO(-)"},
		{Config{Seed: 1, DisableSAOGate: true, DisableCFO: true}, "HAG-Both(-)"},
	} {
		m, _, scores := trainHAG(t, tc.cfg)
		if m.Name() != tc.name {
			t.Fatalf("variant name %q want %q", m.Name(), tc.name)
		}
		for _, s := range scores {
			if math.IsNaN(s) {
				t.Fatalf("%s produced NaN score", tc.name)
			}
		}
	}
}

func TestTypeAttentionRowsSumToOne(t *testing.T) {
	m, b, _ := trainHAG(t, Config{Seed: 2})
	att := m.TypeAttention(b)
	if att == nil || att.Rows != b.NumNodes || att.Cols != 2 {
		t.Fatalf("attention shape: %+v", att)
	}
	for i := 0; i < att.Rows; i++ {
		var sum float64
		for _, v := range att.Row(i) {
			if v < 0 {
				t.Fatal("negative attention")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("attention row %d sums to %v", i, sum)
		}
	}
}

func TestTypeAttentionNilWhenCFODisabled(t *testing.T) {
	m, b, _ := trainHAG(t, Config{Seed: 2, DisableCFO: true})
	if m.TypeAttention(b) != nil {
		t.Fatal("CFO(-) should have no type attention")
	}
}

func TestInfluenceDistributionSumsToOne(t *testing.T) {
	m, b, _ := trainHAG(t, Config{Seed: 3, Hidden: []int{6}})
	d := m.InfluenceDistribution(b, 0)
	var sum float64
	for _, v := range d {
		if v < 0 {
			t.Fatal("negative influence")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("influence distribution sums to %v", sum)
	}
}

// TestInfluenceConcentratesInClique: a clique node's influence should
// come mostly from inside its clique (the Fig. 9 observation).
func TestInfluenceConcentratesInClique(t *testing.T) {
	m, b, _ := trainHAG(t, Config{Seed: 4, Hidden: []int{6}})
	d := m.InfluenceDistribution(b, 0) // node 0 is in the 0-3 clique
	var clique, outside float64
	for j, v := range d {
		if j < 4 {
			clique += v
		} else {
			outside += v
		}
	}
	if clique <= outside {
		t.Fatalf("clique influence %v should exceed outside %v", clique, outside)
	}
}

func TestInfluenceMatrixShape(t *testing.T) {
	m, b, _ := trainHAG(t, Config{Seed: 5, Hidden: []int{4}})
	im := m.InfluenceMatrix(b)
	if im.Rows != b.NumNodes || im.Cols != b.NumNodes {
		t.Fatalf("influence matrix %dx%d", im.Rows, im.Cols)
	}
	// Each column is a distribution.
	for i := 0; i < im.Cols; i++ {
		var sum float64
		for j := 0; j < im.Rows; j++ {
			sum += im.At(j, i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", i, sum)
		}
	}
}

func TestHAGSerializationRoundtrip(t *testing.T) {
	m, b, scores := trainHAG(t, Config{Seed: 6})
	var buf bytes.Buffer
	if err := nn.SaveState(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2 := New(Config{InDim: 4, NumEdgeTypes: 2, Hidden: []int{8, 8}, AttHidden: 4, Seed: 999})
	if err := nn.LoadState(&buf, m2); err != nil {
		t.Fatal(err)
	}
	got := gnn.Scores(m2, b)
	for i := range scores {
		if math.Abs(scores[i]-got[i]) > 1e-12 {
			t.Fatalf("loaded HAG differs at node %d: %v vs %v", i, scores[i], got[i])
		}
	}
}

func TestConfigPanicsWithoutEdgeTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{InDim: 4})
}

func TestParameterCountsDifferByVariant(t *testing.T) {
	full := New(Config{InDim: 4, NumEdgeTypes: 3, Hidden: []int{8}, AttHidden: 4})
	noCFO := New(Config{InDim: 4, NumEdgeTypes: 3, Hidden: []int{8}, AttHidden: 4, DisableCFO: true})
	if nn.ParamCount(full) <= nn.ParamCount(noCFO) {
		t.Fatal("full HAG should have more parameters than CFO(-)")
	}
}
