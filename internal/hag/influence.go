package hag

import (
	"math"

	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// InfluenceScores computes, for one target node of a batch, the
// influence score S_target(j) of Definition 1 for every node j: the sum
// of absolute entries of the Jacobian ∂h_target / ∂x_j, obtained by
// seeding the backward pass once per embedding dimension and summing
// |gradient| rows. The result has one entry per batch node.
func (m *HAG) InfluenceScores(b *gnn.Batch, target int) []float64 {
	scores := make([]float64, b.NumNodes)
	// One backward pass per output dimension gives the exact Jacobian;
	// dimensions are summed as |·| per Definition 1.
	dims := m.cfg.FusedDim
	if m.cfg.DisableCFO {
		dims = m.cfg.Hidden[len(m.cfg.Hidden)-1]
	}
	for d := 0; d < dims; d++ {
		t := autodiff.NewTape()
		grad := tensor.New(b.X.Rows, b.X.Cols)
		x := t.Leaf(b.X, grad)
		h := m.Embed(t, b, x, nil)
		seed := tensor.New(h.Value.Rows, h.Value.Cols)
		seed.Set(target, d, 1)
		t.BackwardWithSeed(h, seed)
		for j := 0; j < b.NumNodes; j++ {
			row := grad.Row(j)
			for _, g := range row {
				scores[j] += math.Abs(g)
			}
		}
	}
	return scores
}

// InfluenceDistribution normalizes InfluenceScores into the influence
// distribution D_target of Definition 1 (entries sum to 1 unless all
// scores are zero).
func (m *HAG) InfluenceDistribution(b *gnn.Batch, target int) []float64 {
	scores := m.InfluenceScores(b, target)
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if sum == 0 {
		return scores
	}
	for i := range scores {
		scores[i] /= sum
	}
	return scores
}

// InfluenceMatrix computes the influence distribution of every node in
// the batch; column i is D_i, matching the Fig. 9 heat map layout.
func (m *HAG) InfluenceMatrix(b *gnn.Batch) *tensor.Matrix {
	n := b.NumNodes
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		d := m.InfluenceDistribution(b, i)
		for j := 0; j < n; j++ {
			out.Set(j, i, d[j])
		}
	}
	return out
}
