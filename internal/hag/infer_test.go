package hag

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// randomHagBatch builds a randomized heterogeneous batch: n nodes,
// `types` edge types with duplicate-bearing bidirected random edges and
// random normal features — exercises both the CFO per-type streams and
// the merged single-stream (CFO disabled) compilation paths.
func randomHagBatch(seed uint64, n, types, dim int) *gnn.Batch {
	rng := tensor.NewRNG(seed)
	sg := &graph.Subgraph{TypedEdges: make([][]graph.LocalEdge, types)}
	for i := 0; i < n; i++ {
		sg.Nodes = append(sg.Nodes, graph.NodeID(i))
		sg.Hops = append(sg.Hops, 0)
	}
	for t := 0; t < types; t++ {
		for e := 0; e < 3*n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			w := rng.Float64() + 0.1
			sg.TypedEdges[t] = append(sg.TypedEdges[t],
				graph.LocalEdge{Src: src, Dst: dst, Weight: w},
				graph.LocalEdge{Src: dst, Dst: src, Weight: w})
		}
	}
	x := tensor.RandNormal(n, dim, 1, rng)
	return gnn.NewBatch(sg, x)
}

func hagVariants(seed uint64) []*HAG {
	mk := func(sao, cfo bool) *HAG {
		return New(Config{
			InDim: 5, NumEdgeTypes: 2, Hidden: []int{8, 6}, AttHidden: 4,
			Seed: seed, DisableSAOGate: sao, DisableCFO: cfo,
		})
	}
	return []*HAG{mk(false, false), mk(true, false), mk(false, true), mk(true, true)}
}

// TestHAGInferMatchesTape pins the tape-free HAG scores to the tape
// scores for every ablation variant on randomized batches.
func TestHAGInferMatchesTape(t *testing.T) {
	for _, m := range hagVariants(1) {
		if !gnn.CanInfer(m) {
			t.Fatalf("%s does not implement gnn.Inferer", m.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			b := randomHagBatch(seed, 20, 2, 5)
			want := gnn.TapeScores(m, b)
			got := gnn.Scores(m, b)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("%s seed %d node %d: infer %v vs tape %v",
						m.Name(), seed, i, got[i], want[i])
				}
			}
			if s := gnn.Score(m, b); math.Abs(s-want[0]) > 1e-12 {
				t.Fatalf("%s Score %v vs tape %v", m.Name(), s, want[0])
			}
		}
	}
}

// TestHAGInferTargetMatchesTape pins the single-target fast path to the
// tape scores at every node index for every ablation variant.
func TestHAGInferTargetMatchesTape(t *testing.T) {
	for _, m := range hagVariants(4) {
		b := randomHagBatch(17, 18, 2, 5)
		want := gnn.TapeScores(m, b)
		for node := 0; node < b.NumNodes; node++ {
			f := gnn.AcquireFwd()
			got := tensor.SigmoidScalar(m.InferTarget(f, b, node))
			gnn.ReleaseFwd(f)
			if math.Abs(got-want[node]) > 1e-12 {
				t.Fatalf("%s node %d: target-infer %v vs tape %v", m.Name(), node, got, want[node])
			}
		}
	}
}

// TestHAGInferMatchesTrainingModeNoDropout cross-checks Infer against
// the training-mode forward with dropout at rate 0: the logits must
// agree exactly because dropout is the only train/eval difference.
func TestHAGInferMatchesTrainingModeNoDropout(t *testing.T) {
	for _, m := range hagVariants(2) {
		b := randomHagBatch(7, 16, 2, 5)
		tape := autodiff.NewTape()
		logits := m.Forward(tape, b, tensor.NewRNG(3))

		f := gnn.AcquireFwd()
		inferred := m.Infer(f, b)
		for i := 0; i < b.NumNodes; i++ {
			if math.Abs(inferred.Data[i]-logits.Value.Data[i]) > 1e-12 {
				t.Fatalf("%s node %d: infer logit %v vs training-mode %v",
					m.Name(), i, inferred.Data[i], logits.Value.Data[i])
			}
		}
		gnn.ReleaseFwd(f)
	}
}

// TestHAGConcurrentInferIsConsistent scores a shared batch from many
// goroutines; pooled scratch must never alias across them (run with
// -race).
func TestHAGConcurrentInferIsConsistent(t *testing.T) {
	for _, m := range hagVariants(3) {
		b := randomHagBatch(13, 24, 2, 5)
		want := gnn.TapeScores(m, b)
		var wg sync.WaitGroup
		errc := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 20; rep++ {
					got := gnn.Scores(m, b)
					for i := range want {
						if got[i] != want[i] {
							select {
							case errc <- fmt.Errorf("%s: concurrent Infer diverged at node %d: %v vs %v",
								m.Name(), i, got[i], want[i]):
							default:
							}
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkHAGScoreTapeVsInfer compares the tape-backed and tape-free
// HAG scoring paths on a representative sampled batch.
func BenchmarkHAGScoreTapeVsInfer(b *testing.B) {
	m := New(Config{InDim: 16, NumEdgeTypes: 2, Hidden: []int{32, 16}, AttHidden: 8, Seed: 1})
	batch := randomHagBatch(1, 64, 2, 16)
	b.Run("tape", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gnn.TapeScore(m, batch)
		}
	})
	b.Run("infer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gnn.Score(m, batch)
		}
	})
}
