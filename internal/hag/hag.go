// Package hag implements the paper's core contribution: the
// Heterogeneous Adaptive Graph neural network (§IV) with its two
// operators — the Self-aware Aggregation Operator (SAO, Eq. 5–9), which
// gates a node's own representation against its neighborhood via learned
// attention to resist clique-induced over-smoothing, and the Cross-type
// Fusion Operator (CFO, Eq. 10–15), which fuses the per-edge-type
// embedding streams with node-wise attention plus per-type macro
// transforms. The package also computes the influence distributions of
// Definition 1 used by the Fig. 9 case study.
package hag

import (
	"fmt"

	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// Config holds HAG hyperparameters. The paper uses two layers of 128 and
// 64 units, attention layers of 64 units, and an MLP head of 32 units.
type Config struct {
	InDim        int
	NumEdgeTypes int
	Hidden       []int // SAO layer sizes; nil selects {128, 64}
	AttHidden    int   // attention hidden size t (Eq. 7–8); 0 selects 64
	FusedDim     int   // CFO output size d_m; 0 selects last Hidden
	MLPHidden    int   // classifier hidden size; 0 selects 32
	Dropout      float64
	Seed         uint64

	// DisableSAOGate removes α_self/α_neigh from Eq. 5 (the SAO(-)
	// ablation of Table V), reducing SAO to the additive skip form.
	DisableSAOGate bool
	// DisableCFO collapses all edge types onto the merged graph and
	// runs a single SAO stream (the CFO(-) ablation of Table V).
	DisableCFO bool
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.AttHidden == 0 {
		c.AttHidden = 64
	}
	if c.FusedDim == 0 {
		c.FusedDim = c.Hidden[len(c.Hidden)-1]
	}
	if c.MLPHidden == 0 {
		c.MLPHidden = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumEdgeTypes <= 0 {
		panic("hag: NumEdgeTypes must be positive")
	}
	return c
}

// saoLayer is one SAO layer for one edge type.
type saoLayer struct {
	wls *nn.Parameter // in × out, self transform W_ls
	wln *nn.Parameter // in × out, neighborhood transform W_ln
	ws  *nn.Parameter // in × t, self attention projection W_s
	wn  *nn.Parameter // in × t, neighborhood attention projection W_n
	p   *nn.Parameter // 2t × 1, attention vector p
	out int
}

func newSAOLayer(name string, in, out, att int, rng *tensor.RNG) *saoLayer {
	return &saoLayer{
		wls: nn.NewParameter(name+".Wls", tensor.GlorotUniform(in, out, rng)),
		wln: nn.NewParameter(name+".Wln", tensor.GlorotUniform(in, out, rng)),
		ws:  nn.NewParameter(name+".Ws", tensor.GlorotUniform(in, att, rng)),
		wn:  nn.NewParameter(name+".Wn", tensor.GlorotUniform(in, att, rng)),
		p:   nn.NewParameter(name+".p", tensor.GlorotUniform(2*att, 1, rng)),
		out: out,
	}
}

func (l *saoLayer) parameters() []*nn.Parameter {
	return []*nn.Parameter{l.wls, l.wln, l.ws, l.wn, l.p}
}

// forward applies Eq. 5–9 on one homogeneous subgraph: h and hN are the
// node and aggregated-neighborhood representations (Eq. 6 is the
// caller's CSR aggregation). gated=false gives the SAO(-) additive form.
func (l *saoLayer) forward(t *autodiff.Tape, h, hN *autodiff.Node, gated bool) *autodiff.Node {
	selfT := t.MatMul(h, l.wls.Node(t))   // H·W_ls
	neighT := t.MatMul(hN, l.wln.Node(t)) // h_N·W_ln
	if !gated {
		return t.ReLU(t.Add(selfT, neighT))
	}
	wsH := t.MatMul(h, l.ws.Node(t))  // W_s h_v
	wnN := t.MatMul(hN, l.wn.Node(t)) // W_n h_N
	p := l.p.Node(t)
	// Eq. 7: α'_self = pᵀ·tanh(W_s h_v ; W_s h_v)
	aSelf := t.MatMul(t.Tanh(t.ConcatCols(wsH, wsH)), p)
	// Eq. 8: α'_neigh = pᵀ·tanh(W_n h_N ; W_s h_v)
	aNeigh := t.MatMul(t.Tanh(t.ConcatCols(wnN, wsH)), p)
	// Eq. 9: per-node softmax over the two scores.
	alpha := t.SoftmaxRows(t.ConcatCols(aSelf, aNeigh))
	alphaSelf := t.SliceCols(alpha, 0, 1)
	alphaNeigh := t.SliceCols(alpha, 1, 2)
	// Eq. 5.
	return t.ReLU(t.Add(t.MulColVector(selfT, alphaSelf), t.MulColVector(neighT, alphaNeigh)))
}

// cfoType holds the CFO parameters of one edge type: the micro-level
// attention (v_r, W_r of Eq. 12) and the macro-level transform M_r.
type cfoType struct {
	wAtt *nn.Parameter // d_k × d_a
	vAtt *nn.Parameter // d_a × 1
	m    *nn.Parameter // d_k × d_m
}

// HAG is the full model: per-type SAO stacks fused by CFO, classified by
// an MLP head.
type HAG struct {
	cfg Config
	// streams[r][l] is SAO layer l of edge type r; with DisableCFO there
	// is a single stream over the merged graph.
	streams [][]*saoLayer
	cfo     []*cfoType
	head    *nn.MLP
}

// New builds a HAG model.
func New(cfg Config) *HAG {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	m := &HAG{cfg: cfg}
	nStreams := cfg.NumEdgeTypes
	if cfg.DisableCFO {
		nStreams = 1
	}
	sizes := append([]int{cfg.InDim}, cfg.Hidden...)
	for r := 0; r < nStreams; r++ {
		var stack []*saoLayer
		for l := 0; l+1 < len(sizes); l++ {
			stack = append(stack, newSAOLayer(fmt.Sprintf("hag.t%d.l%d", r, l), sizes[l], sizes[l+1], cfg.AttHidden, rng))
		}
		m.streams = append(m.streams, stack)
	}
	dk := sizes[len(sizes)-1]
	headIn := dk
	if !cfg.DisableCFO {
		for r := 0; r < cfg.NumEdgeTypes; r++ {
			m.cfo = append(m.cfo, &cfoType{
				wAtt: nn.NewParameter(fmt.Sprintf("hag.cfo%d.W", r), tensor.GlorotUniform(dk, cfg.AttHidden, rng)),
				vAtt: nn.NewParameter(fmt.Sprintf("hag.cfo%d.v", r), tensor.GlorotUniform(cfg.AttHidden, 1, rng)),
				m:    nn.NewParameter(fmt.Sprintf("hag.cfo%d.M", r), tensor.GlorotUniform(dk, cfg.FusedDim, rng)),
			})
		}
		headIn = cfg.FusedDim
	}
	m.head = nn.NewMLP("hag.head", []int{headIn, cfg.MLPHidden, 1}, nn.ActReLU, rng)
	return m
}

// Name implements gnn.Model.
func (m *HAG) Name() string {
	switch {
	case m.cfg.DisableSAOGate && m.cfg.DisableCFO:
		return "HAG-Both(-)"
	case m.cfg.DisableSAOGate:
		return "HAG-SAO(-)"
	case m.cfg.DisableCFO:
		return "HAG-CFO(-)"
	}
	return "HAG"
}

// Config returns the effective configuration.
func (m *HAG) Config() Config { return m.cfg }

// Parameters implements nn.Module.
func (m *HAG) Parameters() []*nn.Parameter {
	var ps []*nn.Parameter
	for _, stack := range m.streams {
		for _, l := range stack {
			ps = append(ps, l.parameters()...)
		}
	}
	for _, c := range m.cfo {
		ps = append(ps, c.wAtt, c.vAtt, c.m)
	}
	return append(ps, m.head.Parameters()...)
}

// Embed computes the fused node embeddings H (pre-head) from an input
// feature node x, exposed separately so influence analysis can seed
// gradients at the embedding level while keeping x a tape leaf.
func (m *HAG) Embed(t *autodiff.Tape, b *gnn.Batch, x *autodiff.Node, dropRNG *tensor.RNG) *autodiff.Node {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		h := x
		adj := b.MergedWeightedMeanCSR()
		for _, l := range m.streams[0] {
			h = l.forward(t, h, t.Aggregate(adj, h), gated)
			h = t.Dropout(h, m.cfg.Dropout, dropRNG)
		}
		return h
	}
	// Eq. 10: one SAO stream per edge type on its homogeneous subgraph.
	var fused *autodiff.Node
	var scores *autodiff.Node
	typeEmb := make([]*autodiff.Node, m.cfg.NumEdgeTypes)
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		h := x
		adj := b.TypedMeanCSR(r)
		for _, l := range m.streams[r] {
			h = l.forward(t, h, t.Aggregate(adj, h), gated)
			h = t.Dropout(h, m.cfg.Dropout, dropRNG)
		}
		typeEmb[r] = h
		// Eq. 12 (micro level): score_{v,r} = v_rᵀ tanh(W_r h_{v,r}).
		s := t.MatMul(t.Tanh(t.MatMul(h, m.cfo[r].wAtt.Node(t))), m.cfo[r].vAtt.Node(t))
		if scores == nil {
			scores = s
		} else {
			scores = t.ConcatCols(scores, s)
		}
	}
	// Eq. 12: node-wise softmax over types.
	alpha := t.SoftmaxRows(scores)
	// Eq. 13–15: H_v = Σ_r α_{v,r} · (h_{v,r} M_r), the macro-level
	// per-type transforms aggregated by the micro-level coefficients.
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		term := t.MulColVector(t.MatMul(typeEmb[r], m.cfo[r].m.Node(t)), t.SliceCols(alpha, r, r+1))
		if fused == nil {
			fused = term
		} else {
			fused = t.Add(fused, term)
		}
	}
	return fused
}

// Forward implements gnn.Model.
func (m *HAG) Forward(t *autodiff.Tape, b *gnn.Batch, dropRNG *tensor.RNG) *autodiff.Node {
	return m.head.Forward(t, m.Embed(t, b, t.Const(b.X), dropRNG))
}

// TypeAttention returns the CFO attention coefficients α_{v,r} for every
// node (NumNodes × NumEdgeTypes), a diagnostic of how much each edge
// type contributes per node. It returns nil when CFO is disabled.
func (m *HAG) TypeAttention(b *gnn.Batch) *tensor.Matrix {
	if m.cfg.DisableCFO {
		return nil
	}
	t := autodiff.NewTape()
	x := t.Const(b.X)
	gated := !m.cfg.DisableSAOGate
	var scores *autodiff.Node
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		h := x
		adj := b.TypedMeanCSR(r)
		for _, l := range m.streams[r] {
			h = l.forward(t, h, t.Aggregate(adj, h), gated)
		}
		s := t.MatMul(t.Tanh(t.MatMul(h, m.cfo[r].wAtt.Node(t))), m.cfo[r].vAtt.Node(t))
		if scores == nil {
			scores = s
		} else {
			scores = t.ConcatCols(scores, s)
		}
	}
	return tensor.SoftmaxRows(scores.Value)
}
