package hag

import (
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// infer32.go mirrors infer.go on quantized weights for the opt-in
// float32 serving path (see internal/gnn/infer32.go for the engine and
// the tolerance contract). tanh and softmax use the fast float32
// approximations, so the float64 Infer remains the reference and
// gnn.ValidateF32 gates serving.

// infer32 is the float32 form of saoLayer.infer.
func (l *saoLayer) infer32(f *gnn.Fwd32, h, hN *tensor.Matrix32, gated bool) *tensor.Matrix32 {
	selfT := f.MatMul(h, l.wls.Value32())
	neighT := f.MatMul(hN, l.wln.Value32())
	if !gated {
		return tensor.ReLU32InPlace(selfT.AddInPlace(neighT))
	}
	wsH := f.MatMul(h, l.ws.Value32())
	wnN := f.MatMul(hN, l.wn.Value32())
	return l.gateCombine32(f, selfT, neighT, wsH, wnN)
}

// gateCombine32 runs Eq. 7–9 and the gated Eq. 5 combine in float32.
func (l *saoLayer) gateCombine32(f *gnn.Fwd32, selfT, neighT, wsH, wnN *tensor.Matrix32) *tensor.Matrix32 {
	tS := tensor.Tanh32InPlace(wsH)
	tN := tensor.Tanh32InPlace(wnN)
	p := l.p.Value32()
	aSelf := f.Get(selfT.Rows, 1)
	tensor.MatMul32SplitInto(aSelf, tS, tS, p)
	aNeigh := f.Get(selfT.Rows, 1)
	tensor.MatMul32SplitInto(aNeigh, tN, tS, p)
	alpha := tensor.SoftmaxRows32InPlace(f.ConcatCols(aSelf, aNeigh))
	// Gated combine row by row: selfRow = αS·selfRow + αN·neighRow, the
	// scale through the vector kernels and the neighbor term fused into
	// one FMA axpy pass instead of scale-scale-add.
	for i := 0; i < selfT.Rows; i++ {
		tensor.Scale32(selfT.Row(i), alpha.At(i, 0))
		tensor.Axpy32(selfT.Row(i), neighT.Row(i), alpha.At(i, 1))
	}
	return tensor.ReLU32InPlace(selfT)
}

// scaleRowsByCol32 scales row i of m by alpha[i, col] in place.
func scaleRowsByCol32(m, alpha *tensor.Matrix32, col int) {
	for i := 0; i < m.Rows; i++ {
		tensor.Scale32(m.Row(i), alpha.At(i, col))
	}
}

// inferEmbed32 computes the float32 evaluation-mode embeddings.
func (m *HAG) inferEmbed32(f *gnn.Fwd32, b *gnn.Batch) *tensor.Matrix32 {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		h := b.X32()
		adj := b.CSR32For(b.MergedWeightedMeanCSR())
		for _, l := range m.streams[0] {
			h = l.infer32(f, h, f.Aggregate(adj, h), gated)
		}
		return h
	}
	n := b.NumNodes
	scores := f.Get(n, m.cfg.NumEdgeTypes)
	typeEmb := make([]*tensor.Matrix32, m.cfg.NumEdgeTypes)
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		h := b.X32()
		adj := b.CSR32For(b.TypedMeanCSR(r))
		for _, l := range m.streams[r] {
			h = l.infer32(f, h, f.Aggregate(adj, h), gated)
		}
		typeEmb[r] = h
		s := f.MatMul(tensor.Tanh32InPlace(f.MatMul(h, m.cfo[r].wAtt.Value32())), m.cfo[r].vAtt.Value32())
		for i := 0; i < n; i++ {
			scores.Set(i, r, s.Data[i])
		}
	}
	alpha := tensor.SoftmaxRows32InPlace(scores)
	var fused *tensor.Matrix32
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		term := f.MatMul(typeEmb[r], m.cfo[r].m.Value32())
		if fused == nil {
			fused = term
			scaleRowsByCol32(fused, alpha, r)
		} else {
			// fusedRow += α[i,r]·termRow: scale and accumulate in one
			// FMA pass per row.
			for i := 0; i < fused.Rows; i++ {
				tensor.Axpy32(fused.Row(i), term.Row(i), alpha.At(i, r))
			}
		}
	}
	return fused
}

// Infer32 implements gnn.Inferer32.
func (m *HAG) Infer32(f *gnn.Fwd32, b *gnn.Batch) *tensor.Matrix32 {
	return f.MLP(m.head, m.inferEmbed32(f, b))
}

// InferTarget32 implements gnn.TargetInferer32: all but the last SAO
// layer of each stream run in full, the final layer plus CFO and head
// on the target row alone — the same decomposition as InferTarget.
func (m *HAG) InferTarget32(f *gnn.Fwd32, b *gnn.Batch, node int) float32 {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		h := b.X32()
		adj := b.CSR32For(b.MergedWeightedMeanCSR())
		ls := m.streams[0]
		for _, l := range ls[:len(ls)-1] {
			h = l.infer32(f, h, f.Aggregate(adj, h), gated)
		}
		l := ls[len(ls)-1]
		row := l.infer32(f, h.RowView(node), f.AggregateRow(adj, h, node), gated)
		return f.MLP(m.head, row).Data[0]
	}
	nTypes := m.cfg.NumEdgeTypes
	scores := f.Get(1, nTypes)
	rows := make([]*tensor.Matrix32, nTypes)
	for r := 0; r < nTypes; r++ {
		h := b.X32()
		adj := b.CSR32For(b.TypedMeanCSR(r))
		ls := m.streams[r]
		for _, l := range ls[:len(ls)-1] {
			h = l.infer32(f, h, f.Aggregate(adj, h), gated)
		}
		l := ls[len(ls)-1]
		row := l.infer32(f, h.RowView(node), f.AggregateRow(adj, h, node), gated)
		rows[r] = row
		s := f.MatMul(tensor.Tanh32InPlace(f.MatMul(row, m.cfo[r].wAtt.Value32())), m.cfo[r].vAtt.Value32())
		scores.Set(0, r, s.Data[0])
	}
	alpha := tensor.SoftmaxRows32InPlace(scores)
	var fused *tensor.Matrix32
	for r := 0; r < nTypes; r++ {
		term := f.MatMul(rows[r], m.cfo[r].m.Value32())
		if fused == nil {
			fused = term
			scaleRowsByCol32(fused, alpha, r)
		} else {
			for i := 0; i < fused.Rows; i++ {
				tensor.Axpy32(fused.Row(i), term.Row(i), alpha.At(i, r))
			}
		}
	}
	return f.MLP(m.head, fused).Data[0]
}
