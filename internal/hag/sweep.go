package hag

import (
	"fmt"

	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// sweep.go compiles HAG into a layer-at-a-time full-graph program (see
// internal/gnn/sweep.go for the framework and equivalence contract).
// saoLayer.infer is row-wise everywhere except the neighborhood
// aggregation, so each (stream, layer) pair becomes one barrier-
// separated step: gather the row range's neighbor means, then run the
// unchanged SAO arithmetic on those rows. The CFO fusion — micro
// attention scores, node-wise softmax over types, macro transforms — is
// row-wise given every stream's final embedding, so it compiles to a
// single step after all streams.

// saoScratch is the full-height scratch of one SAO sweep step. out
// doubles as the selfT accumulator and becomes the layer's output, as
// in saoLayer.infer.
type saoScratch struct {
	out, neighT        *tensor.Matrix
	tS, tN, aS, aN, al *tensor.Matrix // gated form only
}

// sweepRange runs saoLayer.inferFused's per-row arithmetic on rows
// [lo, hi): identical kernel sequence (self transform, fused
// aggregate+transform of the neighbor mean, tanh-ed split attention
// matmuls, row softmax, gated add, ReLU), restricted to the range via
// the bitwise-equal range kernels. The caller has already filled
// s.neighT (and s.tN when gated) via the fused CSR kernel, so the
// full-graph h_N buffer no longer exists.
func (l *saoLayer) sweepRange(s *saoScratch, in *tensor.Matrix, gated bool, lo, hi int) {
	gnn.ClearRows(s.out, lo, hi)
	tensor.MatMulRangeInto(s.out, in, l.wls.Value, lo, hi) // H·W_ls
	ov := s.out.RowsView(lo, hi)
	nv := s.neighT.RowsView(lo, hi)
	if !gated {
		tensor.ReLUInPlace(ov.AddInPlace(nv))
		return
	}
	gnn.ClearRows(s.tS, lo, hi)
	tensor.MatMulRangeInto(s.tS, in, l.ws.Value, lo, hi)
	tensor.TanhInPlace(s.tS.RowsView(lo, hi))
	tensor.TanhInPlace(s.tN.RowsView(lo, hi))
	gnn.ClearRows(s.aS, lo, hi)
	tensor.MatMulSplitRangeInto(s.aS, s.tS, s.tS, l.p.Value, lo, hi)
	gnn.ClearRows(s.aN, lo, hi)
	tensor.MatMulSplitRangeInto(s.aN, s.tN, s.tS, l.p.Value, lo, hi)
	av := s.al.RowsView(lo, hi)
	tensor.ConcatColsInto(av, s.aS.RowsView(lo, hi), s.aN.RowsView(lo, hi))
	tensor.SoftmaxRowsInPlace(av)
	scaleRowsByCol(ov, av, 0)
	scaleRowsByCol(nv, av, 1)
	tensor.ReLUInPlace(ov.AddInPlace(nv))
}

// buildStream appends one SAO stack's steps and returns its final
// embedding buffer. When capture is non-nil, the stack's last step
// first copies its input rows (the stream's penultimate activations,
// h^{L-1}) into the caller-owned buffer — no extra barrier, since the
// prior step's barrier already finalized those rows.
func (m *HAG) buildStream(p *gnn.SweepProgram, b *gnn.Batch, name string, stack []*saoLayer, adj *autodiff.CSR, capture *tensor.Matrix) *tensor.Matrix {
	gated := !m.cfg.DisableSAOGate
	n := b.NumNodes
	h := b.X
	for li, l := range stack {
		in, l := h, l
		var cp *tensor.Matrix
		if li == len(stack)-1 {
			cp = capture
		}
		sc := &saoScratch{
			out:    p.Alloc(n, l.out),
			neighT: p.Alloc(n, l.out),
		}
		if gated {
			att := l.ws.Value.Cols
			sc.tS = p.Alloc(n, att)
			sc.tN = p.Alloc(n, att)
			sc.aS = p.Alloc(n, 1)
			sc.aN = p.Alloc(n, 1)
			sc.al = p.Alloc(n, 2)
		}
		p.Step(fmt.Sprintf("%s.l%d", name, li), func(f *gnn.Fwd, lo, hi int) {
			if cp != nil {
				gnn.CopyRows(cp, in, lo, hi)
			}
			gnn.ClearRows(sc.neighT, lo, hi)
			if gated {
				gnn.ClearRows(sc.tN, lo, hi)
				adj.AggTransform2RangeInto(sc.neighT, sc.tN, in, l.wln.Value, l.wn.Value, lo, hi)
			} else {
				adj.AggTransformRangeInto(sc.neighT, in, l.wln.Value, lo, hi)
			}
			l.sweepRange(sc, in, gated, lo, hi)
		})
		p.Retire(sc.neighT)
		if gated {
			p.Retire(sc.tS, sc.tN, sc.aS, sc.aN, sc.al)
		}
		if in != b.X {
			p.Retire(in)
		}
		h = sc.out
	}
	return h
}

// BuildSweep implements gnn.SweepInferer for HAG and all its ablation
// variants: per-type SAO streams (or the single merged stream of
// CFO(-)), the CFO fusion step, then the head.
func (m *HAG) BuildSweep(b *gnn.Batch) *gnn.SweepProgram { return m.buildSweep(b, nil) }

// buildSweep is BuildSweep with optional per-stream penultimate capture
// (capture[r] receives stream r's h^{L-1}; nil disables capture).
func (m *HAG) buildSweep(b *gnn.Batch, capture []*tensor.Matrix) *gnn.SweepProgram {
	p := gnn.NewSweepProgram(b.NumNodes)
	n := b.NumNodes
	cap0 := func(r int) *tensor.Matrix {
		if capture == nil {
			return nil
		}
		return capture[r]
	}
	if m.cfg.DisableCFO {
		h := m.buildStream(p, b, "hag.s0", m.streams[0], b.MergedWeightedMeanCSR(), cap0(0))
		p.AppendHead(m.head, h, b.X)
		return p
	}
	nTypes := m.cfg.NumEdgeTypes
	typeEmb := make([]*tensor.Matrix, nTypes)
	for r := 0; r < nTypes; r++ {
		typeEmb[r] = m.buildStream(p, b, fmt.Sprintf("hag.s%d", r), m.streams[r], b.TypedMeanCSR(r), cap0(r))
	}
	tmp := p.Alloc(n, m.cfg.AttHidden)
	sCol := p.Alloc(n, 1)
	scores := p.Alloc(n, nTypes)
	fused := p.Alloc(n, m.cfg.FusedDim)
	term := p.Alloc(n, m.cfg.FusedDim)
	p.Step("hag.cfo", func(f *gnn.Fwd, lo, hi int) {
		// Eq. 12 micro scores per type, then the node-wise softmax.
		for r := 0; r < nTypes; r++ {
			gnn.ClearRows(tmp, lo, hi)
			tensor.MatMulRangeInto(tmp, typeEmb[r], m.cfo[r].wAtt.Value, lo, hi)
			tensor.TanhInPlace(tmp.RowsView(lo, hi))
			gnn.ClearRows(sCol, lo, hi)
			tensor.MatMulRangeInto(sCol, tmp, m.cfo[r].vAtt.Value, lo, hi)
			for i := lo; i < hi; i++ {
				scores.Set(i, r, sCol.Data[i])
			}
		}
		av := scores.RowsView(lo, hi)
		tensor.SoftmaxRowsInPlace(av)
		// Eq. 13–15: type 0's term lands directly in fused (Infer adopts
		// the first term as the accumulator), the rest add in type order.
		gnn.ClearRows(fused, lo, hi)
		tensor.MatMulRangeInto(fused, typeEmb[0], m.cfo[0].m.Value, lo, hi)
		scaleRowsByCol(fused.RowsView(lo, hi), av, 0)
		for r := 1; r < nTypes; r++ {
			gnn.ClearRows(term, lo, hi)
			tensor.MatMulRangeInto(term, typeEmb[r], m.cfo[r].m.Value, lo, hi)
			scaleRowsByCol(term.RowsView(lo, hi), av, r)
			fused.RowsView(lo, hi).AddInPlace(term.RowsView(lo, hi))
		}
	})
	p.Retire(tmp, sCol, scores, term)
	for _, emb := range typeEmb {
		if emb != b.X {
			p.Retire(emb)
		}
	}
	p.AppendHead(m.head, fused, b.X)
	return p
}
