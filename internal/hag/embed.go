package hag

import (
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// embed.go implements the gnn.EmbedServing split for HAG and its
// ablations (see internal/gnn/embed.go for the contract). Every SAO
// stream is a separate penultimate activation stream: with CFO, stream
// r is the h^{L-1} of edge type r's homogeneous subgraph; with CFO(-)
// there is a single stream over the merged weighted graph. InferFinal
// mirrors InferTarget's tail exactly — last SAO layer per stream on the
// target row, CFO micro-attention, node-wise softmax, macro fusion,
// head — with the neighbor aggregation rows rebuilt from the star.

// EmbedSpec implements gnn.EmbedServing.
func (m *HAG) EmbedSpec() (widths []int, hops int) {
	widths = make([]int, len(m.streams))
	for r, stack := range m.streams {
		widths[r] = stack[len(stack)-1].wls.Value.Rows
	}
	return widths, len(m.streams[0])
}

// BuildEmbedSweep implements gnn.EmbedServing.
func (m *HAG) BuildEmbedSweep(b *gnn.Batch, capture []*tensor.Matrix) *gnn.SweepProgram {
	return m.buildSweep(b, capture)
}

// InferFinal implements gnn.EmbedServing.
func (m *HAG) InferFinal(f *gnn.Fwd, star *gnn.EmbedStar, hs []*tensor.Matrix) float64 {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		ls := m.streams[0]
		l := ls[len(ls)-1]
		h := hs[0]
		row := l.infer(f, h.RowView(0), gnn.StarAggRow(f, h, star.Merged, false, false), gated)
		return f.MLP(m.head, row).Data[0]
	}
	nTypes := m.cfg.NumEdgeTypes
	scores := f.Get(1, nTypes)
	rows := make([]*tensor.Matrix, nTypes)
	for r := 0; r < nTypes; r++ {
		ls := m.streams[r]
		l := ls[len(ls)-1]
		h := hs[r]
		row := l.infer(f, h.RowView(0), gnn.StarAggRow(f, h, star.Typed[r], false, false), gated)
		rows[r] = row
		s := f.MatMul(tensor.TanhInPlace(f.MatMul(row, m.cfo[r].wAtt.Value)), m.cfo[r].vAtt.Value)
		scores.Set(0, r, s.Data[0])
	}
	alpha := tensor.SoftmaxRowsInPlace(scores)
	var fused *tensor.Matrix
	for r := 0; r < nTypes; r++ {
		term := f.MatMul(rows[r], m.cfo[r].m.Value)
		scaleRowsByCol(term, alpha, r)
		if fused == nil {
			fused = term
		} else {
			fused.AddInPlace(term)
		}
	}
	return f.MLP(m.head, fused).Data[0]
}
