package hag

import (
	"testing"

	"turbo/internal/gnn"
)

// TestHAGSweepMatchesInfer pins the compiled sweep program to Infer's
// logits bitwise for every ablation variant (gated/ungated SAO × with/
// without CFO): the per-(stream,layer) steps and the CFO fusion step run
// the identical per-row kernels over the same batch.
func TestHAGSweepMatchesInfer(t *testing.T) {
	for _, m := range hagVariants(1) {
		if !gnn.CanSweep(m) {
			t.Fatalf("%s does not implement gnn.SweepInferer", m.Name())
		}
		for seed := uint64(1); seed <= 4; seed++ {
			b := randomHagBatch(seed, 24, 2, 5)
			f := gnn.AcquireFwd()
			want := append([]float64(nil), m.Infer(f, b).Data[:b.NumNodes]...)
			gnn.ReleaseFwd(f)
			prog, ok := gnn.BuildSweepFor(m, b)
			if !ok {
				t.Fatalf("%s: BuildSweepFor refused", m.Name())
			}
			f2 := gnn.AcquireFwd()
			out := prog.RunSerial(f2)
			for i, w := range want {
				if out.Data[i] != w {
					t.Fatalf("%s seed %d node %d: sweep logit %v, infer %v",
						m.Name(), seed, i, out.Data[i], w)
				}
			}
			gnn.ReleaseFwd(f2)
			prog.Release()
		}
	}
}
