package hag

import (
	"turbo/internal/autodiff"
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// Tape-free HAG forward (see internal/gnn/infer.go for the engine and
// the equivalence contract). Every kernel mirrors the tape op it
// replaces — same MatMul kernel, same elementwise formulas, same
// accumulation order — so Infer reproduces Forward's evaluation-mode
// logits bitwise. In-place mutations only touch Fwd scratch whose tape
// counterpart is a fresh node, never an input still needed downstream.

// infer applies Eq. 5–9 without a tape. h is not mutated (streams reuse
// the input features); hN, selfT, and neighT are consumed scratch.
func (l *saoLayer) infer(f *gnn.Fwd, h, hN *tensor.Matrix, gated bool) *tensor.Matrix {
	selfT := f.MatMul(h, l.wls.Value)   // H·W_ls
	neighT := f.MatMul(hN, l.wln.Value) // h_N·W_ln
	if !gated {
		return tensor.ReLUInPlace(selfT.AddInPlace(neighT))
	}
	wsH := f.MatMul(h, l.ws.Value)  // W_s h_v
	wnN := f.MatMul(hN, l.wn.Value) // W_n h_N
	return l.gateCombine(f, selfT, neighT, wsH, wnN)
}

// inferFused is the full-graph form of infer: the two transforms of the
// neighbor aggregate (W_ln and, gated, W_n) run through the fused CSR
// aggregate+transform kernel, so h_N is only ever materialized
// panel-by-panel. Bitwise equal to infer(f, h, f.Aggregate(adj, h), …).
func (l *saoLayer) inferFused(f *gnn.Fwd, h *tensor.Matrix, adj *autodiff.CSR, gated bool) *tensor.Matrix {
	selfT := f.MatMul(h, l.wls.Value)
	neighT := f.Get(adj.NRows, l.wln.Value.Cols)
	if !gated {
		adj.AggTransformInto(neighT, h, l.wln.Value)
		return tensor.ReLUInPlace(selfT.AddInPlace(neighT))
	}
	wsH := f.MatMul(h, l.ws.Value)
	wnN := f.Get(adj.NRows, l.wn.Value.Cols)
	adj.AggTransform2Into(neighT, wnN, h, l.wln.Value, l.wn.Value)
	return l.gateCombine(f, selfT, neighT, wsH, wnN)
}

// gateCombine runs Eq. 7–9 and the gated Eq. 5 combine, consuming all
// four projections as scratch.
func (l *saoLayer) gateCombine(f *gnn.Fwd, selfT, neighT, wsH, wnN *tensor.Matrix) *tensor.Matrix {
	// Eq. 7–8: attention scores against the self projection. The tape
	// computes tanh over materialized 2d-wide concatenations; tanh is
	// elementwise, so tanh-ing each half once and running the split
	// matmul gives the identical rounding sequence with half the tanh
	// evaluations and no concat copies.
	tS := tensor.TanhInPlace(wsH) // tanh(W_s h_v), shared by both scores
	tN := tensor.TanhInPlace(wnN)
	aSelf := f.Get(selfT.Rows, 1)
	tensor.MatMulSplitInto(aSelf, tS, tS, l.p.Value)
	aNeigh := f.Get(selfT.Rows, 1)
	tensor.MatMulSplitInto(aNeigh, tN, tS, l.p.Value)
	// Eq. 9: per-node softmax over the two scores.
	alpha := tensor.SoftmaxRowsInPlace(f.ConcatCols(aSelf, aNeigh))
	// Eq. 5: gate the two transforms. Each row scale is an assignment of
	// its own, exactly like the tape's MulColVector, before the add.
	scaleRowsByCol(selfT, alpha, 0)
	scaleRowsByCol(neighT, alpha, 1)
	return tensor.ReLUInPlace(selfT.AddInPlace(neighT))
}

// scaleRowsByCol scales row i of m by alpha[i, col] in place, the
// tape MulColVector(m, SliceCols(alpha, col, col+1)) without the slice
// materialization.
func scaleRowsByCol(m, alpha *tensor.Matrix, col int) {
	for i := 0; i < m.Rows; i++ {
		s := alpha.At(i, col)
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// inferEmbed computes the fused evaluation-mode embeddings (Embed with a
// nil dropout RNG) on Fwd scratch.
func (m *HAG) inferEmbed(f *gnn.Fwd, b *gnn.Batch) *tensor.Matrix {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		h := b.X
		adj := b.MergedWeightedMeanCSR()
		for _, l := range m.streams[0] {
			h = l.inferFused(f, h, adj, gated)
		}
		return h
	}
	// Eq. 10: one SAO stream per edge type on its homogeneous subgraph.
	n := b.NumNodes
	scores := f.Get(n, m.cfg.NumEdgeTypes)
	typeEmb := make([]*tensor.Matrix, m.cfg.NumEdgeTypes)
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		h := b.X
		adj := b.TypedMeanCSR(r)
		for _, l := range m.streams[r] {
			h = l.inferFused(f, h, adj, gated)
		}
		typeEmb[r] = h
		// Eq. 12 (micro level): score_{v,r} = v_rᵀ tanh(W_r h_{v,r}).
		s := f.MatMul(tensor.TanhInPlace(f.MatMul(h, m.cfo[r].wAtt.Value)), m.cfo[r].vAtt.Value)
		for i := 0; i < n; i++ {
			scores.Set(i, r, s.Data[i])
		}
	}
	// Eq. 12: node-wise softmax over types.
	alpha := tensor.SoftmaxRowsInPlace(scores)
	// Eq. 13–15: H_v = Σ_r α_{v,r} · (h_{v,r} M_r).
	var fused *tensor.Matrix
	for r := 0; r < m.cfg.NumEdgeTypes; r++ {
		term := f.MatMul(typeEmb[r], m.cfo[r].m.Value)
		scaleRowsByCol(term, alpha, r)
		if fused == nil {
			fused = term
		} else {
			fused.AddInPlace(term)
		}
	}
	return fused
}

// Infer implements gnn.Inferer: the evaluation-mode HAG forward without
// a tape.
func (m *HAG) Infer(f *gnn.Fwd, b *gnn.Batch) *tensor.Matrix {
	return f.MLP(m.head, m.inferEmbed(f, b))
}

// InferTarget implements gnn.TargetInferer. Only the last SAO layer of
// each stream reads other rows of its input, so every stream's final
// layer — plus the CFO micro-attention, the type fusion and the head —
// runs on the target row alone. saoLayer.infer is row-wise throughout,
// so feeding it 1-row views reproduces the full forward's target row
// bitwise.
func (m *HAG) InferTarget(f *gnn.Fwd, b *gnn.Batch, node int) float64 {
	gated := !m.cfg.DisableSAOGate
	if m.cfg.DisableCFO {
		h := b.X
		adj := b.MergedWeightedMeanCSR()
		ls := m.streams[0]
		for _, l := range ls[:len(ls)-1] {
			h = l.inferFused(f, h, adj, gated)
		}
		l := ls[len(ls)-1]
		row := l.infer(f, h.RowView(node), f.AggregateRow(adj, h, node), gated)
		return f.MLP(m.head, row).Data[0]
	}
	nTypes := m.cfg.NumEdgeTypes
	scores := f.Get(1, nTypes)
	rows := make([]*tensor.Matrix, nTypes)
	for r := 0; r < nTypes; r++ {
		h := b.X
		adj := b.TypedMeanCSR(r)
		ls := m.streams[r]
		for _, l := range ls[:len(ls)-1] {
			h = l.inferFused(f, h, adj, gated)
		}
		l := ls[len(ls)-1]
		row := l.infer(f, h.RowView(node), f.AggregateRow(adj, h, node), gated)
		rows[r] = row
		s := f.MatMul(tensor.TanhInPlace(f.MatMul(row, m.cfo[r].wAtt.Value)), m.cfo[r].vAtt.Value)
		scores.Set(0, r, s.Data[0])
	}
	alpha := tensor.SoftmaxRowsInPlace(scores)
	var fused *tensor.Matrix
	for r := 0; r < nTypes; r++ {
		term := f.MatMul(rows[r], m.cfo[r].m.Value)
		scaleRowsByCol(term, alpha, r)
		if fused == nil {
			fused = term
		} else {
			fused.AddInPlace(term)
		}
	}
	return f.MLP(m.head, fused).Data[0]
}
