package embed

import (
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// RefreshStats summarizes one incremental refresh pass.
type RefreshStats struct {
	Dirty   int           // dirty rows targeted
	Ball    int           // rows re-embedded (dirty set padded to L−1 hops)
	Cleared int           // dirty bits cleared (rows not re-dirtied mid-refresh)
	Sweep   sweep.Stats   // the ball sweep
	Elapsed time.Duration // wall time of the whole pass
}

// Refresh re-embeds the dirty set incrementally: it pads the dirty rows
// D to their universe-restricted closed (L−1)-hop ball, runs the
// embedding sweep over that induced subgraph with the table's FROZEN
// features, and republishes rows and stars for D only.
//
// Correctness: with the closed ball B = ball(D, L−1) and snapshot-exact
// §III-A weights, h^k computed on B matches the full-universe value on
// ball(D, L−1−k) by induction — each aggregation needs one hop of
// correct inputs — so h^{L−1} is exact on D. Rows in B∖D keep their
// (clean, still-valid) old values; only D is republished. Features stay
// frozen at build time, so a refresh repairs structural staleness
// exactly while feature staleness is bounded by the periodic full
// rebuild.
//
// Exactly one Refresh (or Build/Install) may run at a time. Deltas that
// Flush while the refresh runs re-dirty rows; the refresh skips
// clearing those bits (Store.remarked), so their next values come from
// a later pass.
func (s *Store) Refresh(snap *graph.Snapshot, opts sweep.Options) RefreshStats {
	start := time.Now()
	var st RefreshStats

	s.mu.Lock()
	tab := s.table.Load()
	if tab == nil {
		s.mu.Unlock()
		return st
	}
	dirty := tab.dirtyRows()
	if len(dirty) == 0 {
		s.mu.Unlock()
		return st
	}
	s.refreshing = true
	s.remarked = make(map[int32]struct{})
	s.mu.Unlock()

	st.Dirty = len(dirty)
	ball := tab.ballRows(snap, dirty, tab.hops-1)
	st.Ball = len(ball)

	// Gather the ball's frozen features and run the embedding sweep over
	// the induced subgraph. No scoring emit: only the captured
	// penultimate activations matter here.
	ballIDs := make([]graph.NodeID, len(ball))
	for i, r := range ball {
		ballIDs[i] = tab.ids[r]
	}
	x := tensor.New(len(ball), tab.x.Cols)
	for i, r := range ball {
		copy(x.Row(i), tab.x.Row(int(r)))
	}
	sg := graph.FullSubgraph(snap, graph.FullOptions{Nodes: ballIDs})
	b := gnn.NewBatch(sg, x)
	capture := make([]*tensor.Matrix, len(tab.widths))
	for st2, w := range tab.widths {
		capture[st2] = tensor.New(len(ball), w)
	}
	prog := tab.model.BuildEmbedSweep(b, capture)
	st.Sweep = sweep.Run(prog, opts, nil)
	prog.Release()
	b.Release()

	// Rebuild the dirty rows' stars against the refresh snapshot.
	ballPos := make(map[int32]int, len(ball))
	for i, r := range ball {
		ballPos[r] = i
	}
	stars := make([]*gnn.EmbedStar, len(dirty))
	for i, r := range dirty {
		stars[i] = tab.buildStar(snap, r)
	}

	// Publish under the seqlock: rows and stars for D swap together, and
	// any concurrent TryServe that overlaps the window retries as a
	// fallback rather than mixing generations.
	s.writeGen.Add(1)
	for i, r := range dirty {
		bi := ballPos[r]
		for st2 := range tab.rows {
			row := capture[st2].Row(bi)
			tab.rows[st2][r].Store(&row)
		}
		tab.stars[r].Store(stars[i])
	}
	s.writeGen.Add(1)

	s.mu.Lock()
	for _, r := range dirty {
		if _, ok := s.remarked[r]; !ok {
			tab.clearRow(r)
			st.Cleared++
		}
	}
	s.refreshing = false
	s.remarked = nil
	// The republished rows reflect snap; older snapshots must no longer
	// serve against them.
	if snap.Epoch() > tab.Epoch() {
		tab.epoch.Store(snap.Epoch())
	}
	s.mu.Unlock()

	st.Elapsed = time.Since(start)
	return st
}
