package embed

import (
	"math"
	"sync"
	"testing"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/hag"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// embedTol is the serving parity bound: the gathered-block final layer
// may tile its dense matmuls differently than the full-height sweep, so
// the contract is ≤1e-9, not bitwise.
const embedTol = 1e-9

// testWorld builds a mutable multigraph with n nodes and ~4n random
// typed edges plus frozen features, the same shape the sweep tests use.
func testWorld(seed uint64, n, types, dim int) (*graph.Graph, *graph.Snapshot, *tensor.Matrix, []graph.NodeID) {
	rng := tensor.NewRNG(seed | 1)
	g := graph.New(types)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for e := 0; e < 4*n; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(types)),
			graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, never)
	}
	snap := g.Snapshot()
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	x := tensor.RandNormal(n, dim, 1, rng)
	return g, snap, x, nodes
}

// testModels returns all seven serving model variants of the paper's
// §VI-A comparison: GCN, GraphSAGE, GAT, HAG, and the three ablations.
func testModels(dim, types int) []gnn.Model {
	cfg := gnn.Config{InDim: dim, Hidden: []int{8, 6}, MLPHidden: 4, Seed: 7}
	ms := []gnn.Model{gnn.NewGCN(cfg), gnn.NewGraphSAGE(cfg), gnn.NewGAT(cfg)}
	mk := func(sao, cfo bool) gnn.Model {
		return hag.New(hag.Config{
			InDim: dim, NumEdgeTypes: types, Hidden: []int{8, 6},
			AttHidden: 4, MLPHidden: 4, Seed: 7,
			DisableSAOGate: sao, DisableCFO: cfo,
		})
	}
	return append(ms, mk(false, false), mk(true, false), mk(false, true), mk(true, true))
}

// fullScores is the reference: full-graph probabilities over the frozen
// universe and features on the given snapshot.
func fullScores(t *testing.T, m gnn.Model, snap *graph.Snapshot, nodes []graph.NodeID, x *tensor.Matrix) []float64 {
	t.Helper()
	b := gnn.NewBatch(graph.FullSubgraph(snap, graph.FullOptions{Nodes: nodes}), x)
	defer b.Release()
	return gnn.Scores(m, b)
}

// buildTable builds a table for m over the whole node set.
func buildTable(t *testing.T, m gnn.Model, snap *graph.Snapshot, nodes []graph.NodeID, x *tensor.Matrix) *BuildResult {
	t.Helper()
	es, ok := m.(gnn.EmbedServing)
	if !ok {
		t.Fatalf("%s: not EmbedServing", m.Name())
	}
	ids := append([]graph.NodeID(nil), nodes...)
	xc := tensor.New(x.Rows, x.Cols)
	copy(xc.Data, x.Data)
	res, err := Build(snap, ids, xc, es, 1, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatalf("%s: build: %v", m.Name(), err)
	}
	return res
}

// TestEmbedServeParity pins the embedding tier to the full-graph sweep
// for every model variant: the build's probabilities match gnn.Scores
// bitwise (same sweep), and TryServe on every clean node reproduces the
// full score within 1e-9.
func TestEmbedServeParity(t *testing.T) {
	_, snap, x, nodes := testWorld(3, 40, 3, 6)
	for _, m := range testModels(6, 3) {
		if !gnn.CanEmbedServe(m) {
			t.Fatalf("%s: CanEmbedServe is false", m.Name())
		}
		want := fullScores(t, m, snap, nodes, x)
		res := buildTable(t, m, snap, nodes, x)
		for i := range want {
			if res.Probs[i] != want[i] {
				t.Fatalf("%s node %d: build prob %v, sweep %v", m.Name(), i, res.Probs[i], want[i])
			}
		}
		s := NewStore()
		s.Install(res.Table, snap)
		for i, u := range nodes {
			prob, r := s.TryServe(snap, u, m)
			if r != Hit {
				t.Fatalf("%s node %d: result %v, want Hit", m.Name(), u, r)
			}
			if d := math.Abs(prob - want[i]); d > embedTol {
				t.Fatalf("%s node %d: embed %v, full %v (diff %g)", m.Name(), u, prob, want[i], d)
			}
		}
		// Unknown node and model skew both refuse.
		if _, r := s.TryServe(snap, graph.NodeID(10_000), m); r != Miss {
			t.Fatalf("%s: unknown node served %v, want Miss", m.Name(), r)
		}
		other := testModels(6, 3)[0]
		if _, r := s.TryServe(snap, nodes[0], other); m != other && r != Fallback {
			t.Fatalf("%s: model skew served %v, want Fallback", m.Name(), r)
		}
	}
}

// TestDirtyNeverServesStale is the safety property of the tier: after
// edge deltas land (including prune-driven removals), every node the
// store still serves as a Hit must match the CURRENT full-graph score —
// a stale-neighborhood score is never served silently. Marked nodes
// report Dirty.
func TestDirtyNeverServesStale(t *testing.T) {
	g, snap, x, nodes := testWorld(5, 40, 3, 6)
	m := testModels(6, 3)[3] // full HAG: typed streams exercise star.Typed
	res := buildTable(t, m, snap, nodes, x)
	s := NewStore()
	s.Install(res.Table, snap)
	g.SetDeltaObserver(s.NoteDelta)

	rng := tensor.NewRNG(17)
	soon := time.Now().Add(time.Millisecond)
	for e := 0; e < 12; e++ {
		u := rng.Intn(40)
		v := rng.Intn(40)
		if u == v {
			continue
		}
		exp := never
		if e%3 == 0 {
			exp = soon // will be pruned below, firing removal deltas
		}
		_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(3)),
			graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, exp)
	}
	time.Sleep(2 * time.Millisecond)
	g.Prune(time.Now())
	if s.PendingDeltas() == 0 {
		t.Fatal("delta observer saw no updates")
	}
	snap2 := g.Snapshot()
	s.Flush(snap2) // mark-before-publish

	want := fullScores(t, m, snap2, nodes, x)
	hits, dirty := 0, 0
	for i, u := range nodes {
		prob, r := s.TryServe(snap2, u, m)
		switch r {
		case Hit:
			hits++
			if d := math.Abs(prob - want[i]); d > embedTol {
				t.Fatalf("node %d served stale: embed %v, full %v (diff %g)", u, prob, want[i], d)
			}
		case Dirty:
			dirty++
		default:
			t.Fatalf("node %d: unexpected result %v", u, r)
		}
	}
	if dirty == 0 {
		t.Fatal("no node went dirty after edge deltas")
	}
	if res.Table.DirtyCount() == 0 {
		t.Fatal("dirty gauge is zero after deltas")
	}
	t.Logf("hits=%d dirty=%d", hits, dirty)

	// Refresh repairs the dirty set: everything serves again and matches
	// the post-delta full scores within tolerance.
	st := s.Refresh(snap2, sweep.Options{Workers: 2})
	if st.Dirty == 0 || st.Ball < st.Dirty || st.Cleared != st.Dirty {
		t.Fatalf("refresh stats %+v", st)
	}
	if res.Table.DirtyCount() != 0 {
		t.Fatalf("dirty rows remain after refresh: %d", res.Table.DirtyCount())
	}
	for i, u := range nodes {
		prob, r := s.TryServe(snap2, u, m)
		if r != Hit {
			t.Fatalf("node %d after refresh: result %v", u, r)
		}
		if d := math.Abs(prob - want[i]); d > embedTol {
			t.Fatalf("node %d after refresh: embed %v, full %v (diff %g)", u, prob, want[i], d)
		}
	}

	// Older snapshots must refuse after the refresh moved the epoch.
	if _, r := s.TryServe(snap, nodes[0], m); r != Fallback {
		t.Fatalf("pre-refresh snapshot served %v, want Fallback", r)
	}
}

// TestRandomizedDirtyPropagation drives randomized edge-update rounds —
// with a concurrent ingest goroutine for the race detector — and after
// every flushed snapshot checks the invariant end to end: no
// reachable-but-unmarked node, i.e. every Hit equals the current
// full-graph score. Periodic refreshes interleave with the updates.
func TestRandomizedDirtyPropagation(t *testing.T) {
	g, snap, x, nodes := testWorld(11, 30, 2, 5)
	m := testModels(5, 2)[0] // GCN: self-loop aggregation path
	res := buildTable(t, m, snap, nodes, x)
	s := NewStore()
	s.Install(res.Table, snap)
	g.SetDeltaObserver(s.NoteDelta)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // background ingest: hammers NoteDelta and markBall under -race
		defer wg.Done()
		rng := tensor.NewRNG(99)
		for {
			select {
			case <-done:
				return
			default:
			}
			u, v := rng.Intn(30), rng.Intn(30)
			if u == v {
				continue
			}
			_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(2)),
				graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, never)
		}
	}()
	defer wg.Wait()
	defer close(done)

	rng := tensor.NewRNG(41)
	for round := 0; round < 6; round++ {
		for e := 0; e < 5; e++ {
			u, v := rng.Intn(30), rng.Intn(30)
			if u == v {
				continue
			}
			_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(2)),
				graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, never)
		}
		cur := g.Snapshot()
		s.Flush(cur)
		want := fullScores(t, m, cur, nodes, x)
		for i, u := range nodes {
			prob, r := s.TryServe(cur, u, m)
			if r == Hit {
				if d := math.Abs(prob - want[i]); d > embedTol {
					t.Fatalf("round %d node %d: stale hit (diff %g)", round, u, d)
				}
			}
		}
		if round%2 == 1 {
			s.Refresh(cur, sweep.Options{Workers: 2})
		}
	}
}

// TestRebuildLogReplay covers the build-while-ingesting window: deltas
// that land between the build snapshot and Install must mark the NEW
// table dirty, so the freshly installed table cannot serve scores that
// predate those edges.
func TestRebuildLogReplay(t *testing.T) {
	g, snap, x, nodes := testWorld(13, 30, 2, 5)
	m := testModels(5, 2)[1] // GraphSAGE
	s := NewStore()
	g.SetDeltaObserver(s.NoteDelta)

	s.BeginRebuild()
	res := buildTable(t, m, snap, nodes, x)
	// A delta lands after the build snapshot, before Install.
	if err := g.AddEdgeWeight(0, nodes[3], nodes[7], 1.0, never); err != nil {
		t.Fatal(err)
	}
	snap2 := g.Snapshot()
	s.Flush(snap2)
	s.Install(res.Table, snap2)

	if res.Table.DirtyCount() == 0 {
		t.Fatal("install did not replay the rebuild log")
	}
	if _, r := s.TryServe(snap2, nodes[3], m); r != Dirty {
		t.Fatalf("endpoint served %v, want Dirty", r)
	}
	want := fullScores(t, m, snap2, nodes, x)
	for i, u := range nodes {
		if prob, r := s.TryServe(snap2, u, m); r == Hit {
			if d := math.Abs(prob - want[i]); d > embedTol {
				t.Fatalf("node %d: stale hit after install (diff %g)", u, d)
			}
		}
	}
}
