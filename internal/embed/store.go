package embed

import (
	"sync"
	"sync/atomic"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// Result classifies one serve attempt against the embedding tier.
type Result int

const (
	// Hit: the target and its whole aggregation star were clean for the
	// live model — scored from cached embeddings.
	Hit Result = iota
	// Dirty: some star member's embedding was invalidated by an edge
	// delta; the caller must fall through to full scoring.
	Dirty
	// Miss: the target is not in the table universe (or no table yet).
	Miss
	// Fallback: the table exists but cannot serve this request safely —
	// model/version skew, a snapshot older than the table's epoch, or a
	// refresh writing concurrently.
	Fallback
)

// String returns the metrics label for the result.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Dirty:
		return "dirty"
	case Miss:
		return "miss"
	default:
		return "fallback"
	}
}

// Store owns the live embedding table and the delta-driven dirty
// marking. Exactly one goroutine may run Refresh / Build+Install at a
// time (the embed engine serializes them); NoteDelta, Flush, and
// TryServe are safe from any goroutine.
//
// Write protocol: the refresh loop updates row and star pointers of the
// live table in place. writeGen is a seqlock around those writes —
// odd while a refresh is publishing, bumped again when done. TryServe
// snapshots writeGen before reading and rejects the serve if it moved,
// so a score can never mix rows from two refresh generations.
type Store struct {
	table    atomic.Pointer[Table]
	writeGen atomic.Uint64

	mu         sync.Mutex
	pending    []graph.NodeID // delta endpoints awaiting Flush
	refreshing bool
	remarked   map[int32]struct{} // rows re-dirtied while a refresh ran
	rebuilding bool
	rebuildLog []graph.NodeID // deltas observed while a rebuild ran
}

// NewStore returns an empty store (every serve is a Miss until a table
// is installed).
func NewStore() *Store { return &Store{} }

// Table returns the live table, or nil.
func (s *Store) Table() *Table { return s.table.Load() }

// NoteDelta records one edge delta's endpoints for the next Flush. It
// is the graph's delta observer: called from ingest on every
// AddEdgeWeight and from Prune on every dropped edge.
func (s *Store) NoteDelta(u, v graph.NodeID) {
	s.mu.Lock()
	s.pending = append(s.pending, u, v)
	if s.rebuilding {
		s.rebuildLog = append(s.rebuildLog, u, v)
	}
	s.mu.Unlock()
}

// PendingDeltas returns the number of endpoints awaiting Flush.
func (s *Store) PendingDeltas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Flush drains the pending delta endpoints and marks their
// (L−1)-hop-padded neighborhoods dirty on the live table. It MUST be
// called with the about-to-be-published snapshot, before that snapshot
// is made visible to the prediction path (mark-before-publish): then
// any reader holding a snapshot that contains a delta is guaranteed to
// see the dirty bits the delta implies, and readers on older snapshots
// score consistently against their own epoch.
func (s *Store) Flush(snap *graph.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return
	}
	seeds := s.pending
	s.pending = nil
	tab := s.table.Load()
	if tab == nil {
		return
	}
	s.markBallLocked(tab, snap, seeds)
}

// markBallLocked BFS-marks the closed ball of radius tab.Radius()
// around the seed nodes, walking the full snapshot adjacency (an edge
// delta shifts the §III-A degrees of both endpoints, perturbing h^1 on
// their 1-hop neighborhoods and h^{L−1} within L−1 hops; walking
// through non-universe nodes over-marks, which is safe). Marked rows
// are recorded in remarked while a refresh is running so the refresh
// does not clear bits that went stale again under it. Caller holds mu.
func (s *Store) markBallLocked(tab *Table, snap *graph.Snapshot, seeds []graph.NodeID) {
	radius := tab.Radius()
	visited := make(map[graph.NodeID]struct{}, len(seeds)*4)
	frontier := make([]graph.NodeID, 0, len(seeds))
	mark := func(u graph.NodeID) {
		if _, ok := visited[u]; ok {
			return
		}
		visited[u] = struct{}{}
		frontier = append(frontier, u)
		if r := tab.Row(u); r >= 0 {
			tab.markRow(r)
			if s.refreshing {
				s.remarked[r] = struct{}{}
			}
		}
	}
	for _, u := range seeds {
		mark(u)
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		cur := frontier
		frontier = nil
		for _, u := range cur {
			snap.ForEachNeighbor(u, func(v graph.NodeID) { mark(v) })
		}
	}
}

// BeginRebuild marks the start of a full table build. Deltas observed
// until Install are logged and replayed onto the new table, closing the
// window where an edge lands after the build snapshot but before the
// new table goes live.
func (s *Store) BeginRebuild() {
	s.mu.Lock()
	s.rebuilding = true
	s.rebuildLog = nil
	s.mu.Unlock()
}

// AbortRebuild cancels a BeginRebuild without installing.
func (s *Store) AbortRebuild() {
	s.mu.Lock()
	s.rebuilding = false
	s.rebuildLog = nil
	s.mu.Unlock()
}

// Install publishes a freshly built table, replaying deltas logged
// since BeginRebuild onto it against the current snapshot. Installing
// nil drops the table (model swap to a non-servable artifact).
func (s *Store) Install(tab *Table, snap *graph.Snapshot) {
	s.mu.Lock()
	if tab != nil && len(s.rebuildLog) > 0 {
		s.markBallLocked(tab, snap, s.rebuildLog)
	}
	s.table.Store(tab)
	s.rebuilding = false
	s.rebuildLog = nil
	s.mu.Unlock()
}

// TryServe attempts to score node u from cached embeddings: final
// aggregation layer plus head only, never a full multi-hop forward. A
// non-Hit result carries no probability; the caller falls through to
// the next serving tier. The model argument is the prediction path's
// live model — identity mismatch (a swap the embed engine has not
// caught up with) refuses rather than serving another artifact's
// embeddings.
func (s *Store) TryServe(snap *graph.Snapshot, u graph.NodeID, model gnn.Model) (float64, Result) {
	tab := s.table.Load()
	if tab == nil {
		return 0, Miss
	}
	if any(tab.model) != any(model) {
		return 0, Fallback
	}
	if snap != nil && snap.Epoch() < tab.Epoch() {
		// The caller's snapshot predates the rows (a refresh moved the
		// table forward); its view of the neighborhood may disagree.
		return 0, Fallback
	}
	r := tab.Row(u)
	if r < 0 {
		return 0, Miss
	}
	g1 := s.writeGen.Load()
	if g1&1 != 0 {
		return 0, Fallback // refresh mid-publish
	}
	star := tab.stars[r].Load()
	if star == nil {
		return 0, Fallback
	}
	for _, gr := range star.Gather {
		if tab.isDirty(gr) {
			return 0, Dirty
		}
	}

	f := gnn.AcquireFwd()
	defer gnn.ReleaseFwd(f)
	hs := make([]*tensor.Matrix, len(tab.rows))
	for st := range tab.rows {
		h := f.Get(len(star.Gather), tab.widths[st])
		for i, gr := range star.Gather {
			p := tab.rows[st][gr].Load()
			if p == nil {
				return 0, Fallback
			}
			copy(h.Row(i), *p)
		}
		hs[st] = h
	}
	logit := tab.model.InferFinal(f, star, hs)
	if s.writeGen.Load() != g1 {
		// A refresh republished rows underneath the read; the gathered
		// block may mix generations.
		return 0, Fallback
	}
	return tensor.SigmoidScalar(logit), Hit
}
