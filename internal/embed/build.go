package embed

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// BuildResult is the output of one full table build: the table itself
// plus every node's fraud probability — the build sweep scores the
// final layer anyway, so a rebuild doubles as the periodic full-graph
// score sweep and callers can feed Probs straight into the tier-3
// cache.
type BuildResult struct {
	Table *Table
	Probs []float64
	Stats sweep.Stats
}

// Build runs one full embedding sweep over the universe ids (sorted
// snapshot node IDs, typically transaction-filtered) with the frozen,
// ids-aligned feature matrix x, capturing every stream's penultimate
// activations and compiling per-node aggregation stars. The table's
// epoch is snap's: rows are valid for snap and any later snapshot whose
// deltas have been dirty-marked through Store.Flush. Build takes
// ownership of ids and x; the caller must not mutate them afterwards.
func Build(snap *graph.Snapshot, ids []graph.NodeID, x *tensor.Matrix, model gnn.EmbedServing, version int, opts sweep.Options) (*BuildResult, error) {
	n := len(ids)
	if x.Rows != n {
		return nil, fmt.Errorf("embed: %d feature rows for %d universe nodes", x.Rows, n)
	}
	widths, hops := model.EmbedSpec()
	t := newTable(version, model, widths, hops, time.Now(), ids, x)
	t.epoch.Store(snap.Epoch())

	sg := graph.FullSubgraph(snap, graph.FullOptions{Nodes: ids})
	b := gnn.NewBatch(sg, x)
	defer b.Release()

	capture := make([]*tensor.Matrix, len(widths))
	for s, w := range widths {
		capture[s] = tensor.New(n, w)
	}
	prog := model.BuildEmbedSweep(b, capture)
	probs := make([]float64, n)
	stats := sweep.Run(prog, opts, func(lo, hi int, p []float64) {
		copy(probs[lo:hi], p)
	})
	prog.Release()

	for s := range widths {
		for i := 0; i < n; i++ {
			row := capture[s].Row(i)
			t.rows[s][i].Store(&row)
		}
	}
	t.compileStars(snap, opts.Workers)

	return &BuildResult{Table: t, Probs: probs, Stats: stats}, nil
}

// newTable allocates an empty table over the universe ids with frozen
// features x (both owned by the table afterwards): row and star
// pointers unset, nothing dirty.
func newTable(version int, model gnn.EmbedServing, widths []int, hops int, builtAt time.Time, ids []graph.NodeID, x *tensor.Matrix) *Table {
	n := len(ids)
	t := &Table{
		version: version,
		model:   model,
		widths:  widths,
		hops:    hops,
		builtAt: builtAt,
		ids:     ids,
		index:   make(map[graph.NodeID]int32, n),
		x:       x,
		rows:    make([][]atomic.Pointer[[]float64], len(widths)),
		stars:   make([]atomic.Pointer[gnn.EmbedStar], n),
		dirty:   make([]atomic.Uint64, (n+63)/64),
	}
	for i, id := range ids {
		t.index[id] = int32(i)
	}
	for s := range widths {
		t.rows[s] = make([]atomic.Pointer[[]float64], n)
	}
	return t
}

// compileStars (re)builds every node's aggregation star against snap.
// Stars walk every node's neighborhood; shard across cores.
func (t *Table) compileStars(snap *graph.Snapshot, workers int) {
	n := len(t.ids)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				t.stars[r].Store(t.buildStar(snap, int32(r)))
			}
		}(lo, hi)
	}
	wg.Wait()
}
