package embed

import (
	"fmt"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// TableDump is the durable state of an embedding table: everything
// needed to resume serving after a restart except the aggregation
// stars, which are cheap to recompile and must reflect the boot
// snapshot anyway. Version is the model artifact version the
// activations were computed under.
type TableDump struct {
	Version   int
	Hops      int
	Widths    []int
	BuiltAt   time.Time
	Epoch     uint64
	IDs       []graph.NodeID
	XCols     int
	X         []float64   // len(IDs)×XCols frozen features, row-major
	Rows      [][]float64 // per stream: len(IDs)×Widths[s], row-major
	DirtyRows []int32     // rows dirty at export time
}

// Export captures the table for persistence. It must not run
// concurrently with a Refresh (the embed engine's run lock serializes
// them); nil is returned if any row pointer is unset.
func (t *Table) Export() *TableDump {
	n := len(t.ids)
	d := &TableDump{
		Version:   t.version,
		Hops:      t.hops,
		Widths:    append([]int(nil), t.widths...),
		BuiltAt:   t.builtAt,
		Epoch:     t.Epoch(),
		IDs:       append([]graph.NodeID(nil), t.ids...),
		XCols:     t.x.Cols,
		X:         append([]float64(nil), t.x.Data...),
		DirtyRows: t.dirtyRows(),
	}
	for s, w := range t.widths {
		flat := make([]float64, n*w)
		for i := 0; i < n; i++ {
			p := t.rows[s][i].Load()
			if p == nil {
				return nil
			}
			copy(flat[i*w:(i+1)*w], *p)
		}
		d.Rows = append(d.Rows, flat)
	}
	return d
}

// ImportTable reconstructs a servable table from a dump: activations
// and frozen features come from disk, aggregation stars are recompiled
// against the boot snapshot, and the dump's dirty rows are re-marked.
// The table's epoch is the boot snapshot's.
//
// The caller decides how much to trust the rows: edges that changed
// while the process was down are invisible here, so unless the operator
// asserts otherwise, MarkAll the returned table and let the refresh
// loop (or a rebuild) repair it — dirty rows fall back, they never
// serve stale.
func ImportTable(d *TableDump, model gnn.EmbedServing, snap *graph.Snapshot, workers int) (*Table, error) {
	widths, hops := model.EmbedSpec()
	if hops != d.Hops || len(widths) != len(d.Widths) {
		return nil, fmt.Errorf("embed: dump spec (hops %d, %d streams) does not match model (hops %d, %d streams)",
			d.Hops, len(d.Widths), hops, len(widths))
	}
	for s, w := range widths {
		if w != d.Widths[s] {
			return nil, fmt.Errorf("embed: dump stream %d width %d, model wants %d", s, d.Widths[s], w)
		}
	}
	n := len(d.IDs)
	if len(d.X) != n*d.XCols {
		return nil, fmt.Errorf("embed: dump has %d feature values for %d×%d", len(d.X), n, d.XCols)
	}
	for s, w := range widths {
		if len(d.Rows[s]) != n*w {
			return nil, fmt.Errorf("embed: dump stream %d has %d values for %d×%d", s, len(d.Rows[s]), n, w)
		}
	}

	x := tensor.New(n, d.XCols)
	copy(x.Data, d.X)
	t := newTable(d.Version, model, widths, hops, d.BuiltAt, d.IDs, x)
	t.epoch.Store(snap.Epoch())
	for s, w := range widths {
		mat := tensor.New(n, w)
		copy(mat.Data, d.Rows[s])
		for i := 0; i < n; i++ {
			row := mat.Row(i)
			t.rows[s][i].Store(&row)
		}
	}
	t.compileStars(snap, workers)
	for _, r := range d.DirtyRows {
		if r >= 0 && int(r) < n {
			t.markRow(r)
		}
	}
	return t, nil
}
