// Package embed implements the lambda-tier embedding store: a
// versioned table of penultimate-layer (h^{L-1}) activations for every
// node of a behavior-network snapshot, populated by the full-graph
// sweep, invalidated incrementally by edge-delta dirty marking, and
// served through the final-layer-only scoring split of
// gnn.EmbedServing. The BRIGHT/lambda-architecture observation this
// encodes: only the last graph layer of a GNN reads other nodes' state,
// so freezing everything below it turns an audit from a multi-hop
// forward into one aggregation row plus a dense layer and the head.
//
// Consistency model: a table is a consistent (snapshot epoch, frozen
// feature matrix) pair. Edge deltas mark the §III-A-affected
// neighborhood dirty before the snapshot carrying them is published
// (mark-before-publish, see Store.Flush), and serving refuses any
// target whose star references a dirty row — a stale-neighborhood
// score is never served silently. The incremental refresh repairs
// structural staleness exactly (re-embedding dirty balls from the
// frozen features); feature staleness is bounded by the periodic full
// rebuild, which re-fetches features.
package embed

import (
	"math"
	"sync/atomic"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// Table is one immutable-universe embedding table: penultimate
// activation rows per stream for a fixed, sorted node universe, plus
// per-node aggregation stars and the dirty bitmap. Row and star values
// are updated in place by the refresh loop through per-row atomic
// pointers; the universe, features, and model never change — a new
// universe means a new Table.
type Table struct {
	version int
	model   gnn.EmbedServing
	widths  []int
	hops    int
	builtAt time.Time
	epoch   atomic.Uint64 // earliest snapshot epoch the rows are valid for

	ids   []graph.NodeID // universe, sorted ascending
	index map[graph.NodeID]int32
	x     *tensor.Matrix // frozen normalized features, ids-aligned

	rows  [][]atomic.Pointer[[]float64] // [stream][row]
	stars []atomic.Pointer[gnn.EmbedStar]

	dirty      []atomic.Uint64 // bitmap over rows
	dirtyCount atomic.Int64
}

// Version returns the model artifact version the rows were computed
// with.
func (t *Table) Version() int { return t.version }

// Model returns the model identity the table serves for.
func (t *Table) Model() gnn.EmbedServing { return t.model }

// Hops returns the model's graph-layer count L.
func (t *Table) Hops() int { return t.hops }

// Radius returns the dirty-marking BFS radius max(1, L−1): a delta at
// (u,v) perturbs the §III-A weights of every edge incident to u or v
// (degree change), hence h^1 on ball({u,v}, 1), hence h^{L-1} on
// ball({u,v}, L−1); the aggregation star of a target changes only
// within ball({u,v}, 1).
func (t *Table) Radius() int {
	if t.hops-1 > 1 {
		return t.hops - 1
	}
	return 1
}

// NumRows returns the universe size.
func (t *Table) NumRows() int { return len(t.ids) }

// BuiltAt returns when the table's rows were computed.
func (t *Table) BuiltAt() time.Time { return t.builtAt }

// Epoch returns the earliest snapshot epoch the rows are valid for.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// DirtyCount returns the number of rows currently marked dirty.
func (t *Table) DirtyCount() int { return int(t.dirtyCount.Load()) }

// Row returns the universe row of node u, or -1.
func (t *Table) Row(u graph.NodeID) int32 {
	if r, ok := t.index[u]; ok {
		return r
	}
	return -1
}

// isDirty reports row r's dirty bit.
func (t *Table) isDirty(r int32) bool {
	return t.dirty[r>>6].Load()&(1<<(uint(r)&63)) != 0
}

// markRow sets row r's dirty bit and reports whether it was newly set.
func (t *Table) markRow(r int32) bool {
	w := &t.dirty[r>>6]
	bit := uint64(1) << (uint(r) & 63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|bit) {
			t.dirtyCount.Add(1)
			return true
		}
	}
}

// clearRow clears row r's dirty bit.
func (t *Table) clearRow(r int32) {
	w := &t.dirty[r>>6]
	bit := uint64(1) << (uint(r) & 63)
	for {
		old := w.Load()
		if old&bit == 0 {
			return
		}
		if w.CompareAndSwap(old, old&^bit) {
			t.dirtyCount.Add(-1)
			return
		}
	}
}

// MarkAll marks every row dirty — the conservative boot state for a
// reloaded table whose graph may have moved on.
func (t *Table) MarkAll() {
	for r := int32(0); r < int32(len(t.ids)); r++ {
		t.markRow(r)
	}
}

// dirtyRows collects the rows currently marked dirty, ascending.
func (t *Table) dirtyRows() []int32 {
	var out []int32
	for wi := range t.dirty {
		w := t.dirty[wi].Load()
		for w != 0 {
			b := w & (-w)
			r := int32(wi*64) + int32(popcountBelow(b))
			out = append(out, r)
			w &^= b
		}
	}
	return out
}

// popcountBelow returns the bit index of the single set bit b.
func popcountBelow(b uint64) int {
	n := 0
	for b > 1 {
		b >>= 1
		n++
	}
	return n
}

// ballRows runs a universe-restricted BFS from the seed rows and
// returns the closed ball of the given radius as ascending universe
// rows. Aggregation reads only universe rows, so staleness propagates
// only through universe members — restricting the walk is exact, not an
// approximation.
func (t *Table) ballRows(snap *graph.Snapshot, seeds []int32, radius int) []int32 {
	visited := make([]bool, len(t.ids))
	frontier := make([]int32, 0, len(seeds))
	for _, r := range seeds {
		if !visited[r] {
			visited[r] = true
			frontier = append(frontier, r)
		}
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []int32
		for _, r := range frontier {
			snap.ForEachNeighbor(t.ids[r], func(v graph.NodeID) {
				vr, ok := t.index[v]
				if ok && !visited[vr] {
					visited[vr] = true
					next = append(next, vr)
				}
			})
		}
		frontier = next
	}
	out := make([]int32, 0, len(seeds))
	for r := int32(0); r < int32(len(visited)); r++ {
		if visited[r] {
			out = append(out, r)
		}
	}
	return out
}

// AgeSeconds returns seconds since the rows were built, or -1 for a nil
// table (the gauge convention on /metrics).
func (t *Table) AgeSeconds() float64 {
	if t == nil {
		return -1
	}
	return math.Max(0, time.Since(t.builtAt).Seconds())
}
