package embed

import (
	"math"
	"sort"

	"turbo/internal/gnn"
	"turbo/internal/graph"
)

// star.go builds per-target aggregation stars: the incoming §III-A
// weighted edge rows of one node, restricted to the table universe,
// with weights bitwise-equal to graph.FullSubgraph over the same node
// set. The final-layer CSR row for target u holds one entry per
// universe neighbor v in ascending-ID order with weight
// w(u,v)/√(deg_t(u)·deg_t(v)) — exactly what fillFullSubgraph emits for
// (Src=v, Dst=u), since undirected storage makes w symmetric and
// ascending neighbor ID equals ascending universe row. Merged entries
// fold duplicate (type, neighbor) pairs in type order, matching
// gnn.mergeEdges' stable sort.

// starEntry is a pre-localization edge: a universe row plus the
// normalized weight.
type starEntry struct {
	row int32
	w   float64
}

// buildStar assembles the aggregation star of universe row r against
// snap. Returns a star even when the node has no universe neighbors
// (self-loop-only aggregation still serves).
func (t *Table) buildStar(snap *graph.Snapshot, r int32) *gnn.EmbedStar {
	u := t.ids[r]
	nTypes := snap.NumEdgeTypes()
	typed := make([][]starEntry, nTypes)
	total := 0
	for et := 0; et < nTypes; et++ {
		du := snap.TypedWeightedDegree(u, graph.EdgeType(et))
		if du == 0 {
			continue
		}
		snap.ForEachTypedNeighbor(u, graph.EdgeType(et), func(v graph.NodeID, w float64) {
			vr, ok := t.index[v]
			if !ok {
				return
			}
			dv := snap.TypedWeightedDegree(v, graph.EdgeType(et))
			if dv == 0 {
				return
			}
			typed[et] = append(typed[et], starEntry{row: vr, w: w / math.Sqrt(du*dv)})
		})
		total += len(typed[et])
	}

	// Merge across types: stable sort by universe row, fold duplicates in
	// concatenation (= type) order, as mergeEdges does by (src, dst).
	all := make([]starEntry, 0, total)
	for et := 0; et < nTypes; et++ {
		all = append(all, typed[et]...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].row < all[j].row })
	merged := all[:0]
	for _, e := range all {
		if n := len(merged); n > 0 && merged[n-1].row == e.row {
			merged[n-1].w += e.w
		} else {
			merged = append(merged, e)
		}
	}

	// Localize: gathered block row 0 is the target; merged neighbors
	// follow in sorted order. A self edge (should not occur in a BN, but
	// harmless) maps to local 0.
	star := &gnn.EmbedStar{
		Gather: make([]int32, 1, len(merged)+1),
		Merged: make([]gnn.StarEdge, len(merged)),
	}
	star.Gather[0] = r
	mergedRows := make([]int32, len(merged))
	mergedLocal := make([]int32, len(merged))
	for i, e := range merged {
		var local int32
		if e.row == r {
			local = 0
		} else {
			local = int32(len(star.Gather))
			star.Gather = append(star.Gather, e.row)
		}
		mergedRows[i] = e.row
		mergedLocal[i] = local
		star.Merged[i] = gnn.StarEdge{Row: local, Weight: e.w}
	}

	star.Typed = make([][]gnn.StarEdge, nTypes)
	for et := 0; et < nTypes; et++ {
		if len(typed[et]) == 0 {
			continue
		}
		es := make([]gnn.StarEdge, len(typed[et]))
		for i, e := range typed[et] {
			k := sort.Search(len(mergedRows), func(k int) bool { return mergedRows[k] >= e.row })
			es[i] = gnn.StarEdge{Row: mergedLocal[k], Weight: e.w}
		}
		star.Typed[et] = es
	}
	return star
}
