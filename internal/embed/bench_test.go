package embed

import (
	"testing"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// benchWorld is the shared benchmark fixture: a 400-node world with the
// full HAG serving model (the paper's deployed variant), its embedding
// table installed and fully clean.
func benchWorld(b *testing.B) (*graph.Graph, *graph.Snapshot, *tensor.Matrix, []graph.NodeID, gnn.Model, *Store) {
	b.Helper()
	g, snap, x, nodes := testWorld(21, 400, 3, 8)
	m := testModels(8, 3)[3] // full HAG
	es := m.(gnn.EmbedServing)
	ids := append([]graph.NodeID(nil), nodes...)
	xc := tensor.New(x.Rows, x.Cols)
	copy(xc.Data, x.Data)
	res, err := Build(snap, ids, xc, es, 1, sweep.Options{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	s := NewStore()
	s.Install(res.Table, snap)
	return g, snap, x, nodes, m, s
}

// BenchmarkEmbedServe measures the lambda tier's serve path: one
// TryServe on a clean node — star gather, final aggregation layer, head,
// sigmoid. This is the ns/op the BENCH_embed.json speedup compares
// against the per-audit inference paths below.
func BenchmarkEmbedServe(b *testing.B) {
	_, snap, _, nodes, m, s := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := s.TryServe(snap, nodes[i%len(nodes)], m); r != Hit {
			b.Fatalf("result %v, want Hit", r)
		}
	}
}

// auditBatch mirrors the prediction server's full path for one target:
// sample the 2-hop computation subgraph from the snapshot, gather its
// feature rows, and compile a batch.
func auditBatch(snap *graph.Snapshot, x *tensor.Matrix, u graph.NodeID) *gnn.Batch {
	sg := snap.Sample(u, graph.SampleOptions{Hops: 2})
	xa := tensor.New(len(sg.Nodes), x.Cols)
	for i, id := range sg.Nodes {
		copy(xa.Row(i), x.Row(int(id)))
	}
	return gnn.NewBatch(sg, xa)
}

// BenchmarkEmbedTargetInfer is the comparator the embedding tier
// replaces: per-audit subgraph sampling + batch compile + the tape-free
// TargetInferer score, exactly what predictFull pays per request.
func BenchmarkEmbedTargetInfer(b *testing.B) {
	_, snap, x, nodes, m, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := auditBatch(snap, x, nodes[i%len(nodes)])
		gnn.Score(m, batch)
		batch.Release()
	}
}

// BenchmarkEmbedTapeScore is the same audit on the tape-backed
// reference path (no Fwd reuse, full autodiff bookkeeping).
func BenchmarkEmbedTapeScore(b *testing.B) {
	_, snap, x, nodes, m, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := auditBatch(snap, x, nodes[i%len(nodes)])
		gnn.TapeScore(m, batch)
		batch.Release()
	}
}

// BenchmarkEmbedRefresh measures the incremental refresh sweep as a
// function of the dirty fraction: each iteration marks pct% of the rows
// dirty and repairs them. The ball (rows actually re-embedded) exceeds
// the marked set by the (L−1)-hop closure, which is the point — the
// metric is the cost of keeping the table clean at a given churn rate,
// reported as refreshed rows/op.
func BenchmarkEmbedRefresh(b *testing.B) {
	for _, pct := range []int{1, 10, 50} {
		b.Run(sprintfPct(pct), func(b *testing.B) {
			_, snap, _, nodes, _, s := benchWorld(b)
			tab := s.table.Load()
			step := 100 / pct
			var refreshed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for r := 0; r < len(nodes); r += step {
					tab.markRow(int32(r))
				}
				b.StartTimer()
				st := s.Refresh(snap, sweep.Options{Workers: 4})
				refreshed += int64(st.Ball)
			}
			if b.N > 0 {
				b.ReportMetric(float64(refreshed)/float64(b.N), "rows/op")
			}
		})
	}
}

func sprintfPct(pct int) string {
	switch pct {
	case 1:
		return "dirty-1pct"
	case 10:
		return "dirty-10pct"
	case 50:
		return "dirty-50pct"
	}
	return "dirty"
}
