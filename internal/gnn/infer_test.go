package gnn

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"turbo/internal/autodiff"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// randomBatch builds a randomized subgraph batch: n nodes, `types` edge
// types with ~3n directed edges each (duplicates included, so the
// (src,dst) merge paths are exercised), random normal features.
func randomBatch(tb testing.TB, seed uint64, n, types, dim int) *Batch {
	tb.Helper()
	rng := tensor.NewRNG(seed)
	sg := &graph.Subgraph{TypedEdges: make([][]graph.LocalEdge, types)}
	for i := 0; i < n; i++ {
		sg.Nodes = append(sg.Nodes, graph.NodeID(i))
		sg.Hops = append(sg.Hops, 0)
	}
	for t := 0; t < types; t++ {
		for e := 0; e < 3*n; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			w := rng.Float64() + 0.1
			sg.TypedEdges[t] = append(sg.TypedEdges[t],
				graph.LocalEdge{Src: src, Dst: dst, Weight: w},
				graph.LocalEdge{Src: dst, Dst: src, Weight: w})
		}
	}
	x := tensor.New(n, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return NewBatch(sg, x)
}

func inferModels(dim int) []Model {
	cfg := Config{InDim: dim, Hidden: []int{8, 6}, MLPHidden: 4}
	return []Model{NewGCN(cfg), NewGraphSAGE(cfg), NewGAT(cfg)}
}

// TestInferMatchesTape pins the tape-free scores to the tape scores on
// randomized batches for every baseline model. The two paths share
// their kernels, so the tolerance is far below 1e-12 in practice.
func TestInferMatchesTape(t *testing.T) {
	for _, m := range inferModels(5) {
		if !CanInfer(m) {
			t.Fatalf("%s does not implement Inferer", m.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			b := randomBatch(t, seed, 20, 2, 5)
			want := TapeScores(m, b)
			got := Scores(m, b)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("%s seed %d node %d: infer %v vs tape %v",
						m.Name(), seed, i, got[i], want[i])
				}
			}
			if s := Score(m, b); math.Abs(s-want[0]) > 1e-12 {
				t.Fatalf("%s Score %v vs tape %v", m.Name(), s, want[0])
			}
		}
	}
}

// TestInferMatchesTrainingModeNoDropout cross-checks Infer against the
// training-mode forward with dropout disabled (rate 0, non-nil RNG):
// the only difference from evaluation mode must be the dropout ops, so
// with rate 0 the logits agree exactly.
// TestInferTargetMatchesTape pins the single-target fast path to the
// tape scores at every node index, for the models that implement it.
func TestInferTargetMatchesTape(t *testing.T) {
	for _, m := range inferModels(5) {
		ti, ok := m.(TargetInferer)
		if !ok {
			continue
		}
		b := randomBatch(t, 9, 18, 2, 5)
		want := TapeScores(m, b)
		for node := 0; node < b.NumNodes; node++ {
			f := AcquireFwd()
			got := tensor.SigmoidScalar(ti.InferTarget(f, b, node))
			ReleaseFwd(f)
			if math.Abs(got-want[node]) > 1e-12 {
				t.Fatalf("%s node %d: target-infer %v vs tape %v", m.Name(), node, got, want[node])
			}
		}
	}
}

func TestInferMatchesTrainingModeNoDropout(t *testing.T) {
	for _, m := range inferModels(5) {
		b := randomBatch(t, 11, 16, 2, 5)
		tape := autodiff.NewTape()
		logits := m.Forward(tape, b, tensor.NewRNG(3))

		f := AcquireFwd()
		inferred := m.(Inferer).Infer(f, b)
		for i := 0; i < b.NumNodes; i++ {
			if math.Abs(inferred.Data[i]-logits.Value.Data[i]) > 1e-12 {
				t.Fatalf("%s node %d: infer logit %v vs training-mode %v",
					m.Name(), i, inferred.Data[i], logits.Value.Data[i])
			}
		}
		ReleaseFwd(f)
	}
}

// TestConcurrentInferIsConsistent scores one shared batch from many
// goroutines (pool reuse must never alias scratch across them; run
// under -race).
func TestConcurrentInferIsConsistent(t *testing.T) {
	for _, m := range inferModels(5) {
		b := randomBatch(t, 21, 24, 2, 5)
		want := TapeScores(m, b)
		var wg sync.WaitGroup
		errc := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 20; rep++ {
					got := Scores(m, b)
					for i := range want {
						if got[i] != want[i] {
							select {
							case errc <- errMismatch(m.Name(), i, got[i], want[i]):
							default:
							}
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func errMismatch(name string, node int, got, want float64) error {
	return fmt.Errorf("%s: concurrent Infer diverged at node %d: %v vs %v", name, node, got, want)
}

// TestBatchReleaseAndRecompile verifies pooled CSR buffers survive the
// release/reacquire cycle: scoring a fresh batch over the same subgraph
// after Release reproduces the original score exactly.
func TestBatchReleaseAndRecompile(t *testing.T) {
	m := NewGraphSAGE(Config{InDim: 5, Hidden: []int{8}, MLPHidden: 4})
	b := randomBatch(t, 31, 20, 2, 5)
	want := Score(m, b)
	sgCopy := &graph.Subgraph{Nodes: b.nodesCopy(), TypedEdges: b.TypedEdges}
	x := b.X
	for rep := 0; rep < 10; rep++ {
		b.Release()
		b = NewBatch(sgCopy, x)
		if got := Score(m, b); got != want {
			t.Fatalf("rep %d: score changed after Release/recompile: %v vs %v", rep, got, want)
		}
	}
}

// nodesCopy rebuilds a Nodes slice matching the batch size (test helper;
// subgraph identity beyond TypedEdges does not affect compilation).
func (b *Batch) nodesCopy() []graph.NodeID {
	nodes := make([]graph.NodeID, b.NumNodes)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return nodes
}

// TestMergeEdgesDeterministic is the regression test for the map-based
// merge: output must be identical across calls, sorted by (src,dst),
// and sum parallel edge weights exactly like an accumulator map.
func TestMergeEdgesDeterministic(t *testing.T) {
	rng := tensor.NewRNG(99)
	typed := make([][]graph.LocalEdge, 3)
	for ty := range typed {
		for e := 0; e < 200; e++ {
			typed[ty] = append(typed[ty], graph.LocalEdge{
				Src: rng.Intn(12), Dst: rng.Intn(12), Weight: rng.Float64(),
			})
		}
	}

	first := mergeEdges(typed)
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		if first[i].Src != first[j].Src {
			return first[i].Src < first[j].Src
		}
		return first[i].Dst < first[j].Dst
	}) {
		t.Fatal("mergeEdges output not sorted by (src,dst)")
	}
	for rep := 0; rep < 10; rep++ {
		again := mergeEdges(typed)
		if len(again) != len(first) {
			t.Fatalf("rep %d: length %d vs %d", rep, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("rep %d: edge %d differs: %+v vs %+v", rep, i, again[i], first[i])
			}
		}
	}

	// Reference accumulator (the old map semantics: weights summed in
	// input encounter order).
	type key struct{ src, dst int }
	ref := make(map[key]float64)
	for _, es := range typed {
		for _, e := range es {
			ref[key{e.Src, e.Dst}] += e.Weight
		}
	}
	if len(ref) != len(first) {
		t.Fatalf("merged %d pairs, reference has %d", len(first), len(ref))
	}
	for _, e := range first {
		if w := ref[key{e.Src, e.Dst}]; w != e.Weight {
			t.Fatalf("pair (%d,%d): weight %v, reference %v", e.Src, e.Dst, e.Weight, w)
		}
	}
}

// TestLazyCSRBuild verifies batch compilation is lazy: a fresh batch
// holds no compiled structures, and asking for one normalization does
// not build the others.
func TestLazyCSRBuild(t *testing.T) {
	b := randomBatch(t, 41, 10, 2, 3)
	if b.mergedBuilt || b.mergedRW != nil || b.mergedMean != nil || b.mergedWeight != nil || b.typedMean != nil || b.gat != nil {
		t.Fatal("NewBatch compiled adjacency eagerly")
	}
	b.TypedMeanCSR(0)
	if b.mergedBuilt {
		t.Fatal("TypedMeanCSR built the merged edge list it does not need")
	}
	b.MergedRWCSR()
	if !b.mergedBuilt || b.mergedRW == nil {
		t.Fatal("MergedRWCSR did not compile")
	}
}

// --- benchmarks --------------------------------------------------------------

// BenchmarkScoreTapeVsInfer compares the tape-backed and tape-free
// scoring paths on a representative sampled batch per model.
func BenchmarkScoreTapeVsInfer(b *testing.B) {
	cfg := Config{InDim: 16, Hidden: []int{32, 16}, MLPHidden: 8}
	for _, m := range []Model{NewGCN(cfg), NewGraphSAGE(cfg), NewGAT(cfg)} {
		batch := randomBatch(b, 1, 64, 2, 16)
		b.Run(m.Name()+"/tape", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TapeScore(m, batch)
			}
		})
		b.Run(m.Name()+"/infer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Score(m, batch)
			}
		})
	}
}

// BenchmarkBatchCompile measures per-audit batch compilation (the
// NewBatch + CSR build + release cycle of the serving path).
func BenchmarkBatchCompile(b *testing.B) {
	proto := randomBatch(b, 2, 64, 2, 16)
	sg := &graph.Subgraph{Nodes: proto.nodesCopy(), TypedEdges: proto.TypedEdges}
	x := proto.X
	b.Run("sage-mean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch := NewBatch(sg, x)
			batch.MergedMeanCSR()
			batch.Release()
		}
	})
	b.Run("gat-struct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch := NewBatch(sg, x)
			batch.gatStruct()
			batch.Release()
		}
	})
	b.Run("typed-mean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch := NewBatch(sg, x)
			batch.TypedMeanCSR(0)
			batch.TypedMeanCSR(1)
			batch.Release()
		}
	})
}
