package gnn

import (
	"math"

	"turbo/internal/tensor"
)

// embed.go is the model half of the lambda-tier embedding split: batch
// sweeps precompute every node's penultimate-layer activations (the
// input of the last graph layer), and serving recomputes only the last
// layer plus the head for one target from those cached rows. Only the
// last layer reads other rows of its input — exactly the observation
// behind InferTarget — so freezing h^{L-1} turns a full multi-hop
// forward into one aggregation row, one dense layer, and the MLP head.
//
// Equivalence contract: InferFinal replicates the per-row arithmetic of
// the corresponding full forward — the same weight assembly and
// normalization order as the Batch CSR compilers, the same kernel
// sequence as InferTarget/BuildSweep on the target row — over a compact
// gathered block of embedding rows. Scores agree with the full-graph
// forward to ≤1e-9 (the gathered block's dense matmuls may tile
// differently than the full-height ones, so equality is tolerance-
// bounded rather than bitwise).

// StarEdge is one in-edge of a serving target in local gathered
// coordinates: Row indexes the gathered embedding block (row 0 is the
// target itself; see EmbedStar), Weight is the §III-A-normalized edge
// weight exactly as FullSubgraph would emit it. Aggregation-row
// normalization (the normSum of buildCSR) happens inside StarAggRow.
type StarEdge struct {
	Row    int32
	Weight float64
}

// EmbedStar is the one-hop aggregation neighborhood of one target node,
// precompiled against an embedding table's universe. Gather lists the
// universe rows whose embeddings the final layer reads — Gather[0] is
// the target, Gather[i+1] the source of Merged[i] — and the edge lists
// reference those positions, so serving gathers one dense block and
// never remaps indices.
type EmbedStar struct {
	Gather []int32
	// Typed holds, per edge type, the target's in-edges sorted ascending
	// by source node ID with normalized weights — one row of the
	// TypedMeanCSR aggregation before row normalization.
	Typed [][]StarEdge
	// Merged is the type-merged edge list: the same sources with
	// duplicate weights summed in type order, matching mergeEdges'
	// stable sort.
	Merged []StarEdge
}

// EmbedServing is a model that supports the precomputed-embedding
// serving split: it can emit penultimate activations during a full
// sweep and score one target from cached rows.
type EmbedServing interface {
	Inferer
	// EmbedSpec returns the width of each penultimate activation stream
	// (one stream for the homogeneous models, one per edge type for
	// CFO-enabled HAG) and the number of graph layers L.
	EmbedSpec() (widths []int, hops int)
	// BuildEmbedSweep compiles the model's full-graph sweep with capture:
	// the program additionally copies each stream's penultimate
	// activations into capture[s] (NumNodes × widths[s], caller-owned).
	BuildEmbedSweep(b *Batch, capture []*tensor.Matrix) *SweepProgram
	// InferFinal computes the target's fraud logit from gathered
	// penultimate rows: hs[s] row i holds the embedding of star.Gather[i]
	// in stream s.
	InferFinal(f *Fwd, star *EmbedStar, hs []*tensor.Matrix) float64
}

// CanEmbedServe reports whether m supports the embedding serving split.
func CanEmbedServe(m Model) bool {
	_, ok := m.(EmbedServing)
	return ok
}

// CopyRows copies rows [lo, hi) of src into dst (same Cols). Sweep
// steps use it to capture their input into a caller-owned buffer: the
// barrier before the step guarantees the rows are final, and writing
// only the step's own row range keeps the step row-partitionable.
func CopyRows(dst, src *tensor.Matrix, lo, hi int) {
	copy(dst.Data[lo*dst.Cols:hi*dst.Cols], src.Data[lo*src.Cols:hi*src.Cols])
}

// StarAggRow computes the target's row of the aggregation matrix that
// buildCSR would compile from the star's edges, applied to the gathered
// embedding block h: raw weights in edge order (then the self-loop,
// when the normalization includes one), the same normSum row scaling,
// and the same accumulation order as CSR.MatMulRowInto. unweighted
// replaces edge weights with 1, mirroring the Eq. 1–2 aggregations.
func StarAggRow(f *Fwd, h *tensor.Matrix, edges []StarEdge, selfLoop, unweighted bool) *tensor.Matrix {
	out := f.Get(1, h.Cols)
	var s float64
	for _, e := range edges {
		if unweighted {
			s += 1
		} else {
			s += e.Weight
		}
	}
	if selfLoop {
		s += 1
	}
	if s == 0 {
		return out // row stays zero, matching buildCSR's skip
	}
	inv := 1 / s
	for _, e := range edges {
		w := inv
		if !unweighted {
			w = e.Weight * inv
		}
		src := h.Row(int(e.Row))
		for j, v := range src {
			out.Data[j] += w * v
		}
	}
	if selfLoop {
		src := h.Row(0)
		for j, v := range src {
			out.Data[j] += inv * v
		}
	}
	return out
}

// EmbedSpec implements EmbedServing for GCN: the penultimate width is
// the last layer's input dimension.
func (m *GCN) EmbedSpec() (widths []int, hops int) {
	return []int{m.layers[len(m.layers)-1].W.Value.Rows}, len(m.layers)
}

// BuildEmbedSweep implements EmbedServing for GCN.
func (m *GCN) BuildEmbedSweep(b *Batch, capture []*tensor.Matrix) *SweepProgram {
	return m.buildSweep(b, capture[0])
}

// InferFinal implements EmbedServing for GCN: the Eq. 1 random-walk
// aggregation row (unweighted, with self-loop) over cached embeddings,
// then the last linear layer and the head — the tail of InferTarget.
func (m *GCN) InferFinal(f *Fwd, star *EmbedStar, hs []*tensor.Matrix) float64 {
	l := m.layers[len(m.layers)-1]
	row := tensor.ReLUInPlace(f.Linear(l, StarAggRow(f, hs[0], star.Merged, true, true)))
	return f.MLP(m.head, row).Data[0]
}

// EmbedSpec implements EmbedServing for GraphSAGE. The layer weight is
// 2·in × out (concat form), so the penultimate width is Rows/2.
func (m *GraphSAGE) EmbedSpec() (widths []int, hops int) {
	return []int{m.layers[len(m.layers)-1].W.Value.Rows / 2}, len(m.layers)
}

// BuildEmbedSweep implements EmbedServing for GraphSAGE.
func (m *GraphSAGE) BuildEmbedSweep(b *Batch, capture []*tensor.Matrix) *SweepProgram {
	return m.buildSweep(b, capture[0])
}

// InferFinal implements EmbedServing for GraphSAGE: neighbor mean (no
// self-loop), split matmul against the target's own cached row, bias,
// ReLU, head — the tail of InferTarget.
func (m *GraphSAGE) InferFinal(f *Fwd, star *EmbedStar, hs []*tensor.Matrix) float64 {
	l := m.layers[len(m.layers)-1]
	hn := StarAggRow(f, hs[0], star.Merged, false, true)
	out := f.Get(1, l.W.Value.Cols)
	tensor.MatMulSplitInto(out, hs[0].RowView(0), hn, l.W.Value)
	row := tensor.ReLUInPlace(out.AddRowVectorInPlace(l.B.Value))
	return f.MLP(m.head, row).Data[0]
}

// EmbedSpec implements EmbedServing for GAT.
func (m *GAT) EmbedSpec() (widths []int, hops int) {
	return []int{m.layers[len(m.layers)-1].heads[0].w.Value.Rows}, len(m.layers)
}

// BuildEmbedSweep implements EmbedServing for GAT.
func (m *GAT) BuildEmbedSweep(b *Batch, capture []*tensor.Matrix) *SweepProgram {
	return m.buildSweep(b, capture[0])
}

// InferFinal implements EmbedServing for GAT: per head, project the
// gathered block, score the target's incident edges (merged order, then
// the self-loop — the segment order of buildGATStructure), LeakyReLU,
// max-subtracted segment softmax, and α-weighted aggregation into the
// head's column block; then ReLU over the concatenated row and the head
// MLP. The per-edge arithmetic mirrors the attn step of BuildSweep.
func (m *GAT) InferFinal(f *Fwd, star *EmbedStar, hs []*tensor.Matrix) float64 {
	h := hs[0]
	layer := m.layers[len(m.layers)-1]
	heads := layer.heads
	headCols := heads[0].w.Value.Cols
	nE := len(star.Merged) + 1 // incident edges plus the target's self-loop
	out := f.Get(1, headCols*len(heads))
	score := f.Get(nE, 1)
	alpha := f.Get(nE, 1)
	for k, hd := range heads {
		wh := f.MatMul(h, hd.w.Value)
		sSrc := f.MatMul(wh, hd.attSrc.Value)
		sDst := f.MatMul(wh, hd.attDst.Value)
		d := sDst.Data[0]
		mx := math.Inf(-1)
		for i, e := range star.Merged {
			s := sSrc.Data[e.Row] + d
			if s <= 0 {
				s *= 0.2
			}
			score.Data[i] = s
			if s > mx {
				mx = s
			}
		}
		s := sSrc.Data[0] + d // self-loop scores last, as in the sweep
		if s <= 0 {
			s *= 0.2
		}
		score.Data[nE-1] = s
		if s > mx {
			mx = s
		}
		var sum float64
		for i := 0; i < nE; i++ {
			x := math.Exp(score.Data[i] - mx)
			alpha.Data[i] = x
			sum += x
		}
		if sum != 0 {
			for i := 0; i < nE; i++ {
				alpha.Data[i] /= sum
			}
		}
		drow := out.Data[k*headCols : (k+1)*headCols]
		for i, e := range star.Merged {
			w := alpha.Data[i]
			src := wh.Row(int(e.Row))
			for j, v := range src {
				drow[j] += w * v
			}
		}
		w := alpha.Data[nE-1]
		src := wh.Row(0)
		for j, v := range src {
			drow[j] += w * v
		}
	}
	row := tensor.ReLUInPlace(out)
	return f.MLP(m.head, row).Data[0]
}
