package gnn

import (
	"math"
	"testing"
	"time"

	"turbo/internal/graph"
	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// ringWorld builds a toy graph: nodes 0-3 form a type-0 clique (the
// fraud ring), nodes 4-9 are a sparse type-1 chain of normals, and node
// 3 bridges the groups. Features carry a weak signal; labels mark 0-3.
func ringWorld(t *testing.T) (*Batch, []int, []float64) {
	t.Helper()
	g := graph.New(2)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := g.AddEdgeWeight(0, graph.NodeID(i), graph.NodeID(j), 1, never); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 4; i < 9; i++ {
		_ = g.AddEdgeWeight(1, graph.NodeID(i), graph.NodeID(i+1), 0.2, never)
	}
	_ = g.AddEdgeWeight(1, 3, 4, 0.2, never)

	sg := fullSubgraph(g, 10)
	rng := tensor.NewRNG(7)
	x := tensor.New(10, 4)
	for i := 0; i < 10; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if i < 4 {
			x.Set(i, 0, x.At(i, 0)+0.5) // weak feature signal
		}
	}
	labels := make([]float64, 10)
	for i := 0; i < 4; i++ {
		labels[i] = 1
	}
	train := []int{0, 1, 2, 4, 5, 6, 7}
	return NewBatch(sg, x), train, labels
}

// fullSubgraph materializes every node and raw-weight edge of g.
func fullSubgraph(g *graph.Graph, n int) *graph.Subgraph {
	sg := &graph.Subgraph{
		Index:      make(map[graph.NodeID]int),
		TypedEdges: make([][]graph.LocalEdge, g.NumEdgeTypes()),
	}
	for i := 0; i < n; i++ {
		sg.Nodes = append(sg.Nodes, graph.NodeID(i))
		sg.Index[graph.NodeID(i)] = i
		sg.Hops = append(sg.Hops, 0)
	}
	for t := 0; t < g.NumEdgeTypes(); t++ {
		for i := 0; i < n; i++ {
			for _, nb := range g.NeighborsByType(graph.NodeID(i), graph.EdgeType(t)) {
				sg.TypedEdges[t] = append(sg.TypedEdges[t],
					graph.LocalEdge{Src: i, Dst: sg.Index[nb.Node], Weight: nb.Weight})
			}
		}
	}
	return sg
}

func TestBatchValidatesShape(t *testing.T) {
	g := graph.New(1)
	g.AddNode(0)
	sg := fullSubgraph(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched feature rows")
		}
	}()
	NewBatch(sg, tensor.New(2, 3))
}

func TestMergedEdgesSumAcrossTypes(t *testing.T) {
	g := graph.New(2)
	_ = g.AddEdgeWeight(0, 0, 1, 1, never)
	_ = g.AddEdgeWeight(1, 0, 1, 2, never)
	b := NewBatch(fullSubgraph(g, 2), tensor.New(2, 1))
	merged := b.MergedEdges()
	if len(merged) != 2 { // both directions
		t.Fatalf("merged edges %d", len(merged))
	}
	for _, e := range merged {
		if e.Weight != 3 {
			t.Fatalf("merged weight %v want 3", e.Weight)
		}
	}
}

func TestMergedRWCSRRowsSumToOne(t *testing.T) {
	b, _, _ := ringWorld(t)
	csr := b.MergedRWCSR()
	for i := 0; i < csr.NRows; i++ {
		var sum float64
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			sum += csr.Weights[p]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestMergedRWCSRIsUnweighted(t *testing.T) {
	g := graph.New(1)
	_ = g.AddEdgeWeight(0, 0, 1, 100, never) // heavy edge
	_ = g.AddEdgeWeight(0, 0, 2, 1, never)   // light edge
	b := NewBatch(fullSubgraph(g, 3), tensor.New(3, 1))
	csr := b.MergedRWCSR()
	// Row 0: neighbors {1, 2} + self, all weight 1/3 despite raw weights.
	for p := csr.RowPtr[0]; p < csr.RowPtr[1]; p++ {
		if math.Abs(csr.Weights[p]-1.0/3.0) > 1e-12 {
			t.Fatalf("GCN aggregation must ignore edge weights: %v", csr.Weights[p])
		}
	}
}

func TestTypedMeanCSRKeepsWeights(t *testing.T) {
	g := graph.New(1)
	_ = g.AddEdgeWeight(0, 0, 1, 3, never)
	_ = g.AddEdgeWeight(0, 0, 2, 1, never)
	b := NewBatch(fullSubgraph(g, 3), tensor.New(3, 1))
	csr := b.TypedMeanCSR(0)
	weights := map[int]float64{}
	for p := csr.RowPtr[0]; p < csr.RowPtr[1]; p++ {
		weights[csr.ColIdx[p]] = csr.Weights[p]
	}
	// Weighted average: 3/(3+1) and 1/(3+1).
	if math.Abs(weights[1]-0.75) > 1e-12 || math.Abs(weights[2]-0.25) > 1e-12 {
		t.Fatalf("SAO aggregation must keep normalized edge weights: %v", weights)
	}
}

func TestIsolatedNodeAggregationIsZeroSafe(t *testing.T) {
	g := graph.New(1)
	g.AddNode(0)
	g.AddNode(1)
	_ = g.AddEdgeWeight(0, 0, 1, 1, never)
	g.AddNode(2) // isolated
	b := NewBatch(fullSubgraph(g, 3), tensor.FromRows([][]float64{{1}, {2}, {3}}))
	out := b.MergedMeanCSR().MatMul(b.X)
	if out.At(2, 0) != 0 {
		t.Fatalf("isolated node aggregate should be 0: %v", out.At(2, 0))
	}
}

func runModelTest(t *testing.T, m Model) {
	t.Helper()
	b, train, labels := ringWorld(t)
	stats := Train(m, b, train, labels, TrainConfig{Epochs: 150, LR: 0.02, BalanceClasses: true})
	if math.IsNaN(stats.FinalLoss) {
		t.Fatal("training diverged to NaN")
	}
	scores := Scores(m, b)
	if len(scores) != 10 {
		t.Fatalf("scores len %d", len(scores))
	}
	// Held-out nodes: 3 (fraud, in the clique) vs 8, 9 (normal chain).
	if scores[3] <= scores[8] || scores[3] <= scores[9] {
		t.Fatalf("%s failed to generalize: fraud %v vs normal %v, %v",
			m.Name(), scores[3], scores[8], scores[9])
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score out of [0,1]: %v", s)
		}
	}
}

func TestGCNLearnsRing(t *testing.T) { runModelTest(t, NewGCN(Config{InDim: 4, Hidden: []int{8, 8}})) }
func TestGraphSAGELearnsRing(t *testing.T) {
	runModelTest(t, NewGraphSAGE(Config{InDim: 4, Hidden: []int{8, 8}}))
}
func TestGATLearnsRing(t *testing.T) { runModelTest(t, NewGAT(Config{InDim: 4, Hidden: []int{8, 8}})) }

func TestModelNames(t *testing.T) {
	if NewGCN(Config{InDim: 1}).Name() != "GCN" ||
		NewGraphSAGE(Config{InDim: 1}).Name() != "G-SAGE" ||
		NewGAT(Config{InDim: 1}).Name() != "GAT" {
		t.Fatal("model names wrong")
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	b, train, labels := ringWorld(t)
	run := func() []float64 {
		m := NewGraphSAGE(Config{InDim: 4, Hidden: []int{8, 8}, Seed: 5})
		Train(m, b, train, labels, TrainConfig{Epochs: 30, Seed: 9})
		return Scores(m, b)
	}
	s1, s2 := run(), run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("training not deterministic at node %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestTrainProgressCallback(t *testing.T) {
	b, train, labels := ringWorld(t)
	m := NewGCN(Config{InDim: 4, Hidden: []int{4}})
	var epochs int
	var first, last float64
	Train(m, b, train, labels, TrainConfig{Epochs: 40, Progress: func(e int, loss float64) {
		if epochs == 0 {
			first = loss
		}
		last = loss
		epochs++
	}})
	if epochs != 40 {
		t.Fatalf("progress called %d times", epochs)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestScoreTargetsNodeZero(t *testing.T) {
	b, train, labels := ringWorld(t)
	m := NewGraphSAGE(Config{InDim: 4, Hidden: []int{8}})
	Train(m, b, train, labels, TrainConfig{Epochs: 50, BalanceClasses: true})
	if got, want := Score(m, b), Scores(m, b)[0]; got != want {
		t.Fatalf("Score %v != Scores[0] %v", got, want)
	}
}

func TestTrainStatsElapsed(t *testing.T) {
	b, train, labels := ringWorld(t)
	m := NewGCN(Config{InDim: 4, Hidden: []int{4}})
	stats := Train(m, b, train, labels, TrainConfig{Epochs: 5})
	if stats.Elapsed <= 0 || stats.Epochs != 5 {
		t.Fatalf("stats %+v", stats)
	}
}
