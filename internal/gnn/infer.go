package gnn

import (
	"math"
	"sync"

	"turbo/internal/autodiff"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// This file is the tape-free inference engine. Training needs the
// autodiff tape — gradient buffers, backward closures, one Node per op —
// but serving only needs logits, and on the audit hot path the tape is
// pure overhead. Fwd provides the same kernels as the tape ops with
// value-only semantics: every intermediate comes from the shape-keyed
// tensor pool and is returned wholesale by ReleaseFwd, so a warmed-up
// audit allocates almost nothing.
//
// Equivalence contract: each Fwd kernel runs the *same* arithmetic as
// its tape counterpart — the same MatMul kernel on a zeroed destination,
// the same parallel row partition (work estimates are identical), the
// same elementwise formulas, the same accumulation order. Scores from
// Infer therefore match the tape forward bitwise; the infer tests pin
// this to ≤1e-12.

// Inferer is a Model that additionally supports the tape-free forward
// path. The returned logits matrix is Fwd scratch: read it before
// releasing the Fwd, and do not retain it.
type Inferer interface {
	Infer(f *Fwd, b *Batch) *tensor.Matrix
}

// CanInfer reports whether a model routes through the tape-free path.
func CanInfer(m Model) bool {
	_, ok := m.(Inferer)
	return ok
}

// TargetInferer is an Inferer that can additionally compute a single
// node's logit without materializing every node's. Only the last
// message-passing layer reads other rows of its input, so the final
// layer and the head collapse to one-row work — the row's arithmetic is
// identical to the full forward, and single-target audits are what the
// serving path does.
type TargetInferer interface {
	Inferer
	InferTarget(f *Fwd, b *Batch, node int) float64
}

// Fwd is a tape-free forward context. It keeps its scratch matrices
// warm across Acquire/Release cycles: a model requests the same shape
// sequence on every run, so a cursor into the retained list satisfies
// warm Gets with two integer compares and a memclr — no pool hashing.
// A Fwd is single-goroutine; concurrent inference uses one Fwd each.
type Fwd struct {
	mats []*tensor.Matrix
	used int
}

// maxFwdMats caps how many warm matrices a pooled Fwd retains.
const maxFwdMats = 256

var fwdPool = sync.Pool{New: func() any { return new(Fwd) }}

// AcquireFwd returns a forward context from the pool. Pair with
// ReleaseFwd.
func AcquireFwd() *Fwd { return fwdPool.Get().(*Fwd) }

// ReleaseFwd recycles the context with its scratch kept warm. All
// matrices obtained from f — including Infer results — are invalid
// afterwards.
func ReleaseFwd(f *Fwd) {
	if len(f.mats) > maxFwdMats {
		for i := maxFwdMats; i < len(f.mats); i++ {
			tensor.PutMatrix(f.mats[i])
			f.mats[i] = nil
		}
		f.mats = f.mats[:maxFwdMats]
	}
	f.used = 0
	fwdPool.Put(f)
}

// Get returns a zeroed rows×cols scratch matrix owned by f.
func (f *Fwd) Get(rows, cols int) *tensor.Matrix {
	if f.used < len(f.mats) {
		m := f.mats[f.used]
		if m.Rows == rows && m.Cols == cols {
			f.used++
			clear(m.Data)
			return m
		}
		// Shape drift (a different model reused this Fwd): swap the slot
		// through the global pool.
		tensor.PutMatrix(m)
		m = tensor.GetMatrix(rows, cols)
		f.mats[f.used] = m
		f.used++
		return m
	}
	m := tensor.GetMatrix(rows, cols)
	f.mats = append(f.mats, m)
	f.used++
	return m
}

// MatMul computes a × b into scratch (same kernel as the tape MatMul).
func (f *Fwd) MatMul(a, b *tensor.Matrix) *tensor.Matrix {
	out := f.Get(a.Rows, b.Cols)
	tensor.MatMulInto(out, a, b)
	return out
}

// Aggregate computes A × h into scratch (the tape Aggregate kernel).
func (f *Fwd) Aggregate(a *autodiff.CSR, h *tensor.Matrix) *tensor.Matrix {
	out := f.Get(a.NRows, h.Cols)
	a.MatMulInto(out, h)
	return out
}

// AggregateRow computes row i of A × h into 1×cols scratch.
func (f *Fwd) AggregateRow(a *autodiff.CSR, h *tensor.Matrix, i int) *tensor.Matrix {
	out := f.Get(1, h.Cols)
	a.MatMulRowInto(out, h, i)
	return out
}

// Linear applies y = xW + b into scratch, mirroring nn.Linear.Forward.
func (f *Fwd) Linear(l *nn.Linear, x *tensor.Matrix) *tensor.Matrix {
	return f.MatMul(x, l.W.Value).AddRowVectorInPlace(l.B.Value)
}

// AggregateLinear computes l(A × h) with the fused aggregate+transform
// kernel: the aggregation is materialized only panel-by-panel inside
// the CSR kernel instead of as a full n×d scratch matrix. Bitwise equal
// to f.Linear(l, f.Aggregate(a, h)).
func (f *Fwd) AggregateLinear(l *nn.Linear, a *autodiff.CSR, h *tensor.Matrix) *tensor.Matrix {
	out := f.Get(a.NRows, l.W.Value.Cols)
	a.AggTransformInto(out, h, l.W.Value)
	return out.AddRowVectorInPlace(l.B.Value)
}

// MLP runs an MLP forward into scratch, mirroring nn.MLP.Forward.
func (f *Fwd) MLP(m *nn.MLP, x *tensor.Matrix) *tensor.Matrix {
	h := x
	for i, l := range m.Layers {
		h = f.Linear(l, h)
		if i+1 < len(m.Layers) {
			h = m.Hidden.ApplyInPlace(h)
		}
	}
	return h
}

// ConcatCols writes [a ; b] side by side into scratch.
func (f *Fwd) ConcatCols(a, b *tensor.Matrix) *tensor.Matrix {
	out := f.Get(a.Rows, a.Cols+b.Cols)
	tensor.ConcatColsInto(out, a, b)
	return out
}

// SelectRows gathers rows idx of m into scratch.
func (f *Fwd) SelectRows(m *tensor.Matrix, idx []int) *tensor.Matrix {
	out := f.Get(len(idx), m.Cols)
	tensor.SelectRowsInto(out, m, idx)
	return out
}

// SegmentSoftmax computes the grouped softmax of an E×1 score vector
// into scratch, with the exact algorithm of the tape op: rows not
// covered by any segment stay zero, and each group divides by its sum.
func (f *Fwd) SegmentSoftmax(a *tensor.Matrix, segments [][]int) *tensor.Matrix {
	if a.Cols != 1 {
		panic("gnn: SegmentSoftmax wants an E×1 score vector")
	}
	v := f.Get(a.Rows, 1)
	for _, seg := range segments {
		mx := math.Inf(-1)
		for _, i := range seg {
			if x := a.Data[i]; x > mx {
				mx = x
			}
		}
		var sum float64
		for _, i := range seg {
			e := math.Exp(a.Data[i] - mx)
			v.Data[i] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		for _, i := range seg {
			v.Data[i] /= sum
		}
	}
	return v
}

// --- model Infer implementations -------------------------------------------

// Infer implements Inferer: the evaluation-mode GCN forward without a
// tape. Dropout is identity in evaluation mode and is omitted.
func (m *GCN) Infer(f *Fwd, b *Batch) *tensor.Matrix {
	adj := b.MergedRWCSR()
	h := b.X
	for _, l := range m.layers {
		h = tensor.ReLUInPlace(f.AggregateLinear(l, adj, h))
	}
	return f.MLP(m.head, h)
}

// InferTarget implements TargetInferer: all but the last layer run in
// full (their outputs feed every node's aggregation), then the last
// layer and the head run on the target row alone.
func (m *GCN) InferTarget(f *Fwd, b *Batch, node int) float64 {
	adj := b.MergedRWCSR()
	h := b.X
	last := len(m.layers) - 1
	for _, l := range m.layers[:last] {
		h = tensor.ReLUInPlace(f.AggregateLinear(l, adj, h))
	}
	row := tensor.ReLUInPlace(f.Linear(m.layers[last], f.AggregateRow(adj, h, node)))
	return f.MLP(m.head, row).Data[0]
}

// Infer implements Inferer for GraphSAGE. The concat-linear of each
// layer runs as a split matmul — W's top rows against h, bottom rows
// against the aggregated neighbors — which is bitwise identical to the
// tape's MatMul(ConcatCols(h, hn), W) without materializing the n×2d
// concatenation.
func (m *GraphSAGE) Infer(f *Fwd, b *Batch) *tensor.Matrix {
	adj := b.MergedMeanCSR()
	h := b.X
	for _, l := range m.layers {
		out := f.Get(h.Rows, l.W.Value.Cols)
		adj.AggTransformSplitInto(out, h, l.W.Value)
		h = tensor.ReLUInPlace(out.AddRowVectorInPlace(l.B.Value))
	}
	return f.MLP(m.head, h)
}

// hopDist marks the target's in-hop neighborhood on adj: the returned
// 1×n scratch holds hops(i)+1 for every node within maxHops in-hops of
// the target (so dist 1 is the target itself) and 0 elsewhere.
func (f *Fwd) hopDist(adj *autodiff.CSR, node, maxHops int) *tensor.Matrix {
	d := f.Get(1, adj.NRows)
	d.Data[node] = 1
	for hop := 1; hop <= maxHops; hop++ {
		for i, di := range d.Data {
			if di != float64(hop) {
				continue
			}
			for _, j := range adj.ColIdx[adj.RowPtr[i]:adj.RowPtr[i+1]] {
				if d.Data[j] == 0 {
					d.Data[j] = float64(hop + 1)
				}
			}
		}
	}
	return d
}

// InferTarget implements TargetInferer for GraphSAGE. Beyond collapsing
// the final layer to one row, the hidden layers skip every row outside
// the target's in-hop frontier: layer l's output row i can reach the
// target logit only if i is within last-l in-hops of it. The rows that
// are computed run the unchanged per-row arithmetic (aggregate row,
// split matmul, bias, ReLU), so the target logit stays bitwise equal to
// the full forward's.
func (m *GraphSAGE) InferTarget(f *Fwd, b *Batch, node int) float64 {
	adj := b.MergedMeanCSR()
	h := b.X
	last := len(m.layers) - 1
	dist := f.hopDist(adj, node, last)
	for li, l := range m.layers[:last] {
		out := f.Get(h.Rows, l.W.Value.Cols)
		hn := f.Get(1, h.Cols)
		hv := tensor.Matrix{Rows: 1, Cols: h.Cols}
		ov := tensor.Matrix{Rows: 1, Cols: out.Cols}
		reach := float64(last - li + 1) // dist encodes hops+1
		for i, di := range dist.Data {
			if di == 0 || di > reach {
				continue
			}
			clear(hn.Data)
			adj.MatMulRowInto(hn, h, i)
			hv.Data = h.Row(i)
			ov.Data = out.Row(i)
			tensor.MatMulSplitInto(&ov, &hv, hn, l.W.Value)
			tensor.ReLUInPlace(ov.AddRowVectorInPlace(l.B.Value))
		}
		h = out
	}
	l := m.layers[last]
	hn := f.AggregateRow(adj, h, node)
	out := f.Get(1, l.W.Value.Cols)
	tensor.MatMulSplitInto(out, h.RowView(node), hn, l.W.Value)
	row := tensor.ReLUInPlace(out.AddRowVectorInPlace(l.B.Value))
	return f.MLP(m.head, row).Data[0]
}

// Infer implements Inferer for GAT, with two algebraic shortcuts the
// tape cannot take (it must materialize every intermediate as a node):
//
//   - Attention scores gather from node-level projections: the tape's
//     MatMul(SelectRows(wh, src), attSrc) row e is the dot product of
//     wh row src[e] with attSrc, so computing s = wh×attSrc once (same
//     kernel, same per-row arithmetic) and indexing s[src[e]] yields
//     bitwise-equal scores at n·d instead of E·d multiplies.
//   - Aggregation runs as an α-weighted sparse matmul directly over wh:
//     the scatter formulation adds 1·(α_e·wh[src[e]]) per edge, this one
//     adds α_e·wh[src[e]] at the same positions in the same order —
//     the identical rounding sequence, without the E×d intermediate.
func (m *GAT) Infer(f *Fwd, b *Batch) *tensor.Matrix {
	st := b.gatStruct()
	h := b.X
	n := b.NumNodes
	nE := len(st.src)
	for _, layer := range m.layers {
		var outs *tensor.Matrix
		for _, hd := range layer.heads {
			wh := f.MatMul(h, hd.w.Value)
			sSrc := f.MatMul(wh, hd.attSrc.Value)
			sDst := f.MatMul(wh, hd.attDst.Value)
			score := f.Get(nE, 1)
			for e, s := range st.src {
				score.Data[e] = sSrc.Data[s] + sDst.Data[st.dst[e]]
			}
			alpha := f.SegmentSoftmax(tensor.LeakyReLUInPlace(score, 0.2), st.segments)
			w := f.Get(nE, 1)
			for p, e := range st.scatter.ColIdx {
				w.Data[p] = alpha.Data[e]
			}
			adj := autodiff.CSR{NRows: n, NCols: n, RowPtr: st.scatter.RowPtr, ColIdx: st.nodeCol, Weights: w.Data}
			agg := f.Get(n, wh.Cols)
			adj.MatMulInto(agg, wh)
			if outs == nil {
				outs = agg
			} else {
				outs = f.ConcatCols(outs, agg)
			}
		}
		h = tensor.ReLUInPlace(outs)
	}
	return f.MLP(m.head, h)
}
