package gnn

import (
	"math"
	"time"

	"turbo/internal/autodiff"
	"turbo/internal/graph"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// InductiveConfig controls minibatch inductive training: per step, a
// batch of target users' computation subgraphs is sampled (GraphSAGE
// style, the paper uses batch size 256), merged, and the loss is taken
// on the target rows only. This is the training mode matching the
// paper's online inference exactly — the model only ever sees sampled
// neighborhoods, never the full BN.
type InductiveConfig struct {
	TrainConfig
	BatchSize    int // 0 selects 256
	Hops         int // 0 selects 2
	MaxNeighbors int // 0 selects 25
}

func (c InductiveConfig) withDefaults() InductiveConfig {
	c.TrainConfig = c.TrainConfig.withDefaults()
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.MaxNeighbors == 0 {
		c.MaxNeighbors = 25
	}
	return c
}

// FeatureFunc returns the (already normalized) feature row of a node.
type FeatureFunc func(graph.NodeID) []float64

// TrainInductive fits the model with neighbor-sampled minibatches over
// the BN g. trainNodes carries the target users and labels their labels
// (aligned). The model must have been built for the feature dimension
// returned by feats.
func TrainInductive(m Model, g graph.GraphView, feats FeatureFunc, trainNodes []graph.NodeID, labels []float64, cfg InductiveConfig) TrainStats {
	cfg = cfg.withDefaults()
	start := time.Now()
	opt := nn.NewAdam(m, cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	rng := tensor.NewRNG(cfg.Seed)

	var posW float64 = 1
	if cfg.BalanceClasses {
		var pos int
		for _, l := range labels {
			if l > 0.5 {
				pos++
			}
		}
		if neg := len(labels) - pos; pos > 0 && neg > 0 {
			posW = math.Sqrt(float64(neg) / float64(pos))
		}
	}

	order := make([]int, len(trainNodes))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			targets := order[lo:hi]
			batch, targetRows := SampleBatch(g, feats, pick(trainNodes, targets), cfg.Hops, cfg.MaxNeighbors, rng)
			batchLabels := make([]float64, len(targets))
			weights := make([]float64, len(targets))
			for k, idx := range targets {
				batchLabels[k] = labels[idx]
				if labels[idx] > 0.5 {
					weights[k] = posW
				} else {
					weights[k] = 1
				}
			}
			tape := autodiff.NewTape()
			logits := m.Forward(tape, batch, rng)
			sel := tape.SelectRows(logits, targetRows)
			loss := tape.WeightedBCEWithLogits(sel, batchLabels, weights)
			lastLoss = loss.Scalar()
			if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
				return TrainStats{Epochs: epoch, FinalLoss: lastLoss, Elapsed: time.Since(start)}
			}
			tape.Backward(loss)
			nn.ClipGradNorm(m, cfg.ClipNorm)
			opt.Step()
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	return TrainStats{Epochs: cfg.Epochs, FinalLoss: lastLoss, Elapsed: time.Since(start)}
}

func pick(nodes []graph.NodeID, idx []int) []graph.NodeID {
	out := make([]graph.NodeID, len(idx))
	for k, i := range idx {
		out[k] = nodes[i]
	}
	return out
}

// SampleBatch merges the sampled computation subgraphs of the target
// nodes into one Batch and returns the local row index of each target.
// Overlapping neighborhoods share nodes, so the merged batch is usually
// far smaller than the sum of individual subgraphs.
func SampleBatch(g graph.GraphView, feats FeatureFunc, targets []graph.NodeID, hops, maxNeighbors int, rng *tensor.RNG) (*Batch, []int) {
	merged := &graph.Subgraph{
		Index:      make(map[graph.NodeID]int),
		TypedEdges: make([][]graph.LocalEdge, g.NumEdgeTypes()),
	}
	addNode := func(n graph.NodeID, hop int) int {
		if i, ok := merged.Index[n]; ok {
			return i
		}
		i := len(merged.Nodes)
		merged.Index[n] = i
		merged.Nodes = append(merged.Nodes, n)
		merged.Hops = append(merged.Hops, hop)
		return i
	}
	targetRows := make([]int, len(targets))
	seenEdge := make(map[[3]int]bool)
	for k, target := range targets {
		sg := g.Sample(target, graph.SampleOptions{Hops: hops, MaxNeighbors: maxNeighbors, RNG: rng})
		local := make([]int, sg.NumNodes())
		for i, n := range sg.Nodes {
			local[i] = addNode(n, sg.Hops[i])
		}
		targetRows[k] = local[0]
		for t, es := range sg.TypedEdges {
			for _, e := range es {
				key := [3]int{t, local[e.Src], local[e.Dst]}
				if seenEdge[key] {
					continue
				}
				seenEdge[key] = true
				merged.TypedEdges[t] = append(merged.TypedEdges[t],
					graph.LocalEdge{Src: local[e.Src], Dst: local[e.Dst], Weight: e.Weight})
			}
		}
	}
	x := tensor.New(len(merged.Nodes), len(feats(merged.Nodes[0])))
	for i, n := range merged.Nodes {
		copy(x.Row(i), feats(n))
	}
	return NewBatch(merged, x), targetRows
}
