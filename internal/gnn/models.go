package gnn

import (
	"fmt"

	"turbo/internal/autodiff"
	"turbo/internal/graph"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// Model is a node classifier over a Batch, producing one fraud logit per
// node. A nil dropRNG selects evaluation mode (no dropout).
type Model interface {
	nn.Module
	Name() string
	Forward(t *autodiff.Tape, b *Batch, dropRNG *tensor.RNG) *autodiff.Node
}

// Config holds the shared GNN hyperparameters of §VI-A: two graph layers
// with 128 and 64 hidden units cascaded by an MLP with 32 hidden units.
type Config struct {
	InDim     int
	Hidden    []int // graph-layer output sizes; nil selects {128, 64}
	MLPHidden int   // classifier hidden size; 0 selects 32
	Heads     int   // GAT attention heads; 0 selects 2
	Dropout   float64
	Seed      uint64
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.MLPHidden == 0 {
		c.MLPHidden = 32
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// layerSizes returns [in, hidden...].
func (c Config) layerSizes() []int {
	return append([]int{c.InDim}, c.Hidden...)
}

// newHead builds the classification MLP applied to final embeddings.
func newHead(name string, in int, c Config, rng *tensor.RNG) *nn.MLP {
	return nn.NewMLP(name+".head", []int{in, c.MLPHidden, 1}, nn.ActReLU, rng)
}

// --- GCN -------------------------------------------------------------------

// GCN is the random-walk-like inductive GCN of Eq. 1: each layer computes
// ReLU(W · mean over Ñ(v) of h_u) on the type-merged adjacency with
// self-loops.
type GCN struct {
	cfg    Config
	layers []*nn.Linear
	head   *nn.MLP
}

// NewGCN builds a GCN with the paper's defaults.
func NewGCN(cfg Config) *GCN {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	m := &GCN{cfg: cfg}
	sizes := cfg.layerSizes()
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, nn.NewLinear(fmt.Sprintf("gcn.l%d", i), sizes[i], sizes[i+1], rng))
	}
	m.head = newHead("gcn", sizes[len(sizes)-1], cfg, rng)
	return m
}

// Name implements Model.
func (m *GCN) Name() string { return "GCN" }

// Config returns the effective configuration (model artifacts rebuild
// the architecture from it before loading weights).
func (m *GCN) Config() Config { return m.cfg }

// Parameters implements nn.Module.
func (m *GCN) Parameters() []*nn.Parameter {
	var ps []*nn.Parameter
	for _, l := range m.layers {
		ps = append(ps, l.Parameters()...)
	}
	return append(ps, m.head.Parameters()...)
}

// Forward implements Model.
func (m *GCN) Forward(t *autodiff.Tape, b *Batch, dropRNG *tensor.RNG) *autodiff.Node {
	adj := b.MergedRWCSR()
	h := t.Const(b.X)
	for _, l := range m.layers {
		h = t.ReLU(l.Forward(t, t.Aggregate(adj, h)))
		h = t.Dropout(h, m.cfg.Dropout, dropRNG)
	}
	return m.head.Forward(t, h)
}

// --- GraphSAGE ---------------------------------------------------------------

// GraphSAGE is the skip-connection baseline of Eq. 2: each layer computes
// ReLU(W · [h_v ; mean over N(v) of h_u]).
type GraphSAGE struct {
	cfg    Config
	layers []*nn.Linear
	head   *nn.MLP
}

// NewGraphSAGE builds a GraphSAGE model.
func NewGraphSAGE(cfg Config) *GraphSAGE {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	m := &GraphSAGE{cfg: cfg}
	sizes := cfg.layerSizes()
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, nn.NewLinear(fmt.Sprintf("sage.l%d", i), 2*sizes[i], sizes[i+1], rng))
	}
	m.head = newHead("sage", sizes[len(sizes)-1], cfg, rng)
	return m
}

// Name implements Model.
func (m *GraphSAGE) Name() string { return "G-SAGE" }

// Config returns the effective configuration.
func (m *GraphSAGE) Config() Config { return m.cfg }

// Parameters implements nn.Module.
func (m *GraphSAGE) Parameters() []*nn.Parameter {
	var ps []*nn.Parameter
	for _, l := range m.layers {
		ps = append(ps, l.Parameters()...)
	}
	return append(ps, m.head.Parameters()...)
}

// Forward implements Model.
func (m *GraphSAGE) Forward(t *autodiff.Tape, b *Batch, dropRNG *tensor.RNG) *autodiff.Node {
	adj := b.MergedMeanCSR()
	h := t.Const(b.X)
	for _, l := range m.layers {
		hn := t.Aggregate(adj, h)
		h = t.ReLU(l.Forward(t, t.ConcatCols(h, hn)))
		h = t.Dropout(h, m.cfg.Dropout, dropRNG)
	}
	return m.head.Forward(t, h)
}

// --- GAT ---------------------------------------------------------------------

// gatLayer is one multi-head graph attention layer.
type gatLayer struct {
	heads []*gatHead
}

type gatHead struct {
	w      *nn.Parameter // in × out
	attSrc *nn.Parameter // out × 1
	attDst *nn.Parameter // out × 1
}

// GAT implements multi-head graph attention (Veličković et al.) on the
// type-merged graph, with self-loops so isolated nodes keep their own
// representation.
type GAT struct {
	cfg    Config
	layers []*gatLayer
	head   *nn.MLP
}

// NewGAT builds a GAT whose per-layer output size is split across heads.
func NewGAT(cfg Config) *GAT {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	m := &GAT{cfg: cfg}
	sizes := cfg.layerSizes()
	for i := 0; i+1 < len(sizes); i++ {
		out := sizes[i+1] / cfg.Heads
		if out == 0 {
			out = 1
		}
		layer := &gatLayer{}
		for h := 0; h < cfg.Heads; h++ {
			name := fmt.Sprintf("gat.l%d.h%d", i, h)
			layer.heads = append(layer.heads, &gatHead{
				w:      nn.NewParameter(name+".W", tensor.GlorotUniform(sizes[i], out, rng)),
				attSrc: nn.NewParameter(name+".aS", tensor.GlorotUniform(out, 1, rng)),
				attDst: nn.NewParameter(name+".aD", tensor.GlorotUniform(out, 1, rng)),
			})
		}
		m.layers = append(m.layers, layer)
	}
	lastOut := (sizes[len(sizes)-1] / cfg.Heads) * cfg.Heads
	if lastOut == 0 {
		lastOut = cfg.Heads
	}
	m.head = newHead("gat", lastOut, cfg, rng)
	return m
}

// Name implements Model.
func (m *GAT) Name() string { return "GAT" }

// Config returns the effective configuration.
func (m *GAT) Config() Config { return m.cfg }

// Parameters implements nn.Module.
func (m *GAT) Parameters() []*nn.Parameter {
	var ps []*nn.Parameter
	for _, l := range m.layers {
		for _, h := range l.heads {
			ps = append(ps, h.w, h.attSrc, h.attDst)
		}
	}
	return append(ps, m.head.Parameters()...)
}

// gatStructure caches the per-batch edge bookkeeping GAT attention needs.
type gatStructure struct {
	src, dst []int   // per edge, including self-loops
	segments [][]int // edge indices grouped by destination
	scatter  *autodiff.CSR
	// nodeCol mirrors scatter.ColIdx with each edge id replaced by the
	// edge's source node, so the tape-free path can aggregate α-weighted
	// source features directly from wh (same positions, same order).
	nodeCol []int
}

// gatStruct returns the batch's cached GAT edge structure, building it on
// first use (the structure is per-batch, not per-model, so training
// epochs reuse it).
func (b *Batch) gatStruct() *gatStructure {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gat == nil {
		b.gat = b.buildGATStructure(b.mergedEdgesLocked())
	}
	return b.gat
}

// buildGATStructure compiles the edge bookkeeping for GAT attention into
// pooled flat arrays. The scatter matrix groups edges by destination (in
// edge order, as the old per-row build did) and its ColIdx rows double
// as the softmax segments. Callers must hold b.mu.
func (b *Batch) buildGATStructure(merged []graph.LocalEdge) *gatStructure {
	n := b.NumNodes
	nE := len(merged) + n // plus self-loops
	s := &gatStructure{src: b.getInts(nE), dst: b.getInts(nE)}
	for i, e := range merged {
		s.src[i] = e.Src
		s.dst[i] = e.Dst
	}
	for i := 0; i < n; i++ { // self-loops
		s.src[len(merged)+i] = i
		s.dst[len(merged)+i] = i
	}
	// scatter[dst, e] = 1: multiplies the α-weighted per-edge source
	// features into per-node sums.
	rowPtr := b.getInts(n + 1)
	colIdx := b.getInts(nE)
	weights := b.getFloats(nE)
	next := tensor.GetInts(n)
	for _, d := range s.dst {
		next[d]++
	}
	sum := 0
	for i := 0; i < n; i++ {
		c := next[i]
		rowPtr[i] = sum
		next[i] = sum
		sum += c
	}
	rowPtr[n] = sum
	for e, d := range s.dst {
		p := next[d]
		next[d]++
		colIdx[p] = e
		weights[p] = 1
	}
	tensor.PutInts(next)
	s.scatter = &autodiff.CSR{NRows: n, NCols: nE, RowPtr: rowPtr, ColIdx: colIdx, Weights: weights}
	s.segments = make([][]int, n)
	for i := 0; i < n; i++ {
		s.segments[i] = colIdx[rowPtr[i]:rowPtr[i+1]]
	}
	s.nodeCol = b.getInts(nE)
	for p, e := range colIdx {
		s.nodeCol[p] = s.src[e]
	}
	return s
}

// Forward implements Model.
func (m *GAT) Forward(t *autodiff.Tape, b *Batch, dropRNG *tensor.RNG) *autodiff.Node {
	st := b.gatStruct()
	h := t.Const(b.X)
	for li, layer := range m.layers {
		var outs *autodiff.Node
		for _, hd := range layer.heads {
			wh := t.MatMul(h, hd.w.Node(t))
			eSrc := t.SelectRows(wh, st.src)
			eDst := t.SelectRows(wh, st.dst)
			score := t.Add(t.MatMul(eSrc, hd.attSrc.Node(t)), t.MatMul(eDst, hd.attDst.Node(t)))
			alpha := t.SegmentSoftmax(t.LeakyReLU(score, 0.2), st.segments)
			agg := t.Aggregate(st.scatter, t.MulColVector(eSrc, alpha))
			if outs == nil {
				outs = agg
			} else {
				outs = t.ConcatCols(outs, agg)
			}
		}
		if li+1 < len(m.layers) {
			h = t.Dropout(t.ReLU(outs), m.cfg.Dropout, dropRNG)
		} else {
			h = t.ReLU(outs)
		}
	}
	return m.head.Forward(t, h)
}
