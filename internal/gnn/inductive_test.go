package gnn

import (
	"math"
	"testing"
	"time"

	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// inductiveWorld builds a BN with two fraud cliques and a normal chain,
// plus per-node features.
func inductiveWorld(t *testing.T) (*graph.Graph, FeatureFunc, []graph.NodeID, []float64) {
	t.Helper()
	exp := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	g := graph.New(2)
	addClique := func(members []graph.NodeID, typ graph.EdgeType) {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				_ = g.AddEdgeWeight(typ, members[i], members[j], 1, exp)
			}
		}
	}
	addClique([]graph.NodeID{0, 1, 2, 3}, 0)
	addClique([]graph.NodeID{10, 11, 12}, 0)
	for i := graph.NodeID(20); i < 29; i++ {
		_ = g.AddEdgeWeight(1, i, i+1, 0.3, exp)
	}
	rng := tensor.NewRNG(3)
	featCache := map[graph.NodeID][]float64{}
	feats := func(n graph.NodeID) []float64 {
		if v, ok := featCache[n]; ok {
			return v
		}
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if n < 15 {
			v[0] += 0.5
		}
		featCache[n] = v
		return v
	}
	var nodes []graph.NodeID
	var labels []float64
	for _, n := range g.Nodes() {
		nodes = append(nodes, n)
		if n < 15 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	return g, feats, nodes, labels
}

func TestSampleBatchMergesOverlaps(t *testing.T) {
	g, feats, _, _ := inductiveWorld(t)
	// Targets 0 and 1 share their whole clique: merged batch must not
	// duplicate nodes.
	batch, rows := SampleBatch(g, feats, []graph.NodeID{0, 1}, 2, 10, nil)
	if batch.NumNodes != 4 {
		t.Fatalf("merged batch nodes %d want 4 (shared clique)", batch.NumNodes)
	}
	if rows[0] == rows[1] {
		t.Fatal("distinct targets mapped to the same row")
	}
	// No duplicate typed edges.
	seen := map[[3]int]bool{}
	for typ, es := range batch.TypedEdges {
		for _, e := range es {
			key := [3]int{typ, e.Src, e.Dst}
			if seen[key] {
				t.Fatalf("duplicate edge %v", key)
			}
			seen[key] = true
		}
	}
}

func TestSampleBatchTargetRows(t *testing.T) {
	g, feats, _, _ := inductiveWorld(t)
	targets := []graph.NodeID{0, 10, 20}
	batch, rows := SampleBatch(g, feats, targets, 2, 10, nil)
	for k, r := range rows {
		if batch.NumNodes <= r {
			t.Fatalf("row %d out of range", r)
		}
		// The row's features must match the target's features.
		want := feats(targets[k])
		got := batch.X.Row(r)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("target %d row features mismatch", k)
			}
		}
	}
}

func TestTrainInductiveLearns(t *testing.T) {
	g, feats, nodes, labels := inductiveWorld(t)
	m := NewGraphSAGE(Config{InDim: 3, Hidden: []int{8, 8}, MLPHidden: 4, Seed: 1})
	stats := TrainInductive(m, g, feats, nodes, labels, InductiveConfig{
		TrainConfig: TrainConfig{Epochs: 60, LR: 0.02, BalanceClasses: true, Seed: 2},
		BatchSize:   8,
	})
	if math.IsNaN(stats.FinalLoss) {
		t.Fatal("inductive training diverged")
	}
	// Inference matches the online path: per-target sampled subgraph.
	score := func(n graph.NodeID) float64 {
		b, rows := SampleBatch(g, feats, []graph.NodeID{n}, 2, 10, nil)
		return Scores(m, b)[rows[0]]
	}
	if score(2) <= score(25) {
		t.Fatalf("inductive model failed: fraud %v <= normal %v", score(2), score(25))
	}
}

func TestTrainInductiveDeterministic(t *testing.T) {
	g, feats, nodes, labels := inductiveWorld(t)
	run := func() float64 {
		m := NewGraphSAGE(Config{InDim: 3, Hidden: []int{4}, MLPHidden: 2, Seed: 5})
		stats := TrainInductive(m, g, feats, nodes, labels, InductiveConfig{
			TrainConfig: TrainConfig{Epochs: 5, Seed: 7},
			BatchSize:   4,
		})
		return stats.FinalLoss
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic inductive training: %v vs %v", a, b)
	}
}
