// Package gnn provides the inductive GNN substrate shared by HAG and the
// GNN baselines: compiled computation batches over sampled subgraphs,
// the GCN / GraphSAGE / GAT reference models of §VI-A, and a common
// full-graph trainer.
package gnn

import (
	"turbo/internal/autodiff"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// Batch is a computation subgraph compiled for model forward passes:
// node features plus cached adjacency structures in several of the
// normalizations the models need. A Batch is immutable after creation
// and safe to reuse across epochs.
type Batch struct {
	NumNodes   int
	X          *tensor.Matrix      // NumNodes × F node features
	TypedEdges [][]graph.LocalEdge // directed edges per type (both directions present)

	merged []graph.LocalEdge // all types summed per (src,dst)

	mergedRW     *autodiff.CSR // unweighted random-walk norm incl self (GCN)
	mergedMean   *autodiff.CSR // unweighted neighbor mean, no self (SAGE)
	mergedWeight *autodiff.CSR // weighted neighbor mean (CFO(-) SAO stream)
	typedMean    []*autodiff.CSR
	gat          *gatStructure // GAT edge bookkeeping
}

// NewBatch compiles a subgraph and its node feature matrix.
func NewBatch(sg *graph.Subgraph, x *tensor.Matrix) *Batch {
	if x.Rows != sg.NumNodes() {
		panic("gnn: feature rows do not match subgraph nodes")
	}
	b := &Batch{NumNodes: sg.NumNodes(), X: x, TypedEdges: sg.TypedEdges}
	b.merged = mergeEdges(sg.TypedEdges, sg.NumNodes())
	return b
}

// mergeEdges sums weights of parallel edges across types.
func mergeEdges(typed [][]graph.LocalEdge, n int) []graph.LocalEdge {
	acc := make(map[int64]float64)
	for _, es := range typed {
		for _, e := range es {
			acc[int64(e.Src)<<32|int64(e.Dst)] += e.Weight
		}
	}
	out := make([]graph.LocalEdge, 0, len(acc))
	for k, w := range acc {
		out = append(out, graph.LocalEdge{Src: int(k >> 32), Dst: int(k & 0xffffffff), Weight: w})
	}
	return out
}

// MergedEdges returns the type-merged directed edge list.
func (b *Batch) MergedEdges() []graph.LocalEdge { return b.merged }

// normMode selects the row normalization of an aggregation matrix.
type normMode int

const (
	normNone  normMode = iota
	normSum            // rows sum to 1 (a weighted average)
	normCount          // rows divided by the neighbor count (Eq. 6):
	// relative weights AND absolute magnitude survive, so burst-heavy
	// edges contribute larger neighborhood vectors.
)

// buildCSR assembles a dst-indexed aggregation matrix A (out = A·H means
// out[dst] = Σ_src A[dst,src]·H[src]) from directed edges, with optional
// self loops. unweighted replaces edge weights with 1 (Eqs. 1–2 do not
// use BN edge weights; Eq. 6 does).
func buildCSR(n int, edges []graph.LocalEdge, selfLoop bool, norm normMode, unweighted bool) *autodiff.CSR {
	rows := make([][]int, n)
	weights := make([][]float64, n)
	for _, e := range edges {
		w := e.Weight
		if unweighted {
			w = 1
		}
		rows[e.Dst] = append(rows[e.Dst], e.Src)
		weights[e.Dst] = append(weights[e.Dst], w)
	}
	if selfLoop {
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], i)
			weights[i] = append(weights[i], 1)
		}
	}
	for i := 0; i < n; i++ {
		var inv float64
		switch norm {
		case normSum:
			var sum float64
			for _, w := range weights[i] {
				sum += w
			}
			if sum == 0 {
				continue
			}
			inv = 1 / sum
		case normCount:
			if len(weights[i]) == 0 {
				continue
			}
			inv = 1 / float64(len(weights[i]))
		default:
			continue
		}
		for j := range weights[i] {
			weights[i][j] *= inv
		}
	}
	return autodiff.NewCSR(n, n, rows, weights)
}

// MergedRWCSR returns the random-walk-normalized merged adjacency with
// self-loops, the aggregation of the paper's inductive GCN baseline
// (Eq. 1): an unweighted mean over Ñ(v), so nodes inside large cliques
// retain only a 1/|Ñ| share of themselves — the over-smoothing setting
// of Theorem 1.
func (b *Batch) MergedRWCSR() *autodiff.CSR {
	if b.mergedRW == nil {
		b.mergedRW = buildCSR(b.NumNodes, b.merged, true, normSum, true)
	}
	return b.mergedRW
}

// MergedMeanCSR returns the unweighted neighbor mean without self-loops,
// the h_{N_v} aggregation of GraphSAGE (Eq. 2).
func (b *Batch) MergedMeanCSR() *autodiff.CSR {
	if b.mergedMean == nil {
		b.mergedMean = buildCSR(b.NumNodes, b.merged, false, normSum, true)
	}
	return b.mergedMean
}

// TypedMeanCSR returns the per-type Eq. 6 aggregation on the homogeneous
// subgraph of edge type t. Unlike Eqs. 1–2 this keeps the BN edge
// weights, so HAG exploits the certainty signal of the inverse weight
// assignment and hierarchical windows. We normalize by the weight sum (a
// weighted average) rather than Eq. 6's literal 1/deg(v): the literal
// form additionally preserves absolute weight magnitude but destabilized
// training in our reduced configuration (normCount keeps it available).
func (b *Batch) TypedMeanCSR(t int) *autodiff.CSR {
	if b.typedMean == nil {
		b.typedMean = make([]*autodiff.CSR, len(b.TypedEdges))
	}
	if b.typedMean[t] == nil {
		b.typedMean[t] = buildCSR(b.NumNodes, b.TypedEdges[t], false, normSum, false)
	}
	return b.typedMean[t]
}

// MergedWeightedMeanCSR returns the weighted neighbor mean over the
// type-merged graph (Eq. 6 collapsed across types), which the CFO(-)
// ablation's single SAO stream aggregates with.
func (b *Batch) MergedWeightedMeanCSR() *autodiff.CSR {
	if b.mergedWeight == nil {
		b.mergedWeight = buildCSR(b.NumNodes, b.merged, false, normSum, false)
	}
	return b.mergedWeight
}

// NumEdgeTypes returns the number of edge types in the batch.
func (b *Batch) NumEdgeTypes() int { return len(b.TypedEdges) }
