// Package gnn provides the inductive GNN substrate shared by HAG and the
// GNN baselines: compiled computation batches over sampled subgraphs,
// the GCN / GraphSAGE / GAT reference models of §VI-A, and a common
// full-graph trainer.
package gnn

import (
	"sort"
	"sync"

	"turbo/internal/autodiff"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// Batch is a computation subgraph compiled for model forward passes:
// node features plus cached adjacency structures in several of the
// normalizations the models need. Adjacency structures are compiled
// lazily under an internal lock the first time a model asks for them, so
// a serving batch only pays for the normalizations its model actually
// uses; concurrent scoring over one Batch is safe. A Batch must not be
// copied by value.
//
// Batches on the audit hot path may borrow their CSR buffers from the
// tensor pools; Release returns them. Training code never calls Release
// and keeps batches alive across epochs as before.
type Batch struct {
	NumNodes   int
	X          *tensor.Matrix      // NumNodes × F node features
	TypedEdges [][]graph.LocalEdge // directed edges per type (both directions present)

	mu           sync.Mutex        // guards every lazy field below
	merged       []graph.LocalEdge // all types summed per (src,dst), sorted
	mergedBuilt  bool
	mergedRW     *autodiff.CSR // unweighted random-walk norm incl self (GCN)
	mergedMean   *autodiff.CSR // unweighted neighbor mean, no self (SAGE)
	mergedWeight *autodiff.CSR // weighted neighbor mean (CFO(-) SAO stream)
	typedMean    []*autodiff.CSR
	gat          *gatStructure // GAT edge bookkeeping

	// float32 serving caches: quantized features and CSR mirrors keyed by
	// the float64 structure they shadow, built lazily by the Infer32 path.
	x32       *tensor.Matrix32
	csr32     map[*autodiff.CSR]*tensor.CSR32
	nodeCol32 []int32 // gatStructure.nodeCol as int32

	pooledInts    [][]int     // buffers borrowed from the tensor pools,
	pooledFloats  [][]float64 // returned by Release
	pooledInts32  [][]int32
	pooledFloat32 [][]float32
	pooledMat32   []*tensor.Matrix32
}

// NewBatch compiles a subgraph and its node feature matrix. Adjacency
// compilation is deferred until a model requests a normalization.
func NewBatch(sg *graph.Subgraph, x *tensor.Matrix) *Batch {
	if x.Rows != sg.NumNodes() {
		panic("gnn: feature rows do not match subgraph nodes")
	}
	return &Batch{NumNodes: sg.NumNodes(), X: x, TypedEdges: sg.TypedEdges}
}

// mergeEdges sums weights of parallel edges across types. The result is
// sorted by (src, dst) so batch compilation is deterministic: the map
// iteration the previous implementation relied on leaked random edge
// order into the CSR layout, and with it run-to-run float drift in the
// row normalizations. Duplicate (src, dst) weights are summed in input
// order (the sort is stable), matching the old accumulator.
func mergeEdges(typed [][]graph.LocalEdge) []graph.LocalEdge {
	var total int
	for _, es := range typed {
		total += len(es)
	}
	if total == 0 {
		return nil
	}
	all := make([]graph.LocalEdge, 0, total)
	for _, es := range typed {
		all = append(all, es...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		return all[i].Dst < all[j].Dst
	})
	out := all[:1]
	for _, e := range all[1:] {
		last := &out[len(out)-1]
		if e.Src == last.Src && e.Dst == last.Dst {
			last.Weight += e.Weight
		} else {
			out = append(out, e)
		}
	}
	return out
}

// MergedEdges returns the type-merged directed edge list, sorted by
// (src, dst).
func (b *Batch) MergedEdges() []graph.LocalEdge {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mergedEdgesLocked()
}

func (b *Batch) mergedEdgesLocked() []graph.LocalEdge {
	if !b.mergedBuilt {
		b.merged = mergeEdges(b.TypedEdges)
		b.mergedBuilt = true
	}
	return b.merged
}

// getInts borrows a pooled int slice and registers it for Release.
// Callers must hold b.mu.
func (b *Batch) getInts(n int) []int {
	s := tensor.GetInts(n)
	b.pooledInts = append(b.pooledInts, s)
	return s
}

// getFloats borrows a pooled float slice and registers it for Release.
// Callers must hold b.mu.
func (b *Batch) getFloats(n int) []float64 {
	s := tensor.GetFloats(n)
	b.pooledFloats = append(b.pooledFloats, s)
	return s
}

// Release returns the batch's pooled CSR buffers to the tensor pools and
// drops the compiled caches. The caller owns X (it is never pooled
// here). The batch must not be used for scoring afterwards.
func (b *Batch) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.pooledInts {
		tensor.PutInts(s)
	}
	for _, s := range b.pooledFloats {
		tensor.PutFloats(s)
	}
	for _, s := range b.pooledInts32 {
		tensor.PutInts32(s)
	}
	for _, s := range b.pooledFloat32 {
		tensor.PutFloats32(s)
	}
	for _, m := range b.pooledMat32 {
		tensor.PutMatrix32(m)
	}
	b.pooledInts, b.pooledFloats = nil, nil
	b.pooledInts32, b.pooledFloat32, b.pooledMat32 = nil, nil, nil
	b.merged, b.mergedBuilt = nil, false
	b.mergedRW, b.mergedMean, b.mergedWeight = nil, nil, nil
	b.typedMean, b.gat = nil, nil
	b.x32, b.csr32, b.nodeCol32 = nil, nil, nil
}

// X32 returns the batch features quantized to float32, built on first
// use from pooled storage.
func (b *Batch) X32() *tensor.Matrix32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.x32 == nil {
		b.x32 = tensor.GetMatrix32(b.X.Rows, b.X.Cols)
		b.pooledMat32 = append(b.pooledMat32, b.x32)
		tensor.QuantizeInto(b.x32, b.X)
	}
	return b.x32
}

// CSR32For returns the float32 mirror of a CSR obtained from this batch
// (MergedRWCSR, TypedMeanCSR, …), converting and caching it on first
// use. RowPtr is shared with the float64 structure; column indices and
// weights come from pooled storage returned by Release.
func (b *Batch) CSR32For(c *autodiff.CSR) *tensor.CSR32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.csr32 == nil {
		b.csr32 = make(map[*autodiff.CSR]*tensor.CSR32)
	}
	if q := b.csr32[c]; q != nil {
		return q
	}
	ci := tensor.GetInts32(len(c.ColIdx))
	b.pooledInts32 = append(b.pooledInts32, ci)
	for i, v := range c.ColIdx {
		ci[i] = int32(v)
	}
	ws := tensor.GetFloats32(len(c.Weights))
	b.pooledFloat32 = append(b.pooledFloat32, ws)
	for i, v := range c.Weights {
		ws[i] = float32(v)
	}
	q := &tensor.CSR32{NRows: c.NRows, NCols: c.NCols, RowPtr: c.RowPtr, ColIdx: ci, Weights: ws}
	b.csr32[c] = q
	return q
}

// gatNodeCol32 returns st.nodeCol widened to the int32 column type of
// the f32 CSR kernels.
func (b *Batch) gatNodeCol32(st *gatStructure) []int32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nodeCol32 == nil {
		b.nodeCol32 = tensor.GetInts32(len(st.nodeCol))
		b.pooledInts32 = append(b.pooledInts32, b.nodeCol32)
		for i, v := range st.nodeCol {
			b.nodeCol32[i] = int32(v)
		}
	}
	return b.nodeCol32
}

// normMode selects the row normalization of an aggregation matrix.
type normMode int

const (
	normNone  normMode = iota
	normSum            // rows sum to 1 (a weighted average)
	normCount          // rows divided by the neighbor count (Eq. 6):
	// relative weights AND absolute magnitude survive, so burst-heavy
	// edges contribute larger neighborhood vectors.
)

// buildCSR assembles a dst-indexed aggregation matrix A (out = A·H means
// out[dst] = Σ_src A[dst,src]·H[src]) from directed edges, with optional
// self loops. unweighted replaces edge weights with 1 (Eqs. 1–2 do not
// use BN edge weights; Eq. 6 does). The flat arrays come from the tensor
// pools (registered for Release); entries land in a counting sort that
// reproduces the append order of the old per-row build exactly — edges
// in input order, then the self-loop — so normalization sums round
// identically. Callers must hold b.mu.
func (b *Batch) buildCSR(edges []graph.LocalEdge, selfLoop bool, norm normMode, unweighted bool) *autodiff.CSR {
	n := b.NumNodes
	nnz := len(edges)
	if selfLoop {
		nnz += n
	}
	rowPtr := b.getInts(n + 1)
	colIdx := b.getInts(nnz)
	weights := b.getFloats(nnz)
	next := tensor.GetInts(n)
	for _, e := range edges {
		next[e.Dst]++
	}
	sum := 0
	for i := 0; i < n; i++ {
		c := next[i]
		if selfLoop {
			c++
		}
		rowPtr[i] = sum
		next[i] = sum
		sum += c
	}
	rowPtr[n] = sum
	for _, e := range edges {
		p := next[e.Dst]
		next[e.Dst]++
		colIdx[p] = e.Src
		if unweighted {
			weights[p] = 1
		} else {
			weights[p] = e.Weight
		}
	}
	if selfLoop {
		for i := 0; i < n; i++ {
			p := next[i]
			next[i]++
			colIdx[p] = i
			weights[p] = 1
		}
	}
	tensor.PutInts(next)
	for i := 0; i < n; i++ {
		row := weights[rowPtr[i]:rowPtr[i+1]]
		var inv float64
		switch norm {
		case normSum:
			var s float64
			for _, w := range row {
				s += w
			}
			if s == 0 {
				continue
			}
			inv = 1 / s
		case normCount:
			if len(row) == 0 {
				continue
			}
			inv = 1 / float64(len(row))
		default:
			continue
		}
		for j := range row {
			row[j] *= inv
		}
	}
	return &autodiff.CSR{NRows: n, NCols: n, RowPtr: rowPtr, ColIdx: colIdx, Weights: weights}
}

// MergedRWCSR returns the random-walk-normalized merged adjacency with
// self-loops, the aggregation of the paper's inductive GCN baseline
// (Eq. 1): an unweighted mean over Ñ(v), so nodes inside large cliques
// retain only a 1/|Ñ| share of themselves — the over-smoothing setting
// of Theorem 1.
func (b *Batch) MergedRWCSR() *autodiff.CSR {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mergedRW == nil {
		b.mergedRW = b.buildCSR(b.mergedEdgesLocked(), true, normSum, true)
	}
	return b.mergedRW
}

// MergedMeanCSR returns the unweighted neighbor mean without self-loops,
// the h_{N_v} aggregation of GraphSAGE (Eq. 2).
func (b *Batch) MergedMeanCSR() *autodiff.CSR {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mergedMean == nil {
		b.mergedMean = b.buildCSR(b.mergedEdgesLocked(), false, normSum, true)
	}
	return b.mergedMean
}

// TypedMeanCSR returns the per-type Eq. 6 aggregation on the homogeneous
// subgraph of edge type t. Unlike Eqs. 1–2 this keeps the BN edge
// weights, so HAG exploits the certainty signal of the inverse weight
// assignment and hierarchical windows. We normalize by the weight sum (a
// weighted average) rather than Eq. 6's literal 1/deg(v): the literal
// form additionally preserves absolute weight magnitude but destabilized
// training in our reduced configuration (normCount keeps it available).
func (b *Batch) TypedMeanCSR(t int) *autodiff.CSR {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.typedMean == nil {
		b.typedMean = make([]*autodiff.CSR, len(b.TypedEdges))
	}
	if b.typedMean[t] == nil {
		b.typedMean[t] = b.buildCSR(b.TypedEdges[t], false, normSum, false)
	}
	return b.typedMean[t]
}

// MergedWeightedMeanCSR returns the weighted neighbor mean over the
// type-merged graph (Eq. 6 collapsed across types), which the CFO(-)
// ablation's single SAO stream aggregates with.
func (b *Batch) MergedWeightedMeanCSR() *autodiff.CSR {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.mergedWeight == nil {
		b.mergedWeight = b.buildCSR(b.mergedEdgesLocked(), false, normSum, false)
	}
	return b.mergedWeight
}

// NumEdgeTypes returns the number of edge types in the batch.
func (b *Batch) NumEdgeTypes() int { return len(b.TypedEdges) }
