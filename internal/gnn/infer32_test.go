package gnn

import (
	"math"
	"testing"
)

// f32LogitTol is the per-node logit gap the float32 path must stay
// within for the small randomized test models. Quantization error
// compounds per layer, but at these depths it stays far below the 5e-3
// default serving gate.
const f32LogitTol = 1e-3

// TestInfer32MatchesFloat64 pins the float32 logits to the float64
// reference for every baseline model across randomized batches, through
// the same ValidateF32 entry the serving gate uses.
func TestInfer32MatchesFloat64(t *testing.T) {
	for _, m := range inferModels(5) {
		if !CanInfer32(m) {
			t.Fatalf("%s does not implement Inferer32", m.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			b := randomBatch(t, seed, 20, 2, 5)
			maxDelta, ok := ValidateF32(m, b, f32LogitTol)
			if !ok {
				t.Errorf("%s seed %d: f32 logit gap %.3g exceeds %.1g", m.Name(), seed, maxDelta, f32LogitTol)
			}
			b.Release()
		}
	}
}

// TestInferTarget32MatchesFull pins the single-target float32 path to
// the full float32 forward's row, and both to the float64 target logit.
func TestInferTarget32MatchesFull(t *testing.T) {
	for _, m := range inferModels(5) {
		ti, ok := m.(TargetInferer32)
		if !ok {
			continue // GAT has no target decomposition in either precision
		}
		for seed := uint64(1); seed <= 3; seed++ {
			b := randomBatch(t, seed, 20, 2, 5)
			f := AcquireFwd32()
			full := m.(Inferer32).Infer32(f, b).Data[0]
			ReleaseFwd32(f)
			f = AcquireFwd32()
			row := ti.InferTarget32(f, b, 0)
			ReleaseFwd32(f)
			if row != full {
				t.Errorf("%s seed %d: InferTarget32 %.8g != Infer32 row 0 %.8g", m.Name(), seed, row, full)
			}
			want := TapeScores(m, b)[0]
			got, ok := Score32(m, b)
			if !ok {
				t.Fatalf("%s: Score32 reported unsupported", m.Name())
			}
			if math.Abs(got-want) > f32LogitTol {
				t.Errorf("%s seed %d: Score32 %.8g vs tape %.8g", m.Name(), seed, got, want)
			}
			b.Release()
		}
	}
}

// TestScores32IntoMatchesScores pins the all-node float32 scoring used
// by validation against the float64 Scores on every node.
func TestScores32IntoMatchesScores(t *testing.T) {
	for _, m := range inferModels(5) {
		b := randomBatch(t, 7, 30, 2, 5)
		want := Scores(m, b)
		got := make([]float64, b.NumNodes)
		if !Scores32Into(got, m, b) {
			t.Fatalf("%s: Scores32Into reported unsupported", m.Name())
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > f32LogitTol {
				t.Errorf("%s node %d: f64 %.8g vs f32 %.8g", m.Name(), i, want[i], got[i])
			}
		}
		b.Release()
	}
}

// BenchmarkScoreTapeVsInfer32 extends the tape-vs-infer benchmark with
// the float32 serving path on the same batch shape; bench.sh's infer
// section picks these rows up by the shared name prefix.
func BenchmarkScoreTapeVsInfer32(b *testing.B) {
	cfg := Config{InDim: 16, Hidden: []int{32, 16}, MLPHidden: 8}
	for _, m := range []Model{NewGCN(cfg), NewGraphSAGE(cfg), NewGAT(cfg)} {
		batch := randomBatch(b, 1, 64, 2, 16)
		if _, ok := Score32(m, batch); !ok {
			b.Fatalf("%s does not implement the f32 path", m.Name())
		}
		b.Run(m.Name()+"/infer32", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Score32(m, batch)
			}
		})
	}
}
