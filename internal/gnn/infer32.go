package gnn

import (
	"math"
	"sync"

	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// infer32.go is the opt-in float32 serving path. It mirrors infer.go
// kernel for kernel on quantized weights (nn.Parameter.Value32) and
// quantized batch structures (Batch.X32 / CSR32For), with a different
// contract: float64 Infer stays the bitwise reference, Infer32 is
// tolerance-equivalent. ValidateF32 measures the per-node logit gap so
// callers (the prediction server) can gate the fast path on an explicit
// bound and fall back to float64 when a model quantizes badly.

// Inferer32 is a Model with a float32 tape-free forward. The returned
// logits matrix is Fwd32 scratch.
type Inferer32 interface {
	Infer32(f *Fwd32, b *Batch) *tensor.Matrix32
}

// TargetInferer32 is an Inferer32 that can compute a single node's
// logit without materializing every node's.
type TargetInferer32 interface {
	Inferer32
	InferTarget32(f *Fwd32, b *Batch, node int) float32
}

// CanInfer32 reports whether m supports the float32 serving path.
func CanInfer32(m Model) bool {
	_, ok := m.(Inferer32)
	return ok
}

// Fwd32 is the float32 analog of Fwd: a single-goroutine scratch arena
// whose matrices stay warm across Acquire/Release cycles.
type Fwd32 struct {
	mats []*tensor.Matrix32
	used int
}

var fwd32Pool = sync.Pool{New: func() any { return new(Fwd32) }}

// AcquireFwd32 returns a float32 forward context from the pool.
func AcquireFwd32() *Fwd32 { return fwd32Pool.Get().(*Fwd32) }

// ReleaseFwd32 recycles the context; all matrices obtained from it are
// invalid afterwards.
func ReleaseFwd32(f *Fwd32) {
	if len(f.mats) > maxFwdMats {
		for i := maxFwdMats; i < len(f.mats); i++ {
			tensor.PutMatrix32(f.mats[i])
			f.mats[i] = nil
		}
		f.mats = f.mats[:maxFwdMats]
	}
	f.used = 0
	fwd32Pool.Put(f)
}

// Get returns a zeroed rows×cols scratch matrix owned by f.
func (f *Fwd32) Get(rows, cols int) *tensor.Matrix32 {
	if f.used < len(f.mats) {
		m := f.mats[f.used]
		if m.Rows == rows && m.Cols == cols {
			f.used++
			m.Zero()
			return m
		}
		tensor.PutMatrix32(m)
		m = tensor.GetMatrix32(rows, cols)
		f.mats[f.used] = m
		f.used++
		return m
	}
	m := tensor.GetMatrix32(rows, cols)
	f.mats = append(f.mats, m)
	f.used++
	return m
}

// MatMul computes a × b into scratch.
func (f *Fwd32) MatMul(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := f.Get(a.Rows, b.Cols)
	tensor.MatMul32Into(out, a, b)
	return out
}

// Linear applies y = xW + b on the quantized layer weights.
func (f *Fwd32) Linear(l *nn.Linear, x *tensor.Matrix32) *tensor.Matrix32 {
	return f.MatMul(x, l.W.Value32()).AddRowVectorInPlace(l.B.Value32())
}

// MLP runs the classification head on quantized weights.
func (f *Fwd32) MLP(m *nn.MLP, x *tensor.Matrix32) *tensor.Matrix32 {
	h := x
	for i, l := range m.Layers {
		h = f.Linear(l, h)
		if i+1 < len(m.Layers) {
			h = m.Hidden.Apply32InPlace(h)
		}
	}
	return h
}

// ConcatCols writes [a ; b] side by side into scratch.
func (f *Fwd32) ConcatCols(a, b *tensor.Matrix32) *tensor.Matrix32 {
	out := f.Get(a.Rows, a.Cols+b.Cols)
	tensor.ConcatCols32Into(out, a, b)
	return out
}

// Aggregate computes A × h into scratch.
func (f *Fwd32) Aggregate(a *tensor.CSR32, h *tensor.Matrix32) *tensor.Matrix32 {
	out := f.Get(a.NRows, h.Cols)
	a.MatMulInto(out, h)
	return out
}

// AggregateRow computes row i of A × h into 1×cols scratch.
func (f *Fwd32) AggregateRow(a *tensor.CSR32, h *tensor.Matrix32, i int) *tensor.Matrix32 {
	out := f.Get(1, h.Cols)
	a.MatMulRowInto(out, h, i)
	return out
}

func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

// maxAbs32 returns max_i |v[i]| (0 for an empty slice).
func maxAbs32(v []float32) float32 {
	var m float32
	for _, x := range v {
		if a := abs32(x); a > m {
			m = a
		}
	}
	return m
}

// edgeSoftmax computes GAT attention weights directly in
// scatter-position order: for positions p ∈ [rowPtr[i], rowPtr[i+1])
// the destination is node i and the source is nodeCol[p], so the
// LeakyReLU scores, the per-destination softmax and the α-weighted
// aggregation all run on contiguous ranges with no edge-id indirection,
// and the exponentials go through one vectorized Exp32InPlace pass over
// every edge. ss is the n×2 [src‖dst] score projection of wh.
//
// Softmax is shift-invariant, so when max|sSrc|+max|sDst| bounds every
// score safely inside exp's float32 range (a per-node check over n
// values instead of per-edge max tracking over every edge), the score
// loop skips the shift entirely and applies LeakyReLU branchlessly as
// 0.6·s + 0.4·|s| (= s for s ≥ 0, 0.2·s for s < 0, to rounding).
// Otherwise it falls back to the classic per-segment max subtraction.
//
// The scores live interleaved inside the augmented head matmul output
// whx (see GAT.Infer32): node i's [src, dst] pair sits at columns
// [off, off+1] of row i, so sSrc(i) = d[i*ld+off], sDst(i) =
// d[i*ld+off+1] with ld = whx.Cols.
func (f *Fwd32) edgeSoftmax(whx *tensor.Matrix32, scoreOff int, rowPtr []int, nodeCol []int32) *tensor.Matrix32 {
	n := len(rowPtr) - 1
	w := f.Get(rowPtr[n], 1)
	ssd := whx.Data
	ld := whx.Cols
	var mxS, mxD float32
	for i := 0; i < n; i++ {
		if a := abs32(ssd[i*ld+scoreOff]); a > mxS {
			mxS = a
		}
		if a := abs32(ssd[i*ld+scoreOff+1]); a > mxD {
			mxD = a
		}
	}
	if mxS+mxD <= 60 {
		for i := 0; i < n; i++ {
			seg := w.Data[rowPtr[i]:rowPtr[i+1]]
			cols := nodeCol[rowPtr[i]:rowPtr[i+1]]
			sd := ssd[i*ld+scoreOff+1]
			for j, c := range cols {
				s := ssd[int(c)*ld+scoreOff] + sd
				seg[j] = 0.6*s + 0.4*abs32(s)
			}
		}
	} else {
		negInf := float32(math.Inf(-1))
		for i := 0; i < n; i++ {
			seg := w.Data[rowPtr[i]:rowPtr[i+1]]
			cols := nodeCol[rowPtr[i]:rowPtr[i+1]]
			sd := ssd[i*ld+scoreOff+1]
			mx := negInf
			for j, c := range cols {
				s := ssd[int(c)*ld+scoreOff] + sd
				if s <= 0 {
					s *= 0.2 // LeakyReLU, same slope as the float64 path
				}
				seg[j] = s
				if s > mx {
					mx = s
				}
			}
			for j := range seg {
				seg[j] -= mx
			}
		}
	}
	tensor.Exp32InPlace(w.Data)
	for i := 0; i < n; i++ {
		seg := w.Data[rowPtr[i]:rowPtr[i+1]]
		var sum float32
		for _, v := range seg {
			sum += v
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range seg {
			seg[j] *= inv
		}
	}
	return w
}

// --- model Infer32 implementations -----------------------------------------

// Infer32 implements Inferer32 for GCN.
func (m *GCN) Infer32(f *Fwd32, b *Batch) *tensor.Matrix32 {
	adj := b.CSR32For(b.MergedRWCSR())
	h := b.X32()
	for _, l := range m.layers {
		h = tensor.ReLU32InPlace(f.Linear(l, f.Aggregate(adj, h)))
	}
	return f.MLP(m.head, h)
}

// InferTarget32 implements TargetInferer32 for GCN: hidden layers run in
// full, the last graph layer and the head on the target row alone.
func (m *GCN) InferTarget32(f *Fwd32, b *Batch, node int) float32 {
	adj := b.CSR32For(b.MergedRWCSR())
	h := b.X32()
	last := len(m.layers) - 1
	for _, l := range m.layers[:last] {
		h = tensor.ReLU32InPlace(f.Linear(l, f.Aggregate(adj, h)))
	}
	row := tensor.ReLU32InPlace(f.Linear(m.layers[last], f.AggregateRow(adj, h, node)))
	return f.MLP(m.head, row).Data[0]
}

// Infer32 implements Inferer32 for GraphSAGE via the split matmul.
func (m *GraphSAGE) Infer32(f *Fwd32, b *Batch) *tensor.Matrix32 {
	adj := b.CSR32For(b.MergedMeanCSR())
	h := b.X32()
	for _, l := range m.layers {
		hn := f.Aggregate(adj, h)
		out := f.Get(h.Rows, l.W.Value.Cols)
		tensor.MatMul32SplitInto(out, h, hn, l.W.Value32())
		h = tensor.ReLU32InPlace(out.AddRowVectorInPlace(l.B.Value32()))
	}
	return f.MLP(m.head, h)
}

// InferTarget32 implements TargetInferer32 for GraphSAGE: hidden layers
// in full, final layer and head on the target row.
func (m *GraphSAGE) InferTarget32(f *Fwd32, b *Batch, node int) float32 {
	adj := b.CSR32For(b.MergedMeanCSR())
	h := b.X32()
	last := len(m.layers) - 1
	for _, l := range m.layers[:last] {
		hn := f.Aggregate(adj, h)
		out := f.Get(h.Rows, l.W.Value.Cols)
		tensor.MatMul32SplitInto(out, h, hn, l.W.Value32())
		h = tensor.ReLU32InPlace(out.AddRowVectorInPlace(l.B.Value32()))
	}
	l := m.layers[last]
	hn := f.AggregateRow(adj, h, node)
	out := f.Get(1, l.W.Value.Cols)
	tensor.MatMul32SplitInto(out, h.RowView(node), hn, l.W.Value32())
	row := tensor.ReLU32InPlace(out.AddRowVectorInPlace(l.B.Value32()))
	return f.MLP(m.head, row).Data[0]
}

// Infer32 implements Inferer32 for GAT with the same two algebraic
// shortcuts as the float64 Infer (node-level score projections, a
// weighted sparse matmul for the aggregation).
func (m *GAT) Infer32(f *Fwd32, b *Batch) *tensor.Matrix32 {
	st := b.gatStruct()
	nodeCol := b.gatNodeCol32(st)
	h := b.X32()
	n := b.NumNodes
	for _, layer := range m.layers {
		outCols := 0
		for _, hd := range layer.heads {
			outCols += hd.w.Value.Cols
		}
		outs := f.Get(n, outCols)
		off := 0
		for _, hd := range layer.heads {
			// Fold the attention projections into the head matmul: since
			// ss = (h×W)×att = h×(W×att), augmenting W with the two tiny
			// columns W·attSrc and W·attDst makes one matmul produce the
			// transformed features AND both score columns — no separate
			// n×2 projection pass. Under the vector kernels the operand is
			// zero-padded to a full 8-column tile so the whole product
			// stays on the FMA path (the pad columns are never read).
			wv := hd.w.Value32()
			aS, aD := hd.attSrc.Value32(), hd.attDst.Value32()
			kin, width := wv.Rows, wv.Cols
			naug := width + 2
			if tensor.SIMDEnabled() {
				naug = (naug + 7) &^ 7
			}
			waug := f.Get(kin, naug)
			for r := 0; r < kin; r++ {
				row := waug.Data[r*naug : r*naug+naug]
				wrow := wv.Data[r*width : (r+1)*width]
				copy(row, wrow)
				var s, d float32
				for j, x := range wrow {
					s += x * aS.Data[j]
					d += x * aD.Data[j]
				}
				row[width] = s
				row[width+1] = d
			}
			whx := f.MatMul(h, waug)
			w := f.edgeSoftmax(whx, width, st.scatter.RowPtr, nodeCol)
			adj := tensor.CSR32{NRows: n, NCols: n, RowPtr: st.scatter.RowPtr, ColIdx: nodeCol, Weights: w.Data}
			adj.MatMulColsInto(outs, off, whx, width)
			off += width
		}
		h = tensor.ReLU32InPlace(outs)
	}
	return f.MLP(m.head, h)
}

// --- scoring and validation -------------------------------------------------

// Score32 scores node 0 of the batch through the float32 path, and
// reports false when the model does not implement it. The final
// logit→probability sigmoid stays in float64, matching every other
// scoring path.
func Score32(m Model, b *Batch) (float64, bool) {
	if ti, ok := m.(TargetInferer32); ok {
		f := AcquireFwd32()
		s := tensor.SigmoidScalar(float64(ti.InferTarget32(f, b, 0)))
		ReleaseFwd32(f)
		return s, true
	}
	if inf, ok := m.(Inferer32); ok {
		f := AcquireFwd32()
		s := tensor.SigmoidScalar(float64(inf.Infer32(f, b).Data[0]))
		ReleaseFwd32(f)
		return s, true
	}
	return 0, false
}

// Scores32Into scores every node of the batch through the float32 path.
func Scores32Into(out []float64, m Model, b *Batch) bool {
	inf, ok := m.(Inferer32)
	if !ok {
		return false
	}
	f := AcquireFwd32()
	defer ReleaseFwd32(f)
	logits := inf.Infer32(f, b)
	for i := range out[:b.NumNodes] {
		out[i] = tensor.SigmoidScalar(float64(logits.Data[i]))
	}
	return true
}

// ValidateF32 compares the float32 logits against the float64 reference
// on every node of b and reports the largest absolute gap. ok is false
// when the model lacks either path or the gap exceeds tol — the caller
// must then serve float64.
func ValidateF32(m Model, b *Batch, tol float64) (maxDelta float64, ok bool) {
	inf, ok64 := m.(Inferer)
	inf32, ok32 := m.(Inferer32)
	if !ok64 || !ok32 {
		return 0, false
	}
	f := AcquireFwd()
	defer ReleaseFwd(f)
	want := inf.Infer(f, b)
	f2 := AcquireFwd32()
	defer ReleaseFwd32(f2)
	got := inf32.Infer32(f2, b)
	for i := 0; i < b.NumNodes; i++ {
		if d := math.Abs(want.Data[i] - float64(got.Data[i])); d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta, maxDelta <= tol
}
