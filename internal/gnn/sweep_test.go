package gnn

import (
	"testing"
)

// inferLogits runs the tape-free forward and copies out the logits.
func inferLogits(m Model, b *Batch) []float64 {
	f := AcquireFwd()
	defer ReleaseFwd(f)
	logits := m.(Inferer).Infer(f, b)
	return append([]float64(nil), logits.Data[:b.NumNodes]...)
}

// TestSweepProgramMatchesInfer pins the compiled sweep program, executed
// by the serial reference executor, to Infer's logits bitwise for every
// baseline model: the steps run the identical per-row kernels over the
// same batch, so any difference at all is a compilation bug.
func TestSweepProgramMatchesInfer(t *testing.T) {
	for _, m := range inferModels(5) {
		if !CanSweep(m) {
			t.Fatalf("%s does not implement SweepInferer", m.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			b := randomBatch(t, seed, 24, 2, 5)
			want := inferLogits(m, b)
			prog, ok := BuildSweepFor(m, b)
			if !ok {
				t.Fatalf("%s: BuildSweepFor refused", m.Name())
			}
			f := AcquireFwd()
			out := prog.RunSerial(f)
			for i, w := range want {
				if out.Data[i] != w {
					t.Fatalf("%s seed %d node %d: sweep logit %v, infer %v",
						m.Name(), seed, i, out.Data[i], w)
				}
			}
			ReleaseFwd(f)
			prog.Release()
		}
	}
}

// TestSweepProgramRecyclesBuffers checks the build-time liveness pass: a
// deep same-width GCN must reuse retired activation buffers (so resident
// memory stays ~two layers regardless of depth), and the recycled —
// hence dirty — buffers must still produce Infer's exact logits because
// every step clears its destination rows.
func TestSweepProgramRecyclesBuffers(t *testing.T) {
	cfg := Config{InDim: 6, Hidden: []int{8, 8, 8, 8, 8}, MLPHidden: 4, Seed: 3}
	m := NewGCN(cfg)
	b := randomBatch(t, 9, 30, 2, 6)
	prog := m.BuildSweep(b)
	// Naively the program would own 2 buffers per graph layer plus the
	// MLP outputs (12 here); recycling caps distinct allocations.
	naive := 2*len(cfg.Hidden) + 2
	if len(prog.owned) >= naive {
		t.Fatalf("no buffer recycling: %d owned buffers, naive count %d", len(prog.owned), naive)
	}
	want := inferLogits(m, b)
	f := AcquireFwd()
	out := prog.RunSerial(f)
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("recycled program diverges at node %d: %v vs %v", i, out.Data[i], w)
		}
	}
	ReleaseFwd(f)
	prog.Release()
}

// tapeOnlyModel hides Inferer/SweepInferer so only the tape path remains.
type tapeOnlyModel struct{ Model }

// TestScoresDispatch pins the shared kernel-dispatch helper: Inferer
// models score through InferScoresInto, non-Inferer models fall back to
// the tape, and Scores agrees with both bitwise.
func TestScoresDispatch(t *testing.T) {
	cfg := Config{InDim: 5, Hidden: []int{8, 6}, MLPHidden: 4, Seed: 2}
	m := NewGCN(cfg)
	b := randomBatch(t, 4, 20, 2, 5)

	out := make([]float64, b.NumNodes)
	if !InferScoresInto(out, m, b) {
		t.Fatalf("InferScoresInto refused an Inferer model")
	}
	got := Scores(m, b)
	for i := range out {
		if got[i] != out[i] {
			t.Fatalf("Scores diverges from InferScoresInto at node %d", i)
		}
	}

	wrapped := tapeOnlyModel{m}
	if CanInfer(wrapped) || CanSweep(wrapped) {
		t.Fatalf("wrapper failed to hide the fast paths")
	}
	if InferScoresInto(out, wrapped, b) {
		t.Fatalf("InferScoresInto accepted a tape-only model")
	}
	tape := TapeScores(m, b)
	gotTape := Scores(wrapped, b)
	for i := range tape {
		if gotTape[i] != tape[i] {
			t.Fatalf("tape fallback diverges at node %d", i)
		}
	}
}
