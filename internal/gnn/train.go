package gnn

import (
	"context"
	"math"
	"time"

	"turbo/internal/autodiff"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// TrainConfig controls full-graph supervised training.
type TrainConfig struct {
	Epochs      int     // 0 selects 200
	LR          float64 // 0 selects 5e-3
	WeightDecay float64
	ClipNorm    float64 // 0 selects 5
	// BalanceClasses weights positive examples by the negative/positive
	// ratio, which the heavy class imbalance of D1 requires.
	BalanceClasses bool
	Dropout        float64
	Seed           uint64
	// Progress, when non-nil, receives (epoch, loss) once per epoch.
	Progress func(epoch int, loss float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LR == 0 {
		c.LR = 5e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// TrainStats reports the outcome of a training run.
type TrainStats struct {
	Epochs    int
	FinalLoss float64
	Elapsed   time.Duration
}

// Train fits the model on the batch with BCE loss over trainIdx, whose
// labels are given per node of the batch (only trainIdx entries are
// read). It returns the loss trajectory endpoint and the wall time,
// which the Fig. 8b scalability study records.
func Train(m Model, b *Batch, trainIdx []int, labels []float64, cfg TrainConfig) TrainStats {
	cfg = cfg.withDefaults()
	start := time.Now()
	opt := nn.NewAdam(m, cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	rng := tensor.NewRNG(cfg.Seed)

	trainLabels := make([]float64, len(trainIdx))
	var weights []float64
	if cfg.BalanceClasses {
		var pos int
		for _, i := range trainIdx {
			if labels[i] > 0.5 {
				pos++
			}
		}
		neg := len(trainIdx) - pos
		if pos > 0 && neg > 0 {
			// sqrt reweighting: enough gradient signal for the minority
			// class without destroying threshold-0.5 calibration.
			posW := math.Sqrt(float64(neg) / float64(pos))
			weights = make([]float64, len(trainIdx))
			for k, i := range trainIdx {
				if labels[i] > 0.5 {
					weights[k] = posW
				} else {
					weights[k] = 1
				}
			}
		}
	}
	for k, i := range trainIdx {
		trainLabels[k] = labels[i]
	}

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		tape := autodiff.NewTape()
		logits := m.Forward(tape, b, rng)
		sel := tape.SelectRows(logits, trainIdx)
		loss := tape.WeightedBCEWithLogits(sel, trainLabels, weights)
		lastLoss = loss.Scalar()
		if math.IsNaN(lastLoss) || math.IsInf(lastLoss, 0) {
			break
		}
		tape.Backward(loss)
		nn.ClipGradNorm(m, cfg.ClipNorm)
		opt.Step()
		if cfg.Progress != nil {
			cfg.Progress(epoch, lastLoss)
		}
	}
	return TrainStats{Epochs: cfg.Epochs, FinalLoss: lastLoss, Elapsed: time.Since(start)}
}

// Scores runs the model in evaluation mode and returns the sigmoid fraud
// probability of every node in the batch. Models implementing Inferer
// are scored on the tape-free fast path (identical arithmetic, no tape
// or gradient bookkeeping); others fall back to TapeScores.
func Scores(m Model, b *Batch) []float64 {
	out := make([]float64, b.NumNodes)
	if InferScoresInto(out, m, b) {
		return out
	}
	return TapeScores(m, b)
}

// InferScoresInto is the shared kernel dispatch behind Scores and the
// full-graph sweep engine's fallback: it scores every node of the batch
// through the tape-free Infer kernels into out (length NumNodes) and
// reports false for models without an Infer implementation. Keeping one
// dispatch point means the tape, infer, and sweep paths cannot drift in
// how logits become probabilities.
func InferScoresInto(out []float64, m Model, b *Batch) bool {
	inf, ok := m.(Inferer)
	if !ok {
		return false
	}
	f := AcquireFwd()
	defer ReleaseFwd(f)
	logits := inf.Infer(f, b)
	SigmoidScoresInto(out, logits.Data[:b.NumNodes])
	return true
}

// SigmoidScoresInto converts a logit slice to fraud probabilities with
// the serving sigmoid; every scoring path (Scores, the sweep engine's
// per-shard emit, TapeScores' loop) must use this same scalar.
func SigmoidScoresInto(dst, logits []float64) {
	for i, v := range logits {
		dst[i] = tensor.SigmoidScalar(v)
	}
}

// TapeScores is the tape-backed evaluation path, kept for models without
// an Infer implementation and as the reference the equivalence tests and
// benchmarks compare the fast path against.
func TapeScores(m Model, b *Batch) []float64 {
	tape := autodiff.NewTape()
	logits := m.Forward(tape, b, nil)
	out := make([]float64, b.NumNodes)
	for i := 0; i < b.NumNodes; i++ {
		out[i] = tensor.SigmoidScalar(logits.Value.Data[i])
	}
	return out
}

// Score returns the fraud probability of node 0 of the batch — by
// convention the target node of a sampled computation subgraph — which
// is the online-inference entry point. Inferer models take the
// tape-free path.
func Score(m Model, b *Batch) float64 {
	if ti, ok := m.(TargetInferer); ok {
		f := AcquireFwd()
		s := tensor.SigmoidScalar(ti.InferTarget(f, b, 0))
		ReleaseFwd(f)
		return s
	}
	if inf, ok := m.(Inferer); ok {
		f := AcquireFwd()
		s := tensor.SigmoidScalar(inf.Infer(f, b).Data[0])
		ReleaseFwd(f)
		return s
	}
	return TapeScore(m, b)
}

// TapeScore is Score on the tape-backed reference path.
func TapeScore(m Model, b *Batch) float64 {
	tape := autodiff.NewTape()
	logits := m.Forward(tape, b, nil)
	return tensor.SigmoidScalar(logits.Value.Data[0])
}

// ScoreCtx is Score with a deadline check at the stage boundary: an
// audit whose budget is already spent fails fast instead of paying for
// a forward pass whose result nobody will use. The forward pass itself
// is pure in-memory compute and is not preempted once started.
func ScoreCtx(ctx context.Context, m Model, b *Batch) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return Score(m, b), nil
}
