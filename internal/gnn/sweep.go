package gnn

import (
	"fmt"
	"math"

	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// sweep.go compiles models into layer-at-a-time full-graph programs —
// the Gather-Apply-Scatter formulation InferTurbo-style engines use.
// Instead of one forward pass per audited node over a sampled subgraph,
// a SweepProgram computes layer k for *every* node before layer k+1:
// each step is a row-partitionable kernel over global activation
// matrices, and the executor (internal/sweep) runs the row ranges on one
// worker per shard with a barrier between steps. Barriers are what make
// the decomposition correct — an aggregation step may read any row of
// its input, so the previous step must have finished everywhere.
//
// Equivalence contract: every step runs the exact per-row arithmetic of
// the model's Infer kernels (the range variants in tensor/autodiff are
// bitwise-identical per row to their full-matrix forms), so a completed
// program's Logits match Infer on the same Batch bitwise, and the
// per-node Score path to ≤1e-12 (subgraph-local index order can permute
// within-row summation).

// SweepStep is one barrier-separated stage of a sweep: Run computes
// output rows [lo, hi) and may read any row of matrices produced by
// earlier steps, but must write only state owned by its row range.
type SweepStep struct {
	Name string
	Run  func(f *Fwd, lo, hi int)
}

// SweepProgram is a compiled layer-at-a-time forward over one Batch.
// Activation buffers come from the tensor pool and are recycled across
// steps with build-time liveness (Alloc/Retire), so only about two
// layers of activations are resident however deep the model is. After
// the final step, Logits holds every node's fraud logit. Release the
// program when the logits have been consumed.
type SweepProgram struct {
	NumNodes int
	Steps    []SweepStep
	// Logits is the NumNodes×1 output of the final step.
	Logits *tensor.Matrix

	free  map[[2]int][]*tensor.Matrix
	owned []*tensor.Matrix
}

// SweepInferer is an Inferer that can compile itself into a sweep. The
// program must only reference b and the model's parameters; it is run
// after BuildSweep returns, possibly concurrently across row ranges.
type SweepInferer interface {
	Inferer
	BuildSweep(b *Batch) *SweepProgram
}

// CanSweep reports whether m compiles to a full-graph sweep.
func CanSweep(m Model) bool {
	_, ok := m.(SweepInferer)
	return ok
}

// BuildSweepFor compiles m's sweep program over b, or reports false for
// models without a sweep decomposition.
func BuildSweepFor(m Model, b *Batch) (*SweepProgram, bool) {
	si, ok := m.(SweepInferer)
	if !ok {
		return nil, false
	}
	return si.BuildSweep(b), true
}

// NewSweepProgram starts an empty program over n nodes.
func NewSweepProgram(n int) *SweepProgram {
	return &SweepProgram{NumNodes: n, free: make(map[[2]int][]*tensor.Matrix)}
}

// Step appends a barrier-separated stage.
func (p *SweepProgram) Step(name string, run func(f *Fwd, lo, hi int)) {
	p.Steps = append(p.Steps, SweepStep{Name: name, Run: run})
}

// Alloc returns a rows×cols activation buffer, recycling a retired one
// of the same shape when available. Recycled buffers hold a dead earlier
// step's run-time values, so every step must clear the row range it
// accumulates into before accumulating (see ClearRows).
func (p *SweepProgram) Alloc(rows, cols int) *tensor.Matrix {
	k := [2]int{rows, cols}
	if l := p.free[k]; len(l) > 0 {
		m := l[len(l)-1]
		p.free[k] = l[:len(l)-1]
		return m
	}
	m := tensor.GetMatrix(rows, cols)
	p.owned = append(p.owned, m)
	return m
}

// Retire marks buffers dead for recycling. Call at build time, after
// appending the last step that reads the buffer: a later step's output
// may then share its storage, which is safe at run time because steps
// execute strictly in order with barriers. Never retire b.X — the
// program does not own it.
func (p *SweepProgram) Retire(ms ...*tensor.Matrix) {
	for _, m := range ms {
		k := [2]int{m.Rows, m.Cols}
		p.free[k] = append(p.free[k], m)
	}
}

// Release returns every owned buffer (including Logits) to the tensor
// pool. The program must not be run or read afterwards.
func (p *SweepProgram) Release() {
	for _, m := range p.owned {
		tensor.PutMatrix(m)
	}
	p.owned, p.free, p.Logits, p.Steps = nil, nil, nil, nil
}

// RunSerial executes the program on a single goroutine — the reference
// executor the parallel engine is tested against, and a convenient way
// to run a program without pulling in internal/sweep.
func (p *SweepProgram) RunSerial(f *Fwd) *tensor.Matrix {
	for _, st := range p.Steps {
		st.Run(f, 0, p.NumNodes)
	}
	return p.Logits
}

// ClearRows zeroes rows [lo, hi) of m: accumulate-style kernels require
// zeroed destinations, and recycled sweep buffers arrive dirty.
func ClearRows(m *tensor.Matrix, lo, hi int) {
	clear(m.Data[lo*m.Cols : hi*m.Cols])
}

// AppendHead appends the classification MLP as one rowwise step (dense
// matmuls read only their own input rows, so no barriers are needed
// between MLP layers) and sets Logits. The arithmetic mirrors Fwd.MLP.
func (p *SweepProgram) AppendHead(head *nn.MLP, h *tensor.Matrix, x *tensor.Matrix) {
	outs := make([]*tensor.Matrix, len(head.Layers))
	for i, l := range head.Layers {
		outs[i] = p.Alloc(p.NumNodes, l.W.Value.Cols)
	}
	p.Step("head", func(f *Fwd, lo, hi int) {
		cur := h
		for i, l := range head.Layers {
			out := outs[i]
			ClearRows(out, lo, hi)
			tensor.MatMulRangeInto(out, cur, l.W.Value, lo, hi)
			ov := out.RowsView(lo, hi)
			ov.AddRowVectorInPlace(l.B.Value)
			if i+1 < len(head.Layers) {
				head.Hidden.ApplyInPlace(ov)
			}
			cur = out
		}
	})
	if h != x {
		p.Retire(h)
	}
	p.Retire(outs[:len(outs)-1]...)
	p.Logits = outs[len(outs)-1]
}

// BuildSweep implements SweepInferer for GCN: one step per graph layer
// (gather rows of A×h, then the row's linear+bias+ReLU — identical
// per-row arithmetic to Infer), then the head.
func (m *GCN) BuildSweep(b *Batch) *SweepProgram { return m.buildSweep(b, nil) }

// buildSweep is BuildSweep with optional penultimate capture: when
// capture is non-nil, the last layer's step first copies its input rows
// (h^{L-1}, the embedding-serving state) into the caller-owned buffer —
// free of extra barriers, since the prior step's barrier already
// finalized those rows.
func (m *GCN) buildSweep(b *Batch, capture *tensor.Matrix) *SweepProgram {
	adj := b.MergedRWCSR()
	p := NewSweepProgram(b.NumNodes)
	h := b.X
	for li, l := range m.layers {
		in, l := h, l
		var cp *tensor.Matrix
		if li == len(m.layers)-1 {
			cp = capture
		}
		out := p.Alloc(b.NumNodes, l.W.Value.Cols)
		p.Step(fmt.Sprintf("gcn.l%d", li), func(f *Fwd, lo, hi int) {
			if cp != nil {
				CopyRows(cp, in, lo, hi)
			}
			ClearRows(out, lo, hi)
			// Fused aggregate+transform: the A×h panel never leaves cache,
			// and the full-graph agg buffer disappears from the program.
			adj.AggTransformRangeInto(out, in, l.W.Value, lo, hi)
			ov := out.RowsView(lo, hi)
			tensor.ReLUInPlace(ov.AddRowVectorInPlace(l.B.Value))
		})
		if in != b.X {
			p.Retire(in)
		}
		h = out
	}
	p.AppendHead(m.head, h, b.X)
	return p
}

// BuildSweep implements SweepInferer for GraphSAGE: each layer gathers
// the neighbor mean and runs the split matmul of Infer on its row range.
func (m *GraphSAGE) BuildSweep(b *Batch) *SweepProgram { return m.buildSweep(b, nil) }

// buildSweep is BuildSweep with optional penultimate capture (see the
// GCN variant for the contract).
func (m *GraphSAGE) buildSweep(b *Batch, capture *tensor.Matrix) *SweepProgram {
	adj := b.MergedMeanCSR()
	p := NewSweepProgram(b.NumNodes)
	h := b.X
	for li, l := range m.layers {
		in, l := h, l
		var cp *tensor.Matrix
		if li == len(m.layers)-1 {
			cp = capture
		}
		out := p.Alloc(b.NumNodes, l.W.Value.Cols)
		p.Step(fmt.Sprintf("sage.l%d", li), func(f *Fwd, lo, hi int) {
			if cp != nil {
				CopyRows(cp, in, lo, hi)
			}
			ClearRows(out, lo, hi)
			adj.AggTransformSplitRangeInto(out, in, l.W.Value, lo, hi)
			ov := out.RowsView(lo, hi)
			tensor.ReLUInPlace(ov.AddRowVectorInPlace(l.B.Value))
		})
		if in != b.X {
			p.Retire(in)
		}
		h = out
	}
	p.AppendHead(m.head, h, b.X)
	return p
}

// BuildSweep implements SweepInferer for GAT. Each layer compiles to two
// steps. Projection: per head, wh = h×W and the node-level attention
// scores s = wh×att (rowwise). Attention: for each destination row, the
// incident edges' scores, LeakyReLU, segment softmax and α-weighted
// aggregation — every edge belongs to exactly one destination segment,
// so partitioning by destination rows partitions the edges, and the
// per-edge/per-segment arithmetic replicates Infer's SegmentSoftmax and
// scatter matmul exactly. Heads aggregate directly into their column
// block of the concatenated output.
func (m *GAT) BuildSweep(b *Batch) *SweepProgram { return m.buildSweep(b, nil) }

// buildSweep is BuildSweep with optional penultimate capture (see the
// GCN variant for the contract). The copy rides in the last layer's
// projection step, which is the step that reads the captured input.
func (m *GAT) buildSweep(b *Batch, capture *tensor.Matrix) *SweepProgram {
	st := b.gatStruct()
	p := NewSweepProgram(b.NumNodes)
	n := b.NumNodes
	nE := len(st.src)
	h := b.X
	for li, layer := range m.layers {
		in, layer := h, layer
		var cp *tensor.Matrix
		if li == len(m.layers)-1 {
			cp = capture
		}
		heads := layer.heads
		headCols := heads[0].w.Value.Cols
		whs := make([]*tensor.Matrix, len(heads))
		sSrcs := make([]*tensor.Matrix, len(heads))
		sDsts := make([]*tensor.Matrix, len(heads))
		for k := range heads {
			whs[k] = p.Alloc(n, headCols)
			sSrcs[k] = p.Alloc(n, 1)
			sDsts[k] = p.Alloc(n, 1)
		}
		score := p.Alloc(nE, 1)
		alpha := p.Alloc(nE, 1)
		out := p.Alloc(n, headCols*len(heads))
		p.Step(fmt.Sprintf("gat.l%d.proj", li), func(f *Fwd, lo, hi int) {
			if cp != nil {
				CopyRows(cp, in, lo, hi)
			}
			for k, hd := range heads {
				ClearRows(whs[k], lo, hi)
				tensor.MatMulRangeInto(whs[k], in, hd.w.Value, lo, hi)
				ClearRows(sSrcs[k], lo, hi)
				tensor.MatMulRangeInto(sSrcs[k], whs[k], hd.attSrc.Value, lo, hi)
				ClearRows(sDsts[k], lo, hi)
				tensor.MatMulRangeInto(sDsts[k], whs[k], hd.attDst.Value, lo, hi)
			}
		})
		p.Step(fmt.Sprintf("gat.l%d.attn", li), func(f *Fwd, lo, hi int) {
			for k := range heads {
				wh, sSrc, sDst := whs[k], sSrcs[k], sDsts[k]
				off := k * headCols
				for i := lo; i < hi; i++ {
					seg := st.segments[i]
					mx := math.Inf(-1)
					for _, e := range seg {
						s := sSrc.Data[st.src[e]] + sDst.Data[st.dst[e]]
						if s <= 0 {
							s *= 0.2
						}
						score.Data[e] = s
						if s > mx {
							mx = s
						}
					}
					var sum float64
					for _, e := range seg {
						x := math.Exp(score.Data[e] - mx)
						alpha.Data[e] = x
						sum += x
					}
					if sum != 0 {
						for _, e := range seg {
							alpha.Data[e] /= sum
						}
					}
					drow := out.Data[i*out.Cols+off : i*out.Cols+off+headCols]
					clear(drow)
					for pp := st.scatter.RowPtr[i]; pp < st.scatter.RowPtr[i+1]; pp++ {
						w := alpha.Data[st.scatter.ColIdx[pp]]
						src := wh.Row(st.nodeCol[pp])
						for j, v := range src {
							drow[j] += w * v
						}
					}
				}
			}
			tensor.ReLUInPlace(out.RowsView(lo, hi))
		})
		p.Retire(score, alpha)
		for k := range heads {
			p.Retire(whs[k], sSrcs[k], sDsts[k])
		}
		if in != b.X {
			p.Retire(in)
		}
		h = out
	}
	p.AppendHead(m.head, h, b.X)
	return p
}
