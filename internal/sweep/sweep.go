// Package sweep executes compiled full-graph inference programs
// (gnn.SweepProgram) shard-parallel and layer-at-a-time — the
// Gather-Apply-Scatter schedule of InferTurbo-style engines. The graph's
// node rows are partitioned into contiguous shards balanced by incident
// edge count; one persistent worker goroutine owns each shard and runs
// every step of the program over its row range, with a barrier between
// steps so that layer k is complete for all nodes before any worker
// starts layer k+1. Per-node fraud probabilities stream out through an
// emit callback as soon as a shard's final rows are done, so beyond the
// program's ~two resident activation layers the engine holds only one
// score buffer per shard.
package sweep

import (
	"runtime"
	"sync"
	"time"

	"turbo/internal/gnn"
)

// MaxWorkers caps the shard fan-out, mirroring the graph store's 32
// lock-striped shards: past that, barrier latency dominates.
const MaxWorkers = 32

// Options tunes a sweep execution.
type Options struct {
	// Workers is the shard count; 0 selects min(GOMAXPROCS, MaxWorkers).
	Workers int
	// RowCost optionally weights the row partition (typically incident
	// edge counts, see EdgeCosts); nil splits rows evenly.
	RowCost []int
}

// Stats reports one sweep execution.
type Stats struct {
	Nodes   int
	Edges   int // merged directed edges (0 when Run is called directly)
	Steps   int
	Workers int
	Elapsed time.Duration
	// ShardCompute holds each worker's pure compute time (barrier waits
	// excluded): the spread is the shard-balance signal.
	ShardCompute []time.Duration
	// Fallback marks a model without a sweep decomposition that was
	// scored through the shared per-batch dispatch instead.
	Fallback bool
}

func (o Options) workers(rows int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > MaxWorkers {
		w = MaxWorkers
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partition splits [0, n) into at most k contiguous ranges of roughly
// equal total cost, returning the k+1 boundaries.
func partition(n, k int, cost []int) []int {
	bounds := make([]int, 0, k+1)
	bounds = append(bounds, 0)
	if cost == nil {
		for s := 1; s <= k; s++ {
			bounds = append(bounds, s*n/k)
		}
		return bounds
	}
	var total int
	for _, c := range cost {
		total += c
	}
	var acc int
	next := 1
	for i := 0; i < n && next < k; i++ {
		acc += cost[i]
		// Close the shard once it reaches its proportional share; the
		// remaining rows rebalance over the remaining shards.
		if acc*k >= total*next {
			bounds = append(bounds, i+1)
			next++
		}
	}
	for len(bounds) < k+1 {
		bounds = append(bounds, n)
	}
	return bounds
}

// barrier is a reusable synchronization point for the fixed worker set.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n workers have arrived, then releases them.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Run executes the program across shard workers and streams each
// shard's fraud probabilities through emit as soon as the final step
// finishes for that shard. emit(lo, hi, probs) receives rows [lo, hi);
// it is called concurrently from the workers with disjoint ranges and
// must not retain probs. A nil emit skips scoring (the caller reads
// prog.Logits). The caller owns prog and releases it afterwards.
func Run(prog *gnn.SweepProgram, opts Options, emit func(lo, hi int, probs []float64)) Stats {
	n := prog.NumNodes
	w := opts.workers(n)
	start := time.Now()
	st := Stats{Nodes: n, Steps: len(prog.Steps), Workers: w, ShardCompute: make([]time.Duration, w)}
	if n == 0 {
		st.Elapsed = time.Since(start)
		return st
	}
	bounds := partition(n, w, opts.RowCost)
	if w == 1 {
		f := gnn.AcquireFwd()
		for _, step := range prog.Steps {
			step.Run(f, 0, n)
		}
		st.ShardCompute[0] = time.Since(start)
		emitShard(prog, emit, 0, n)
		gnn.ReleaseFwd(f)
		st.Elapsed = time.Since(start)
		return st
	}
	bar := newBarrier(w)
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			f := gnn.AcquireFwd()
			defer gnn.ReleaseFwd(f)
			var compute time.Duration
			for _, step := range prog.Steps {
				t0 := time.Now()
				if lo < hi {
					step.Run(f, lo, hi)
				}
				compute += time.Since(t0)
				bar.wait()
			}
			t0 := time.Now()
			emitShard(prog, emit, lo, hi)
			st.ShardCompute[s] = compute + time.Since(t0)
		}(s, bounds[s], bounds[s+1])
	}
	wg.Wait()
	st.Elapsed = time.Since(start)
	return st
}

// emitShard converts the shard's logits through the shared serving
// sigmoid and hands them to emit.
func emitShard(prog *gnn.SweepProgram, emit func(lo, hi int, probs []float64), lo, hi int) {
	if emit == nil || lo >= hi {
		return
	}
	probs := make([]float64, hi-lo)
	gnn.SigmoidScoresInto(probs, prog.Logits.Data[lo:hi])
	emit(lo, hi, probs)
}

// EdgeCosts estimates per-row sweep cost from the batch's merged
// adjacency: incident edge count plus a constant for the dense per-row
// work. The partition balances shard compute with this weighting.
func EdgeCosts(b *gnn.Batch) []int {
	cost := make([]int, b.NumNodes)
	for i := range cost {
		cost[i] = 4
	}
	for _, e := range b.MergedEdges() {
		cost[e.Dst]++
	}
	return cost
}

// ScoresInto scores every node of the batch into out (length NumNodes)
// with a shard-parallel sweep when the model supports it, falling back
// to the shared per-batch kernel dispatch (gnn.InferScoresInto /
// TapeScores) otherwise — the same dispatch gnn.Scores uses, so the
// three paths cannot drift.
func ScoresInto(out []float64, m gnn.Model, b *gnn.Batch, opts Options) Stats {
	prog, ok := gnn.BuildSweepFor(m, b)
	if !ok {
		start := time.Now()
		if !gnn.InferScoresInto(out, m, b) {
			copy(out, gnn.TapeScores(m, b))
		}
		return Stats{Nodes: b.NumNodes, Workers: 1, Elapsed: time.Since(start), Fallback: true}
	}
	defer prog.Release()
	if opts.RowCost == nil {
		opts.RowCost = EdgeCosts(b)
	}
	st := Run(prog, opts, func(lo, hi int, probs []float64) {
		copy(out[lo:hi], probs)
	})
	st.Edges = len(b.MergedEdges())
	return st
}

// Scores is ScoresInto with a freshly allocated result slice.
func Scores(m gnn.Model, b *gnn.Batch, opts Options) ([]float64, Stats) {
	out := make([]float64, b.NumNodes)
	st := ScoresInto(out, m, b, opts)
	return out, st
}
