package sweep

import (
	"math"
	"sync"
	"testing"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/hag"
	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// testWorld builds a live multigraph (kept mutable for the isolation
// test), freezes a snapshot, and compiles the full-graph batch whose row
// i is node i — the same shape the eval harness and the BN server feed
// the sweep engine.
func testWorld(seed uint64, n, types, dim int) (*graph.Graph, graph.GraphView, *gnn.Batch, *tensor.Matrix, []graph.NodeID) {
	rng := tensor.NewRNG(seed | 1)
	g := graph.New(types)
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i)) // isolated nodes stay scoreable
	}
	for e := 0; e < 4*n; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(types)),
			graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, never)
	}
	snap := g.Snapshot()
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	x := tensor.RandNormal(n, dim, 1, rng)
	b := gnn.NewBatch(graph.FullSubgraph(snap, graph.FullOptions{Nodes: nodes}), x)
	return g, snap, b, x, nodes
}

// testModels returns every sweep-capable model family: the three
// baselines plus all four HAG ablation variants.
func testModels(dim, types int) []gnn.Model {
	cfg := gnn.Config{InDim: dim, Hidden: []int{8, 6}, MLPHidden: 4, Seed: 7}
	ms := []gnn.Model{gnn.NewGCN(cfg), gnn.NewGraphSAGE(cfg), gnn.NewGAT(cfg)}
	mk := func(sao, cfo bool) gnn.Model {
		return hag.New(hag.Config{
			InDim: dim, NumEdgeTypes: types, Hidden: []int{8, 6},
			AttHidden: 4, MLPHidden: 4, Seed: 7,
			DisableSAOGate: sao, DisableCFO: cfo,
		})
	}
	return append(ms, mk(false, false), mk(true, false), mk(false, true), mk(true, true))
}

// TestSweepMatchesBatchScores pins the shard-parallel sweep to the
// per-batch gnn.Scores path bitwise, serial and parallel, for every
// model family: both run the identical Infer kernels, so the scores —
// and every metric derived from them — cannot drift.
func TestSweepMatchesBatchScores(t *testing.T) {
	_, _, b, _, _ := testWorld(3, 40, 3, 6)
	for _, m := range testModels(6, 3) {
		want := gnn.Scores(m, b)
		for _, w := range []int{1, 4} {
			got, st := Scores(m, b, Options{Workers: w})
			if st.Fallback {
				t.Fatalf("%s: unexpected fallback", m.Name())
			}
			if st.Workers != w || st.Nodes != b.NumNodes || len(st.ShardCompute) != w {
				t.Fatalf("%s workers=%d: stats %+v", m.Name(), w, st)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d node %d: sweep %v, batch %v",
						m.Name(), w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSweepMatchesPerNodeScore pins the full-graph sweep to the online
// serving path — a per-node gnn.Score over a sampled computation
// subgraph — within 1e-12 at every node for every model family. The
// subgraph radius equals the model depth, so the two paths compute the
// same function; only subgraph-local index order (which permutes
// within-row summation) separates them.
func TestSweepMatchesPerNodeScore(t *testing.T) {
	_, snap, b, x, nodes := testWorld(5, 30, 3, 6)
	for _, m := range testModels(6, 3) {
		got, _ := Scores(m, b, Options{Workers: 4})
		for i, u := range nodes {
			sg := graph.SampleView(snap, u, graph.SampleOptions{Hops: 2})
			xs := tensor.New(len(sg.Nodes), x.Cols)
			for li, id := range sg.Nodes {
				copy(xs.Row(li), x.Row(int(id)))
			}
			want := gnn.Score(m, gnn.NewBatch(sg, xs))
			if math.Abs(got[i]-want) > 1e-12 {
				t.Fatalf("%s node %d: sweep %v, per-node %v (diff %g)",
					m.Name(), u, got[i], want, math.Abs(got[i]-want))
			}
		}
	}
}

// TestSweepSnapshotIsolation runs sweeps over a compiled batch while
// writers mutate the live graph concurrently: the batch was compiled
// from an immutable snapshot, so every sweep must reproduce the
// pre-mutation scores bitwise. Run under -race this also proves the
// engine shares no state with the ingest path.
func TestSweepSnapshotIsolation(t *testing.T) {
	g, _, b, _, _ := testWorld(7, 40, 3, 6)
	models := testModels(6, 3)
	baseline := make([][]float64, len(models))
	for k, m := range models {
		baseline[k] = gnn.Scores(m, b)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := tensor.NewRNG(99)
		for {
			select {
			case <-done:
				return
			default:
			}
			u := rng.Intn(60)
			v := rng.Intn(60)
			if u == v {
				continue
			}
			_ = g.AddEdgeWeight(graph.EdgeType(rng.Intn(3)),
				graph.NodeID(u), graph.NodeID(v), rng.Float64()+0.1, never)
		}
	}()
	defer wg.Wait()
	defer close(done)
	for rep := 0; rep < 3; rep++ {
		for k, m := range models {
			got, _ := Scores(m, b, Options{Workers: 4})
			for i := range baseline[k] {
				if got[i] != baseline[k][i] {
					t.Fatalf("%s rep %d node %d: score changed under concurrent ingest", m.Name(), rep, i)
				}
			}
		}
	}
}

// TestRunEmitCoverage checks the streaming contract: emit receives
// disjoint ranges that exactly cover [0, n), each with one probability
// per row, and the stats account for every shard.
func TestRunEmitCoverage(t *testing.T) {
	_, _, b, _, _ := testWorld(17, 50, 3, 6)
	m := testModels(6, 3)[0].(gnn.SweepInferer)
	prog := m.BuildSweep(b)
	defer prog.Release()
	var mu sync.Mutex
	seen := make([]int, b.NumNodes)
	st := Run(prog, Options{Workers: 4, RowCost: EdgeCosts(b)}, func(lo, hi int, probs []float64) {
		if len(probs) != hi-lo {
			t.Errorf("emit(%d,%d) carried %d probs", lo, hi, len(probs))
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d emitted %d times", i, c)
		}
	}
	if st.Steps != len(prog.Steps) || st.Workers != 4 || len(st.ShardCompute) != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func checkBounds(t *testing.T, bounds []int, n, k int) {
	t.Helper()
	if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != n {
		t.Fatalf("bad bounds %v for n=%d k=%d", bounds, n, k)
	}
	for i := 1; i <= k; i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("non-monotone bounds %v", bounds)
		}
	}
}

// TestPartition checks the shard boundary invariants for even and
// cost-weighted splits, including k > n and a pathologically heavy row.
func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {1, 4}, {100, 7}, {5, 5}, {32, 1}} {
		checkBounds(t, partition(tc.n, tc.k, nil), tc.n, tc.k)
	}
	cost := make([]int, 100)
	for i := range cost {
		cost[i] = 1
	}
	cost[0] = 100
	bounds := partition(100, 4, cost)
	checkBounds(t, bounds, 100, 4)
	if bounds[1] >= 25 {
		t.Fatalf("heavy head row not isolated: %v", bounds)
	}
	rng := tensor.NewRNG(13)
	for i := range cost {
		cost[i] = rng.Intn(50)
	}
	checkBounds(t, partition(100, 8, cost), 100, 8)
}

// TestEdgeCosts checks the per-row cost model: a constant per row plus
// one unit per incident merged edge.
func TestEdgeCosts(t *testing.T) {
	_, _, b, _, _ := testWorld(11, 20, 2, 4)
	cost := EdgeCosts(b)
	if len(cost) != b.NumNodes {
		t.Fatalf("cost length %d, want %d", len(cost), b.NumNodes)
	}
	sum := 0
	for _, c := range cost {
		if c < 4 {
			t.Fatalf("row cost below the dense floor: %d", c)
		}
		sum += c
	}
	if want := 4*b.NumNodes + len(b.MergedEdges()); sum != want {
		t.Fatalf("total cost %d, want %d", sum, want)
	}
}

// tapeOnly hides the Inferer/SweepInferer fast paths.
type tapeOnly struct{ gnn.Model }

// TestScoresFallback checks that a model without a sweep decomposition
// scores through the shared per-batch dispatch and says so in the stats.
func TestScoresFallback(t *testing.T) {
	_, _, b, _, _ := testWorld(13, 25, 2, 4)
	base := testModels(4, 2)[0]
	got, st := Scores(tapeOnly{base}, b, Options{})
	if !st.Fallback {
		t.Fatalf("tape-only model did not fall back: %+v", st)
	}
	want := gnn.TapeScores(base, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback node %d: %v vs %v", i, got[i], want[i])
		}
	}
}
