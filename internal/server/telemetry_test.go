package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/resilience"
)

// scrapeMetrics renders the stack's registry in Prometheus text format.
func scrapeMetrics(t *testing.T, tel *Telemetry) string {
	t.Helper()
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestMetricsEndpoint drives real traffic through the stack and asserts
// the /metrics exposition covers the acceptance catalog: tier counters,
// per-stage histograms, breaker state, and the BN pipeline series.
func TestMetricsEndpoint(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Traffic after telemetry is installed: audits, an ingest, a tick.
	for _, uid := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/predict?uid=" + uid)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	bnServer.Ingest(mk(1, behavior.IPv4, "ip-x", 3*time.Hour))
	bnServer.Advance(t0.Add(5 * time.Hour))

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`turbo_audit_outcomes_total{outcome="hag"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="sample",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="feature",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="score",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="total",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_count{stage="total"} 3`,
		"turbo_breaker_state 0",
		"turbo_bn_ingested_logs_total 1",
		"turbo_bn_snapshot_epoch 3",
		// 2 hourly epochs from the stack's seed Advance + 3 from ours;
		// the first mirrored tick reports the cumulative builder totals.
		"turbo_bn_window_jobs_total 5",
		"turbo_bn_nodes 3",
		"turbo_bn_snapshot_age_seconds",
		"turbo_bn_shard_skew",
		"turbo_feature_retries_total 0",
		// GraphSAGE implements gnn.Inferer, so all three audits score on
		// the tape-free path.
		`turbo_score_mode_total{mode="infer"} 3`,
		`turbo_score_mode_total{mode="tape"} 0`,
		"turbo_feature_fanout_inflight 0",
		"# TYPE turbo_feature_fanout_inflight gauge",
		"turbo_traces_slow_total 0",
		`turbo_faults_injected_total{kind="error"} 0`,
		// Model lifecycle: no gate decision or rollback yet, gauges at
		// their -1 sentinel.
		`turbo_model_gate_total{result="accepted"} 0`,
		`turbo_model_gate_total{result="rejected"} 0`,
		"turbo_model_gate_last_auc -1",
		"turbo_model_gate_last_psi -1",
		"turbo_model_gate_last_disagreement -1",
		"turbo_model_rollbacks_total 0",
		"# TYPE turbo_model_gate_total counter",
		"# TYPE turbo_model_gate_last_auc gauge",
		"# TYPE turbo_model_rollbacks_total counter",
		"# TYPE turbo_audit_stage_seconds histogram",
		"# TYPE turbo_audit_outcomes_total counter",
		"# TYPE turbo_breaker_state gauge",
		// Saturation observability: ingest/build lag, admission occupancy
		// and the HTTP in-flight counter (1 — the /metrics request itself
		// is in flight while the registry renders).
		"# TYPE turbo_ingest_lag_seconds gauge",
		"# TYPE turbo_bn_build_lag_seconds gauge",
		// Embedding tier: counters at zero (no engine installed on this
		// stack) and the default gauges at their sentinels — the series
		// must exist from boot so dashboards do not gap.
		`turbo_embedding_serve_total{result="hit"} 0`,
		`turbo_embedding_serve_total{result="dirty"} 0`,
		`turbo_embedding_serve_total{result="miss"} 0`,
		`turbo_embedding_serve_total{result="fallback"} 0`,
		"# TYPE turbo_embedding_serve_total counter",
		"turbo_embedding_age_seconds -1",
		"turbo_embedding_dirty_rows 0",
		"turbo_embedding_rows 0",
		"# TYPE turbo_embedding_age_seconds gauge",
		"# TYPE turbo_embedding_refresh_seconds histogram",
		"turbo_embedding_refreshed_rows_total 0",
		"turbo_admission_inflight 0",
		"turbo_admission_capacity -1",
		"turbo_admission_occupancy 0",
		"turbo_http_inflight_requests 1",
		// Scrape-time Go runtime collector.
		"# TYPE turbo_go_goroutines gauge",
		"turbo_go_heap_alloc_bytes",
		"turbo_go_heap_objects",
		"turbo_go_gc_cycles_total",
		"# TYPE turbo_go_gc_pause_seconds histogram",
		"turbo_go_sched_latency_p50_seconds",
		"turbo_go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestDebugTracesEndpoint asserts /debug/traces returns the last K
// traces newest-first with per-stage spans, bounds n, and rejects junk.
func TestDebugTracesEndpoint(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, uid := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/predict?uid=" + uid)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	get := func(q string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return resp, nil
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, out
	}

	_, out := get("?n=2")
	if out["returned"].(float64) != 2 {
		t.Fatalf("returned %v want 2", out["returned"])
	}
	traces := out["traces"].([]any)
	// Newest first: the last audit (uid=3) leads.
	first := traces[0].(map[string]any)
	if first["user"].(float64) != 3 {
		t.Fatalf("newest trace user %v want 3", first["user"])
	}
	if first["served_by"] != TierFull {
		t.Fatalf("served_by %v want %q", first["served_by"], TierFull)
	}
	if first["id"] == "" {
		t.Fatal("trace has no id")
	}
	spans := first["spans"].([]any)
	names := make([]string, len(spans))
	for i, s := range spans {
		sp := s.(map[string]any)
		names[i] = sp["name"].(string)
		if sp["outcome"] != "ok" {
			t.Fatalf("span %v outcome %v want ok", sp["name"], sp["outcome"])
		}
		if sp["duration_ns"].(float64) < 0 {
			t.Fatalf("span %v negative duration", sp["name"])
		}
	}
	if got := strings.Join(names, ","); got != "sample,feature,score" {
		t.Fatalf("span names %q want sample,feature,score", got)
	}

	// n larger than the ring is clamped, not an error.
	_, out = get("?n=1000000")
	if got := out["returned"].(float64); got != 3 {
		t.Fatalf("oversized n returned %v traces, want 3", got)
	}
	if out["ring_size"].(float64) < 1 {
		t.Fatalf("ring_size %v", out["ring_size"])
	}

	// Default n.
	_, out = get("")
	if got := out["returned"].(float64); got != 3 {
		t.Fatalf("default n returned %v traces, want 3", got)
	}

	// Junk n → 400.
	for _, q := range []string{"?n=0", "?n=-5", "?n=abc"} {
		resp, _ := get(q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/traces%s: status %d want 400", q, resp.StatusCode)
		}
	}
}

// metricValue extracts a bare (unlabeled) sample value from a
// Prometheus exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return 0
}

// TestEventWatermarkAndLagGauges asserts the event-time watermark is a
// CAS-max over every ingest path and that the two lag gauges derive
// from it: ingest lag = wall clock − watermark, build lag = watermark −
// builder frontier, both clamped at 0.
func TestEventWatermarkAndLagGauges(t *testing.T) {
	bnServer, _ := newTestStack(t)

	// The seed batch's newest log is at t0+30m.
	if got, want := bnServer.EventWatermark(), t0.Add(30*time.Minute); !got.Equal(want) {
		t.Fatalf("watermark after seed batch %v, want %v", got, want)
	}
	// A newer ingest advances it; an older one must not regress it.
	bnServer.Ingest(mk(1, behavior.IPv4, "ip-a", 2*time.Hour))
	bnServer.Ingest(mk(2, behavior.IPv4, "ip-b", time.Hour))
	if got, want := bnServer.EventWatermark(), t0.Add(2*time.Hour); !got.Equal(want) {
		t.Fatalf("watermark %v, want %v (no regression on older events)", got, want)
	}

	body := scrapeMetrics(t, bnServer.Telemetry())
	// The test events are dated 2019, so ingest lag is years of seconds.
	if lag := metricValue(t, body, "turbo_ingest_lag_seconds"); lag < 1e6 {
		t.Fatalf("ingest lag %v s for 2019-dated events, want huge", lag)
	}
	wantBuild := bnServer.EventWatermark().Sub(bnServer.builder.ProcessedThrough()).Seconds()
	if wantBuild < 0 {
		wantBuild = 0
	}
	if got := metricValue(t, body, "turbo_bn_build_lag_seconds"); got != wantBuild {
		t.Fatalf("build lag %v, want watermark-frontier %v", got, wantBuild)
	}

	// Once the builder has advanced past the watermark, build lag clamps
	// to 0 (the frontier can lead the newest event).
	bnServer.Advance(t0.Add(100 * time.Hour))
	body = scrapeMetrics(t, bnServer.Telemetry())
	if got := metricValue(t, body, "turbo_bn_build_lag_seconds"); got != 0 {
		t.Fatalf("build lag %v after full catch-up, want 0", got)
	}
}

// TestDebugTracesSlowFilter exercises the slow_ms query parameter:
// filtering semantics, explicit JSON content type, and strict parsing.
func TestDebugTracesSlowFilter(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, uid := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/predict?uid=" + uid)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	get := func(q string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp, nil
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	// slow_ms=0 keeps everything, and the response is explicit JSON.
	resp, out := get("?slow_ms=0")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q, want application/json", ct)
	}
	if got := out["returned"].(float64); got != 3 {
		t.Fatalf("slow_ms=0 returned %v traces, want 3", got)
	}

	// A threshold far above any in-process audit filters them all out;
	// the ring size is still reported.
	_, out = get("?n=3&slow_ms=60000")
	if got := out["returned"].(float64); got != 0 {
		t.Fatalf("slow_ms=60000 returned %v traces, want 0", got)
	}
	if len(out["traces"].([]any)) != 0 {
		t.Fatalf("filtered response still carries traces: %v", out["traces"])
	}

	// Non-integer or negative slow_ms → 400, same contract as n.
	for _, q := range []string{"?slow_ms=-1", "?slow_ms=abc", "?slow_ms=1.5", "?slow_ms=10ms"} {
		resp, _ := get(q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/traces%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestLatencyNumericFields asserts /latency carries raw nanosecond
// values alongside the formatted strings (the dashboard-friendly form).
func TestLatencyNumericFields(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/predict?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/latency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	d := out["total"]
	if d["count"].(float64) < 1 {
		t.Fatalf("empty total digest: %v", d)
	}
	for _, key := range []string{"mean_ns", "p50_ns", "p99_ns", "p999_ns"} {
		v, ok := d[key].(float64)
		if !ok {
			t.Fatalf("digest field %q not numeric: %v", key, d[key])
		}
		if v <= 0 {
			t.Fatalf("digest field %q = %v, want > 0 after one audit", key, v)
		}
	}
	// The string and numeric forms describe the same duration.
	want := time.Duration(int64(d["p50_ns"].(float64))).String()
	if d["p50"].(string) != want {
		t.Fatalf("p50 string %q != formatted p50_ns %q", d["p50"], want)
	}
}

// TestTraceRecordsDegradedAudit asserts the trace of a degraded audit
// carries the tier, breaker state and injected faults end to end.
func TestTraceRecordsDegradedAudit(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{ErrorRate: 1, Seed: 8}, 2)
	for i := 0; i < 3; i++ {
		if _, err := cs.pred.Predict(1, t0.Add(3*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	last := cs.pred.Tel.Tracer.Ring().Last(3)
	if len(last) != 3 {
		t.Fatalf("ring holds %d traces want 3", len(last))
	}
	newest := last[0]
	if newest.ServedBy() == TierFull {
		t.Fatalf("outage audit served by %q", newest.ServedBy())
	}
	// At least one of the traces saw an injected error (the breaker opens
	// after 2 failures, so the first trace always does).
	sawFault := false
	for _, tr := range last {
		if tr.Faults()["error"] > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no trace recorded an injected fault")
	}
}
