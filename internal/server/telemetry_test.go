package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/resilience"
)

// scrapeMetrics renders the stack's registry in Prometheus text format.
func scrapeMetrics(t *testing.T, tel *Telemetry) string {
	t.Helper()
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestMetricsEndpoint drives real traffic through the stack and asserts
// the /metrics exposition covers the acceptance catalog: tier counters,
// per-stage histograms, breaker state, and the BN pipeline series.
func TestMetricsEndpoint(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Traffic after telemetry is installed: audits, an ingest, a tick.
	for _, uid := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/predict?uid=" + uid)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	bnServer.Ingest(mk(1, behavior.IPv4, "ip-x", 3*time.Hour))
	bnServer.Advance(t0.Add(5 * time.Hour))

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`turbo_audit_outcomes_total{outcome="hag"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="sample",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="feature",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="score",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_bucket{stage="total",le="+Inf"} 3`,
		`turbo_audit_stage_seconds_count{stage="total"} 3`,
		"turbo_breaker_state 0",
		"turbo_bn_ingested_logs_total 1",
		"turbo_bn_snapshot_epoch 3",
		// 2 hourly epochs from the stack's seed Advance + 3 from ours;
		// the first mirrored tick reports the cumulative builder totals.
		"turbo_bn_window_jobs_total 5",
		"turbo_bn_nodes 3",
		"turbo_bn_snapshot_age_seconds",
		"turbo_bn_shard_skew",
		"turbo_feature_retries_total 0",
		// GraphSAGE implements gnn.Inferer, so all three audits score on
		// the tape-free path.
		`turbo_score_mode_total{mode="infer"} 3`,
		`turbo_score_mode_total{mode="tape"} 0`,
		"turbo_feature_fanout_inflight 0",
		"# TYPE turbo_feature_fanout_inflight gauge",
		"turbo_traces_slow_total 0",
		`turbo_faults_injected_total{kind="error"} 0`,
		// Model lifecycle: no gate decision or rollback yet, gauges at
		// their -1 sentinel.
		`turbo_model_gate_total{result="accepted"} 0`,
		`turbo_model_gate_total{result="rejected"} 0`,
		"turbo_model_gate_last_auc -1",
		"turbo_model_gate_last_psi -1",
		"turbo_model_gate_last_disagreement -1",
		"turbo_model_rollbacks_total 0",
		"# TYPE turbo_model_gate_total counter",
		"# TYPE turbo_model_gate_last_auc gauge",
		"# TYPE turbo_model_rollbacks_total counter",
		"# TYPE turbo_audit_stage_seconds histogram",
		"# TYPE turbo_audit_outcomes_total counter",
		"# TYPE turbo_breaker_state gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestDebugTracesEndpoint asserts /debug/traces returns the last K
// traces newest-first with per-stage spans, bounds n, and rejects junk.
func TestDebugTracesEndpoint(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, uid := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/predict?uid=" + uid)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	get := func(q string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return resp, nil
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, out
	}

	_, out := get("?n=2")
	if out["returned"].(float64) != 2 {
		t.Fatalf("returned %v want 2", out["returned"])
	}
	traces := out["traces"].([]any)
	// Newest first: the last audit (uid=3) leads.
	first := traces[0].(map[string]any)
	if first["user"].(float64) != 3 {
		t.Fatalf("newest trace user %v want 3", first["user"])
	}
	if first["served_by"] != TierFull {
		t.Fatalf("served_by %v want %q", first["served_by"], TierFull)
	}
	if first["id"] == "" {
		t.Fatal("trace has no id")
	}
	spans := first["spans"].([]any)
	names := make([]string, len(spans))
	for i, s := range spans {
		sp := s.(map[string]any)
		names[i] = sp["name"].(string)
		if sp["outcome"] != "ok" {
			t.Fatalf("span %v outcome %v want ok", sp["name"], sp["outcome"])
		}
		if sp["duration_ns"].(float64) < 0 {
			t.Fatalf("span %v negative duration", sp["name"])
		}
	}
	if got := strings.Join(names, ","); got != "sample,feature,score" {
		t.Fatalf("span names %q want sample,feature,score", got)
	}

	// n larger than the ring is clamped, not an error.
	_, out = get("?n=1000000")
	if got := out["returned"].(float64); got != 3 {
		t.Fatalf("oversized n returned %v traces, want 3", got)
	}
	if out["ring_size"].(float64) < 1 {
		t.Fatalf("ring_size %v", out["ring_size"])
	}

	// Default n.
	_, out = get("")
	if got := out["returned"].(float64); got != 3 {
		t.Fatalf("default n returned %v traces, want 3", got)
	}

	// Junk n → 400.
	for _, q := range []string{"?n=0", "?n=-5", "?n=abc"} {
		resp, _ := get(q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/traces%s: status %d want 400", q, resp.StatusCode)
		}
	}
}

// TestLatencyNumericFields asserts /latency carries raw nanosecond
// values alongside the formatted strings (the dashboard-friendly form).
func TestLatencyNumericFields(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/predict?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/latency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	d := out["total"]
	if d["count"].(float64) < 1 {
		t.Fatalf("empty total digest: %v", d)
	}
	for _, key := range []string{"mean_ns", "p50_ns", "p99_ns", "p999_ns"} {
		v, ok := d[key].(float64)
		if !ok {
			t.Fatalf("digest field %q not numeric: %v", key, d[key])
		}
		if v <= 0 {
			t.Fatalf("digest field %q = %v, want > 0 after one audit", key, v)
		}
	}
	// The string and numeric forms describe the same duration.
	want := time.Duration(int64(d["p50_ns"].(float64))).String()
	if d["p50"].(string) != want {
		t.Fatalf("p50 string %q != formatted p50_ns %q", d["p50"], want)
	}
}

// TestTraceRecordsDegradedAudit asserts the trace of a degraded audit
// carries the tier, breaker state and injected faults end to end.
func TestTraceRecordsDegradedAudit(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{ErrorRate: 1, Seed: 8}, 2)
	for i := 0; i < 3; i++ {
		if _, err := cs.pred.Predict(1, t0.Add(3*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	last := cs.pred.Tel.Tracer.Ring().Last(3)
	if len(last) != 3 {
		t.Fatalf("ring holds %d traces want 3", len(last))
	}
	newest := last[0]
	if newest.ServedBy() == TierFull {
		t.Fatalf("outage audit served by %q", newest.ServedBy())
	}
	// At least one of the traces saw an injected error (the breaker opens
	// after 2 failures, so the first trace always does).
	sawFault := false
	for _, tr := range last {
		if tr.Faults()["error"] > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no trace recorded an injected fault")
	}
}
