package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/tensor"
)

// newFanoutStack builds a stack whose audit subgraphs are wide enough to
// exercise the parallel feature fan-out: n users all sharing one device
// (a star), each with a stored profile and a registered transaction.
func newFanoutStack(tb testing.TB, n int) (*BNServer, *PredictionServer) {
	tb.Helper()
	bnServer, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		tb.Fatal(err)
	}
	for u := behavior.UserID(1); u <= behavior.UserID(n); u++ {
		bnServer.Ingest(mk(u, behavior.DeviceID, "hub", time.Duration(u)*time.Minute))
		bnServer.RegisterTransaction(u)
	}
	bnServer.Advance(t0.Add(2 * time.Hour))

	feats := feature.NewService(feature.Config{}, bnServer.Store())
	dim := 2 + feature.NumStatFeatures()
	for u := behavior.UserID(1); u <= behavior.UserID(n); u++ {
		if err := feats.PutProfile(u, []float64{float64(u), 1}); err != nil {
			tb.Fatal(err)
		}
	}
	model := gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 1})
	pred := NewPredictionServer(bnServer, feats, model, 0.5)
	return bnServer, pred
}

// TestFanoutParallelMatchesSequential pins the parallel fan-out's scores
// to the sequential path's: worker count must never change an audit.
func TestFanoutParallelMatchesSequential(t *testing.T) {
	_, pred := newFanoutStack(t, 12)
	at := t0.Add(3 * time.Hour)

	pred.FanoutWorkers = 1
	var want []Prediction
	for u := behavior.UserID(1); u <= 12; u++ {
		p, err := pred.Predict(u, at)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}

	for _, workers := range []int{2, 4, 8} {
		pred.FanoutWorkers = workers
		for u := behavior.UserID(1); u <= 12; u++ {
			p, err := pred.Predict(u, at)
			if err != nil {
				t.Fatal(err)
			}
			w := want[u-1]
			if p.Probability != w.Probability || p.Fraud != w.Fraud || p.SubgraphNodes != w.SubgraphNodes {
				t.Fatalf("workers=%d user %d: %+v differs from sequential %+v", workers, u, p, w)
			}
			if p.ServedBy != w.ServedBy {
				t.Fatalf("workers=%d user %d: tier %q vs %q", workers, u, p.ServedBy, w.ServedBy)
			}
		}
	}
}

// TestFanoutTargetNotFound verifies the parallel fan-out preserves the
// 404 contract: a missing profile for the audited user surfaces as
// ErrUnknownUser regardless of fetch scheduling.
func TestFanoutTargetNotFound(t *testing.T) {
	_, pred := newFanoutStack(t, 4)
	for _, workers := range []int{1, 4} {
		pred.FanoutWorkers = workers
		_, err := pred.Predict(99, t0.Add(3*time.Hour))
		if !errors.Is(err, ErrUnknownUser) {
			t.Fatalf("workers=%d: err %v want ErrUnknownUser", workers, err)
		}
	}
}

// TestFanoutConcurrentAudits hammers one prediction server from many
// goroutines with the parallel fan-out enabled (run with -race: pooled
// feature matrices and the in-flight gauge must stay coherent).
func TestFanoutConcurrentAudits(t *testing.T) {
	_, pred := newFanoutStack(t, 8)
	pred.FanoutWorkers = 4
	at := t0.Add(3 * time.Hour)
	want, err := pred.Predict(1, at)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for rep := 0; rep < 25; rep++ {
				u := behavior.UserID(1 + (g+rep)%8)
				p, err := pred.Predict(u, at)
				if err != nil {
					errc <- err
					return
				}
				if u == 1 && p.Probability != want.Probability {
					errc <- fmt.Errorf("user 1 probability drifted: %v vs %v", p.Probability, want.Probability)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := pred.fanoutInFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge did not settle to 0: %d", got)
	}
}

// TestFanoutWorkerCount pins the adaptive fan-out policy: FanoutWorkers=0
// stays sequential below serialFanoutThreshold nodes (the parallel pool
// is slower than the serial loop there — see BENCH_infer.json), scales
// to the default pool above it, and explicit settings are honored,
// clamped to the node count.
func TestFanoutWorkerCount(t *testing.T) {
	p := &PredictionServer{}

	for _, n := range []int{1, 2, 8, serialFanoutThreshold - 1} {
		if got := p.fanoutWorkerCount(n); got != 1 {
			t.Errorf("adaptive fanoutWorkerCount(%d) = %d, want 1 (serial)", n, got)
		}
	}
	want := defaultFanoutWorkers()
	if got := p.fanoutWorkerCount(serialFanoutThreshold); got != want {
		t.Errorf("adaptive fanoutWorkerCount(%d) = %d, want %d", serialFanoutThreshold, got, want)
	}
	if got := p.fanoutWorkerCount(10 * serialFanoutThreshold); got != want {
		t.Errorf("adaptive fanoutWorkerCount(%d) = %d, want %d", 10*serialFanoutThreshold, got, want)
	}

	p.FanoutWorkers = 4
	if got := p.fanoutWorkerCount(2); got != 2 {
		t.Errorf("explicit 4 over 2 nodes = %d, want clamp to 2", got)
	}
	if got := p.fanoutWorkerCount(100); got != 4 {
		t.Errorf("explicit 4 over 100 nodes = %d, want 4", got)
	}

	p.FanoutWorkers = 1
	if got := p.fanoutWorkerCount(1000); got != 1 {
		t.Errorf("explicit 1 = %d, want 1 (forced serial)", got)
	}
}

// BenchmarkAuditHotPath measures the full serving path end to end:
// sample, feature fan-out, batch compile and tape-free scoring.
func BenchmarkAuditHotPath(b *testing.B) {
	_, pred := newFanoutStack(b, 16)
	at := t0.Add(3 * time.Hour)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := behavior.UserID(1 + i%16)
		if _, err := pred.PredictCtx(ctx, u, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureFanout isolates the feature stage at different worker
// counts over a 16-node star subgraph.
func BenchmarkFeatureFanout(b *testing.B) {
	bnServer, pred := newFanoutStack(b, 16)
	at := t0.Add(3 * time.Hour)
	sg := bnServer.Sample(1)
	ctx := context.Background()
	// workers=0 is the adaptive default (serial at this subgraph size).
	for _, workers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pred.FanoutWorkers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x, err := pred.fanoutFeatures(ctx, pred.feats, nil, sg, 1, at)
				if err != nil {
					b.Fatal(err)
				}
				tensor.PutMatrix(x)
			}
		})
	}
}
