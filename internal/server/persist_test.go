package server

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/graph"
	"turbo/internal/persist"
)

// newJournaledServer builds a BN server whose ingest path is write-ahead
// logged into dir. FsyncAlways keeps every accepted event durable, so
// "kill" in these tests is simply abandoning the old server.
func newJournaledServer(t *testing.T, dir string, segSize int64) (*BNServer, *persist.Manager) {
	t.Helper()
	s, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := persist.Open(persist.Config{
		Dir:         dir,
		Fsync:       persist.FsyncAlways,
		SegmentSize: segSize,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j)
	return s, j
}

// event is one journaled action: a behavior log, or (when log is nil) a
// transaction registration.
type event struct {
	log *behavior.Log
	txn behavior.UserID
}

// apply feeds one event through the server's normal (journaled) path.
func (e event) apply(s *BNServer) {
	if e.log != nil {
		s.Ingest(*e.log)
	} else {
		s.RegisterTransaction(e.txn)
	}
}

// testEvents builds a deterministic event sequence: logs that share
// device/IP values across a small user population (so Advance produces
// edges), with transaction registrations interleaved.
func testEvents(n int) []event {
	evs := make([]event, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			evs = append(evs, event{txn: behavior.UserID(i%7 + 1)})
			continue
		}
		l := behavior.Log{
			User:  behavior.UserID(i%7 + 1),
			Type:  behavior.DeviceID,
			Value: fmt.Sprintf("dev-%d", i%3),
			Time:  t0.Add(time.Duration(i) * time.Minute),
		}
		if i%2 == 1 {
			l.Type = behavior.IPv4
			l.Value = fmt.Sprintf("ip-%d", i%4)
		}
		evs = append(evs, event{log: &l})
	}
	return evs
}

// fingerprint captures everything recovery must reproduce.
type fingerprint struct {
	nodes    []graph.NodeID
	edges    []graph.Edge
	txnUsers []behavior.UserID
	logs     int
}

func takeFingerprint(s *BNServer) fingerprint {
	st := s.captureState()
	edges := append([]graph.Edge(nil), st.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	nodes := append([]graph.NodeID(nil), st.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return fingerprint{nodes: nodes, edges: edges, txnUsers: st.TxnUsers, logs: len(st.Logs)}
}

// requireEqualState compares two fingerprints: counts, node sets, txn
// sets and edge topology exactly; edge weights within 1e-9 (replay
// re-accumulates floats in map iteration order).
func requireEqualState(t *testing.T, got, want fingerprint) {
	t.Helper()
	if len(got.nodes) != len(want.nodes) {
		t.Fatalf("nodes %d want %d", len(got.nodes), len(want.nodes))
	}
	for i := range got.nodes {
		if got.nodes[i] != want.nodes[i] {
			t.Fatalf("node %d: %d want %d", i, got.nodes[i], want.nodes[i])
		}
	}
	if len(got.txnUsers) != len(want.txnUsers) {
		t.Fatalf("txn users %d want %d", len(got.txnUsers), len(want.txnUsers))
	}
	for i := range got.txnUsers {
		if got.txnUsers[i] != want.txnUsers[i] {
			t.Fatalf("txn user %d: %d want %d", i, got.txnUsers[i], want.txnUsers[i])
		}
	}
	if got.logs != want.logs {
		t.Fatalf("stored logs %d want %d", got.logs, want.logs)
	}
	if len(got.edges) != len(want.edges) {
		t.Fatalf("edges %d want %d", len(got.edges), len(want.edges))
	}
	for i := range got.edges {
		g, w := got.edges[i], want.edges[i]
		if g.Type != w.Type || g.U != w.U || g.V != w.V {
			t.Fatalf("edge %d topology: %+v want %+v", i, g, w)
		}
		if math.Abs(g.Weight-w.Weight) > 1e-9 {
			t.Fatalf("edge %d weight: %v want %v", i, g.Weight, w.Weight)
		}
		if !g.ExpireAt.Equal(w.ExpireAt) {
			t.Fatalf("edge %d expiry: %v want %v", i, g.ExpireAt, w.ExpireAt)
		}
	}
}

func TestKillAndRestartRecoversExactState(t *testing.T) {
	dir := t.TempDir()
	s1, j1 := newJournaledServer(t, dir, 0)
	evs := testEvents(40)
	half := len(evs) / 2
	for _, e := range evs[:half] {
		e.apply(s1)
	}
	s1.Advance(t0.Add(2 * time.Hour))
	if _, err := j1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[half:] {
		e.apply(s1)
	}
	finalT := t0.Add(48 * time.Hour)
	s1.Advance(finalT)
	want := takeFingerprint(s1)
	if len(want.edges) == 0 {
		t.Fatal("test setup produced no edges")
	}
	// Kill: s1 and j1 are simply abandoned (FsyncAlways made every
	// accepted event durable; no Close runs).

	s2, j2 := newJournaledServer(t, dir, 0)
	defer j2.Close()
	rs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rs.CheckpointLoaded || rs.CheckpointLSN == 0 {
		t.Fatalf("checkpoint not loaded: %+v", rs)
	}
	if rs.ReplayedLogs+rs.ReplayedTxns != len(evs)-half {
		t.Fatalf("replayed %d+%d events, want %d", rs.ReplayedLogs, rs.ReplayedTxns, len(evs)-half)
	}
	s2.Advance(finalT)
	requireEqualState(t, takeFingerprint(s2), want)

	// The recovered server keeps journaling: new events land after the
	// recovered tail.
	s2.Ingest(behavior.Log{User: 1, Type: behavior.DeviceID, Value: "post", Time: finalT})
	if got := j2.WAL().LastLSN(); got != uint64(len(evs))+1 {
		t.Fatalf("post-recovery LSN %d want %d", got, len(evs)+1)
	}
}

// lastWALSegment returns the path of the newest WAL segment under dir.
func lastWALSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

func TestRecoveryCorruptedTailSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s1, j1 := newJournaledServer(t, dir, 0)
	const k = 6
	for i := 0; i < k; i++ {
		s1.Ingest(behavior.Log{
			User: behavior.UserID(i + 1), Type: behavior.DeviceID,
			Value: "d", Time: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop a few bytes off the last record, as a mid-write crash would.
	seg := lastWALSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, j2 := newJournaledServer(t, dir, 0)
	defer j2.Close()
	rs, err := s2.Recover()
	if err != nil {
		t.Fatalf("recovery must tolerate a torn tail: %v", err)
	}
	if rs.ReplayedLogs != k-1 {
		t.Fatalf("replayed %d logs want %d", rs.ReplayedLogs, k-1)
	}
	if j2.WAL().TornBytes() == 0 {
		t.Fatal("torn tail not reported")
	}
	if s2.Store().Len() != k-1 {
		t.Fatalf("store holds %d logs want %d", s2.Store().Len(), k-1)
	}
}

// copyDir clones a persistence directory so each kill point replays from
// an identical on-disk state.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryKillPoints is the crash-recovery property test: a WAL+
// checkpoint directory is truncated at random byte offsets (simulating a
// kill mid-segment, mid-record, or between a checkpoint and its WAL
// truncation) and recovery must always produce the state reached by
// applying exactly the surviving prefix of the event sequence.
func TestRecoveryKillPoints(t *testing.T) {
	const walHeader = 9 // magic + version; persist keeps at least this

	evs := testEvents(60)
	half := len(evs) / 2
	advanceT := t0.Add(2 * time.Hour)
	finalT := t0.Add(48 * time.Hour)

	master := t.TempDir()
	s1, j1 := newJournaledServer(t, master, 512)
	for _, e := range evs[:half] {
		e.apply(s1)
	}
	s1.Advance(advanceT)
	if _, err := j1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[half:] {
		e.apply(s1)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("kill-%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, master, dir)
			seg := lastWALSegment(t, dir)
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			cut := walHeader + rng.Int63n(fi.Size()-walHeader+1)
			if err := os.Truncate(seg, cut); err != nil {
				t.Fatal(err)
			}

			s2, j2 := newJournaledServer(t, dir, 512)
			defer j2.Close()
			rs, err := s2.Recover()
			if err != nil {
				t.Fatalf("cut at %d/%d: %v", cut, fi.Size(), err)
			}
			if !rs.CheckpointLoaded {
				t.Fatalf("checkpoint lost: %+v", rs)
			}
			// Each event is exactly one WAL record with sequential LSNs
			// from 1, so the survivors are a strict prefix of evs.
			p := rs.CheckpointLSN + uint64(rs.ReplayedLogs) + uint64(rs.ReplayedTxns)
			if p < uint64(half) || p > uint64(len(evs)) {
				t.Fatalf("survived prefix %d outside [%d,%d]", p, half, len(evs))
			}

			ref, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range evs[:half] {
				e.apply(ref)
			}
			ref.Advance(advanceT)
			for _, e := range evs[half:p] {
				e.apply(ref)
			}
			ref.Advance(finalT)

			s2.Advance(finalT)
			requireEqualState(t, takeFingerprint(s2), takeFingerprint(ref))
		})
	}
}
