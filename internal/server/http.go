package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"turbo/internal/behavior"
)

// API exposes the online stack over HTTP:
//
//	POST /ingest            {"uid":1,"type":3,"value":"ip-1","time":"..."}
//	POST /transaction?uid=1 registers an application for uid
//	GET  /predict?uid=1     runs one audit request
//	GET  /latency           returns the §V latency digests
//	GET  /stats             returns BN size statistics
type API struct {
	Pred *PredictionServer
	BN   *BNServer
	mux  *http.ServeMux
}

// NewAPI builds the HTTP handler around a prediction server.
func NewAPI(pred *PredictionServer, bn *BNServer) *API {
	a := &API{Pred: pred, BN: bn, mux: http.NewServeMux()}
	a.mux.HandleFunc("/ingest", a.handleIngest)
	a.mux.HandleFunc("/transaction", a.handleTransaction)
	a.mux.HandleFunc("/predict", a.handlePredict)
	a.mux.HandleFunc("/latency", a.handleLatency)
	a.mux.HandleFunc("/stats", a.handleStats)
	a.mux.HandleFunc("/subgraph", a.handleSubgraph)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var l behavior.Log
	if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
		http.Error(w, fmt.Sprintf("bad log: %v", err), http.StatusBadRequest)
		return
	}
	if !l.Type.Valid() {
		http.Error(w, fmt.Sprintf("invalid behavior type %d", l.Type), http.StatusBadRequest)
		return
	}
	if l.Time.IsZero() {
		l.Time = time.Now()
	}
	a.BN.Ingest(l)
	w.WriteHeader(http.StatusAccepted)
}

func (a *API) handleTransaction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a.BN.RegisterTransaction(uid)
	w.WriteHeader(http.StatusAccepted)
}

func (a *API) handlePredict(w http.ResponseWriter, r *http.Request) {
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pred, err := a.Pred.Predict(uid, time.Now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, pred)
}

func (a *API) handleLatency(w http.ResponseWriter, r *http.Request) {
	type digest struct {
		Count int    `json:"count"`
		Mean  string `json:"mean"`
		P50   string `json:"p50"`
		P99   string `json:"p99"`
		P999  string `json:"p999"`
	}
	out := make(map[string]digest)
	for name, s := range a.Pred.LatencySummaries() {
		out[name] = digest{
			Count: s.Count,
			Mean:  s.Mean.String(),
			P50:   s.P50.String(),
			P99:   s.P99.String(),
			P999:  s.P999.String(),
		}
	}
	writeJSON(w, out)
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	st := a.BN.Graph().Stats()
	writeJSON(w, map[string]any{
		"nodes":         st.Nodes,
		"edges":         st.Edges,
		"edges_by_type": st.EdgesByType,
		"logs":          a.BN.Store().Len(),
	})
}

// handleSubgraph renders a user's computation subgraph as Graphviz DOT
// (the Figs. 5/6/9a visualization, fetched live from the BN server).
func (a *API) handleSubgraph(w http.ResponseWriter, r *http.Request) {
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sg := a.BN.Sample(uid)
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	title := fmt.Sprintf("user-%d", uid)
	if err := sg.WriteDOT(w, title, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func parseUID(r *http.Request) (behavior.UserID, error) {
	s := r.URL.Query().Get("uid")
	if s == "" {
		return 0, fmt.Errorf("missing uid parameter")
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad uid %q: %v", s, err)
	}
	return behavior.UserID(v), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
