package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"turbo/internal/persist"

	"turbo/internal/behavior"
	"turbo/internal/resilience"
)

// API exposes the online stack over HTTP:
//
//	POST /ingest            {"uid":1,"type":3,"value":"ip-1","time":"..."}
//	POST /transaction?uid=1 registers an application for uid
//	GET  /predict?uid=1     runs one audit request
//	GET  /latency           returns the §V latency digests
//	GET  /stats             returns BN size statistics (current snapshot)
//	GET  /metrics           Prometheus text exposition of the registry
//	GET  /debug/traces?n=K  last K completed audit traces, newest first
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness: snapshot, model, breaker state
//	POST /admin/checkpoint  force a full-state checkpoint now
//	POST /admin/retrain     run one gated retrain pass now (gate verdict in the JSON)
//	POST /admin/sweep       re-score every user via one full-graph sweep
//	POST /admin/embed/refresh  re-embed the dirty set incrementally now
//	POST /admin/rollback    re-install the previous accepted model (?reason=...)
//	GET  /admin/models      artifact lineage: every version with its lifecycle status
//
// Error contract: wrong method → 405, bad parameters → 400, unknown
// user → 404, oversized body → 413, shed load → 429, uncaught deadline
// → 504, anything else → a generic 500 (internal error strings go to
// ErrorLog, not the wire). The admin endpoints additionally answer 503
// until SetReady(true) and when their hook is not configured; a
// rollback with nothing to roll back to answers 409. Every POST body is
// bounded by MaxBodyBytes, and /admin/retrain and /admin/sweep honor
// request-context cancellation: a disconnected client unblocks the
// handler immediately (the pass itself finishes in the background).
type API struct {
	Pred *PredictionServer
	BN   *BNServer
	// ErrorLog receives internal errors that are masked on the wire.
	// Nil discards them.
	ErrorLog *log.Logger
	// Admin holds the operational hooks behind /admin/*; nil hooks
	// answer 503.
	Admin AdminHooks
	// Sweep, when set, surfaces the full-graph sweep engine's progress in
	// /stats (in-flight count and last report).
	Sweep *SweepEngine
	// Embed, when set, surfaces the embedding tier's state in /stats
	// (table size, dirty rows, last rebuild/refresh).
	Embed *EmbedEngine
	// MaxBodyBytes bounds every POST request body (0 selects 1 MiB);
	// overflow answers 413 instead of exhausting memory.
	MaxBodyBytes int64
	mux          *http.ServeMux

	// notReady gates /readyz and the admin endpoints during boot-time
	// recovery. The zero value is ready, so embedders that never call
	// SetReady keep the old behavior.
	notReady atomic.Bool

	// inFlight counts requests currently inside ServeHTTP, exposed as
	// turbo_http_inflight_requests — the request-queue depth signal a
	// load test watches for saturation.
	inFlight atomic.Int64
}

// AdminHooks are the operational actions exposed under /admin/*.
type AdminHooks struct {
	// Checkpoint forces a durable full-state checkpoint.
	Checkpoint func() (persist.CheckpointInfo, error)
	// Retrain runs one retrain pass through the validation-gated
	// lifecycle and reports the gate's verdict; ctx cancellation (client
	// disconnect) must unblock promptly.
	Retrain func(ctx context.Context) (RetrainReport, error)
	// Sweep re-scores every audit-eligible user via one full-graph sweep
	// and returns its report; ctx bounds the cancellable stages.
	Sweep func(ctx context.Context) (SweepReport, error)
	// EmbedRefresh re-embeds the embedding tier's dirty set now.
	EmbedRefresh func(ctx context.Context) (EmbedRefreshReport, error)
	// Rollback re-installs the previous accepted model.
	Rollback func(reason string) error
	// Models returns the artifact lineage, and Lifecycle the manager's
	// safe-deployment status.
	Models    func() []persist.Manifest
	Lifecycle func() LifecycleStatus
}

// defaultMaxBodyBytes bounds POST bodies when MaxBodyBytes is unset:
// one behavior log or an admin request fits in well under 1 MiB.
const defaultMaxBodyBytes = 1 << 20

// NewAPI builds the HTTP handler around a prediction server.
func NewAPI(pred *PredictionServer, bn *BNServer) *API {
	a := &API{Pred: pred, BN: bn, mux: http.NewServeMux()}
	a.mux.HandleFunc("/ingest", a.handleIngest)
	a.mux.HandleFunc("/transaction", a.handleTransaction)
	a.mux.HandleFunc("/predict", requireGET(a.handlePredict))
	a.mux.HandleFunc("/latency", requireGET(a.handleLatency))
	a.mux.HandleFunc("/stats", requireGET(a.handleStats))
	a.mux.HandleFunc("/subgraph", requireGET(a.handleSubgraph))
	a.mux.HandleFunc("/metrics", requireGET(a.handleMetrics))
	a.mux.HandleFunc("/debug/traces", requireGET(a.handleTraces))
	a.mux.HandleFunc("/healthz", requireGET(a.handleHealthz))
	a.mux.HandleFunc("/readyz", requireGET(a.handleReadyz))
	a.mux.HandleFunc("/admin/checkpoint", a.handleAdminCheckpoint)
	a.mux.HandleFunc("/admin/retrain", a.handleAdminRetrain)
	a.mux.HandleFunc("/admin/sweep", a.handleAdminSweep)
	a.mux.HandleFunc("/admin/embed/refresh", a.handleAdminEmbedRefresh)
	a.mux.HandleFunc("/admin/rollback", a.handleAdminRollback)
	a.mux.HandleFunc("/admin/models", requireGET(a.handleAdminModels))
	if pred != nil {
		pred.Tel.RegisterHTTPInflightGauge(func() float64 {
			return float64(a.inFlight.Load())
		})
	}
	return a
}

// limitBody caps r's body at MaxBodyBytes so a single oversized request
// cannot exhaust memory; reads past the cap yield *http.MaxBytesError.
func (a *API) limitBody(w http.ResponseWriter, r *http.Request) {
	limit := a.MaxBodyBytes
	if limit <= 0 {
		limit = defaultMaxBodyBytes
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
}

// SetReady flips the boot-time readiness gate: false while recovering
// (readyz answers 503 and admin actions are refused), true once the
// state is rebuilt and the model is loaded.
func (a *API) SetReady(ready bool) { a.notReady.Store(!ready) }

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.inFlight.Add(1)
	defer a.inFlight.Add(-1)
	a.mux.ServeHTTP(w, r)
}

// requireGET rejects every method but GET with 405.
func requireGET(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (a *API) logf(format string, args ...any) {
	if a.ErrorLog != nil {
		a.ErrorLog.Printf(format, args...)
	}
}

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	a.limitBody(w, r)
	var l behavior.Log
	if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad log: %v", err), http.StatusBadRequest)
		return
	}
	if !l.Type.Valid() {
		http.Error(w, fmt.Sprintf("invalid behavior type %d", l.Type), http.StatusBadRequest)
		return
	}
	if l.Time.IsZero() {
		l.Time = time.Now()
	}
	a.BN.Ingest(l)
	w.WriteHeader(http.StatusAccepted)
}

func (a *API) handleTransaction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	a.limitBody(w, r)
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a.BN.RegisterTransaction(uid)
	w.WriteHeader(http.StatusAccepted)
}

func (a *API) handlePredict(w http.ResponseWriter, r *http.Request) {
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pred, err := a.Pred.PredictCtx(r.Context(), uid, time.Now())
	switch {
	case err == nil:
		writeJSON(w, pred)
	case errors.Is(err, ErrUnknownUser):
		http.Error(w, fmt.Sprintf("unknown user %d", uid), http.StatusNotFound)
	case errors.Is(err, resilience.ErrOverloaded):
		http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		http.Error(w, "audit timed out", http.StatusGatewayTimeout)
	default:
		a.logf("predict uid=%d: %v", uid, err)
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

func (a *API) handleLatency(w http.ResponseWriter, r *http.Request) {
	// Each digest carries both the human-readable duration string and the
	// raw nanosecond value, so dashboards don't have to parse "1.2ms".
	type digest struct {
		Count  int    `json:"count"`
		Mean   string `json:"mean"`
		MeanNs int64  `json:"mean_ns"`
		P50    string `json:"p50"`
		P50Ns  int64  `json:"p50_ns"`
		P99    string `json:"p99"`
		P99Ns  int64  `json:"p99_ns"`
		P999   string `json:"p999"`
		P999Ns int64  `json:"p999_ns"`
	}
	out := make(map[string]digest)
	for name, s := range a.Pred.LatencySummaries() {
		out[name] = digest{
			Count:  s.Count,
			Mean:   s.Mean.String(),
			MeanNs: int64(s.Mean),
			P50:    s.P50.String(),
			P50Ns:  int64(s.P50),
			P99:    s.P99.String(),
			P99Ns:  int64(s.P99),
			P999:   s.P999.String(),
			P999Ns: int64(s.P999),
		}
	}
	writeJSON(w, out)
}

// handleMetrics serves the telemetry registry in Prometheus text format.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	tel := a.Pred.Tel
	if tel == nil {
		http.Error(w, "telemetry not configured", http.StatusNotFound)
		return
	}
	tel.Registry.Handler().ServeHTTP(w, r)
}

// handleTraces serves the last n completed audit traces, newest first.
// n defaults to 20 and is bounded by the ring size. slow_ms=K keeps
// only traces whose end-to-end duration is at least K milliseconds
// (applied after the newest-n cut, so it narrows the same window an
// unfiltered request would return).
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	tel := a.Pred.Tel
	if tel == nil || tel.Tracer.Ring() == nil {
		http.Error(w, "tracing not configured", http.StatusNotFound)
		return
	}
	n := 20
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, fmt.Sprintf("bad n %q: want a positive integer", s), http.StatusBadRequest)
			return
		}
		n = v
	}
	var slowMin time.Duration
	if s := r.URL.Query().Get("slow_ms"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad slow_ms %q: want a non-negative integer", s), http.StatusBadRequest)
			return
		}
		slowMin = time.Duration(v) * time.Millisecond
	}
	ring := tel.Tracer.Ring()
	traces := ring.Last(n) // clamped to ring size; never unbounded
	if slowMin > 0 {
		kept := traces[:0]
		for _, t := range traces {
			if t.Total() >= slowMin {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	writeJSON(w, map[string]any{
		"ring_size": ring.Size(),
		"returned":  len(traces),
		"traces":    traces,
	})
}

// handleStats serves node/edge counts from the current snapshot — the
// lock-free read path — never from the live (locked) graph, so a stats
// poll cannot contend with window-job writes.
func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := a.BN.Snapshot()
	st := snap.Stats()
	body := map[string]any{
		"nodes":          st.Nodes,
		"edges":          st.Edges,
		"edges_by_type":  st.EdgesByType,
		"logs":           a.BN.Store().Len(),
		"snapshot_epoch": snap.Epoch(),
		"served_by":      a.Pred.ServedCounts(),
		"breaker":        a.Pred.BreakerState(),
	}
	if a.Sweep != nil {
		sweep := map[string]any{"in_flight": a.Sweep.InFlight()}
		if rep, ok := a.Sweep.LastReport(); ok {
			sweep["last"] = rep
		}
		body["sweep"] = sweep
	}
	if a.Embed != nil {
		body["embed"] = a.Embed.StatsSnapshot()
	}
	writeJSON(w, body)
}

// handleSubgraph renders a user's computation subgraph as Graphviz DOT
// (the Figs. 5/6/9a visualization, fetched live from the BN server).
func (a *API) handleSubgraph(w http.ResponseWriter, r *http.Request) {
	uid, err := parseUID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sg := a.BN.Sample(uid)
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	title := fmt.Sprintf("user-%d", uid)
	if err := sg.WriteDOT(w, title, nil); err != nil {
		a.logf("subgraph uid=%d: %v", uid, err)
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

// requirePOSTReady gates an admin handler: POST only (405), 503 while
// the server is still recovering, and a bounded request body.
func (a *API) requirePOSTReady(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if a.notReady.Load() {
		http.Error(w, "server not ready", http.StatusServiceUnavailable)
		return false
	}
	a.limitBody(w, r)
	return true
}

// handleAdminCheckpoint forces a durable checkpoint and reports what was
// written.
func (a *API) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !a.requirePOSTReady(w, r) {
		return
	}
	if a.Admin.Checkpoint == nil {
		http.Error(w, "checkpointing not configured", http.StatusServiceUnavailable)
		return
	}
	info, err := a.Admin.Checkpoint()
	if err != nil {
		a.logf("admin/checkpoint: %v", err)
		http.Error(w, "checkpoint failed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{
		"wal_lsn":            info.LSN,
		"bytes":              info.Bytes,
		"took_ns":            int64(info.Took),
		"truncated_segments": info.TruncatedSegments,
	})
}

// runCancellable executes fn in its own goroutine and waits for either
// its result or the request context: a disconnected client unblocks the
// handler immediately (false return) instead of leaking a blocked
// handler goroutine, while fn itself runs to completion in the
// background with ctx telling it the caller is gone.
func runCancellable[T any](ctx context.Context, fn func(ctx context.Context) (T, error)) (T, error, bool) {
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1) // buffered: the worker never blocks on an absent reader
	go func() {
		v, err := fn(ctx)
		ch <- result{v, err}
	}()
	select {
	case res := <-ch:
		return res.v, res.err, true
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err(), false
	}
}

// handleAdminRetrain runs one retrain pass through the validation-gated
// lifecycle and reports the gate's verdict. A rejected candidate is a
// 200 with "accepted": false — the gate worked; only a training failure
// is a 500. Client disconnect unblocks the handler immediately.
func (a *API) handleAdminRetrain(w http.ResponseWriter, r *http.Request) {
	if !a.requirePOSTReady(w, r) {
		return
	}
	if a.Admin.Retrain == nil {
		http.Error(w, "retraining not configured", http.StatusServiceUnavailable)
		return
	}
	rep, err, done := runCancellable(r.Context(), a.Admin.Retrain)
	if !done {
		a.logf("admin/retrain: client gone: %v", err)
		return // nobody left to answer
	}
	if err != nil {
		a.logf("admin/retrain: %v", err)
		http.Error(w, "retrain failed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, rep)
}

// handleAdminSweep runs one full-graph re-score and returns its report.
// Client disconnect unblocks the handler immediately; the cancelled
// context also aborts the sweep's feature-fetch stage.
func (a *API) handleAdminSweep(w http.ResponseWriter, r *http.Request) {
	if !a.requirePOSTReady(w, r) {
		return
	}
	if a.Admin.Sweep == nil {
		http.Error(w, "sweeping not configured", http.StatusServiceUnavailable)
		return
	}
	rep, err, done := runCancellable(r.Context(), a.Admin.Sweep)
	if !done {
		a.logf("admin/sweep: client gone: %v", err)
		return
	}
	if err != nil {
		a.logf("admin/sweep: %v", err)
		http.Error(w, "sweep failed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, rep)
}

// handleAdminEmbedRefresh re-embeds the embedding tier's dirty set now
// and returns the refresh report. Client disconnect unblocks the
// handler; the refresh itself runs to completion in the background.
func (a *API) handleAdminEmbedRefresh(w http.ResponseWriter, r *http.Request) {
	if !a.requirePOSTReady(w, r) {
		return
	}
	if a.Admin.EmbedRefresh == nil {
		http.Error(w, "embedding tier not configured", http.StatusServiceUnavailable)
		return
	}
	rep, err, done := runCancellable(r.Context(), a.Admin.EmbedRefresh)
	if !done {
		a.logf("admin/embed/refresh: client gone: %v", err)
		return
	}
	if err != nil {
		a.logf("admin/embed/refresh: %v", err)
		http.Error(w, "embed refresh failed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, rep)
}

// handleAdminRollback re-installs the previous accepted model. 409 when
// there is nothing to roll back to.
func (a *API) handleAdminRollback(w http.ResponseWriter, r *http.Request) {
	if !a.requirePOSTReady(w, r) {
		return
	}
	if a.Admin.Rollback == nil {
		http.Error(w, "rollback not configured", http.StatusServiceUnavailable)
		return
	}
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "operator rollback via /admin/rollback"
	}
	if err := a.Admin.Rollback(reason); err != nil {
		a.logf("admin/rollback: %v", err)
		http.Error(w, "nothing to roll back to", http.StatusConflict)
		return
	}
	body := map[string]any{"rolled_back": true, "reason": reason}
	if a.Admin.Lifecycle != nil {
		body["lifecycle"] = a.Admin.Lifecycle()
	}
	writeJSON(w, body)
}

// handleAdminModels serves the deployment lineage: every artifact
// version with its lifecycle status and rejection reasons, plus the
// manager's safe-deployment summary.
func (a *API) handleAdminModels(w http.ResponseWriter, r *http.Request) {
	if a.Admin.Models == nil {
		http.Error(w, "model lineage not configured", http.StatusServiceUnavailable)
		return
	}
	models := a.Admin.Models()
	body := map[string]any{"count": len(models), "models": models}
	if a.Admin.Lifecycle != nil {
		body["lifecycle"] = a.Admin.Lifecycle()
	}
	writeJSON(w, body)
}

// handleHealthz is the liveness probe: the process is up and serving.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: a snapshot has been published, a
// model is loaded, and the breaker state is reported. Not ready → 503,
// so load balancers stop routing audits here while still seeing the
// process as alive.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := a.BN.Snapshot()
	modelLoaded := a.Pred.ModelLoaded()
	recovering := a.notReady.Load()
	ready := snap != nil && modelLoaded && !recovering
	body := map[string]any{
		"ready":        ready,
		"model_loaded": modelLoaded,
		"recovering":   recovering,
		"breaker":      a.Pred.BreakerState(),
	}
	if snap != nil {
		body["snapshot_epoch"] = snap.Epoch()
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(body); err != nil {
		a.logf("readyz: %v", err)
	}
}

func parseUID(r *http.Request) (behavior.UserID, error) {
	s := r.URL.Query().Get("uid")
	if s == "" {
		return 0, fmt.Errorf("missing uid parameter")
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad uid %q: %v", s, err)
	}
	return behavior.UserID(v), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
