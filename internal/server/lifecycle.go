package server

import (
	"context"
	"fmt"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/lifecycle"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// HoldoutFunc evaluates one candidate model on a labeled holdout set
// (typically the eval harness's test split replayed through the sweep
// scorer) and returns the gate's holdout report. The candidate's own
// normalizer must be applied to the holdout features — the candidate
// may have been fitted on different statistics than the live model.
type HoldoutFunc func(model gnn.Model, norm func([]float64) []float64) (*lifecycle.HoldoutReport, error)

// GateOptions wires the validation gate and the rollback monitor into a
// ModelManager (EnableGate). The zero value of Gate disables gating —
// every candidate swaps, as before; the zero value of Monitor disables
// the post-swap watch.
type GateOptions struct {
	// Gate bounds what a candidate must prove in shadow before SwapModel
	// is allowed.
	Gate lifecycle.GateConfig
	// Monitor bounds live health during the post-swap watch window.
	Monitor lifecycle.MonitorConfig
	// Holdout replays the candidate on a labeled holdout set; nil skips
	// the holdout half of the shadow report.
	Holdout HoldoutFunc
	// Engine scores the candidate/live cohort diff and the monitor's
	// score-shift probe; nil skips both.
	Engine *SweepEngine
	// CohortSize caps how many audit-eligible users the shadow cohort
	// holds (0 = all of them).
	CohortSize int
	// Logf receives lifecycle decisions (nil discards them).
	Logf func(string, ...any)
}

// HealthSnapshot reads the cumulative audit counters as the lifecycle
// monitor's health reading: Audits counts every completed outcome,
// Degraded the below-full tiers, Failed the outcomes that produced no
// usable score (shed load, unknown users).
func (p *PredictionServer) HealthSnapshot() lifecycle.Health {
	c := p.Served.Snapshot()
	served := c[TierFull] + c[TierFallback] + c[TierCache] + c[TierPrior]
	failed := c["shed"] + c["unknown"]
	return lifecycle.Health{
		Audits:   served + failed,
		Degraded: c["degraded"],
		Failed:   failed,
	}
}

// cohortRaw collects up to limit audit-eligible users from the current
// snapshot together with their raw (un-normalized) feature vectors.
// Users whose feature fetch fails are silently dropped — the cohort is
// a sample, not a census.
func (e *SweepEngine) cohortRaw(ctx context.Context, limit int) (*graph.Snapshot, []graph.NodeID, [][]float64, error) {
	feats, _, _ := e.pred.Serving()
	snap := e.bn.Snapshot()
	filter := e.bn.TxnFilter()
	var users []behavior.UserID
	for _, id := range snap.Nodes() {
		if filter(id) {
			users = append(users, behavior.UserID(id))
			if limit > 0 && len(users) >= limit {
				break
			}
		}
	}
	if len(users) == 0 {
		return snap, nil, nil, nil
	}
	vecs, errs := feature.FetchVectors(ctx, feats, users, time.Now(), e.FetchWorkers)
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("server: cohort feature fetch: %w", err)
	}
	nodes := make([]graph.NodeID, 0, len(users))
	raw := make([][]float64, 0, len(users))
	for i, vec := range vecs {
		if errs[i] != nil {
			continue
		}
		nodes = append(nodes, graph.NodeID(users[i]))
		raw = append(raw, vec)
	}
	return snap, nodes, raw, nil
}

// scoreWith scores the cohort's raw vectors under one (model,
// normalizer) pair via the shard-parallel sweep kernels. The raw
// vectors are never mutated — each model normalizes its own copy, so
// the same cohort can be scored under the candidate and the live model.
func (e *SweepEngine) scoreWith(snap *graph.Snapshot, nodes []graph.NodeID, raw [][]float64, model gnn.Model, norm func([]float64) []float64) []float64 {
	x := tensor.GetMatrix(len(raw), len(raw[0]))
	for i, vec := range raw {
		if norm != nil {
			vec = norm(append([]float64(nil), vec...))
		}
		copy(x.Row(i), vec)
	}
	sg := graph.FullSubgraph(snap, graph.FullOptions{Nodes: nodes})
	b := gnn.NewBatch(sg, x)
	out := make([]float64, len(nodes))
	sweep.ScoresInto(out, model, b, e.Opts)
	b.Release()
	tensor.PutMatrix(x)
	return out
}

// ShadowPair scores one shared cohort of real users under the candidate
// and the live model — identical raw features and subgraph, each model
// applying its own normalizer — returning paired score slices for the
// gate's distribution-shift and disagreement checks. Reads only
// immutable state (snapshot, model parameters, bulk-fetched vectors),
// so it runs in parallel with ingestion and audits.
func (e *SweepEngine) ShadowPair(ctx context.Context, cand gnn.Model, candNorm func([]float64) []float64, limit int) (candScores, liveScores []float64, err error) {
	_, live, liveNorm := e.pred.Serving()
	if live == nil {
		return nil, nil, fmt.Errorf("server: shadow: no live model attached")
	}
	if cand == nil {
		return nil, nil, fmt.Errorf("server: shadow: no candidate model")
	}
	snap, nodes, raw, err := e.cohortRaw(ctx, limit)
	if err != nil || len(nodes) == 0 {
		return nil, nil, err
	}
	candScores = e.scoreWith(snap, nodes, raw, cand, candNorm)
	liveScores = e.scoreWith(snap, nodes, raw, live, liveNorm)
	return candScores, liveScores, nil
}

// CohortScores scores the current cohort under the live serving model —
// the rollback monitor's score-shift probe compares this against the
// pre-swap baseline captured by ShadowPair.
func (e *SweepEngine) CohortScores(ctx context.Context, limit int) ([]float64, error) {
	_, live, liveNorm := e.pred.Serving()
	if live == nil {
		return nil, fmt.Errorf("server: cohort: no live model attached")
	}
	snap, nodes, raw, err := e.cohortRaw(ctx, limit)
	if err != nil || len(nodes) == 0 {
		return nil, err
	}
	return e.scoreWith(snap, nodes, raw, live, liveNorm), nil
}
