package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"turbo/internal/feature"
	"turbo/internal/gnn"
)

func TestModelManagerSwapChangesPredictions(t *testing.T) {
	_, pred := newTestStack(t)
	before, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	dim := 2 + feature.NumStatFeatures()
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		// A differently seeded model stands in for a daily retrain.
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 99}), nil, nil
	})
	if err := mgr.RetrainOnce(); err != nil {
		t.Fatal(err)
	}
	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability == after.Probability {
		t.Fatal("swap did not change the serving model")
	}
	retrains, swap, lastErr := mgr.Status()
	if retrains != 1 || swap.IsZero() || lastErr != nil {
		t.Fatalf("status %d %v %v", retrains, swap, lastErr)
	}
}

func TestModelManagerKeepsOldModelOnError(t *testing.T) {
	_, pred := newTestStack(t)
	before, _ := pred.Predict(1, t0.Add(time.Hour))
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return nil, nil, errors.New("training data unavailable")
	})
	if err := mgr.RetrainOnce(); err == nil {
		t.Fatal("expected retrain error")
	}
	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability != after.Probability {
		t.Fatal("failed retrain must not change the serving model")
	}
	if _, _, lastErr := mgr.Status(); lastErr == nil {
		t.Fatal("error not recorded")
	}
}

func TestModelManagerRunLoop(t *testing.T) {
	_, pred := newTestStack(t)
	dim := 2 + feature.NumStatFeatures()
	calls := make(chan struct{}, 10)
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		calls <- struct{}{}
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{2}, MLPHidden: 2}), nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		mgr.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	// Wait for at least two retrains, then stop.
	for i := 0; i < 2; i++ {
		select {
		case <-calls:
		case <-time.After(2 * time.Second):
			t.Fatal("retrain loop did not fire")
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

func TestConcurrentPredictDuringSwap(t *testing.T) {
	_, pred := newTestStack(t)
	dim := 2 + feature.NumStatFeatures()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
				if _, err := pred.Predict(1, t0.Add(time.Hour)); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		pred.SwapModel(gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{2}, MLPHidden: 2, Seed: uint64(i + 1)}), nil)
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Fatalf("predict during swap: %v", err)
	}
}
