package server

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/persist"
)

func TestModelManagerSwapChangesPredictions(t *testing.T) {
	_, pred := newTestStack(t)
	before, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	dim := 2 + feature.NumStatFeatures()
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		// A differently seeded model stands in for a daily retrain.
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 99}), nil, nil
	})
	if err := mgr.RetrainOnce(); err != nil {
		t.Fatal(err)
	}
	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability == after.Probability {
		t.Fatal("swap did not change the serving model")
	}
	retrains, swap, lastErr := mgr.Status()
	if retrains != 1 || swap.IsZero() || lastErr != nil {
		t.Fatalf("status %d %v %v", retrains, swap, lastErr)
	}
}

func TestModelManagerKeepsOldModelOnError(t *testing.T) {
	_, pred := newTestStack(t)
	before, _ := pred.Predict(1, t0.Add(time.Hour))
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return nil, nil, errors.New("training data unavailable")
	})
	if err := mgr.RetrainOnce(); err == nil {
		t.Fatal("expected retrain error")
	}
	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability != after.Probability {
		t.Fatal("failed retrain must not change the serving model")
	}
	if _, _, lastErr := mgr.Status(); lastErr == nil {
		t.Fatal("error not recorded")
	}
}

func TestModelManagerRunLoop(t *testing.T) {
	_, pred := newTestStack(t)
	dim := 2 + feature.NumStatFeatures()
	calls := make(chan struct{}, 10)
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		calls <- struct{}{}
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{2}, MLPHidden: 2}), nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		mgr.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	// Wait for at least two retrains, then stop.
	for i := 0; i < 2; i++ {
		select {
		case <-calls:
		case <-time.After(2 * time.Second):
			t.Fatal("retrain loop did not fire")
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

func TestConcurrentPredictDuringSwap(t *testing.T) {
	_, pred := newTestStack(t)
	dim := 2 + feature.NumStatFeatures()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
				if _, err := pred.Predict(1, t0.Add(time.Hour)); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		pred.SwapModel(gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{2}, MLPHidden: 2, Seed: uint64(i + 1)}), nil)
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Fatalf("predict during swap: %v", err)
	}
}

func TestModelManagerRecoversFromPanickingTrain(t *testing.T) {
	_, pred := newTestStack(t)
	before, _ := pred.Predict(1, t0.Add(time.Hour))
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		panic("shape mismatch in experimental trainer")
	})
	err := mgr.RetrainOnce()
	if err == nil {
		t.Fatal("panicking TrainFunc must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %v does not mention the panic", err)
	}
	after, perr := pred.Predict(1, t0.Add(time.Hour))
	if perr != nil {
		t.Fatal(perr)
	}
	if before.Probability != after.Probability {
		t.Fatal("panicked retrain must not change the serving model")
	}
	retrains, _, lastErr := mgr.Status()
	if retrains != 0 || lastErr == nil {
		t.Fatalf("status after panic: retrains=%d lastErr=%v", retrains, lastErr)
	}
	// The loop survives: a later healthy retrain still lands.
	dim := 2 + feature.NumStatFeatures()
	mgr.train = func() (gnn.Model, func([]float64) []float64, error) {
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 7}), nil, nil
	}
	if err := mgr.RetrainOnce(); err != nil {
		t.Fatal(err)
	}
	if retrains, _, lastErr := mgr.Status(); retrains != 1 || lastErr != nil {
		t.Fatalf("recovery retrain not recorded: %d %v", retrains, lastErr)
	}
}

func TestModelManagerPersistsAcceptedRetrains(t *testing.T) {
	_, pred := newTestStack(t)
	store, err := persist.NewModelStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	dim := 2 + feature.NumStatFeatures()
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 3}), nil, nil
	})
	mgr.SetArtifacts(store, func() persist.Extras {
		return persist.Extras{NormMean: []float64{1}, NormStd: []float64{2}}
	})
	if err := mgr.RetrainOnce(); err != nil {
		t.Fatal(err)
	}
	lm, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if lm.Manifest.Kind != "graphsage" || lm.Manifest.Version != 1 {
		t.Fatalf("artifact manifest %+v", lm.Manifest)
	}
	if len(lm.NormMean) != 1 || lm.NormMean[0] != 1 {
		t.Fatalf("extras not persisted: %+v", lm.NormMean)
	}
}
