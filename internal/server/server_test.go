package server

import (
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/feature"
	"turbo/internal/gnn"
)

var t0 = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func mk(u behavior.UserID, typ behavior.Type, val string, offset time.Duration) behavior.Log {
	return behavior.Log{User: u, Type: typ, Value: val, Time: t0.Add(offset)}
}

// newTestStack wires a BN server, feature service and prediction server
// around a tiny trained GraphSAGE model. Users 1 and 2 share a device
// within an hour; user 3 is unrelated.
func newTestStack(t testing.TB) (*BNServer, *PredictionServer) {
	t.Helper()
	bnServer, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	logs := []behavior.Log{
		mk(1, behavior.DeviceID, "shared", 10*time.Minute),
		mk(2, behavior.DeviceID, "shared", 20*time.Minute),
		mk(3, behavior.IPv4, "lonely", 30*time.Minute),
	}
	bnServer.IngestBatch(logs)
	for u := behavior.UserID(1); u <= 3; u++ {
		bnServer.RegisterTransaction(u)
	}
	bnServer.Advance(t0.Add(2 * time.Hour))

	feats := feature.NewService(feature.Config{}, bnServer.Store())
	dim := 2 + feature.NumStatFeatures()
	for u := behavior.UserID(1); u <= 3; u++ {
		if err := feats.PutProfile(u, []float64{float64(u), 1}); err != nil {
			t.Fatal(err)
		}
	}
	model := gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 1})
	pred := NewPredictionServer(bnServer, feats, model, 0.5)
	return bnServer, pred
}

func TestBNServerBuildsEdgesFromIngest(t *testing.T) {
	bnServer, _ := newTestStack(t)
	g := bnServer.Graph()
	if g.EdgeWeight(0, 1, 2) == 0 {
		t.Fatal("shared device did not create an edge")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges %d want 1", g.NumEdges())
	}
}

func TestSampleFiltersToTransactionUsers(t *testing.T) {
	bnServer, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	bnServer.IngestBatch([]behavior.Log{
		mk(1, behavior.DeviceID, "d", time.Minute),
		mk(2, behavior.DeviceID, "d", 2*time.Minute), // no transaction
	})
	bnServer.RegisterTransaction(1)
	bnServer.Advance(t0.Add(2 * time.Hour))
	sg := bnServer.Sample(1)
	if sg.NumNodes() != 1 {
		t.Fatalf("non-transaction neighbor included: %d nodes", sg.NumNodes())
	}
	if bnServer.SamplingLatency.Count() != 1 {
		t.Fatal("sampling latency not recorded")
	}
}

func TestPredictEndToEnd(t *testing.T) {
	_, pred := newTestStack(t)
	p, err := pred.Predict(1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p.User != 1 || p.Probability < 0 || p.Probability > 1 {
		t.Fatalf("prediction %+v", p)
	}
	if p.SubgraphNodes < 2 {
		t.Fatalf("subgraph should include the device-sharing neighbor: %d", p.SubgraphNodes)
	}
	if p.TotalLatency <= 0 || p.SampleLatency < 0 || p.PredictLatency <= 0 {
		t.Fatalf("latency fields %+v", p)
	}
	sums := pred.LatencySummaries()
	for _, key := range []string{"sampling", "features", "predict", "total"} {
		if sums[key].Count == 0 {
			t.Fatalf("latency summary %q empty", key)
		}
	}
}

func TestPredictMissingFeaturesErrors(t *testing.T) {
	bnServer, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	bnServer.RegisterTransaction(9)
	feats := feature.NewService(feature.Config{}, bnServer.Store())
	model := gnn.NewGraphSAGE(gnn.Config{InDim: 2 + feature.NumStatFeatures(), Hidden: []int{2}, MLPHidden: 2})
	pred := NewPredictionServer(bnServer, feats, model, 0.5)
	if _, err := pred.Predict(9, t0); err == nil {
		t.Fatal("expected error for user without a stored profile")
	}
}

func TestPredictAppliesNormalizer(t *testing.T) {
	_, pred := newTestStack(t)
	p1, err := pred.Predict(3, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	pred.Normalizer = func(vec []float64) []float64 {
		out := make([]float64, len(vec))
		for i := range vec {
			out[i] = vec[i] * 100
		}
		return out
	}
	p2, err := pred.Predict(3, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Probability == p2.Probability {
		t.Fatal("normalizer had no effect on prediction")
	}
}

func TestThresholdControlsBlocking(t *testing.T) {
	_, pred := newTestStack(t)
	pred.Threshold = 0 // everything blocks
	p, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fraud {
		t.Fatal("threshold 0 must flag everything")
	}
	pred.Threshold = 1.1 // nothing blocks
	p, _ = pred.Predict(1, t0.Add(time.Hour))
	if p.Fraud {
		t.Fatal("threshold >1 must flag nothing")
	}
}
