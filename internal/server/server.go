// Package server implements the online anti-fraud stack of Fig. 2: a BN
// server that ingests behavior logs in real time and maintains the BN
// with scheduled window jobs, a feature service, and a prediction server
// that samples a computation subgraph, fetches features, and runs the
// HAG model — all behind an HTTP API. Per-module latencies are recorded
// for the §V / Fig. 8a response-time study.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/metrics"
	"turbo/internal/tensor"
)

// BNServer ingests logs and serves computation subgraphs. Writes (the
// scheduled window jobs) mutate the sharded live graph; the prediction
// read path serves from an immutable snapshot republished after every
// Advance tick, so sampling acquires no graph lock at all.
type BNServer struct {
	mu      sync.Mutex // serializes Advance (window-job scheduling)
	store   *behavior.Store
	builder *bn.Builder
	g       *graph.Graph
	snap    atomic.Pointer[graph.Snapshot]
	// txnMu guards hasTxn. hasTxn marks users with transactions; only
	// these belong to computation subgraphs (§III-A). The Sample filter
	// closure reads it concurrently with RegisterTransaction, so every
	// access takes txnMu.
	txnMu  sync.RWMutex
	hasTxn map[behavior.UserID]bool

	SampleHops      int
	MaxNeighbors    int
	SamplingLatency *metrics.LatencyRecorder
}

// NewBNServer builds a BN server anchored at t0.
func NewBNServer(cfg bn.Config, t0 time.Time) (*BNServer, error) {
	store := behavior.NewStore()
	g := graph.New(behavior.NumTypes)
	builder, err := bn.NewBuilder(cfg, store, g, t0)
	if err != nil {
		return nil, err
	}
	s := &BNServer{
		store:           store,
		builder:         builder,
		g:               g,
		hasTxn:          make(map[behavior.UserID]bool),
		SampleHops:      2,
		MaxNeighbors:    32,
		SamplingLatency: metrics.NewLatencyRecorder(),
	}
	s.snap.Store(g.Snapshot())
	return s, nil
}

// Ingest stores one behavior log. Edges materialize when the scheduled
// window jobs run (Advance), in parallel to prediction requests, so log
// ingestion never sits on the prediction path.
func (s *BNServer) Ingest(l behavior.Log) {
	s.store.Append(l)
}

// IngestBatch bulk-loads logs (e.g. a historical backfill).
func (s *BNServer) IngestBatch(logs []behavior.Log) {
	s.store.AppendBatch(logs)
}

// RegisterTransaction marks a user as having a transaction, making it
// eligible for computation subgraphs.
func (s *BNServer) RegisterTransaction(u behavior.UserID) {
	s.txnMu.Lock()
	s.hasTxn[u] = true
	s.txnMu.Unlock()
	s.g.AddNode(graph.NodeID(u))
}

// Advance runs all window jobs due by now (the periodic scheduler tick),
// republishes the read snapshot so subsequent predictions see the new
// epoch, and returns the number of epoch jobs executed.
func (s *BNServer) Advance(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := s.builder.Advance(now)
	s.snap.Store(s.g.Snapshot())
	return jobs
}

// Graph exposes the underlying live BN (shared; treat as read-mostly).
func (s *BNServer) Graph() *graph.Graph { return s.g }

// Snapshot returns the read snapshot predictions are currently served
// from (the epoch published by the last Advance).
func (s *BNServer) Snapshot() *graph.Snapshot { return s.snap.Load() }

// View returns the read view used to serve user u: normally the current
// lock-free snapshot; the live graph only when u was registered after
// the last Advance tick and is therefore not in the snapshot yet.
func (s *BNServer) View(u behavior.UserID) graph.GraphView {
	if snap := s.snap.Load(); snap != nil && snap.HasNode(graph.NodeID(u)) {
		return snap
	}
	return s.g
}

// Store exposes the log store (used by the feature service).
func (s *BNServer) Store() *behavior.Store { return s.store }

// Sample extracts the computation subgraph of user u, restricted to
// users with transactions, recording the sampling latency (Fig. 8a).
// When u is in the current snapshot (the steady state), sampling walks
// the immutable epoch and performs zero graph mutex acquisitions.
func (s *BNServer) Sample(u behavior.UserID) *graph.Subgraph {
	var sg *graph.Subgraph
	s.SamplingLatency.Time(func() {
		filter := func(n graph.NodeID) bool {
			s.txnMu.RLock()
			ok := s.hasTxn[behavior.UserID(n)]
			s.txnMu.RUnlock()
			return ok
		}
		sg = s.View(u).Sample(graph.NodeID(u), graph.SampleOptions{
			Hops:         s.SampleHops,
			MaxNeighbors: s.MaxNeighbors,
			Filter:       filter,
		})
	})
	return sg
}

// Prediction is the result of one audit request.
type Prediction struct {
	User          behavior.UserID `json:"user"`
	Probability   float64         `json:"probability"`
	Fraud         bool            `json:"fraud"`
	SubgraphNodes int             `json:"subgraph_nodes"`
	SubgraphEdges int             `json:"subgraph_edges"`

	SampleLatency  time.Duration `json:"sample_latency_ns"`
	FeatureLatency time.Duration `json:"feature_latency_ns"`
	PredictLatency time.Duration `json:"predict_latency_ns"`
	TotalLatency   time.Duration `json:"total_latency_ns"`
}

// PredictionServer runs the classification model over sampled subgraphs
// with features from the feature service. The model is hot-swappable by
// the ModelManager; swaps never block in-flight audits for long.
type PredictionServer struct {
	bn    *BNServer
	feats *feature.Service
	mu    sync.RWMutex
	model gnn.Model
	// Normalizer maps raw feature vectors to model inputs (z-scoring
	// fitted at training time). Nil means identity. Set it via SwapModel
	// or before serving.
	Normalizer func([]float64) []float64
	Threshold  float64

	FeatureLatency *metrics.LatencyRecorder
	PredictLatency *metrics.LatencyRecorder
	TotalLatency   *metrics.LatencyRecorder
}

// NewPredictionServer wires the three online modules together.
func NewPredictionServer(bnServer *BNServer, feats *feature.Service, model gnn.Model, threshold float64) *PredictionServer {
	return &PredictionServer{
		bn:             bnServer,
		feats:          feats,
		model:          model,
		Threshold:      threshold,
		FeatureLatency: metrics.NewLatencyRecorder(),
		PredictLatency: metrics.NewLatencyRecorder(),
		TotalLatency:   metrics.NewLatencyRecorder(),
	}
}

// SwapModel atomically replaces the serving model and normalizer (the
// model management module calls this after each offline retrain).
func (p *PredictionServer) SwapModel(m gnn.Model, normalizer func([]float64) []float64) {
	p.mu.Lock()
	p.model = m
	p.Normalizer = normalizer
	p.mu.Unlock()
}

// Predict serves one audit request end to end: subgraph sampling (BN
// server), feature retrieval (feature module), HAG inference (prediction
// server), mirroring the numbered flow of Fig. 2.
func (p *PredictionServer) Predict(u behavior.UserID, at time.Time) (Prediction, error) {
	p.mu.RLock()
	model, normalizer := p.model, p.Normalizer
	p.mu.RUnlock()
	start := time.Now()
	sg := p.bn.Sample(u)
	sampleDone := time.Now()

	n := sg.NumNodes()
	var x *tensor.Matrix
	var ferr error
	p.FeatureLatency.Time(func() {
		for i, node := range sg.Nodes {
			vec, err := p.feats.Vector(behavior.UserID(node), at)
			if err != nil {
				ferr = fmt.Errorf("server: features for node %d: %w", node, err)
				return
			}
			if normalizer != nil {
				vec = normalizer(vec)
			}
			if x == nil {
				x = tensor.New(n, len(vec))
			}
			copy(x.Row(i), vec)
		}
	})
	if ferr != nil {
		return Prediction{}, ferr
	}
	featDone := time.Now()

	var prob float64
	p.PredictLatency.Time(func() {
		batch := gnn.NewBatch(sg, x)
		prob = gnn.Score(model, batch)
	})
	end := time.Now()
	p.TotalLatency.Record(end.Sub(start))

	return Prediction{
		User:           u,
		Probability:    prob,
		Fraud:          prob >= p.Threshold,
		SubgraphNodes:  n,
		SubgraphEdges:  sg.NumEdges(),
		SampleLatency:  sampleDone.Sub(start),
		FeatureLatency: featDone.Sub(sampleDone),
		PredictLatency: end.Sub(featDone),
		TotalLatency:   end.Sub(start),
	}, nil
}

// LatencySummaries returns the §V digests of the three online modules
// plus the end-to-end pipeline.
func (p *PredictionServer) LatencySummaries() map[string]metrics.Summary {
	return map[string]metrics.Summary{
		"sampling": p.bn.SamplingLatency.Summarize(),
		"features": p.FeatureLatency.Summarize(),
		"predict":  p.PredictLatency.Summarize(),
		"total":    p.TotalLatency.Summarize(),
	}
}
