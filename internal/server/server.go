// Package server implements the online anti-fraud stack of Fig. 2: a BN
// server that ingests behavior logs in real time and maintains the BN
// with scheduled window jobs, a feature service, and a prediction server
// that samples a computation subgraph, fetches features, and runs the
// HAG model — all behind an HTTP API. Per-module latencies are recorded
// for the §V / Fig. 8a response-time study.
//
// The audit path is fault tolerant: every stage runs under an optional
// deadline, feature fetches are retried and guarded by a circuit
// breaker, and when the full path cannot answer in budget the prediction
// server walks a degradation ladder — full HAG → feature-only fallback
// model → cached last-known score or the prior — instead of failing the
// audit (see internal/resilience).
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/metrics"
	"turbo/internal/persist"
	"turbo/internal/resilience"
	"turbo/internal/store"
	"turbo/internal/telemetry"
	"turbo/internal/tensor"
)

// BNServer ingests logs and serves computation subgraphs. Writes (the
// scheduled window jobs) mutate the sharded live graph; the prediction
// read path serves from an immutable snapshot republished after every
// Advance tick, so sampling acquires no graph lock at all.
type BNServer struct {
	mu      sync.Mutex // serializes Advance (window-job scheduling)
	store   *behavior.Store
	builder *bn.Builder
	g       *graph.Graph
	snap    atomic.Pointer[graph.Snapshot]
	// txnMu guards hasTxn. hasTxn marks users with transactions; only
	// these belong to computation subgraphs (§III-A). The Sample filter
	// closure reads it concurrently with RegisterTransaction, so every
	// access takes txnMu.
	txnMu  sync.RWMutex
	hasTxn map[behavior.UserID]bool

	// viewWrap, when set, decorates the read view every Sample runs
	// against. The fault injector uses it to add latency and hangs to
	// the sampling path. Install with SetViewWrapper before serving.
	viewWrap func(graph.GraphView) graph.GraphView

	// tel, when set, receives ingest/advance pipeline metrics. Install
	// with SetTelemetry before serving. snapPublished is the wall-clock
	// publish time of the current snapshot (unix nanos) feeding the
	// snapshot-age gauge. lastStats (guarded by mu) tracks the builder
	// totals already mirrored into telemetry counters.
	tel           *Telemetry
	snapPublished atomic.Int64
	lastStats     bn.BuildStats

	// watermark is the event-time high-water mark (unix nanos) across
	// every ingested, replayed or restored log — the numerator of the
	// turbo_ingest_lag_seconds gauge. 0 until the first event.
	watermark atomic.Int64

	// journal, when set, write-ahead-logs every ingested event before it
	// is applied in memory, making the BN state recoverable after a
	// crash. Install with SetJournal before serving.
	journal *persist.Manager

	// prePublish, when set, runs on every freshly taken snapshot BEFORE
	// it is stored as the read snapshot. The embed engine hooks it to
	// flush pending edge-delta dirty marks (mark-before-publish): a
	// reader can never observe a snapshot whose deltas have not yet been
	// reflected in the embedding dirty set. Install with SetPrePublish
	// before serving.
	prePublish func(*graph.Snapshot)

	SampleHops      int
	MaxNeighbors    int
	SamplingLatency *metrics.LatencyRecorder
}

// NewBNServer builds a BN server anchored at t0.
func NewBNServer(cfg bn.Config, t0 time.Time) (*BNServer, error) {
	store := behavior.NewStore()
	g := graph.New(behavior.NumTypes)
	builder, err := bn.NewBuilder(cfg, store, g, t0)
	if err != nil {
		return nil, err
	}
	s := &BNServer{
		store:           store,
		builder:         builder,
		g:               g,
		hasTxn:          make(map[behavior.UserID]bool),
		SampleHops:      2,
		MaxNeighbors:    32,
		SamplingLatency: metrics.NewLatencyRecorder(),
	}
	s.snap.Store(g.Snapshot())
	s.snapPublished.Store(time.Now().UnixNano())
	return s, nil
}

// SetTelemetry installs the shared telemetry layer and registers the
// scrape-time BN gauges (snapshot age, shard skew). Call before serving;
// installation is not synchronized with in-flight requests.
func (s *BNServer) SetTelemetry(tel *Telemetry) {
	s.tel = tel
	tel.RegisterBNGauges(
		func() float64 {
			ns := s.snapPublished.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		},
		s.g.ShardSkew,
	)
	tel.RegisterIngestLagGauges(
		// Ingest lag: wall clock minus the event-time watermark. 0 before
		// the first event; clamped at 0 for future-stamped events.
		func() float64 {
			ns := s.watermark.Load()
			if ns == 0 {
				return 0
			}
			if lag := time.Since(time.Unix(0, ns)).Seconds(); lag > 0 {
				return lag
			}
			return 0
		},
		// Build lag: event-time distance between the watermark and the
		// builder's processed-through frontier — how far edge
		// materialization trails ingestion. 0 before the first event.
		func() float64 {
			ns := s.watermark.Load()
			if ns == 0 {
				return 0
			}
			if lag := time.Unix(0, ns).Sub(s.builder.ProcessedThrough()).Seconds(); lag > 0 {
				return lag
			}
			return 0
		},
	)
}

// Telemetry returns the installed telemetry layer (nil before
// SetTelemetry).
func (s *BNServer) Telemetry() *Telemetry { return s.tel }

// SetJournal installs the durable-state manager: every subsequent
// Ingest/IngestBatch/RegisterTransaction is write-ahead-logged before it
// is applied in memory, and the manager's checkpoints capture this
// server's full state. Call before serving; installation is not
// synchronized with in-flight ingests.
func (s *BNServer) SetJournal(j *persist.Manager) {
	s.journal = j
	if j != nil {
		j.SetSource(s.captureState)
	}
}

// Journal returns the installed durable-state manager (nil when the
// server runs memory-only).
func (s *BNServer) Journal() *persist.Manager { return s.journal }

// Ingest stores one behavior log. Edges materialize when the scheduled
// window jobs run (Advance), in parallel to prediction requests, so log
// ingestion never sits on the prediction path. With a journal installed
// the log is write-ahead-logged first; a WAL failure costs that event's
// durability, never its ingestion.
func (s *BNServer) Ingest(l behavior.Log) {
	if s.journal != nil {
		s.journal.AppendLog(l, func() { s.applyLog(l) })
		return
	}
	s.applyLog(l)
}

// IngestBatch bulk-loads logs (e.g. a historical backfill).
func (s *BNServer) IngestBatch(logs []behavior.Log) {
	if s.journal != nil {
		s.journal.AppendLogBatch(logs, func() { s.applyLogBatch(logs) })
		return
	}
	s.applyLogBatch(logs)
}

// RegisterTransaction marks a user as having a transaction, making it
// eligible for computation subgraphs.
func (s *BNServer) RegisterTransaction(u behavior.UserID) {
	if s.journal != nil {
		s.journal.AppendTxn(u, func() { s.applyTxn(u) })
		return
	}
	s.applyTxn(u)
}

// applyLog is the in-memory half of Ingest.
func (s *BNServer) applyLog(l behavior.Log) {
	s.store.Append(l)
	s.noteEvent(l.Time)
	s.tel.IngestedLogs(1)
}

// applyLogBatch is the in-memory half of IngestBatch.
func (s *BNServer) applyLogBatch(logs []behavior.Log) {
	s.store.AppendBatch(logs)
	s.noteEventBatch(logs)
	s.tel.IngestedLogs(len(logs))
}

// noteEvent advances the event-time watermark to t if newer (CAS-max:
// batches and replays may arrive out of event order).
func (s *BNServer) noteEvent(t time.Time) {
	ns := t.UnixNano()
	for {
		cur := s.watermark.Load()
		if ns <= cur || s.watermark.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// noteEventBatch advances the watermark past every log in one CAS-max.
func (s *BNServer) noteEventBatch(logs []behavior.Log) {
	var newest time.Time
	for _, l := range logs {
		if l.Time.After(newest) {
			newest = l.Time
		}
	}
	if !newest.IsZero() {
		s.noteEvent(newest)
	}
}

// EventWatermark returns the newest event time seen by ingestion (zero
// before the first event) — the freshness anchor of the ingest-lag
// gauge.
func (s *BNServer) EventWatermark() time.Time {
	ns := s.watermark.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// applyTxn is the in-memory half of RegisterTransaction.
func (s *BNServer) applyTxn(u behavior.UserID) {
	s.txnMu.Lock()
	s.hasTxn[u] = true
	s.txnMu.Unlock()
	s.g.AddNode(graph.NodeID(u))
}

// captureState gathers the server's full state for a checkpoint. It runs
// under the journal's append lock (no event can land mid-capture) and
// additionally takes s.mu so no Advance is in flight: the captured
// graph, window cursors and log store are one consistent cut.
func (s *BNServer) captureState() *persist.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txnMu.RLock()
	users := make([]behavior.UserID, 0, len(s.hasTxn))
	for u := range s.hasTxn {
		users = append(users, u)
	}
	s.txnMu.RUnlock()
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return &persist.State{
		CapturedAt:   time.Now(),
		NumEdgeTypes: s.g.NumEdgeTypes(),
		Nodes:        s.g.Nodes(),
		Edges:        s.g.Edges(),
		NextEpochs:   s.builder.NextEpochs(),
		TxnUsers:     users,
		Logs:         s.store.Dump(),
	}
}

// RestoreCheckpoint implements persist.Applier: it installs a checkpoint
// into this (fresh, boot-time) server. Each checkpointed edge carries
// its full accumulated weight, so a single AddEdgeWeight per edge
// reproduces the graph exactly.
func (s *BNServer) RestoreCheckpoint(st *persist.State) error {
	if st.NumEdgeTypes != s.g.NumEdgeTypes() {
		return fmt.Errorf("server: checkpoint has %d edge types, graph has %d",
			st.NumEdgeTypes, s.g.NumEdgeTypes())
	}
	if err := s.builder.RestoreNextEpochs(st.NextEpochs); err != nil {
		return err
	}
	for _, n := range st.Nodes {
		s.g.AddNode(n)
	}
	for _, e := range st.Edges {
		if err := s.g.AddEdgeWeight(e.Type, e.U, e.V, e.Weight, e.ExpireAt); err != nil {
			return fmt.Errorf("server: restore edge (%d,%d,%d): %w", e.Type, e.U, e.V, err)
		}
	}
	s.txnMu.Lock()
	for _, u := range st.TxnUsers {
		s.hasTxn[u] = true
	}
	s.txnMu.Unlock()
	s.store.AppendBatch(st.Logs)
	s.noteEventBatch(st.Logs)
	return nil
}

// ReplayLog implements persist.Applier: re-apply one WAL log record
// without re-journaling it (it is already on disk).
func (s *BNServer) ReplayLog(l behavior.Log) {
	s.store.Append(l)
	s.noteEvent(l.Time)
}

// ReplayTxn implements persist.Applier.
func (s *BNServer) ReplayTxn(u behavior.UserID) { s.applyTxn(u) }

// RefreshSnapshot republishes the read snapshot from the live graph
// (recovery mutates the graph without going through Advance).
func (s *BNServer) RefreshSnapshot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.g.Snapshot()
	if s.prePublish != nil {
		s.prePublish(snap)
	}
	s.snap.Store(snap)
	s.snapPublished.Store(time.Now().UnixNano())
}

// SetPrePublish installs a hook invoked on every new snapshot before it
// becomes the read snapshot (nil removes it). Call before serving;
// installation is not synchronized with in-flight Advances.
func (s *BNServer) SetPrePublish(fn func(*graph.Snapshot)) { s.prePublish = fn }

// Recover rebuilds this server from the installed journal — newest valid
// checkpoint plus WAL tail — and republishes the read snapshot. It must
// run on a fresh server before any ingestion or Advance.
func (s *BNServer) Recover() (persist.RecoveryStats, error) {
	if s.journal == nil {
		return persist.RecoveryStats{}, fmt.Errorf("server: no journal installed")
	}
	rs, err := s.journal.Recover(s)
	if err != nil {
		return rs, err
	}
	s.RefreshSnapshot()
	return rs, nil
}

// Advance runs all window jobs due by now (the periodic scheduler tick),
// republishes the read snapshot so subsequent predictions see the new
// epoch, and returns the number of epoch jobs executed.
func (s *BNServer) Advance(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := s.builder.Advance(now)
	snap := s.g.Snapshot()
	if s.prePublish != nil {
		s.prePublish(snap)
	}
	s.snap.Store(snap)
	s.snapPublished.Store(time.Now().UnixNano())
	if s.tel != nil {
		st := s.builder.Stats()
		stats := snap.Stats()
		s.tel.AdvanceStats(
			st.Jobs-s.lastStats.Jobs,
			st.EdgeUpdates-s.lastStats.EdgeUpdates,
			st.Pruned-s.lastStats.Pruned,
			stats.Nodes, stats.Edges, snap.Epoch())
		s.lastStats = st
	}
	return jobs
}

// Graph exposes the underlying live BN (shared; treat as read-mostly).
func (s *BNServer) Graph() *graph.Graph { return s.g }

// Snapshot returns the read snapshot predictions are currently served
// from (the epoch published by the last Advance).
func (s *BNServer) Snapshot() *graph.Snapshot { return s.snap.Load() }

// View returns the read view used to serve user u: normally the current
// lock-free snapshot; the live graph only when u was registered after
// the last Advance tick and is therefore not in the snapshot yet.
func (s *BNServer) View(u behavior.UserID) graph.GraphView {
	if snap := s.snap.Load(); snap != nil && snap.HasNode(graph.NodeID(u)) {
		return snap
	}
	return s.g
}

// SetViewWrapper installs a decorator applied to the read view on the
// sampling path (nil removes it). Call before serving: installation is
// not synchronized with in-flight samples.
func (s *BNServer) SetViewWrapper(w func(graph.GraphView) graph.GraphView) { s.viewWrap = w }

// Store exposes the log store (used by the feature service).
func (s *BNServer) Store() *behavior.Store { return s.store }

// TxnFilter returns the audit-eligibility filter — users with a
// registered transaction (§III-A). The closure is safe for concurrent
// use; the sweep engine applies it to the full snapshot node set the
// same way Sample applies it to a neighborhood.
func (s *BNServer) TxnFilter() func(graph.NodeID) bool {
	return func(n graph.NodeID) bool {
		s.txnMu.RLock()
		ok := s.hasTxn[behavior.UserID(n)]
		s.txnMu.RUnlock()
		return ok
	}
}

// Sample extracts the computation subgraph of user u, restricted to
// users with transactions, recording the sampling latency (Fig. 8a).
// When u is in the current snapshot (the steady state), sampling walks
// the immutable epoch and performs zero graph mutex acquisitions.
func (s *BNServer) Sample(u behavior.UserID) *graph.Subgraph {
	var sg *graph.Subgraph
	s.SamplingLatency.Time(func() {
		filter := s.TxnFilter()
		view := s.View(u)
		if s.viewWrap != nil {
			view = s.viewWrap(view)
		}
		sg = view.Sample(graph.NodeID(u), graph.SampleOptions{
			Hops:         s.SampleHops,
			MaxNeighbors: s.MaxNeighbors,
			Filter:       filter,
		})
	})
	return sg
}

// SampleCtx is Sample under a deadline. When ctx cannot expire it runs
// inline; otherwise sampling runs in a goroutine and SampleCtx returns
// ctx.Err() as soon as the deadline fires, leaving the (possibly hung)
// sample to finish in the background — slow graph reads cost the audit
// its sampling budget, never the whole request.
func (s *BNServer) SampleCtx(ctx context.Context, u behavior.UserID) (*graph.Subgraph, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("server: sampling user %d: %w", u, err)
	}
	if ctx.Done() == nil {
		return s.Sample(u), nil
	}
	ch := make(chan *graph.Subgraph, 1)
	go func() { ch <- s.Sample(u) }()
	select {
	case sg := <-ch:
		return sg, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("server: sampling user %d: %w", u, ctx.Err())
	}
}

// Serving tiers of the degradation ladder, reported in
// Prediction.ServedBy and counted per audit.
const (
	// TierEmbed is the lambda tier above TierFull: final aggregation
	// layer over precomputed penultimate embeddings, served only when
	// the target's whole aggregation star is clean for the live model.
	TierEmbed = "embed"
	// TierFull is the healthy path: HAG over the sampled subgraph.
	TierFull = "hag"
	// TierFallback is the feature-only fallback model over the target
	// user's own vector (sampling or the feature fan-out failed).
	TierFallback = "fallback"
	// TierCache is the last-known score of the user (total feature
	// outage, but the user was scored before).
	TierCache = "cache"
	// TierPrior is the configured prior probability (total feature
	// outage, never-scored user).
	TierPrior = "prior"
)

// ErrUnknownUser marks an audit of a user the feature store has no
// profile for; the HTTP layer maps it to 404. Degraded tiers are not
// consulted: no tier can say anything about a user that does not exist.
var ErrUnknownUser = errors.New("server: unknown user")

// Prediction is the result of one audit request.
type Prediction struct {
	User          behavior.UserID `json:"user"`
	Probability   float64         `json:"probability"`
	Fraud         bool            `json:"fraud"`
	SubgraphNodes int             `json:"subgraph_nodes"`
	SubgraphEdges int             `json:"subgraph_edges"`

	// ServedBy names the degradation-ladder tier that produced the
	// score; Degraded is true for every tier below TierFull.
	ServedBy string `json:"served_by"`
	Degraded bool   `json:"degraded"`

	SampleLatency  time.Duration `json:"sample_latency_ns"`
	FeatureLatency time.Duration `json:"feature_latency_ns"`
	PredictLatency time.Duration `json:"predict_latency_ns"`
	TotalLatency   time.Duration `json:"total_latency_ns"`
}

// StageDeadlines bounds each stage of the audit path. Zero fields mean
// no deadline for that stage; Total additionally caps the whole audit.
type StageDeadlines struct {
	Sample  time.Duration
	Feature time.Duration
	Score   time.Duration
	Total   time.Duration
}

// Fallback is the feature-only model of the degradation ladder: a
// baselines.Classifier-style scorer over normalized feature rows (LR or
// GBDT trained offline alongside HAG).
type Fallback interface {
	PredictProba(x *tensor.Matrix) []float64
}

// PredictionServer runs the classification model over sampled subgraphs
// with features from the feature service. The model is hot-swappable by
// the ModelManager; swaps never block in-flight audits for long.
//
// The exported resilience knobs (Breaker, Retry, Admission, Deadlines,
// Fallback, Prior) are read on every audit; configure them before
// serving.
type PredictionServer struct {
	bn    *BNServer
	mu    sync.RWMutex
	feats feature.Source
	model gnn.Model
	// Normalizer maps raw feature vectors to model inputs (z-scoring
	// fitted at training time). Nil means identity. Set it via SwapModel
	// or before serving.
	Normalizer func([]float64) []float64
	Threshold  float64

	// Breaker guards the feature service: after FailureThreshold
	// consecutive failures the fan-out fails fast until the cool-down
	// elapses. Nil disables breaking.
	Breaker *resilience.Breaker
	// Retry bounds per-vector retries for transient feature errors.
	Retry resilience.RetryConfig
	// Admission caps concurrent audits; excess load is shed with
	// resilience.ErrOverloaded (HTTP 429). Nil means unbounded.
	Admission *resilience.Admission
	// Deadlines are the per-stage audit budgets.
	Deadlines StageDeadlines
	// Fallback is the feature-only tier-2 model; nil skips that tier.
	Fallback Fallback
	// Prior is the tier-3 score for users with no cached score (the base
	// fraud rate). NewPredictionServer sets 0.05.
	Prior float64
	// Embed, when set, is the lambda serving tier consulted before the
	// full sampled-subgraph path: score from precomputed penultimate
	// embeddings when the target's neighborhood is clean, fall through
	// otherwise. NewEmbedEngine installs it.
	Embed *EmbedEngine
	// FanoutWorkers bounds the concurrent feature fetches of one audit's
	// fan-out. 0 is adaptive: sequential below serialFanoutThreshold
	// nodes (goroutine spawn + synchronization dominates in-process
	// fetches at typical subgraph sizes), min(8, GOMAXPROCS) workers
	// above it. 1 forces the sequential fan-out. Every fetch keeps its
	// full breaker/retry/deadline semantics regardless of the setting.
	FanoutWorkers int

	// Served counts audits by serving tier, plus "degraded", "shed" and
	// "unknown" outcomes. It is backed by the telemetry registry's
	// turbo_audit_outcomes_total family, so /stats and /metrics report
	// the same counts.
	Served *metrics.CounterSet

	// Tel is the shared telemetry layer (registry, stage histograms,
	// audit tracer). NewPredictionServer adopts the BN server's layer or
	// creates one; never nil afterwards, but all uses are nil-safe.
	Tel *Telemetry

	// lastMu guards the tier-3 cache and its version tag. lastVersion is
	// the artifact version the cached scores were computed under; a model
	// swap or rollback drops the cache so a feature outage never serves
	// scores from a retired model. maxVersion tracks the highest version
	// ever seen so synthetic bumps (swaps without an artifact store)
	// never collide with a real artifact version.
	lastMu      sync.RWMutex
	last        map[behavior.UserID]float64 // last-known scores (tier 3)
	lastVersion int
	maxVersion  int

	// fanoutInFlight counts feature fetches currently in flight across
	// all audits, exposed as turbo_feature_fanout_inflight.
	fanoutInFlight atomic.Int64

	// f32Enabled flips the opt-in float32 scoring path; f32Gate is the
	// per-model tolerance validation ConfigureF32 installed, re-run on
	// every SwapModel. Gate failure falls the server back to float64.
	f32Enabled atomic.Bool
	f32Gate    func(m gnn.Model) (maxDelta float64, ok bool)

	FeatureLatency *metrics.LatencyRecorder
	PredictLatency *metrics.LatencyRecorder
	TotalLatency   *metrics.LatencyRecorder
}

// NewPredictionServer wires the three online modules together with the
// default resilience posture: retries on, breaker on with defaults, no
// admission cap, no deadlines, no fallback model. With a healthy feature
// service the audit path is identical to the resilience-free pipeline.
func NewPredictionServer(bnServer *BNServer, feats feature.Source, model gnn.Model, threshold float64) *PredictionServer {
	tel := bnServer.Telemetry()
	if tel == nil {
		tel = NewTelemetry(TelemetryOptions{})
		bnServer.SetTelemetry(tel)
	}
	p := &PredictionServer{
		bn:        bnServer,
		feats:     feats,
		model:     model,
		Threshold: threshold,
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			OnStateChange: tel.BreakerHook(),
		}),
		Retry:          resilience.RetryConfig{Attempts: 2, BaseDelay: 5 * time.Millisecond},
		Prior:          0.05,
		Served:         metrics.NewCounterSetVec(tel.Outcomes()),
		Tel:            tel,
		last:           make(map[behavior.UserID]float64),
		FeatureLatency: metrics.NewLatencyRecorder(),
		PredictLatency: metrics.NewLatencyRecorder(),
		TotalLatency:   metrics.NewLatencyRecorder(),
	}
	tel.RegisterBreakerGauge(func() float64 {
		if p.Breaker == nil {
			return -1
		}
		return float64(p.Breaker.State())
	})
	tel.RegisterFanoutGauge(func() float64 {
		return float64(p.fanoutInFlight.Load())
	})
	tel.RegisterAdmissionGauges(
		func() float64 { return float64(p.Admission.InFlight()) },
		func() float64 {
			if p.Admission == nil {
				return -1
			}
			return float64(p.Admission.Cap())
		},
		func() float64 { return p.Admission.Occupancy() },
	)
	return p
}

// defaultFanoutWorkers is the worker count for large adaptive fan-outs:
// enough parallelism to hide feature-store latency without letting one
// audit monopolize the scheduler.
func defaultFanoutWorkers() int {
	if w := runtime.GOMAXPROCS(0); w < 8 {
		return w
	}
	return 8
}

// serialFanoutThreshold is the subgraph size below which the adaptive
// fan-out (FanoutWorkers=0) stays sequential. Against the in-process
// feature service, the worker pool's spawn/synchronization overhead
// makes the parallel path ~2× slower than the serial loop at typical
// subgraph sizes (see BENCH_infer.json); parallelism only pays once a
// fan-out is large or the per-fetch latency is real network latency
// (set FanoutWorkers explicitly for the latter).
const serialFanoutThreshold = 32

// fanoutWorkerCount resolves the worker count for one fan-out over n
// nodes: an explicit FanoutWorkers is honored (clamped to n), 0 adapts
// by subgraph size.
func (p *PredictionServer) fanoutWorkerCount(n int) int {
	workers := p.FanoutWorkers
	if workers <= 0 {
		if n < serialFanoutThreshold {
			return 1
		}
		workers = defaultFanoutWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// SwapModel atomically replaces the serving model and normalizer (the
// model management module calls this after each offline retrain). When
// the float32 path was configured, the new model is re-validated against
// the tolerance gate and f32 serving is disabled if it fails — a model
// that quantizes badly must not serve quantized.
func (p *PredictionServer) SwapModel(m gnn.Model, normalizer func([]float64) []float64) {
	p.mu.Lock()
	p.model = m
	p.Normalizer = normalizer
	gate := p.f32Gate
	p.mu.Unlock()
	// Every swap retires the previous model's cached scores and moves the
	// version tag to a never-before-used value; the model manager pins
	// the real artifact version right after (SetModelVersion).
	p.lastMu.Lock()
	p.maxVersion++
	p.lastVersion = p.maxVersion
	p.last = make(map[behavior.UserID]float64)
	p.lastMu.Unlock()
	if gate != nil {
		maxDelta, ok := gate(m)
		p.f32Enabled.Store(ok)
		if !ok {
			log.Printf("server: f32 gate failed on swapped model %s (max delta %.3g), serving float64", m.Name(), maxDelta)
		}
	}
}

// ConfigureF32 installs the float32 tolerance gate (typically a closure
// over gnn.ValidateF32 and a held-out validation batch) and runs it
// against the current model, enabling float32 scoring when it passes.
// It returns the gate's verdict. A nil validate disables the path.
func (p *PredictionServer) ConfigureF32(validate func(m gnn.Model) (maxDelta float64, ok bool)) (float64, bool) {
	p.mu.Lock()
	p.f32Gate = validate
	m := p.model
	p.mu.Unlock()
	if validate == nil || m == nil {
		p.f32Enabled.Store(false)
		return 0, false
	}
	maxDelta, ok := validate(m)
	p.f32Enabled.Store(ok)
	return maxDelta, ok
}

// F32Enabled reports whether audits currently score through the float32
// path.
func (p *PredictionServer) F32Enabled() bool { return p.f32Enabled.Load() }

// SetFeatureSource replaces the feature source (the fault injector wraps
// the real service through this).
func (p *PredictionServer) SetFeatureSource(src feature.Source) {
	p.mu.Lock()
	p.feats = src
	p.mu.Unlock()
}

// Serving returns the feature source, model and normalizer currently
// serving audits, as one consistent read (the same triple PredictCtx
// snapshots at the top of every audit).
func (p *PredictionServer) Serving() (feature.Source, gnn.Model, func([]float64) []float64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.feats, p.model, p.Normalizer
}

// RememberScores bulk-installs freshly computed scores into the
// last-known-score cache (tier 3 of the degradation ladder) under the
// current artifact version.
func (p *PredictionServer) RememberScores(users []behavior.UserID, probs []float64) {
	p.lastMu.Lock()
	for i, u := range users {
		p.last[u] = probs[i]
	}
	p.lastMu.Unlock()
}

// RememberScoresFor is RememberScores tagged with the artifact version
// the scores were computed under: if a swap or rollback moved the
// serving version while the sweep ran, the batch is dropped instead of
// poisoning the new model's cache with the old model's scores.
func (p *PredictionServer) RememberScoresFor(users []behavior.UserID, probs []float64, version int) {
	p.lastMu.Lock()
	defer p.lastMu.Unlock()
	if version != p.lastVersion {
		return
	}
	for i, u := range users {
		p.last[u] = probs[i]
	}
}

// SetModelVersion pins the serving artifact version (the model manager
// calls it after each accepted swap, rollback, or boot load). A version
// change drops the tier-3 cache — its scores belong to the previous
// artifact.
func (p *PredictionServer) SetModelVersion(v int) {
	p.lastMu.Lock()
	if v != p.lastVersion {
		p.lastVersion = v
		p.last = make(map[behavior.UserID]float64)
	}
	if v > p.maxVersion {
		p.maxVersion = v
	}
	p.lastMu.Unlock()
}

// ModelVersion returns the serving artifact version tag. Engines
// snapshot it before a long scoring pass and hand it back through
// RememberScoresFor / embed.Build so stale batches are rejected.
func (p *PredictionServer) ModelVersion() int {
	p.lastMu.RLock()
	defer p.lastMu.RUnlock()
	return p.lastVersion
}

// ModelLoaded reports whether a serving model is attached (readiness).
func (p *PredictionServer) ModelLoaded() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.model != nil
}

// BreakerState names the breaker state for /readyz and /stats
// ("disabled" when no breaker is configured).
func (p *PredictionServer) BreakerState() string {
	if p.Breaker == nil {
		return "disabled"
	}
	return p.Breaker.State().String()
}

// ServedCounts returns the per-tier audit counters.
func (p *PredictionServer) ServedCounts() map[string]int64 { return p.Served.Snapshot() }

// Predict serves one audit request with no caller deadline.
func (p *PredictionServer) Predict(u behavior.UserID, at time.Time) (Prediction, error) {
	return p.PredictCtx(context.Background(), u, at)
}

// PredictCtx serves one audit request end to end: subgraph sampling (BN
// server), feature retrieval (feature module), HAG inference (prediction
// server), mirroring the numbered flow of Fig. 2. Under partial failure
// it degrades tier by tier instead of erroring:
//
//	tier 1 (TierFull):     HAG over the sampled subgraph
//	tier 2 (TierFallback): feature-only model over the target's vector,
//	                       when sampling or the feature fan-out timed
//	                       out, errored, or hit an open breaker
//	tier 3 (TierCache /    the user's last-known score, or the prior —
//	        TierPrior):    total feature outage
//
// Only two conditions surface as errors: ErrUnknownUser (no profile
// exists for u) and resilience.ErrOverloaded (admission shed the audit).
func (p *PredictionServer) PredictCtx(ctx context.Context, u behavior.UserID, at time.Time) (Prediction, error) {
	ctx, trace := p.Tel.StartTrace(ctx, uint64(u))
	defer func() {
		trace.SetBreaker(p.BreakerState())
		p.Tel.FinishTrace(trace)
	}()
	if p.Admission != nil {
		if !p.Admission.TryAcquire() {
			p.Served.Inc("shed")
			err := fmt.Errorf("server: audit of user %d: %w", u, resilience.ErrOverloaded)
			trace.SetTier("shed", false)
			trace.SetError(err)
			return Prediction{}, err
		}
		defer p.Admission.Release()
	}
	if p.Deadlines.Total > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadlines.Total)
		defer cancel()
	}
	p.mu.RLock()
	feats, model, normalizer := p.feats, p.model, p.Normalizer
	p.mu.RUnlock()

	start := time.Now()
	if p.Embed != nil && model != nil {
		if pred, ok := p.Embed.TryPredict(u, model, p.Threshold); ok {
			p.finish(&pred, u, start, true)
			trace.SetTier(pred.ServedBy, pred.Degraded)
			return pred, nil
		}
	}
	pred, err := p.predictFull(ctx, feats, model, normalizer, u, at)
	if err == nil {
		p.finish(&pred, u, start, true)
		trace.SetTier(pred.ServedBy, pred.Degraded)
		return pred, nil
	}
	if errors.Is(err, ErrUnknownUser) {
		p.Served.Inc("unknown")
		trace.SetTier("unknown", false)
		trace.SetError(err)
		return Prediction{}, err
	}

	pred, ferr := p.predictFallback(ctx, feats, normalizer, u, at)
	if ferr == nil {
		p.finish(&pred, u, start, true)
		trace.SetTier(pred.ServedBy, pred.Degraded)
		return pred, nil
	}
	if errors.Is(ferr, ErrUnknownUser) {
		p.Served.Inc("unknown")
		trace.SetTier("unknown", false)
		trace.SetError(ferr)
		return Prediction{}, ferr
	}

	pred = p.predictStatic(u)
	p.finish(&pred, u, start, false)
	trace.SetTier(pred.ServedBy, pred.Degraded)
	return pred, nil
}

// finish stamps the end-to-end latency, bumps the tier counters and
// stage histogram, records the tier on the trace and, for genuinely
// computed scores, remembers the result for tier 3.
func (p *PredictionServer) finish(pred *Prediction, u behavior.UserID, start time.Time, remember bool) {
	pred.TotalLatency = time.Since(start)
	p.TotalLatency.Record(pred.TotalLatency)
	p.Tel.ObserveStage(StageTotal, pred.TotalLatency)
	p.Served.Inc(pred.ServedBy)
	if pred.Degraded {
		p.Served.Inc("degraded")
	}
	if remember {
		p.lastMu.Lock()
		p.last[u] = pred.Probability
		p.lastMu.Unlock()
	}
}

// fetchVector retrieves one user's feature vector through the breaker
// and the retry policy. A missing profile is a definitive answer, not a
// dependency failure: it is never retried and never trips the breaker.
func (p *PredictionServer) fetchVector(ctx context.Context, feats feature.Source, u behavior.UserID, at time.Time) ([]float64, error) {
	if p.Breaker != nil {
		if err := p.Breaker.Allow(); err != nil {
			return nil, err
		}
	}
	var vec []float64
	attempts := 0
	err := resilience.Retry(ctx, p.Retry, func(ctx context.Context) error {
		attempts++
		v, verr := feats.VectorCtx(ctx, u, at)
		if verr != nil {
			if errors.Is(verr, store.ErrNotFound) {
				return resilience.Permanent(verr)
			}
			return verr
		}
		vec = v
		return nil
	})
	if attempts > 1 {
		p.Tel.Retried(attempts - 1)
		telemetry.TraceFrom(ctx).AddRetries(attempts - 1)
	}
	if p.Breaker != nil {
		p.Breaker.Record(err == nil || errors.Is(err, store.ErrNotFound))
	}
	return vec, err
}

// fanoutError wraps a fetch failure the way the audit path reports it:
// a missing profile for the target user is ErrUnknownUser (HTTP 404),
// anything else names the failing node.
func fanoutError(node graph.NodeID, u behavior.UserID, verr error) error {
	if behavior.UserID(node) == u && errors.Is(verr, store.ErrNotFound) {
		return fmt.Errorf("%w %d: %v", ErrUnknownUser, u, verr)
	}
	return fmt.Errorf("server: features for node %d: %w", node, verr)
}

// fanoutFeatures fetches the feature vector of every subgraph node and
// assembles the pooled feature matrix (the caller returns it with
// tensor.PutMatrix). With FanoutWorkers > 1 the fetches run on a
// bounded worker pool; each individual fetch keeps the sequential
// path's breaker/retry/deadline semantics (fetchVector is unchanged),
// and the first hard error cancels the remaining fetches. Error
// reporting is deterministic under concurrency: a missing target
// profile always surfaces as ErrUnknownUser, and otherwise the
// lowest-indexed root-cause failure wins — cancellations induced by our
// own fail-fast never mask it.
func (p *PredictionServer) fanoutFeatures(ctx context.Context, feats feature.Source, normalizer func([]float64) []float64, sg *graph.Subgraph, u behavior.UserID, at time.Time) (*tensor.Matrix, error) {
	n := sg.NumNodes()
	workers := p.fanoutWorkerCount(n)
	if workers <= 1 {
		var x *tensor.Matrix
		for i, node := range sg.Nodes {
			p.fanoutInFlight.Add(1)
			vec, verr := p.fetchVector(ctx, feats, behavior.UserID(node), at)
			p.fanoutInFlight.Add(-1)
			if verr != nil {
				tensor.PutMatrix(x)
				return nil, fanoutError(node, u, verr)
			}
			if normalizer != nil {
				vec = normalizer(vec)
			}
			if x == nil {
				x = tensor.GetMatrix(n, len(vec))
			}
			copy(x.Row(i), vec)
		}
		return x, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	vecs := make([][]float64, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				p.fanoutInFlight.Add(1)
				vec, verr := p.fetchVector(cctx, feats, behavior.UserID(sg.Nodes[i]), at)
				p.fanoutInFlight.Add(-1)
				if verr != nil {
					errs[i] = verr
					failed.Store(true)
					cancel() // fail fast: abort in-flight sibling fetches
					return
				}
				if normalizer != nil {
					vec = normalizer(vec)
				}
				vecs[i] = vec
			}
		}()
	}
	wg.Wait()

	var firstErr error
	firstIdx := -1
	for i, e := range errs {
		if e == nil {
			continue
		}
		if behavior.UserID(sg.Nodes[i]) == u && errors.Is(e, store.ErrNotFound) {
			return nil, fanoutError(sg.Nodes[i], u, e)
		}
		if firstErr == nil ||
			(errors.Is(firstErr, context.Canceled) && !errors.Is(e, context.Canceled)) {
			firstErr, firstIdx = e, i
		}
	}
	if firstErr != nil {
		return nil, fanoutError(sg.Nodes[firstIdx], u, firstErr)
	}
	x := tensor.GetMatrix(n, len(vecs[0]))
	for i, v := range vecs {
		copy(x.Row(i), v)
	}
	return x, nil
}

// predictFull is tier 1: sample the computation subgraph, fan out the
// feature fetches, run the HAG model. Each stage honors its deadline.
func (p *PredictionServer) predictFull(ctx context.Context, feats feature.Source, model gnn.Model, normalizer func([]float64) []float64, u behavior.UserID, at time.Time) (Prediction, error) {
	if model == nil {
		return Prediction{}, fmt.Errorf("server: no model attached")
	}
	start := time.Now()
	sctx := ctx
	if p.Deadlines.Sample > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, p.Deadlines.Sample)
		defer cancel()
	}
	sg, err := p.bn.SampleCtx(sctx, u)
	sampleDone := time.Now()
	trace := telemetry.TraceFrom(ctx)
	trace.AddSpan(StageSample, start, sampleDone.Sub(start), telemetry.Outcome(err))
	p.Tel.ObserveStage(StageSample, sampleDone.Sub(start))
	if err != nil {
		return Prediction{}, err
	}

	fctx := ctx
	if p.Deadlines.Feature > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, p.Deadlines.Feature)
		defer cancel()
	}
	n := sg.NumNodes()
	var x *tensor.Matrix
	var ferr error
	p.FeatureLatency.Time(func() {
		x, ferr = p.fanoutFeatures(fctx, feats, normalizer, sg, u, at)
	})
	featDone := time.Now()
	trace.AddSpan(StageFeature, sampleDone, featDone.Sub(sampleDone), telemetry.Outcome(ferr))
	p.Tel.ObserveStage(StageFeature, featDone.Sub(sampleDone))
	if ferr != nil {
		return Prediction{}, ferr
	}

	var prob float64
	var serr error
	p.PredictLatency.Time(func() {
		scx := ctx
		if p.Deadlines.Score > 0 {
			var cancel context.CancelFunc
			scx, cancel = context.WithTimeout(ctx, p.Deadlines.Score)
			defer cancel()
		}
		batch := gnn.NewBatch(sg, x)
		scored := false
		if p.f32Enabled.Load() {
			if serr = scx.Err(); serr == nil {
				prob, scored = gnn.Score32(model, batch)
			}
		}
		if serr == nil && !scored {
			prob, serr = gnn.ScoreCtx(scx, model, batch)
		}
		batch.Release()
		tensor.PutMatrix(x)
	})
	end := time.Now()
	trace.AddSpan(StageScore, featDone, end.Sub(featDone), telemetry.Outcome(serr))
	p.Tel.ObserveStage(StageScore, end.Sub(featDone))
	if serr != nil {
		return Prediction{}, serr
	}
	p.Tel.ScoreMode(gnn.CanInfer(model))

	return Prediction{
		User:           u,
		Probability:    prob,
		Fraud:          prob >= p.Threshold,
		SubgraphNodes:  n,
		SubgraphEdges:  sg.NumEdges(),
		ServedBy:       TierFull,
		SampleLatency:  sampleDone.Sub(start),
		FeatureLatency: featDone.Sub(sampleDone),
		PredictLatency: end.Sub(featDone),
	}, nil
}

// predictFallback is tier 2: the feature-only fallback model over the
// target user's own vector, with a fresh feature-stage budget.
func (p *PredictionServer) predictFallback(ctx context.Context, feats feature.Source, normalizer func([]float64) []float64, u behavior.UserID, at time.Time) (Prediction, error) {
	fb := p.Fallback
	if fb == nil {
		return Prediction{}, fmt.Errorf("server: no fallback model")
	}
	fctx := ctx
	if p.Deadlines.Feature > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, p.Deadlines.Feature)
		defer cancel()
	}
	fstart := time.Now()
	vec, err := p.fetchVector(fctx, feats, u, at)
	featDone := time.Now()
	trace := telemetry.TraceFrom(ctx)
	trace.AddSpan(StageFeature, fstart, featDone.Sub(fstart), telemetry.Outcome(err))
	p.Tel.ObserveStage(StageFeature, featDone.Sub(fstart))
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return Prediction{}, fmt.Errorf("%w %d: %v", ErrUnknownUser, u, err)
		}
		return Prediction{}, fmt.Errorf("server: fallback features for user %d: %w", u, err)
	}
	if normalizer != nil {
		vec = normalizer(vec)
	}
	x := tensor.New(1, len(vec))
	copy(x.Row(0), vec)
	prob := fb.PredictProba(x)[0]
	trace.AddSpan(StageScore, featDone, time.Since(featDone), "ok")
	p.Tel.ObserveStage(StageScore, time.Since(featDone))
	return Prediction{
		User:           u,
		Probability:    prob,
		Fraud:          prob >= p.Threshold,
		ServedBy:       TierFallback,
		Degraded:       true,
		FeatureLatency: featDone.Sub(fstart),
		PredictLatency: time.Since(featDone),
	}, nil
}

// predictStatic is tier 3: no dependency is consulted at all. It serves
// the user's last-known score when one exists, otherwise the prior.
func (p *PredictionServer) predictStatic(u behavior.UserID) Prediction {
	p.lastMu.RLock()
	score, ok := p.last[u]
	p.lastMu.RUnlock()
	tier := TierCache
	if !ok {
		score = p.Prior
		tier = TierPrior
	}
	return Prediction{
		User:        u,
		Probability: score,
		Fraud:       score >= p.Threshold,
		ServedBy:    tier,
		Degraded:    true,
	}
}

// LatencySummaries returns the §V digests of the three online modules
// plus the end-to-end pipeline.
func (p *PredictionServer) LatencySummaries() map[string]metrics.Summary {
	return map[string]metrics.Summary{
		"sampling": p.bn.SamplingLatency.Summarize(),
		"features": p.FeatureLatency.Summarize(),
		"predict":  p.PredictLatency.Summarize(),
		"total":    p.TotalLatency.Summarize(),
	}
}
