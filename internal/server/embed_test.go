package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/feature"
	"turbo/internal/gnn"
)

// newEmbedStack is newTestStack with the lambda tier enabled and a
// fresh table built.
func newEmbedStack(t *testing.T) (*BNServer, *PredictionServer, *EmbedEngine) {
	t.Helper()
	bnServer, pred := newTestStack(t)
	eng := NewEmbedEngine(bnServer, pred)
	rep, err := eng.RebuildOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Servable || rep.Rows == 0 {
		t.Fatalf("rebuild not servable: %+v", rep)
	}
	return bnServer, pred, eng
}

// TestEmbedTierServesAndInvalidates walks the tier through its
// lifecycle on the real prediction path: clean audits serve from cached
// embeddings above the ladder, an edge delta published by Advance
// (mark-before-publish) demotes the affected neighborhoods to the full
// path, untouched users keep embed-serving, and one incremental refresh
// restores the tier.
func TestEmbedTierServesAndInvalidates(t *testing.T) {
	bnServer, pred, eng := newEmbedStack(t)
	at := t0.Add(3 * time.Hour)

	p, err := pred.PredictCtx(context.Background(), 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierEmbed {
		t.Fatalf("clean audit served by %q, want %q", p.ServedBy, TierEmbed)
	}
	if p.Degraded || p.Probability < 0 || p.Probability > 1 {
		t.Fatalf("embed prediction %+v", p)
	}

	// Users 1 and 2 share a new asset; the next Advance builds the edge
	// and must mark both neighborhoods before the snapshot publishes.
	bnServer.Ingest(mk(1, behavior.WiFiMAC, "home", 2*time.Hour+30*time.Minute))
	bnServer.Ingest(mk(2, behavior.WiFiMAC, "home", 2*time.Hour+40*time.Minute))
	bnServer.Advance(t0.Add(4 * time.Hour))
	if eng.Store().Table().DirtyCount() == 0 {
		t.Fatal("published edge deltas did not mark the table dirty")
	}

	p, err = pred.PredictCtx(context.Background(), 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy == TierEmbed {
		t.Fatalf("dirty neighborhood served from cached embeddings (%+v)", p)
	}
	// User 3 is outside the delta's ball and keeps embed-serving.
	p, err = pred.PredictCtx(context.Background(), 3, at)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierEmbed {
		t.Fatalf("unaffected user served by %q, want %q", p.ServedBy, TierEmbed)
	}

	rep := eng.RefreshOnce()
	if rep.Cleared == 0 || rep.Ball < rep.Dirty {
		t.Fatalf("refresh did not repair the dirty set: %+v", rep)
	}
	p, err = pred.PredictCtx(context.Background(), 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierEmbed {
		t.Fatalf("refreshed audit served by %q, want %q", p.ServedBy, TierEmbed)
	}
}

// TestRememberScoresVersionTagging pins the tier-3 cache contract: a
// batch tagged with a stale artifact version is dropped, a model swap
// clears the cache and retires the old tag, and pinning the new version
// re-opens it.
func TestRememberScoresVersionTagging(t *testing.T) {
	_, pred := newTestStack(t)
	cacheLen := func() int {
		pred.lastMu.Lock()
		defer pred.lastMu.Unlock()
		return len(pred.last)
	}

	pred.SetModelVersion(7)
	pred.RememberScoresFor([]behavior.UserID{1, 2}, []float64{0.4, 0.6}, 7)
	if cacheLen() != 2 {
		t.Fatalf("cache %d entries after matching-version install, want 2", cacheLen())
	}
	// A batch computed under an older artifact must not land.
	pred.RememberScoresFor([]behavior.UserID{3}, []float64{0.9}, 3)
	if cacheLen() != 2 {
		t.Fatalf("stale-version batch installed (%d entries)", cacheLen())
	}

	// Swap: cache emptied, tag 7 retired even before the manager pins
	// the new artifact version.
	dim := 2 + feature.NumStatFeatures()
	pred.SwapModel(gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 2}), nil)
	if cacheLen() != 0 {
		t.Fatalf("cache survived the swap (%d entries)", cacheLen())
	}
	pred.RememberScoresFor([]behavior.UserID{1}, []float64{0.5}, 7)
	if cacheLen() != 0 {
		t.Fatal("batch tagged with the pre-swap version installed after the swap")
	}

	// Rollback shape: restoring artifact 7 re-opens version-7 batches
	// (their scores were computed under exactly that artifact).
	pred.SetModelVersion(7)
	pred.RememberScoresFor([]behavior.UserID{1}, []float64{0.5}, 7)
	if cacheLen() != 1 {
		t.Fatalf("cache %d entries after rollback re-pin, want 1", cacheLen())
	}
}

// TestEmbedAdminAndStats covers the HTTP surface: /stats grows an embed
// section and POST /admin/embed/refresh runs an incremental refresh.
func TestEmbedAdminAndStats(t *testing.T) {
	bnServer, pred, eng := newEmbedStack(t)
	api := NewAPI(pred, bnServer)
	api.Embed = eng
	api.Admin.EmbedRefresh = func(ctx context.Context) (EmbedRefreshReport, error) {
		return eng.RefreshOnce(), nil
	}
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sec, ok := stats["embed"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing embed section: %v", stats)
	}
	if rows, _ := sec["rows"].(float64); rows != 3 {
		t.Fatalf("embed stats rows %v, want 3 (%v)", sec["rows"], sec)
	}

	resp, err = http.Post(srv.URL+"/admin/embed/refresh", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/embed/refresh status %d", resp.StatusCode)
	}
	var ref map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := ref["cleared"]; !ok {
		t.Fatalf("refresh report missing cleared: %v", ref)
	}

	// Method gate: GET is refused.
	resp, err = http.Get(srv.URL + "/admin/embed/refresh")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/embed/refresh status %d, want 405", resp.StatusCode)
	}
}
