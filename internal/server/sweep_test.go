package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/feature"
	"turbo/internal/gnn"
)

// TestSweepEngineRunOnce runs one full-graph re-score over the test
// stack and cross-checks it against the serving path: every
// audit-eligible user is scored, the last-known-score cache is filled,
// and each sweep score matches that user's tier-1 audit within 1e-12
// (the sweep is the same model over the same graph and features).
func TestSweepEngineRunOnce(t *testing.T) {
	bnServer, pred := newTestStack(t)
	eng := NewSweepEngine(bnServer, pred)
	rep, err := eng.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 3 || rep.Scored != 3 || rep.Skipped != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Fallback {
		t.Fatal("GraphSAGE should sweep, not fall back")
	}
	if rep.Workers < 1 || rep.Steps == 0 {
		t.Fatalf("report %+v", rep)
	}
	if last, ok := eng.LastReport(); !ok || last.Scored != 3 {
		t.Fatalf("last report %+v ok=%v", last, ok)
	}
	swept := make(map[behavior.UserID]float64)
	pred.lastMu.RLock()
	for u, s := range pred.last {
		swept[u] = s
	}
	pred.lastMu.RUnlock()
	if len(swept) != 3 {
		t.Fatalf("score cache has %d entries, want 3", len(swept))
	}
	for u := behavior.UserID(1); u <= 3; u++ {
		p, err := pred.Predict(u, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if p.ServedBy != TierFull {
			t.Fatalf("user %d served by %s", u, p.ServedBy)
		}
		if math.Abs(p.Probability-swept[u]) > 1e-12 {
			t.Fatalf("user %d: sweep %v vs audit %v", u, swept[u], p.Probability)
		}
	}
}

// TestSweepEngineSkipsMissingProfiles registers a transaction user with
// no feature profile: the sweep must skip (and count) it, not abort.
func TestSweepEngineSkipsMissingProfiles(t *testing.T) {
	bnServer, pred := newTestStack(t)
	bnServer.RegisterTransaction(9) // no profile stored
	bnServer.Advance(t0.Add(3 * time.Hour))
	eng := NewSweepEngine(bnServer, pred)
	rep, err := eng.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 4 || rep.Scored != 3 || rep.Skipped != 1 {
		t.Fatalf("report %+v", rep)
	}
}

// TestModelManagerResweep checks the retrain integration: an accepted
// swap triggers the installed resweep hook, so the score cache reflects
// the new model when RetrainOnce returns.
func TestModelManagerResweep(t *testing.T) {
	bnServer, pred := newTestStack(t)
	eng := NewSweepEngine(bnServer, pred)
	dim := 2 + feature.NumStatFeatures()
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return gnn.NewGraphSAGE(gnn.Config{InDim: dim, Hidden: []int{4}, MLPHidden: 2, Seed: 7}), nil, nil
	})
	mgr.SetResweep(func() {
		if _, err := eng.RunOnce(context.Background()); err != nil {
			t.Errorf("resweep: %v", err)
		}
	})
	if err := mgr.RetrainOnce(); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.LastReport()
	if !ok || rep.Scored != 3 {
		t.Fatalf("resweep did not run: %+v ok=%v", rep, ok)
	}
}

// TestHTTPAdminSweep exercises POST /admin/sweep and the sweep section
// of /stats, including the 503 when no hook is configured and the 405 on
// GET.
func TestHTTPAdminSweep(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	eng := NewSweepEngine(bnServer, pred)
	api.Sweep = eng
	api.Admin.Sweep = func(ctx context.Context) (SweepReport, error) { return eng.RunOnce(ctx) }
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/admin/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/sweep: status %d want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/admin/sweep", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var rep SweepReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Scored != 3 {
		t.Fatalf("POST /admin/sweep: status %d report %+v", resp.StatusCode, rep)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sweepSec, ok := stats["sweep"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing sweep section: %v", stats)
	}
	last, ok := sweepSec["last"].(map[string]any)
	if !ok || last["scored"].(float64) != 3 {
		t.Fatalf("sweep stats %v", sweepSec)
	}

	bare := NewAPI(pred, bnServer)
	bareSrv := httptest.NewServer(bare)
	defer bareSrv.Close()
	resp, err = http.Post(bareSrv.URL+"/admin/sweep", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured sweep: status %d want 503", resp.StatusCode)
	}
}
