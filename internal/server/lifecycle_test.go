package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/lifecycle"
	"turbo/internal/persist"
)

func testDim() int { return 2 + feature.NumStatFeatures() }

func sageModel(seed uint64) gnn.Model {
	return gnn.NewGraphSAGE(gnn.Config{InDim: testDim(), Hidden: []int{4}, MLPHidden: 2, Seed: seed})
}

// holdoutReturning builds a HoldoutFunc reporting fixed metrics.
func holdoutReturning(auc float64) HoldoutFunc {
	return func(gnn.Model, func([]float64) []float64) (*lifecycle.HoldoutReport, error) {
		return &lifecycle.HoldoutReport{Size: 100, AUC: auc, RecallAtPrecision: 1, PrecisionFloor: 0.8}, nil
	}
}

// TestGatedRetrainRejectQuarantines drives a degenerate candidate
// through the gate: the live model must keep serving bitwise-identical
// scores, the candidate must persist as a quarantined artifact with its
// reasons, no resweep fires, and a restart never auto-loads it.
func TestGatedRetrainRejectQuarantines(t *testing.T) {
	_, pred := newTestStack(t)
	store, err := persist.NewModelStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	feats, live, _ := pred.Serving()
	_ = feats
	if _, err := store.Save(live, persist.Extras{}); err != nil { // v1: the serving model
		t.Fatal(err)
	}

	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return sageModel(999), nil, nil // the "poisoned" retrain
	})
	mgr.SetArtifacts(store, nil)
	mgr.SetCurrentVersion(1)
	resweeps := 0
	mgr.SetResweep(func() { resweeps++ })
	mgr.EnableGate(GateOptions{
		Gate:    lifecycle.GateConfig{MinAUC: 0.8},
		Holdout: holdoutReturning(0.5012), // label-shuffled candidate: chance AUC
		Logf:    t.Logf,
	})

	before, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.RetrainOnceCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.Gated || rep.Verdict == nil || rep.Verdict.Accepted {
		t.Fatalf("degenerate candidate passed the gate: %+v", rep)
	}
	if len(rep.Verdict.Reasons) == 0 {
		t.Fatal("rejection carries no reasons")
	}
	if rep.Version != 2 {
		t.Fatalf("quarantined artifact version %d, want 2", rep.Version)
	}
	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability != after.Probability { // bitwise, not within-epsilon
		t.Fatalf("live scoring changed across a rejected candidate: %v != %v", before.Probability, after.Probability)
	}
	if resweeps != 0 {
		t.Fatalf("rejected candidate triggered %d resweeps, want 0", resweeps)
	}

	mans := store.List()
	if len(mans) != 2 || mans[1].Status != persist.StatusQuarantined || len(mans[1].Reasons) == 0 {
		t.Fatalf("quarantine lineage %+v", mans)
	}
	lm, err := store.LoadLatest() // a restart must boot the accepted v1
	if err != nil {
		t.Fatal(err)
	}
	if lm.Manifest.Version != 1 {
		t.Fatalf("boot after quarantine loaded v%d, want v1", lm.Manifest.Version)
	}

	ls := mgr.Lifecycle()
	if ls.Quarantined != 1 || ls.Retrains != 0 || !ls.GateEnabled {
		t.Fatalf("lifecycle status %+v", ls)
	}
	// The legacy error-returning entry point maps rejection to a typed error.
	if err := mgr.RetrainOnce(); !errors.Is(err, ErrCandidateRejected) {
		t.Fatalf("RetrainOnce err %v, want ErrCandidateRejected", err)
	}
}

// TestGatedRetrainAcceptSwaps verifies the accept path: swap, persist as
// accepted, resweep, and report the verdict.
func TestGatedRetrainAcceptSwaps(t *testing.T) {
	_, pred := newTestStack(t)
	store, err := persist.NewModelStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return sageModel(7), nil, nil
	})
	mgr.SetArtifacts(store, nil)
	resweeps := 0
	mgr.SetResweep(func() { resweeps++ })
	mgr.EnableGate(GateOptions{
		Gate:    lifecycle.GateConfig{MinAUC: 0.8, MinRecallAtPrecision: 0.5, PrecisionFloor: 0.8},
		Holdout: holdoutReturning(0.93),
		Logf:    t.Logf,
	})
	before, _ := pred.Predict(1, t0.Add(time.Hour))
	rep, err := mgr.RetrainOnceCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || !rep.Gated || rep.Verdict == nil || !rep.Verdict.Accepted || rep.Version != 1 {
		t.Fatalf("accept report %+v", rep)
	}
	after, _ := pred.Predict(1, t0.Add(time.Hour))
	if before.Probability == after.Probability {
		t.Fatal("accepted candidate did not swap in")
	}
	if resweeps != 1 {
		t.Fatalf("resweeps %d want 1", resweeps)
	}
	if mans := store.List(); len(mans) != 1 || !mans[0].Loadable() {
		t.Fatalf("accepted lineage %+v", mans)
	}
}

// TestGatedRetrainCohortShadow exercises the sweep-engine shadow pair: a
// candidate identical to the live model sails through a tight
// distribution gate, while a differently-seeded one trips the
// disagreement/shift bounds.
func TestGatedRetrainCohortShadow(t *testing.T) {
	bnServer, pred := newTestStack(t)
	eng := NewSweepEngine(bnServer, pred)
	_, live, _ := pred.Serving()

	mkMgr := func(cand gnn.Model, gate lifecycle.GateConfig) *ModelManager {
		mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
			return cand, nil, nil
		})
		mgr.EnableGate(GateOptions{Gate: gate, Engine: eng, Logf: t.Logf})
		return mgr
	}

	// Same weights → zero disagreement, zero shift.
	rep, err := mkMgr(live, lifecycle.GateConfig{MaxPSI: 0.05, MaxKS: 0.05, MaxDisagreement: 0.01, RequireCohort: true}).
		RetrainOnceCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Verdict.Report.Cohort == nil {
		t.Fatalf("identical candidate rejected: %+v reasons=%v", rep, rep.Verdict.Reasons)
	}
	if d := rep.Verdict.Report.Cohort.Disagreement; d != 0 {
		t.Fatalf("identical candidate disagreement %v, want 0", d)
	}

	// A fresh random model: force rejection with an impossibly tight KS
	// bound (any weight change moves some scores).
	rep, err = mkMgr(sageModel(424242), lifecycle.GateConfig{MaxKS: 1e-12, RequireCohort: true}).
		RetrainOnceCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("shifted candidate passed a 1e-12 KS gate: %+v", rep.Verdict.Report.Cohort)
	}
}

// TestAutoRollbackOnErrorRate forces a bad swap and drives failing
// audits through the prediction server until the monitor reinstalls the
// previous accepted artifact — bitwise — and marks the bad version
// rolled_back on disk.
func TestAutoRollbackOnErrorRate(t *testing.T) {
	_, pred := newTestStack(t)
	store, err := persist.NewModelStore(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	_, live, _ := pred.Serving()
	if _, err := store.Save(live, persist.Extras{}); err != nil { // v1 = known-good
		t.Fatal(err)
	}
	before, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return sageModel(666), nil, nil // the bad model
	})
	mgr.SetArtifacts(store, nil)
	mgr.SetCurrentVersion(1)
	mgr.SetNormBuilder(func(mean, std []float64) func([]float64) []float64 {
		return func(v []float64) []float64 { return v }
	})
	mgr.EnableGate(GateOptions{
		// No gate bounds: the bad swap goes through; only the monitor
		// stands between it and production.
		Monitor: lifecycle.MonitorConfig{
			Window:       5 * time.Second,
			Interval:     20 * time.Millisecond,
			MinAudits:    5,
			MaxErrorRate: 0.5,
		},
		Logf: t.Logf,
	})

	rep, err := mgr.RetrainOnceCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || !rep.Monitoring || rep.Version != 2 {
		t.Fatalf("bad swap report %+v", rep)
	}
	mon := mgr.Monitor()
	if mon == nil {
		t.Fatal("no monitor after accepted swap")
	}

	// Post-swap traffic: audits for an unregistered user fail, driving
	// the error rate to 1.0 — far past the 0.5 ceiling. Keep the traffic
	// flowing until the monitor reacts (its baseline is captured
	// asynchronously after the swap).
	deadline := time.After(10 * time.Second)
traffic:
	for {
		select {
		case <-mon.Done():
			break traffic
		case <-deadline:
			t.Fatal("monitor did not finish")
		default:
			_, _ = pred.Predict(9999, t0.Add(time.Hour))
			time.Sleep(time.Millisecond)
		}
	}
	res := mon.Result()
	if !res.RolledBack || !strings.Contains(res.Reason, "error rate") {
		t.Fatalf("monitor result %+v", res)
	}

	after, err := pred.Predict(1, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if before.Probability != after.Probability { // bitwise reload of v1
		t.Fatalf("rollback did not restore v1 scoring: %v != %v", before.Probability, after.Probability)
	}
	ls := mgr.Lifecycle()
	if ls.Rollbacks != 1 || ls.CurrentVersion != 1 || ls.Monitoring {
		t.Fatalf("lifecycle after rollback %+v", ls)
	}
	mans := store.List()
	if len(mans) != 2 || mans[1].Status != persist.StatusRolledBack {
		t.Fatalf("rolled-back lineage %+v", mans)
	}
	if lm, err := store.LoadLatest(); err != nil || lm.Manifest.Version != 1 {
		t.Fatalf("boot after rollback: v%d err=%v, want v1", lm.Manifest.Version, err)
	}
}

// TestRollbackWithoutHistoryFails ensures a manual rollback with no
// previous accepted model is a typed failure, not a nil-model swap.
func TestRollbackWithoutHistoryFails(t *testing.T) {
	_, pred := newTestStack(t)
	mgr := NewModelManager(pred, nil)
	if err := mgr.Rollback("operator test"); err == nil {
		t.Fatal("rollback with no history must fail")
	}
}

// TestRetrainDuringSweepChaos races gated retrains (shadow-scoring
// through the sweep engine), full-graph sweeps, and live audits. Run
// under -race; the invariant is simply no data race and no panic.
func TestRetrainDuringSweepChaos(t *testing.T) {
	bnServer, pred := newTestStack(t)
	eng := NewSweepEngine(bnServer, pred)
	mgr := NewModelManager(pred, func() (gnn.Model, func([]float64) []float64, error) {
		return sageModel(uint64(time.Now().UnixNano())), nil, nil
	})
	mgr.EnableGate(GateOptions{
		Gate:   lifecycle.GateConfig{MaxKS: 0.9, RequireCohort: true},
		Engine: eng,
		Logf:   func(string, ...any) {},
	})
	mgr.SetResweep(func() { _, _ = eng.RunOnce(context.Background()) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = eng.RunOnce(context.Background())
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = pred.Predict(1, t0.Add(time.Hour))
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := mgr.RetrainOnceCtx(context.Background()); err != nil {
			t.Errorf("retrain %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHTTPBodyLimit asserts oversized POST bodies are refused with 413
// before the JSON decoder sees them.
func TestHTTPBodyLimit(t *testing.T) {
	api := newTestAPI(t)
	api.MaxBodyBytes = 128
	srv := httptest.NewServer(api)
	defer srv.Close()

	big := `{"logs":[` + strings.Repeat(`{"user":1,"type":0,"object":"x","time":"2024-01-01T00:00:00Z"},`, 100)
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Fatalf("413 body %q does not name the limit", body)
	}

	// A request inside the limit still works.
	small := `{"logs":[]}`
	resp, err = http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small ingest: status %d want 202", resp.StatusCode)
	}
}

// TestHTTPRetrainContextCancellation verifies a disconnected client
// unblocks /admin/retrain immediately: the handler returns while the
// training function is still running, and the hook observes the
// cancelled context.
func TestHTTPRetrainContextCancellation(t *testing.T) {
	api := newTestAPI(t)
	started := make(chan struct{})
	observed := make(chan error, 1)
	release := make(chan struct{})
	api.Admin.Retrain = func(ctx context.Context) (RetrainReport, error) {
		close(started)
		select {
		case <-ctx.Done():
			observed <- ctx.Err()
		case <-time.After(10 * time.Second):
			observed <- nil
		}
		<-release
		return RetrainReport{}, fmt.Errorf("cancelled")
	}
	srv := httptest.NewServer(api)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/admin/retrain", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if rerr == nil {
			resp.Body.Close()
		}
		errc <- rerr
	}()
	<-started
	cancel() // client walks away mid-train

	select {
	case rerr := <-errc:
		if rerr == nil {
			t.Fatal("cancelled request returned a response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not unblock on client disconnect")
	}
	select {
	case cerr := <-observed:
		if cerr == nil {
			t.Fatal("hook never observed the cancelled context")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hook did not observe cancellation")
	}
	close(release)
}

// TestHTTPAdminRollbackAndModels exercises the manual-control endpoints:
// rollback verdicts, the 409 when there is no history, and the lineage
// listing.
func TestHTTPAdminRollbackAndModels(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Unconfigured: 503 / 503; wrong method on rollback: 405.
	resp, err := http.Post(srv.URL+"/admin/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured rollback: %d want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/admin/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured models: %d want 503", resp.StatusCode)
	}

	var gotReason string
	rollbackErr := error(nil)
	api.Admin.Rollback = func(reason string) error { gotReason = reason; return rollbackErr }
	api.Admin.Models = func() []persist.Manifest {
		return []persist.Manifest{
			{Version: 1, Kind: "hag", Status: persist.StatusAccepted},
			{Version: 2, Kind: "hag", Status: persist.StatusQuarantined, Reasons: []string{"holdout AUC 0.50 below floor"}},
		}
	}
	api.Admin.Lifecycle = func() LifecycleStatus { return LifecycleStatus{GateEnabled: true, Quarantined: 1} }

	resp, err = http.Get(srv.URL + "/admin/rollback")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET rollback: %d want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/admin/rollback?reason=canary+regressed", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rb map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rb["rolled_back"] != true {
		t.Fatalf("rollback response %d %+v", resp.StatusCode, rb)
	}
	if gotReason != "canary regressed" {
		t.Fatalf("reason %q", gotReason)
	}
	if _, ok := rb["lifecycle"]; !ok {
		t.Fatal("rollback response missing lifecycle status")
	}

	rollbackErr = errors.New("no previous accepted model")
	resp, err = http.Post(srv.URL+"/admin/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("exhausted rollback: %d want 409", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/admin/models")
	if err != nil {
		t.Fatal(err)
	}
	var ml struct {
		Count     int                `json:"count"`
		Models    []persist.Manifest `json:"models"`
		Lifecycle *LifecycleStatus   `json:"lifecycle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ml); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ml.Count != 2 || len(ml.Models) != 2 {
		t.Fatalf("models response %d %+v", resp.StatusCode, ml)
	}
	if ml.Models[1].Status != persist.StatusQuarantined || len(ml.Models[1].Reasons) != 1 {
		t.Fatalf("quarantined entry %+v", ml.Models[1])
	}
	if ml.Lifecycle == nil || !ml.Lifecycle.GateEnabled {
		t.Fatalf("lifecycle section %+v", ml.Lifecycle)
	}
}
