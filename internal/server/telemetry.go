package server

import (
	"context"
	"log"
	"time"

	"turbo/internal/lifecycle"
	"turbo/internal/persist"
	"turbo/internal/resilience"
	"turbo/internal/telemetry"
)

// TelemetryOptions configures the online stack's telemetry layer. Zero
// values select DefBuckets, a 256-trace ring and no slow-audit logging.
type TelemetryOptions struct {
	// Buckets are the latency histogram upper bounds in seconds; nil
	// selects telemetry.DefBuckets.
	Buckets []float64
	// TraceRingSize bounds the completed-trace ring served at
	// /debug/traces. 0 selects 256.
	TraceRingSize int
	// SlowThreshold logs the full span breakdown of audits at least this
	// slow. 0 disables slow-audit logging.
	SlowThreshold time.Duration
	// Logger receives slow-audit lines. Nil selects the default logger
	// when SlowThreshold is set.
	Logger *log.Logger
}

// Telemetry is the wired observability surface of one online stack: a
// shared registry plus resolved handles for every hot-path metric, so an
// observation is one atomic operation. All methods are safe on a nil
// receiver (no-op), letting components instrument unconditionally.
//
// Metric catalog (all under GET /metrics):
//
//	turbo_audit_outcomes_total{outcome}   audits by tier + shed/degraded/unknown
//	turbo_audit_stage_seconds{stage}      sample/feature/score/total latency histograms
//	turbo_feature_retries_total           feature-fetch retries
//	turbo_breaker_state                   0 closed, 1 open, 2 half-open, -1 disabled
//	turbo_breaker_transitions_total{to}   breaker state transitions
//	turbo_faults_injected_total{kind}     chaos injections (error/delay/hang)
//	turbo_traces_slow_total               audits over the slow threshold
//	turbo_score_mode_total{mode}          scoring passes by path (tape vs tape-free infer)
//	turbo_feature_fanout_inflight         feature fetches currently in flight
//	turbo_bn_ingested_logs_total          behavior logs ingested
//	turbo_bn_window_jobs_total            BN window epoch jobs executed
//	turbo_bn_edge_updates_total           edge-weight contributions written
//	turbo_bn_pruned_edges_total           TTL-pruned undirected edges
//	turbo_bn_nodes / turbo_bn_edges       current snapshot size
//	turbo_bn_snapshot_epoch               published snapshot epoch
//	turbo_bn_snapshot_age_seconds         time since the snapshot was published
//	turbo_bn_shard_skew                   max/mean shard node count
//	turbo_wal_appends_total               WAL records written
//	turbo_wal_append_errors_total         WAL writes that failed (durability lost)
//	turbo_wal_corrupt_records_total       WAL records dropped as torn/corrupt
//	turbo_wal_truncated_segments_total    WAL segments deleted after checkpoints
//	turbo_wal_fsync_seconds               WAL fsync latency histogram
//	turbo_checkpoint_seconds              checkpoint capture+write latency histogram
//	turbo_checkpoints_total               checkpoints written (+ _errors_total)
//	turbo_checkpoint_age_seconds          time since the last checkpoint
//	turbo_recovery_replayed_events        WAL records re-applied at boot
//	turbo_retrain_failures_total          retrain passes that errored or panicked
//	turbo_model_artifacts_total{result}   model artifact saves by result
//	turbo_model_gate_total{result}        gate decisions: accepted vs rejected candidates
//	turbo_model_gate_last_auc             last candidate's holdout AUC (-1 before any)
//	turbo_model_gate_last_psi             last candidate/live score-distribution PSI (-1 before any)
//	turbo_model_gate_last_disagreement    last candidate/live decision-flip rate (-1 before any)
//	turbo_model_rollbacks_total           swaps withdrawn by the monitor or an operator
//	turbo_sweep_seconds                   full-graph sweep wall-clock latency histogram
//	turbo_sweep_shard_seconds             per-shard sweep compute-time histogram
//	turbo_sweep_nodes_total               nodes scored by full-graph sweeps
//	turbo_sweep_inflight                  full-graph sweeps currently running
//	turbo_embedding_serve_total{result}   embedding-tier serve attempts: hit/dirty/miss/fallback
//	turbo_embedding_age_seconds           age of the embedding table rows (-1 = no table)
//	turbo_embedding_dirty_rows            embedding rows currently invalidated by edge deltas
//	turbo_embedding_rows                  rows in the live embedding table (0 = no table)
//	turbo_embedding_refresh_seconds       incremental embedding-refresh latency histogram
//	turbo_embedding_refreshed_rows_total  embedding rows recomputed by incremental refreshes
//	turbo_ingest_lag_seconds              wall clock minus the event-time watermark (freshness)
//	turbo_bn_build_lag_seconds            watermark minus the builder's processed-through frontier
//	turbo_admission_inflight              audits currently holding an admission slot
//	turbo_admission_capacity              admission cap (-1 = unbounded)
//	turbo_admission_occupancy             in-flight fraction of the cap, 0..1
//	turbo_http_inflight_requests          HTTP requests currently being served
//	turbo_go_goroutines                   live goroutines (scrape-time runtime collector)
//	turbo_go_heap_alloc_bytes / _sys / _objects   heap usage
//	turbo_go_gc_cycles_total              completed GC cycles
//	turbo_go_gc_pause_seconds             GC stop-the-world pause histogram
//	turbo_go_sched_latency_p50_seconds    goroutine scheduling latency p50 (+ _p99_)
type Telemetry struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	outcomes    *telemetry.CounterVec
	stage       *telemetry.HistogramVec
	stageSample *telemetry.Histogram
	stageFeat   *telemetry.Histogram
	stageScore  *telemetry.Histogram
	stageTotal  *telemetry.Histogram

	retries     *telemetry.Counter
	transitions *telemetry.CounterVec

	scoreTape  *telemetry.Counter
	scoreInfer *telemetry.Counter

	faultErrs, faultDelays, faultHangs *telemetry.Counter

	ingested    *telemetry.Counter
	windowJobs  *telemetry.Counter
	edgeUpdates *telemetry.Counter
	pruned      *telemetry.Counter
	bnNodes     *telemetry.Gauge
	bnEdges     *telemetry.Gauge
	snapEpoch   *telemetry.Gauge

	persistMetrics persist.Metrics
	retrainFails   *telemetry.Counter
	artifactOK     *telemetry.Counter
	artifactErr    *telemetry.Counter

	gateAccepted     *telemetry.Counter
	gateRejected     *telemetry.Counter
	gateAUC          *telemetry.Gauge
	gatePSI          *telemetry.Gauge
	gateDisagreement *telemetry.Gauge
	rollbacks        *telemetry.Counter

	sweepSeconds      *telemetry.Histogram
	sweepShardSeconds *telemetry.Histogram
	sweepNodes        *telemetry.Counter

	embedServe      *telemetry.CounterVec
	embedHit        *telemetry.Counter
	embedDirty      *telemetry.Counter
	embedMiss       *telemetry.Counter
	embedFallback   *telemetry.Counter
	embedRefreshSec *telemetry.Histogram
	embedRefreshed  *telemetry.Counter
}

// Audit pipeline stages, the label values of turbo_audit_stage_seconds.
const (
	StageSample  = "sample"
	StageFeature = "feature"
	StageScore   = "score"
	StageTotal   = "total"
)

// NewTelemetry builds a registry, registers the full metric catalog and
// resolves the hot-path handles.
func NewTelemetry(opts TelemetryOptions) *Telemetry {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	t := &Telemetry{Registry: reg}

	t.outcomes = reg.CounterVec("turbo_audit_outcomes_total",
		"Audits by serving tier (hag/fallback/cache/prior) plus shed, degraded and unknown outcomes.", "outcome")
	t.stage = reg.HistogramVec("turbo_audit_stage_seconds",
		"Per-stage audit latency.", opts.Buckets, "stage")
	t.stageSample = t.stage.With(StageSample)
	t.stageFeat = t.stage.With(StageFeature)
	t.stageScore = t.stage.With(StageScore)
	t.stageTotal = t.stage.With(StageTotal)

	t.retries = reg.Counter("turbo_feature_retries_total",
		"Feature fetches retried after a transient failure.")
	scoreMode := reg.CounterVec("turbo_score_mode_total",
		"Model scoring passes by forward path: tape-free infer vs autodiff tape.", "mode")
	t.scoreTape = scoreMode.With("tape")
	t.scoreInfer = scoreMode.With("infer")
	t.transitions = reg.CounterVec("turbo_breaker_transitions_total",
		"Feature breaker state transitions by destination state.", "to")

	faults := reg.CounterVec("turbo_faults_injected_total",
		"Chaos faults injected by kind.", "kind")
	t.faultErrs = faults.With("error")
	t.faultDelays = faults.With("delay")
	t.faultHangs = faults.With("hang")

	t.ingested = reg.Counter("turbo_bn_ingested_logs_total",
		"Behavior logs ingested by the BN server.")
	t.windowJobs = reg.Counter("turbo_bn_window_jobs_total",
		"BN window epoch jobs executed.")
	t.edgeUpdates = reg.Counter("turbo_bn_edge_updates_total",
		"Edge-weight contributions written during BN construction.")
	t.pruned = reg.Counter("turbo_bn_pruned_edges_total",
		"Undirected edges dropped by TTL pruning.")
	t.bnNodes = reg.Gauge("turbo_bn_nodes", "Nodes in the published BN snapshot.")
	t.bnEdges = reg.Gauge("turbo_bn_edges", "Undirected edges in the published BN snapshot.")
	t.snapEpoch = reg.Gauge("turbo_bn_snapshot_epoch", "Published BN snapshot epoch.")

	t.persistMetrics = persist.Metrics{
		Appends: reg.Counter("turbo_wal_appends_total",
			"WAL records written (behavior logs and transaction registrations)."),
		AppendErrors: reg.Counter("turbo_wal_append_errors_total",
			"WAL writes that failed; the event was applied in memory but durability was lost."),
		FsyncSeconds: reg.Histogram("turbo_wal_fsync_seconds",
			"WAL fsync latency.", opts.Buckets),
		CheckpointSeconds: reg.Histogram("turbo_checkpoint_seconds",
			"Checkpoint capture + write + truncation latency.", opts.Buckets),
		Checkpoints: reg.Counter("turbo_checkpoints_total",
			"Full-state checkpoints written."),
		CheckpointErrors: reg.Counter("turbo_checkpoint_errors_total",
			"Checkpoint attempts that failed."),
		Replayed: reg.Counter("turbo_recovery_replayed_events",
			"WAL records re-applied during boot-time recovery."),
		CorruptRecords: reg.Counter("turbo_wal_corrupt_records_total",
			"WAL records dropped as torn or corrupt."),
		TruncatedSegments: reg.Counter("turbo_wal_truncated_segments_total",
			"WAL segments deleted after a covering checkpoint."),
	}
	t.retrainFails = reg.Counter("turbo_retrain_failures_total",
		"Retrain passes that returned an error or panicked.")
	artifacts := reg.CounterVec("turbo_model_artifacts_total",
		"Model artifact save attempts by result.", "result")
	t.artifactOK = artifacts.With("saved")
	t.artifactErr = artifacts.With("error")

	gate := reg.CounterVec("turbo_model_gate_total",
		"Validation-gate decisions on candidate models.", "result")
	t.gateAccepted = gate.With("accepted")
	t.gateRejected = gate.With("rejected")
	t.gateAUC = reg.Gauge("turbo_model_gate_last_auc",
		"Holdout AUC of the last gated candidate (-1 before any evaluation).")
	t.gatePSI = reg.Gauge("turbo_model_gate_last_psi",
		"Candidate/live score-distribution PSI of the last gated candidate (-1 before any evaluation).")
	t.gateDisagreement = reg.Gauge("turbo_model_gate_last_disagreement",
		"Candidate/live decision disagreement rate of the last gated candidate (-1 before any evaluation).")
	t.gateAUC.Set(-1)
	t.gatePSI.Set(-1)
	t.gateDisagreement.Set(-1)
	t.rollbacks = reg.Counter("turbo_model_rollbacks_total",
		"Model swaps withdrawn by the rollback monitor or an operator.")

	t.sweepSeconds = reg.Histogram("turbo_sweep_seconds",
		"Full-graph sweep wall-clock latency.", opts.Buckets)
	t.sweepShardSeconds = reg.Histogram("turbo_sweep_shard_seconds",
		"Per-shard compute time within full-graph sweeps (spread = shard imbalance).", opts.Buckets)
	t.sweepNodes = reg.Counter("turbo_sweep_nodes_total",
		"Nodes scored by full-graph sweeps.")

	t.embedServe = reg.CounterVec("turbo_embedding_serve_total",
		"Embedding-tier serve attempts by result: hit (served), dirty, miss, fallback.", "result")
	t.embedHit = t.embedServe.With("hit")
	t.embedDirty = t.embedServe.With("dirty")
	t.embedMiss = t.embedServe.With("miss")
	t.embedFallback = t.embedServe.With("fallback")
	t.embedRefreshSec = reg.Histogram("turbo_embedding_refresh_seconds",
		"Incremental embedding-refresh latency (dirty-ball re-embed).", opts.Buckets)
	t.embedRefreshed = reg.Counter("turbo_embedding_refreshed_rows_total",
		"Embedding rows recomputed by incremental refreshes.")
	// Default embed gauges: -1/0 until an embed engine re-registers them
	// with live callbacks, so the series exist on every scrape.
	reg.GaugeFunc("turbo_embedding_age_seconds",
		"Seconds since the embedding table rows were built (-1 = no table).",
		func() float64 { return -1 })
	reg.GaugeFunc("turbo_embedding_dirty_rows",
		"Embedding rows currently invalidated by edge deltas.",
		func() float64 { return 0 })
	reg.GaugeFunc("turbo_embedding_rows",
		"Rows in the live embedding table (0 = no table).",
		func() float64 { return 0 })

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if opts.Logger != nil {
		logf = opts.Logger.Printf
	}
	t.Tracer = telemetry.NewTracer(telemetry.TracerOptions{
		RingSize:      opts.TraceRingSize,
		SlowThreshold: opts.SlowThreshold,
		Logf:          logf,
		SlowCounter: reg.Counter("turbo_traces_slow_total",
			"Audits slower than the slow-trace threshold."),
	})
	return t
}

// Outcomes exposes the tier/outcome counter family (the legacy
// CounterSet shim wraps it so /stats and /metrics report one truth).
func (t *Telemetry) Outcomes() *telemetry.CounterVec {
	if t == nil {
		return nil
	}
	return t.outcomes
}

// ObserveStage records one stage latency into the per-stage histogram.
func (t *Telemetry) ObserveStage(stage string, d time.Duration) {
	if t == nil {
		return
	}
	switch stage {
	case StageSample:
		t.stageSample.ObserveDuration(d)
	case StageFeature:
		t.stageFeat.ObserveDuration(d)
	case StageScore:
		t.stageScore.ObserveDuration(d)
	case StageTotal:
		t.stageTotal.ObserveDuration(d)
	default:
		t.stage.With(stage).ObserveDuration(d)
	}
}

// Retried counts n feature-fetch retries.
func (t *Telemetry) Retried(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.retries.Add(int64(n))
}

// ScoreMode counts one scoring pass on the infer (tape-free) or tape
// path.
func (t *Telemetry) ScoreMode(infer bool) {
	if t == nil {
		return
	}
	if infer {
		t.scoreInfer.Inc()
	} else {
		t.scoreTape.Inc()
	}
}

// RegisterFanoutGauge registers turbo_feature_fanout_inflight as a
// scrape-time gauge reading the prediction server's in-flight feature
// fetch count. Re-registering replaces the callback.
func (t *Telemetry) RegisterFanoutGauge(fn func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_feature_fanout_inflight",
		"Feature fetches currently in flight across the audit fan-out workers.", fn)
}

// RegisterBreakerGauge registers turbo_breaker_state as a scrape-time
// gauge (0 closed, 1 open, 2 half-open, -1 disabled), so the reading
// stays correct even when the breaker instance is swapped at config
// time. Re-registering replaces the callback.
func (t *Telemetry) RegisterBreakerGauge(fn func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_breaker_state",
		"Feature breaker state: 0 closed, 1 open, 2 half-open, -1 disabled.", fn)
}

// BreakerHook returns an OnStateChange callback counting transitions
// into turbo_breaker_transitions_total. Attach it to every breaker
// guarding this stack (NewPredictionServer wires the default breaker
// automatically).
func (t *Telemetry) BreakerHook() func(from, to resilience.BreakerState) {
	if t == nil {
		return nil
	}
	return func(from, to resilience.BreakerState) {
		t.transitions.With(to.String()).Inc()
	}
}

// FaultCounters returns the chaos-injection counters, for wiring into a
// resilience.Injector via SetCounters.
func (t *Telemetry) FaultCounters() (errs, delays, hangs *telemetry.Counter) {
	if t == nil {
		return nil, nil, nil
	}
	return t.faultErrs, t.faultDelays, t.faultHangs
}

// WireInjector mirrors inj's injections into the registry. Nil-safe on
// both sides.
func (t *Telemetry) WireInjector(inj *resilience.Injector) {
	if t == nil || inj == nil {
		return
	}
	inj.SetCounters(t.faultErrs, t.faultDelays, t.faultHangs)
}

// IngestedLogs counts n behavior logs into the BN ingest counter.
func (t *Telemetry) IngestedLogs(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.ingested.Add(int64(n))
}

// AdvanceStats mirrors one Advance tick: construction counter deltas and
// the published snapshot's size gauges.
func (t *Telemetry) AdvanceStats(jobs, edgeUpdates, pruned int64, nodes, edges int, epoch uint64) {
	if t == nil {
		return
	}
	t.windowJobs.Add(jobs)
	t.edgeUpdates.Add(edgeUpdates)
	t.pruned.Add(pruned)
	t.bnNodes.Set(float64(nodes))
	t.bnEdges.Set(float64(edges))
	t.snapEpoch.Set(float64(epoch))
}

// RegisterBNGauges registers the scrape-time BN gauges: snapshot age and
// shard skew. Re-registering replaces the callbacks (last stack wins).
func (t *Telemetry) RegisterBNGauges(snapshotAge, shardSkew func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_bn_snapshot_age_seconds",
		"Seconds since the BN read snapshot was published.", snapshotAge)
	t.Registry.GaugeFunc("turbo_bn_shard_skew",
		"Max/mean node count across graph shards (1 = balanced).", shardSkew)
}

// RegisterIngestLagGauges registers the two saturation lags of the
// ingest pipeline: turbo_ingest_lag_seconds (wall clock vs the
// event-time watermark) and turbo_bn_build_lag_seconds (watermark vs
// the builder's processed-through frontier). Re-registering replaces
// the callbacks (last stack wins).
func (t *Telemetry) RegisterIngestLagGauges(ingestLag, buildLag func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_ingest_lag_seconds",
		"Wall clock minus the newest ingested event time; 0 before the first event.", ingestLag)
	t.Registry.GaugeFunc("turbo_bn_build_lag_seconds",
		"Event-time distance between the ingest watermark and the BN builder's processed-through frontier.", buildLag)
}

// RegisterAdmissionGauges registers the admission-semaphore gauges:
// in-flight audits, the cap (-1 = unbounded) and the occupancy fraction.
// Re-registering replaces the callbacks.
func (t *Telemetry) RegisterAdmissionGauges(inflight, capacity, occupancy func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_admission_inflight",
		"Audits currently holding an admission slot.", inflight)
	t.Registry.GaugeFunc("turbo_admission_capacity",
		"Admission cap on concurrent audits (-1 = unbounded).", capacity)
	t.Registry.GaugeFunc("turbo_admission_occupancy",
		"In-flight fraction of the admission cap, 0..1 (0 when unbounded).", occupancy)
}

// RegisterHTTPInflightGauge registers turbo_http_inflight_requests as a
// scrape-time gauge reading the HTTP layer's in-flight request counter.
// Re-registering replaces the callback.
func (t *Telemetry) RegisterHTTPInflightGauge(fn func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_http_inflight_requests",
		"HTTP requests currently being served by the API.", fn)
}

// StartTrace opens an audit trace for user u and attaches it to ctx.
func (t *Telemetry) StartTrace(ctx context.Context, u uint64) (context.Context, *telemetry.Trace) {
	if t == nil {
		return ctx, nil
	}
	return t.Tracer.Start(ctx, u)
}

// FinishTrace stamps, publishes and (when slow) logs the trace.
func (t *Telemetry) FinishTrace(tr *telemetry.Trace) {
	if t == nil {
		return
	}
	t.Tracer.Finish(tr)
}

// WirePersist installs the WAL/checkpoint metric handles on the durable
// state manager and registers the checkpoint-age gauge. Nil-safe on both
// sides.
func (t *Telemetry) WirePersist(m *persist.Manager) {
	if t == nil || m == nil {
		return
	}
	m.SetMetrics(t.persistMetrics)
	t.Registry.GaugeFunc("turbo_checkpoint_age_seconds",
		"Seconds since the last full-state checkpoint (-1 before the first).",
		func() float64 {
			_, at := m.LastCheckpoint()
			if at.IsZero() {
				return -1
			}
			return time.Since(at).Seconds()
		})
}

// ObserveSweep records one completed full-graph sweep: wall-clock
// latency, nodes scored, and every shard's compute time.
func (t *Telemetry) ObserveSweep(elapsed time.Duration, nodes int, shards []time.Duration) {
	if t == nil {
		return
	}
	t.sweepSeconds.ObserveDuration(elapsed)
	t.sweepNodes.Add(int64(nodes))
	for _, d := range shards {
		t.sweepShardSeconds.ObserveDuration(d)
	}
}

// EmbedServed counts one embedding-tier serve attempt by result label
// ("hit", "dirty", "miss", "fallback").
func (t *Telemetry) EmbedServed(result string) {
	if t == nil {
		return
	}
	switch result {
	case "hit":
		t.embedHit.Inc()
	case "dirty":
		t.embedDirty.Inc()
	case "miss":
		t.embedMiss.Inc()
	case "fallback":
		t.embedFallback.Inc()
	default:
		t.embedServe.With(result).Inc()
	}
}

// ObserveEmbedRefresh records one incremental embedding refresh: wall
// latency plus the number of rows recomputed.
func (t *Telemetry) ObserveEmbedRefresh(elapsed time.Duration, rows int) {
	if t == nil {
		return
	}
	t.embedRefreshSec.ObserveDuration(elapsed)
	t.embedRefreshed.Add(int64(rows))
}

// RegisterEmbedGauges re-registers the embedding-table gauges with live
// callbacks: row age in seconds (-1 = no table), dirty-row count, and
// table size. Re-registering replaces the boot-time defaults.
func (t *Telemetry) RegisterEmbedGauges(age, dirtyRows, rows func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_embedding_age_seconds",
		"Seconds since the embedding table rows were built (-1 = no table).", age)
	t.Registry.GaugeFunc("turbo_embedding_dirty_rows",
		"Embedding rows currently invalidated by edge deltas.", dirtyRows)
	t.Registry.GaugeFunc("turbo_embedding_rows",
		"Rows in the live embedding table (0 = no table).", rows)
}

// RegisterSweepGauge registers turbo_sweep_inflight as a scrape-time
// gauge reading the sweep engine's in-flight count. Re-registering
// replaces the callback.
func (t *Telemetry) RegisterSweepGauge(fn func() float64) {
	if t == nil {
		return
	}
	t.Registry.GaugeFunc("turbo_sweep_inflight",
		"Full-graph sweeps currently running.", fn)
}

// RetrainFailed counts one failed (errored or panicked) retrain pass.
func (t *Telemetry) RetrainFailed() {
	if t == nil {
		return
	}
	t.retrainFails.Inc()
}

// ArtifactSaved counts one model-artifact save attempt by result.
func (t *Telemetry) ArtifactSaved(ok bool) {
	if t == nil {
		return
	}
	if ok {
		t.artifactOK.Inc()
	} else {
		t.artifactErr.Inc()
	}
}

// GateEvaluated records one validation-gate decision and mirrors the
// candidate's shadow statistics into the last-evaluation gauges.
func (t *Telemetry) GateEvaluated(v lifecycle.Verdict) {
	if t == nil {
		return
	}
	if v.Accepted {
		t.gateAccepted.Inc()
	} else {
		t.gateRejected.Inc()
	}
	if h := v.Report.Holdout; h != nil {
		t.gateAUC.Set(h.AUC)
	}
	if c := v.Report.Cohort; c != nil {
		t.gatePSI.Set(c.PSI)
		t.gateDisagreement.Set(c.Disagreement)
	}
}

// RolledBack counts one withdrawn model swap.
func (t *Telemetry) RolledBack() {
	if t == nil {
		return
	}
	t.rollbacks.Inc()
}
