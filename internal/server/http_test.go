package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"turbo/internal/persist"
	"turbo/internal/resilience"
)

func newTestAPI(t *testing.T) *API {
	t.Helper()
	bnServer, pred := newTestStack(t)
	return NewAPI(pred, bnServer)
}

func TestHTTPPredict(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/predict?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pred Prediction
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if pred.User != 1 || pred.Probability < 0 || pred.Probability > 1 {
		t.Fatalf("prediction %+v", pred)
	}
}

func TestHTTPPredictBadUID(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()
	for _, q := range []string{"/predict", "/predict?uid=abc", "/predict?uid=-1"} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d want 400", q, resp.StatusCode)
		}
	}
}

func TestHTTPIngestAndStats(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	body := `{"uid":42,"type":0,"value":"new-dev","time":"2019-01-01T05:00:00Z"}`
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["logs"].(float64) != 4 { // 3 seeded + 1 ingested
		t.Fatalf("stats %v", stats)
	}
}

func TestHTTPIngestRejectsInvalid(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, body := range []string{
		`{bad json`,
		`{"uid":1,"type":99,"value":"x"}`, // invalid behavior type
	} {
		resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d want 400", body, resp.StatusCode)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status %d", resp.StatusCode)
	}
}

func TestHTTPIngestDefaultsTime(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	before := time.Now()
	body := `{"uid":7,"type":3,"value":"ip"}`
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	logs := bnServer.Store().UserLogs(7)
	if len(logs) != 1 || logs[0].Time.Before(before.Add(-time.Second)) {
		t.Fatalf("zero time not defaulted: %+v", logs)
	}
}

func TestHTTPTransaction(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/transaction?uid=77", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bnServer.Graph().HasNode(77) {
		t.Fatal("transaction did not register the node")
	}
	// Method check.
	resp, _ = http.Get(srv.URL + "/transaction?uid=78")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET transaction status %d", resp.StatusCode)
	}
}

func TestHTTPLatencyDigest(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	// Generate one prediction so digests are non-empty.
	resp, err := http.Get(srv.URL + "/predict?uid=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/latency")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sampling", "features", "predict", "total"} {
		if out[key]["count"].(float64) < 1 {
			t.Fatalf("digest %q empty: %v", key, out[key])
		}
	}
}

func TestHTTPSubgraphDOT(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/subgraph?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Fatalf("content type %q", ct)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	out := string(body[:n])
	if !strings.Contains(out, "graph") || !strings.Contains(out, "n0") {
		t.Fatalf("not DOT output: %q", out)
	}
	// Bad uid.
	resp2, _ := http.Get(srv.URL + "/subgraph?uid=zzz")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad uid status %d", resp2.StatusCode)
	}
}

func TestHTTPMethodEnforcement(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, path := range []string{"/predict?uid=1", "/latency", "/stats", "/subgraph?uid=1", "/metrics", "/debug/traces", "/healthz", "/readyz"} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s: Allow header %q want GET", path, allow)
		}
	}
}

func TestHTTPPredictUnknownUser404(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/predict?uid=999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d want 404", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if got := strings.TrimSpace(string(body)); got != "unknown user 999" {
		t.Fatalf("404 body %q leaks internals", got)
	}
}

func TestHTTPPredictDuringFeatureOutage(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{ErrorRate: 1, Seed: 4}, 3)
	api := NewAPI(cs.pred, cs.bn)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL + "/predict?uid=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("request %d: status %d want 200 during feature outage", i, resp.StatusCode)
		}
		var pred Prediction
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !pred.Degraded {
			t.Fatalf("request %d: not degraded: %+v", i, pred)
		}
		switch pred.ServedBy {
		case TierFallback, TierCache, TierPrior:
		default:
			t.Fatalf("request %d: served_by %q", i, pred.ServedBy)
		}
	}
}

func TestHTTPPredictOverloaded429(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{Delay: 300 * time.Millisecond, Seed: 6}, 100)
	cs.pred.Admission = resilience.NewAdmission(1)
	api := NewAPI(cs.pred, cs.bn)
	srv := httptest.NewServer(api)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/predict?uid=1")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for cs.pred.Admission.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never entered")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/predict?uid=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429", resp.StatusCode)
	}
	<-done
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d", resp.StatusCode)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready["ready"] != true || ready["model_loaded"] != true {
		t.Fatalf("readiness %v", ready)
	}
	if ready["breaker"] != "closed" {
		t.Fatalf("breaker state %v want closed", ready["breaker"])
	}
	if _, ok := ready["snapshot_epoch"]; !ok {
		t.Fatal("readiness missing snapshot_epoch")
	}
}

func TestHTTPStatsServesSnapshotNotLiveGraph(t *testing.T) {
	bnServer, pred := newTestStack(t)
	api := NewAPI(pred, bnServer)
	srv := httptest.NewServer(api)
	defer srv.Close()

	readNodes := func() float64 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats["nodes"].(float64)
	}

	before := readNodes()
	// Registering a transaction adds a node to the live graph only; the
	// snapshot (and therefore /stats) must not change until Advance
	// republishes it.
	resp, err := http.Post(srv.URL+"/transaction?uid=50", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := readNodes(); got != before {
		t.Fatalf("stats read the live graph: %v nodes before Advance, want %v", got, before)
	}
	bnServer.Advance(t0.Add(3 * time.Hour))
	if got := readNodes(); got != before+1 {
		t.Fatalf("stats after Advance: %v nodes want %v", got, before+1)
	}
}

func TestHTTPAdminEndpointsMethodAndReadiness(t *testing.T) {
	api := newTestAPI(t)
	srv := httptest.NewServer(api)
	defer srv.Close()

	for _, path := range []string{"/admin/checkpoint", "/admin/retrain"} {
		// Wrong method: 405 with an Allow header.
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Fatalf("GET %s: Allow %q want POST", path, allow)
		}
		// No hook configured: 503.
		resp, err = http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s unconfigured: status %d want 503", path, resp.StatusCode)
		}
	}

	// Not ready (recovering): 503 even with hooks installed.
	api.Admin.Checkpoint = func() (persist.CheckpointInfo, error) {
		return persist.CheckpointInfo{LSN: 7, Bytes: 128, TruncatedSegments: 1}, nil
	}
	api.Admin.Retrain = func(ctx context.Context) (RetrainReport, error) {
		return RetrainReport{Accepted: true}, nil
	}
	api.SetReady(false)
	for _, path := range []string{"/admin/checkpoint", "/admin/retrain"} {
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s while recovering: status %d want 503", path, resp.StatusCode)
		}
	}
	// /readyz mirrors the gate.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while recovering: status %d want 503", resp.StatusCode)
	}

	api.SetReady(true)
	resp, err = http.Post(srv.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ck map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ck["wal_lsn"] != float64(7) {
		t.Fatalf("checkpoint response %d %+v", resp.StatusCode, ck)
	}
	resp, err = http.Post(srv.URL+"/admin/retrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rt map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rt["accepted"] != true {
		t.Fatalf("retrain response %d %+v", resp.StatusCode, rt)
	}
}

func TestHTTPAdminErrorsAreMasked(t *testing.T) {
	api := newTestAPI(t)
	api.Admin.Checkpoint = func() (persist.CheckpointInfo, error) {
		return persist.CheckpointInfo{}, errors.New("disk full: /secret/path")
	}
	srv := httptest.NewServer(api)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/admin/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d want 500", resp.StatusCode)
	}
	if strings.Contains(string(body), "secret") {
		t.Fatalf("internal error leaked to client: %q", body)
	}
}
