package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/embed"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// EmbedEngine runs the lambda serving tier: a full embedding sweep
// precomputes every user's penultimate activations (RebuildOnce), edge
// deltas invalidate the affected (L−1)-hop neighborhoods through the
// graph's delta observer and the BN server's pre-publish hook, and a
// background incremental pass re-embeds only the dirty set
// (RefreshOnce). Audits whose target star is fully clean are answered
// from cached embeddings — final aggregation layer plus head, no
// sampling, no feature fan-out — and everything else falls through to
// the usual hag→fallback→cache ladder.
type EmbedEngine struct {
	bn    *BNServer
	pred  *PredictionServer
	store *embed.Store

	// Opts tunes the rebuild/refresh sweeps (worker count, row costs).
	Opts sweep.Options
	// FetchWorkers bounds the rebuild's bulk feature fan-out; 0 selects
	// the feature package default.
	FetchWorkers int

	runMu    sync.Mutex // serializes rebuilds and refreshes
	inflight atomic.Int64

	lastMu      sync.RWMutex
	lastRebuild EmbedRebuildReport
	hasRebuild  bool
	lastRefresh EmbedRefreshReport
	hasRefresh  bool
}

// EmbedRebuildReport describes one completed full table rebuild.
type EmbedRebuildReport struct {
	At         time.Time     `json:"at"`
	Epoch      uint64        `json:"snapshot_epoch"`
	Version    int           `json:"model_version"`
	Candidates int           `json:"candidates"`
	Rows       int           `json:"rows"`
	Skipped    int           `json:"skipped"` // users whose feature fetch failed
	Servable   bool          `json:"servable"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// EmbedRefreshReport describes one incremental dirty-set refresh.
type EmbedRefreshReport struct {
	At      time.Time     `json:"at"`
	Dirty   int           `json:"dirty"`
	Ball    int           `json:"ball"`
	Cleared int           `json:"cleared"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// NewEmbedEngine wires the lambda tier into the online stack: it
// installs the graph delta observer and the snapshot pre-publish flush
// (mark-before-publish), attaches itself as the prediction server's
// embed tier, and re-registers the embedding gauges with live
// callbacks. Call before serving.
func NewEmbedEngine(bn *BNServer, pred *PredictionServer) *EmbedEngine {
	e := &EmbedEngine{bn: bn, pred: pred, store: embed.NewStore()}
	bn.Graph().SetDeltaObserver(e.store.NoteDelta)
	bn.SetPrePublish(e.store.Flush)
	pred.Embed = e
	pred.Tel.RegisterEmbedGauges(
		func() float64 { return e.store.Table().AgeSeconds() },
		func() float64 {
			if tab := e.store.Table(); tab != nil {
				return float64(tab.DirtyCount())
			}
			return 0
		},
		func() float64 {
			if tab := e.store.Table(); tab != nil {
				return float64(tab.NumRows())
			}
			return 0
		},
	)
	return e
}

// Store exposes the underlying embedding store (tests and persistence).
func (e *EmbedEngine) Store() *embed.Store { return e.store }

// InFlight reports the number of rebuild/refresh passes currently
// running or queued on the run lock.
func (e *EmbedEngine) InFlight() int64 { return e.inflight.Load() }

// LastRebuild returns the most recent rebuild report, if any.
func (e *EmbedEngine) LastRebuild() (EmbedRebuildReport, bool) {
	e.lastMu.RLock()
	defer e.lastMu.RUnlock()
	return e.lastRebuild, e.hasRebuild
}

// LastRefresh returns the most recent refresh report, if any.
func (e *EmbedEngine) LastRefresh() (EmbedRefreshReport, bool) {
	e.lastMu.RLock()
	defer e.lastMu.RUnlock()
	return e.lastRefresh, e.hasRefresh
}

// TryPredict attempts to serve one audit from cached embeddings. The
// model argument is the audit's own serving-model snapshot; any skew
// with the table refuses. ok is true only on a clean Hit — every other
// result is counted and falls through to the sampled-subgraph path.
func (e *EmbedEngine) TryPredict(u behavior.UserID, model gnn.Model, threshold float64) (Prediction, bool) {
	t0 := time.Now()
	prob, res := e.store.TryServe(e.bn.Snapshot(), graph.NodeID(u), model)
	e.pred.Tel.EmbedServed(res.String())
	if res != embed.Hit {
		return Prediction{}, false
	}
	lat := time.Since(t0)
	e.pred.PredictLatency.Record(lat)
	e.pred.Tel.ObserveStage(StageScore, lat)
	return Prediction{
		User:           u,
		Probability:    prob,
		Fraud:          prob >= threshold,
		ServedBy:       TierEmbed,
		PredictLatency: lat,
	}, true
}

// RebuildOnce rebuilds the embedding table from scratch against the
// current snapshot and model: bulk feature fetch over every
// audit-eligible user, one captured embedding sweep, per-node star
// compilation, then an atomic install. Deltas that land during the
// build are replayed onto the new table (Store rebuild log), so the
// fresh table can never silently serve scores that predate them. The
// sweep scores the final layer anyway, so the rebuild doubles as a
// full-graph score sweep: the probabilities refresh the tier-3 cache
// under the build's version tag.
//
// A model with no embedding decomposition clears the table (every
// serve misses until a servable model is swapped in).
func (e *EmbedEngine) RebuildOnce(ctx context.Context) (EmbedRebuildReport, error) {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	e.runMu.Lock()
	defer e.runMu.Unlock()

	start := time.Now()
	feats, model, norm := e.pred.Serving()
	version := e.pred.ModelVersion()
	if model == nil {
		return EmbedRebuildReport{}, fmt.Errorf("server: embed rebuild: no model attached")
	}
	rep := EmbedRebuildReport{At: start, Version: version}
	es, servable := model.(gnn.EmbedServing)
	if !servable || !gnn.CanEmbedServe(model) {
		e.store.Install(nil, e.bn.Snapshot())
		rep.Elapsed = time.Since(start)
		e.recordRebuild(rep)
		return rep, nil
	}
	rep.Servable = true

	e.store.BeginRebuild()
	installed := false
	defer func() {
		if !installed {
			e.store.AbortRebuild()
		}
	}()

	snap := e.bn.Snapshot()
	rep.Epoch = snap.Epoch()
	filter := e.bn.TxnFilter()
	var users []behavior.UserID
	for _, id := range snap.Nodes() {
		if filter(id) {
			users = append(users, behavior.UserID(id))
		}
	}
	rep.Candidates = len(users)
	if len(users) == 0 {
		rep.Elapsed = time.Since(start)
		e.recordRebuild(rep)
		return rep, nil
	}

	vecs, errs := feature.FetchVectors(ctx, feats, users, time.Now(), e.FetchWorkers)
	if err := ctx.Err(); err != nil {
		return EmbedRebuildReport{}, fmt.Errorf("server: embed rebuild: feature fetch: %w", err)
	}
	okUsers := make([]behavior.UserID, 0, len(users))
	okNodes := make([]graph.NodeID, 0, len(users))
	okVecs := make([][]float64, 0, len(users))
	for i, vec := range vecs {
		if errs[i] != nil {
			rep.Skipped++
			continue
		}
		if norm != nil {
			vec = norm(vec)
		}
		okUsers = append(okUsers, users[i])
		okNodes = append(okNodes, graph.NodeID(users[i]))
		okVecs = append(okVecs, vec)
	}
	if len(okUsers) == 0 {
		rep.Elapsed = time.Since(start)
		e.recordRebuild(rep)
		return rep, nil
	}

	// The table owns its feature matrix for the lifetime of the tier
	// (refresh passes re-read frozen rows), so it is not pooled.
	x := tensor.New(len(okVecs), len(okVecs[0]))
	for i, vec := range okVecs {
		copy(x.Row(i), vec)
	}
	res, err := embed.Build(snap, okNodes, x, es, version, e.Opts)
	if err != nil {
		return EmbedRebuildReport{}, fmt.Errorf("server: embed rebuild: %w", err)
	}
	// Install against the snapshot of NOW, not the build snapshot: the
	// rebuild log's delta balls must be walked on an adjacency that
	// contains them.
	e.store.Install(res.Table, e.bn.Snapshot())
	installed = true
	e.pred.RememberScoresFor(okUsers, res.Probs, version)

	rep.Rows = len(okNodes)
	rep.Elapsed = time.Since(start)
	e.recordRebuild(rep)
	return rep, nil
}

// RefreshOnce runs one incremental refresh: re-embed the dirty set
// (padded to its (L−1)-hop ball) against the current snapshot and
// republish only those rows. A no-op when nothing is dirty.
func (e *EmbedEngine) RefreshOnce() EmbedRefreshReport {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	e.runMu.Lock()
	defer e.runMu.Unlock()

	st := e.store.Refresh(e.bn.Snapshot(), e.Opts)
	rep := EmbedRefreshReport{
		At:      time.Now(),
		Dirty:   st.Dirty,
		Ball:    st.Ball,
		Cleared: st.Cleared,
		Elapsed: st.Elapsed,
	}
	if st.Ball > 0 {
		e.pred.Tel.ObserveEmbedRefresh(st.Elapsed, st.Ball)
		e.recordRefresh(rep)
	}
	return rep
}

// RunRefreshLoop refreshes the dirty set every interval until ctx is
// done (the serving binary runs it as the background refresh goroutine).
func (e *EmbedEngine) RunRefreshLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.RefreshOnce()
		}
	}
}

// StatsSnapshot summarizes the tier for the /stats endpoint.
func (e *EmbedEngine) StatsSnapshot() map[string]any {
	body := map[string]any{
		"inflight":       e.inflight.Load(),
		"pending_deltas": e.store.PendingDeltas(),
	}
	if tab := e.store.Table(); tab != nil {
		body["rows"] = tab.NumRows()
		body["dirty_rows"] = tab.DirtyCount()
		body["model_version"] = tab.Version()
		body["table_epoch"] = tab.Epoch()
		body["age_seconds"] = tab.AgeSeconds()
	}
	e.lastMu.RLock()
	if e.hasRebuild {
		body["last_rebuild"] = e.lastRebuild
	}
	if e.hasRefresh {
		body["last_refresh"] = e.lastRefresh
	}
	e.lastMu.RUnlock()
	return body
}

func (e *EmbedEngine) recordRebuild(rep EmbedRebuildReport) {
	e.lastMu.Lock()
	e.lastRebuild, e.hasRebuild = rep, true
	e.lastMu.Unlock()
}

func (e *EmbedEngine) recordRefresh(rep EmbedRefreshReport) {
	e.lastMu.Lock()
	e.lastRefresh, e.hasRefresh = rep, true
	e.lastMu.Unlock()
}
