package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/bn"
)

// TestSampleServedFromSnapshot: after Advance, predictions must be
// served from the published epoch, and the epoch must advance with every
// tick.
func TestSampleServedFromSnapshot(t *testing.T) {
	bnServer, _ := newTestStack(t)
	snap := bnServer.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot published after Advance")
	}
	if !snap.HasNode(1) {
		t.Fatal("registered user missing from snapshot")
	}
	if v := bnServer.View(1); v != snap {
		t.Fatal("View should serve a snapshotted user from the snapshot")
	}
	e1 := snap.Epoch()
	bnServer.Advance(t0.Add(3 * time.Hour))
	if e2 := bnServer.Snapshot().Epoch(); e2 <= e1 {
		t.Fatalf("epoch did not advance: %d then %d", e1, e2)
	}
}

// TestViewFallsBackForFreshUsers: a user registered after the last
// Advance tick is not in the snapshot yet; View must fall back to the
// live graph so the audit still sees the user.
func TestViewFallsBackForFreshUsers(t *testing.T) {
	bnServer, _ := newTestStack(t)
	bnServer.RegisterTransaction(99) // no Advance afterwards
	if bnServer.Snapshot().HasNode(99) {
		t.Fatal("stale snapshot unexpectedly contains the fresh user")
	}
	if v := bnServer.View(99); v != bnServer.Graph() {
		t.Fatal("View should fall back to the live graph for a fresh user")
	}
	sg := bnServer.Sample(99)
	if sg.NumNodes() != 1 || sg.Nodes[0] != 99 {
		t.Fatalf("fresh user sample wrong: %v", sg.Nodes)
	}
}

// TestConcurrentIngestAdvancePredict is the ingest-vs-predict stress
// test of Fig. 2/§V: window jobs, transaction registrations and log
// ingestion run concurrently with sampling. Run with -race — this is the
// regression test for the hasTxn filter-closure race (the closure used
// to read the map after the guarding mutex was released) and for the
// snapshot publication protocol.
func TestConcurrentIngestAdvancePredict(t *testing.T) {
	bnServer, err := NewBNServer(bn.Config{Windows: []time.Duration{time.Hour}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	const users = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // ingest + register stream
		defer wg.Done()
		for i := 0; i < 600; i++ {
			u := behavior.UserID(i % users)
			bnServer.Ingest(mk(u, behavior.DeviceID, fmt.Sprintf("d%d", i%8), time.Duration(i)*time.Minute))
			bnServer.RegisterTransaction(u)
		}
	}()

	wg.Add(1)
	go func() { // scheduler ticks (window jobs + prune + re-snapshot)
		defer wg.Done()
		for i := 1; i <= 30; i++ {
			bnServer.Advance(t0.Add(time.Duration(i) * time.Hour))
		}
	}()

	for r := 0; r < 4; r++ { // prediction read path
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				bnServer.Sample(behavior.UserID((i + r) % users))
			}
		}(r)
	}

	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-writersDone

	// Final tick publishes a consistent epoch.
	bnServer.Advance(t0.Add(48 * time.Hour))
	snap := bnServer.Snapshot()
	if snap.NumNodes() == 0 {
		t.Fatal("stress run produced an empty BN")
	}
	if got, want := len(snap.Edges()), snap.NumEdges(); got != want {
		t.Fatalf("snapshot inconsistent after stress: %d listed, counter %d", got, want)
	}
}
