package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/resilience"
	"turbo/internal/tensor"
)

// fakeClock drives breaker cool-downs without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: t0} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// constFallback is a tier-2 stand-in scoring every row the same.
type constFallback float64

func (c constFallback) PredictProba(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = float64(c)
	}
	return out
}

// chaosStack is newTestStack plus a feature-path fault injector, a
// breaker on a fake clock, and a fallback model.
type chaosStack struct {
	bn    *BNServer
	pred  *PredictionServer
	inj   *resilience.Injector
	clock *fakeClock
}

func newChaosStack(t *testing.T, faults resilience.FaultConfig, threshold int) *chaosStack {
	t.Helper()
	bnServer, pred := newTestStack(t)
	clock := newFakeClock()
	inj := resilience.NewInjector(faults)
	pred.Tel.WireInjector(inj)
	pred.SetFeatureSource(resilience.InjectFeatures(featureSource(pred), inj))
	pred.Breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: threshold,
		CoolDown:         time.Minute,
		Clock:            clock.Now,
		OnStateChange:    pred.Tel.BreakerHook(),
	})
	pred.Retry = resilience.RetryConfig{Attempts: 1} // one feature call per fetch: failure counting stays exact
	pred.Fallback = constFallback(0.9)
	return &chaosStack{bn: bnServer, pred: pred, inj: inj, clock: clock}
}

// featureSource digs the real service back out of a fresh test stack so
// the injector can wrap it.
func featureSource(p *PredictionServer) feature.Source {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.feats
}

// TestChaosNoFaultsIdenticalToFullPath asserts the resilience machinery
// is invisible when healthy: PredictCtx with breaker, retry, admission
// and generous deadlines produces exactly the score of a hand-run
// sample → features → HAG pipeline.
func TestChaosNoFaultsIdenticalToFullPath(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{}, 3)
	cs.pred.Admission = resilience.NewAdmission(8)
	cs.pred.Deadlines = StageDeadlines{Sample: time.Minute, Feature: time.Minute, Score: time.Minute, Total: time.Minute}
	at := t0.Add(3 * time.Hour)

	p, err := cs.pred.PredictCtx(context.Background(), 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierFull || p.Degraded {
		t.Fatalf("healthy path degraded: served_by=%q degraded=%v", p.ServedBy, p.Degraded)
	}

	// Hand-run the pre-resilience pipeline on the same stack.
	sg := cs.bn.Sample(1)
	x := tensor.New(sg.NumNodes(), 0)
	feats := featureSource(cs.pred)
	for i, node := range sg.Nodes {
		vec, err := feats.VectorCtx(context.Background(), behavior.UserID(node), at)
		if err != nil {
			t.Fatal(err)
		}
		if x.Cols == 0 {
			x = tensor.New(sg.NumNodes(), len(vec))
		}
		copy(x.Row(i), vec)
	}
	cs.pred.mu.RLock()
	model := cs.pred.model
	cs.pred.mu.RUnlock()
	want := gnn.Score(model, gnn.NewBatch(sg, x))
	if p.Probability != want {
		t.Fatalf("probability %v != hand-run full path %v", p.Probability, want)
	}
	if got := cs.pred.Served.Get(TierFull); got < 1 {
		t.Fatalf("tier counter not bumped: %d", got)
	}
}

// TestChaosTotalFeatureOutage is the acceptance scenario: with a 100%
// feature-service error rate every audit still answers, served by a
// degraded tier, and the breaker opens after the configured threshold
// and half-opens after the cool-down.
func TestChaosTotalFeatureOutage(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{ErrorRate: 1, Seed: 11}, 3)

	// Warm the score cache for user 1 before the outage.
	cs.inj.SetConfig(resilience.FaultConfig{})
	warm, err := cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cs.inj.SetConfig(resilience.FaultConfig{ErrorRate: 1, Seed: 11})

	// Every audit during the outage answers from a degraded tier.
	for i := 0; i < 10; i++ {
		for _, u := range []behavior.UserID{1, 2, 3} {
			p, err := cs.pred.PredictCtx(context.Background(), u, t0.Add(3*time.Hour))
			if err != nil {
				t.Fatalf("audit %d/user %d errored during outage: %v", i, u, err)
			}
			if !p.Degraded {
				t.Fatalf("audit %d/user %d not degraded: %+v", i, u, p)
			}
			switch p.ServedBy {
			case TierFallback, TierCache, TierPrior:
			default:
				t.Fatalf("unexpected tier %q", p.ServedBy)
			}
			if u == 1 && p.ServedBy == TierCache && p.Probability != warm.Probability {
				t.Fatalf("cached score %v != last-known %v", p.Probability, warm.Probability)
			}
			if p.ServedBy == TierPrior && p.Probability != cs.pred.Prior {
				t.Fatalf("prior tier served %v, want %v", p.Probability, cs.pred.Prior)
			}
		}
	}

	// User 1 was scored pre-outage: tier 3 must serve the cached score.
	p, err := cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierCache {
		t.Fatalf("warm user served by %q, want %q", p.ServedBy, TierCache)
	}

	// The faults were genuinely injected — not silently skipped by an
	// open breaker or a mis-wired injector: the injector's own counters
	// moved, and the registry mirror agrees exactly.
	errsInjected, _, _ := cs.inj.Counts()
	if errsInjected < 3 {
		t.Fatalf("injected errors %d, want >= breaker threshold 3", errsInjected)
	}
	exposition := scrapeMetrics(t, cs.pred.Tel)
	wantLine := fmt.Sprintf("turbo_faults_injected_total{kind=%q} %d", "error", errsInjected)
	if !strings.Contains(exposition, wantLine) {
		t.Fatalf("registry fault counter does not match injector: want line %q in:\n%s", wantLine, exposition)
	}

	// The breaker opened after the threshold…
	if st := cs.pred.Breaker.State(); st != resilience.StateOpen {
		t.Fatalf("breaker state %v after sustained outage, want open", st)
	}
	trips := cs.pred.Breaker.Trips()
	if trips < 1 {
		t.Fatalf("trips %d want >= 1", trips)
	}

	// …and half-opens after the cool-down: the next audit's probe is
	// admitted, fails (outage persists), and re-trips the breaker.
	cs.clock.Advance(2 * time.Minute)
	if _, err := cs.pred.PredictCtx(context.Background(), 2, t0.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := cs.pred.Breaker.Trips(); got != trips+1 {
		t.Fatalf("breaker did not half-open and re-trip after cool-down: trips %d want %d", got, trips+1)
	}

	// Recovery: faults off, cool-down elapses, the probe succeeds, the
	// breaker closes, and audits return to the full HAG tier.
	cs.inj.SetConfig(resilience.FaultConfig{})
	cs.clock.Advance(2 * time.Minute)
	p, err = cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierFull {
		t.Fatalf("recovered audit served by %q, want %q", p.ServedBy, TierFull)
	}
	if st := cs.pred.Breaker.State(); st != resilience.StateClosed {
		t.Fatalf("breaker state %v after recovery, want closed", st)
	}
	if p.Probability != warm.Probability {
		t.Fatalf("recovered score %v != pre-outage score %v", p.Probability, warm.Probability)
	}
}

// TestChaosSamplingHangFallsBackToFeatureModel hangs the graph read path
// and asserts the audit degrades to the feature-only tier within the
// sampling deadline instead of blocking.
func TestChaosSamplingHangFallsBackToFeatureModel(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{}, 100)
	viewInj := resilience.NewInjector(resilience.FaultConfig{HangRate: 1, Hang: 500 * time.Millisecond, Seed: 5})
	cs.bn.SetViewWrapper(func(v graph.GraphView) graph.GraphView { return resilience.InjectView(v, viewInj) })
	cs.pred.Deadlines = StageDeadlines{Sample: 20 * time.Millisecond}

	start := time.Now()
	p, err := cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierFallback || !p.Degraded {
		t.Fatalf("hung sampling served by %q (degraded=%v), want %q", p.ServedBy, p.Degraded, TierFallback)
	}
	if float64(p.Probability) != 0.9 {
		t.Fatalf("fallback probability %v want 0.9", p.Probability)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("audit waited out the hang (%v) instead of degrading at the deadline", elapsed)
	}
}

// TestChaosFeatureDelayDegradesFanOutOnly injects per-call latency that
// blows the multi-node fan-out budget while a single call still fits:
// the audit must land on the feature-only tier, proving the ladder
// degrades one rung at a time rather than falling straight to static.
func TestChaosFeatureDelayDegradesFanOutOnly(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{Delay: 100 * time.Millisecond, Seed: 3}, 100)
	cs.pred.Breaker = nil // isolate the deadline behavior
	// Pin the sequential fan-out: this test exercises the deadline
	// ladder via fan-out cost (2 sequential fetches > budget > 1 fetch),
	// which parallel fetches would legitimately hide.
	cs.pred.FanoutWorkers = 1
	cs.pred.Deadlines = StageDeadlines{Feature: 150 * time.Millisecond}

	// User 1's subgraph has 2 nodes: the fan-out needs ~200ms > 150ms,
	// one fallback fetch needs ~100ms < 150ms.
	p, err := cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if p.ServedBy != TierFallback {
		t.Fatalf("served by %q, want %q", p.ServedBy, TierFallback)
	}
}

// TestChaosAdmissionSheds caps in-flight audits at 1, parks one audit in
// a slow feature fetch, and asserts the concurrent audit is shed with
// ErrOverloaded instead of queueing.
func TestChaosAdmissionSheds(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{Delay: 300 * time.Millisecond, Seed: 9}, 100)
	cs.pred.Admission = resilience.NewAdmission(1)

	done := make(chan error, 1)
	go func() {
		_, err := cs.pred.PredictCtx(context.Background(), 1, t0.Add(3*time.Hour))
		done <- err
	}()
	// Wait until the first audit holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for cs.pred.Admission.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first audit never entered")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := cs.pred.PredictCtx(context.Background(), 2, t0.Add(3*time.Hour))
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("concurrent audit not shed: %v", err)
	}
	if got := cs.pred.Served.Get("shed"); got != 1 {
		t.Fatalf("shed counter %d want 1", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted audit failed: %v", err)
	}
	// The slot is free again.
	if _, err := cs.pred.PredictCtx(context.Background(), 2, t0.Add(3*time.Hour)); err != nil {
		t.Fatalf("audit after release failed: %v", err)
	}
}

// TestChaosUnknownUserStays404 asserts degraded tiers never mask a user
// that does not exist: with a healthy feature path, auditing an unknown
// uid errors with ErrUnknownUser even though fallback tiers are armed.
func TestChaosUnknownUserStays404(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{}, 3)
	cs.bn.RegisterTransaction(999) // transaction but no stored profile
	_, err := cs.pred.PredictCtx(context.Background(), 999, t0.Add(3*time.Hour))
	if !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("want ErrUnknownUser, got %v", err)
	}
}

// TestChaosCallerDeadline asserts a caller-supplied context deadline
// degrades the audit rather than erroring.
func TestChaosCallerDeadline(t *testing.T) {
	cs := newChaosStack(t, resilience.FaultConfig{Delay: 200 * time.Millisecond, Seed: 2}, 100)
	cs.pred.Breaker = nil
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p, err := cs.pred.PredictCtx(ctx, 1, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded {
		t.Fatalf("expired caller deadline served undegraded: %+v", p)
	}
	if p.ServedBy != TierPrior && p.ServedBy != TierCache {
		t.Fatalf("served by %q, want a static tier (caller budget already spent)", p.ServedBy)
	}
}
