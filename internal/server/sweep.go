package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// SweepEngine re-scores every audit-eligible user in one shard-parallel
// layer-at-a-time pass over the published BN snapshot (internal/sweep),
// instead of one sampled-subgraph audit per user. It is the online
// counterpart of the eval harness's full-batch scoring: the model
// manager triggers it after each hot swap so the last-known-score cache
// reflects the new model, and POST /admin/sweep runs it on demand.
//
// A sweep reads only immutable state — the snapshot, the model
// parameters, and bulk-fetched feature vectors — so it runs entirely in
// parallel with ingestion and audits; concurrent sweeps are serialized.
type SweepEngine struct {
	bn   *BNServer
	pred *PredictionServer

	// Opts tunes the shard execution (worker count, row costs). The zero
	// value selects one worker per core up to sweep.MaxWorkers with
	// edge-count balancing.
	Opts sweep.Options
	// FetchWorkers bounds the bulk feature fan-out; 0 selects the feature
	// package default.
	FetchWorkers int

	runMu    sync.Mutex // serializes sweeps
	inflight atomic.Int64

	lastMu  sync.RWMutex
	last    SweepReport
	hasLast bool
}

// SweepReport describes one completed full-graph sweep.
type SweepReport struct {
	At         time.Time     `json:"at"`
	Epoch      uint64        `json:"snapshot_epoch"`
	Candidates int           `json:"candidates"` // snapshot users with transactions
	Scored     int           `json:"scored"`
	Skipped    int           `json:"skipped"` // users whose feature fetch failed
	Edges      int           `json:"edges"`
	Steps      int           `json:"steps"`
	Workers    int           `json:"workers"`
	Fallback   bool          `json:"fallback"` // model had no sweep decomposition
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// NewSweepEngine wires a sweep engine over the online stack and
// registers the turbo_sweep_inflight gauge.
func NewSweepEngine(bn *BNServer, pred *PredictionServer) *SweepEngine {
	e := &SweepEngine{bn: bn, pred: pred}
	pred.Tel.RegisterSweepGauge(func() float64 { return float64(e.inflight.Load()) })
	return e
}

// LastReport returns the most recent sweep's report, if any.
func (e *SweepEngine) LastReport() (SweepReport, bool) {
	e.lastMu.RLock()
	defer e.lastMu.RUnlock()
	return e.last, e.hasLast
}

// InFlight reports the number of sweeps currently running (0 or 1; the
// run lock serializes them but callers may be queued).
func (e *SweepEngine) InFlight() int64 { return e.inflight.Load() }

// RunOnce re-scores every user with a transaction in the current
// snapshot: bulk feature fetch, one full-graph subgraph compilation, one
// shard-parallel sweep, then a bulk update of the last-known-score
// cache. Users whose feature fetch fails are skipped and counted, not
// fatal; ctx cancels the feature fetch stage.
func (e *SweepEngine) RunOnce(ctx context.Context) (SweepReport, error) {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	e.runMu.Lock()
	defer e.runMu.Unlock()

	start := time.Now()
	feats, model, norm := e.pred.Serving()
	version := e.pred.ModelVersion()
	if model == nil {
		return SweepReport{}, fmt.Errorf("server: sweep: no model attached")
	}
	snap := e.bn.Snapshot()
	filter := e.bn.TxnFilter()
	var users []behavior.UserID
	for _, id := range snap.Nodes() {
		if filter(id) {
			users = append(users, behavior.UserID(id))
		}
	}
	rep := SweepReport{At: start, Epoch: snap.Epoch(), Candidates: len(users)}
	if len(users) == 0 {
		rep.Elapsed = time.Since(start)
		e.record(rep)
		return rep, nil
	}

	vecs, errs := feature.FetchVectors(ctx, feats, users, time.Now(), e.FetchWorkers)
	if err := ctx.Err(); err != nil {
		return SweepReport{}, fmt.Errorf("server: sweep: feature fetch: %w", err)
	}
	okUsers := make([]behavior.UserID, 0, len(users))
	okNodes := make([]graph.NodeID, 0, len(users))
	okVecs := make([][]float64, 0, len(users))
	for i, vec := range vecs {
		if errs[i] != nil {
			rep.Skipped++
			continue
		}
		if norm != nil {
			vec = norm(vec)
		}
		okUsers = append(okUsers, users[i])
		okNodes = append(okNodes, graph.NodeID(users[i]))
		okVecs = append(okVecs, vec)
	}
	rep.Scored = len(okUsers)
	if rep.Scored == 0 {
		rep.Elapsed = time.Since(start)
		e.record(rep)
		return rep, nil
	}

	x := tensor.GetMatrix(len(okVecs), len(okVecs[0]))
	for i, vec := range okVecs {
		copy(x.Row(i), vec)
	}
	sg := graph.FullSubgraph(snap, graph.FullOptions{Nodes: okNodes})
	b := gnn.NewBatch(sg, x)
	out := make([]float64, len(okNodes))
	st := sweep.ScoresInto(out, model, b, e.Opts)
	b.Release()
	tensor.PutMatrix(x)

	e.pred.RememberScoresFor(okUsers, out, version)
	rep.Edges = st.Edges
	rep.Steps = st.Steps
	rep.Workers = st.Workers
	rep.Fallback = st.Fallback
	rep.Elapsed = time.Since(start)
	e.pred.Tel.ObserveSweep(rep.Elapsed, rep.Scored, st.ShardCompute)
	e.record(rep)
	return rep, nil
}

func (e *SweepEngine) record(rep SweepReport) {
	e.lastMu.Lock()
	e.last, e.hasLast = rep, true
	e.lastMu.Unlock()
}
