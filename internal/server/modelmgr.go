package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"turbo/internal/gnn"
)

// TrainFunc produces a freshly trained model and its feature normalizer
// from whatever data the caller accumulates (the offline side of the
// model management module).
type TrainFunc func() (gnn.Model, func([]float64) []float64, error)

// ModelManager is the model management module of Fig. 2: it retrains the
// classification model offline on a schedule (the paper retrains HAG
// daily) and hot-swaps it into the prediction server without pausing
// audits.
type ModelManager struct {
	mu    sync.Mutex
	pred  *PredictionServer
	train TrainFunc

	retrains  int
	lastError error
	lastSwap  time.Time
}

// NewModelManager wires a manager to a prediction server.
func NewModelManager(pred *PredictionServer, train TrainFunc) *ModelManager {
	return &ModelManager{pred: pred, train: train}
}

// RetrainOnce runs one offline training pass and swaps the new model in.
func (m *ModelManager) RetrainOnce() error {
	model, norm, err := m.train()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.lastError = err
		return fmt.Errorf("server: retrain: %w", err)
	}
	m.pred.SwapModel(model, norm)
	m.retrains++
	m.lastError = nil
	m.lastSwap = time.Now()
	return nil
}

// Run retrains on the given interval until ctx is cancelled. Errors are
// recorded (see Status) and do not stop the loop: the previous model
// keeps serving.
func (m *ModelManager) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = m.RetrainOnce()
		}
	}
}

// Status reports the manager's retrain history.
func (m *ModelManager) Status() (retrains int, lastSwap time.Time, lastError error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retrains, m.lastSwap, m.lastError
}
