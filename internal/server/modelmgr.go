package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/lifecycle"
	"turbo/internal/persist"
)

// TrainFunc produces a freshly trained model and its feature normalizer
// from whatever data the caller accumulates (the offline side of the
// model management module).
type TrainFunc func() (gnn.Model, func([]float64) []float64, error)

// ErrCandidateRejected is returned by RetrainOnce when the validation
// gate quarantines the candidate: training succeeded, but the live
// model keeps serving.
var ErrCandidateRejected = errors.New("server: candidate model rejected by validation gate")

// RetrainReport is the outcome of one retrain pass through the
// validation-gated lifecycle, surfaced in /admin/retrain's JSON.
type RetrainReport struct {
	// Accepted is true when the candidate replaced the live model (always
	// true with the gate disabled and training successful).
	Accepted bool `json:"accepted"`
	// Gated reports whether the validation gate evaluated this candidate.
	Gated bool `json:"gated"`
	// Verdict carries the gate's decision and the full shadow report.
	Verdict *lifecycle.Verdict `json:"verdict,omitempty"`
	// Version is the artifact version persisted for this candidate
	// (accepted or quarantined; 0 when no artifact store is attached).
	Version int `json:"artifact_version,omitempty"`
	// Monitoring is true when a post-swap rollback watch was started.
	Monitoring bool `json:"monitoring"`
}

// LifecycleStatus summarizes the manager's safe-deployment state for
// /stats and operators.
type LifecycleStatus struct {
	GateEnabled    bool               `json:"gate_enabled"`
	Retrains       int                `json:"retrains"`
	Quarantined    int                `json:"quarantined"`
	Rollbacks      int                `json:"rollbacks"`
	CurrentVersion int                `json:"current_version,omitempty"`
	LastSwap       time.Time          `json:"last_swap,omitempty"`
	LastRollback   string             `json:"last_rollback_reason,omitempty"`
	LastVerdict    *lifecycle.Verdict `json:"last_verdict,omitempty"`
	Monitoring     bool               `json:"monitoring"`
}

// ModelManager is the model management module of Fig. 2: it retrains the
// classification model offline on a schedule (the paper retrains HAG
// daily) and hot-swaps it into the prediction server without pausing
// audits. With an artifact store attached, every accepted retrain is
// persisted as a new model version so a restarted server serves the
// latest weights without retraining.
//
// With EnableGate, a candidate is first scored in shadow (labeled
// holdout replay + candidate/live diff on a sampled cohort) and must
// pass the quality gate before SwapModel; rejected candidates persist
// as quarantined artifacts with their reasons and trigger no resweep.
// Accepted swaps are watched by a rollback monitor that re-installs the
// previous accepted artifact when live health regresses.
type ModelManager struct {
	mu    sync.Mutex
	pred  *PredictionServer
	train TrainFunc

	artifacts *persist.ModelStore
	extras    func() persist.Extras
	resweep   func()

	// Validation gate (EnableGate).
	gate       lifecycle.GateConfig
	monitorCfg lifecycle.MonitorConfig
	holdout    HoldoutFunc
	engine     *SweepEngine
	cohortSize int
	logf       func(string, ...any)
	// normBuild reconstructs a serving normalizer from persisted
	// statistics; required for artifact-based rollback (SetNormBuilder).
	normBuild func(mean, std []float64) func([]float64) []float64

	// Rollback state: the monitor watching the last accepted swap, the
	// pre-swap in-memory model pair (fallback when no artifact store),
	// and the artifact version currently serving.
	monitor        *lifecycle.Monitor
	prevModel      gnn.Model
	prevNorm       func([]float64) []float64
	currentVersion int

	retrains     int
	quarantined  int
	rollbacks    int
	lastError    error
	lastSwap     time.Time
	lastRollback string
	lastVerdict  *lifecycle.Verdict
}

// NewModelManager wires a manager to a prediction server.
func NewModelManager(pred *PredictionServer, train TrainFunc) *ModelManager {
	return &ModelManager{pred: pred, train: train}
}

// SetArtifacts attaches a model artifact store; extras (may be nil)
// supplies the normalizer statistics and fallback weights persisted
// alongside each model. Call before retraining starts.
func (m *ModelManager) SetArtifacts(store *persist.ModelStore, extras func() persist.Extras) {
	m.mu.Lock()
	m.artifacts = store
	m.extras = extras
	m.mu.Unlock()
}

// SetResweep installs a hook invoked after every accepted swap — the
// sweep engine re-scores the whole graph there so the last-known-score
// cache reflects the new model immediately, not at each user's next
// audit. The hook runs outside the manager lock (a sweep can take a
// while) but still inside the retrain pass, so /admin/retrain returns
// with the re-score complete. Quarantined candidates never trigger it.
func (m *ModelManager) SetResweep(fn func()) {
	m.mu.Lock()
	m.resweep = fn
	m.mu.Unlock()
}

// EnableGate installs the validation gate and rollback monitor. Call
// before retraining starts.
func (m *ModelManager) EnableGate(opts GateOptions) {
	m.mu.Lock()
	m.gate = opts.Gate
	m.monitorCfg = opts.Monitor
	m.holdout = opts.Holdout
	m.engine = opts.Engine
	m.cohortSize = opts.CohortSize
	m.logf = opts.Logf
	m.mu.Unlock()
}

// SetNormBuilder installs the factory reconstructing a serving
// normalizer from persisted mean/std statistics. Without it, rollback
// falls back to the in-memory pre-swap model instead of the artifact
// store's bitwise reload.
func (m *ModelManager) SetNormBuilder(fn func(mean, std []float64) func([]float64) []float64) {
	m.mu.Lock()
	m.normBuild = fn
	m.mu.Unlock()
}

// SetCurrentVersion records the artifact version serving now (the boot
// path calls this after LoadLatest), anchoring rollback lineage and the
// prediction server's version tag for the tier-3 cache and the
// embedding tier.
func (m *ModelManager) SetCurrentVersion(v int) {
	m.mu.Lock()
	m.currentVersion = v
	m.mu.Unlock()
	m.pred.SetModelVersion(v)
}

// Models returns the artifact lineage (every on-disk version with its
// lifecycle status), nil without an artifact store.
func (m *ModelManager) Models() []persist.Manifest {
	m.mu.Lock()
	store := m.artifacts
	m.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.List()
}

func (m *ModelManager) logfSafe(format string, args ...any) {
	m.mu.Lock()
	logf := m.logf
	m.mu.Unlock()
	if logf != nil {
		logf(format, args...)
	}
}

// runTrain invokes the training function with panic isolation: a
// panicking TrainFunc (bad batch, shape mismatch in experimental code)
// must cost one retrain cycle, never the serving process.
func (m *ModelManager) runTrain() (model gnn.Model, norm func([]float64) []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			model, norm = nil, nil
			err = fmt.Errorf("server: retrain panicked: %v", r)
		}
	}()
	return m.train()
}

// RetrainOnce runs one offline training pass through the full
// lifecycle. Training failures — including a panicking TrainFunc —
// leave the previous model serving and record the error; a gate
// rejection returns ErrCandidateRejected (the quarantined artifact and
// reasons are persisted, live scoring is untouched).
func (m *ModelManager) RetrainOnce() error {
	rep, err := m.RetrainOnceCtx(context.Background())
	if err != nil {
		return err
	}
	if !rep.Accepted {
		reasons := "no reasons recorded"
		if rep.Verdict != nil && len(rep.Verdict.Reasons) > 0 {
			reasons = strings.Join(rep.Verdict.Reasons, "; ")
		}
		return fmt.Errorf("%w: %s", ErrCandidateRejected, reasons)
	}
	return nil
}

// RetrainOnceCtx is RetrainOnce with context cancellation and the full
// lifecycle report: train → shadow-evaluate → gate → swap or quarantine
// → monitor. A gate rejection is a successful gate decision, not an
// error: it returns (report with Accepted=false, nil).
func (m *ModelManager) RetrainOnceCtx(ctx context.Context) (RetrainReport, error) {
	model, norm, err := m.runTrain()
	if err != nil {
		m.mu.Lock()
		m.lastError = err
		m.mu.Unlock()
		m.pred.Tel.RetrainFailed()
		return RetrainReport{}, fmt.Errorf("server: retrain: %w", err)
	}
	if cerr := ctx.Err(); cerr != nil {
		// Caller gone mid-train: discard the candidate rather than swap a
		// model nobody asked to promote.
		return RetrainReport{}, fmt.Errorf("server: retrain: %w", cerr)
	}

	m.mu.Lock()
	gate, monCfg := m.gate, m.monitorCfg
	holdout, engine, cohortSize := m.holdout, m.engine, m.cohortSize
	m.mu.Unlock()

	rep := RetrainReport{Gated: gate.Enabled()}
	var baseline []float64 // pre-swap live cohort scores
	if gate.Enabled() {
		shadow := lifecycle.ShadowReport{At: time.Now()}
		if holdout != nil {
			hr, herr := holdout(model, norm)
			if herr != nil {
				m.logfSafe("lifecycle: holdout evaluation failed: %v", herr)
			} else {
				shadow.Holdout = hr
			}
		}
		if engine != nil {
			cand, live, derr := engine.ShadowPair(ctx, model, norm, cohortSize)
			switch {
			case derr != nil:
				m.logfSafe("lifecycle: shadow cohort diff failed: %v", derr)
			case len(cand) > 0:
				d := lifecycle.DiffCohort(cand, live, m.pred.Threshold)
				shadow.Cohort = &d
				baseline = live
			}
		}
		v := gate.Check(shadow)
		rep.Verdict = &v
		m.pred.Tel.GateEvaluated(v)
		m.mu.Lock()
		m.lastVerdict = &v
		m.mu.Unlock()
		if !v.Accepted {
			m.quarantine(model, v, &rep)
			return rep, nil
		}
	}

	// Accepted (or ungated): remember the pre-swap pair for rollback,
	// swap, persist, and start the post-swap watch.
	_, prevModel, prevNorm := m.pred.Serving()
	m.pred.SwapModel(model, norm)
	rep.Accepted = true
	m.mu.Lock()
	m.retrains++
	m.lastError = nil
	m.lastSwap = time.Now()
	m.prevModel, m.prevNorm = prevModel, prevNorm
	store, extras := m.artifacts, m.extras
	m.mu.Unlock()
	if store != nil {
		var ex persist.Extras
		if extras != nil {
			ex = extras()
		}
		if man, aerr := store.Save(model, ex); aerr != nil {
			// The new model serves regardless; only its durability failed.
			m.mu.Lock()
			m.lastError = fmt.Errorf("server: persist model artifact: %w", aerr)
			m.mu.Unlock()
			m.pred.Tel.ArtifactSaved(false)
		} else {
			rep.Version = man.Version
			m.mu.Lock()
			m.currentVersion = man.Version
			m.mu.Unlock()
			m.pred.SetModelVersion(man.Version)
			m.pred.Tel.ArtifactSaved(true)
		}
	}
	if monCfg.Window > 0 {
		m.startMonitor(monCfg, baseline)
		rep.Monitoring = true
	}
	m.mu.Lock()
	resweep := m.resweep
	m.mu.Unlock()
	if resweep != nil {
		resweep()
	}
	return rep, nil
}

// quarantine persists a rejected candidate with its reasons and records
// the rejection; the live model, cache and sweep state are untouched.
func (m *ModelManager) quarantine(model gnn.Model, v lifecycle.Verdict, rep *RetrainReport) {
	m.mu.Lock()
	m.quarantined++
	store, extras := m.artifacts, m.extras
	m.mu.Unlock()
	if store != nil {
		var ex persist.Extras
		if extras != nil {
			ex = extras()
		}
		if man, aerr := store.SaveStatus(model, ex, persist.StatusQuarantined, v.Reasons); aerr != nil {
			m.logfSafe("lifecycle: persisting quarantined candidate: %v", aerr)
			m.pred.Tel.ArtifactSaved(false)
		} else {
			rep.Version = man.Version
			m.pred.Tel.ArtifactSaved(true)
		}
	}
	m.logfSafe("lifecycle: candidate rejected: %s", strings.Join(v.Reasons, "; "))
}

// startMonitor begins the post-swap watch, superseding any previous
// watch. baseline is the pre-swap live cohort's score distribution for
// the score-shift probe (may be nil).
func (m *ModelManager) startMonitor(cfg lifecycle.MonitorConfig, baseline []float64) {
	m.mu.Lock()
	if m.monitor != nil {
		m.monitor.Stop()
	}
	engine, cohortSize, logf := m.engine, m.cohortSize, m.logf
	m.mu.Unlock()
	probes := lifecycle.Probes{
		Health:   m.pred.HealthSnapshot,
		Rollback: func(reason string) error { return m.Rollback("monitor: " + reason) },
		Logf:     logf,
	}
	if cfg.MaxScoreShift > 0 && engine != nil && len(baseline) > 0 {
		probes.ScoreShift = func() (float64, bool) {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			scores, err := engine.CohortScores(sctx, cohortSize)
			if err != nil || len(scores) == 0 {
				return 0, false
			}
			return lifecycle.PSI(baseline, scores, 0), true
		}
	}
	mon := lifecycle.Start(cfg, probes)
	m.mu.Lock()
	m.monitor = mon
	m.mu.Unlock()
}

// Monitor returns the watch over the last accepted swap (nil when none
// is running or it has been superseded).
func (m *ModelManager) Monitor() *lifecycle.Monitor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.monitor
}

// Rollback re-installs the previous accepted model: preferentially a
// bitwise reload of the newest accepted artifact older than the serving
// one, else the in-memory pre-swap pair. The withdrawn artifact is
// marked rolled_back on disk (with the reason) so a restart never
// reloads it, and the resweep hook restores the pre-swap score cache.
// Safe to call from the monitor's own goroutine and from HTTP.
func (m *ModelManager) Rollback(reason string) error {
	m.mu.Lock()
	if m.monitor != nil {
		m.monitor.Stop() // non-blocking: we may BE the monitor goroutine
		m.monitor = nil
	}
	cur := m.currentVersion
	store, normBuild := m.artifacts, m.normBuild
	prevModel, prevNorm := m.prevModel, m.prevNorm
	m.mu.Unlock()

	var model gnn.Model
	var norm func([]float64) []float64
	restored := 0
	if store != nil && normBuild != nil {
		if lm, err := store.LoadPreviousAccepted(cur); err == nil {
			model = lm.Model
			if len(lm.NormMean) > 0 {
				norm = normBuild(lm.NormMean, lm.NormStd)
			}
			restored = lm.Manifest.Version
		} else if !errors.Is(err, persist.ErrNoArtifact) {
			m.logfSafe("lifecycle: rollback artifact reload: %v", err)
		}
	}
	if model == nil {
		model, norm = prevModel, prevNorm
	}
	if model == nil {
		return fmt.Errorf("server: rollback: no previous accepted model available")
	}

	m.pred.SwapModel(model, norm)
	if store != nil && cur > 0 {
		if err := store.SetStatus(cur, persist.StatusRolledBack, reason); err != nil {
			m.logfSafe("lifecycle: marking artifact v%d rolled back: %v", cur, err)
		}
	}
	m.mu.Lock()
	m.rollbacks++
	m.lastRollback = reason
	m.currentVersion = restored
	if restored > 0 {
		// Pin the restored artifact version (SwapModel already dropped
		// the withdrawn model's cache under a synthetic tag).
		m.pred.SetModelVersion(restored)
	}
	m.prevModel, m.prevNorm = nil, nil // consumed
	resweep := m.resweep
	m.mu.Unlock()
	m.pred.Tel.RolledBack()
	m.logfSafe("lifecycle: rolled back to %s: %s", versionName(restored), reason)
	if resweep != nil {
		resweep()
	}
	return nil
}

func versionName(v int) string {
	if v == 0 {
		return "in-memory pre-swap model"
	}
	return fmt.Sprintf("artifact v%d", v)
}

// Run retrains on the given interval until ctx is cancelled. Errors and
// gate rejections are recorded (see Status/Lifecycle) and do not stop
// the loop: the previous model keeps serving.
func (m *ModelManager) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_, _ = m.RetrainOnceCtx(ctx)
		}
	}
}

// Status reports the manager's retrain history.
func (m *ModelManager) Status() (retrains int, lastSwap time.Time, lastError error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retrains, m.lastSwap, m.lastError
}

// Lifecycle reports the safe-deployment state.
func (m *ModelManager) Lifecycle() LifecycleStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	monitoring := false
	if m.monitor != nil {
		select {
		case <-m.monitor.Done():
		default:
			monitoring = true
		}
	}
	return LifecycleStatus{
		GateEnabled:    m.gate.Enabled(),
		Retrains:       m.retrains,
		Quarantined:    m.quarantined,
		Rollbacks:      m.rollbacks,
		CurrentVersion: m.currentVersion,
		LastSwap:       m.lastSwap,
		LastRollback:   m.lastRollback,
		LastVerdict:    m.lastVerdict,
		Monitoring:     monitoring,
	}
}
