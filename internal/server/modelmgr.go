package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"turbo/internal/gnn"
	"turbo/internal/persist"
)

// TrainFunc produces a freshly trained model and its feature normalizer
// from whatever data the caller accumulates (the offline side of the
// model management module).
type TrainFunc func() (gnn.Model, func([]float64) []float64, error)

// ModelManager is the model management module of Fig. 2: it retrains the
// classification model offline on a schedule (the paper retrains HAG
// daily) and hot-swaps it into the prediction server without pausing
// audits. With an artifact store attached, every accepted retrain is
// persisted as a new model version so a restarted server serves the
// latest weights without retraining.
type ModelManager struct {
	mu    sync.Mutex
	pred  *PredictionServer
	train TrainFunc

	artifacts *persist.ModelStore
	extras    func() persist.Extras
	resweep   func()

	retrains  int
	lastError error
	lastSwap  time.Time
}

// NewModelManager wires a manager to a prediction server.
func NewModelManager(pred *PredictionServer, train TrainFunc) *ModelManager {
	return &ModelManager{pred: pred, train: train}
}

// SetArtifacts attaches a model artifact store; extras (may be nil)
// supplies the normalizer statistics and fallback weights persisted
// alongside each model. Call before retraining starts.
func (m *ModelManager) SetArtifacts(store *persist.ModelStore, extras func() persist.Extras) {
	m.mu.Lock()
	m.artifacts = store
	m.extras = extras
	m.mu.Unlock()
}

// SetResweep installs a hook invoked after every accepted swap — the
// sweep engine re-scores the whole graph there so the last-known-score
// cache reflects the new model immediately, not at each user's next
// audit. The hook runs outside the manager lock (a sweep can take a
// while) but still inside the retrain pass, so /admin/retrain returns
// with the re-score complete.
func (m *ModelManager) SetResweep(fn func()) {
	m.mu.Lock()
	m.resweep = fn
	m.mu.Unlock()
}

// runTrain invokes the training function with panic isolation: a
// panicking TrainFunc (bad batch, shape mismatch in experimental code)
// must cost one retrain cycle, never the serving process.
func (m *ModelManager) runTrain() (model gnn.Model, norm func([]float64) []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			model, norm = nil, nil
			err = fmt.Errorf("server: retrain panicked: %v", r)
		}
	}()
	return m.train()
}

// RetrainOnce runs one offline training pass and swaps the new model in.
// Failures — including a panicking TrainFunc — leave the previous model
// serving, record the error (Status) and bump
// turbo_retrain_failures_total.
func (m *ModelManager) RetrainOnce() error {
	model, norm, err := m.runTrain()
	m.mu.Lock()
	if err != nil {
		m.lastError = err
		m.mu.Unlock()
		m.pred.Tel.RetrainFailed()
		return fmt.Errorf("server: retrain: %w", err)
	}
	m.pred.SwapModel(model, norm)
	m.retrains++
	m.lastError = nil
	m.lastSwap = time.Now()
	if m.artifacts != nil {
		var ex persist.Extras
		if m.extras != nil {
			ex = m.extras()
		}
		if _, aerr := m.artifacts.Save(model, ex); aerr != nil {
			// The new model serves regardless; only its durability failed.
			m.lastError = fmt.Errorf("server: persist model artifact: %w", aerr)
			m.pred.Tel.ArtifactSaved(false)
		} else {
			m.pred.Tel.ArtifactSaved(true)
		}
	}
	resweep := m.resweep
	m.mu.Unlock()
	if resweep != nil {
		resweep()
	}
	return nil
}

// Run retrains on the given interval until ctx is cancelled. Errors are
// recorded (see Status) and do not stop the loop: the previous model
// keeps serving.
func (m *ModelManager) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = m.RetrainOnce()
		}
	}
}

// Status reports the manager's retrain history.
func (m *ModelManager) Status() (retrains int, lastSwap time.Time, lastError error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retrains, m.lastSwap, m.lastError
}
