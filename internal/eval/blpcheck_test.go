package eval

import (
	"os"
	"testing"

	"turbo/internal/datagen"
)

// TestHAGBeatsBLPAtScale is the Table III headline assertion: with
// benign household device sharing in the world, flat graph features
// (BLP) lose their free lunch and HAG must lead on F1. Gated behind an
// env var because it trains at default scale (minutes).
func TestHAGBeatsBLPAtScale(t *testing.T) {
	if os.Getenv("TURBO_SCALE_TESTS") == "" {
		t.Skip("set TURBO_SCALE_TESTS=1 to run the default-scale ordering check")
	}
	a := Assemble(datagen.Default(), AssembleOptions{})
	h := DefaultHyper()
	h.Epochs = 80
	blp := RunBLP(a, h, 1)
	t.Logf("BLP: %v", blp)
	hag := RunHAG(a, HAGFull, h, 1)
	t.Logf("HAG: %v", hag)
	if hag.F1 <= blp.F1 {
		t.Fatalf("Table III shape violated: HAG F1 %v <= BLP F1 %v", hag.F1, blp.F1)
	}
}
