package eval

import (
	"fmt"
	"strings"
	"time"

	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/metrics"
	"turbo/internal/tensor"
)

// LatencyStudy is the §V optimization experiment: the same audit
// workload served by a cold pipeline (every request recomputes X_s with
// simulated database round-trips) versus the cached pipeline (in-memory
// store with TTL). The paper's production numbers dropped from a 6.8 s
// mean to 0.8 s; the shape to reproduce is roughly an order of magnitude.
type LatencyStudy struct {
	Cold map[string]metrics.Summary
	Warm map[string]metrics.Summary
}

// String renders both pipelines' digests.
func (s LatencyStudy) String() string {
	var b strings.Builder
	b.WriteString("§V latency optimization — cold (DB scans) vs cached (in-memory)\n")
	for _, mode := range []struct {
		name string
		sums map[string]metrics.Summary
	}{{"cold", s.Cold}, {"warm", s.Warm}} {
		for _, key := range []string{"sampling", "features", "predict", "total"} {
			fmt.Fprintf(&b, "%-5s %-9s %v\n", mode.name, key, sums(mode.sums, key))
		}
	}
	return b.String()
}

func sums(m map[string]metrics.Summary, key string) metrics.Summary {
	if m == nil {
		return metrics.Summary{}
	}
	return m[key]
}

// LatencyOptions tunes the study.
type LatencyOptions struct {
	// Requests is the number of audits per pipeline; 0 selects 200.
	Requests int
	// DBLatency simulates one local-database round trip on cold feature
	// computations; 0 selects 2 ms.
	DBLatency time.Duration
	// Hyper configures the model used for prediction.
	Hyper Hyper
	Seed  uint64
}

// RunLatencyStudy trains HAG on the dataset and serves the same audit
// stream through a cold and a cached core.System.
func RunLatencyStudy(cfg datagen.Config, opts LatencyOptions) LatencyStudy {
	if opts.Requests == 0 {
		opts.Requests = 200
	}
	if opts.DBLatency == 0 {
		opts.DBLatency = 2 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	h := opts.Hyper.withDefaults()
	a := Assemble(cfg, AssembleOptions{SplitSeed: opts.Seed})
	model, _ := TrainHAG(a, HAGFull, h, opts.Seed)

	run := func(fc feature.Config) map[string]metrics.Summary {
		sys := buildSystem(a, model, fc)
		rng := tensor.NewRNG(opts.Seed)
		users := a.Data.Users
		for k := 0; k < opts.Requests; k++ {
			u := &users[rng.Intn(len(users))]
			if _, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour)); err != nil {
				panic(err)
			}
		}
		return sys.PredictionServer().LatencySummaries()
	}

	return LatencyStudy{
		Cold: run(feature.Config{DisableCache: true, DBLatency: opts.DBLatency}),
		Warm: run(feature.Config{DBLatency: opts.DBLatency, CacheTTL: time.Hour}),
	}
}

// buildSystem loads an assembled dataset into a fresh core.System with
// the trained model attached.
func buildSystem(a *Assembled, model gnn.Model, fc feature.Config) *core.System {
	sys, err := core.New(core.Config{Feature: fc, Threshold: 0.85}, a.Data.Start)
	if err != nil {
		panic(err)
	}
	sys.SetModel(model, a.Norm.Apply)
	sys.IngestBatch(a.Data.Logs)
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			panic(err)
		}
	}
	sys.Advance(a.Data.End.Add(48 * time.Hour))
	return sys
}

// ModuleLatencySeries is Fig. 8a: per-request latency of the three
// online modules over a stream of audit requests.
type ModuleLatencySeries struct {
	Sample  []time.Duration
	Feature []time.Duration
	Predict []time.Duration
	Total   []time.Duration
}

// RunResponseTimeStudy serves n audits through a cached system and
// returns the per-request module latencies (Fig. 8a).
func RunResponseTimeStudy(a *Assembled, model gnn.Model, n int, seed uint64) ModuleLatencySeries {
	sys := buildSystem(a, model, feature.Config{CacheTTL: time.Hour})
	rng := tensor.NewRNG(seed)
	var out ModuleLatencySeries
	for k := 0; k < n; k++ {
		u := &a.Data.Users[rng.Intn(len(a.Data.Users))]
		pred, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour))
		if err != nil {
			panic(err)
		}
		out.Sample = append(out.Sample, pred.SampleLatency)
		out.Feature = append(out.Feature, pred.FeatureLatency)
		out.Predict = append(out.Predict, pred.PredictLatency)
		out.Total = append(out.Total, pred.TotalLatency)
	}
	return out
}
