package eval

import (
	"turbo/internal/baselines"
	"turbo/internal/behavior"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/hag"
	"turbo/internal/metrics"
	"turbo/internal/sweep"
	"turbo/internal/tensor"
)

// Hyper bundles the model hyperparameters used by all experiment
// runners. The zero value selects reduced sizes tuned for the default
// laptop-scale dataset; PaperScale switches to the §VI-A settings
// (hidden 128/64, attention 64, MLP 32).
type Hyper struct {
	Hidden    []int
	AttHidden int
	MLPHidden int
	Epochs    int
	LR        float64
	Dropout   float64
	Threshold float64 // classification threshold; 0 selects 0.5
}

// DefaultHyper returns the reduced-size settings.
func DefaultHyper() Hyper {
	return Hyper{
		Hidden:    []int{32, 16},
		AttHidden: 16,
		MLPHidden: 16,
		Epochs:    120,
		LR:        8e-3,
		Dropout:   0.1,
		Threshold: 0.5,
	}
}

// PaperHyper returns the §VI-A settings.
func PaperHyper() Hyper {
	return Hyper{
		Hidden:    []int{128, 64},
		AttHidden: 64,
		MLPHidden: 32,
		Epochs:    200,
		LR:        5e-3,
		Dropout:   0.1,
		Threshold: 0.5,
	}
}

func (h Hyper) withDefaults() Hyper {
	d := DefaultHyper()
	if len(h.Hidden) == 0 {
		h.Hidden = d.Hidden
	}
	if h.AttHidden == 0 {
		h.AttHidden = d.AttHidden
	}
	if h.MLPHidden == 0 {
		h.MLPHidden = d.MLPHidden
	}
	if h.Epochs == 0 {
		h.Epochs = d.Epochs
	}
	if h.LR == 0 {
		h.LR = d.LR
	}
	if h.Threshold == 0 {
		h.Threshold = 0.5
	}
	return h
}

func (h Hyper) gnnConfig(inDim int, seed uint64) gnn.Config {
	return gnn.Config{
		InDim:     inDim,
		Hidden:    h.Hidden,
		MLPHidden: h.MLPHidden,
		Dropout:   h.Dropout,
		Seed:      seed,
	}
}

func (h Hyper) hagConfig(inDim, numTypes int, seed uint64) hag.Config {
	return hag.Config{
		InDim:        inDim,
		NumEdgeTypes: numTypes,
		Hidden:       h.Hidden,
		AttHidden:    h.AttHidden,
		MLPHidden:    h.MLPHidden,
		Dropout:      h.Dropout,
		Seed:         seed,
	}
}

func (h Hyper) trainConfig(seed uint64) gnn.TrainConfig {
	return gnn.TrainConfig{
		Epochs:         h.Epochs,
		LR:             h.LR,
		BalanceClasses: true,
		Seed:           seed,
	}
}

// EvaluateScores reduces full-graph scores to a test-split report.
func (a *Assembled) EvaluateScores(scores []float64, thresh float64) metrics.Report {
	return metrics.Evaluate(a.ScoresAt(scores), a.TestLabels(), thresh)
}

// SweepScores scores every node of the batch through one shard-parallel
// layer-at-a-time sweep (internal/sweep) instead of a per-node loop or
// per-batch forward. The sweep runs the identical Infer kernels over
// row ranges, so the scores — and every metric computed from them in
// results_tables.txt — are unchanged from gnn.Scores; the eval shape
// tests pin the two paths to exact equality.
func SweepScores(m gnn.Model, b *gnn.Batch) []float64 {
	out, _ := sweep.Scores(m, b, sweep.Options{})
	return out
}

// RunFeatureModel trains a feature-only classifier (LR, SVM, GBDT, DNN)
// and evaluates it on the test split.
func RunFeatureModel(a *Assembled, clf baselines.Classifier, h Hyper) metrics.Report {
	h = h.withDefaults()
	clf.Fit(a.FeatureRows(a.TrainIdx), a.LabelsAt(a.TrainIdx))
	scores := clf.PredictProba(a.X)
	return a.EvaluateScores(scores, h.Threshold)
}

// GNNKind selects a baseline GNN.
type GNNKind int

// Baseline GNN kinds.
const (
	KindGCN GNNKind = iota
	KindSAGE
	KindGAT
)

// NewGNN constructs a baseline GNN of the given kind.
func NewGNN(kind GNNKind, cfg gnn.Config) gnn.Model {
	switch kind {
	case KindGCN:
		return gnn.NewGCN(cfg)
	case KindSAGE:
		return gnn.NewGraphSAGE(cfg)
	default:
		return gnn.NewGAT(cfg)
	}
}

// RunGNN trains a baseline GNN full-graph and evaluates the test split.
func RunGNN(a *Assembled, kind GNNKind, h Hyper, seed uint64) metrics.Report {
	h = h.withDefaults()
	b := a.FullBatch()
	m := NewGNN(kind, h.gnnConfig(b.X.Cols, seed))
	gnn.Train(m, b, a.TrainIdx, a.Labels, h.trainConfig(seed))
	return a.EvaluateScores(SweepScores(m, b), h.Threshold)
}

// HAGVariant selects the Table V ablation.
type HAGVariant int

// HAG variants of Table V.
const (
	HAGFull HAGVariant = iota
	HAGNoSAO
	HAGNoCFO
	HAGNeither
)

// NewHAG constructs the chosen HAG variant.
func NewHAG(v HAGVariant, cfg hag.Config) *hag.HAG {
	cfg.DisableSAOGate = v == HAGNoSAO || v == HAGNeither
	cfg.DisableCFO = v == HAGNoCFO || v == HAGNeither
	return hag.New(cfg)
}

// TrainHAG trains a HAG variant on the assembled dataset and returns the
// fitted model with its full-graph batch.
func TrainHAG(a *Assembled, v HAGVariant, h Hyper, seed uint64) (*hag.HAG, *gnn.Batch) {
	h = h.withDefaults()
	b := a.FullBatch()
	m := NewHAG(v, h.hagConfig(b.X.Cols, a.Graph.NumEdgeTypes(), seed))
	gnn.Train(m, b, a.TrainIdx, a.Labels, h.trainConfig(seed))
	return m, b
}

// RunHAG trains and evaluates a HAG variant.
func RunHAG(a *Assembled, v HAGVariant, h Hyper, seed uint64) metrics.Report {
	h = h.withDefaults()
	m, b := TrainHAG(a, v, h, seed)
	return a.EvaluateScores(SweepScores(m, b), h.Threshold)
}

// RunHAGMasked trains HAG with one edge type removed (Fig. 7) and
// returns its report.
func RunHAGMasked(a *Assembled, t behavior.Type, h Hyper, seed uint64) metrics.Report {
	h = h.withDefaults()
	b := a.MaskedBatch(t)
	m := NewHAG(HAGFull, h.hagConfig(b.X.Cols, a.Graph.NumEdgeTypes(), seed))
	gnn.Train(m, b, a.TrainIdx, a.Labels, h.trainConfig(seed))
	return a.EvaluateScores(SweepScores(m, b), h.Threshold)
}

// RunHAGInductive trains HAG with neighbor-sampled minibatches (the
// paper's online-faithful training mode, batch size 256) and evaluates
// the test split with per-node sampled computation subgraphs — both
// sides of the pipeline see only sampled neighborhoods, never the full
// BN.
func RunHAGInductive(a *Assembled, h Hyper, seed uint64, batchSize int) metrics.Report {
	h = h.withDefaults()
	m := NewHAG(HAGFull, h.hagConfig(a.X.Cols, a.Graph.NumEdgeTypes(), seed))
	feats := func(n graph.NodeID) []float64 { return a.X.Row(int(n)) }
	trainNodes := make([]graph.NodeID, len(a.TrainIdx))
	trainLabels := make([]float64, len(a.TrainIdx))
	for k, i := range a.TrainIdx {
		trainNodes[k] = a.Nodes[i]
		trainLabels[k] = a.Labels[i]
	}
	gnn.TrainInductive(m, a.Graph, feats, trainNodes, trainLabels, gnn.InductiveConfig{
		TrainConfig: h.trainConfig(seed),
		BatchSize:   batchSize,
	})
	scores := make([]float64, len(a.TestIdx))
	rng := tensor.NewRNG(seed)
	for k, i := range a.TestIdx {
		b, rows := gnn.SampleBatch(a.Graph, feats, []graph.NodeID{a.Nodes[i]}, 2, 25, rng)
		scores[k] = gnn.Scores(m, b)[rows[0]]
	}
	return metrics.Evaluate(scores, a.TestLabels(), h.Threshold)
}

// RunBLP runs the BLP baseline: original + graph features into GBDT.
func RunBLP(a *Assembled, h Hyper, seed uint64) metrics.Report {
	h = h.withDefaults()
	x := a.GraphFeatureMatrix(true)
	clf := &baselines.GBDT{Balance: true, Seed: seed}
	clf.Fit(x.SelectRows(a.TrainIdx), a.LabelsAt(a.TrainIdx))
	return a.EvaluateScores(clf.PredictProba(x), h.Threshold)
}

// RunDTX runs DeepTrax: DeepWalk embeddings (optionally concatenated
// with original features, DTX2) into GBDT.
func RunDTX(a *Assembled, withFeatures bool, h Hyper, seed uint64) metrics.Report {
	h = h.withDefaults()
	dtx := &baselines.DTX{WithFeatures: withFeatures}
	dtx.Walk.Seed = seed
	raw := dtx.BuildFeatures(a.Graph, a.Nodes, a.RawX)
	x := standardizeOnTrain(raw, a.TrainIdx)
	clf := &baselines.GBDT{Balance: true, Seed: seed}
	clf.Fit(x.SelectRows(a.TrainIdx), a.LabelsAt(a.TrainIdx))
	return a.EvaluateScores(clf.PredictProba(x), h.Threshold)
}

// seedsOrDefault returns the run seeds for multi-round experiments.
func seedsOrDefault(seeds []uint64) []uint64 {
	if len(seeds) > 0 {
		return seeds
	}
	return []uint64{1, 2, 3}
}
