// Package eval is the experiment harness: it assembles datasets (synthetic
// world → behavior store → BN → features), runs every method of §VI-A,
// and regenerates the paper's tables and figure series as typed results
// with text renderers. cmd/turbo-bench and bench_test.go are thin
// wrappers over this package.
package eval

import (
	"time"

	"turbo/internal/baselines"
	"turbo/internal/behavior"
	"turbo/internal/bn"
	"turbo/internal/datagen"
	"turbo/internal/feature"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// Assembled is a dataset prepared for experiments: the generated world,
// its behavior store, the constructed BN, per-user feature rows
// (X_u ⊕ X_τ ⊕ X_s, z-scored on the training split), labels, and the
// 80/20 UID split of §VI-A.
type Assembled struct {
	Data  *datagen.Dataset
	Store *behavior.Store
	// Graph is an immutable snapshot of the constructed BN. Assembly
	// freezes the graph once built, so every experiment scan (figures,
	// homophily walks, full-batch compilation, baselines) reads the
	// lock-free GraphView and can safely run in parallel.
	Graph graph.GraphView
	Feat  *feature.Service

	Nodes  []graph.NodeID // node i is user ID i
	X      *tensor.Matrix // standardized features
	RawX   *tensor.Matrix
	Norm   *Normalizer // fitted on the train split; reused online
	Labels []float64
	Bools  []bool

	TrainIdx []int
	TestIdx  []int
}

// AssembleOptions tweaks assembly.
type AssembleOptions struct {
	// SplitSeed drives the train/test split; 0 selects 1.
	SplitSeed uint64
	// TestFrac is the test fraction; 0 selects 0.2.
	TestFrac float64
	// BN overrides the BN construction config (zero value = defaults).
	BN bn.Config
}

// Assemble generates the world for cfg and prepares every experiment
// input. The BN is built over the full observation range with Algorithm 1
// defaults; statistical features are computed at each user's audit time
// (application time + 24 h, §VI-A).
func Assemble(cfg datagen.Config, opts AssembleOptions) *Assembled {
	return AssembleDataset(datagen.Generate(cfg), opts)
}

// AssembleDataset prepares experiment inputs from an existing dataset
// (e.g. one loaded from the turbo-datagen JSONL files).
func AssembleDataset(data *datagen.Dataset, opts AssembleOptions) *Assembled {
	if opts.SplitSeed == 0 {
		opts.SplitSeed = 1
	}
	if opts.TestFrac == 0 {
		opts.TestFrac = 0.2
	}
	store := data.Store()

	g := graph.New(behavior.NumTypes)
	builder, err := bn.NewBuilder(opts.BN, store, g, data.Start)
	if err != nil {
		panic(err) // defaults are always valid; a caller bug otherwise
	}
	builder.BuildRange(data.Start, data.End.Add(24*time.Hour))

	feat := feature.NewService(feature.Config{}, store)
	n := len(data.Users)
	a := &Assembled{Data: data, Store: store, Feat: feat}
	a.Nodes = make([]graph.NodeID, n)
	a.Labels = make([]float64, n)
	a.Bools = make([]bool, n)
	dim := datagen.NumFeatures() + feature.NumStatFeatures()
	a.RawX = tensor.New(n, dim)
	for i := range data.Users {
		u := &data.Users[i]
		a.Nodes[i] = graph.NodeID(u.ID)
		g.AddNode(graph.NodeID(u.ID)) // isolated users still classified
		if u.Fraud {
			a.Labels[i] = 1
			a.Bools[i] = true
		}
		if err := feat.PutProfile(u.ID, u.Features()); err != nil {
			panic(err)
		}
		vec, err := feat.Vector(u.ID, u.AppTime.Add(24*time.Hour))
		if err != nil {
			panic(err)
		}
		copy(a.RawX.Row(i), vec)
	}
	// Freeze the BN: all experiment readers consume the immutable
	// snapshot view from here on.
	a.Graph = g.Snapshot()

	// 80/20 split by UID.
	rng := tensor.NewRNG(opts.SplitSeed)
	perm := rng.Perm(n)
	nTest := int(float64(n) * opts.TestFrac)
	a.TestIdx = append([]int(nil), perm[:nTest]...)
	a.TrainIdx = append([]int(nil), perm[nTest:]...)

	a.Norm = FitNormalizer(a.RawX, a.TrainIdx)
	a.X = a.Norm.ApplyMatrix(a.RawX)
	return a
}

// standardizeOnTrain z-scores every column using statistics of the
// training rows only (fit + apply in one step).
func standardizeOnTrain(x *tensor.Matrix, trainIdx []int) *tensor.Matrix {
	return FitNormalizer(x, trainIdx).ApplyMatrix(x)
}

// FullBatch compiles the whole BN (restricted to user nodes, which is
// all nodes here) into a GNN batch whose node order matches a.Nodes.
func (a *Assembled) FullBatch() *gnn.Batch {
	sg := a.fullSubgraph(graph.NoMask, false)
	return gnn.NewBatch(sg, a.X)
}

// FullBatchRaw is FullBatch without the §III-A symmetric edge-weight
// normalization (the normalization ablation bench).
func (a *Assembled) FullBatchRaw() *gnn.Batch {
	sg := a.fullSubgraph(graph.NoMask, true)
	return gnn.NewBatch(sg, a.X)
}

// MaskedBatch compiles the BN with one edge type removed (Fig. 7).
func (a *Assembled) MaskedBatch(t behavior.Type) *gnn.Batch {
	sg := a.fullSubgraph(graph.MaskEdgeType(graph.EdgeType(t)), false)
	return gnn.NewBatch(sg, a.X)
}

// fullSubgraph builds a Subgraph containing every user node in a.Nodes
// order with all (unmasked) typed edges, delegating to the shared
// full-graph export so experiments and the sweep engine compile the
// identical edge set and §III-A normalization. The snapshot a.Graph
// holds takes the export's lock-free fast path.
func (a *Assembled) fullSubgraph(mask graph.EdgeMask, rawWeights bool) *graph.Subgraph {
	return graph.FullSubgraph(a.Graph, graph.FullOptions{
		Nodes:      a.Nodes,
		RawWeights: rawWeights,
		Mask:       mask,
	})
}

// TestLabels returns the boolean labels of the test split, aligned with
// the scores produced by ScoresAt.
func (a *Assembled) TestLabels() []bool {
	out := make([]bool, len(a.TestIdx))
	for k, i := range a.TestIdx {
		out[k] = a.Bools[i]
	}
	return out
}

// ScoresAt gathers per-node scores at the test indices.
func (a *Assembled) ScoresAt(scores []float64) []float64 {
	out := make([]float64, len(a.TestIdx))
	for k, i := range a.TestIdx {
		out[k] = scores[i]
	}
	return out
}

// FeatureRows selects standardized feature rows for the given indices.
func (a *Assembled) FeatureRows(idx []int) *tensor.Matrix { return a.X.SelectRows(idx) }

// LabelsAt selects labels for the given indices.
func (a *Assembled) LabelsAt(idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = a.Labels[i]
	}
	return out
}

// GraphFeatureMatrix builds [standardized original ; BLP graph features]
// rows for all nodes, z-scored on the train split.
func (a *Assembled) GraphFeatureMatrix(withOriginal bool) *tensor.Matrix {
	gf := baselines.GraphFeatures(a.Graph, a.Nodes)
	var m *tensor.Matrix
	if withOriginal {
		m = a.RawX.ConcatCols(gf)
	} else {
		m = gf
	}
	return standardizeOnTrain(m, a.TrainIdx)
}
