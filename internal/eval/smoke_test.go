package eval

import (
	"testing"

	"turbo/internal/baselines"
	"turbo/internal/datagen"
)

// TestSmokePipeline exercises the whole stack end to end on the tiny
// dataset: generate → BN → features → train HAG and two baselines.
func TestSmokePipeline(t *testing.T) {
	a := Assemble(datagen.Tiny(), AssembleOptions{})
	t.Logf("nodes=%d edges=%d positives=%d logs=%d",
		a.Graph.NumNodes(), a.Graph.NumEdges(), a.Data.Positives(), a.Store.Len())

	h := Hyper{Hidden: []int{16, 8}, AttHidden: 8, MLPHidden: 8, Epochs: 60, LR: 1e-2}
	rHAG := RunHAG(a, HAGFull, h, 1)
	t.Logf("HAG:  %v", rHAG)
	rSAGE := RunGNN(a, KindSAGE, h, 1)
	t.Logf("SAGE: %v", rSAGE)
	rGBDT := RunFeatureModel(a, &baselines.GBDT{Balance: true}, h)
	t.Logf("GBDT: %v", rGBDT)
	rLR := RunFeatureModel(a, &baselines.LogisticRegression{}, h)
	t.Logf("LR:   %v", rLR)

	if rHAG.AUC < 0.6 {
		t.Errorf("HAG AUC suspiciously low: %v", rHAG.AUC)
	}
}
