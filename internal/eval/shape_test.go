package eval

import (
	"testing"
	"time"

	"turbo/internal/baselines"
	"turbo/internal/datagen"
)

// TestDefaultDatasetShape checks, on the default evaluation dataset,
// that the paper's qualitative Table III shape holds: feature-only
// models trade recall for precision, GNNs recover recall, and HAG is
// competitive with the best baseline. This test is the calibration
// anchor for the benchmark harness.
func TestDefaultDatasetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale dataset: skipped in -short mode")
	}
	start := time.Now()
	a := Assemble(datagen.Default(), AssembleOptions{})
	t.Logf("assemble: %v; nodes=%d edges=%d positives=%d logs=%d",
		time.Since(start), a.Graph.NumNodes(), a.Graph.NumEdges(), a.Data.Positives(), a.Store.Len())

	h := DefaultHyper()
	h.Epochs = 80

	tr := time.Now()
	rLR := RunFeatureModel(a, &baselines.LogisticRegression{Balance: true}, h)
	t.Logf("LR   (%v): %v", time.Since(tr), rLR)
	tr = time.Now()
	rGBDT := RunFeatureModel(a, &baselines.GBDT{Balance: true}, h)
	t.Logf("GBDT (%v): %v", time.Since(tr), rGBDT)
	tr = time.Now()
	rGCN := RunGNN(a, KindGCN, h, 1)
	t.Logf("GCN  (%v): %v", time.Since(tr), rGCN)
	tr = time.Now()
	rSAGE := RunGNN(a, KindSAGE, h, 1)
	t.Logf("SAGE (%v): %v", time.Since(tr), rSAGE)
	tr = time.Now()
	rHAG := RunHAG(a, HAGFull, h, 1)
	t.Logf("HAG  (%v): %v", time.Since(tr), rHAG)
}
