package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/datagen"
	"turbo/internal/tensor"
)

// tinyAssembled is shared across eval tests (assembly is the slow part).
var tinyAssembled *Assembled

func getTiny(t *testing.T) *Assembled {
	t.Helper()
	if tinyAssembled == nil {
		tinyAssembled = Assemble(datagen.Tiny(), AssembleOptions{})
	}
	return tinyAssembled
}

func fastHyper() Hyper {
	return Hyper{Hidden: []int{12, 6}, AttHidden: 6, MLPHidden: 6, Epochs: 40, LR: 1e-2}
}

func TestAssembleSplitInvariants(t *testing.T) {
	a := getTiny(t)
	n := len(a.Data.Users)
	if len(a.TrainIdx)+len(a.TestIdx) != n {
		t.Fatal("split does not cover all users")
	}
	seen := make(map[int]bool, n)
	for _, i := range append(append([]int{}, a.TrainIdx...), a.TestIdx...) {
		if seen[i] {
			t.Fatalf("index %d appears twice in split", i)
		}
		seen[i] = true
	}
	wantTest := int(0.2 * float64(n))
	if len(a.TestIdx) != wantTest {
		t.Fatalf("test size %d want %d", len(a.TestIdx), wantTest)
	}
}

func TestAssembleLabelsMatchWorld(t *testing.T) {
	a := getTiny(t)
	for i := range a.Data.Users {
		if a.Bools[i] != a.Data.Users[i].Fraud {
			t.Fatalf("label mismatch at %d", i)
		}
		if (a.Labels[i] == 1) != a.Bools[i] {
			t.Fatalf("float/bool label mismatch at %d", i)
		}
	}
}

func TestAssembleFeatureStandardization(t *testing.T) {
	a := getTiny(t)
	// Train columns should be ~zero mean, ~unit std.
	for j := 0; j < a.X.Cols; j++ {
		var s, sq float64
		for _, i := range a.TrainIdx {
			v := a.X.At(i, j)
			s += v
			sq += v * v
		}
		n := float64(len(a.TrainIdx))
		mean := s / n
		if math.Abs(mean) > 0.05 {
			t.Fatalf("col %d train mean %v", j, mean)
		}
	}
}

func TestNormalizerApplyMatchesMatrix(t *testing.T) {
	a := getTiny(t)
	row := a.RawX.Row(3)
	vec := a.Norm.Apply(row)
	for j, v := range vec {
		if math.Abs(v-a.X.At(3, j)) > 1e-12 {
			t.Fatalf("normalizer mismatch at col %d: %v vs %v", j, v, a.X.At(3, j))
		}
	}
}

func TestNormalizerConstantColumn(t *testing.T) {
	x := tensor.FromRows([][]float64{{5, 1}, {5, 3}})
	n := FitNormalizer(x, []int{0, 1})
	out := n.Apply([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant column should center to 0: %v", out[0])
	}
}

func TestFullBatchStructure(t *testing.T) {
	a := getTiny(t)
	b := a.FullBatch()
	if b.NumNodes != len(a.Data.Users) {
		t.Fatal("batch node count mismatch")
	}
	if b.NumEdgeTypes() != a.Graph.NumEdgeTypes() {
		t.Fatal("edge type count mismatch")
	}
	// All typed edges appear in both directions (symmetric counts).
	for typ, es := range b.TypedEdges {
		dir := make(map[[2]int]bool)
		for _, e := range es {
			dir[[2]int{e.Src, e.Dst}] = true
		}
		for _, e := range es {
			if !dir[[2]int{e.Dst, e.Src}] {
				t.Fatalf("type %d edge %d->%d missing reverse", typ, e.Src, e.Dst)
			}
		}
	}
}

func TestMaskedBatchDropsType(t *testing.T) {
	a := getTiny(t)
	full := a.FullBatch()
	// Pick a type that actually has edges.
	typ := -1
	for i, es := range full.TypedEdges {
		if len(es) > 0 {
			typ = i
			break
		}
	}
	if typ < 0 {
		t.Fatal("no edges in tiny BN")
	}
	masked := a.MaskedBatch(behavior.Type(typ))
	if len(masked.TypedEdges[typ]) != 0 {
		t.Fatal("masked type still has edges")
	}
}

func TestScoresAtAndTestLabels(t *testing.T) {
	a := getTiny(t)
	scores := make([]float64, len(a.Data.Users))
	for i := range scores {
		scores[i] = float64(i)
	}
	sel := a.ScoresAt(scores)
	labels := a.TestLabels()
	if len(sel) != len(a.TestIdx) || len(labels) != len(a.TestIdx) {
		t.Fatal("selection sizes wrong")
	}
	for k, i := range a.TestIdx {
		if sel[k] != float64(i) || labels[k] != a.Bools[i] {
			t.Fatalf("selection misaligned at %d", k)
		}
	}
}

func TestBurstConcentrationSeparatesClasses(t *testing.T) {
	a := getTiny(t)
	normal, fraud := a.BurstConcentration(36 * time.Hour)
	if fraud < 0.5 {
		t.Fatalf("fraud burst concentration too low: %v", fraud)
	}
	if fraud <= normal {
		t.Fatalf("Fig 4a/b shape violated: fraud %v <= normal %v", fraud, normal)
	}
}

func TestTimeBurstSeries(t *testing.T) {
	a := getTiny(t)
	s := a.TimeBurst(5)
	if len(s.Normal) != 5 || len(s.Fraud) != 5 {
		t.Fatalf("sampled %d/%d users", len(s.Normal), len(s.Fraud))
	}
	for _, offsets := range s.Fraud {
		if len(offsets) == 0 {
			t.Fatal("fraud user without logs")
		}
	}
}

func TestTemporalAggregationShape(t *testing.T) {
	a := getTiny(t)
	normal, fraud := a.TemporalAggregation(14, 5000)
	// Aggregate across types with enough pairs.
	var nShare, fShare, nTypes float64
	for typ := range normal {
		if normal[typ].Total < 50 || fraud[typ].Total < 50 {
			continue
		}
		nShare += normal[typ].ShortIntervalShare(3)
		fShare += fraud[typ].ShortIntervalShare(3)
		nTypes++
	}
	if nTypes == 0 {
		t.Skip("not enough pairs in tiny world")
	}
	if fShare/nTypes <= nShare/nTypes {
		t.Fatalf("Fig 4c shape violated: fraud %v <= normal %v", fShare/nTypes, nShare/nTypes)
	}
}

func TestHomophilyShape(t *testing.T) {
	a := getTiny(t)
	s := a.Homophily(2, 50, -1)
	if s.Fraud[0] <= s.Normal[0] {
		t.Fatalf("Fig 4d shape violated: fraud hop-1 ratio %v <= normal %v", s.Fraud[0], s.Normal[0])
	}
	if s.Fraud[1] >= s.Fraud[0] {
		t.Fatalf("fraud ratio should decay with hops: %v", s.Fraud)
	}
}

func TestStructuralDifferenceShape(t *testing.T) {
	a := getTiny(t)
	s := a.StructuralDifference(2, 50, true)
	if s.Fraud[0] <= s.Normal[0] {
		t.Fatalf("Fig 4i shape violated: fraud weighted degree %v <= normal %v", s.Fraud[0], s.Normal[0])
	}
}

func TestRenderSeriesOutput(t *testing.T) {
	out := RenderSeries("title", []float64{0.1, 0.2}, []float64{0.3, 0.4})
	if !strings.Contains(out, "title") || !strings.Contains(out, "0.3") {
		t.Fatalf("render output %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Rows: []TableRow{{Method: "X"}}}
	out := tbl.String()
	if !strings.Contains(out, "T") || !strings.Contains(out, "X") || !strings.Contains(out, "AUC") {
		t.Fatalf("table output %q", out)
	}
}

func TestTable5OrderingOnTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	a := getTiny(t)
	tbl := Table5(a, fastHyper(), []uint64{1})
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	// The tiny world's test split holds too few positives for a stable
	// HAG-vs-ablation ordering (that is asserted at default scale by the
	// benchmark harness); here every variant must at least train to a
	// far-better-than-chance AUC.
	for _, r := range tbl.Rows {
		if r.Mean.AUC < 0.65 {
			t.Fatalf("%s AUC %v barely above chance", r.Method, r.Mean.AUC)
		}
	}
}

func TestCaseStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	a := getTiny(t)
	cs := RunCaseStudy(a, Hyper{Hidden: []int{8}, AttHidden: 4, MLPHidden: 4, Epochs: 20, LR: 1e-2}, 1, 4)
	n := cs.Subgraph.NumNodes()
	if n == 0 || cs.Influence.Rows != n || len(cs.Fraud) != n || len(cs.Scores) != n {
		t.Fatalf("case study shapes: n=%d", n)
	}
	if !cs.Fraud[0] {
		t.Fatal("case study target should be a fraud node")
	}
	if cs.String() == "" {
		t.Fatal("empty case study rendering")
	}
}

func TestRunLatencyStudyColdSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	cfg := datagen.Tiny()
	study := RunLatencyStudy(cfg, LatencyOptions{
		Requests:  40,
		DBLatency: 2 * time.Millisecond,
		Hyper:     Hyper{Hidden: []int{8}, AttHidden: 4, MLPHidden: 4, Epochs: 10, LR: 1e-2},
	})
	cold := study.Cold["total"].Mean
	warm := study.Warm["total"].Mean
	if cold <= warm {
		t.Fatalf("§V shape violated: cold %v should exceed warm %v", cold, warm)
	}
	if study.String() == "" {
		t.Fatal("empty study rendering")
	}
}

// TestInductiveTrainingEndToEnd runs the paper-faithful minibatch
// pipeline: HAG trained on sampled neighborhoods and evaluated with
// per-node computation subgraphs.
func TestInductiveTrainingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	a := getTiny(t)
	h := Hyper{Hidden: []int{8}, AttHidden: 4, MLPHidden: 4, Epochs: 8, LR: 1e-2}
	r := RunHAGInductive(a, h, 1, 32)
	if r.AUC < 0.6 {
		t.Fatalf("inductive HAG AUC barely above chance: %v", r.AUC)
	}
}

// TestABTestSimulation runs the §VI-E online A/B simulation end to end
// on the tiny world and checks its headline shape: blocking at 0.85
// reduces the fraud ratio of passing applications.
func TestABTestSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res := RunABTest(datagen.Tiny(), fastHyper(), 1)
	if res.Applications == 0 {
		t.Fatal("no live applications")
	}
	if res.Blocked > 0 && res.FraudRatioDrop <= 0 {
		t.Fatalf("blocking should reduce the fraud ratio: %+v", res)
	}
	if res.Blocked > 0 && res.OnlinePrecision == 0 {
		t.Fatalf("blocked applications but zero precision: %+v", res)
	}
	if res.Latency.Count == 0 {
		t.Fatal("no audit latencies recorded")
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}

// TestScalabilityMonotonic checks the Fig. 8b shape on two scales:
// training time grows with BN size.
func TestScalabilityMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	h := Hyper{Hidden: []int{8}, AttHidden: 4, MLPHidden: 4, Epochs: 4, LR: 1e-2}
	points := RunScalability(datagen.Tiny(), []int{1, 3}, h, 1)
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	if points[1].Nodes <= points[0].Nodes {
		t.Fatal("scale did not grow the BN")
	}
	if points[1].TrainEpoch <= points[0].TrainEpoch {
		t.Fatalf("training time should grow with BN size: %v vs %v",
			points[0].TrainEpoch, points[1].TrainEpoch)
	}
}
