package eval

import (
	"fmt"
	"sort"
	"strings"

	"turbo/internal/baselines"
	"turbo/internal/behavior"
	"turbo/internal/metrics"
)

// TableRow is one method's averaged result over several seeds.
type TableRow struct {
	Method   string
	Mean     metrics.Report
	Variance float64 // variance of AUC across seeds
}

// Table is a rendered experiment table.
type Table struct {
	Title string
	Rows  []TableRow
}

// String renders the table in the paper's layout (percentages).
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s %9s %9s\n", "Method", "Precision", "Recall", "F1", "F2", "AUC", "Variance")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %9.4f\n",
			r.Method, 100*r.Mean.Precision, 100*r.Mean.Recall, 100*r.Mean.F1, 100*r.Mean.F2, 100*r.Mean.AUC, 1e4*r.Variance)
	}
	return b.String()
}

// averageRuns runs fn once per seed and reduces to a TableRow.
func averageRuns(method string, seeds []uint64, fn func(seed uint64) metrics.Report) TableRow {
	var reports []metrics.Report
	for _, s := range seeds {
		reports = append(reports, fn(s))
	}
	return TableRow{Method: method, Mean: metrics.Mean(reports), Variance: metrics.AUCVariance(reports)}
}

// Table3 reproduces Table III: the eleven-method comparison on D1.
func Table3(a *Assembled, h Hyper, seeds []uint64) Table {
	seeds = seedsOrDefault(seeds)
	rows := []TableRow{
		averageRuns("LR", seeds, func(s uint64) metrics.Report {
			return RunFeatureModel(a, &baselines.LogisticRegression{Balance: true}, h)
		}),
		averageRuns("SVM", seeds, func(s uint64) metrics.Report {
			return RunFeatureModel(a, &baselines.LinearSVM{Balance: true, Seed: s}, h)
		}),
		averageRuns("GBDT", seeds, func(s uint64) metrics.Report {
			return RunFeatureModel(a, &baselines.GBDT{Balance: true, Seed: s}, h)
		}),
		averageRuns("DNN", seeds, func(s uint64) metrics.Report {
			return RunFeatureModel(a, &baselines.DNN{Balance: true, Seed: s, Dropout: h.Dropout}, h)
		}),
		averageRuns("GCN", seeds, func(s uint64) metrics.Report { return RunGNN(a, KindGCN, h, s) }),
		averageRuns("G-SAGE", seeds, func(s uint64) metrics.Report { return RunGNN(a, KindSAGE, h, s) }),
		averageRuns("GAT", seeds, func(s uint64) metrics.Report { return RunGNN(a, KindGAT, h, s) }),
		averageRuns("BLP", seeds, func(s uint64) metrics.Report { return RunBLP(a, h, s) }),
		averageRuns("DTX1", seeds, func(s uint64) metrics.Report { return RunDTX(a, false, h, s) }),
		averageRuns("DTX2", seeds, func(s uint64) metrics.Report { return RunDTX(a, true, h, s) }),
		averageRuns("HAG", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGFull, h, s) }),
	}
	return Table{Title: "Table III — performance comparison on D1 (%)", Rows: rows}
}

// Table4 reproduces Table IV: GraphSAGE vs HAG on the larger D2.
func Table4(a *Assembled, h Hyper, seeds []uint64) Table {
	seeds = seedsOrDefault(seeds)
	rows := []TableRow{
		averageRuns("G-SAGE", seeds, func(s uint64) metrics.Report { return RunGNN(a, KindSAGE, h, s) }),
		averageRuns("HAG", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGFull, h, s) }),
	}
	return Table{Title: "Table IV — performance comparison on D2 (%)", Rows: rows}
}

// Table5 reproduces Table V: the SAO/CFO operator ablation.
func Table5(a *Assembled, h Hyper, seeds []uint64) Table {
	seeds = seedsOrDefault(seeds)
	rows := []TableRow{
		averageRuns("SAO(-)", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGNoSAO, h, s) }),
		averageRuns("CFO(-)", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGNoCFO, h, s) }),
		averageRuns("Both(-)", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGNeither, h, s) }),
		averageRuns("HAG", seeds, func(s uint64) metrics.Report { return RunHAG(a, HAGFull, h, s) }),
	}
	return Table{Title: "Table V — effect of SAO and CFO (%)", Rows: rows}
}

// EdgeAblationResult is one bar of Fig. 7: the AUC drop caused by
// masking one edge type.
type EdgeAblationResult struct {
	Type    behavior.Type
	AUC     float64
	AUCDrop float64 // fullAUC − maskedAUC
}

// Figure7 retrains HAG once per masked edge type and reports the AUC
// drops, sorted descending like the paper's bar chart. Types that carry
// no edges in the BN are skipped.
func Figure7(a *Assembled, h Hyper, seed uint64) []EdgeAblationResult {
	full := RunHAG(a, HAGFull, h, seed)
	counts := a.Graph.EdgeCountByType()
	var out []EdgeAblationResult
	for t := 0; t < a.Graph.NumEdgeTypes(); t++ {
		if counts[t] == 0 {
			continue
		}
		r := RunHAGMasked(a, behavior.Type(t), h, seed)
		out = append(out, EdgeAblationResult{
			Type:    behavior.Type(t),
			AUC:     r.AUC,
			AUCDrop: full.AUC - r.AUC,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AUCDrop > out[j].AUCDrop })
	return out
}

// RenderFigure7 prints the Fig. 7 bars as text.
func RenderFigure7(results []EdgeAblationResult) string {
	var b strings.Builder
	b.WriteString("Figure 7 — AUC drop when masking each edge type\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s drop=%6.2f%%  (masked AUC %.2f%%)\n", r.Type, 100*r.AUCDrop, 100*r.AUC)
	}
	return b.String()
}
