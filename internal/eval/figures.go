package eval

import (
	"fmt"
	"strings"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// TimeBurstSeries is the Fig. 4a/4b data: for each sampled user, the log
// timestamps expressed in days relative to the user's application time.
type TimeBurstSeries struct {
	Normal [][]float64 // one offset slice per sampled normal user
	Fraud  [][]float64
}

// TimeBurst samples up to perClass users per class and collects their
// log-time offsets. Normal offsets should scatter over the lease period;
// fraud offsets should concentrate near zero.
func (a *Assembled) TimeBurst(perClass int) TimeBurstSeries {
	var out TimeBurstSeries
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		var dst *[][]float64
		if u.Fraud {
			if len(out.Fraud) >= perClass {
				continue
			}
			dst = &out.Fraud
		} else {
			if len(out.Normal) >= perClass {
				continue
			}
			dst = &out.Normal
		}
		logs := a.Store.UserLogs(u.ID)
		offsets := make([]float64, 0, len(logs))
		for _, l := range logs {
			offsets = append(offsets, l.Time.Sub(u.AppTime).Hours()/24)
		}
		*dst = append(*dst, offsets)
	}
	return out
}

// BurstConcentration returns, for each class, the fraction of log events
// within ±window of the owner's application time — a scalar summary of
// Fig. 4a/4b used by tests and EXPERIMENTS.md.
func (a *Assembled) BurstConcentration(window time.Duration) (normal, fraud float64) {
	var nIn, nAll, fIn, fAll int
	for i := range a.Data.Users {
		u := &a.Data.Users[i]
		for _, l := range a.Store.UserLogs(u.ID) {
			d := l.Time.Sub(u.AppTime)
			if d < 0 {
				d = -d
			}
			if u.Fraud {
				fAll++
				if d <= window {
					fIn++
				}
			} else {
				nAll++
				if d <= window {
					nIn++
				}
			}
		}
	}
	if nAll > 0 {
		normal = float64(nIn) / float64(nAll)
	}
	if fAll > 0 {
		fraud = float64(fIn) / float64(fAll)
	}
	return normal, fraud
}

// IntervalHistogram is one violin of Fig. 4c: the distribution of
// pairwise same-behavior time intervals (in hours) for one behavior type
// and one class, bucketed per day up to maxDays.
type IntervalHistogram struct {
	Type    behavior.Type
	Buckets []int // count of pairs with interval in [i, i+1) days
	Total   int
}

// TemporalAggregation computes Fig. 4c: for every behavior type, the
// histograms of pairwise cross-user time intervals between logs sharing
// the same (type, value), split into normal–normal and fraud–fraud
// pairs. Pair enumeration per key is capped to bound cost.
func (a *Assembled) TemporalAggregation(maxDays, maxPairsPerKey int) (normal, fraud []IntervalHistogram) {
	labels := a.Data.Labels()
	normal = make([]IntervalHistogram, behavior.NumTypes)
	fraud = make([]IntervalHistogram, behavior.NumTypes)
	for t := 0; t < behavior.NumTypes; t++ {
		normal[t] = IntervalHistogram{Type: behavior.Type(t), Buckets: make([]int, maxDays)}
		fraud[t] = IntervalHistogram{Type: behavior.Type(t), Buckets: make([]int, maxDays)}
	}
	a.Store.ForEachKey(func(k behavior.Key, logs []behavior.Log) {
		pairs := 0
		for i := 0; i < len(logs) && pairs < maxPairsPerKey; i++ {
			for j := i + 1; j < len(logs) && pairs < maxPairsPerKey; j++ {
				if logs[i].User == logs[j].User {
					continue
				}
				pairs++
				fi, fj := labels[logs[i].User], labels[logs[j].User]
				var h *IntervalHistogram
				switch {
				case fi && fj:
					h = &fraud[k.Type]
				case !fi && !fj:
					h = &normal[k.Type]
				default:
					continue // mixed pairs are not plotted in Fig. 4c
				}
				days := int(logs[j].Time.Sub(logs[i].Time).Hours() / 24)
				if days < 0 {
					days = -days
				}
				h.Total++
				if days < len(h.Buckets) {
					h.Buckets[days]++
				}
			}
		}
	})
	return normal, fraud
}

// ShortIntervalShare summarizes an IntervalHistogram as the share of
// pairs with interval < days (Fig. 4c's "burst at small intervals").
func (h IntervalHistogram) ShortIntervalShare(days int) float64 {
	if h.Total == 0 {
		return 0
	}
	n := 0
	for i := 0; i < days && i < len(h.Buckets); i++ {
		n += h.Buckets[i]
	}
	return float64(n) / float64(h.Total)
}

// HomophilySeries is Fig. 4d (or 4e–g for a single edge type): mean
// fraud ratio of the n-hop neighborhoods, per class.
type HomophilySeries struct {
	OnlyType int // -1 for all types
	Normal   []float64
	Fraud    []float64
}

// Homophily averages FraudRatioByHop over up to perClass sampled users
// per class. onlyType < 0 uses all edge types.
func (a *Assembled) Homophily(maxHops, perClass, onlyType int) HomophilySeries {
	isFraud := func(n graph.NodeID) bool { return a.Bools[int(n)] }
	out := HomophilySeries{
		OnlyType: onlyType,
		Normal:   make([]float64, maxHops),
		Fraud:    make([]float64, maxHops),
	}
	var nN, nF int
	rng := tensor.NewRNG(99)
	for _, i := range rng.Perm(len(a.Data.Users)) {
		u := &a.Data.Users[i]
		if u.Fraud && nF >= perClass || !u.Fraud && nN >= perClass {
			continue
		}
		ratios := a.Graph.FraudRatioByHop(graph.NodeID(u.ID), maxHops, onlyType, isFraud)
		if u.Fraud {
			nF++
			for h := range ratios {
				out.Fraud[h] += ratios[h]
			}
		} else {
			nN++
			for h := range ratios {
				out.Normal[h] += ratios[h]
			}
		}
		if nN >= perClass && nF >= perClass {
			break
		}
	}
	for h := 0; h < maxHops; h++ {
		if nN > 0 {
			out.Normal[h] /= float64(nN)
		}
		if nF > 0 {
			out.Fraud[h] /= float64(nF)
		}
	}
	return out
}

// DegreeSeries is Fig. 4h/4i: mean (weighted) degree of n-hop neighbors
// per class.
type DegreeSeries struct {
	Weighted bool
	Normal   []float64
	Fraud    []float64
}

// StructuralDifference averages MeanDegreeByHop over sampled users.
func (a *Assembled) StructuralDifference(maxHops, perClass int, weighted bool) DegreeSeries {
	out := DegreeSeries{
		Weighted: weighted,
		Normal:   make([]float64, maxHops),
		Fraud:    make([]float64, maxHops),
	}
	var nN, nF int
	rng := tensor.NewRNG(101)
	for _, i := range rng.Perm(len(a.Data.Users)) {
		u := &a.Data.Users[i]
		if u.Fraud && nF >= perClass || !u.Fraud && nN >= perClass {
			continue
		}
		degs := a.Graph.MeanDegreeByHop(graph.NodeID(u.ID), maxHops, weighted)
		if u.Fraud {
			nF++
			for h := range degs {
				out.Fraud[h] += degs[h]
			}
		} else {
			nN++
			for h := range degs {
				out.Normal[h] += degs[h]
			}
		}
		if nN >= perClass && nF >= perClass {
			break
		}
	}
	for h := 0; h < maxHops; h++ {
		if nN > 0 {
			out.Normal[h] /= float64(nN)
		}
		if nF > 0 {
			out.Fraud[h] /= float64(nF)
		}
	}
	return out
}

// RenderSeries prints hop-indexed normal/fraud series.
func RenderSeries(title string, normal, fraud []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%6s %10s %10s\n", title, "hop", "normal", "fraud")
	for h := range normal {
		fmt.Fprintf(&b, "%6d %10.4f %10.4f\n", h+1, normal[h], fraud[h])
	}
	return b.String()
}
