package eval

import (
	"testing"

	"turbo/internal/lifecycle"
	"turbo/internal/tensor"
)

// TestHoldoutGateAcceptsHealthyRetrain trains HAG normally and checks
// the holdout replay reports strong metrics that clear a production-like
// gate.
func TestHoldoutGateAcceptsHealthyRetrain(t *testing.T) {
	a := getTiny(t)
	m, _ := TrainHAG(a, HAGFull, fastHyper(), 1)
	hold := a.HoldoutGate(0.5, 0.6)
	rep, err := hold(m, a.Norm.Apply)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Size != len(a.TestIdx) {
		t.Fatalf("holdout size %d want %d", rep.Size, len(a.TestIdx))
	}
	gate := lifecycle.GateConfig{MinAUC: 0.75, MinRecallAtPrecision: 0.3, PrecisionFloor: 0.6, RequireHoldout: true}
	v := gate.Check(lifecycle.ShadowReport{Holdout: rep})
	if !v.Accepted {
		t.Fatalf("healthy retrain rejected: %v (report %+v)", v.Reasons, rep)
	}
}

// TestHoldoutGateRejectsLabelShuffledRetrain is the poisoned-pipeline
// scenario: a candidate trained on shuffled labels carries no signal, so
// its holdout replay — against the TRUE labels — lands at chance AUC and
// the gate must quarantine it.
func TestHoldoutGateRejectsLabelShuffledRetrain(t *testing.T) {
	a := getTiny(t)

	// Shallow-copy the assembly and permute the labels: the "retrain"
	// sees garbage supervision while the holdout keeps the real labels.
	shuffled := *a
	rng := tensor.NewRNG(42)
	perm := rng.Perm(len(a.Labels))
	shuffled.Labels = make([]float64, len(a.Labels))
	for i, j := range perm {
		shuffled.Labels[i] = a.Labels[j]
	}
	bad, _ := TrainHAG(&shuffled, HAGFull, fastHyper(), 1)

	hold := a.HoldoutGate(0.5, 0.6)
	rep, err := hold(bad, a.Norm.Apply)
	if err != nil {
		t.Fatal(err)
	}
	gate := lifecycle.GateConfig{MinAUC: 0.75, MinRecallAtPrecision: 0.3, PrecisionFloor: 0.6, RequireHoldout: true}
	v := gate.Check(lifecycle.ShadowReport{Holdout: rep})
	if v.Accepted {
		t.Fatalf("label-shuffled candidate passed the gate (AUC %.4f, report %+v)", rep.AUC, rep)
	}
	if len(v.Reasons) == 0 {
		t.Fatal("rejection carries no reasons")
	}
	t.Logf("poisoned candidate rejected: %v", v.Reasons)
}

// TestHoldoutGateMissingInputs covers the adapter's error paths.
func TestHoldoutGateMissingInputs(t *testing.T) {
	a := getTiny(t)
	hold := a.HoldoutGate(0.5, 0.8)
	if _, err := hold(nil, nil); err == nil {
		t.Fatal("nil model must error")
	}
	empty := *a
	empty.TestIdx = nil
	m, _ := TrainHAG(a, HAGFull, fastHyper(), 1)
	if _, err := empty.HoldoutGate(0.5, 0.8)(m, nil); err == nil {
		t.Fatal("empty test split must error")
	}
}
