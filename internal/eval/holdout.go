// Holdout replay for the validation gate: a candidate model retrained
// online is scored on the assembly's labeled test split — the same
// 80/20 UID holdout every offline experiment uses — before it may swap
// into the prediction server. The candidate's own normalizer is applied
// to the raw feature rows, because a retrain may have refitted the
// z-score statistics.
package eval

import (
	"fmt"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/lifecycle"
	"turbo/internal/metrics"
	"turbo/internal/server"
	"turbo/internal/tensor"
)

// HoldoutGate returns the server.HoldoutFunc the model-lifecycle gate
// calls for each retrained candidate: compile the full BN batch with the
// candidate's normalizer over the raw features, score every user, and
// evaluate the test split at thresh. precisionFloor parameterizes the
// recall-at-precision criterion (how much fraud the candidate catches
// while challenging few legitimate lessees).
func (a *Assembled) HoldoutGate(thresh, precisionFloor float64) server.HoldoutFunc {
	return func(model gnn.Model, norm func([]float64) []float64) (*lifecycle.HoldoutReport, error) {
		if model == nil {
			return nil, fmt.Errorf("eval: holdout: nil candidate model")
		}
		if len(a.TestIdx) == 0 {
			return nil, fmt.Errorf("eval: holdout: assembly has no test split")
		}
		x := a.X
		if norm != nil {
			x = tensor.New(a.RawX.Rows, a.RawX.Cols)
			for i := 0; i < a.RawX.Rows; i++ {
				copy(x.Row(i), norm(append([]float64(nil), a.RawX.Row(i)...)))
			}
		}
		b := gnn.NewBatch(a.fullSubgraph(graph.NoMask, false), x)
		scores := a.ScoresAt(gnn.Scores(model, b))
		labels := a.TestLabels()
		rep := metrics.Evaluate(scores, labels, thresh)
		return &lifecycle.HoldoutReport{
			Size:              len(scores),
			AUC:               rep.AUC,
			Precision:         rep.Precision,
			Recall:            rep.Recall,
			F1:                rep.F1,
			RecallAtPrecision: metrics.RecallAtPrecision(scores, labels, precisionFloor),
			PrecisionFloor:    precisionFloor,
		}, nil
	}
}
