package eval

import (
	"fmt"
	"strings"

	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/hag"
	"turbo/internal/tensor"
)

// CaseStudy is the Fig. 9 artifact: a small subgraph around a detected
// fraud node, each node's class, and the influence-distribution matrix
// (column i is node i's influence distribution D_i).
type CaseStudy struct {
	Subgraph  *graph.Subgraph
	Fraud     []bool // per subgraph node
	Scores    []float64
	Influence *tensor.Matrix
}

// RunCaseStudy trains HAG, picks a fraud node with ring neighbors,
// samples its 2-hop computation subgraph (capped for readability), and
// computes the influence matrix of Definition 1.
func RunCaseStudy(a *Assembled, h Hyper, seed uint64, maxNeighbors int) CaseStudy {
	h = h.withDefaults()
	m, fullBatch := TrainHAG(a, HAGFull, h, seed)
	scores := SweepScores(m, fullBatch)

	// Choose the highest-scoring fraud node with at least 3 neighbors.
	best, bestScore := -1, -1.0
	for i := range a.Data.Users {
		if !a.Bools[i] {
			continue
		}
		if a.Graph.Degree(a.Nodes[i]) < 3 {
			continue
		}
		if scores[i] > bestScore {
			best, bestScore = i, scores[i]
		}
	}
	if best < 0 {
		best = 0
	}
	if maxNeighbors <= 0 {
		maxNeighbors = 6
	}
	sg := a.Graph.Sample(a.Nodes[best], graph.SampleOptions{Hops: 2, MaxNeighbors: maxNeighbors})
	x := tensor.New(sg.NumNodes(), a.X.Cols)
	fraud := make([]bool, sg.NumNodes())
	nodeScores := make([]float64, sg.NumNodes())
	for i, n := range sg.Nodes {
		copy(x.Row(i), a.X.Row(int(n)))
		fraud[i] = a.Bools[int(n)]
		nodeScores[i] = scores[int(n)]
	}
	b := gnn.NewBatch(sg, x)
	return CaseStudy{
		Subgraph:  sg,
		Fraud:     fraud,
		Scores:    nodeScores,
		Influence: influenceOf(m, b),
	}
}

func influenceOf(m *hag.HAG, b *gnn.Batch) *tensor.Matrix {
	return m.InfluenceMatrix(b)
}

// MeanIntraFraudInfluence summarizes Fig. 9: the average influence fraud
// nodes exert on each other versus the average influence across all
// other node pairs. Fraud-to-fraud influence exceeding the background is
// the paper's observation.
func (c CaseStudy) MeanIntraFraudInfluence() (intraFraud, background float64) {
	var sumF, nF, sumB, nB float64
	n := c.Influence.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := c.Influence.At(j, i) // column i is D_i
			if c.Fraud[i] && c.Fraud[j] {
				sumF += v
				nF++
			} else {
				sumB += v
				nB++
			}
		}
	}
	if nF > 0 {
		intraFraud = sumF / nF
	}
	if nB > 0 {
		background = sumB / nB
	}
	return intraFraud, background
}

// String renders the heat map as text.
func (c CaseStudy) String() string {
	var b strings.Builder
	n := c.Influence.Rows
	fmt.Fprintf(&b, "Figure 9 — influence distributions on a %d-node case subgraph\n", n)
	b.WriteString("node classes: ")
	for i := 0; i < n; i++ {
		if c.Fraud[i] {
			b.WriteString("F")
		} else {
			b.WriteString(".")
		}
	}
	b.WriteString("\n")
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%5.2f ", c.Influence.At(j, i))
		}
		b.WriteString("\n")
	}
	intra, back := c.MeanIntraFraudInfluence()
	fmt.Fprintf(&b, "mean intra-fraud influence %.4f vs background %.4f\n", intra, back)
	return b.String()
}
