package eval

import (
	"math"
	"sort"
	"testing"

	"turbo/internal/gnn"
	"turbo/internal/metrics"
)

// servingF32Tol is the default -infer.f32-tol the prediction server
// gates quantized serving on; these tests hold a trained model to the
// same bound on the real holdout.
const servingF32Tol = 5e-3

// TestF32HoldoutEquivalence trains HAG on the tiny dataset and checks
// the float32 serving contract on the evaluation holdout: per-node
// logits within the serving tolerance, fraud decisions preserved away
// from the threshold, score ranking preserved up to tolerance-close
// pairs, and the holdout ROC-AUC unchanged beyond quantization noise.
func TestF32HoldoutEquivalence(t *testing.T) {
	a := getTiny(t)
	m, batch := TrainHAG(a, HAGFull, fastHyper(), 1)

	maxDelta, ok := gnn.ValidateF32(m, batch, servingF32Tol)
	if !ok {
		t.Fatalf("trained HAG fails the f32 gate: max logit delta %.3g > %.1g", maxDelta, servingF32Tol)
	}
	t.Logf("holdout f32 gate: max logit delta %.3g over %d nodes", maxDelta, batch.NumNodes)

	want := gnn.Scores(m, batch)
	got := make([]float64, batch.NumNodes)
	if !gnn.Scores32Into(got, m, batch) {
		t.Fatal("HAG lacks the f32 scoring path")
	}

	// Probabilities move less than logits through the sigmoid (slope ≤ 1/4).
	const probTol = servingF32Tol
	w64, w32 := a.ScoresAt(want), a.ScoresAt(got)
	labels := a.TestLabels()

	// Decisions at the paper's audit threshold flip only within the
	// tolerance band around it.
	const threshold = 0.85
	for k := range w64 {
		d64, d32 := w64[k] >= threshold, w32[k] >= threshold
		if d64 != d32 && math.Abs(w64[k]-threshold) > probTol {
			t.Errorf("holdout node %d: decision flipped (f64 %.6f, f32 %.6f) outside the tolerance band", k, w64[k], w32[k])
		}
	}

	// Ranking by f32 score may permute only tolerance-close pairs: walking
	// the f64-descending order, an f32 score may exceed the running
	// minimum of its predecessors by at most 2·tol.
	order := make([]int, len(w64))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return w64[order[i]] > w64[order[j]] })
	runMin := math.Inf(1)
	for _, k := range order {
		if w32[k] > runMin+2*probTol {
			t.Errorf("holdout rank inversion beyond tolerance at node %d: f32 %.6f vs earlier min %.6f", k, w32[k], runMin)
		}
		if w32[k] < runMin {
			runMin = w32[k]
		}
	}

	auc64 := metrics.AUC(w64, labels)
	auc32 := metrics.AUC(w32, labels)
	if math.Abs(auc64-auc32) > 0.01 {
		t.Errorf("holdout AUC moved under f32: %.4f vs %.4f", auc64, auc32)
	}
	t.Logf("holdout AUC: f64 %.4f, f32 %.4f", auc64, auc32)
}
