package eval

import (
	"fmt"
	"strings"
	"time"

	"turbo/internal/core"
	"turbo/internal/datagen"
	"turbo/internal/metrics"
	"turbo/internal/tensor"
)

// ABTestResult reports the §VI-E online A/B simulation: the test group is
// "Turbo on top of the front risk system", the baseline group is the
// front risk system alone, and the headline number is the relative drop
// in fraud ratio among applications that pass.
type ABTestResult struct {
	Applications  int
	FrontRejected int // rejected by the front scorecard (both groups)

	BaselineFraudRatio float64
	TestFraudRatio     float64
	FraudRatioDrop     float64 // 1 − test/baseline

	Blocked         int
	OnlinePrecision float64
	OnlineRecall    float64

	Latency metrics.Summary
}

// String renders the result like §VI-E.
func (r ABTestResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online A/B test — %d live applications (%d rejected by front system)\n",
		r.Applications, r.FrontRejected)
	fmt.Fprintf(&b, "baseline fraud ratio %.2f%%, test group %.2f%% → drop %.2f%%\n",
		100*r.BaselineFraudRatio, 100*r.TestFraudRatio, 100*r.FraudRatioDrop)
	fmt.Fprintf(&b, "Turbo blocked %d applications: online precision %.1f%%, recall %.1f%%\n",
		r.Blocked, 100*r.OnlinePrecision, 100*r.OnlineRecall)
	fmt.Fprintf(&b, "audit latency: %v\n", r.Latency)
	return b.String()
}

// RunABTest trains HAG on a historical world, then replays a fresh live
// world through a full core.System (ingest → scheduled BN jobs → audit
// at application time + 24 h) with the deployment threshold of 0.85.
func RunABTest(histCfg datagen.Config, h Hyper, seed uint64) ABTestResult {
	h = h.withDefaults()
	hist := Assemble(histCfg, AssembleOptions{SplitSeed: seed})
	model, _ := TrainHAG(hist, HAGFull, h, seed)

	// A live month with a different seed: same world dynamics, new users.
	liveCfg := histCfg
	liveCfg.Seed = histCfg.Seed*7919 + 17
	liveCfg.Users = histCfg.Users / 4
	live := datagen.Generate(liveCfg)

	sys, err := core.New(core.Config{Threshold: 0.85}, live.Start)
	if err != nil {
		panic(err)
	}
	sys.SetModel(model, hist.Norm.Apply)
	sys.IngestBatch(live.Logs)
	for i := range live.Users {
		u := &live.Users[i]
		if err := sys.RegisterApplication(u.ID, u.Features()); err != nil {
			panic(err)
		}
	}
	sys.Advance(live.End.Add(48 * time.Hour))

	// Front risk system: a conservative scorecard trained on history; it
	// rejects overtly risky applications in both groups.
	front := trainFrontScorecard(hist)

	var res ABTestResult
	var passBase, fraudBase, passTest, fraudTest int
	var tp, fp, fn int
	for i := range live.Users {
		u := &live.Users[i]
		res.Applications++
		if front(hist.Norm.Apply(rawVector(sys, u))) >= 0.9 {
			res.FrontRejected++
			continue
		}
		passBase++
		if u.Fraud {
			fraudBase++
		}
		pred, err := sys.Audit(u.ID, u.AppTime.Add(24*time.Hour))
		if err != nil {
			panic(err)
		}
		if pred.Fraud {
			res.Blocked++
			if u.Fraud {
				tp++
			} else {
				fp++
			}
			continue // blocked by Turbo: not in the test group
		}
		if u.Fraud {
			fn++
		}
		passTest++
		if u.Fraud {
			fraudTest++
		}
	}
	if passBase > 0 {
		res.BaselineFraudRatio = float64(fraudBase) / float64(passBase)
	}
	if passTest > 0 {
		res.TestFraudRatio = float64(fraudTest) / float64(passTest)
	}
	if res.BaselineFraudRatio > 0 {
		res.FraudRatioDrop = 1 - res.TestFraudRatio/res.BaselineFraudRatio
	}
	if tp+fp > 0 {
		res.OnlinePrecision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.OnlineRecall = float64(tp) / float64(tp+fn)
	}
	res.Latency = sys.PredictionServer().TotalLatency.Summarize()
	return res
}

// rawVector fetches the live system's raw feature vector for a user.
func rawVector(sys *core.System, u *datagen.User) []float64 {
	vec, err := sys.Features().Vector(u.ID, u.AppTime.Add(24*time.Hour))
	if err != nil {
		panic(err)
	}
	return vec
}

// trainFrontScorecard fits the stand-in for Jimi's original rule-based
// risk system: an unbalanced logistic scorecard over history features.
func trainFrontScorecard(hist *Assembled) func(vec []float64) float64 {
	lr := &logisticScore{}
	lr.fit(hist)
	return lr.score
}

// logisticScore is a minimal logistic scorer over standardized features.
type logisticScore struct {
	w []float64
	b float64
}

func (l *logisticScore) fit(a *Assembled) {
	x := a.FeatureRows(a.TrainIdx)
	y := a.LabelsAt(a.TrainIdx)
	l.w = make([]float64, x.Cols)
	for epoch := 0; epoch < 200; epoch++ {
		gw := make([]float64, x.Cols)
		gb := 0.0
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			p := tensor.SigmoidScalar(l.b + tensor.Dot(l.w, row))
			d := p - y[i]
			for j, v := range row {
				gw[j] += d * v
			}
			gb += d
		}
		n := float64(x.Rows)
		for j := range l.w {
			l.w[j] -= 0.1 * gw[j] / n
		}
		l.b -= 0.1 * gb / n
	}
}

func (l *logisticScore) score(vec []float64) float64 {
	return tensor.SigmoidScalar(l.b + tensor.Dot(l.w, vec))
}
