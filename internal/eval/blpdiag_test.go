package eval

import (
	"os"
	"testing"

	"turbo/internal/baselines"
	"turbo/internal/datagen"
	"turbo/internal/metrics"
	"turbo/internal/tensor"
)

// TestBLPFeatureDiagnostic dissects which feature block powers BLP:
// original features only, graph features only, and per-graph-feature
// single-column AUCs. Diagnostic tool, gated behind the same env var as
// the scale check.
func TestBLPFeatureDiagnostic(t *testing.T) {
	if os.Getenv("TURBO_SCALE_TESTS") == "" {
		t.Skip("set TURBO_SCALE_TESTS=1 to run")
	}
	a := Assemble(datagen.Default(), AssembleOptions{})
	h := DefaultHyper()

	run := func(name string, x *tensor.Matrix) {
		clf := &baselines.GBDT{Balance: true, Seed: 1}
		clf.Fit(x.SelectRows(a.TrainIdx), a.LabelsAt(a.TrainIdx))
		r := a.EvaluateScores(clf.PredictProba(x), h.Threshold)
		t.Logf("%-16s %v", name, r)
	}
	run("original-only", a.X)
	run("graph-only", a.GraphFeatureMatrix(false))
	run("orig+graph", a.GraphFeatureMatrix(true))

	// Single graph-feature AUCs (no training needed: use the raw column
	// as the score).
	gf := baselines.GraphFeatures(a.Graph, a.Nodes)
	names := baselines.GraphFeatureNames(a.Graph.NumEdgeTypes())
	labels := a.TestLabels()
	for j, name := range names {
		col := make([]float64, len(a.TestIdx))
		for k, i := range a.TestIdx {
			col[k] = gf.At(i, j)
		}
		auc := aucOf(col, labels)
		if auc > 0.7 || auc < 0.3 {
			t.Logf("column %-22s AUC %.3f", name, auc)
		}
	}
}

func aucOf(scores []float64, labels []bool) float64 {
	return metrics.AUC(scores, labels)
}
