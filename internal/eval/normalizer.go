package eval

import (
	"math"

	"turbo/internal/tensor"
)

// Normalizer is a per-column z-scoring transform fitted on the training
// split; the prediction server applies the same transform online.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer computes column statistics over the given rows of x.
// Zero-variance columns get Std 1.
func FitNormalizer(x *tensor.Matrix, rows []int) *Normalizer {
	f := x.Cols
	n := &Normalizer{Mean: make([]float64, f), Std: make([]float64, f)}
	for j := 0; j < f; j++ {
		var s float64
		for _, i := range rows {
			s += x.At(i, j)
		}
		n.Mean[j] = s / float64(len(rows))
		var v float64
		for _, i := range rows {
			d := x.At(i, j) - n.Mean[j]
			v += d * d
		}
		n.Std[j] = math.Sqrt(v / float64(len(rows)))
		if n.Std[j] == 0 {
			n.Std[j] = 1
		}
	}
	return n
}

// Apply transforms one raw feature vector (allocating a new slice) and
// clamps to ±10σ for numeric stability.
func (n *Normalizer) Apply(vec []float64) []float64 {
	out := make([]float64, len(vec))
	for j, v := range vec {
		out[j] = tensor.Clamp((v-n.Mean[j])/n.Std[j], -10, 10)
	}
	return out
}

// ApplyMatrix transforms every row of m into a new matrix.
func (n *Normalizer) ApplyMatrix(m *tensor.Matrix) *tensor.Matrix {
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = tensor.Clamp((row[j]-n.Mean[j])/n.Std[j], -10, 10)
		}
	}
	return out
}
