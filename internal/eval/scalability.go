package eval

import (
	"fmt"
	"strings"
	"time"

	"turbo/internal/datagen"
	"turbo/internal/gnn"
	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// ScalePoint is one x-position of Fig. 8b: BN size versus full-graph
// training epoch time, subgraph sampling latency, and single-prediction
// latency.
type ScalePoint struct {
	Scale      int
	Nodes      int
	Edges      int
	TrainEpoch time.Duration
	Sample     time.Duration
	Predict    time.Duration
}

// RenderScalability prints the Fig. 8b series.
func RenderScalability(points []ScalePoint) string {
	var b strings.Builder
	b.WriteString("Figure 8b — scalability of graph computing operations\n")
	fmt.Fprintf(&b, "%6s %8s %9s %14s %12s %12s\n", "scale", "nodes", "edges", "train/epoch", "sample", "predict")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %8d %9d %14v %12v %12v\n", p.Scale, p.Nodes, p.Edges, p.TrainEpoch, p.Sample, p.Predict)
	}
	return b.String()
}

// RunScalability measures each scale multiplier applied to the base
// user count: epoch training time over the entire BN (expected linear in
// BN size), and mean sampling/prediction latency over probe audits
// (expected to grow slowly).
func RunScalability(base datagen.Config, scales []int, h Hyper, seed uint64) []ScalePoint {
	h = h.withDefaults()
	var out []ScalePoint
	for _, scale := range scales {
		cfg := base
		cfg.Users = base.Users * scale
		cfg.Seed = base.Seed + uint64(scale)
		a := Assemble(cfg, AssembleOptions{SplitSeed: seed})
		b := a.FullBatch()
		m := NewHAG(HAGFull, h.hagConfig(b.X.Cols, a.Graph.NumEdgeTypes(), seed))

		// Train a few epochs and take the average epoch wall time.
		const probeEpochs = 3
		tc := h.trainConfig(seed)
		tc.Epochs = probeEpochs
		stats := gnn.Train(m, b, a.TrainIdx, a.Labels, tc)

		// Probe sampling + single-node prediction latency.
		rng := tensor.NewRNG(seed)
		const probes = 30
		var sampleTotal, predictTotal time.Duration
		for k := 0; k < probes; k++ {
			u := a.Nodes[rng.Intn(len(a.Nodes))]
			t0 := time.Now()
			sg := a.Graph.Sample(u, graph.SampleOptions{Hops: 2, MaxNeighbors: 32})
			sampleTotal += time.Since(t0)
			x := tensor.New(sg.NumNodes(), a.X.Cols)
			for i, n := range sg.Nodes {
				copy(x.Row(i), a.X.Row(int(n)))
			}
			t1 := time.Now()
			gnn.Score(m, gnn.NewBatch(sg, x))
			predictTotal += time.Since(t1)
		}
		out = append(out, ScalePoint{
			Scale:      scale,
			Nodes:      a.Graph.NumNodes(),
			Edges:      a.Graph.NumEdges(),
			TrainEpoch: stats.Elapsed / probeEpochs,
			Sample:     sampleTotal / probes,
			Predict:    predictTotal / probes,
		})
	}
	return out
}
