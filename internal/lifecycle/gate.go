package lifecycle

import (
	"fmt"
	"time"
)

// HoldoutReport is the candidate's labeled-holdout replay evaluation
// (computed by the caller, e.g. eval.HoldoutFunc over the test split).
type HoldoutReport struct {
	Size      int     `json:"size"`
	AUC       float64 `json:"auc"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// RecallAtPrecision is the best recall any threshold achieves while
	// holding precision at or above PrecisionFloor.
	RecallAtPrecision float64 `json:"recall_at_precision"`
	PrecisionFloor    float64 `json:"precision_floor"`
}

// CohortDiff compares candidate and live scores over one shared cohort
// of real users: distribution shift (PSI, KS) and the paired decision
// disagreement rate at the serving threshold.
type CohortDiff struct {
	Size          int     `json:"size"`
	PSI           float64 `json:"psi"`
	KS            float64 `json:"ks"`
	Disagreement  float64 `json:"disagreement"`
	Threshold     float64 `json:"threshold"`
	CandidateMean float64 `json:"candidate_mean"`
	LiveMean      float64 `json:"live_mean"`
}

// DiffCohort reduces paired candidate/live scores to a CohortDiff.
func DiffCohort(candidate, live []float64, thresh float64) CohortDiff {
	return CohortDiff{
		Size:          len(candidate),
		PSI:           PSI(live, candidate, 0),
		KS:            KS(live, candidate),
		Disagreement:  DisagreementRate(candidate, live, thresh),
		Threshold:     thresh,
		CandidateMean: Mean(candidate),
		LiveMean:      Mean(live),
	}
}

// ShadowReport is everything learned about a candidate without serving
// it: the holdout replay and the live-cohort diff. Either side may be
// nil when its input was unavailable (no labels, empty cohort).
type ShadowReport struct {
	Holdout *HoldoutReport `json:"holdout,omitempty"`
	Cohort  *CohortDiff    `json:"cohort,omitempty"`
	At      time.Time      `json:"at"`
}

// GateConfig bounds what a candidate must prove in shadow before it may
// replace the live model. A zero field disables that check, so the zero
// value accepts everything (gate off).
type GateConfig struct {
	// MinAUC is the holdout ROC-AUC floor.
	MinAUC float64
	// MinRecallAtPrecision is the floor on holdout recall measured at
	// PrecisionFloor precision.
	MinRecallAtPrecision float64
	// PrecisionFloor is the precision at which MinRecallAtPrecision is
	// measured (0 selects 0.5 when MinRecallAtPrecision is set).
	PrecisionFloor float64
	// MaxPSI bounds the candidate-vs-live score-distribution shift.
	MaxPSI float64
	// MaxKS bounds the candidate-vs-live KS statistic.
	MaxKS float64
	// MaxDisagreement bounds the paired decision-flip rate.
	MaxDisagreement float64
	// RequireHoldout rejects candidates with no holdout evaluation;
	// RequireCohort rejects candidates with no live-cohort diff. Without
	// these, a missing input skips its checks.
	RequireHoldout bool
	RequireCohort  bool
}

// Enabled reports whether any check is configured.
func (c GateConfig) Enabled() bool {
	return c != GateConfig{}
}

// Verdict is the gate's decision on one candidate, with every violated
// bound recorded as a human-readable reason (persisted into the
// quarantined artifact's manifest).
type Verdict struct {
	Accepted bool         `json:"accepted"`
	Reasons  []string     `json:"reasons,omitempty"`
	Report   ShadowReport `json:"shadow"`
}

// Check gates a shadow report: every configured bound is evaluated and
// every violation collected, so a rejection names all of its reasons at
// once rather than the first.
func (c GateConfig) Check(rep ShadowReport) Verdict {
	var reasons []string
	if rep.Holdout == nil {
		if c.RequireHoldout {
			reasons = append(reasons, "no holdout evaluation available")
		}
	} else {
		h := rep.Holdout
		if c.MinAUC > 0 && h.AUC < c.MinAUC {
			reasons = append(reasons,
				fmt.Sprintf("holdout AUC %.4f below floor %.4f", h.AUC, c.MinAUC))
		}
		if c.MinRecallAtPrecision > 0 && h.RecallAtPrecision < c.MinRecallAtPrecision {
			reasons = append(reasons,
				fmt.Sprintf("holdout recall %.4f at precision ≥ %.2f below floor %.4f",
					h.RecallAtPrecision, h.PrecisionFloor, c.MinRecallAtPrecision))
		}
	}
	if rep.Cohort == nil {
		if c.RequireCohort {
			reasons = append(reasons, "no live-cohort diff available")
		}
	} else {
		d := rep.Cohort
		if c.MaxPSI > 0 && d.PSI > c.MaxPSI {
			reasons = append(reasons,
				fmt.Sprintf("score-distribution PSI %.4f above ceiling %.4f", d.PSI, c.MaxPSI))
		}
		if c.MaxKS > 0 && d.KS > c.MaxKS {
			reasons = append(reasons,
				fmt.Sprintf("score-distribution KS %.4f above ceiling %.4f", d.KS, c.MaxKS))
		}
		if c.MaxDisagreement > 0 && d.Disagreement > c.MaxDisagreement {
			reasons = append(reasons,
				fmt.Sprintf("candidate/live disagreement %.4f above ceiling %.4f",
					d.Disagreement, c.MaxDisagreement))
		}
	}
	return Verdict{Accepted: len(reasons) == 0, Reasons: reasons, Report: rep}
}
