package lifecycle

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPSIIdenticalDistributionsNearZero(t *testing.T) {
	scores := make([]float64, 1000)
	for i := range scores {
		scores[i] = float64(i) / 1000
	}
	if psi := PSI(scores, scores, 10); psi != 0 {
		t.Fatalf("PSI(x, x) = %v, want 0", psi)
	}
}

func TestPSIDetectsShift(t *testing.T) {
	low := make([]float64, 500)
	high := make([]float64, 500)
	for i := range low {
		low[i] = 0.1 + 0.001*float64(i%100)  // mass near 0.1
		high[i] = 0.8 + 0.001*float64(i%100) // mass near 0.8
	}
	psi := PSI(low, high, 10)
	if psi < 0.25 {
		t.Fatalf("PSI between disjoint distributions = %v, want major shift (> 0.25)", psi)
	}
	if math.IsInf(psi, 0) || math.IsNaN(psi) {
		t.Fatalf("PSI not finite: %v", psi)
	}
}

func TestPSIEmptyInputs(t *testing.T) {
	if psi := PSI(nil, []float64{0.5}, 10); psi != 0 {
		t.Fatalf("PSI with empty expected = %v, want 0", psi)
	}
	if psi := PSI([]float64{0.5}, nil, 10); psi != 0 {
		t.Fatalf("PSI with empty actual = %v, want 0", psi)
	}
}

func TestPSIClampsOutOfRange(t *testing.T) {
	// Scores outside [0,1] land in the edge bins instead of panicking.
	psi := PSI([]float64{-0.5, 1.5, 0.5}, []float64{-1, 2, 0.5}, 4)
	if math.IsNaN(psi) || math.IsInf(psi, 0) {
		t.Fatalf("PSI with out-of-range scores not finite: %v", psi)
	}
}

func TestKSIdenticalZeroDisjointOne(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	if ks := KS(a, a); ks != 0 {
		t.Fatalf("KS(x, x) = %v, want 0", ks)
	}
	b := []float64{0.7, 0.8, 0.9, 0.95}
	if ks := KS(a, b); ks != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", ks)
	}
	if ks := KS(nil, b); ks != 0 {
		t.Fatalf("KS with empty sample = %v, want 0", ks)
	}
}

func TestKSWithTies(t *testing.T) {
	a := []float64{0.5, 0.5, 0.5, 0.5}
	b := []float64{0.5, 0.5, 0.6, 0.6}
	ks := KS(a, b)
	// After 0.5: Fa = 1, Fb = 0.5 → D = 0.5.
	if math.Abs(ks-0.5) > 1e-12 {
		t.Fatalf("KS with ties = %v, want 0.5", ks)
	}
}

func TestDisagreementRate(t *testing.T) {
	cand := []float64{0.9, 0.1, 0.6, 0.4}
	live := []float64{0.9, 0.1, 0.4, 0.6}
	if d := DisagreementRate(cand, live, 0.5); d != 0.5 {
		t.Fatalf("disagreement = %v, want 0.5", d)
	}
	if d := DisagreementRate(cand, cand, 0.5); d != 0 {
		t.Fatalf("self disagreement = %v, want 0", d)
	}
	if d := DisagreementRate(nil, nil, 0.5); d != 0 {
		t.Fatalf("empty disagreement = %v, want 0", d)
	}
}

func TestDisagreementRatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched cohort lengths")
		}
	}()
	DisagreementRate([]float64{0.1}, []float64{0.1, 0.2}, 0.5)
}

func TestDiffCohort(t *testing.T) {
	cand := []float64{0.9, 0.8, 0.7, 0.1}
	live := []float64{0.2, 0.3, 0.1, 0.1}
	d := DiffCohort(cand, live, 0.5)
	if d.Size != 4 {
		t.Fatalf("size = %d, want 4", d.Size)
	}
	if d.Disagreement != 0.75 {
		t.Fatalf("disagreement = %v, want 0.75", d.Disagreement)
	}
	if d.CandidateMean <= d.LiveMean {
		t.Fatalf("means: candidate %v should exceed live %v", d.CandidateMean, d.LiveMean)
	}
	if d.PSI <= 0 || d.KS <= 0 {
		t.Fatalf("shifted cohort should have positive PSI (%v) and KS (%v)", d.PSI, d.KS)
	}
}

func TestGateZeroValueAcceptsEverything(t *testing.T) {
	var cfg GateConfig
	if cfg.Enabled() {
		t.Fatal("zero GateConfig should report disabled")
	}
	v := cfg.Check(ShadowReport{})
	if !v.Accepted || len(v.Reasons) != 0 {
		t.Fatalf("zero gate rejected: %+v", v)
	}
}

func TestGateAcceptsHealthyCandidate(t *testing.T) {
	cfg := GateConfig{
		MinAUC:               0.8,
		MinRecallAtPrecision: 0.5,
		PrecisionFloor:       0.5,
		MaxPSI:               0.25,
		MaxKS:                0.3,
		MaxDisagreement:      0.1,
		RequireHoldout:       true,
		RequireCohort:        true,
	}
	rep := ShadowReport{
		Holdout: &HoldoutReport{Size: 100, AUC: 0.95, RecallAtPrecision: 0.9, PrecisionFloor: 0.5},
		Cohort:  &CohortDiff{Size: 50, PSI: 0.02, KS: 0.05, Disagreement: 0.01},
		At:      time.Now(),
	}
	v := cfg.Check(rep)
	if !v.Accepted {
		t.Fatalf("healthy candidate rejected: %v", v.Reasons)
	}
}

func TestGateCollectsAllViolations(t *testing.T) {
	cfg := GateConfig{
		MinAUC:               0.8,
		MinRecallAtPrecision: 0.5,
		PrecisionFloor:       0.5,
		MaxPSI:               0.25,
		MaxDisagreement:      0.1,
	}
	rep := ShadowReport{
		Holdout: &HoldoutReport{AUC: 0.51, RecallAtPrecision: 0.1, PrecisionFloor: 0.5},
		Cohort:  &CohortDiff{PSI: 0.9, Disagreement: 0.4},
	}
	v := cfg.Check(rep)
	if v.Accepted {
		t.Fatal("degenerate candidate accepted")
	}
	if len(v.Reasons) != 4 {
		t.Fatalf("want all 4 violations collected, got %d: %v", len(v.Reasons), v.Reasons)
	}
	joined := strings.Join(v.Reasons, "; ")
	for _, want := range []string{"AUC", "recall", "PSI", "disagreement"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("reasons missing %q: %v", want, v.Reasons)
		}
	}
}

func TestGateRequireMissingInputs(t *testing.T) {
	cfg := GateConfig{RequireHoldout: true, RequireCohort: true}
	if !cfg.Enabled() {
		t.Fatal("require-only gate should report enabled")
	}
	v := cfg.Check(ShadowReport{})
	if v.Accepted || len(v.Reasons) != 2 {
		t.Fatalf("missing-input candidate should collect 2 reasons, got %+v", v)
	}
	// Without Require*, missing inputs skip their checks.
	soft := GateConfig{MinAUC: 0.8, MaxPSI: 0.25}
	if got := soft.Check(ShadowReport{}); !got.Accepted {
		t.Fatalf("soft gate rejected missing inputs: %v", got.Reasons)
	}
}

func TestMonitorHealthyWindowNoRollback(t *testing.T) {
	m := Start(MonitorConfig{
		Window:       120 * time.Millisecond,
		Interval:     20 * time.Millisecond,
		MaxErrorRate: 0.5,
	}, Probes{
		Health:   func() Health { return Health{Audits: 100, Failed: 1} },
		Rollback: func(string) error { t.Error("rollback fired on healthy window"); return nil },
	})
	<-m.Done()
	res := m.Result()
	if res.RolledBack || res.Stopped {
		t.Fatalf("healthy window: %+v", res)
	}
	if res.Checks == 0 {
		t.Fatal("monitor never checked health")
	}
}

func TestMonitorErrorRateRollback(t *testing.T) {
	var readings int
	rolled := make(chan string, 1)
	m := Start(MonitorConfig{
		Window:       time.Second,
		Interval:     10 * time.Millisecond,
		MinAudits:    10,
		MaxErrorRate: 0.2,
	}, Probes{
		Health: func() Health {
			readings++
			if readings == 1 {
				return Health{Audits: 100, Failed: 5} // swap-time baseline
			}
			return Health{Audits: 200, Failed: 55} // post-swap: 50/100 failing
		},
		Rollback: func(reason string) error { rolled <- reason; return nil },
	})
	select {
	case reason := <-rolled:
		if !strings.Contains(reason, "error rate") {
			t.Fatalf("unexpected rollback reason %q", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor never rolled back on 50% error rate")
	}
	<-m.Done()
	res := m.Result()
	if !res.RolledBack || res.Reason == "" {
		t.Fatalf("result after rollback: %+v", res)
	}
	if res.Audits != 100 {
		t.Fatalf("post-swap audits = %d, want 100", res.Audits)
	}
}

func TestMonitorMinAuditsSuppressesNoise(t *testing.T) {
	// 2/3 audits failed but MinAudits=50 means the rate is not trusted yet.
	m := Start(MonitorConfig{
		Window:       100 * time.Millisecond,
		Interval:     10 * time.Millisecond,
		MinAudits:    50,
		MaxErrorRate: 0.1,
	}, Probes{
		Health:   func() Health { return Health{Audits: 3, Failed: 2} },
		Rollback: func(string) error { t.Error("rollback on untrusted sample"); return nil },
	})
	<-m.Done()
	if m.Result().RolledBack {
		t.Fatal("rolled back below MinAudits")
	}
}

func TestMonitorScoreShiftRollback(t *testing.T) {
	rolled := make(chan string, 1)
	m := Start(MonitorConfig{
		Window:        time.Second,
		Interval:      10 * time.Millisecond,
		MaxScoreShift: 0.25,
	}, Probes{
		ScoreShift: func() (float64, bool) { return 0.8, true },
		Rollback:   func(reason string) error { rolled <- reason; return nil },
	})
	select {
	case reason := <-rolled:
		if !strings.Contains(reason, "PSI") {
			t.Fatalf("unexpected rollback reason %q", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor never rolled back on score shift")
	}
	<-m.Done()
}

func TestMonitorStopFromRollbackDoesNotDeadlock(t *testing.T) {
	// The production rollback path stops the monitor from inside the
	// monitor's own goroutine; Stop must not wait on Done.
	var m *Monitor
	done := make(chan struct{})
	var readings int64
	m = Start(MonitorConfig{
		Window:       time.Second,
		Interval:     5 * time.Millisecond,
		MaxErrorRate: 0.01,
	}, Probes{
		// Cumulative counters grow past the swap-time baseline.
		Health: func() Health {
			readings++
			return Health{Audits: readings * 100, Failed: readings * 90}
		},
		Rollback: func(string) error {
			m.Stop() // re-entrant stop, as ModelManager.Rollback does
			close(done)
			return nil
		},
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("re-entrant Stop deadlocked the monitor")
	}
	select {
	case <-m.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("monitor goroutine never exited after re-entrant Stop")
	}
}

func TestMonitorStopCancelsWatch(t *testing.T) {
	m := Start(MonitorConfig{Window: time.Hour, Interval: time.Hour}, Probes{})
	m.Stop()
	select {
	case <-m.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not end the watch")
	}
	if res := m.Result(); !res.Stopped || res.RolledBack {
		t.Fatalf("stopped watch result: %+v", res)
	}
}

func TestMonitorRollbackErrorRecorded(t *testing.T) {
	var readings int64
	m := Start(MonitorConfig{
		Window:       time.Second,
		Interval:     5 * time.Millisecond,
		MaxErrorRate: 0.01,
	}, Probes{
		Health: func() Health {
			readings++
			return Health{Audits: readings * 100, Failed: readings * 90}
		},
		Rollback: func(string) error { return errFake },
	})
	<-m.Done()
	res := m.Result()
	if res.RolledBack {
		t.Fatal("failed rollback reported as rolled back")
	}
	if res.RollbackError == "" || res.Reason == "" {
		t.Fatalf("rollback failure not recorded: %+v", res)
	}
}

var errFake = errFakeT{}

type errFakeT struct{}

func (errFakeT) Error() string { return "artifact store unavailable" }
