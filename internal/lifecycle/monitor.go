package lifecycle

import (
	"fmt"
	"sync"
	"time"
)

// Health is one cumulative reading of live serving counters. The
// monitor diffs readings against the one taken at swap time, so only
// post-swap traffic is judged.
type Health struct {
	// Audits is the total number of completed audit outcomes, including
	// failed ones.
	Audits int64
	// Degraded counts audits served below the full tier.
	Degraded int64
	// Failed counts audits that produced no usable score (shed load,
	// unknown users, hard errors).
	Failed int64
}

// MonitorConfig bounds what live health may do during the post-swap
// watch window before the monitor rolls the swap back. A zero rate or
// shift field disables that check.
type MonitorConfig struct {
	// Window is the total watch duration; the monitor exits healthy when
	// it elapses without a violation. Zero disables monitoring.
	Window time.Duration
	// Interval is the check period (0 selects Window/10, floored at
	// 100 ms).
	Interval time.Duration
	// MinAudits is the minimum number of post-swap audits before the
	// rate checks are trusted (protects against judging on noise).
	MinAudits int64
	// MaxErrorRate bounds post-swap Failed/Audits.
	MaxErrorRate float64
	// MaxDegradedRate bounds post-swap Degraded/Audits.
	MaxDegradedRate float64
	// MaxScoreShift bounds the PSI between the current serving scores and
	// the pre-swap baseline reported by the ScoreShift probe.
	MaxScoreShift float64
}

// Probes are the monitor's hooks into the live stack. All fields are
// optional except Rollback; a nil probe disables its checks.
type Probes struct {
	// Health reads the cumulative serving counters.
	Health func() Health
	// ScoreShift returns the PSI of the current serving-score
	// distribution against the pre-swap baseline, and whether the reading
	// is usable (false when the cohort could not be scored).
	ScoreShift func() (float64, bool)
	// Rollback re-installs the previous accepted model. Called at most
	// once, from the monitor goroutine.
	Rollback func(reason string) error
	// Logf receives progress lines (nil discards them).
	Logf func(string, ...any)
}

// Result is the outcome of one completed watch.
type Result struct {
	RolledBack bool   `json:"rolled_back"`
	Reason     string `json:"reason,omitempty"`
	// RollbackError is set when the rollback action itself failed.
	RollbackError string `json:"rollback_error,omitempty"`
	Checks        int    `json:"checks"`
	Audits        int64  `json:"audits"`
	Stopped       bool   `json:"stopped"` // cancelled before the window elapsed
}

// Monitor watches live health for one accepted swap. Create with Start;
// it runs in its own goroutine and finishes when the window elapses, a
// violation triggers the rollback, or Stop cancels it (a newer swap
// supersedes the watch).
type Monitor struct {
	cfg    MonitorConfig
	probes Probes

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu  sync.Mutex
	res Result
}

// Start launches the watch. cfg.Window must be positive.
func Start(cfg MonitorConfig, probes Probes) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Window / 10
		if cfg.Interval < 100*time.Millisecond {
			cfg.Interval = 100 * time.Millisecond
		}
	}
	m := &Monitor{
		cfg:    cfg,
		probes: probes,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go m.run()
	return m
}

// Stop cancels the watch (idempotent; a superseding swap or a manual
// rollback calls it). It does not wait for the goroutine to exit.
func (m *Monitor) Stop() { m.stopOnce.Do(func() { close(m.stop) }) }

// Done is closed when the watch has finished (window elapsed, rollback
// fired, or stopped).
func (m *Monitor) Done() <-chan struct{} { return m.done }

// Result returns the watch outcome so far; final once Done is closed.
func (m *Monitor) Result() Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.res
}

func (m *Monitor) logf(format string, args ...any) {
	if m.probes.Logf != nil {
		m.probes.Logf(format, args...)
	}
}

func (m *Monitor) run() {
	defer close(m.done)
	var base Health
	if m.probes.Health != nil {
		base = m.probes.Health()
	}
	deadline := time.NewTimer(m.cfg.Window)
	defer deadline.Stop()
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			m.mu.Lock()
			m.res.Stopped = true
			m.mu.Unlock()
			return
		case <-deadline.C:
			// One final check at the window edge, then exit healthy.
			if m.check(base) {
				return
			}
			m.logf("lifecycle: monitor window elapsed, swap healthy")
			return
		case <-ticker.C:
			if m.check(base) {
				return
			}
		}
	}
}

// check runs every configured probe once; true means the watch is over
// (a violation fired the rollback).
func (m *Monitor) check(base Health) bool {
	m.mu.Lock()
	m.res.Checks++
	m.mu.Unlock()

	var reason string
	if m.probes.Health != nil {
		h := m.probes.Health()
		audits := h.Audits - base.Audits
		m.mu.Lock()
		m.res.Audits = audits
		m.mu.Unlock()
		if audits > 0 && audits >= m.cfg.MinAudits {
			if m.cfg.MaxErrorRate > 0 {
				if rate := float64(h.Failed-base.Failed) / float64(audits); rate > m.cfg.MaxErrorRate {
					reason = fmt.Sprintf("error rate %.4f above ceiling %.4f over %d audits",
						rate, m.cfg.MaxErrorRate, audits)
				}
			}
			if reason == "" && m.cfg.MaxDegradedRate > 0 {
				if rate := float64(h.Degraded-base.Degraded) / float64(audits); rate > m.cfg.MaxDegradedRate {
					reason = fmt.Sprintf("degraded-tier rate %.4f above ceiling %.4f over %d audits",
						rate, m.cfg.MaxDegradedRate, audits)
				}
			}
		}
	}
	if reason == "" && m.cfg.MaxScoreShift > 0 && m.probes.ScoreShift != nil {
		if psi, ok := m.probes.ScoreShift(); ok && psi > m.cfg.MaxScoreShift {
			reason = fmt.Sprintf("serving-score PSI %.4f vs pre-swap baseline above ceiling %.4f",
				psi, m.cfg.MaxScoreShift)
		}
	}
	if reason == "" {
		return false
	}

	m.logf("lifecycle: monitor regression detected: %s — rolling back", reason)
	var rbErr error
	if m.probes.Rollback != nil {
		rbErr = m.probes.Rollback(reason)
	}
	m.mu.Lock()
	m.res.RolledBack = rbErr == nil
	m.res.Reason = reason
	if rbErr != nil {
		m.res.RollbackError = rbErr.Error()
	}
	m.mu.Unlock()
	if rbErr != nil {
		m.logf("lifecycle: rollback failed: %v", rbErr)
	}
	return true
}
