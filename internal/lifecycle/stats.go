// Package lifecycle implements the safe-deployment subsystem that
// stands between offline training and real-time serving: a candidate
// model is first scored in shadow (holdout replay + candidate/live diff
// on a sampled cohort), then passed through a configurable quality gate
// before it may be hot-swapped; accepted swaps are watched by a rollback
// monitor that re-installs the previous accepted model when live health
// regresses. The package is serving-stack-agnostic — it works on score
// slices and probe closures, so internal/server wires it to the sweep
// engine and the audit counters without a dependency cycle.
package lifecycle

import (
	"math"
	"sort"
)

// psiEps floors empty histogram bins so the PSI log ratio stays finite:
// a bin one distribution occupies and the other does not contributes a
// large-but-bounded term instead of +Inf.
const psiEps = 1e-4

// PSI is the population stability index between two score distributions
// over [0, 1], the standard drift statistic for model scores: fixed
// equal-width bins, ε-floored proportions, Σ (a−e)·ln(a/e). Values
// below ~0.1 mean no shift, 0.1–0.25 moderate shift, above 0.25 a major
// shift. bins ≤ 0 selects 10. Either side empty → 0 (no evidence).
func PSI(expected, actual []float64, bins int) float64 {
	if len(expected) == 0 || len(actual) == 0 {
		return 0
	}
	if bins <= 0 {
		bins = 10
	}
	pe := proportions(expected, bins)
	pa := proportions(actual, bins)
	var psi float64
	for i := range pe {
		e := math.Max(pe[i], psiEps)
		a := math.Max(pa[i], psiEps)
		psi += (a - e) * math.Log(a/e)
	}
	return psi
}

// proportions histograms scores into equal-width bins over [0, 1],
// clamping out-of-range values into the edge bins.
func proportions(scores []float64, bins int) []float64 {
	p := make([]float64, bins)
	for _, s := range scores {
		i := int(s * float64(bins))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		p[i]++
	}
	n := float64(len(scores))
	for i := range p {
		p[i] /= n
	}
	return p
}

// KS is the two-sample Kolmogorov–Smirnov statistic: the maximum
// vertical distance between the empirical CDFs of a and b, in [0, 1].
// Either side empty → 0.
func KS(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance both sides past the smaller value (and its ties) so the
		// CDFs are compared strictly after it.
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// DisagreementRate is the fraction of paired scores whose fraud
// decision differs at the given threshold — the candidate/live
// behavioral diff the gate bounds. Panics on length mismatch (the
// cohort must be identical on both sides); empty input → 0.
func DisagreementRate(a, b []float64, thresh float64) float64 {
	if len(a) != len(b) {
		panic("lifecycle: disagreement over mismatched cohorts")
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	for i := range a {
		if (a[i] >= thresh) != (b[i] >= thresh) {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// Mean averages xs (0 when empty), for the shadow report's summary.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
