package baselines

import (
	"math"

	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// DeepWalkConfig parameterizes the DeepWalk embedding used by the
// DeepTrax (DTX) baseline — random walks over the type-merged BN plus
// skip-gram with negative sampling.
type DeepWalkConfig struct {
	Dim          int     // 0 selects 32
	WalksPerNode int     // 0 selects 8
	WalkLength   int     // 0 selects 6 (DeepTrax uses shallow two-hop walks)
	Window       int     // 0 selects 2
	NegSamples   int     // 0 selects 4
	Epochs       int     // 0 selects 3
	LR           float64 // 0 selects 0.025
	Seed         uint64
}

func (c DeepWalkConfig) withDefaults() DeepWalkConfig {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.WalksPerNode == 0 {
		c.WalksPerNode = 8
	}
	if c.WalkLength == 0 {
		c.WalkLength = 6
	}
	if c.Window == 0 {
		c.Window = 2
	}
	if c.NegSamples == 0 {
		c.NegSamples = 4
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.Seed == 0 {
		c.Seed = 13
	}
	return c
}

// DeepWalk learns node embeddings for the given nodes; the returned
// matrix rows align with the nodes slice. Nodes without edges receive
// their (random) initial vectors.
func DeepWalk(g graph.GraphView, nodes []graph.NodeID, cfg DeepWalkConfig) *tensor.Matrix {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	n := len(nodes)
	index := make(map[graph.NodeID]int, n)
	for i, u := range nodes {
		index[u] = i
	}
	// Local adjacency restricted to the embedded node set.
	adj := make([][]int, n)
	for i, u := range nodes {
		for _, v := range g.Neighbors(u) {
			if j, ok := index[v]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	emb := tensor.New(n, cfg.Dim)
	ctx := tensor.New(n, cfg.Dim)
	for i := range emb.Data {
		emb.Data[i] = (rng.Float64() - 0.5) / float64(cfg.Dim)
	}

	walk := make([]int, 0, cfg.WalkLength)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		for _, start := range order {
			for w := 0; w < cfg.WalksPerNode; w++ {
				walk = walk[:0]
				cur := start
				for len(walk) < cfg.WalkLength {
					walk = append(walk, cur)
					if len(adj[cur]) == 0 {
						break
					}
					cur = adj[cur][rng.Intn(len(adj[cur]))]
				}
				trainWalk(emb, ctx, walk, cfg, rng)
			}
		}
	}
	return emb
}

// trainWalk applies skip-gram with negative sampling over one walk.
func trainWalk(emb, ctx *tensor.Matrix, walk []int, cfg DeepWalkConfig, rng *tensor.RNG) {
	n := emb.Rows
	for ci, center := range walk {
		lo := ci - cfg.Window
		if lo < 0 {
			lo = 0
		}
		hi := ci + cfg.Window
		if hi >= len(walk) {
			hi = len(walk) - 1
		}
		for wi := lo; wi <= hi; wi++ {
			if wi == ci {
				continue
			}
			sgdPair(emb.Row(center), ctx.Row(walk[wi]), 1, cfg.LR)
			for k := 0; k < cfg.NegSamples; k++ {
				sgdPair(emb.Row(center), ctx.Row(rng.Intn(n)), 0, cfg.LR)
			}
		}
	}
}

// sgdPair applies one logistic SGD step on (center, context).
func sgdPair(v, c []float64, label, lr float64) {
	var dot float64
	for i := range v {
		dot += v[i] * c[i]
	}
	g := lr * (label - 1/(1+math.Exp(-dot)))
	for i := range v {
		vi := v[i]
		v[i] += g * c[i]
		c[i] += g * vi
	}
}

// DTX is the DeepTrax baseline: DeepWalk embeddings classified by GBDT.
// WithFeatures=false is DTX1 (embeddings only); true is DTX2
// (embeddings concatenated with the original features).
type DTX struct {
	Walk         DeepWalkConfig
	GBDT         GBDT
	WithFeatures bool
}

// Name returns DTX1 or DTX2.
func (m *DTX) Name() string {
	if m.WithFeatures {
		return "DTX2"
	}
	return "DTX1"
}

// BuildFeatures computes the DTX input rows for nodes.
func (m *DTX) BuildFeatures(g graph.GraphView, nodes []graph.NodeID, original *tensor.Matrix) *tensor.Matrix {
	emb := DeepWalk(g, nodes, m.Walk)
	if !m.WithFeatures || original == nil {
		return emb
	}
	return original.ConcatCols(emb)
}
