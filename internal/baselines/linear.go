// Package baselines implements the comparison methods of §VI-A: the
// handcrafted-feature classifiers (LR, SVM, GBDT, DNN) and the
// graph-based approaches BLP (graph features + boosted trees) and
// DeepTrax (DeepWalk-style embeddings + boosted trees).
package baselines

import (
	"math"

	"turbo/internal/tensor"
)

// Classifier is a binary classifier over dense feature rows.
type Classifier interface {
	Name() string
	Fit(x *tensor.Matrix, y []float64)
	// PredictProba returns a fraud probability per row of x.
	PredictProba(x *tensor.Matrix) []float64
}

// LogisticRegression is plain L2-regularized logistic regression trained
// with full-batch gradient descent. Without Balance it stays
// conservative on imbalanced data (high precision, low recall at 0.5),
// like the paper's feature-based baselines.
type LogisticRegression struct {
	Epochs  int     // 0 selects 300
	LR      float64 // 0 selects 0.1
	L2      float64 // 0 selects 1e-4
	Balance bool    // weight positives by the class ratio

	w []float64
	b float64
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (m *LogisticRegression) Fit(x *tensor.Matrix, y []float64) {
	epochs, lr, l2 := m.Epochs, m.LR, m.L2
	if epochs == 0 {
		epochs = 300
	}
	if lr == 0 {
		lr = 0.1
	}
	if l2 == 0 {
		l2 = 1e-4
	}
	n, f := x.Rows, x.Cols
	m.w = make([]float64, f)
	m.b = 0
	posW, negW := 1.0, 1.0
	if m.Balance {
		posW, negW = classWeights(y)
	}
	gw := make([]float64, f)
	for e := 0; e < epochs; e++ {
		for i := range gw {
			gw[i] = 0
		}
		gb := 0.0
		var wsum float64
		for i := 0; i < n; i++ {
			row := x.Row(i)
			z := m.b + tensor.Dot(m.w, row)
			p := tensor.SigmoidScalar(z)
			wgt := negW
			if y[i] > 0.5 {
				wgt = posW
			}
			d := wgt * (p - y[i])
			for j, v := range row {
				gw[j] += d * v
			}
			gb += d
			wsum += wgt
		}
		for j := range m.w {
			m.w[j] -= lr * (gw[j]/wsum + l2*m.w[j])
		}
		m.b -= lr * gb / wsum
	}
}

// Weights returns a copy of the fitted coefficients and the intercept,
// so the model can be serialized (internal/persist model artifacts).
func (m *LogisticRegression) Weights() ([]float64, float64) {
	return append([]float64(nil), m.w...), m.b
}

// SetWeights installs previously fitted coefficients, making the model
// usable without calling Fit (artifact restore).
func (m *LogisticRegression) SetWeights(w []float64, b float64) {
	m.w = append([]float64(nil), w...)
	m.b = b
}

// PredictProba implements Classifier.
func (m *LogisticRegression) PredictProba(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = tensor.SigmoidScalar(m.b + tensor.Dot(m.w, x.Row(i)))
	}
	return out
}

// LinearSVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm on the hinge loss; scores are mapped
// to probabilities with a fixed logistic link for AUC/thresholding.
type LinearSVM struct {
	Epochs  int     // 0 selects 30
	Lambda  float64 // 0 selects 1e-4
	Balance bool    // weight positives by the class ratio
	Seed    uint64

	w []float64
	b float64
}

// Name implements Classifier.
func (m *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *LinearSVM) Fit(x *tensor.Matrix, y []float64) {
	epochs, lambda := m.Epochs, m.Lambda
	if epochs == 0 {
		epochs = 30
	}
	if lambda == 0 {
		lambda = 1e-4
	}
	seed := m.Seed
	if seed == 0 {
		seed = 3
	}
	rng := tensor.NewRNG(seed)
	n, f := x.Rows, x.Cols
	m.w = make([]float64, f)
	m.b = 0
	posW, negW := 1.0, 1.0
	if m.Balance {
		posW, negW = classWeights(y)
	}
	t := 0
	for e := 0; e < epochs; e++ {
		for k := 0; k < n; k++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (lambda * float64(t))
			row := x.Row(i)
			yi := -1.0
			wgt := negW
			if y[i] > 0.5 {
				yi = 1
				wgt = posW
			}
			margin := yi * (m.b + tensor.Dot(m.w, row))
			for j := range m.w {
				m.w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j, v := range row {
					m.w[j] += eta * wgt * yi * v
				}
				m.b += eta * wgt * yi * 0.1
			}
		}
	}
}

// PredictProba implements Classifier.
func (m *LinearSVM) PredictProba(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = tensor.SigmoidScalar(2 * (m.b + tensor.Dot(m.w, x.Row(i))))
	}
	return out
}

// classWeights returns (positive, negative) example weights that soften
// class imbalance with a square-root reweighting — full inverse-ratio
// weighting makes threshold-0.5 classifiers over-predict the minority
// class, which does not match the paper's conservative feature models.
// Both weights are 1 when a class is absent.
func classWeights(y []float64) (posW, negW float64) {
	var pos int
	for _, v := range y {
		if v > 0.5 {
			pos++
		}
	}
	neg := len(y) - pos
	if pos == 0 || neg == 0 {
		return 1, 1
	}
	return math.Sqrt(float64(neg) / float64(pos)), 1
}

// Standardize z-scores each column of train and applies the same
// transform to the other matrices, returning new matrices. Columns with
// zero variance pass through centered only.
func Standardize(train *tensor.Matrix, others ...*tensor.Matrix) (*tensor.Matrix, []*tensor.Matrix) {
	f := train.Cols
	mean := make([]float64, f)
	std := make([]float64, f)
	for j := 0; j < f; j++ {
		var s float64
		for i := 0; i < train.Rows; i++ {
			s += train.At(i, j)
		}
		mean[j] = s / float64(train.Rows)
		var v float64
		for i := 0; i < train.Rows; i++ {
			d := train.At(i, j) - mean[j]
			v += d * d
		}
		std[j] = math.Sqrt(v / float64(train.Rows))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	apply := func(m *tensor.Matrix) *tensor.Matrix {
		out := m.Clone()
		for i := 0; i < m.Rows; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] = (row[j] - mean[j]) / std[j]
			}
		}
		return out
	}
	outOthers := make([]*tensor.Matrix, len(others))
	for i, o := range others {
		outOthers[i] = apply(o)
	}
	return apply(train), outOthers
}
