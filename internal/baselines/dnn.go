package baselines

import (
	"turbo/internal/autodiff"
	"turbo/internal/nn"
	"turbo/internal/tensor"
)

// DNN is the three-layer MLP baseline of §VI-A (128/64/32 hidden units)
// trained with Adam on class-balanced binary cross-entropy.
type DNN struct {
	Hidden  []int   // nil selects {128, 64, 32}
	Epochs  int     // 0 selects 200
	LR      float64 // 0 selects 1e-3
	Dropout float64
	Balance bool // weight positives by the class ratio
	Seed    uint64

	mlp *nn.MLP
}

// Name implements Classifier.
func (m *DNN) Name() string { return "DNN" }

// Fit implements Classifier.
func (m *DNN) Fit(x *tensor.Matrix, y []float64) {
	hidden := m.Hidden
	if len(hidden) == 0 {
		hidden = []int{128, 64, 32}
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	lr := m.LR
	if lr == 0 {
		lr = 1e-3
	}
	seed := m.Seed
	if seed == 0 {
		seed = 5
	}
	rng := tensor.NewRNG(seed)
	sizes := append(append([]int{x.Cols}, hidden...), 1)
	m.mlp = nn.NewMLP("dnn", sizes, nn.ActReLU, rng)
	opt := nn.NewAdam(m.mlp, lr)

	posW, negW := 1.0, 1.0
	if m.Balance {
		posW, negW = classWeights(y)
	}
	weights := make([]float64, len(y))
	for i, v := range y {
		if v > 0.5 {
			weights[i] = posW
		} else {
			weights[i] = negW
		}
	}
	dropRNG := rng.Split()
	for e := 0; e < epochs; e++ {
		t := autodiff.NewTape()
		in := t.Const(x)
		if m.Dropout > 0 {
			in = t.Dropout(in, m.Dropout, dropRNG)
		}
		logits := m.mlp.Forward(t, in)
		loss := t.WeightedBCEWithLogits(logits, y, weights)
		t.Backward(loss)
		nn.ClipGradNorm(m.mlp, 5)
		opt.Step()
	}
}

// PredictProba implements Classifier on the tape-free forward path:
// inference needs no gradients, so the MLP runs on plain tensor kernels.
func (m *DNN) PredictProba(x *tensor.Matrix) []float64 {
	logits := m.mlp.Infer(x)
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = tensor.SigmoidScalar(logits.Data[i])
	}
	return out
}
