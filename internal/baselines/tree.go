package baselines

import (
	"sort"

	"turbo/internal/tensor"
)

// treeNode is one node of a regression tree; leaves have feature == -1.
type treeNode struct {
	feature   int
	threshold float64
	left      int // child indices into the tree's node slice
	right     int
	value     float64
}

// regressionTree is a depth-limited CART regression tree fit with
// second-order (Newton) leaf values, the weak learner of the GBDT.
type regressionTree struct {
	nodes []treeNode
}

// treeParams bounds tree growth.
type treeParams struct {
	maxDepth      int
	minLeaf       int
	lambda        float64 // L2 on leaf values
	minSplitGain  float64
	featureSample float64 // fraction of features considered per split
	rng           *tensor.RNG
}

// fitTree grows a tree on gradients g and hessians h over rows idx.
func fitTree(x *tensor.Matrix, g, h []float64, idx []int, p treeParams) *regressionTree {
	t := &regressionTree{}
	t.grow(x, g, h, idx, p, 0)
	return t
}

// grow returns the index of the created node.
func (t *regressionTree) grow(x *tensor.Matrix, g, h []float64, idx []int, p treeParams, depth int) int {
	var sumG, sumH float64
	for _, i := range idx {
		sumG += g[i]
		sumH += h[i]
	}
	leafVal := -sumG / (sumH + p.lambda)
	self := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1, value: leafVal})
	if depth >= p.maxDepth || len(idx) < 2*p.minLeaf {
		return self
	}
	bestGain := p.minSplitGain
	bestFeat, bestThresh := -1, 0.0
	parentScore := sumG * sumG / (sumH + p.lambda)

	order := make([]int, len(idx))
	for f := 0; f < x.Cols; f++ {
		if p.featureSample < 1 && p.rng != nil && p.rng.Float64() > p.featureSample {
			continue
		}
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x.At(order[a], f) < x.At(order[b], f) })
		var lG, lH float64
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			lG += g[i]
			lH += h[i]
			if k+1 < p.minLeaf || len(order)-k-1 < p.minLeaf {
				continue
			}
			v, next := x.At(i, f), x.At(order[k+1], f)
			if v == next {
				continue
			}
			rG, rH := sumG-lG, sumH-lH
			gain := lG*lG/(lH+p.lambda) + rG*rG/(rH+p.lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return self
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeat) <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return self
	}
	left := t.grow(x, g, h, leftIdx, p, depth+1)
	right := t.grow(x, g, h, rightIdx, p, depth+1)
	t.nodes[self].feature = bestFeat
	t.nodes[self].threshold = bestThresh
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// predict evaluates one feature row.
func (t *regressionTree) predict(row []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if row[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// depth returns the maximum depth of the tree (a root-only tree is 0).
func (t *regressionTree) depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}
