package baselines

import (
	"fmt"

	"turbo/internal/graph"
	"turbo/internal/tensor"
)

// GraphFeatureNames names the columns produced by GraphFeatures for a
// graph with numTypes edge types.
func GraphFeatureNames(numTypes int) []string {
	names := []string{
		"degree", "weighted_degree", "clustering_coeff",
		"two_hop_size", "mean_neighbor_degree", "multi_type_neighbors",
	}
	for t := 0; t < numTypes; t++ {
		names = append(names, fmt.Sprintf("deg_type_%d", t))
	}
	return names
}

// GraphFeatures extracts the BLP-style handcrafted graph features of Min
// et al. for each node: degrees, local clustering coefficient, 2-hop
// neighborhood size, mean neighbor degree, the multi-type-neighbor count
// (a quadrangle proxy on the user–behavior bipartite graph: neighbors
// reached through ≥2 distinct behavior types), and per-type degrees.
// Rows align with the nodes slice.
func GraphFeatures(g graph.GraphView, nodes []graph.NodeID) *tensor.Matrix {
	numTypes := g.NumEdgeTypes()
	cols := 6 + numTypes
	out := tensor.New(len(nodes), cols)
	for i, u := range nodes {
		row := out.Row(i)
		neigh := g.Neighbors(u)
		row[0] = float64(len(neigh))
		row[1] = g.WeightedDegree(u)
		row[2] = clusteringCoeff(g, u, neigh)
		twoHop := make(map[graph.NodeID]struct{})
		var degSum float64
		multiType := 0
		for _, v := range neigh {
			degSum += float64(g.Degree(v))
			for _, w := range g.Neighbors(v) {
				if w != u {
					twoHop[w] = struct{}{}
				}
			}
			types := 0
			for t := 0; t < numTypes; t++ {
				if g.EdgeWeight(graph.EdgeType(t), u, v) > 0 {
					types++
				}
			}
			if types >= 2 {
				multiType++
			}
		}
		row[3] = float64(len(twoHop))
		if len(neigh) > 0 {
			row[4] = degSum / float64(len(neigh))
		}
		row[5] = float64(multiType)
		for t := 0; t < numTypes; t++ {
			row[6+t] = float64(len(g.NeighborsByType(u, graph.EdgeType(t))))
		}
	}
	return out
}

// clusteringCoeff is the local clustering coefficient of u on the
// type-merged graph: closed neighbor pairs / all neighbor pairs.
func clusteringCoeff(g graph.GraphView, u graph.NodeID, neigh []graph.NodeID) float64 {
	n := len(neigh)
	if n < 2 {
		return 0
	}
	set := make(map[graph.NodeID]struct{}, n)
	for _, v := range neigh {
		set[v] = struct{}{}
	}
	links := 0
	for _, v := range neigh {
		for _, w := range g.Neighbors(v) {
			if w == u || w <= v {
				continue
			}
			if _, ok := set[w]; ok {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(n) * float64(n-1))
}

// FilterGraphTypes returns a copy of g containing only edges of the
// given types. BLP uses it to build its application-information graph:
// Min et al. connect applications through form data (devices, contact
// and delivery addresses), not through the real-time behavior logs —
// exactly the limitation the paper's introduction attributes to prior
// graph methods.
func FilterGraphTypes(g graph.GraphView, keep []graph.EdgeType) *graph.Graph {
	out := graph.New(g.NumEdgeTypes())
	for _, n := range g.Nodes() {
		out.AddNode(n)
	}
	for _, e := range g.Edges() {
		for _, t := range keep {
			if e.Type == t {
				// Errors cannot occur: edges come from a valid graph.
				_ = out.AddEdgeWeight(e.Type, e.U, e.V, e.Weight, e.ExpireAt)
				break
			}
		}
	}
	return out
}

// BLP is the Behavior Language Processing baseline: handcrafted graph
// features from the application-information graph concatenated with the
// original features, classified by GBDT (the paper uses LightGBM).
type BLP struct {
	GBDT GBDT
	// AppGraphTypes restricts the graph features to application-form
	// relations; nil selects Device ID + delivery addresses + workplace.
	AppGraphTypes []graph.EdgeType
}

// Name implements Classifier-style naming (BLP is fit via FitGraph).
func (m *BLP) Name() string { return "BLP" }

// DefaultAppGraphTypes is the application-information relation set.
func DefaultAppGraphTypes() []graph.EdgeType {
	return []graph.EdgeType{0 /* DeviceID */, 7 /* GPSDev */, 8 /* GPSDev100 */, 9 /* Workplace */}
}

// BuildFeatures assembles [original ; application-graph] feature rows.
func (m *BLP) BuildFeatures(g graph.GraphView, nodes []graph.NodeID, original *tensor.Matrix) *tensor.Matrix {
	keep := m.AppGraphTypes
	if keep == nil {
		keep = DefaultAppGraphTypes()
	}
	gf := GraphFeatures(FilterGraphTypes(g, keep), nodes)
	if original == nil {
		return gf
	}
	return original.ConcatCols(gf)
}
