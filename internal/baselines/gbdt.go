package baselines

import (
	"math"

	"turbo/internal/tensor"
)

// GBDT is gradient-boosted regression trees on the logistic loss with
// second-order leaf values (the LightGBM stand-in for both the GBDT
// baseline and BLP's classifier).
type GBDT struct {
	Trees         int     // 0 selects 120
	LearningRate  float64 // 0 selects 0.1
	MaxDepth      int     // 0 selects 4
	MinLeaf       int     // 0 selects 8
	Lambda        float64 // 0 selects 1.0
	Subsample     float64 // 0 selects 0.8
	FeatureSample float64 // 0 selects 0.9
	Balance       bool    // weight positives by class ratio
	Seed          uint64

	base  float64
	trees []*regressionTree
	lr    float64
}

// Name implements Classifier.
func (m *GBDT) Name() string { return "GBDT" }

func (m *GBDT) withDefaults() {
	if m.Trees == 0 {
		m.Trees = 120
	}
	if m.LearningRate == 0 {
		m.LearningRate = 0.1
	}
	if m.MaxDepth == 0 {
		m.MaxDepth = 4
	}
	if m.MinLeaf == 0 {
		m.MinLeaf = 8
	}
	if m.Lambda == 0 {
		m.Lambda = 1
	}
	if m.Subsample == 0 {
		m.Subsample = 0.8
	}
	if m.FeatureSample == 0 {
		m.FeatureSample = 0.9
	}
	if m.Seed == 0 {
		m.Seed = 11
	}
}

// Fit implements Classifier.
func (m *GBDT) Fit(x *tensor.Matrix, y []float64) {
	m.withDefaults()
	m.lr = m.LearningRate
	rng := tensor.NewRNG(m.Seed)
	n := x.Rows

	posW, negW := 1.0, 1.0
	if m.Balance {
		posW, negW = classWeights(y)
	}
	w := make([]float64, n)
	var posSum, totSum float64
	for i := range w {
		if y[i] > 0.5 {
			w[i] = posW
			posSum += posW
		} else {
			w[i] = negW
		}
		totSum += w[i]
	}
	// Base score: weighted log-odds prior.
	p0 := tensor.Clamp(posSum/totSum, 1e-6, 1-1e-6)
	m.base = math.Log(p0 / (1 - p0))

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	g := make([]float64, n)
	h := make([]float64, n)
	m.trees = m.trees[:0]
	for t := 0; t < m.Trees; t++ {
		for i := 0; i < n; i++ {
			p := tensor.SigmoidScalar(pred[i])
			g[i] = w[i] * (p - y[i])
			h[i] = w[i] * p * (1 - p)
		}
		idx := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if m.Subsample >= 1 || rng.Float64() < m.Subsample {
				idx = append(idx, i)
			}
		}
		if len(idx) < 2*m.MinLeaf {
			idx = idx[:0]
			for i := 0; i < n; i++ {
				idx = append(idx, i)
			}
		}
		tree := fitTree(x, g, h, idx, treeParams{
			maxDepth:      m.MaxDepth,
			minLeaf:       m.MinLeaf,
			lambda:        m.Lambda,
			featureSample: m.FeatureSample,
			rng:           rng,
		})
		m.trees = append(m.trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += m.lr * tree.predict(x.Row(i))
		}
	}
}

// PredictProba implements Classifier.
func (m *GBDT) PredictProba(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		out[i] = tensor.SigmoidScalar(m.RawScore(x.Row(i)))
	}
	return out
}

// RawScore returns the pre-sigmoid margin of one feature row.
func (m *GBDT) RawScore(row []float64) float64 {
	s := m.base
	for _, t := range m.trees {
		s += m.lr * t.predict(row)
	}
	return s
}

// NumTrees returns how many trees were fit.
func (m *GBDT) NumTrees() int { return len(m.trees) }
