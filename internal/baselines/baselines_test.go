package baselines

import (
	"math"
	"testing"
	"time"

	"turbo/internal/graph"
	"turbo/internal/metrics"
	"turbo/internal/tensor"
)

var never = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// linearData generates labels from sign(2x1 - x2 + 0.5).
func linearData(n int, seed uint64) (*tensor.Matrix, []float64) {
	rng := tensor.NewRNG(seed)
	x := tensor.RandNormal(n, 2, 1, rng)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if 2*x.At(i, 0)-x.At(i, 1)+0.5 > 0 {
			y[i] = 1
		}
	}
	return x, y
}

// xorData is not linearly separable: label = (x1>0) xor (x2>0).
func xorData(n int, seed uint64) (*tensor.Matrix, []float64) {
	rng := tensor.NewRNG(seed)
	x := tensor.RandNormal(n, 2, 1, rng)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if (x.At(i, 0) > 0) != (x.At(i, 1) > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func auc(clf Classifier, x *tensor.Matrix, y []float64) float64 {
	scores := clf.PredictProba(x)
	labels := make([]bool, len(y))
	for i, v := range y {
		labels[i] = v > 0.5
	}
	return metrics.AUC(scores, labels)
}

func TestLogisticRegressionSeparable(t *testing.T) {
	x, y := linearData(400, 1)
	clf := &LogisticRegression{}
	clf.Fit(x, y)
	if a := auc(clf, x, y); a < 0.97 {
		t.Fatalf("LR AUC on separable data: %v", a)
	}
	xt, yt := linearData(200, 2)
	if a := auc(clf, xt, yt); a < 0.95 {
		t.Fatalf("LR holdout AUC: %v", a)
	}
}

func TestLinearSVMSeparable(t *testing.T) {
	x, y := linearData(400, 3)
	clf := &LinearSVM{}
	clf.Fit(x, y)
	if a := auc(clf, x, y); a < 0.95 {
		t.Fatalf("SVM AUC on separable data: %v", a)
	}
}

func TestLinearModelsFailOnXOR(t *testing.T) {
	x, y := xorData(500, 4)
	lr := &LogisticRegression{}
	lr.Fit(x, y)
	if a := auc(lr, x, y); a > 0.65 {
		t.Fatalf("linear model should not solve XOR: AUC %v", a)
	}
}

func TestGBDTSolvesXOR(t *testing.T) {
	x, y := xorData(600, 5)
	clf := &GBDT{}
	clf.Fit(x, y)
	if a := auc(clf, x, y); a < 0.95 {
		t.Fatalf("GBDT XOR AUC: %v", a)
	}
	xt, yt := xorData(300, 6)
	if a := auc(clf, xt, yt); a < 0.9 {
		t.Fatalf("GBDT XOR holdout AUC: %v", a)
	}
}

func TestDNNSolvesXOR(t *testing.T) {
	x, y := xorData(600, 7)
	clf := &DNN{Hidden: []int{16, 8}, Epochs: 400, LR: 5e-3}
	clf.Fit(x, y)
	if a := auc(clf, x, y); a < 0.93 {
		t.Fatalf("DNN XOR AUC: %v", a)
	}
}

func TestClassifierNames(t *testing.T) {
	for want, clf := range map[string]Classifier{
		"LR":   &LogisticRegression{},
		"SVM":  &LinearSVM{},
		"GBDT": &GBDT{},
		"DNN":  &DNN{},
	} {
		if clf.Name() != want {
			t.Fatalf("name %q want %q", clf.Name(), want)
		}
	}
	if (&BLP{}).Name() != "BLP" {
		t.Fatal("BLP name")
	}
	if (&DTX{}).Name() != "DTX1" || (&DTX{WithFeatures: true}).Name() != "DTX2" {
		t.Fatal("DTX names")
	}
}

func TestBalanceLiftsMinorityRecall(t *testing.T) {
	// 5% positive rate with a weak signal: balanced training should
	// recall more positives at threshold 0.5.
	rng := tensor.NewRNG(8)
	n := 2000
	x := tensor.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := rng.Float64() < 0.05
		shift := 0.0
		if pos {
			y[i] = 1
			shift = 1.2
		}
		x.Set(i, 0, rng.NormFloat64()+shift)
		x.Set(i, 1, rng.NormFloat64())
	}
	recallOf := func(balance bool) float64 {
		clf := &LogisticRegression{Balance: balance}
		clf.Fit(x, y)
		scores := clf.PredictProba(x)
		labels := make([]bool, n)
		for i := range y {
			labels[i] = y[i] > 0.5
		}
		return metrics.Confuse(scores, labels, 0.5).Recall()
	}
	if rb, ru := recallOf(true), recallOf(false); rb <= ru {
		t.Fatalf("balanced recall %v should exceed unbalanced %v", rb, ru)
	}
}

func TestClassWeightsSqrt(t *testing.T) {
	y := []float64{1, 0, 0, 0} // 1 pos, 3 neg
	pos, neg := classWeights(y)
	if neg != 1 || math.Abs(pos-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("weights %v %v", pos, neg)
	}
	if p, n := classWeights([]float64{1, 1}); p != 1 || n != 1 {
		t.Fatal("single-class weights should be 1,1")
	}
}

func TestStandardize(t *testing.T) {
	train := tensor.FromRows([][]float64{{0, 10}, {2, 10}})
	other := tensor.FromRows([][]float64{{1, 10}})
	st, others := Standardize(train, other)
	// Column 0: mean 1, std 1 → {-1, 1}; column 1 constant → centered.
	if st.At(0, 0) != -1 || st.At(1, 0) != 1 {
		t.Fatalf("standardized train %v", st)
	}
	if st.At(0, 1) != 0 || st.At(1, 1) != 0 {
		t.Fatalf("constant column should center to 0: %v", st)
	}
	if others[0].At(0, 0) != 0 {
		t.Fatalf("transform not applied to other: %v", others[0])
	}
}

func TestRegressionTreeDepthLimit(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.RandNormal(200, 3, 1, rng)
	g := make([]float64, 200)
	h := make([]float64, 200)
	idx := make([]int, 200)
	for i := range g {
		g[i] = rng.NormFloat64()
		h[i] = 1
		idx[i] = i
	}
	tree := fitTree(x, g, h, idx, treeParams{maxDepth: 2, minLeaf: 5, lambda: 1, featureSample: 1})
	if d := tree.depth(); d > 2 {
		t.Fatalf("tree depth %d exceeds limit", d)
	}
}

func TestRegressionTreeMinLeaf(t *testing.T) {
	// With minLeaf = half the data, at most one split is possible.
	x := tensor.FromRows([][]float64{{1}, {2}, {3}, {4}})
	g := []float64{-1, -1, 1, 1}
	h := []float64{1, 1, 1, 1}
	tree := fitTree(x, g, h, []int{0, 1, 2, 3}, treeParams{maxDepth: 5, minLeaf: 2, lambda: 0.01, featureSample: 1})
	if d := tree.depth(); d > 1 {
		t.Fatalf("minLeaf violated: depth %d", d)
	}
	// Leaf values are Newton steps in the negative-gradient direction:
	// g = -1 (underpredicted positives) must map to a positive leaf.
	if tree.predict([]float64{1}) <= 0 || tree.predict([]float64{4}) >= 0 {
		t.Fatalf("leaf values wrong: %v %v", tree.predict([]float64{1}), tree.predict([]float64{4}))
	}
}

func TestGBDTNumTreesAndRawScore(t *testing.T) {
	x, y := linearData(100, 10)
	clf := &GBDT{Trees: 7}
	clf.Fit(x, y)
	if clf.NumTrees() != 7 {
		t.Fatalf("trees %d", clf.NumTrees())
	}
	p := tensor.SigmoidScalar(clf.RawScore(x.Row(0)))
	if math.Abs(p-clf.PredictProba(x)[0]) > 1e-12 {
		t.Fatal("RawScore inconsistent with PredictProba")
	}
}

// --- graph-based baselines ---------------------------------------------------

// twoCliqueGraph returns two 4-cliques joined by one bridge edge.
func twoCliqueGraph(t *testing.T) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New(2)
	addClique := func(base int, typ graph.EdgeType) {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if err := g.AddEdgeWeight(typ, graph.NodeID(base+i), graph.NodeID(base+j), 1, never); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique(0, 0)
	addClique(4, 1)
	_ = g.AddEdgeWeight(0, 3, 4, 0.5, never)
	nodes := make([]graph.NodeID, 8)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return g, nodes
}

func TestGraphFeaturesValues(t *testing.T) {
	g, nodes := twoCliqueGraph(t)
	gf := GraphFeatures(g, nodes)
	if gf.Rows != 8 || gf.Cols != 6+g.NumEdgeTypes() {
		t.Fatalf("shape %dx%d", gf.Rows, gf.Cols)
	}
	names := GraphFeatureNames(g.NumEdgeTypes())
	if len(names) != gf.Cols {
		t.Fatal("feature names length mismatch")
	}
	// Node 0: degree 3, clustering 1 (its neighbors form a clique).
	if gf.At(0, 0) != 3 {
		t.Fatalf("node0 degree %v", gf.At(0, 0))
	}
	if math.Abs(gf.At(0, 2)-1) > 1e-12 {
		t.Fatalf("node0 clustering %v want 1", gf.At(0, 2))
	}
	// Node 3 bridges: degree 4, clustering < 1.
	if gf.At(3, 0) != 4 || gf.At(3, 2) >= 1 {
		t.Fatalf("bridge node features %v", gf.Row(3))
	}
	// Per-type degree: node 0 has 3 type-0 edges, 0 type-1 edges.
	if gf.At(0, 6) != 3 || gf.At(0, 7) != 0 {
		t.Fatalf("typed degrees %v", gf.Row(0))
	}
}

func TestGraphFeaturesIsolatedNode(t *testing.T) {
	g := graph.New(1)
	g.AddNode(0)
	gf := GraphFeatures(g, []graph.NodeID{0})
	for j := 0; j < gf.Cols; j++ {
		if gf.At(0, j) != 0 {
			t.Fatalf("isolated node feature %d = %v", j, gf.At(0, j))
		}
	}
}

func TestBLPBuildFeaturesConcat(t *testing.T) {
	g, nodes := twoCliqueGraph(t)
	orig := tensor.New(8, 3)
	blp := &BLP{}
	full := blp.BuildFeatures(g, nodes, orig)
	if full.Cols != 3+6+g.NumEdgeTypes() {
		t.Fatalf("cols %d", full.Cols)
	}
	graphOnly := blp.BuildFeatures(g, nodes, nil)
	if graphOnly.Cols != 6+g.NumEdgeTypes() {
		t.Fatalf("graph-only cols %d", graphOnly.Cols)
	}
}

// TestDeepWalkEmbedsCommunities: nodes in the same clique should end up
// closer in embedding space than nodes in different cliques.
func TestDeepWalkEmbedsCommunities(t *testing.T) {
	g, nodes := twoCliqueGraph(t)
	emb := DeepWalk(g, nodes, DeepWalkConfig{Dim: 16, WalksPerNode: 20, WalkLength: 8, Epochs: 5, Seed: 1})
	if emb.Rows != 8 || emb.Cols != 16 {
		t.Fatalf("embedding shape %dx%d", emb.Rows, emb.Cols)
	}
	dist := func(i, j int) float64 {
		var d float64
		for k := 0; k < emb.Cols; k++ {
			diff := emb.At(i, k) - emb.At(j, k)
			d += diff * diff
		}
		return math.Sqrt(d)
	}
	intra := (dist(0, 1) + dist(1, 2) + dist(5, 6)) / 3
	inter := (dist(0, 5) + dist(1, 6) + dist(2, 7)) / 3
	if intra >= inter {
		t.Fatalf("deepwalk: intra-clique distance %v should be below inter %v", intra, inter)
	}
}

func TestDeepWalkIsolatedNodesKeepInitVectors(t *testing.T) {
	g := graph.New(1)
	g.AddNode(0)
	g.AddNode(1)
	emb := DeepWalk(g, []graph.NodeID{0, 1}, DeepWalkConfig{Dim: 8, Seed: 2})
	if emb.MaxAbs() == 0 {
		t.Fatal("isolated nodes should keep random init")
	}
}

func TestDTXBuildFeatures(t *testing.T) {
	g, nodes := twoCliqueGraph(t)
	orig := tensor.New(8, 2)
	d1 := &DTX{Walk: DeepWalkConfig{Dim: 8, Seed: 3}}
	if d1.BuildFeatures(g, nodes, orig).Cols != 8 {
		t.Fatal("DTX1 must use embeddings only")
	}
	d2 := &DTX{Walk: DeepWalkConfig{Dim: 8, Seed: 3}, WithFeatures: true}
	if d2.BuildFeatures(g, nodes, orig).Cols != 10 {
		t.Fatal("DTX2 must concat original features")
	}
}
