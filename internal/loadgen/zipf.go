package loadgen

import "math"

// zipfSampler maps uniform [0,1) draws onto a Zipf(s) distribution over
// ranks [1, n] — the YCSB hot-key construction: precompute the harmonic
// normalizer ζ(n, s) once, then each draw is O(1). Rank 1 is the
// hottest uid, so a skewed audit mix repeatedly re-targets the same
// small set of users — exactly the traffic shape the embedding tier's
// clean-neighborhood hits thrive on, and the worst case for a cache
// that invalidates on every edge touch.
//
// The construction requires s ∈ (0, 1); Run validates the bound. The
// sampler is pure (no internal state), so op sequences stay
// deterministic under a fixed seed: the draw comes from the op hash.
type zipfSampler struct {
	n     int
	theta float64 // skew s
	alpha float64 // 1/(1-s)
	zetan float64 // ζ(n, s)
	eta   float64
}

// newZipfSampler precomputes the normalizer for ranks [1, n]. The ζ sum
// is O(n) but runs once per load run (a few ms even for million-user
// uid spaces).
func newZipfSampler(n int, theta float64) *zipfSampler {
	if n < 1 {
		n = 1
	}
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1.0
	if n >= 2 {
		zeta2 += 1 / math.Pow(2, theta)
	}
	z := &zipfSampler{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	if math.IsNaN(z.eta) || math.IsInf(z.eta, 0) {
		z.eta = 0 // n == 1: every draw is rank 1 anyway
	}
	return z
}

// rank maps a uniform u ∈ [0,1) to a 1-based Zipf rank.
func (z *zipfSampler) rank(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 1
	}
	if z.n >= 2 && uz < 1+math.Pow(0.5, z.theta) {
		return 2
	}
	r := 1 + int(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r < 1 {
		r = 1
	}
	if r > z.n {
		r = z.n
	}
	return r
}
