package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// HTTPTarget drives a turbo-server over HTTP: audits as GET
// /predict?uid=, ingests as POST /ingest. Response bodies are drained
// and discarded so connections return to the pool.
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

// NewHTTPTarget builds a target for base (e.g. http://127.0.0.1:8080)
// with a connection pool sized for workers concurrent requests.
func NewHTTPTarget(base string, workers int) *HTTPTarget {
	if workers < 1 {
		workers = 1
	}
	tr := &http.Transport{
		MaxIdleConns:        workers,
		MaxIdleConnsPerHost: workers,
		IdleConnTimeout:     30 * time.Second,
	}
	return &HTTPTarget{Base: base, Client: &http.Client{Transport: tr}}
}

// Do implements Target.
func (t *HTTPTarget) Do(ctx context.Context, op Op) (int, error) {
	var req *http.Request
	var err error
	switch op.Kind {
	case KindAudit:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			t.Base+"/predict?uid="+strconv.FormatUint(uint64(op.UID), 10), nil)
	case KindIngest:
		var body []byte
		body, err = json.Marshal(op.Log)
		if err == nil {
			req, err = http.NewRequestWithContext(ctx, http.MethodPost,
				t.Base+"/ingest", bytes.NewReader(body))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
	default:
		return 0, fmt.Errorf("loadgen: unknown op kind %q", op.Kind)
	}
	if err != nil {
		return 0, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// ServedCounts implements TierCounter: it reads the server's cumulative
// per-tier audit counters from the served_by section of GET /stats.
func (t *HTTPTarget) ServedCounts(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /stats: status %d", resp.StatusCode)
	}
	var body struct {
		ServedBy map[string]int64 `json:"served_by"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("loadgen: GET /stats: %w", err)
	}
	if body.ServedBy == nil {
		body.ServedBy = map[string]int64{}
	}
	return body.ServedBy, nil
}

// WaitReady polls base/readyz until it answers 200 or ctx expires —
// the pre-flight gate before a run.
func (t *HTTPTarget) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := t.Client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: target %s never became ready: %w", t.Base, ctx.Err())
		case <-tick.C:
		}
	}
}
