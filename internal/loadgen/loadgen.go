// Package loadgen is the open-loop load harness for turbo-server: it
// drives the HTTP API with a schedule-based arrival process and scores
// the run into a latency scoreboard (BENCH_load.json).
//
// Open-loop means arrivals follow the configured rate, not the
// server's responses: op i's intended start is start + i/QPS, fixed
// before the run. Latency is recorded from that intended start to
// response completion, so when the server stalls, every op scheduled
// during the stall accrues queueing delay and the percentiles show it.
// A closed-loop driver (issue, wait, issue) would silently stretch the
// schedule instead and hide exactly the pathologies a fraud-scoring
// SLA cares about — the coordinated-omission trap. The worker pool
// only bounds in-flight connections; the schedule never waits for a
// worker, it queues (and, past a deep high-water mark, fails) the op
// with its intended timestamp intact.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/telemetry"
)

// Kind names a driven endpoint.
type Kind string

// The two traffic classes of the mix.
const (
	KindAudit  Kind = "audit"  // GET /predict?uid=
	KindIngest Kind = "ingest" // POST /ingest
)

// Op is one scheduled request.
type Op struct {
	Kind Kind
	UID  behavior.UserID
	Log  behavior.Log // payload when Kind == KindIngest
}

// Stage is one constant-rate segment of the run.
type Stage struct {
	QPS      float64
	Duration time.Duration
}

// RampStages builds a stepped ramp from start to max (inclusive-ish)
// in fixed increments, each held for d — the max-sustainable-QPS
// search schedule.
func RampStages(start, step, max float64, d time.Duration) []Stage {
	var stages []Stage
	for qps := start; qps <= max+1e-9; qps += step {
		stages = append(stages, Stage{QPS: qps, Duration: d})
	}
	return stages
}

// Config parameterizes a run.
type Config struct {
	// Stages run back to back; each is offered at its QPS.
	Stages []Stage
	// AuditFrac is the fraction of ops that are audits; the rest are
	// ingests.
	AuditFrac float64
	// Users is the audit uid space [1, Users].
	Users int
	// ZipfS skews audit uid draws with a Zipf(s) distribution over the
	// uid space: uid 1 is the hottest target, so audits repeatedly
	// re-hit the same neighborhoods (the embedding tier's best case and
	// the invalidation path's worst). 0 keeps the uniform draw; valid
	// values are in (0, 1) — 0.99 is the YCSB-style heavy skew. The
	// draw comes from the op hash, so runs stay deterministic under
	// Seed either way.
	ZipfS float64
	// Workers bounds in-flight requests (default 128). It shapes
	// concurrency, never the schedule.
	Workers int
	// Timeout bounds one request (default 5s); a timed-out op counts
	// as a transport error at its full elapsed latency.
	Timeout time.Duration
	// Seed fixes the op mix and uid draws.
	Seed uint64
	// Source supplies ingest payloads; nil selects a SyntheticSource.
	Source LogSource
	// StopAfterUnsustained ends the run after the first stage that
	// fails the sustainability criteria (ramp searches).
	StopAfterUnsustained bool
	// SustainedAchievedFrac and SustainedErrorRate define "sustained":
	// achieved/offered ≥ the fraction (default 0.9) and error rate ≤
	// the rate (default 0.01).
	SustainedAchievedFrac float64
	SustainedErrorRate    float64

	// zipf is the compiled sampler when ZipfS is set (built in
	// defaults, nil for the uniform mix).
	zipf *zipfSampler
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 128
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Users <= 0 {
		c.Users = 1
	}
	if c.AuditFrac < 0 {
		c.AuditFrac = 0
	}
	if c.AuditFrac > 1 {
		c.AuditFrac = 1
	}
	if c.SustainedAchievedFrac <= 0 {
		c.SustainedAchievedFrac = 0.90
	}
	if c.SustainedErrorRate <= 0 {
		c.SustainedErrorRate = 0.01
	}
	if c.Source == nil {
		c.Source = NewSyntheticSource(c.Seed, c.Users)
	}
	if c.ZipfS > 0 && c.ZipfS < 1 {
		c.zipf = newZipfSampler(c.Users, c.ZipfS)
	}
}

// LogSource supplies ingest payloads. It is called from the dispatcher
// goroutine only, so implementations need no locking.
type LogSource interface {
	// NextLog returns the next payload, stamped at (or near) now so
	// the server's event-time watermark tracks the wall clock.
	NextLog(now time.Time) behavior.Log
}

// SyntheticSource emits deterministic logs over a fixed uid space with
// enough value sharing (household IPs, workplace cells) to grow a
// connected behavior network.
type SyntheticSource struct {
	seed  uint64
	users int
	n     uint64
}

// NewSyntheticSource builds a source over uid space [1, users].
func NewSyntheticSource(seed uint64, users int) *SyntheticSource {
	if users < 1 {
		users = 1
	}
	return &SyntheticSource{seed: seed, users: users}
}

// NextLog implements LogSource.
func (s *SyntheticSource) NextLog(now time.Time) behavior.Log {
	s.n++
	h := splitmix64(s.seed + s.n)
	uid := behavior.UserID(1 + h%uint64(s.users))
	var ty behavior.Type
	var val string
	switch (h >> 32) % 4 {
	case 0:
		ty, val = behavior.DeviceID, fmt.Sprintf("lg-dev-%d", uid)
	case 1:
		ty, val = behavior.IPv4, fmt.Sprintf("lg-ip-%d", uid/4)
	case 2:
		ty, val = behavior.WiFiMAC, fmt.Sprintf("lg-wifi-%d", uid/8)
	default:
		ty, val = behavior.GPS100, fmt.Sprintf("lg-cell-%d", uid/16)
	}
	return behavior.Log{User: uid, Type: ty, Value: val, Time: now}
}

// splitmix64 is the uid/mix hash (deterministic, dependency-free).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Target executes one op and returns the HTTP status (0 with err for
// transport failures).
type Target interface {
	Do(ctx context.Context, op Op) (status int, err error)
}

// TierCounter is an optional Target capability: cumulative counts of
// audits answered per degradation-ladder tier (the served_by section of
// the server's /stats). When a target implements it, Run snapshots the
// counters around every stage and reports the per-stage delta, so the
// scoreboard shows which tier (embed, full, fallback, cache, …)
// actually absorbed the offered load. Failures are soft: a stage whose
// snapshot errs simply omits the breakdown.
type TierCounter interface {
	ServedCounts(ctx context.Context) (map[string]int64, error)
}

// maxPending is the high-water mark of the op queue: past it the
// server is hopelessly behind and ops fail on the spot (still scored
// against their intended start) instead of buffering without bound.
const maxPending = 1 << 20

// endpointStats accumulates one endpoint's counters within a stage.
type endpointStats struct {
	latency *telemetry.LogHistogram // intended start → response complete
	service *telemetry.LogHistogram // request sent → response complete
	ok      atomic.Int64
	shed    atomic.Int64 // 429
	notF    atomic.Int64 // 404 (healthy answer for a cold uid)
	other   atomic.Int64 // remaining non-2xx
	transp  atomic.Int64 // transport error / timeout / queue overflow
}

func newEndpointStats() *endpointStats {
	return &endpointStats{latency: telemetry.NewLogHistogram(), service: telemetry.NewLogHistogram()}
}

func (s *endpointStats) record(status int, err error, latency, service time.Duration) {
	s.latency.Observe(latency)
	s.service.Observe(service)
	switch {
	case err != nil:
		s.transp.Add(1)
	case status == 429:
		s.shed.Add(1)
	case status == 404:
		s.notF.Add(1)
	case status >= 200 && status < 300:
		s.ok.Add(1)
	default:
		s.other.Add(1)
	}
}

func (s *endpointStats) count() int64 {
	return s.ok.Load() + s.shed.Load() + s.notF.Load() + s.other.Load() + s.transp.Load()
}

func (s *endpointStats) errors() int64 {
	return s.shed.Load() + s.other.Load() + s.transp.Load()
}

// schedOp is an op with its intended start.
type schedOp struct {
	op       Op
	intended time.Time
}

// Run executes every stage against target and scores the run. A
// canceled ctx ends the run early; the stages completed so far are
// still reported (Report.Canceled is set).
func Run(ctx context.Context, cfg Config, target Target) (*Report, error) {
	cfg.defaults()
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("loadgen: no stages configured")
	}
	for _, st := range cfg.Stages {
		if st.QPS <= 0 || st.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: invalid stage %+v", st)
		}
	}
	if cfg.ZipfS != 0 && cfg.zipf == nil {
		return nil, fmt.Errorf("loadgen: ZipfS %v outside (0,1); 0 disables the skew", cfg.ZipfS)
	}
	rep := &Report{
		AuditFrac: cfg.AuditFrac,
		Users:     cfg.Users,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		ZipfS:     cfg.ZipfS,
	}
	tc, _ := target.(TierCounter)
	for _, st := range cfg.Stages {
		var before map[string]int64
		if tc != nil {
			before, _ = tc.ServedCounts(ctx)
		}
		sr := runStage(ctx, &cfg, st, target)
		if tc != nil && before != nil {
			if after, err := tc.ServedCounts(ctx); err == nil {
				sr.ServedBy = diffCounts(before, after)
				for tier, n := range sr.ServedBy {
					if rep.ServedBy == nil {
						rep.ServedBy = make(map[string]int64)
					}
					rep.ServedBy[tier] += n
				}
			}
		}
		rep.Stages = append(rep.Stages, sr)
		if sr.Sustained && st.QPS > rep.MaxSustainableQPS {
			rep.MaxSustainableQPS = st.QPS
		}
		if ctx.Err() != nil {
			rep.Canceled = true
			break
		}
		if cfg.StopAfterUnsustained && !sr.Sustained {
			break
		}
	}
	return rep, nil
}

// runStage offers one constant-rate segment and drains it.
func runStage(ctx context.Context, cfg *Config, st Stage, target Target) StageReport {
	total := int(math.Ceil(st.QPS * st.Duration.Seconds()))
	if total < 1 {
		total = 1
	}
	capacity := total
	if capacity > maxPending {
		capacity = maxPending
	}
	ch := make(chan schedOp, capacity)
	stats := map[Kind]*endpointStats{
		KindAudit:  newEndpointStats(),
		KindIngest: newEndpointStats(),
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for so := range ch {
				opCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				sent := time.Now()
				status, err := target.Do(opCtx, so.op)
				cancel()
				done := time.Now()
				stats[so.op.Kind].record(status, err,
					done.Sub(so.intended), done.Sub(sent))
			}
		}()
	}

	// The dispatcher: walk the schedule, never letting the target's
	// pace push the intended times.
	interval := time.Duration(float64(time.Second) / st.QPS)
	start := time.Now()
	scheduled := 0
dispatch:
	for i := 0; i < total; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			}
		}
		so := schedOp{op: cfg.nextOp(uint64(i), intended), intended: intended}
		scheduled++
		select {
		case ch <- so:
		default:
			// Queue past the high-water mark: fail now, scored
			// against the schedule.
			stats[so.op.Kind].record(0, fmt.Errorf("op queue overflow"),
				time.Since(so.intended), 0)
		}
	}
	close(ch)
	wg.Wait()
	elapsed := time.Since(start)

	return scoreStage(cfg, st, elapsed, scheduled, stats)
}

// nextOp derives op i of a stage: the mix and uid draws come from the
// seeded hash so runs with the same seed issue the same request
// sequence — including under the Zipf skew, whose rank is a pure
// function of the same hash.
func (c *Config) nextOp(i uint64, intended time.Time) Op {
	h := splitmix64(c.Seed ^ (i + 0x51ED2701))
	if float64(h>>11)/float64(1<<53) < c.AuditFrac {
		r := splitmix64(h)
		uid := 1 + r%uint64(c.Users)
		if c.zipf != nil {
			uid = uint64(c.zipf.rank(float64(r>>11) / float64(1<<53)))
		}
		return Op{Kind: KindAudit, UID: behavior.UserID(uid)}
	}
	l := c.Source.NextLog(intended)
	return Op{Kind: KindIngest, UID: l.User, Log: l}
}
