package loadgen

import "time"

// EndpointReport is one endpoint's scoreboard row within a stage. All
// latency quantiles are intended-start→response-complete; the service_*
// fields are request-sent→response-complete, so the gap between the
// two is exactly the queueing delay a closed-loop harness would hide.
type EndpointReport struct {
	Count     int64 `json:"count"`
	OK        int64 `json:"ok"`
	Shed429   int64 `json:"shed_429"`
	NotFound  int64 `json:"not_found_404"`
	OtherErrs int64 `json:"other_errors"`
	Transport int64 `json:"transport_errors"`

	AchievedQPS float64 `json:"achieved_qps"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`

	ServiceP50Ms float64 `json:"service_p50_ms"`
	ServiceP99Ms float64 `json:"service_p99_ms"`
}

// StageReport scores one constant-rate segment.
type StageReport struct {
	OfferedQPS  float64 `json:"offered_qps"`
	DurationS   float64 `json:"duration_s"`
	Scheduled   int64   `json:"scheduled"`
	Completed   int64   `json:"completed"`
	AchievedQPS float64 `json:"achieved_qps"`
	ErrorRate   float64 `json:"error_rate"`
	// Sustained reports whether this stage met the sustainability
	// criteria (achieved/offered and error-rate thresholds).
	Sustained bool                    `json:"sustained"`
	Endpoints map[Kind]EndpointReport `json:"endpoints"`
	// ServedBy is the per-tier audit count absorbed during this stage —
	// the delta of the target's cumulative served_by counters (present
	// only when the target exposes them, i.e. HTTP runs against a live
	// /stats). Counts are the server's own attribution, so audits from
	// other clients sharing the server land here too.
	ServedBy map[string]int64 `json:"served_by,omitempty"`
}

// Report is the BENCH_load.json scoreboard.
type Report struct {
	Target    string  `json:"target,omitempty"`
	AuditFrac float64 `json:"audit_frac"`
	Users     int     `json:"users"`
	Workers   int     `json:"workers"`
	Seed      uint64  `json:"seed"`
	// ZipfS echoes the audit-uid skew the run was offered with (0 =
	// uniform draws).
	ZipfS float64 `json:"zipf_s,omitempty"`

	Stages []StageReport `json:"stages"`
	// ServedBy sums the per-stage tier breakdowns across the whole run.
	ServedBy map[string]int64 `json:"served_by,omitempty"`
	// MaxSustainableQPS is the highest offered rate among sustained
	// stages — the stepped-ramp headline figure. 0 when no stage held.
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	Canceled          bool    `json:"canceled,omitempty"`
}

// ms converts a duration to float milliseconds for the report.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// diffCounts subtracts two cumulative tier-counter snapshots, keeping
// only tiers that moved. nil when nothing did.
func diffCounts(before, after map[string]int64) map[string]int64 {
	var out map[string]int64
	for tier, n := range after {
		if d := n - before[tier]; d != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[tier] = d
		}
	}
	return out
}

// endpointReport snapshots one endpoint's stage stats.
func endpointReport(s *endpointStats, elapsed time.Duration) EndpointReport {
	lat := s.latency.Snapshot()
	svc := s.service.Snapshot()
	r := EndpointReport{
		Count:     s.count(),
		OK:        s.ok.Load(),
		Shed429:   s.shed.Load(),
		NotFound:  s.notF.Load(),
		OtherErrs: s.other.Load(),
		Transport: s.transp.Load(),

		P50Ms:  ms(lat.Quantile(0.50)),
		P99Ms:  ms(lat.Quantile(0.99)),
		P999Ms: ms(lat.Quantile(0.999)),
		MaxMs:  ms(lat.Max()),

		ServiceP50Ms: ms(svc.Quantile(0.50)),
		ServiceP99Ms: ms(svc.Quantile(0.99)),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.AchievedQPS = float64(r.Count) / sec
	}
	return r
}

// scoreStage folds a stage's raw stats into its report row.
func scoreStage(cfg *Config, st Stage, elapsed time.Duration, scheduled int, stats map[Kind]*endpointStats) StageReport {
	sr := StageReport{
		OfferedQPS: st.QPS,
		DurationS:  st.Duration.Seconds(),
		Scheduled:  int64(scheduled),
		Endpoints:  make(map[Kind]EndpointReport, len(stats)),
	}
	var completed, errs int64
	for kind, s := range stats {
		if s.count() == 0 && s.latency.Count() == 0 {
			continue // endpoint absent from the mix
		}
		sr.Endpoints[kind] = endpointReport(s, elapsed)
		completed += s.count()
		errs += s.errors()
	}
	sr.Completed = completed
	if sec := elapsed.Seconds(); sec > 0 {
		sr.AchievedQPS = float64(completed) / sec
	}
	if completed > 0 {
		sr.ErrorRate = float64(errs) / float64(completed)
	}
	sr.Sustained = completed > 0 &&
		sr.AchievedQPS >= cfg.SustainedAchievedFrac*st.QPS &&
		sr.ErrorRate <= cfg.SustainedErrorRate
	return sr
}
