package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// okServer answers every op with the matching success status.
func okServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		w.Write([]byte(`{"score":0.1}`))
	}))
}

// TestLoadgenSmoke is the CI smoke: a short low-QPS run against an
// in-process server with a deterministic seed must complete requests
// on both endpoints and produce a schema-valid JSON report.
func TestLoadgenSmoke(t *testing.T) {
	srv := okServer()
	defer srv.Close()

	cfg := Config{
		Stages:    []Stage{{QPS: 200, Duration: 500 * time.Millisecond}},
		AuditFrac: 0.5,
		Users:     100,
		Workers:   16,
		Seed:      42,
	}
	rep, err := Run(context.Background(), cfg, NewHTTPTarget(srv.URL, cfg.Workers))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 1 {
		t.Fatalf("stages %d", len(rep.Stages))
	}
	st := rep.Stages[0]
	if st.Completed == 0 {
		t.Fatal("no completed requests")
	}
	if st.Completed != st.Scheduled {
		t.Fatalf("completed %d != scheduled %d", st.Completed, st.Scheduled)
	}
	for _, kind := range []Kind{KindAudit, KindIngest} {
		ep, ok := st.Endpoints[kind]
		if !ok {
			t.Fatalf("report missing endpoint %q", kind)
		}
		if ep.OK == 0 {
			t.Fatalf("endpoint %q completed nothing: %+v", kind, ep)
		}
		if ep.OK != ep.Count {
			t.Fatalf("endpoint %q: ok %d != count %d", kind, ep.OK, ep.Count)
		}
		if ep.P50Ms < 0 || ep.P99Ms < ep.P50Ms || ep.P999Ms < ep.P99Ms {
			t.Fatalf("endpoint %q: non-monotone quantiles %+v", kind, ep)
		}
		if ep.MaxMs < ep.P999Ms {
			t.Fatalf("endpoint %q: max %v below p999 %v", kind, ep.MaxMs, ep.P999Ms)
		}
	}
	if !st.Sustained {
		t.Errorf("healthy local run not marked sustained: achieved %.1f of %.1f, errors %.3f",
			st.AchievedQPS, st.OfferedQPS, st.ErrorRate)
	}
	if rep.MaxSustainableQPS != st.OfferedQPS {
		t.Errorf("max sustainable %v, want %v", rep.MaxSustainableQPS, st.OfferedQPS)
	}

	// Schema round-trip: the report must marshal and re-parse with the
	// scoreboard keys intact.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"stages", "max_sustainable_qps", "audit_frac", "seed"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("report JSON missing %q: %s", key, raw)
		}
	}
	stage0 := parsed["stages"].([]any)[0].(map[string]any)
	for _, key := range []string{"offered_qps", "achieved_qps", "error_rate", "endpoints", "sustained"} {
		if _, ok := stage0[key]; !ok {
			t.Fatalf("stage JSON missing %q: %s", key, raw)
		}
	}
	ep := stage0["endpoints"].(map[string]any)["audit"].(map[string]any)
	for _, key := range []string{"count", "ok", "shed_429", "p50_ms", "p99_ms", "p999_ms", "achieved_qps", "service_p50_ms"} {
		if _, ok := ep[key]; !ok {
			t.Fatalf("endpoint JSON missing %q: %s", key, raw)
		}
	}
}

// TestOpMixDeterministic asserts the same seed issues the same op
// sequence (kinds and uids), and the audit fraction tracks the config.
func TestOpMixDeterministic(t *testing.T) {
	mk := func() *Config {
		c := &Config{AuditFrac: 0.3, Users: 50, Seed: 7}
		c.defaults()
		return c
	}
	a, b := mk(), mk()
	audits := 0
	const n = 4000
	at := time.Now()
	for i := uint64(0); i < n; i++ {
		oa, ob := a.nextOp(i, at), b.nextOp(i, at)
		if oa.Kind != ob.Kind || oa.UID != ob.UID || oa.Log.Value != ob.Log.Value {
			t.Fatalf("op %d differs: %+v vs %+v", i, oa, ob)
		}
		if oa.Kind == KindAudit {
			audits++
			if oa.UID < 1 || int(oa.UID) > a.Users {
				t.Fatalf("audit uid %d outside [1,%d]", oa.UID, a.Users)
			}
		} else if !oa.Log.Type.Valid() {
			t.Fatalf("ingest op %d has invalid type", i)
		}
	}
	frac := float64(audits) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("audit fraction %.3f, config 0.3", frac)
	}
}

// TestZipfAuditSkew asserts the -zipf repeat-target mix: same-seed runs
// draw the same uid sequence, uids stay in range, rank 1 dominates the
// frequency table far beyond its uniform share, and an out-of-range
// skew is rejected by Run.
func TestZipfAuditSkew(t *testing.T) {
	mk := func() *Config {
		c := &Config{AuditFrac: 1, Users: 1000, Seed: 5, ZipfS: 0.99}
		c.defaults()
		return c
	}
	a, b := mk(), mk()
	const n = 20000
	at := time.Now()
	freq := make(map[uint64]int)
	for i := uint64(0); i < n; i++ {
		oa, ob := a.nextOp(i, at), b.nextOp(i, at)
		if oa.UID != ob.UID {
			t.Fatalf("op %d differs under same seed: uid %d vs %d", i, oa.UID, ob.UID)
		}
		if oa.UID < 1 || int(oa.UID) > a.Users {
			t.Fatalf("uid %d outside [1,%d]", oa.UID, a.Users)
		}
		freq[uint64(oa.UID)]++
	}
	// Zipf(0.99) over 1000 ranks gives rank 1 roughly 1/ζ ≈ 13% of the
	// mass; uniform would be 0.1%. Assert well above uniform and that
	// the hottest uid is rank 1.
	top, topUID := 0, uint64(0)
	for uid, c := range freq {
		if c > top {
			top, topUID = c, uid
		}
	}
	if topUID != 1 {
		t.Fatalf("hottest uid %d, want rank 1", topUID)
	}
	if share := float64(top) / n; share < 0.05 {
		t.Fatalf("rank-1 share %.4f under zipf(0.99); want ≥ 0.05", share)
	}

	// A different seed must produce a different sequence (the skew is
	// seeded, not fixed).
	c2 := &Config{AuditFrac: 1, Users: 1000, Seed: 6, ZipfS: 0.99}
	c2.defaults()
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.nextOp(i, at).UID == c2.nextOp(i, at).UID {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed does not influence the zipf uid sequence")
	}

	// Out-of-range skew: Run must refuse rather than silently serve
	// uniform.
	bad := Config{Stages: []Stage{{QPS: 1, Duration: time.Millisecond}}, ZipfS: 1.5}
	if _, err := Run(context.Background(), bad, NewHTTPTarget("http://127.0.0.1:0", 1)); err == nil {
		t.Fatal("Run accepted ZipfS=1.5")
	}
}

// tierTarget is a Target that also exposes cumulative per-tier serve
// counters, attributing every audit to a fixed tier — the loadgen-side
// contract of the server's /stats served_by section.
type tierTarget struct {
	mu     sync.Mutex
	served map[string]int64
}

func (tt *tierTarget) Do(ctx context.Context, op Op) (int, error) {
	if op.Kind == KindAudit {
		tt.mu.Lock()
		tt.served["embed"]++
		tt.mu.Unlock()
	}
	return http.StatusOK, nil
}

func (tt *tierTarget) ServedCounts(ctx context.Context) (map[string]int64, error) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make(map[string]int64, len(tt.served))
	for k, v := range tt.served {
		out[k] = v
	}
	return out, nil
}

// TestServedByCounts asserts the scoreboard carries the per-tier audit
// breakdown: stage deltas match the audits completed and the run total
// sums the stages.
func TestServedByCounts(t *testing.T) {
	tt := &tierTarget{served: map[string]int64{"embed": 7}} // pre-run counts must not leak into the delta
	cfg := Config{
		Stages:    []Stage{{QPS: 200, Duration: 200 * time.Millisecond}, {QPS: 200, Duration: 200 * time.Millisecond}},
		AuditFrac: 1,
		Users:     20,
		Workers:   8,
		Seed:      11,
	}
	rep, err := Run(context.Background(), cfg, tt)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, st := range rep.Stages {
		audits := st.Endpoints[KindAudit].Count
		if st.ServedBy["embed"] != audits {
			t.Fatalf("stage %d served_by %v, want embed=%d", i, st.ServedBy, audits)
		}
		total += audits
	}
	if rep.ServedBy["embed"] != total {
		t.Fatalf("run served_by %v, want embed=%d", rep.ServedBy, total)
	}

	// JSON schema: the breakdown must surface under the scoreboard key.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["served_by"]; !ok {
		t.Fatalf("report JSON missing served_by: %s", raw)
	}
}

// TestHTTPTargetServedCounts asserts the HTTP target reads the
// served_by section of GET /stats.
func TestHTTPTargetServedCounts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"served_by":{"embed":12,"full":3},"other":"ignored"}`))
	}))
	defer srv.Close()
	got, err := NewHTTPTarget(srv.URL, 1).ServedCounts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got["embed"] != 12 || got["full"] != 3 {
		t.Fatalf("served counts %v", got)
	}
}

// TestCoordinatedOmissionSafety is the acceptance check for open-loop
// measurement: a server stall must surface in the intended-schedule
// latency percentiles. The handler blocks every request for the first
// stallDur of the run; ops scheduled during the stall are recorded
// against their intended starts, so the latency p90 must carry the
// stall while the post-stall service times stay small. A closed-loop
// harness would show a handful of slow requests and a silently
// stretched schedule instead.
func TestCoordinatedOmissionSafety(t *testing.T) {
	const stallDur = 400 * time.Millisecond
	stallUntil := time.Now().Add(stallDur)
	gate := make(chan struct{})
	var gateOnce sync.Once
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			// The scoreboard's tier-counter probe must not consume the
			// stall the op schedule is supposed to observe.
			w.Write([]byte(`{}`))
			return
		}
		if d := time.Until(stallUntil); d > 0 {
			gateOnce.Do(func() {
				go func() { time.Sleep(d); close(gate) }()
			})
			<-gate
		}
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cfg := Config{
		Stages:    []Stage{{QPS: 200, Duration: 800 * time.Millisecond}},
		AuditFrac: 1, // single endpoint keeps the math simple
		Users:     10,
		Workers:   8, // far fewer workers than stalled ops: the queue must not hide them
		Seed:      1,
		Timeout:   5 * time.Second,
	}
	rep, err := Run(context.Background(), cfg, NewHTTPTarget(srv.URL, cfg.Workers))
	if err != nil {
		t.Fatal(err)
	}
	ep := rep.Stages[0].Endpoints[KindAudit]
	if ep.Count == 0 {
		t.Fatal("nothing completed")
	}
	// ~half the schedule fell inside the stall, so p90 of the
	// intended-start latency must reflect a large fraction of it.
	minP90 := ms(stallDur / 4)
	if ep.P99Ms < minP90 {
		t.Errorf("p99 %.1fms does not reflect a %.0fms stall (want ≥ %.1fms); report: %+v",
			ep.P99Ms, ms(stallDur), minP90, ep)
	}
	// The post-stall requests themselves were fast: median service
	// time stays far below the stall even though median scheduled
	// latency carries it.
	if ep.ServiceP50Ms >= ms(stallDur) {
		t.Errorf("service p50 %.1fms ≈ stall; expected small post-stall service times", ep.ServiceP50Ms)
	}
	if ep.P50Ms <= ep.ServiceP50Ms {
		t.Errorf("scheduled-latency p50 %.1fms not above service p50 %.1fms — queueing delay missing",
			ep.P50Ms, ep.ServiceP50Ms)
	}
}

// TestRampStopsAfterUnsustained asserts the stepped-ramp search stops
// at the first failing stage and reports the last passing rate.
func TestRampStopsAfterUnsustained(t *testing.T) {
	// Server with a hard concurrency-1 bottleneck of ~25ms per op:
	// ~40 QPS capacity. The ramp offers 20 then 400 QPS.
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		time.Sleep(25 * time.Millisecond)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cfg := Config{
		Stages:               []Stage{{QPS: 20, Duration: 400 * time.Millisecond}, {QPS: 400, Duration: 400 * time.Millisecond}, {QPS: 800, Duration: 400 * time.Millisecond}},
		AuditFrac:            1,
		Users:                10,
		Workers:              32,
		Seed:                 3,
		Timeout:              10 * time.Second,
		StopAfterUnsustained: true,
	}
	rep, err := Run(context.Background(), cfg, NewHTTPTarget(srv.URL, cfg.Workers))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("ran %d stages, want 2 (stop after first unsustained)", len(rep.Stages))
	}
	if !rep.Stages[0].Sustained || rep.Stages[1].Sustained {
		t.Fatalf("sustained flags %v/%v, want true/false",
			rep.Stages[0].Sustained, rep.Stages[1].Sustained)
	}
	if rep.MaxSustainableQPS != 20 {
		t.Fatalf("max sustainable %v, want 20", rep.MaxSustainableQPS)
	}
}

// TestRampStages asserts the ramp builder covers [start, max] in step
// increments.
func TestRampStages(t *testing.T) {
	st := RampStages(100, 100, 400, time.Second)
	if len(st) != 4 {
		t.Fatalf("stages %d, want 4", len(st))
	}
	if st[0].QPS != 100 || st[3].QPS != 400 {
		t.Fatalf("ramp %v", st)
	}
}

// TestRunCanceled asserts a canceled context ends the run early with
// the partial report flagged.
func TestRunCanceled(t *testing.T) {
	srv := okServer()
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	cfg := Config{
		Stages:    []Stage{{QPS: 50, Duration: 10 * time.Second}},
		AuditFrac: 1,
		Users:     10,
		Workers:   4,
		Seed:      9,
	}
	rep, err := Run(ctx, cfg, NewHTTPTarget(srv.URL, cfg.Workers))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("report not flagged canceled")
	}
	if rep.Stages[0].Scheduled >= 500 {
		t.Fatalf("scheduled %d ops in 150ms at 50 QPS", rep.Stages[0].Scheduled)
	}
}
