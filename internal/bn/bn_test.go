package bn

import (
	"math"
	"testing"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/graph"
)

var t0 = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

func mk(u behavior.UserID, typ behavior.Type, val string, offset time.Duration) behavior.Log {
	return behavior.Log{User: u, Type: typ, Value: val, Time: t0.Add(offset)}
}

func newBuilder(t *testing.T, cfg Config, logs []behavior.Log) *Builder {
	t.Helper()
	store := behavior.NewStore()
	store.AppendBatch(logs)
	g := graph.New(behavior.NumTypes)
	b, err := NewBuilder(cfg, store, g, t0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDefaultWindowsHierarchy(t *testing.T) {
	ws := DefaultWindows()
	if len(ws) != 13 {
		t.Fatalf("want 13 windows (1h..12h, 1d), got %d", len(ws))
	}
	if ws[0] != time.Hour || ws[11] != 12*time.Hour || ws[12] != 24*time.Hour {
		t.Fatalf("windows %v", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatal("windows must ascend")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	bad := Config{Windows: []time.Duration{2 * time.Hour, time.Hour}}
	if err := bad.Validate(); err == nil {
		t.Fatal("descending windows accepted")
	}
	bad = Config{Windows: []time.Duration{-time.Hour}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative window accepted")
	}
	bad = Config{TTL: -time.Hour}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if _, err := NewBuilder(bad, behavior.NewStore(), graph.New(1), t0); err == nil {
		t.Fatal("NewBuilder accepted invalid config")
	}
}

// TestInverseWeightToyExample reproduces the Fig. 3 example: four users
// sharing one value inside a 1-hour epoch produce a clique whose edges
// each weigh 1/4.
func TestInverseWeightToyExample(t *testing.T) {
	var logs []behavior.Log
	for u := 0; u < 4; u++ {
		logs = append(logs, mk(behavior.UserID(u), behavior.IPv4, "wifi", time.Duration(u*10)*time.Minute))
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	b.ProcessEpoch(time.Hour, t0)
	g := b.Graph()
	if g.NumEdges() != 6 { // C(4,2) clique
		t.Fatalf("edges %d want 6", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if math.Abs(e.Weight-0.25) > 1e-12 {
			t.Fatalf("edge weight %v want 1/4", e.Weight)
		}
	}
}

// TestHierarchicalWindowsSumWeights: a co-occurrence within 1 hour is
// counted by both the 1-hour and 2-hour windows, so its weight exceeds a
// co-occurrence only visible to the larger window (the paper's
// "temporally tighter relations weigh more").
func TestHierarchicalWindowsSumWeights(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 10*time.Minute),
		mk(2, behavior.IPv4, "x", 20*time.Minute), // within 1h of user 1
		mk(3, behavior.IPv4, "x", 90*time.Minute), // only shares the 2h epoch
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour, 2 * time.Hour}}, logs)
	b.BuildRange(t0, t0.Add(2*time.Hour))
	g := b.Graph()
	wTight := g.EdgeWeight(graph.EdgeType(behavior.IPv4), 1, 2)
	wLoose := g.EdgeWeight(graph.EdgeType(behavior.IPv4), 1, 3)
	// Tight pair: 1/2 (1h epoch, group {1,2}) + 1/3 (2h epoch, group
	// {1,2,3}) = 5/6. Loose pair: only 1/3.
	if math.Abs(wTight-5.0/6.0) > 1e-12 {
		t.Fatalf("tight weight %v want 5/6", wTight)
	}
	if math.Abs(wLoose-1.0/3.0) > 1e-12 {
		t.Fatalf("loose weight %v want 1/3", wLoose)
	}
	if wTight <= wLoose {
		t.Fatal("hierarchical windows must favor temporally tight relations")
	}
}

func TestUniformWeightsAblation(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", time.Minute),
		mk(2, behavior.IPv4, "x", 2*time.Minute),
		mk(3, behavior.IPv4, "x", 3*time.Minute),
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}, UniformWeights: true}, logs)
	b.ProcessEpoch(time.Hour, t0)
	for _, e := range b.Graph().Edges() {
		if e.Weight != 1 {
			t.Fatalf("uniform weight %v want 1", e.Weight)
		}
	}
}

func TestMaxGroupSizeSkipsHugeCliques(t *testing.T) {
	var logs []behavior.Log
	for u := 0; u < 10; u++ {
		logs = append(logs, mk(behavior.UserID(u), behavior.WiFiMAC, "public", time.Duration(u)*time.Minute))
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}, MaxGroupSize: 5}, logs)
	b.ProcessEpoch(time.Hour, t0)
	if b.Graph().NumEdges() != 0 {
		t.Fatalf("group over cap should be skipped, got %d edges", b.Graph().NumEdges())
	}
}

func TestSameUserRepeatsDoNotSelfConnect(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", time.Minute),
		mk(1, behavior.IPv4, "x", 2*time.Minute),
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	b.ProcessEpoch(time.Hour, t0)
	if b.Graph().NumEdges() != 0 {
		t.Fatal("single user must not create edges")
	}
}

func TestEpochBoundariesSeparateGroups(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 30*time.Minute),
		mk(2, behavior.IPv4, "x", 90*time.Minute), // next 1h epoch
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	b.BuildRange(t0, t0.Add(2*time.Hour))
	if b.Graph().NumEdges() != 0 {
		t.Fatal("users in different epochs must not connect")
	}
}

func TestAdvanceMatchesBuildRange(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 10*time.Minute),
		mk(2, behavior.IPv4, "x", 20*time.Minute),
		mk(2, behavior.GPS100, "cell", 3*time.Hour),
		mk(3, behavior.GPS100, "cell", 3*time.Hour+30*time.Minute),
		mk(1, behavior.DeviceID, "dev", 26*time.Hour),
		mk(3, behavior.DeviceID, "dev", 27*time.Hour),
	}
	cfg := Config{Windows: []time.Duration{time.Hour, 4 * time.Hour}}

	batch := newBuilder(t, cfg, logs)
	batch.BuildRange(t0, t0.Add(48*time.Hour))

	stream := newBuilder(t, cfg, logs)
	for hour := 1; hour <= 48; hour++ {
		stream.Advance(t0.Add(time.Duration(hour) * time.Hour))
	}

	be, se := batch.Graph().Edges(), stream.Graph().Edges()
	if len(be) != len(se) {
		t.Fatalf("edge counts differ: batch %d vs stream %d", len(be), len(se))
	}
	for i := range be {
		if be[i].U != se[i].U || be[i].V != se[i].V || be[i].Type != se[i].Type ||
			math.Abs(be[i].Weight-se[i].Weight) > 1e-12 {
			t.Fatalf("edge %d differs: %+v vs %+v", i, be[i], se[i])
		}
	}
}

func TestAdvanceJobCountsAndScheduling(t *testing.T) {
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour, 2 * time.Hour}}, nil)
	jobs := b.Advance(t0.Add(4 * time.Hour))
	// 4 one-hour epochs + 2 two-hour epochs.
	if jobs != 6 {
		t.Fatalf("jobs %d want 6", jobs)
	}
	if b.NextEpochStart(0) != t0.Add(4*time.Hour) {
		t.Fatalf("next 1h epoch %v", b.NextEpochStart(0))
	}
	// No time passed: no new jobs.
	if jobs = b.Advance(t0.Add(4 * time.Hour)); jobs != 0 {
		t.Fatalf("idle advance ran %d jobs", jobs)
	}
	// Partial epoch not processed until fully elapsed.
	if jobs = b.Advance(t0.Add(4*time.Hour + 30*time.Minute)); jobs != 0 {
		t.Fatalf("partial epoch processed: %d", jobs)
	}
}

func TestAdvancePrunesTTL(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 10*time.Minute),
		mk(2, behavior.IPv4, "x", 20*time.Minute),
	}
	cfg := Config{Windows: []time.Duration{time.Hour}, TTL: 24 * time.Hour}
	b := newBuilder(t, cfg, logs)
	b.Advance(t0.Add(2 * time.Hour))
	if b.Graph().NumEdges() != 1 {
		t.Fatalf("edge not built: %d", b.Graph().NumEdges())
	}
	// Edge expires at epochEnd (1h) + TTL (24h) = 25h.
	b.Advance(t0.Add(26 * time.Hour))
	if b.Graph().NumEdges() != 0 {
		t.Fatal("TTL-expired edge survived Advance")
	}
}

func TestBuildRangeRespectsTimeBounds(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 10*time.Minute),
		mk(2, behavior.IPv4, "x", 20*time.Minute),
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	// Build over a range that excludes the logs entirely.
	b.BuildRange(t0.Add(5*time.Hour), t0.Add(10*time.Hour))
	if b.Graph().NumEdges() != 0 {
		t.Fatal("logs outside range produced edges")
	}
}

func TestCollectStats(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.IPv4, "x", 10*time.Minute),
		mk(2, behavior.IPv4, "x", 20*time.Minute),
		mk(1, behavior.DeviceID, "d", 30*time.Minute),
		mk(3, behavior.DeviceID, "d", 40*time.Minute),
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	b.ProcessEpoch(time.Hour, t0)
	st := CollectStats(b.Graph(), func(n graph.NodeID) bool { return n == 1 })
	if st.Nodes != 3 || st.Edges != 2 || st.Types != 2 || st.Positives != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.EdgesByType["IPv4"] != 1 || st.EdgesByType["DeviceId"] != 1 {
		t.Fatalf("per-type stats %v", st.EdgesByType)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestEdgeTypeEqualsBehaviorType(t *testing.T) {
	logs := []behavior.Log{
		mk(1, behavior.GPSDev, "addr", time.Minute),
		mk(2, behavior.GPSDev, "addr", 2*time.Minute),
	}
	b := newBuilder(t, Config{Windows: []time.Duration{time.Hour}}, logs)
	b.ProcessEpoch(time.Hour, t0)
	es := b.Graph().Edges()
	if len(es) != 1 || es[0].Type != graph.EdgeType(behavior.GPSDev) {
		t.Fatalf("edge type mismatch: %+v", es)
	}
}
