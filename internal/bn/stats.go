package bn

import (
	"fmt"
	"strings"

	"turbo/internal/behavior"
	"turbo/internal/graph"
)

// Stats summarizes a constructed BN in the shape of Table II.
type Stats struct {
	Nodes       int
	Positives   int
	Edges       int
	Types       int // number of edge types that actually carry edges
	EdgesByType map[string]int
}

// CollectStats computes Table II-style statistics from any read view of
// the BN (live graph or snapshot); isFraud may be nil.
func CollectStats(g graph.GraphView, isFraud func(graph.NodeID) bool) Stats {
	s := Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		EdgesByType: make(map[string]int),
	}
	for t, c := range g.EdgeCountByType() {
		if c > 0 {
			s.Types++
			s.EdgesByType[behavior.Type(t).String()] = c
		}
	}
	if isFraud != nil {
		for _, n := range g.Nodes() {
			if isFraud(n) {
				s.Positives++
			}
		}
	}
	return s
}

// String renders the stats as a Table II-style row.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#node=%d #positive=%d #edge=%d #type=%d", s.Nodes, s.Positives, s.Edges, s.Types)
	return b.String()
}
