// Package bn constructs the Behavior Network of §III: a time-evolving
// heterogeneous graph whose typed edges connect users that shared the
// same behavior value within a time window. It implements Algorithm 1
// with the paper's two uncertainty-reduction strategies — inverse weight
// assignment (each co-occurrence group of N users contributes 1/N to
// every pairwise edge) and hierarchical time windows (co-occurrences in
// shorter windows are re-counted by every longer window, so temporally
// tight relations accumulate larger weights) — plus the 60-day edge TTL
// of §V.
package bn

import (
	"fmt"
	"sync/atomic"
	"time"

	"turbo/internal/behavior"
	"turbo/internal/graph"
)

// DefaultWindows is the paper's empirical hierarchy
// W = [1 hour, 2 hours, …, 12 hours, 1 day].
func DefaultWindows() []time.Duration {
	ws := make([]time.Duration, 0, 13)
	for h := 1; h <= 12; h++ {
		ws = append(ws, time.Duration(h)*time.Hour)
	}
	return append(ws, 24*time.Hour)
}

// DefaultTTL is the max edge Time-To-Live of §V.
const DefaultTTL = 60 * 24 * time.Hour

// Config parameterizes BN construction.
type Config struct {
	// Windows is the hierarchical time window set W (ascending). Empty
	// selects DefaultWindows.
	Windows []time.Duration
	// TTL is the edge time-to-live; zero selects DefaultTTL.
	TTL time.Duration
	// MaxGroupSize caps the number of users in one co-occurrence group
	// whose pairwise edges are materialized. Groups larger than the cap
	// (e.g. a public Wi-Fi shared by hundreds of users) would add
	// O(N²) edges of weight 1/N ≤ 1/cap each — individually negligible
	// under the inverse rule — so they are skipped. 0 selects 64.
	MaxGroupSize int
	// UniformWeights disables the inverse weight assignment (every
	// co-occurrence contributes weight 1). Ablation use only.
	UniformWeights bool
}

func (c Config) withDefaults() Config {
	if len(c.Windows) == 0 {
		c.Windows = DefaultWindows()
	}
	if c.TTL == 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxGroupSize == 0 {
		c.MaxGroupSize = 64
	}
	return c
}

// Validate checks the window hierarchy is strictly ascending and positive.
func (c Config) Validate() error {
	c = c.withDefaults()
	for i, w := range c.Windows {
		if w <= 0 {
			return fmt.Errorf("bn: window %d is non-positive (%v)", i, w)
		}
		if i > 0 && w <= c.Windows[i-1] {
			return fmt.Errorf("bn: windows must be strictly ascending: W[%d]=%v ≤ W[%d]=%v",
				i, w, i-1, c.Windows[i-1])
		}
	}
	if c.TTL < 0 {
		return fmt.Errorf("bn: negative TTL %v", c.TTL)
	}
	return nil
}

// Builder incrementally constructs the BN from a behavior log store.
type Builder struct {
	cfg   Config
	store *behavior.Store
	g     *graph.Graph
	// nextEpoch[i] is the start of the next unprocessed epoch of window i.
	nextEpoch []time.Time
	origin    time.Time

	// Cumulative construction totals, readable concurrently with Advance
	// (the BN server mirrors deltas into telemetry counters).
	jobs        atomic.Int64
	edgeUpdates atomic.Int64
	pruned      atomic.Int64

	// processedThrough is the event-time frontier (unix nanos): every
	// window's epochs before it have been materialized into edges. It
	// feeds the turbo_bn_build_lag_seconds gauge, so it is atomic and
	// readable concurrently with Advance.
	processedThrough atomic.Int64
}

// BuildStats are the builder's cumulative construction totals.
type BuildStats struct {
	// Jobs is the number of window epoch jobs executed by Advance.
	Jobs int64
	// EdgeUpdates counts edge-weight contributions written to the graph
	// (one per pair per co-occurrence group per window epoch).
	EdgeUpdates int64
	// Pruned counts undirected edges dropped by TTL pruning.
	Pruned int64
}

// Stats returns the cumulative construction totals. Safe to call
// concurrently with Advance.
func (b *Builder) Stats() BuildStats {
	return BuildStats{
		Jobs:        b.jobs.Load(),
		EdgeUpdates: b.edgeUpdates.Load(),
		Pruned:      b.pruned.Load(),
	}
}

// NewBuilder creates a builder writing into g; t0 anchors the epoch grid
// (Algorithm 1's "initial time").
func NewBuilder(cfg Config, store *behavior.Store, g *graph.Graph, t0 time.Time) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	b := &Builder{cfg: cfg, store: store, g: g, origin: t0}
	b.nextEpoch = make([]time.Time, len(cfg.Windows))
	for i := range b.nextEpoch {
		b.nextEpoch[i] = t0
	}
	b.publishFrontier()
	return b, nil
}

// Graph returns the BN being built.
func (b *Builder) Graph() *graph.Graph { return b.g }

// Config returns the effective configuration.
func (b *Builder) Config() Config { return b.cfg }

// ProcessEpoch runs one window job: it scans logs in [start, start+w),
// groups them by (type, value), and adds the inverse-weighted pairwise
// edges of each group (Algorithm 1 lines 5–8). The edge expiry is the
// epoch end plus the TTL.
func (b *Builder) ProcessEpoch(w time.Duration, start time.Time) {
	end := start.Add(w)
	expire := end.Add(b.cfg.TTL)
	b.store.ScanBetween(start, end, func(k behavior.Key, logs []behavior.Log) {
		users := distinctUsers(logs)
		n := len(users)
		if n < 2 || n > b.cfg.MaxGroupSize {
			return
		}
		weight := 1.0
		if !b.cfg.UniformWeights {
			weight = 1.0 / float64(n)
		}
		t := graph.EdgeType(k.Type)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				// Errors are impossible here by construction (distinct
				// users, positive weight, valid type).
				_ = b.g.AddEdgeWeight(t, graph.NodeID(users[i]), graph.NodeID(users[j]), weight, expire)
			}
		}
		b.edgeUpdates.Add(int64(n * (n - 1) / 2))
	})
}

// Advance processes, for every window size, all epochs that have fully
// elapsed by now, then prunes expired edges. It returns the number of
// epoch jobs executed. The BN server calls this periodically; jobs with
// shorter windows naturally run more frequently (§V).
func (b *Builder) Advance(now time.Time) int {
	jobs := 0
	for i, w := range b.cfg.Windows {
		for !b.nextEpoch[i].Add(w).After(now) {
			b.ProcessEpoch(w, b.nextEpoch[i])
			b.nextEpoch[i] = b.nextEpoch[i].Add(w)
			jobs++
		}
	}
	b.jobs.Add(int64(jobs))
	b.pruned.Add(int64(b.g.Prune(now)))
	b.publishFrontier()
	return jobs
}

// publishFrontier republishes the processed-through frontier: the
// earliest next-unprocessed-epoch start across the window hierarchy.
// Events before it are fully materialized by every window.
func (b *Builder) publishFrontier() {
	frontier := b.nextEpoch[0]
	for _, t := range b.nextEpoch[1:] {
		if t.Before(frontier) {
			frontier = t
		}
	}
	b.processedThrough.Store(frontier.UnixNano())
}

// ProcessedThrough returns the event-time frontier fully materialized
// by the scheduled window jobs. Safe to call concurrently with Advance.
func (b *Builder) ProcessedThrough() time.Time {
	return time.Unix(0, b.processedThrough.Load())
}

// BuildRange batch-constructs the BN over [from, to), producing exactly
// the same edges as running every window's epoch jobs, but iterating
// key-by-key instead of epoch-by-epoch so the cost is
// O(keys × windows × logs-per-key) rather than O(epochs × keys).
// This is the offline path used to assemble training datasets. Edges are
// not pruned; call Graph().Prune for TTL semantics.
func (b *Builder) BuildRange(from, to time.Time) {
	b.store.ForEachKey(func(k behavior.Key, logs []behavior.Log) {
		b.buildKey(k, logs, from, to)
	})
}

// buildKey adds, for one (type, value) key, the contributions of every
// window's epochs intersecting [from, to).
func (b *Builder) buildKey(k behavior.Key, logs []behavior.Log, from, to time.Time) {
	t := graph.EdgeType(k.Type)
	for _, w := range b.cfg.Windows {
		// Bucket logs by origin-anchored epoch index.
		buckets := make(map[int64][]behavior.UserID)
		for _, l := range logs {
			if l.Time.Before(from) || !l.Time.Before(to) {
				continue
			}
			idx := int64(l.Time.Sub(b.origin) / w)
			buckets[idx] = append(buckets[idx], l.User)
		}
		for idx, us := range buckets {
			users := dedupUsers(us)
			n := len(users)
			if n < 2 || n > b.cfg.MaxGroupSize {
				continue
			}
			weight := 1.0
			if !b.cfg.UniformWeights {
				weight = 1.0 / float64(n)
			}
			epochEnd := b.origin.Add(time.Duration(idx+1) * w)
			expire := epochEnd.Add(b.cfg.TTL)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					_ = b.g.AddEdgeWeight(t, graph.NodeID(users[i]), graph.NodeID(users[j]), weight, expire)
				}
			}
		}
	}
}

func dedupUsers(us []behavior.UserID) []behavior.UserID {
	seen := make(map[behavior.UserID]struct{}, len(us))
	out := us[:0]
	for _, u := range us {
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			out = append(out, u)
		}
	}
	return out
}

// NextEpochStart reports the start of the next unprocessed epoch for the
// i-th window, useful for scheduling and tests.
func (b *Builder) NextEpochStart(i int) time.Time { return b.nextEpoch[i] }

// NextEpochs returns a copy of the per-window next-unprocessed-epoch
// starts, in window order — the builder's scheduling state, captured by
// durable checkpoints so a recovered server resumes window jobs exactly
// where the crashed one left off. Callers must not run Advance
// concurrently.
func (b *Builder) NextEpochs() []time.Time {
	return append([]time.Time(nil), b.nextEpoch...)
}

// RestoreNextEpochs overwrites the per-window scheduling state with a
// checkpointed copy (boot-time recovery only; not safe concurrently with
// Advance). The slice length must match the window hierarchy.
func (b *Builder) RestoreNextEpochs(ts []time.Time) error {
	if len(ts) != len(b.nextEpoch) {
		return fmt.Errorf("bn: restore: %d epoch cursors for %d windows", len(ts), len(b.nextEpoch))
	}
	copy(b.nextEpoch, ts)
	b.publishFrontier()
	return nil
}

func distinctUsers(logs []behavior.Log) []behavior.UserID {
	seen := make(map[behavior.UserID]struct{}, len(logs))
	var users []behavior.UserID
	for _, l := range logs {
		if _, ok := seen[l.User]; !ok {
			seen[l.User] = struct{}{}
			users = append(users, l.User)
		}
	}
	return users
}
