package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestNewPanicsOnNegativeShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong elements: %v", m)
	}
}

func TestFromRowsRejectsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("want 0x0, got %dx%d", m.Rows, m.Cols)
	}
}

func TestIdentityMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MatMul(Identity(3))
	if !got.Equal(a, 1e-12) {
		t.Fatalf("A·I != A: %v", got)
	}
	got = Identity(2).MatMul(a)
	if !got.Equal(a, 1e-12) {
		t.Fatalf("I·A != A: %v", got)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.MatMul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestMatMulTransB(t *testing.T) {
	rng := NewRNG(1)
	a := RandNormal(4, 5, 1, rng)
	b := RandNormal(3, 5, 1, rng)
	got := a.MatMulTransB(b)
	want := a.MatMul(b.Transpose())
	if !got.Equal(want, 1e-10) {
		t.Fatalf("MatMulTransB mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := NewRNG(2)
	a := RandNormal(5, 4, 1, rng)
	b := RandNormal(5, 3, 1, rng)
	got := a.MatMulTransA(b)
	want := a.Transpose().MatMul(b)
	if !got.Equal(want, 1e-10) {
		t.Fatalf("MatMulTransA mismatch")
	}
}

// TestMatMulParallelMatchesSerial forces the parallel path and compares
// with a hand-rolled serial product.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(3)
	a := RandNormal(200, 70, 1, rng)
	b := RandNormal(70, 90, 1, rng)
	got := a.MatMul(b) // large enough to trigger parallelRows
	want := New(200, 90)
	for i := 0; i < 200; i++ {
		for k := 0; k < 70; k++ {
			av := a.At(i, k)
			for j := 0; j < 90; j++ {
				want.Data[i*90+j] += av * b.At(k, j)
			}
		}
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("parallel matmul differs from serial")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := RandNormal(rows, cols, 1, rng)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulAssociativity is a property check (A·B)·C == A·(B·C).
func TestMatMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		n1, n2, n3, n4 := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandNormal(n1, n2, 1, rng)
		b := RandNormal(n2, n3, 1, rng)
		c := RandNormal(n3, n4, 1, rng)
		left := a.MatMul(b).MatMul(c)
		right := a.MatMul(b.MatMul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulDistributivity checks A·(B+C) == A·B + A·C.
func TestMatMulDistributivity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		n1, n2, n3 := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandNormal(n1, n2, 1, rng)
		b := RandNormal(n2, n3, 1, rng)
		c := RandNormal(n2, n3, 1, rng)
		left := a.MatMul(b.Add(c))
		right := a.MatMul(b).Add(a.MatMul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := a.Add(b); !got.Equal(FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Fatalf("add: %v", got)
	}
	if got := b.Sub(a); !got.Equal(FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Fatalf("sub: %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Fatalf("mul: %v", got)
	}
	if got := a.Scale(2); !got.Equal(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("scale: %v", got)
	}
}

func TestAddDoesNotMutateReceiver(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	_ = a.Add(b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 2 {
		t.Fatalf("receiver mutated: %v", a)
	}
}

func TestAddInPlaceAndScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	a.AddInPlace(b)
	if !a.Equal(FromRows([][]float64{{4, 6}}), 0) {
		t.Fatalf("addInPlace: %v", a)
	}
	a.AddScaledInPlace(b, -1)
	if !a.Equal(FromRows([][]float64{{1, 2}}), 0) {
		t.Fatalf("addScaledInPlace: %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"add": func() { New(1, 2).Add(New(2, 1)) },
		"sub": func() { New(1, 2).Sub(New(2, 1)) },
		"mul": func() { New(1, 2).Mul(New(2, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{10, 20}})
	got := a.AddRowVector(v)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !got.Equal(want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestMulColVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := FromRows([][]float64{{2}, {3}})
	got := a.MulColVector(v)
	want := FromRows([][]float64{{2, 4}, {9, 12}})
	if !got.Equal(want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestConcatColsSliceColsRoundtrip(t *testing.T) {
	rng := NewRNG(4)
	a := RandNormal(3, 4, 1, rng)
	b := RandNormal(3, 2, 1, rng)
	c := a.ConcatCols(b)
	if c.Cols != 6 {
		t.Fatalf("cols %d", c.Cols)
	}
	if !c.SliceCols(0, 4).Equal(a, 0) || !c.SliceCols(4, 6).Equal(b, 0) {
		t.Fatal("concat/slice roundtrip failed")
	}
}

func TestConcatRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	c := a.ConcatRows(b)
	if c.Rows != 3 || c.At(2, 1) != 6 {
		t.Fatalf("got %v", c)
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}})
	got := m.SelectRows([]int{2, 0, 2})
	want := FromRows([][]float64{{3}, {1}, {3}})
	if !got.Equal(want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestSumMeanMaxAbsNorm(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if m.Sum() != -1 {
		t.Fatalf("sum %v", m.Sum())
	}
	if m.Mean() != -0.5 {
		t.Fatalf("mean %v", m.Mean())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("maxAbs %v", m.MaxAbs())
	}
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("frobenius %v", m.FrobeniusNorm())
	}
}

func TestEmptyMatrixStats(t *testing.T) {
	m := New(0, 0)
	if m.Mean() != 0 || m.Sum() != 0 || m.MaxAbs() != 0 {
		t.Fatal("empty matrix stats should be zero")
	}
}

func TestApplyAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	sq := m.Apply(func(v float64) float64 { return v * v })
	if !sq.Equal(FromRows([][]float64{{1, 4}}), 0) {
		t.Fatalf("apply: %v", sq)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestZeroFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Fill(7)
	if m.At(0, 0) != 7 || m.At(0, 1) != 7 {
		t.Fatalf("fill: %v", m)
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("zero: %v", m)
	}
}

func TestEqualShapeAndTolerance(t *testing.T) {
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1.0000001}})
	if a.Equal(New(2, 1), 1) {
		t.Fatal("different shapes must not be equal")
	}
	if !a.Equal(b, 1e-3) {
		t.Fatal("within tolerance should be equal")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("outside tolerance should differ")
	}
}

func TestStringRendersShape(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" || len(s) < 10 {
		t.Fatalf("weak String output %q", s)
	}
}
