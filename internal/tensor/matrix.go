// Package tensor provides dense float64 matrices and the numeric kernels
// used by the autodiff engine and every model in the repository.
//
// Matrices are row-major. All operations either allocate a fresh result or
// write into the receiver in place; in-place variants are suffixed with
// "Into" or documented as mutating. The package is deliberately free of
// external dependencies so the whole training stack runs on the standard
// library alone.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) in a Matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix copying the given equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged row %d (%d != %d)", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) assertSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// MatMul returns m × o.
func (m *Matrix) MatMul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Cols)
	MatMulInto(out, m, o)
	return out
}

// MatMulInto computes dst = a × b, accumulating into a zeroed dst.
// dst must not alias a or b. Large products are split across the worker
// pool by row ranges, which keeps writes disjoint.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	ParallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) { matMulRange(dst, a, b, lo, hi) })
}

// B-panel blocking bounds for matMulRange: when B exceeds one panel,
// the k×j iteration space is tiled so each (k-panel × j-panel) slab of
// B (≤ mmPanelK·mmPanelJ·8 B = 256 KiB, L2-sized) is streamed across
// all rows of the range before moving on, instead of re-fetching all of
// B per output row.
const (
	mmPanelJ = 256
	mmPanelK = 128
)

// matMulRange computes rows [lo, hi) of dst = a×b.
//
// Bitwise contract: for every output element (i, j) the contributions
// a[i,k]*b[k,j] are added in strictly ascending k with the same
// skip-zero test and round(round(mul)+acc) arithmetic as the historical
// scalar triple loop, regardless of blocking or SIMD (daxpy never uses
// FMA on float64). Tape, infer, and sweep all funnel through this
// kernel, so their logits remain bitwise-equal to each other.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	kd := a.Cols
	if kd*n <= mmPanelJ*mmPanelK {
		for i := lo; i < hi; i++ {
			matMulRowKernel(dst.Data[i*n:(i+1)*n], a.Data[i*kd:(i+1)*kd], b.Data, n)
		}
		return
	}
	for k0 := 0; k0 < kd; k0 += mmPanelK {
		k1 := k0 + mmPanelK
		if k1 > kd {
			k1 = kd
		}
		for j0 := 0; j0 < n; j0 += mmPanelJ {
			j1 := j0 + mmPanelJ
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*kd+k0 : i*kd+k1]
				drow := dst.Data[i*n+j0 : i*n+j1]
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					k := k0 + kk
					daxpy(drow, b.Data[k*n+j0:k*n+j1], av)
				}
			}
		}
	}
}

// matMulRowKernel accumulates one output row: drow += arow × b, where b
// is row-major with stride n and len(drow) == n. Shared by every matmul
// variant so they all inherit the same bitwise contract.
func matMulRowKernel(drow, arow, b []float64, n int) {
	for k, av := range arow {
		if av == 0 {
			continue
		}
		daxpy(drow, b[k*n:k*n+n], av)
	}
}

// RowView returns a 1×Cols matrix sharing row i's storage with m.
// Mutating the view mutates m.
func (m *Matrix) RowView(i int) *Matrix {
	return &Matrix{Rows: 1, Cols: m.Cols, Data: m.Row(i)}
}

// RowsView returns a (hi−lo)×Cols matrix sharing rows [lo, hi) of m's
// storage. Mutating the view mutates m.
func (m *Matrix) RowsView(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: rowsView [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// MatMulRangeInto computes rows [lo, hi) of dst = a × b sequentially,
// accumulating into zeroed dst rows. It is the caller-partitioned
// variant of MatMulInto: per-row arithmetic (skip-zero test, k-major
// accumulation order) is identical, so splitting [0, Rows) across any
// contiguous partition yields results bitwise equal to one MatMulInto
// call. dst rows outside [lo, hi) are untouched.
func MatMulRangeInto(dst, a, b *Matrix, lo, hi int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulRangeInto shape mismatch")
	}
	if lo < 0 || hi > a.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: MatMulRangeInto range [%d,%d) of %d rows", lo, hi, a.Rows))
	}
	matMulRange(dst, a, b, lo, hi)
}

// MatMulSplitRangeInto computes rows [lo, hi) of [a1 | a2] × b into dst
// sequentially; the caller-partitioned variant of MatMulSplitInto with
// the same bitwise-equality guarantee as MatMulRangeInto.
func MatMulSplitRangeInto(dst, a1, a2, b *Matrix, lo, hi int) {
	if a1.Rows != a2.Rows || a1.Cols+a2.Cols != b.Rows || dst.Rows != a1.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulSplitRangeInto shape mismatch")
	}
	if lo < 0 || hi > a1.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: MatMulSplitRangeInto range [%d,%d) of %d rows", lo, hi, a1.Rows))
	}
	matMulSplitRange(dst, a1, a2, b, a1.Cols*b.Cols, lo, hi)
}

// MatMulSplitInto computes [a1 | a2] × b into dst without materializing
// the column concatenation: b's first a1.Cols rows pair with a1, the
// rest with a2. The accumulation order (and the parallel row partition)
// is exactly that of MatMulInto on the concatenated matrix, so results
// are bitwise identical. dst must be zeroed and must not alias a1, a2
// or b.
func MatMulSplitInto(dst, a1, a2, b *Matrix) {
	if a1.Rows != a2.Rows || a1.Cols+a2.Cols != b.Rows || dst.Rows != a1.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulSplitInto shape mismatch")
	}
	n := b.Cols
	off := a1.Cols * n
	work := a1.Rows * (a1.Cols + a2.Cols) * n
	ParallelRows(a1.Rows, work, func(lo, hi int) { matMulSplitRange(dst, a1, a2, b, off, lo, hi) })
}

// matMulSplitRange runs rows [lo, hi) of MatMulSplitInto. A top-level
// function rather than a closure so the sequential path — which the
// single-row inference kernels hit once per computed row — stays
// allocation-free.
func matMulSplitRange(dst, a1, a2, b *Matrix, off, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		matMulRowKernel(drow, a1.Data[i*a1.Cols:(i+1)*a1.Cols], b.Data, n)
		matMulRowKernel(drow, a2.Data[i*a2.Cols:(i+1)*a2.Cols], b.Data[off:], n)
	}
}

// MatMulTransB returns m × oᵀ.
func (m *Matrix) MatMulTransB(o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %dx%d × (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Rows, o.Rows)
	// Dot-product form: the sequential k-sum is part of the training
	// numerics (backward passes), so it is dispatched to the pool but
	// never re-associated or vectorized.
	ParallelRows(m.Rows, m.Rows*m.Cols*o.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := m.Row(i)
			for j := 0; j < o.Rows; j++ {
				brow := o.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				out.Data[i*o.Rows+j] = s
			}
		}
	})
	return out
}

// MatMulTransA returns mᵀ × o.
func (m *Matrix) MatMulTransA(o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch (%dx%d)ᵀ × %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := New(m.Cols, o.Cols)
	// One kernel for both the serial and pooled paths (the old serial
	// copy of this loop nest predated ParallelRows and skipped the
	// parallel dispatch entirely). Output rows (columns of m) are
	// disjoint per range, and for a fixed (i, j) the k contributions
	// arrive in ascending order on either path, so the partition does
	// not affect results.
	ParallelRows(m.Cols, m.Rows*m.Cols*o.Cols, func(lo, hi int) {
		for k := 0; k < m.Rows; k++ {
			arow := m.Row(k)[lo:hi]
			brow := o.Row(k)
			for di, av := range arow {
				if av == 0 {
					continue
				}
				i := lo + di
				daxpy(out.Data[i*o.Cols:(i+1)*o.Cols], brow, av)
			}
		}
	})
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns m + o element-wise.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.assertSameShape(o, "add")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace adds o into m and returns m.
func (m *Matrix) AddInPlace(o *Matrix) *Matrix {
	m.assertSameShape(o, "add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return m
}

// AddScaledInPlace adds s*o into m and returns m.
func (m *Matrix) AddScaledInPlace(o *Matrix, s float64) *Matrix {
	m.assertSameShape(o, "addScaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
	return m
}

// Sub returns m − o element-wise.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.assertSameShape(o, "sub")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Mul returns the element-wise (Hadamard) product m ⊙ o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	m.assertSameShape(o, "mul")
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace multiplies every element by s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector returns m with the 1×Cols vector v added to each row.
func (m *Matrix) AddRowVector(v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowVector wants 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
	return out
}

// AddRowVectorInPlace adds the 1×Cols vector v to each row of m and
// returns m.
func (m *Matrix) AddRowVectorInPlace(v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowVector wants 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
	return m
}

// MulColVector returns m with each row i scaled by v[i] (v is Rows×1).
func (m *Matrix) MulColVector(v *Matrix) *Matrix {
	if v.Cols != 1 || v.Rows != m.Rows {
		panic(fmt.Sprintf("tensor: mulColVector wants %dx1, got %dx%d", m.Rows, v.Rows, v.Cols))
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := out.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	return out
}

// MulColVectorInPlace scales each row i of m by v[i] (v is Rows×1) and
// returns m.
func (m *Matrix) MulColVectorInPlace(v *Matrix) *Matrix {
	if v.Cols != 1 || v.Rows != m.Rows {
		panic(fmt.Sprintf("tensor: mulColVector wants %dx1, got %dx%d", m.Rows, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	return m
}

// ConcatCols returns [m ; o] stacked horizontally (same row count).
func (m *Matrix) ConcatCols(o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: concatCols row mismatch %d vs %d", m.Rows, o.Rows))
	}
	out := New(m.Rows, m.Cols+o.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Cols:], m.Row(i))
		copy(out.Data[i*out.Cols+m.Cols:], o.Row(i))
	}
	return out
}

// ConcatColsInto writes [a ; b] stacked horizontally into dst, which
// must be a.Rows × (a.Cols+b.Cols) and must not alias a or b.
func ConcatColsInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: concatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic(fmt.Sprintf("tensor: concatColsInto wants %dx%d, got %dx%d", a.Rows, a.Cols+b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		copy(dst.Data[i*dst.Cols:], a.Row(i))
		copy(dst.Data[i*dst.Cols+a.Cols:], b.Row(i))
	}
}

// ConcatRows returns m stacked on top of o (same column count).
func (m *Matrix) ConcatRows(o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: concatRows col mismatch %d vs %d", m.Cols, o.Cols))
	}
	out := New(m.Rows+o.Rows, m.Cols)
	copy(out.Data, m.Data)
	copy(out.Data[len(m.Data):], o.Data)
	return out
}

// SliceCols returns columns [from, to) as a new matrix.
func (m *Matrix) SliceCols(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("tensor: sliceCols [%d,%d) of %d cols", from, to, m.Cols))
	}
	out := New(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out
}

// SelectRows gathers the given row indices into a new matrix.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SelectRowsInto gathers the given row indices of m into dst, which
// must be len(idx) × m.Cols and must not alias m.
func SelectRowsInto(dst, m *Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: selectRowsInto wants %dx%d, got %dx%d", len(idx), m.Cols, dst.Rows, dst.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(Σ mᵢⱼ²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns a new matrix with f applied element-wise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Equal reports element-wise equality within tolerance eps.
func (m *Matrix) Equal(o *Matrix, eps float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d [", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}
