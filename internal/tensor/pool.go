package tensor

import (
	"math/bits"
	"sync"
)

// pool.go is the scratch arena behind the tape-free inference path: a
// shape-keyed matrix pool plus capacity-class slice pools for the CSR
// buffers compiled per audit. The audit hot path runs the same shapes
// over and over (model layer sizes × sampled-subgraph sizes), so pooled
// buffers hit almost always and the steady state allocates nothing.
//
// Ownership is strict: a Get hands out an exclusively owned buffer; a
// Put transfers it back. Buffers are zeroed on Get, not on Put, so the
// accumulate-style kernels (MatMulInto, CSR.MatMulInto) can use them
// directly.

// matrixPools maps an exact (rows, cols) shape to its sync.Pool. Exact
// shape keying (rather than capacity classes) keeps Row slicing and the
// kernels' dimension checks trivial; the shape population is small and
// stable in practice.
var matrixPools sync.Map // shapeKey → *sync.Pool of *Matrix

type shapeKey struct{ rows, cols int }

func matrixPool(rows, cols int) *sync.Pool {
	k := shapeKey{rows, cols}
	if p, ok := matrixPools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := matrixPools.LoadOrStore(k, &sync.Pool{})
	return p.(*sync.Pool)
}

// GetMatrix returns a zeroed rows×cols matrix from the shape pool,
// allocating only when the pool is empty. Pair with PutMatrix.
func GetMatrix(rows, cols int) *Matrix {
	if m, _ := matrixPool(rows, cols).Get().(*Matrix); m != nil {
		m.Zero()
		return m
	}
	return New(rows, cols)
}

// PutMatrix returns m to its shape pool. m must not be used afterwards;
// nil and zero-sized matrices are dropped.
func PutMatrix(m *Matrix) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	matrixPool(m.Rows, m.Cols).Put(m)
}

// Slice pools are keyed by power-of-two capacity class. Get allocates
// with an exact power-of-two capacity so every pooled slice re-enters
// its own class on Put; foreign slices (non-power-of-two capacity) are
// silently dropped rather than poisoning a class.
const numSliceClasses = 28 // up to 2^27 elements (1 GiB of float64)

var (
	intPools   [numSliceClasses]sync.Pool
	floatPools [numSliceClasses]sync.Pool
)

// sliceClass returns the pool class holding capacities of exactly 2^c
// with 2^c >= n, or -1 when n is too large to pool.
func sliceClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c >= numSliceClasses {
		return -1
	}
	return c
}

// GetInts returns a zeroed length-n int slice from the capacity-class
// pool. Pair with PutInts.
func GetInts(n int) []int {
	if n == 0 {
		return nil
	}
	c := sliceClass(n)
	if c < 0 {
		return make([]int, n)
	}
	if s, _ := intPools[c].Get().([]int); s != nil {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]int, n, 1<<c)
}

// PutInts returns s to its capacity-class pool. Slices whose capacity is
// not an exact power of two (not produced by GetInts) are dropped.
func PutInts(s []int) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	if cls := sliceClass(c); cls >= 0 {
		intPools[cls].Put(s[:0]) //nolint:staticcheck // slice header boxing is accepted
	}
}

// GetFloats returns a zeroed length-n float64 slice from the
// capacity-class pool. Pair with PutFloats.
func GetFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sliceClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if s, _ := floatPools[c].Get().([]float64); s != nil {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n, 1<<c)
}

// PutFloats returns s to its capacity-class pool; see PutInts.
func PutFloats(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	if cls := sliceClass(c); cls >= 0 {
		floatPools[cls].Put(s[:0]) //nolint:staticcheck // slice header boxing is accepted
	}
}
