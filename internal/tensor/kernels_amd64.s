//go:build amd64

#include "textflag.h"

// func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func daxpyAVX2(dst, src []float64, alpha float64)
// dst[j] += alpha*src[j]; len(dst) is a positive multiple of 8.
// VMULPD+VADDPD, never FMA: per element this rounds the product first,
// then the sum — exactly like the scalar Go loop it replaces, so the
// float64 path stays bitwise-reference.
TEXT ·daxpyAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSD alpha+48(FP), Y0

daxpy_loop:
	VMULPD  (SI), Y0, Y1
	VMULPD  32(SI), Y0, Y2
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $8, CX
	JNZ     daxpy_loop
	VZEROUPPER
	RET

// func saxpyAVX2(dst, src []float32, alpha float32)
// dst[j] += alpha*src[j]; len(dst) is a positive multiple of 8. FMA.
TEXT ·saxpyAVX2(SB), NOSPLIT, $0-52
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSS alpha+48(FP), Y0

saxpy_loop:
	VMOVUPS     (SI), Y1
	VFMADD213PS (DI), Y0, Y1
	VMOVUPS     Y1, (DI)
	ADDQ        $32, SI
	ADDQ        $32, DI
	SUBQ        $8, CX
	JNZ         saxpy_loop
	VZEROUPPER
	RET

// func sgemmRowJ32(drow, arow, b []float32, ldb int)
// 32-column output tile held in Y1..Y4 across the whole k loop:
// per k, one broadcast of arow[k] and four FMAs against B row k.
TEXT ·sgemmRowJ32(SB), NOSPLIT, $0-80
	MOVQ    drow_base+0(FP), DI
	MOVQ    arow_base+24(FP), SI
	MOVQ    arow_len+32(FP), CX
	MOVQ    b_base+48(FP), DX
	MOVQ    ldb+72(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VMOVUPS 64(DI), Y3
	VMOVUPS 96(DI), Y4
	TESTQ   CX, CX
	JZ      sgemm32_done

sgemm32_loop:
	VBROADCASTSS (SI), Y0
	VFMADD231PS  (DX), Y0, Y1
	VFMADD231PS  32(DX), Y0, Y2
	VFMADD231PS  64(DX), Y0, Y3
	VFMADD231PS  96(DX), Y0, Y4
	ADDQ         $4, SI
	ADDQ         R8, DX
	DECQ         CX
	JNZ          sgemm32_loop

sgemm32_done:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	VZEROUPPER
	RET

// func sgemmRowJ16(drow, arow, b []float32, ldb int)
TEXT ·sgemmRowJ16(SB), NOSPLIT, $0-80
	MOVQ    drow_base+0(FP), DI
	MOVQ    arow_base+24(FP), SI
	MOVQ    arow_len+32(FP), CX
	MOVQ    b_base+48(FP), DX
	MOVQ    ldb+72(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	TESTQ   CX, CX
	JZ      sgemm16_done

sgemm16_loop:
	VBROADCASTSS (SI), Y0
	VFMADD231PS  (DX), Y0, Y1
	VFMADD231PS  32(DX), Y0, Y2
	ADDQ         $4, SI
	ADDQ         R8, DX
	DECQ         CX
	JNZ          sgemm16_loop

sgemm16_done:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VZEROUPPER
	RET

// func sgemmRowJ8(drow, arow, b []float32, ldb int)
TEXT ·sgemmRowJ8(SB), NOSPLIT, $0-80
	MOVQ    drow_base+0(FP), DI
	MOVQ    arow_base+24(FP), SI
	MOVQ    arow_len+32(FP), CX
	MOVQ    b_base+48(FP), DX
	MOVQ    ldb+72(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	TESTQ   CX, CX
	JZ      sgemm8_done

sgemm8_loop:
	VBROADCASTSS (SI), Y0
	VFMADD231PS  (DX), Y0, Y1
	ADDQ         $4, SI
	ADDQ         R8, DX
	DECQ         CX
	JNZ          sgemm8_loop

sgemm8_done:
	VMOVUPS Y1, (DI)
	VZEROUPPER
	RET

// func sgemmRows4J16(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int)
//
// Four consecutive output rows × 16 columns in one pass: eight
// register-resident accumulators, so each k step loads the two b
// vectors once and feeds four independent FMA chains per vector —
// amortizing the B-panel traffic 4× and hiding the FMA latency that
// serializes the one-row kernels.
TEXT ·sgemmRows4J16(SB), NOSPLIT, $0-104
	MOVQ d_base+0(FP), DI
	MOVQ ldd+24(FP), R10
	SHLQ $2, R10               // d row stride in bytes
	MOVQ a_base+32(FP), SI
	MOVQ lda+56(FP), R9        // a row stride in elements
	MOVQ k+64(FP), CX
	MOVQ b_base+72(FP), DX
	MOVQ ldb+96(FP), R8
	SHLQ $2, R8                // b row stride in bytes

	LEAQ (DI)(R10*1), R11      // d row 1
	LEAQ (R11)(R10*1), R12     // d row 2
	LEAQ (R12)(R10*1), R13     // d row 3
	LEAQ (R9)(R9*1), R14       // 2*lda (elements)
	LEAQ (R9)(R14*1), R15      // 3*lda (elements)

	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS (R11), Y2
	VMOVUPS 32(R11), Y3
	VMOVUPS (R12), Y4
	VMOVUPS 32(R12), Y5
	VMOVUPS (R13), Y6
	VMOVUPS 32(R13), Y7
	TESTQ   CX, CX
	JZ      sgemm4x16_done

sgemm4x16_loop:
	VMOVUPS      (DX), Y8
	VMOVUPS      32(DX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS (SI)(R9*4), Y11
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS (SI)(R14*4), Y10
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VBROADCASTSS (SI)(R15*4), Y11
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y9, Y11, Y7
	ADDQ         $4, SI
	ADDQ         R8, DX
	DECQ         CX
	JNZ          sgemm4x16_loop

sgemm4x16_done:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (R11)
	VMOVUPS Y3, 32(R11)
	VMOVUPS Y4, (R12)
	VMOVUPS Y5, 32(R12)
	VMOVUPS Y6, (R13)
	VMOVUPS Y7, 32(R13)
	VZEROUPPER
	RET

// func sgemmRows4J8(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int)
//
// Four consecutive output rows × 8 columns: same structure as
// sgemmRows4J16 with one b vector and four accumulators.
TEXT ·sgemmRows4J8(SB), NOSPLIT, $0-104
	MOVQ d_base+0(FP), DI
	MOVQ ldd+24(FP), R10
	SHLQ $2, R10
	MOVQ a_base+32(FP), SI
	MOVQ lda+56(FP), R9
	MOVQ k+64(FP), CX
	MOVQ b_base+72(FP), DX
	MOVQ ldb+96(FP), R8
	SHLQ $2, R8

	LEAQ (DI)(R10*1), R11
	LEAQ (R11)(R10*1), R12
	LEAQ (R12)(R10*1), R13
	LEAQ (R9)(R9*1), R14
	LEAQ (R9)(R14*1), R15

	VMOVUPS (DI), Y0
	VMOVUPS (R11), Y1
	VMOVUPS (R12), Y2
	VMOVUPS (R13), Y3
	TESTQ   CX, CX
	JZ      sgemm4x8_done

sgemm4x8_loop:
	VMOVUPS      (DX), Y8
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VBROADCASTSS (SI)(R9*4), Y11
	VFMADD231PS  Y8, Y11, Y1
	VBROADCASTSS (SI)(R14*4), Y10
	VFMADD231PS  Y8, Y10, Y2
	VBROADCASTSS (SI)(R15*4), Y11
	VFMADD231PS  Y8, Y11, Y3
	ADDQ         $4, SI
	ADDQ         R8, DX
	DECQ         CX
	JNZ          sgemm4x8_loop

sgemm4x8_done:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (R11)
	VMOVUPS Y2, (R12)
	VMOVUPS Y3, (R13)
	VZEROUPPER
	RET

// func sscal32AVX2(v []float32, alpha float32)
// v[j] *= alpha, 8-wide. len(v) must be a positive multiple of 8.
TEXT ·sscal32AVX2(SB), NOSPLIT, $0-28
	MOVQ         v_base+0(FP), DI
	MOVQ         v_len+8(FP), CX
	VBROADCASTSS alpha+24(FP), Y0
	SHRQ         $3, CX

sscal_loop:
	VMULPS  (DI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, DI
	DECQ    CX
	JNZ     sscal_loop

	VZEROUPPER
	RET

// Shared constant table for the vectorized float32 transcendentals:
// Cephes expf reduction x = n·ln2 + r and degree-7 minimax polynomial,
// the same constants as the scalar Exp32.
DATA exp32consts<>+0x00(SB)/4, $0x42b00000 // 88.0   clamp hi
DATA exp32consts<>+0x04(SB)/4, $0xc2ae0000 // -87.0  clamp lo
DATA exp32consts<>+0x08(SB)/4, $0x3fb8aa3b // log2(e)
DATA exp32consts<>+0x0c(SB)/4, $0x3f318000 // C1 = 0.693359375
DATA exp32consts<>+0x10(SB)/4, $0xb95e8083 // C2 = -2.12194440e-4
DATA exp32consts<>+0x14(SB)/4, $0x39506967 // P0 = 1.9875691500e-4
DATA exp32consts<>+0x18(SB)/4, $0x3ab743ce // P1 = 1.3981999507e-3
DATA exp32consts<>+0x1c(SB)/4, $0x3c088908 // P2 = 8.3334519073e-3
DATA exp32consts<>+0x20(SB)/4, $0x3d2aa9c1 // P3 = 4.1665795894e-2
DATA exp32consts<>+0x24(SB)/4, $0x3e2aaa94 // P4 = 1.6666665459e-1
DATA exp32consts<>+0x28(SB)/4, $0x3f000008 // P5 = 5.0000001201e-1
DATA exp32consts<>+0x2c(SB)/4, $0x3f800000 // 1.0 (float) == 127<<23 (exponent bias)
GLOBL exp32consts<>(SB), RODATA, $48

// EXP32_LOAD_CONSTS broadcasts the table into Y4..Y15, leaving Y0..Y3
// as scratch for EXP32_CORE.
#define EXP32_LOAD_CONSTS \
	VBROADCASTSS exp32consts<>+0x00(SB), Y4  \
	VBROADCASTSS exp32consts<>+0x04(SB), Y5  \
	VBROADCASTSS exp32consts<>+0x08(SB), Y6  \
	VBROADCASTSS exp32consts<>+0x0c(SB), Y7  \
	VBROADCASTSS exp32consts<>+0x10(SB), Y8  \
	VBROADCASTSS exp32consts<>+0x14(SB), Y9  \
	VBROADCASTSS exp32consts<>+0x18(SB), Y10 \
	VBROADCASTSS exp32consts<>+0x1c(SB), Y11 \
	VBROADCASTSS exp32consts<>+0x20(SB), Y12 \
	VBROADCASTSS exp32consts<>+0x24(SB), Y13 \
	VBROADCASTSS exp32consts<>+0x28(SB), Y14 \
	VBROADCASTSS exp32consts<>+0x2c(SB), Y15

// EXP32_CORE computes Y3 = e^Y0 for 8 lanes, clobbering Y0..Y3. Inputs
// are clamped to [-87, 88] (so ±Inf and NaN lanes produce finite
// values); n = rint(x·log2e) uses round-to-nearest-even and the r
// reduction and polynomial use FMA, so lanes may differ from the scalar
// Exp32 in the final ulp. Step by step: clamp x; n = rint(x·log2e);
// r = x - n·C1 - n·C2; build 2^n bits as (n+127)<<23 reusing bits(1.0)
// as the bias; Horner q = ((((P0·r+P1)·r+P2)·r+P3)·r+P4)·r+P5; then
// y = (q·r² + r + 1)·2^n.
#define EXP32_CORE \
	VMINPS       Y4, Y0, Y0   \
	VMAXPS       Y5, Y0, Y0   \
	VMULPS       Y6, Y0, Y1   \
	VROUNDPS     $0, Y1, Y1   \
	VMOVAPS      Y0, Y2       \
	VFNMADD231PS Y7, Y1, Y2   \
	VFNMADD231PS Y8, Y1, Y2   \
	VCVTPS2DQ    Y1, Y1       \
	VPSLLD       $23, Y1, Y1  \
	VPADDD       Y15, Y1, Y1  \
	VMULPS       Y2, Y2, Y0   \
	VMOVAPS      Y9, Y3       \
	VFMADD213PS  Y10, Y2, Y3  \
	VFMADD213PS  Y11, Y2, Y3  \
	VFMADD213PS  Y12, Y2, Y3  \
	VFMADD213PS  Y13, Y2, Y3  \
	VFMADD213PS  Y14, Y2, Y3  \
	VFMADD213PS  Y2, Y0, Y3   \
	VADDPS       Y15, Y3, Y3  \
	VMULPS       Y1, Y3, Y3

// func exp32AVX2(v []float32)
// v[i] = e^v[i]; len(v) is a positive multiple of 8.
TEXT ·exp32AVX2(SB), NOSPLIT, $0-24
	MOVQ v_base+0(FP), DI
	MOVQ v_len+8(FP), CX
	EXP32_LOAD_CONSTS

exp32_loop:
	VMOVUPS (DI), Y0
	EXP32_CORE
	VMOVUPS Y3, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     exp32_loop
	VZEROUPPER
	RET

// func tanh32AVX2(v []float32)
// v[i] = tanh(v[i]) via t = e^{2x}, (t-1)/(t+1); len(v) is a positive
// multiple of 8. The exp clamp bounds 2x, so |x| ≥ 44 saturates to ±1.
TEXT ·tanh32AVX2(SB), NOSPLIT, $0-24
	MOVQ v_base+0(FP), DI
	MOVQ v_len+8(FP), CX
	EXP32_LOAD_CONSTS

tanh32_loop:
	VMOVUPS (DI), Y0
	VADDPS  Y0, Y0, Y0 // 2x
	EXP32_CORE
	VSUBPS  Y15, Y3, Y0 // t - 1
	VADDPS  Y15, Y3, Y1 // t + 1
	VDIVPS  Y1, Y0, Y3
	VMOVUPS Y3, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     tanh32_loop
	VZEROUPPER
	RET

// func sigmoid32AVX2(v []float32)
// v[i] = 1/(1+e^{-v[i]}); len(v) is a positive multiple of 8. The exp
// clamp keeps e^{-x} finite (e^88 < MaxFloat32), so no sign branch is
// needed.
TEXT ·sigmoid32AVX2(SB), NOSPLIT, $0-24
	MOVQ v_base+0(FP), DI
	MOVQ v_len+8(FP), CX
	EXP32_LOAD_CONSTS

sigmoid32_loop:
	VMOVUPS (DI), Y2
	VXORPS  Y0, Y0, Y0
	VSUBPS  Y2, Y0, Y0 // -x
	EXP32_CORE
	VADDPS  Y15, Y3, Y1 // e^{-x} + 1
	VDIVPS  Y1, Y15, Y3 // 1/(e^{-x}+1)
	VMOVUPS Y3, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     sigmoid32_loop
	VZEROUPPER
	RET

// func relu32AVX2(v []float32)
// v[i] = max(v[i], 0); len(v) is a positive multiple of 8. Matches the
// scalar branch except that -0 maps to +0 (VMAXPS returns the second
// source on ties), which is invisible downstream.
TEXT ·relu32AVX2(SB), NOSPLIT, $0-24
	MOVQ   v_base+0(FP), DI
	MOVQ   v_len+8(FP), CX
	VXORPS Y0, Y0, Y0

relu32_loop:
	VMAXPS  (DI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     relu32_loop
	VZEROUPPER
	RET

// func csrRowJ32(drow []float32, cols []int32, w, h []float32, ldh int)
// Sparse row aggregate: drow[j] += w[p]*h[cols[p]*ldh+j] over all
// nonzeros p, with the 32-column tile register-resident throughout.
TEXT ·csrRowJ32(SB), NOSPLIT, $0-104
	MOVQ    drow_base+0(FP), DI
	MOVQ    cols_base+24(FP), SI
	MOVQ    cols_len+32(FP), CX
	MOVQ    w_base+48(FP), R9
	MOVQ    h_base+72(FP), DX
	MOVQ    ldh+96(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VMOVUPS 64(DI), Y3
	VMOVUPS 96(DI), Y4
	TESTQ   CX, CX
	JZ      csr32_done

csr32_loop:
	MOVL         (SI), AX
	IMULQ        R8, AX
	ADDQ         DX, AX
	VBROADCASTSS (R9), Y0
	VFMADD231PS  (AX), Y0, Y1
	VFMADD231PS  32(AX), Y0, Y2
	VFMADD231PS  64(AX), Y0, Y3
	VFMADD231PS  96(AX), Y0, Y4
	ADDQ         $4, SI
	ADDQ         $4, R9
	DECQ         CX
	JNZ          csr32_loop

csr32_done:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	VZEROUPPER
	RET

// func csrRowJ16(drow []float32, cols []int32, w, h []float32, ldh int)
TEXT ·csrRowJ16(SB), NOSPLIT, $0-104
	MOVQ    drow_base+0(FP), DI
	MOVQ    cols_base+24(FP), SI
	MOVQ    cols_len+32(FP), CX
	MOVQ    w_base+48(FP), R9
	MOVQ    h_base+72(FP), DX
	MOVQ    ldh+96(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	TESTQ   CX, CX
	JZ      csr16_done

csr16_loop:
	MOVL         (SI), AX
	IMULQ        R8, AX
	ADDQ         DX, AX
	VBROADCASTSS (R9), Y0
	VFMADD231PS  (AX), Y0, Y1
	VFMADD231PS  32(AX), Y0, Y2
	ADDQ         $4, SI
	ADDQ         $4, R9
	DECQ         CX
	JNZ          csr16_loop

csr16_done:
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VZEROUPPER
	RET

// func csrRowJ8(drow []float32, cols []int32, w, h []float32, ldh int)
TEXT ·csrRowJ8(SB), NOSPLIT, $0-104
	MOVQ    drow_base+0(FP), DI
	MOVQ    cols_base+24(FP), SI
	MOVQ    cols_len+32(FP), CX
	MOVQ    w_base+48(FP), R9
	MOVQ    h_base+72(FP), DX
	MOVQ    ldh+96(FP), R8
	SHLQ    $2, R8
	VMOVUPS (DI), Y1
	TESTQ   CX, CX
	JZ      csr8_done

csr8_loop:
	MOVL         (SI), AX
	IMULQ        R8, AX
	ADDQ         DX, AX
	VBROADCASTSS (R9), Y0
	VFMADD231PS  (AX), Y0, Y1
	ADDQ         $4, SI
	ADDQ         $4, R9
	DECQ         CX
	JNZ          csr8_loop

csr8_done:
	VMOVUPS Y1, (DI)
	VZEROUPPER
	RET
