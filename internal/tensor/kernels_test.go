package tensor

import (
	"math"
	"testing"
)

// naiveMatMul is the historical scalar triple loop, kept verbatim as the
// bitwise reference for the blocked kernel.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := out.Data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return out
}

func randMat(rng *RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// sprinkle exact zeros so the skip-zero branch is exercised
	for i := 0; i < len(m.Data); i += 17 {
		m.Data[i] = 0
	}
	return m
}

// TestMatMulBlockedBitwiseEqualsNaive is the kernel-equivalence smoke
// pinned by scripts/ci.sh: the blocked (and SIMD, when available)
// float64 kernel must be bitwise-identical to the naive scalar loop for
// shapes on both sides of the panel and parallel thresholds.
func TestMatMulBlockedBitwiseEqualsNaive(t *testing.T) {
	rng := NewRNG(7)
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {64, 16, 32}, {64, 33, 9},
		{128, 200, 300}, // kd*n exceeds one panel → blocked path
		{257, 300, 129}, // blocked + parallel path
	}
	for _, s := range shapes {
		a := randMat(rng, s[0], s[1])
		b := randMat(rng, s[1], s[2])
		got := a.MatMul(b)
		want := naiveMatMul(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: element %d differs: %v vs %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulPartitionIndependence pins the contract the sweep engine
// relies on: any contiguous row partition of MatMulRangeInto produces
// output bitwise equal to a single MatMulInto call.
func TestMatMulPartitionIndependence(t *testing.T) {
	rng := NewRNG(11)
	a := randMat(rng, 150, 80)
	b := randMat(rng, 80, 90)
	whole := New(150, 90)
	MatMulInto(whole, a, b)
	parts := New(150, 90)
	for lo := 0; lo < 150; lo += 37 {
		hi := lo + 37
		if hi > 150 {
			hi = 150
		}
		MatMulRangeInto(parts, a, b, lo, hi)
	}
	for i := range whole.Data {
		if whole.Data[i] != parts.Data[i] {
			t.Fatalf("element %d differs across partitions", i)
		}
	}
}

func TestDaxpyBitwiseEqualsScalar(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 64, 100} {
		dst := make([]float64, n)
		ref := make([]float64, n)
		src := make([]float64, n)
		for i := range src {
			dst[i] = rng.NormFloat64()
			ref[i] = dst[i]
			src[i] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		daxpy(dst, src, alpha)
		for i := range ref {
			ref[i] += alpha * src[i]
		}
		for i := range ref {
			if dst[i] != ref[i] {
				t.Fatalf("n=%d: element %d differs: %v vs %v", n, i, dst[i], ref[i])
			}
		}
	}
}

// TestSgemmRowMatchesGeneric compares the SIMD float32 row kernel to the
// portable loop. FMA changes rounding, so this is a tolerance check.
func TestSgemmRowMatchesGeneric(t *testing.T) {
	if !simdEnabled {
		t.Skip("no SIMD kernels on this machine")
	}
	rng := NewRNG(5)
	for _, n := range []int{1, 5, 8, 16, 24, 32, 33, 40, 64, 71} {
		for _, kd := range []int{1, 3, 16, 40} {
			arow := make([]float32, kd)
			b := make([]float32, kd*n)
			for i := range arow {
				arow[i] = float32(rng.NormFloat64())
			}
			for i := range b {
				b[i] = float32(rng.NormFloat64())
			}
			got := make([]float32, n)
			want := make([]float32, n)
			sgemmRow(got, arow, b, n)
			sgemmRowGeneric(want, arow, b, n)
			for j := range want {
				if d := math.Abs(float64(got[j] - want[j])); d > 1e-4 {
					t.Fatalf("n=%d kd=%d: col %d differs by %g (%v vs %v)", n, kd, j, d, got[j], want[j])
				}
			}
		}
	}
}

func TestCsrRowMatchesGeneric(t *testing.T) {
	if !simdEnabled {
		t.Skip("no SIMD kernels on this machine")
	}
	rng := NewRNG(9)
	const hRows = 20
	for _, n := range []int{1, 8, 16, 32, 48, 50} {
		h := make([]float32, hRows*n)
		for i := range h {
			h[i] = float32(rng.NormFloat64())
		}
		for _, nnz := range []int{0, 1, 5, 19} {
			cols := make([]int32, nnz)
			w := make([]float32, nnz)
			for p := range cols {
				cols[p] = int32((p * 7) % hRows)
				w[p] = float32(rng.NormFloat64())
			}
			got := make([]float32, n)
			want := make([]float32, n)
			csrRow(got, cols, w, h, n)
			csrRowGeneric(want, cols, w, h, n)
			for j := range want {
				if d := math.Abs(float64(got[j] - want[j])); d > 1e-4 {
					t.Fatalf("n=%d nnz=%d: col %d differs by %g", n, nnz, j, d)
				}
			}
		}
	}
}

func TestExp32Accuracy(t *testing.T) {
	for x0 := -87.0; x0 <= 88.0; x0 += 0.0137 {
		x := float64(float32(x0)) // quantize the input once so only kernel error is measured
		got := float64(Exp32(float32(x)))
		want := math.Exp(x)
		rel := math.Abs(got-want) / want
		if rel > 5e-7 {
			t.Fatalf("Exp32(%g): rel err %g", x, rel)
		}
	}
	if Exp32(1000) != float32(math.Inf(1)) {
		t.Fatal("Exp32 overflow should be +Inf")
	}
	if Exp32(-1000) != 0 {
		t.Fatal("Exp32 underflow should be 0")
	}
}

func TestTanh32Accuracy(t *testing.T) {
	for x := -12.0; x <= 12.0; x += 0.0091 {
		got := float64(Tanh32(float32(x)))
		want := math.Tanh(x)
		if d := math.Abs(got - want); d > 1e-6 {
			t.Fatalf("Tanh32(%g): abs err %g", x, d)
		}
	}
}

func TestSigmoid32Accuracy(t *testing.T) {
	for x := -30.0; x <= 30.0; x += 0.017 {
		got := float64(Sigmoid32(float32(x)))
		want := SigmoidScalar(x)
		if d := math.Abs(got - want); d > 1e-6 {
			t.Fatalf("Sigmoid32(%g): abs err %g", x, d)
		}
	}
}

// TestVectorTranscendentals32Accuracy holds the 8-wide exp/tanh/sigmoid
// kernels (and their scalar tails) to the same error budget as the
// scalar versions, on lengths that exercise both the vector body and
// the tail.
func TestVectorTranscendentals32Accuracy(t *testing.T) {
	const n = 1003 // 125 vector iterations + 3-element scalar tail
	xs := make([]float32, n)
	rng := NewRNG(29)
	for i := range xs {
		xs[i] = float32(rng.NormFloat64() * 20)
	}
	xs[0], xs[1], xs[2] = -87, 0, 88

	v := append([]float32(nil), xs...)
	Exp32InPlace(v)
	for i, x := range xs {
		want := math.Exp(float64(x))
		if rel := math.Abs(float64(v[i])-want) / want; rel > 5e-7 {
			t.Fatalf("Exp32InPlace[%d](%g): rel err %g", i, x, rel)
		}
	}

	v = append([]float32(nil), xs...)
	tanh32Slice(v)
	for i, x := range xs {
		if d := math.Abs(float64(v[i]) - math.Tanh(float64(x))); d > 1e-6 {
			t.Fatalf("tanh32Slice[%d](%g): abs err %g", i, x, d)
		}
	}

	v = append([]float32(nil), xs...)
	sigmoid32Slice(v)
	for i, x := range xs {
		if d := math.Abs(float64(v[i]) - SigmoidScalar(float64(x))); d > 1e-6 {
			t.Fatalf("sigmoid32Slice[%d](%g): abs err %g", i, x, d)
		}
	}
}

func TestReLU32InPlaceMatchesScalar(t *testing.T) {
	rng := NewRNG(31)
	m := New32(7, 13) // 91 elements: vector body + 3-element tail
	want := make([]float32, len(m.Data))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
		want[i] = m.Data[i]
		if want[i] < 0 {
			want[i] = 0
		}
	}
	ReLU32InPlace(m)
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("element %d: got %g want %g", i, m.Data[i], want[i])
		}
	}
}

// TestMatMul32NarrowAgainstGeneric pins the 1- and 2-column fast paths
// (per-row dot products) to the generic row kernel within float32
// reassociation tolerance.
func TestMatMul32NarrowAgainstGeneric(t *testing.T) {
	rng := NewRNG(37)
	for _, n := range []int{1, 2} {
		for _, k := range []int{1, 3, 8, 16, 33} {
			a := Quantize(randMat(rng, 11, k))
			b := Quantize(randMat(rng, k, n))
			got := New32(11, n)
			MatMul32Into(got, a, b)
			want := make([]float32, 11*n)
			for i := 0; i < 11; i++ {
				sgemmRowGeneric(want[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, n)
			}
			for i := range want {
				if d := math.Abs(float64(got.Data[i]) - float64(want[i])); d > 1e-5 {
					t.Fatalf("n=%d k=%d element %d differs by %g", n, k, i, d)
				}
			}
		}
	}
}

// TestMatMul32FourRowAgainstOneRow pins the 4-row register-tiled path
// bitwise against the one-row kernels: both accumulate each output row
// in the same ascending-k FMA order, so blocking rows must not change a
// single bit. Row counts straddle the 4-row blocking (remainder rows 0,
// 1 and 3), and n=20 exercises the generic <8-column tail inside
// sgemmRows4.
func TestMatMul32FourRowAgainstOneRow(t *testing.T) {
	if !simdEnabled {
		t.Skip("portable build: no 4-row kernel")
	}
	rng := NewRNG(91)
	for _, rows := range []int{4, 5, 7, 12} {
		for _, n := range []int{8, 16, 20, 32} {
			for _, k := range []int{1, 9, 16} {
				a := Quantize(randMat(rng, rows, k))
				b := Quantize(randMat(rng, k, n))
				got := New32(rows, n)
				MatMul32Into(got, a, b)
				want := New32(rows, n)
				for i := 0; i < rows; i++ {
					sgemmRow(want.Data[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, n)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("rows=%d n=%d k=%d element %d: 4-row %g vs 1-row %g",
							rows, n, k, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestMatMul32AgainstFloat64(t *testing.T) {
	rng := NewRNG(21)
	a := randMat(rng, 60, 33)
	b := randMat(rng, 33, 24)
	want := a.MatMul(b)
	a32, b32 := Quantize(a), Quantize(b)
	got := New32(60, 24)
	MatMul32Into(got, a32, b32)
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > 1e-4 {
			t.Fatalf("element %d differs by %g", i, d)
		}
	}
}

func TestCSR32MatMulAgainstGather(t *testing.T) {
	rng := NewRNG(23)
	h := randMat(rng, 10, 16)
	h32 := Quantize(h)
	c := &CSR32{
		NRows:   4,
		NCols:   10,
		RowPtr:  []int{0, 2, 2, 5, 6},
		ColIdx:  []int32{1, 3, 0, 9, 2, 7},
		Weights: []float32{0.5, 0.25, 1, -1, 2, 0.125},
	}
	dst := New32(4, 16)
	c.MatMulInto(dst, h32)
	for i := 0; i < c.NRows; i++ {
		want := make([]float64, 16)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			for j := 0; j < 16; j++ {
				want[j] += float64(c.Weights[p]) * float64(h32.At(int(c.ColIdx[p]), j))
			}
		}
		row := New32(1, 16)
		c.MatMulRowInto(row, h32, i)
		for j := 0; j < 16; j++ {
			if d := math.Abs(float64(dst.At(i, j)) - want[j]); d > 1e-4 {
				t.Fatalf("row %d col %d differs by %g", i, j, d)
			}
			if dst.At(i, j) != row.At(0, j) {
				t.Fatalf("MatMulRowInto row %d col %d differs from MatMulInto", i, j)
			}
		}
	}
}

// TestCSR32MatMulColsInto pins the strided column-block aggregation
// (multi-head attention writing each head into its slot) to the plain
// MatMulInto on a fresh destination.
func TestCSR32MatMulColsInto(t *testing.T) {
	rng := NewRNG(41)
	h := Quantize(randMat(rng, 10, 8))
	c := &CSR32{
		NRows:   4,
		NCols:   10,
		RowPtr:  []int{0, 2, 2, 5, 6},
		ColIdx:  []int32{1, 3, 0, 9, 2, 7},
		Weights: []float32{0.5, 0.25, 1, -1, 2, 0.125},
	}
	want := New32(4, 8)
	c.MatMulInto(want, h)
	dst := New32(4, 20)
	for i := range dst.Data {
		dst.Data[i] = -7 // poison outside the block
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			dst.Data[i*20+5+j] = 0
		}
	}
	c.MatMulColsInto(dst, 5, h, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 20; j++ {
			switch {
			case j < 5 || j >= 13:
				if dst.At(i, j) != -7 {
					t.Fatalf("row %d col %d outside the block was written", i, j)
				}
			default:
				if dst.At(i, j) != want.At(i, j-5) {
					t.Fatalf("row %d col %d: got %g want %g", i, j, dst.At(i, j), want.At(i, j-5))
				}
			}
		}
	}

	// hcols < h.Cols: aggregate only the leading 5 columns of h, with
	// h.Cols staying the row stride.
	narrow := New32(4, 20)
	for i := range narrow.Data {
		narrow.Data[i] = -7
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			narrow.Data[i*20+5+j] = 0
		}
	}
	c.MatMulColsInto(narrow, 5, h, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 20; j++ {
			switch {
			case j < 5 || j >= 10:
				if narrow.At(i, j) != -7 {
					t.Fatalf("narrow row %d col %d outside the block was written", i, j)
				}
			default:
				if narrow.At(i, j) != want.At(i, j-5) {
					t.Fatalf("narrow row %d col %d: got %g want %g", i, j, narrow.At(i, j), want.At(i, j-5))
				}
			}
		}
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	hits := make([]int32, 500)
	ParallelRows(500, 1<<20, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("row %d covered %d times", i, h)
		}
	}
}
