package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*)
// used everywhere in the repository so experiments are reproducible
// without pulling math/rand state through every API.
type RNG struct {
	state uint64
	// cached spare normal deviate for Box–Muller
	spare    float64
	hasSpare bool
}

// NewRNG seeds a generator; a zero seed is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal deviate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponential deviate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator, useful for parallel workers.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() | 1) }

// RandNormal fills a fresh rows×cols matrix with N(0, std²) values.
func RandNormal(rows, cols int, std float64, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// GlorotUniform returns a rows×cols matrix with Glorot/Xavier uniform
// initialization, the default for all linear layers in this repository.
func GlorotUniform(rows, cols int, rng *RNG) *Matrix {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
	return m
}
