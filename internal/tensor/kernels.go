package tensor

// Low-level kernel dispatch. Each kernel has a portable Go
// implementation and, on amd64 with AVX2+FMA, a vector one; simdEnabled
// is resolved once at init from CPUID (see kernels_amd64.go).
//
// Precision contract:
//   - float64 kernels are bitwise-identical to the scalar loops they
//     replace. daxpy performs round(round(a*s[j]) + d[j]) per element —
//     the AVX2 version uses separate VMULPD/VADDPD (never FMA), which
//     rounds exactly like the Go `d[j] += a * s[j]` it mirrors, and
//     element order never changes.
//   - float32 kernels are *not* bitwise-pinned: the AVX2 versions use
//     FMA and the serving path that consumes them is gated by an
//     explicit |Δlogit| tolerance (see DESIGN.md §13).

// simdEnabled reports whether the AVX2+FMA kernels are in use. It is a
// variable (not const) so tests can force the portable path.
var simdEnabled = false

// SIMDEnabled reports whether the vector kernels are active, so callers
// can pick layouts that only pay off under them (e.g. padding operands
// to full vector tiles).
func SIMDEnabled() bool { return simdEnabled }

// daxpy computes dst[j] += alpha*src[j] for j in [0, len(dst)).
// len(src) must be >= len(dst). Bitwise-identical on every platform.
func daxpy(dst, src []float64, alpha float64) {
	if simdEnabled && len(dst) >= 8 {
		m := len(dst) &^ 7
		daxpyAVX2(dst[:m], src[:m], alpha)
		dst, src = dst[m:], src[m:]
	}
	for j := range dst {
		dst[j] += alpha * src[j]
	}
}

// saxpy is the float32 counterpart of daxpy. The AVX2 version uses FMA,
// so results may differ from the portable loop in the last ulp.
func saxpy(dst, src []float32, alpha float32) {
	if simdEnabled && len(dst) >= 8 {
		m := len(dst) &^ 7
		saxpyAVX2(dst[:m], src[:m], alpha)
		dst, src = dst[m:], src[m:]
	}
	for j := range dst {
		dst[j] += alpha * src[j]
	}
}

// sgemmRow accumulates one dense output row: drow[j] += Σ_k arow[k] *
// b[k*ldb+j]. The row stays resident in registers across the whole k
// loop in the AVX2 kernels (32/16/8-column tiles), so each k step costs
// one broadcast plus n/8 FMAs with no intermediate stores.
func sgemmRow(drow, arow, b []float32, ldb int) {
	n := len(drow)
	if len(arow) == 0 || n == 0 {
		return
	}
	j := 0
	if simdEnabled {
		for ; j+32 <= n; j += 32 {
			sgemmRowJ32(drow[j:j+32], arow, b[j:], ldb)
		}
		if j+16 <= n {
			sgemmRowJ16(drow[j:j+16], arow, b[j:], ldb)
			j += 16
		}
		if j+8 <= n {
			sgemmRowJ8(drow[j:j+8], arow, b[j:], ldb)
			j += 8
		}
	}
	if j < n {
		sgemmRowGeneric(drow[j:], arow, b[j:], ldb)
	}
}

// sgemmRows4 accumulates four consecutive output rows (row stride ldd
// in d, lda in a, k inner terms) against b, column-tiled like sgemmRow:
// 16- then 8-wide vector tiles, generic per-row tail under 8 columns.
// Caller must ensure simdEnabled and that all four rows exist.
func sgemmRows4(d []float32, ldd int, a []float32, lda, k, n int, b []float32, ldb int) {
	j := 0
	for ; j+16 <= n; j += 16 {
		sgemmRows4J16(d[j:], ldd, a, lda, k, b[j:], ldb)
	}
	if j+8 <= n {
		sgemmRows4J8(d[j:], ldd, a, lda, k, b[j:], ldb)
		j += 8
	}
	if j < n {
		for r := 0; r < 4; r++ {
			sgemmRowGeneric(d[r*ldd+j:r*ldd+n], a[r*lda:r*lda+k], b[j:], ldb)
		}
	}
}

func sgemmRowGeneric(drow, arow, b []float32, ldb int) {
	for k, av := range arow {
		brow := b[k*ldb:]
		for j := range drow {
			drow[j] += av * brow[j]
		}
	}
}

// csrRow accumulates one sparse-aggregated row: drow[j] += Σ_p w[p] *
// h[cols[p]*ldh + j]. Same register-resident tiling as sgemmRow, with a
// gathered source row per nonzero.
func csrRow(drow []float32, cols []int32, w, h []float32, ldh int) {
	n := len(drow)
	if len(cols) == 0 || n == 0 {
		return
	}
	j := 0
	if simdEnabled {
		for ; j+32 <= n; j += 32 {
			csrRowJ32(drow[j:j+32], cols, w, h[j:], ldh)
		}
		if j+16 <= n {
			csrRowJ16(drow[j:j+16], cols, w, h[j:], ldh)
			j += 16
		}
		if j+8 <= n {
			csrRowJ8(drow[j:j+8], cols, w, h[j:], ldh)
			j += 8
		}
	}
	if j < n {
		csrRowGeneric(drow[j:], cols, w, h[j:], ldh)
	}
}

func csrRowGeneric(drow []float32, cols []int32, w, h []float32, ldh int) {
	for p, c := range cols {
		wp := w[p]
		hrow := h[int(c)*ldh:]
		for j := range drow {
			drow[j] += wp * hrow[j]
		}
	}
}
