//go:build amd64

package tensor

import "os"

// CPUID feature detection, hand-rolled so the package stays
// dependency-free. The vector kernels need AVX2 and FMA3, and the OS
// must have enabled YMM state saving (OSXSAVE + XCR0 bits 1|2).

func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

func init() {
	if os.Getenv("TURBO_NOSIMD") != "" {
		return
	}
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return
	}
	simdEnabled = true
}

// daxpyAVX2 computes dst[j] += alpha*src[j] with VMULPD+VADDPD (no FMA,
// to keep float64 rounding identical to the scalar loop).
// len(dst) must be a positive multiple of 8; len(src) >= len(dst).
func daxpyAVX2(dst, src []float64, alpha float64)

// saxpyAVX2 computes dst[j] += alpha*src[j] in float32 using FMA.
// len(dst) must be a positive multiple of 8; len(src) >= len(dst).
func saxpyAVX2(dst, src []float32, alpha float32)

// sgemmRowJ32 computes drow[j] += Σ_k arow[k]*b[k*ldb+j] for a 32-column
// tile held in four YMM accumulators across the whole k loop.
// len(drow) must be exactly 32 and b must cover (len(arow)-1)*ldb+32.
func sgemmRowJ32(drow, arow, b []float32, ldb int)

// sgemmRowJ16 is the 16-column variant of sgemmRowJ32.
func sgemmRowJ16(drow, arow, b []float32, ldb int)

// sgemmRowJ8 is the 8-column variant of sgemmRowJ32.
func sgemmRowJ8(drow, arow, b []float32, ldb int)

// sgemmRows4J16 accumulates four output rows × 16 columns at once:
// d[r*ldd+j] += Σ_k a[r*lda+k]*b[k*ldb+j] for r in 0..3, j in 0..15.
// Eight register-resident accumulators; each k step loads the b tile
// once and feeds four independent FMA chains, hiding the latency that
// serializes the one-row kernels. d must cover 3*ldd+16 elements and a
// must cover 3*lda+k.
func sgemmRows4J16(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int)

// sgemmRows4J8 is the 8-column variant of sgemmRows4J16.
func sgemmRows4J8(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int)

// sscal32AVX2 computes v[j] *= alpha 8-wide.
// len(v) must be a positive multiple of 8.
func sscal32AVX2(v []float32, alpha float32)

// relu32AVX2 computes v[i] = max(v[i], 0) 8-wide (-0 maps to +0,
// unlike the scalar branch; invisible downstream).
// len(v) must be a positive multiple of 8.
func relu32AVX2(v []float32)

// exp32AVX2 computes v[i] = e^v[i] 8-wide with the same Cephes
// reduction and polynomial as the scalar Exp32 (FMA and
// round-to-nearest-even, so lanes may differ from Exp32 in the final
// ulp; out-of-range and non-finite inputs clamp to [-87, 88]).
// len(v) must be a positive multiple of 8.
func exp32AVX2(v []float32)

// tanh32AVX2 computes v[i] = tanh(v[i]) via e^{2v}; same caveats and
// length contract as exp32AVX2.
func tanh32AVX2(v []float32)

// sigmoid32AVX2 computes v[i] = 1/(1+e^{-v[i]}); same caveats and
// length contract as exp32AVX2.
func sigmoid32AVX2(v []float32)

// csrRowJ32 computes drow[j] += Σ_p w[p]*h[cols[p]*ldh+j] for a
// 32-column tile held in registers across all nonzeros.
// len(drow) must be exactly 32; len(w) >= len(cols).
func csrRowJ32(drow []float32, cols []int32, w, h []float32, ldh int)

// csrRowJ16 is the 16-column variant of csrRowJ32.
func csrRowJ16(drow []float32, cols []int32, w, h []float32, ldh int)

// csrRowJ8 is the 8-column variant of csrRowJ32.
func csrRowJ8(drow []float32, cols []int32, w, h []float32, ldh int)
