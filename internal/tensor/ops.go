package tensor

import "math"

// ReLU returns max(0, x) element-wise.
func ReLU(m *Matrix) *Matrix {
	return m.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// ReLUInPlace clamps negative elements to 0 in place and returns m.
func ReLUInPlace(m *Matrix) *Matrix {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// Tanh returns tanh(x) element-wise.
func Tanh(m *Matrix) *Matrix { return m.Apply(math.Tanh) }

// TanhInPlace applies tanh element-wise in place and returns m.
func TanhInPlace(m *Matrix) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = math.Tanh(v)
	}
	return m
}

// Sigmoid returns 1/(1+e^-x) element-wise, computed stably.
func Sigmoid(m *Matrix) *Matrix { return m.Apply(SigmoidScalar) }

// SigmoidInPlace applies the stable logistic element-wise in place.
func SigmoidInPlace(m *Matrix) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = SigmoidScalar(v)
	}
	return m
}

// LeakyReLUInPlace applies x → x if x > 0 else slope·x in place.
func LeakyReLUInPlace(m *Matrix, slope float64) *Matrix {
	for i, v := range m.Data {
		if v <= 0 {
			m.Data[i] = slope * v
		}
	}
	return m
}

// SigmoidScalar computes the logistic function with overflow protection.
func SigmoidScalar(v float64) float64 {
	if v >= 0 {
		z := math.Exp(-v)
		return 1 / (1 + z)
	}
	z := math.Exp(v)
	return z / (1 + z)
}

// SoftmaxRows returns row-wise softmax with max-subtraction stability.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	SoftmaxRowsInto(out, m)
	return out
}

// SoftmaxRowsInPlace computes row-wise softmax in place and returns m.
func SoftmaxRowsInPlace(m *Matrix) *Matrix {
	SoftmaxRowsInto(m, m)
	return m
}

// SoftmaxRowsInto writes the row-wise softmax of m into dst (same
// shape); dst == m is allowed.
func SoftmaxRowsInto(dst, m *Matrix) {
	m.assertSameShape(dst, "softmaxRows")
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		dst := dst.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - mx)
			dst[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// LogSumExpRows returns a Rows×1 matrix of log(Σⱼ exp(mᵢⱼ)).
func LogSumExpRows(m *Matrix) *Matrix {
	out := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - mx)
		}
		out.Data[i] = mx + math.Log(sum)
	}
	return out
}

// SumRows returns a Rows×1 column vector of row sums.
func SumRows(m *Matrix) *Matrix {
	out := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// SumCols returns a 1×Cols row vector of column sums.
func SumCols(m *Matrix) *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Clamp limits v into [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
