package tensor

import (
	"math"
	"sort"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed should still produce a non-degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential must be non-negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean too far from 1: %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("not a permutation at %d: %d", i, v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(12)
	xs := []int{1, 2, 3, 4, 5}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sort.Ints(xs)
	for i, v := range xs {
		if v != i+1 {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(13)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams suspiciously correlated: %d matches", same)
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := NewRNG(14)
	m := GlorotUniform(30, 50, rng)
	limit := math.Sqrt(6.0 / 80.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("glorot value %v exceeds limit %v", v, limit)
		}
	}
	// Should not be all zeros / constant.
	if m.MaxAbs() == 0 {
		t.Fatal("glorot produced zeros")
	}
}

func TestRandNormalShape(t *testing.T) {
	m := RandNormal(3, 4, 2, NewRNG(15))
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
}
