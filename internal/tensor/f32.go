package tensor

import (
	"fmt"
	"sync"
)

// f32.go is the float32 serving backend: a Matrix32/CSR32 mirror of the
// float64 types driven by the FMA kernel set in kernels.go. It exists
// only for opt-in inference — training and the reference scoring path
// stay float64 — so the contract here is a bounded |Δlogit| versus the
// float64 kernels (gated at enable time, see internal/gnn ValidateF32),
// never bitwise equality.

// Matrix32 is a dense row-major matrix of float32 values.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zero-initialized float32 matrix of the given shape.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Quantize returns a freshly allocated float32 copy of m. Quantization
// is plain float32(x) per element (round-to-nearest-even), so quantizing
// the same float64 matrix always yields bit-identical float32 data —
// save-time and load-time quantization agree exactly.
func Quantize(m *Matrix) *Matrix32 {
	q := New32(m.Rows, m.Cols)
	QuantizeInto(q, m)
	return q
}

// QuantizeInto writes float32(src) element-wise into dst (same shape).
func QuantizeInto(dst *Matrix32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: quantize shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowView returns a 1×Cols matrix sharing row i's storage with m.
func (m *Matrix32) RowView(i int) *Matrix32 {
	return &Matrix32{Rows: 1, Cols: m.Cols, Data: m.Row(i)}
}

// RowsView returns a (hi−lo)×Cols matrix sharing rows [lo, hi) of m.
func (m *Matrix32) RowsView(lo, hi int) *Matrix32 {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: rowsView [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix32{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Zero resets every element to 0 in place.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix32) Clone() *Matrix32 {
	c := New32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMul32Into computes dst = a × b, accumulating into a zeroed dst.
// dst must not alias a or b.
func MatMul32Into(dst, a, b *Matrix32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul32Into shape mismatch")
	}
	n := b.Cols
	kd := a.Cols
	if n == 1 {
		// Single-column product: per-row dots against the contiguous
		// vector b. The tiled kernels need ≥8 output columns; the generic
		// tail would run one dependent accumulator chain per row.
		ParallelRows(a.Rows, a.Rows*kd, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst.Data[i] += sdot(a.Data[i*kd:(i+1)*kd], b.Data)
			}
		})
		return
	}
	if n == 2 {
		// Two-column product (e.g. interleaved attention src/dst
		// projections): both dots in one pass over each row of a.
		ParallelRows(a.Rows, a.Rows*kd*2, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d0, d1 := sdot2(a.Data[i*kd:(i+1)*kd], b.Data)
				dst.Data[2*i] += d0
				dst.Data[2*i+1] += d1
			}
		})
		return
	}
	ParallelRows(a.Rows, a.Rows*kd*n, func(lo, hi int) {
		i := lo
		if simdEnabled {
			// Four-row register tiles: the B panel is loaded once per k
			// step and shared across four independent accumulator chains.
			for ; i+4 <= hi; i += 4 {
				sgemmRows4(dst.Data[i*n:], n, a.Data[i*kd:], kd, kd, n, b.Data, n)
			}
		}
		for ; i < hi; i++ {
			sgemmRow(dst.Data[i*n:(i+1)*n], a.Data[i*kd:(i+1)*kd], b.Data, n)
		}
	})
}

// sdot returns Σ_k a[k]·v[k] over len(a) elements, unrolled into four
// independent accumulator chains so the multiply-add latency overlaps.
func sdot(a, v []float32) float32 {
	v = v[:len(a)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float32
	k := len(a)
	j := 0
	for ; j+4 <= k; j += 4 {
		s0 += a[j] * v[j]
		s1 += a[j+1] * v[j+1]
		s2 += a[j+2] * v[j+2]
		s3 += a[j+3] * v[j+3]
	}
	for ; j < k; j++ {
		s0 += a[j] * v[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// sdot2 returns the two dots of a against the k×2 row-major operand v
// in one pass over a, four accumulator chains across the two columns.
func sdot2(a, v []float32) (float32, float32) {
	v = v[:2*len(a)]
	var s0, s1, t0, t1 float32
	k := len(a)
	j := 0
	for ; j+2 <= k; j += 2 {
		s0 += a[j] * v[2*j]
		t0 += a[j] * v[2*j+1]
		s1 += a[j+1] * v[2*j+2]
		t1 += a[j+1] * v[2*j+3]
	}
	if j < k {
		s0 += a[j] * v[2*j]
		t0 += a[j] * v[2*j+1]
	}
	return s0 + s1, t0 + t1
}

// MatMul32SplitInto computes [a1 | a2] × b into a zeroed dst without
// materializing the concatenation (float32 mirror of MatMulSplitInto).
func MatMul32SplitInto(dst, a1, a2, b *Matrix32) {
	if a1.Rows != a2.Rows || a1.Cols+a2.Cols != b.Rows || dst.Rows != a1.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul32SplitInto shape mismatch")
	}
	n := b.Cols
	off := a1.Cols * n
	if n == 1 {
		ParallelRows(a1.Rows, a1.Rows*(a1.Cols+a2.Cols), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst.Data[i] += sdot(a1.Data[i*a1.Cols:(i+1)*a1.Cols], b.Data) +
					sdot(a2.Data[i*a2.Cols:(i+1)*a2.Cols], b.Data[off:])
			}
		})
		return
	}
	ParallelRows(a1.Rows, a1.Rows*(a1.Cols+a2.Cols)*n, func(lo, hi int) {
		i := lo
		if simdEnabled {
			for ; i+4 <= hi; i += 4 {
				sgemmRows4(dst.Data[i*n:], n, a1.Data[i*a1.Cols:], a1.Cols, a1.Cols, n, b.Data, n)
				sgemmRows4(dst.Data[i*n:], n, a2.Data[i*a2.Cols:], a2.Cols, a2.Cols, n, b.Data[off:], n)
			}
		}
		for ; i < hi; i++ {
			drow := dst.Data[i*n : (i+1)*n]
			sgemmRow(drow, a1.Data[i*a1.Cols:(i+1)*a1.Cols], b.Data, n)
			sgemmRow(drow, a2.Data[i*a2.Cols:(i+1)*a2.Cols], b.Data[off:], n)
		}
	})
}

// AddInPlace adds o into m and returns m. The AVX2 bulk goes through
// the FMA axpy kernel with α = 1, which rounds exactly like the scalar
// add (the multiply by 1.0 is exact).
func (m *Matrix32) AddInPlace(o *Matrix32) *Matrix32 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: add32 shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	saxpy(m.Data, o.Data, 1)
	return m
}

// Scale32 computes v[j] *= s (8-wide on AVX2, scalar tail).
func Scale32(v []float32, s float32) {
	if simdEnabled && len(v) >= 8 {
		k := len(v) &^ 7
		sscal32AVX2(v[:k], s)
		v = v[k:]
	}
	for j := range v {
		v[j] *= s
	}
}

// Axpy32 computes dst[j] += s*src[j] (FMA 8-wide on AVX2, scalar tail;
// the vector lanes fuse the multiply-add, so results may differ from
// the scalar loop in the final ulp).
func Axpy32(dst, src []float32, s float32) {
	saxpy(dst, src, s)
}

// AddRowVectorInPlace adds the 1×Cols vector v to each row of m.
func (m *Matrix32) AddRowVectorInPlace(v *Matrix32) *Matrix32 {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: addRowVector32 wants 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, b := range v.Data {
			row[j] += b
		}
	}
	return m
}

// MulColVectorInPlace scales each row i of m by v[i] (v is Rows×1).
func (m *Matrix32) MulColVectorInPlace(v *Matrix32) *Matrix32 {
	if v.Cols != 1 || v.Rows != m.Rows {
		panic(fmt.Sprintf("tensor: mulColVector32 wants %dx1, got %dx%d", m.Rows, v.Rows, v.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		s := v.Data[i]
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
	return m
}

// ConcatCols32Into writes [a ; b] stacked horizontally into dst.
func ConcatCols32Into(dst, a, b *Matrix32) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: concatCols32 row mismatch %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic(fmt.Sprintf("tensor: concatCols32Into wants %dx%d, got %dx%d", a.Rows, a.Cols+b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		copy(dst.Data[i*dst.Cols:], a.Row(i))
		copy(dst.Data[i*dst.Cols+a.Cols:], b.Row(i))
	}
}

// SelectRows32Into gathers the given row indices of m into dst.
func SelectRows32Into(dst, m *Matrix32, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: selectRows32Into wants %dx%d, got %dx%d", len(idx), m.Cols, dst.Rows, dst.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
}

// ReLU32InPlace clamps negative elements to 0 in place and returns m
// (8-wide on AVX2; the vector lanes also map -0 to +0, which nothing
// downstream can observe).
func ReLU32InPlace(m *Matrix32) *Matrix32 {
	d := m.Data
	if simdEnabled && len(d) >= 8 {
		k := len(d) &^ 7
		relu32AVX2(d[:k])
		d = d[k:]
	}
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return m
}

// LeakyReLU32InPlace applies x → x if x > 0 else slope·x in place.
func LeakyReLU32InPlace(m *Matrix32, slope float32) *Matrix32 {
	for i, v := range m.Data {
		if v <= 0 {
			m.Data[i] = slope * v
		}
	}
	return m
}

// Tanh32InPlace applies the fast float32 tanh element-wise in place
// (8-wide on AVX2).
func Tanh32InPlace(m *Matrix32) *Matrix32 {
	tanh32Slice(m.Data)
	return m
}

// Sigmoid32InPlace applies the fast float32 sigmoid element-wise in
// place (8-wide on AVX2).
func Sigmoid32InPlace(m *Matrix32) *Matrix32 {
	sigmoid32Slice(m.Data)
	return m
}

// SoftmaxRows32InPlace computes row-wise softmax in place (same
// max-subtraction scheme as SoftmaxRowsInto) and returns m. The
// exponentials run as one vectorized pass over the whole matrix between
// the per-row shift and normalize passes.
func SoftmaxRows32InPlace(m *Matrix32) *Matrix32 {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		mx := negInf32
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		for j := range row {
			row[j] -= mx
		}
	}
	Exp32InPlace(m.Data)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float32
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
	return m
}

// CSR32 is a float32 compressed-sparse-row adjacency operand. RowPtr may
// alias the source CSR's (it is read-only in every kernel); ColIdx is
// int32 so the gather kernel indexes it directly.
type CSR32 struct {
	NRows, NCols int
	RowPtr       []int
	ColIdx       []int32
	Weights      []float32
}

// MatMulInto computes dst = c × h, accumulating into a zeroed dst.
func (c *CSR32) MatMulInto(dst, h *Matrix32) {
	if c.NCols != h.Rows || dst.Rows != c.NRows || dst.Cols != h.Cols {
		panic("tensor: CSR32 MatMulInto shape mismatch")
	}
	n := h.Cols
	nnz := 0
	if len(c.RowPtr) > 0 {
		nnz = c.RowPtr[len(c.RowPtr)-1]
	}
	ParallelRows(c.NRows, nnz*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := c.RowPtr[i], c.RowPtr[i+1]
			csrRow(dst.Data[i*n:(i+1)*n], c.ColIdx[s:e], c.Weights[s:e], h.Data, n)
		}
	})
}

// MatMulColsInto accumulates c × h[:, :hcols] into the column block
// [off, off+hcols) of dst, so multi-head attention can aggregate each
// head directly into its slot of the concatenated layer output instead
// of materializing per-head matrices and copying them together. hcols
// may be smaller than h.Cols, letting callers aggregate a leading
// column block of a wider scratch matrix (h.Cols stays the row stride).
func (c *CSR32) MatMulColsInto(dst *Matrix32, off int, h *Matrix32, hcols int) {
	if c.NCols != h.Rows || dst.Rows != c.NRows || off < 0 || hcols > h.Cols || off+hcols > dst.Cols {
		panic("tensor: CSR32 MatMulColsInto shape mismatch")
	}
	n := hcols
	ld := dst.Cols
	nnz := 0
	if len(c.RowPtr) > 0 {
		nnz = c.RowPtr[len(c.RowPtr)-1]
	}
	ParallelRows(c.NRows, nnz*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := c.RowPtr[i], c.RowPtr[i+1]
			csrRow(dst.Data[i*ld+off:i*ld+off+n], c.ColIdx[s:e], c.Weights[s:e], h.Data, h.Cols)
		}
	})
}

// MatMulRowInto computes the single output row dst = c[row] × h, where
// dst is 1×h.Cols and zeroed.
func (c *CSR32) MatMulRowInto(dst, h *Matrix32, row int) {
	if c.NCols != h.Rows || dst.Rows != 1 || dst.Cols != h.Cols {
		panic("tensor: CSR32 MatMulRowInto shape mismatch")
	}
	s, e := c.RowPtr[row], c.RowPtr[row+1]
	csrRow(dst.Data, c.ColIdx[s:e], c.Weights[s:e], h.Data, h.Cols)
}

// ---- float32 scratch pools (mirrors of the float64 pools) ----

var matrix32Pools sync.Map // shapeKey → *sync.Pool of *Matrix32

func matrix32Pool(rows, cols int) *sync.Pool {
	k := shapeKey{rows, cols}
	if p, ok := matrix32Pools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := matrix32Pools.LoadOrStore(k, &sync.Pool{})
	return p.(*sync.Pool)
}

// GetMatrix32 returns a zeroed rows×cols float32 matrix from the shape
// pool. Pair with PutMatrix32.
func GetMatrix32(rows, cols int) *Matrix32 {
	if m, _ := matrix32Pool(rows, cols).Get().(*Matrix32); m != nil {
		m.Zero()
		return m
	}
	return New32(rows, cols)
}

// PutMatrix32 returns m to its shape pool.
func PutMatrix32(m *Matrix32) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	matrix32Pool(m.Rows, m.Cols).Put(m)
}

var (
	int32Pools   [numSliceClasses]sync.Pool
	float32Pools [numSliceClasses]sync.Pool
)

// GetInts32 returns a zeroed length-n int32 slice from the
// capacity-class pool. Pair with PutInts32.
func GetInts32(n int) []int32 {
	if n == 0 {
		return nil
	}
	c := sliceClass(n)
	if c < 0 {
		return make([]int32, n)
	}
	if s, _ := int32Pools[c].Get().([]int32); s != nil {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]int32, n, 1<<c)
}

// PutInts32 returns s to its capacity-class pool; see PutInts.
func PutInts32(s []int32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	if cls := sliceClass(c); cls >= 0 {
		int32Pools[cls].Put(s[:0]) //nolint:staticcheck // slice header boxing is accepted
	}
}

// GetFloats32 returns a zeroed length-n float32 slice from the
// capacity-class pool. Pair with PutFloats32.
func GetFloats32(n int) []float32 {
	if n == 0 {
		return nil
	}
	c := sliceClass(n)
	if c < 0 {
		return make([]float32, n)
	}
	if s, _ := float32Pools[c].Get().([]float32); s != nil {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float32, n, 1<<c)
}

// PutFloats32 returns s to its capacity-class pool; see PutInts.
func PutFloats32(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	if cls := sliceClass(c); cls >= 0 {
		float32Pools[cls].Put(s[:0]) //nolint:staticcheck // slice header boxing is accepted
	}
}
