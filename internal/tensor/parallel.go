package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the flop count above which matrix kernels fan out
// across CPUs; below it goroutine overhead dominates.
const parallelThreshold = 1 << 18

// ParallelRows runs fn over [0, rows) split into contiguous ranges when
// work (an operation-count estimate) exceeds the parallel threshold, and
// serially otherwise. fn must only write state owned by its range.
func ParallelRows(rows, work int, fn func(lo, hi int)) {
	if work < parallelThreshold || rows <= 1 {
		fn(0, rows)
		return
	}
	parallelRows(rows, fn)
}

// parallelRows splits [0, rows) into contiguous ranges and runs fn on
// each range concurrently. fn must only write state owned by its range.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
