package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the flop count above which matrix kernels fan out
// across the worker pool; below it dispatch overhead dominates. The
// value is benchmarked, not guessed: handing a range to the pool costs
// ~1–2 µs round trip (BenchmarkParallelCrossover), and the serial kernels
// sustain roughly 1.5 Gflop/s, so work only amortizes the dispatch once
// it is tens of microseconds — 2^15 flops ≈ 20 µs. The old per-call
// goroutine-spawn path needed 2^18 before it broke even.
var parallelThreshold = 1 << 15

// task is one contiguous row range of a parallel kernel, executed by a
// pool worker.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// workerStat is one pool worker's counters, padded out to a cache line
// so neighboring workers' updates never share one (false sharing turns
// independent counters into a coherence ping-pong; see
// BenchmarkFalseSharing for the measured effect).
type workerStat struct {
	tasks atomic.Uint64
	_     [7]uint64
}

var (
	poolOnce  sync.Once
	poolTasks chan task
	poolStats []workerStat
)

// startPool spawns the persistent worker goroutines. Workers live for
// the process lifetime: the pool replaces the old per-call `go` spawn,
// whose goroutine creation + scheduling cost pushed the parallel
// crossover an order of magnitude higher than dispatch to an
// already-running worker.
func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		n = 1
	}
	poolTasks = make(chan task, 4*n)
	poolStats = make([]workerStat, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			for t := range poolTasks {
				t.fn(t.lo, t.hi)
				poolStats[w].tasks.Add(1)
				t.wg.Done()
			}
		}(w)
	}
}

// PoolTaskCounts returns the number of range tasks each pool worker has
// executed (nil before the pool has started). Diagnostic only.
func PoolTaskCounts() []uint64 {
	if poolStats == nil {
		return nil
	}
	out := make([]uint64, len(poolStats))
	for i := range poolStats {
		out[i] = poolStats[i].tasks.Load()
	}
	return out
}

// ParallelRows runs fn over [0, rows) split into contiguous ranges when
// work (an operation-count estimate) exceeds the parallel threshold, and
// serially otherwise. The serial short-circuit is exact: below the
// threshold fn is invoked once as fn(0, rows) on the calling goroutine.
// fn must only write state owned by its range.
func ParallelRows(rows, work int, fn func(lo, hi int)) {
	if work < parallelThreshold || rows <= 1 {
		fn(0, rows)
		return
	}
	parallelRows(rows, fn)
}

// parallelRows splits [0, rows) into contiguous ranges and runs fn on
// each range concurrently via the persistent worker pool. The calling
// goroutine keeps the first chunk for itself; if the pool's queue is
// full (e.g. nested parallel sections) excess chunks run inline, so the
// function can never deadlock. fn must only write state owned by its
// range.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	poolOnce.Do(startPool)
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		t := task{fn: fn, lo: lo, hi: hi, wg: &wg}
		select {
		case poolTasks <- t:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
}
