package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// bench_test.go holds the kernel benchmarks behind the tuning constants
// in parallel.go and matrix.go, and the GFLOP/s grid scripts/bench.sh
// publishes as BENCH_kernels.json.

func benchMatrix(rows, cols int, seed uint64) *Matrix {
	rng := NewRNG(seed)
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// BenchmarkParallelCrossover measures pool dispatch against inline
// execution across work sizes bracketing parallelThreshold (1<<15).
// The threshold is chosen so the smallest dispatched job still
// amortizes the ~µs submit/wake cost; rows are sized so serial and
// parallel run identical arithmetic.
func BenchmarkParallelCrossover(b *testing.B) {
	for _, size := range []int{1 << 12, 1 << 14, 1 << 15, 1 << 17, 1 << 20} {
		data := make([]float64, size)
		rows := 64
		perRow := size / rows
		work := func(lo, hi int) {
			for r := lo; r < hi; r++ {
				seg := data[r*perRow : (r+1)*perRow]
				for i := range seg {
					seg[i] = seg[i]*1.0000001 + 1e-9
				}
			}
		}
		b.Run(fmt.Sprintf("serial/work=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work(0, rows)
			}
		})
		b.Run(fmt.Sprintf("pool/work=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parallelRows(rows, work)
			}
		})
	}
}

// BenchmarkFalseSharing pins the cache-line padding of workerStat: a
// packed counter array forces every increment through a shared line,
// the padded layout gives each worker its own. The same pattern
// motivates per-worker accumulator state in the matmul kernels.
func BenchmarkFalseSharing(b *testing.B) {
	const workers = 4
	const incs = 1 << 16
	run := func(b *testing.B, bump func(w int)) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := 0; k < incs; k++ {
						bump(w)
					}
				}(w)
			}
			wg.Wait()
		}
	}
	b.Run("packed", func(b *testing.B) {
		var counters [workers]atomic.Uint64
		run(b, func(w int) { counters[w].Add(1) })
	})
	b.Run("padded", func(b *testing.B) {
		var counters [workers]workerStat
		run(b, func(w int) { counters[w].tasks.Add(1) })
	})
}

// serialNaiveMatMul is the pre-blocking scalar kernel, kept as the
// GFLOP/s baseline row of the kernel grid.
func serialNaiveMatMul(dst, a, b *Matrix) {
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		clear(drow)
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func reportGFLOPS(b *testing.B, m, k, n int) {
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMulKernels is the kernel grid: square sizes × {serial
// naive, blocked serial, blocked+pool} × {f64, f32}. scripts/bench.sh
// turns this into BENCH_kernels.json.
func BenchmarkMatMulKernels(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		a := benchMatrix(n, n, uint64(71+n))
		bb := benchMatrix(n, n, uint64(73+n))
		dst := New(n, n)
		a32, b32 := Quantize(a), Quantize(bb)
		dst32 := New32(n, n)

		b.Run(fmt.Sprintf("n=%d/f64/serial-naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				serialNaiveMatMul(dst, a, bb)
			}
			reportGFLOPS(b, n, n, n)
		})
		b.Run(fmt.Sprintf("n=%d/f64/blocked-serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				matMulRange(dst, a, bb, 0, n)
			}
			reportGFLOPS(b, n, n, n)
		})
		b.Run(fmt.Sprintf("n=%d/f64/blocked-pool", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
			reportGFLOPS(b, n, n, n)
		})
		b.Run(fmt.Sprintf("n=%d/f32/blocked-serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst32.Zero()
				for r := 0; r < n; r++ {
					sgemmRow(dst32.Row(r), a32.Row(r), b32.Data, n)
				}
			}
			reportGFLOPS(b, n, n, n)
		})
		b.Run(fmt.Sprintf("n=%d/f32/blocked-pool", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMul32Into(dst32, a32, b32)
			}
			reportGFLOPS(b, n, n, n)
		})
	}
}
