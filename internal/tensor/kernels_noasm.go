//go:build !amd64

package tensor

// Stub bodies for platforms without the AVX2 kernels. simdEnabled stays
// false there, so none of these can be reached.

func daxpyAVX2(dst, src []float64, alpha float64) { panic("tensor: simd kernel on non-amd64") }

func saxpyAVX2(dst, src []float32, alpha float32) { panic("tensor: simd kernel on non-amd64") }

func sgemmRowJ32(drow, arow, b []float32, ldb int) { panic("tensor: simd kernel on non-amd64") }

func sgemmRowJ16(drow, arow, b []float32, ldb int) { panic("tensor: simd kernel on non-amd64") }

func sgemmRowJ8(drow, arow, b []float32, ldb int) { panic("tensor: simd kernel on non-amd64") }

func sgemmRows4J16(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int) {
	panic("tensor: simd kernel on non-amd64")
}

func sgemmRows4J8(d []float32, ldd int, a []float32, lda, k int, b []float32, ldb int) {
	panic("tensor: simd kernel on non-amd64")
}

func sscal32AVX2(v []float32, alpha float32) { panic("tensor: simd kernel on non-amd64") }

func relu32AVX2(v []float32) { panic("tensor: simd kernel on non-amd64") }

func exp32AVX2(v []float32) { panic("tensor: simd kernel on non-amd64") }

func tanh32AVX2(v []float32) { panic("tensor: simd kernel on non-amd64") }

func sigmoid32AVX2(v []float32) { panic("tensor: simd kernel on non-amd64") }

func csrRowJ32(drow []float32, cols []int32, w, h []float32, ldh int) {
	panic("tensor: simd kernel on non-amd64")
}

func csrRowJ16(drow []float32, cols []int32, w, h []float32, ldh int) {
	panic("tensor: simd kernel on non-amd64")
}

func csrRowJ8(drow []float32, cols []int32, w, h []float32, ldh int) {
	panic("tensor: simd kernel on non-amd64")
}
