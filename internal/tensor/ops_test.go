package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	m := FromRows([][]float64{{-1, 0, 2}})
	got := ReLU(m)
	want := FromRows([][]float64{{0, 0, 2}})
	if !got.Equal(want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestTanhMatchesMath(t *testing.T) {
	m := FromRows([][]float64{{-2, 0, 1.5}})
	got := Tanh(m)
	for i, v := range m.Data {
		if !almostEqual(got.Data[i], math.Tanh(v), 1e-15) {
			t.Fatalf("tanh(%v) = %v", v, got.Data[i])
		}
	}
}

func TestSigmoidStableAtExtremes(t *testing.T) {
	if v := SigmoidScalar(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := SigmoidScalar(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	if v := SigmoidScalar(0); v != 0.5 {
		t.Fatalf("sigmoid(0) = %v", v)
	}
	// Symmetry: σ(-x) = 1 - σ(x).
	for _, x := range []float64{0.1, 1, 5, 20} {
		if !almostEqual(SigmoidScalar(-x), 1-SigmoidScalar(x), 1e-12) {
			t.Fatalf("sigmoid asymmetric at %v", x)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		m := RandNormal(1+rng.Intn(5), 1+rng.Intn(6), 3, rng)
		s := SoftmaxRows(m)
		for i := 0; i < s.Rows; i++ {
			var sum float64
			for _, v := range s.Row(i) {
				if v < 0 {
					return false
				}
				sum += v
			}
			if !almostEqual(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}})
	shifted := m.Apply(func(v float64) float64 { return v + 1000 })
	if !SoftmaxRows(m).Equal(SoftmaxRows(shifted), 1e-9) {
		t.Fatal("softmax not shift invariant")
	}
}

func TestSoftmaxExtremeValues(t *testing.T) {
	m := FromRows([][]float64{{-1e300, 0, 1e300}})
	s := SoftmaxRows(m)
	for _, v := range s.Data {
		if math.IsNaN(v) {
			t.Fatal("softmax produced NaN")
		}
	}
	if !almostEqual(s.At(0, 2), 1, 1e-9) {
		t.Fatalf("max element should dominate: %v", s)
	}
}

func TestLogSumExpRows(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {1000, 1000}})
	got := LogSumExpRows(m)
	if !almostEqual(got.At(0, 0), math.Log(2), 1e-12) {
		t.Fatalf("lse row0 %v", got.At(0, 0))
	}
	if !almostEqual(got.At(1, 0), 1000+math.Log(2), 1e-9) {
		t.Fatalf("lse row1 %v (overflowed?)", got.At(1, 0))
	}
}

func TestSumRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	rows := SumRows(m)
	if rows.At(0, 0) != 3 || rows.At(1, 0) != 7 {
		t.Fatalf("sumRows %v", rows)
	}
	cols := SumCols(m)
	if cols.At(0, 0) != 4 || cols.At(0, 1) != 6 {
		t.Fatalf("sumCols %v", cols)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp wrong")
	}
}
