package tensor

import "math"

// Fast float32 transcendentals for the serving path. math.Exp/math.Tanh
// cost ~7–9 ns each and dominate the GAT softmax and HAG gate once the
// matmuls are vectorized; these Cephes-style float32 versions run in
// under 1 ns at ~1e-7 relative error, far inside the f32 path's
// |Δlogit| tolerance. The float64 reference path never calls them.

var negInf32 = float32(math.Inf(-1))

const (
	exp32Max = 88.0  // above: 2^n scale would overflow the exponent
	exp32Min = -87.0 // below: result underflows to 0 anyway
	log2e32  = 1.4426950408889634
	exp32C1  = 0.693359375    // ln 2, split high…
	exp32C2  = -2.12194440e-4 // …and low for an exact-ish reduction
)

// Exp32 computes e^x in float32 via argument reduction x = n·ln2 + r and
// a degree-7 minimax polynomial for e^r on |r| ≤ ½ln2.
func Exp32(x float32) float32 {
	if x != x { // NaN
		return x
	}
	if x > exp32Max {
		return float32(math.Inf(1))
	}
	if x < exp32Min {
		return 0
	}
	z := x * log2e32
	var n int32
	if z >= 0 {
		n = int32(z + 0.5)
	} else {
		n = int32(z - 0.5)
	}
	fn := float32(n)
	r := x - fn*exp32C1 - fn*exp32C2
	rr := r * r
	q := float32(1.9875691500e-4)
	q = q*r + 1.3981999507e-3
	q = q*r + 8.3334519073e-3
	q = q*r + 4.1665795894e-2
	q = q*r + 1.6666665459e-1
	q = q*r + 5.0000001201e-1
	y := q*rr + r + 1
	// scale by 2^n; n ∈ [-126, 127] given the clamps above
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// Exp32InPlace applies Exp32 element-wise. On AVX2 the bulk runs
// 8-wide; vector lanes clamp out-of-range and non-finite inputs to
// [-87, 88] and may differ from the scalar Exp32 in the final ulp (FMA
// reduction, round-to-nearest-even n), both far inside the f32 path's
// tolerance. The scalar Exp32 handles the tail.
func Exp32InPlace(v []float32) {
	if simdEnabled && len(v) >= 8 {
		m := len(v) &^ 7
		exp32AVX2(v[:m])
		v = v[m:]
	}
	for i, x := range v {
		v[i] = Exp32(x)
	}
}

// tanh32Slice applies Tanh32 element-wise with the 8-wide kernel on the
// bulk; same last-ulp caveats as Exp32InPlace.
func tanh32Slice(v []float32) {
	if simdEnabled && len(v) >= 8 {
		m := len(v) &^ 7
		tanh32AVX2(v[:m])
		v = v[m:]
	}
	for i, x := range v {
		v[i] = Tanh32(x)
	}
}

// sigmoid32Slice applies Sigmoid32 element-wise with the 8-wide kernel
// on the bulk; same last-ulp caveats as Exp32InPlace.
func sigmoid32Slice(v []float32) {
	if simdEnabled && len(v) >= 8 {
		m := len(v) &^ 7
		sigmoid32AVX2(v[:m])
		v = v[m:]
	}
	for i, x := range v {
		v[i] = Sigmoid32(x)
	}
}

// Tanh32 computes tanh(x) in float32 via e^{2x}.
func Tanh32(x float32) float32 {
	if x > 9 {
		return 1
	}
	if x < -9 {
		return -1
	}
	t := Exp32(2 * x)
	return (t - 1) / (t + 1)
}

// Sigmoid32 computes the logistic function in float32 with the same
// overflow-safe branch structure as SigmoidScalar.
func Sigmoid32(v float32) float32 {
	if v >= 0 {
		z := Exp32(-v)
		return 1 / (1 + z)
	}
	z := Exp32(v)
	return z / (1 + z)
}
