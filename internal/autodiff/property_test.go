package autodiff

import (
	"math"
	"testing"
	"testing/quick"

	"turbo/internal/tensor"
)

// TestGradMatMulRandomShapes property-checks the matmul gradient against
// finite differences across random shapes.
func TestGradMatMulRandomShapes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		n, k, m := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := tensor.RandNormal(n, k, 0.7, rng)
		b := tensor.RandNormal(k, m, 0.7, rng)
		ok := true
		check := func(x *tensor.Matrix, other func() float64, analytic *tensor.Matrix) {
			const eps = 1e-6
			for i := range x.Data {
				orig := x.Data[i]
				x.Data[i] = orig + eps
				up := other()
				x.Data[i] = orig - eps
				down := other()
				x.Data[i] = orig
				num := (up - down) / (2 * eps)
				if math.Abs(num-analytic.Data[i]) > 1e-4*(1+math.Abs(num)) {
					ok = false
				}
			}
		}
		forward := func() float64 {
			tp := NewTape()
			an := tp.Leaf(a, tensor.New(n, k))
			bn := tp.Leaf(b, tensor.New(k, m))
			return tp.SumAll(tp.Tanh(tp.MatMul(an, bn))).Scalar()
		}
		tp := NewTape()
		ga, gb := tensor.New(n, k), tensor.New(k, m)
		an := tp.Leaf(a, ga)
		bn := tp.Leaf(b, gb)
		tp.Backward(tp.SumAll(tp.Tanh(tp.MatMul(an, bn))))
		check(a, forward, ga)
		check(b, forward, gb)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSoftmaxGradientRowsSumToZero: because softmax outputs sum to 1 per
// row, the gradient of any loss w.r.t. the logits must sum to ~0 per row.
func TestSoftmaxGradientRowsSumToZero(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		rows, cols := 1+rng.Intn(4), 2+rng.Intn(5)
		x := tensor.RandNormal(rows, cols, 1, rng)
		w := tensor.RandNormal(rows, cols, 1, rng)
		tp := NewTape()
		g := tensor.New(rows, cols)
		xn := tp.Leaf(x, g)
		loss := tp.SumAll(tp.Mul(tp.SoftmaxRows(xn), tp.Const(w)))
		tp.Backward(loss)
		for i := 0; i < rows; i++ {
			var s float64
			for _, v := range g.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateLinearity: Aggregate is linear in H, so
// A(αH₁ + βH₂) = αA(H₁) + βA(H₂).
func TestAggregateLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		n, m, d := 2+rng.Intn(4), 2+rng.Intn(4), 1+rng.Intn(3)
		rows := make([][]int, n)
		weights := make([][]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if rng.Float64() < 0.5 {
					rows[i] = append(rows[i], j)
					weights[i] = append(weights[i], rng.Float64())
				}
			}
		}
		csr := NewCSR(n, m, rows, weights)
		h1 := tensor.RandNormal(m, d, 1, rng)
		h2 := tensor.RandNormal(m, d, 1, rng)
		alpha, beta := rng.Float64(), rng.Float64()
		lhs := csr.MatMul(h1.Scale(alpha).Add(h2.Scale(beta)))
		rhs := csr.MatMul(h1).Scale(alpha).Add(csr.MatMul(h2).Scale(beta))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
