// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices. Every model in this repository (HAG, GCN, GraphSAGE,
// GAT, DNN, LR) is expressed as a computation over *Node values recorded
// on a *Tape; calling Tape.Backward propagates exact gradients back to
// every parameter leaf.
//
// The design is a classic dynamic tape: each operation appends a node with
// a backward closure, and Backward runs the closures in reverse order of
// creation. Nodes that cannot reach a gradient-requiring leaf skip
// gradient allocation entirely.
package autodiff

import (
	"fmt"

	"turbo/internal/tensor"
)

// Node is one value in the recorded computation graph.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	tape         *Tape
	requiresGrad bool
	backward     func()
}

// Tape records operations so Backward can replay them in reverse.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded nodes so the tape can be reused. Parameter
// leaves must be re-registered (via Param) after a reset.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes, useful in tests.
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) add(n *Node) *Node {
	n.tape = t
	t.nodes = append(t.nodes, n)
	return n
}

// Const records a value that does not require gradients.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.add(&Node{Value: v})
}

// Param records a trainable leaf. Its Grad is allocated lazily by
// Backward and accumulated across calls until zeroed by the optimizer.
func (t *Tape) Param(v *tensor.Matrix) *Node {
	return t.add(&Node{Value: v, requiresGrad: true})
}

// Leaf records a gradient-requiring node whose gradient accumulates into
// the caller-owned buffer grad. This is how persistent model parameters
// are attached to a fresh tape each forward pass: the tape is discarded
// after Backward but the gradient lands in the parameter's own buffer.
func (t *Tape) Leaf(v, grad *tensor.Matrix) *Node {
	if !v.SameShape(grad) {
		panic("autodiff: Leaf value/grad shape mismatch")
	}
	return t.add(&Node{Value: v, Grad: grad, requiresGrad: true})
}

func (n *Node) ensureGrad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// Shape returns (rows, cols) of the node's value.
func (n *Node) Shape() (int, int) { return n.Value.Rows, n.Value.Cols }

// Scalar returns the single element of a 1×1 node.
func (n *Node) Scalar() float64 {
	if n.Value.Rows != 1 || n.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on %dx%d node", n.Value.Rows, n.Value.Cols))
	}
	return n.Value.Data[0]
}

// Backward seeds the given output node with gradient 1 and propagates
// gradients to every reachable leaf. The output must be scalar (1×1)
// unless an explicit seed is supplied via BackwardWithSeed.
func (t *Tape) Backward(out *Node) {
	if out.Value.Rows != 1 || out.Value.Cols != 1 {
		panic("autodiff: Backward requires a scalar output; use BackwardWithSeed")
	}
	seed := tensor.New(1, 1)
	seed.Data[0] = 1
	t.BackwardWithSeed(out, seed)
}

// BackwardWithSeed propagates gradients starting from an arbitrary seed
// gradient of the same shape as out's value.
func (t *Tape) BackwardWithSeed(out *Node, seed *tensor.Matrix) {
	if !out.Value.SameShape(seed) {
		panic("autodiff: seed shape mismatch")
	}
	out.ensureGrad().AddInPlace(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// ZeroGrads clears the gradients of the provided parameter nodes.
func ZeroGrads(params []*Node) {
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.Zero()
		}
	}
}
