package autodiff

import "turbo/internal/tensor"

// CSR is a fixed (non-trainable) sparse row-compressed matrix used for
// neighborhood aggregation in GNN layers: out = A × H where A is N×M.
// RowPtr has length N+1; ColIdx/Weights hold the entries of each row.
type CSR struct {
	NRows, NCols int
	RowPtr       []int
	ColIdx       []int
	Weights      []float64
}

// NewCSR builds a CSR matrix from per-row (column, weight) entries.
func NewCSR(nRows, nCols int, rows [][]int, weights [][]float64) *CSR {
	c := &CSR{NRows: nRows, NCols: nCols, RowPtr: make([]int, nRows+1)}
	for i := 0; i < nRows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + len(rows[i])
		c.ColIdx = append(c.ColIdx, rows[i]...)
		c.Weights = append(c.Weights, weights[i]...)
	}
	return c
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// MatMul computes A × H densely into a fresh matrix.
func (c *CSR) MatMul(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(c.NRows, h.Cols)
	c.MatMulInto(out, h)
	return out
}

// MatMulInto computes A × H, accumulating into a zeroed dst of shape
// NRows × h.Cols. dst must not alias h. Shared with the tape-free
// inference path so both paths run the identical kernel (same parallel
// row partition, same accumulation order).
func (c *CSR) MatMulInto(dst, h *tensor.Matrix) {
	if h.Rows != c.NCols || dst.Rows != c.NRows || dst.Cols != h.Cols {
		panic("autodiff: CSR matmul shape mismatch")
	}
	tensor.ParallelRows(c.NRows, c.NNZ()*h.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				w := c.Weights[p]
				src := h.Row(c.ColIdx[p])
				for j, v := range src {
					drow[j] += w * v
				}
			}
		}
	})
}

// MatMulRangeInto computes rows [lo, hi) of A × H sequentially,
// accumulating into zeroed dst rows. It is the caller-partitioned
// variant of MatMulInto: per-row arithmetic is identical, so any
// contiguous partition of [0, NRows) yields results bitwise equal to
// one MatMulInto call. dst rows outside [lo, hi) are untouched.
func (c *CSR) MatMulRangeInto(dst, h *tensor.Matrix, lo, hi int) {
	if h.Rows != c.NCols || dst.Rows != c.NRows || dst.Cols != h.Cols {
		panic("autodiff: CSR range matmul shape mismatch")
	}
	if lo < 0 || hi > c.NRows || lo > hi {
		panic("autodiff: CSR range matmul bad range")
	}
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			w := c.Weights[p]
			src := h.Row(c.ColIdx[p])
			for j, v := range src {
				drow[j] += w * v
			}
		}
	}
}

// MatMulRowInto computes row i of A × H into dst (1 × h.Cols), with the
// identical per-row arithmetic of MatMulInto. dst must be zeroed.
func (c *CSR) MatMulRowInto(dst, h *tensor.Matrix, i int) {
	if h.Rows != c.NCols || dst.Rows != 1 || dst.Cols != h.Cols {
		panic("autodiff: CSR row matmul shape mismatch")
	}
	drow := dst.Row(0)
	for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
		w := c.Weights[p]
		src := h.Row(c.ColIdx[p])
		for j, v := range src {
			drow[j] += w * v
		}
	}
}

// MatMulTrans computes Aᵀ × G, used for the backward pass.
func (c *CSR) MatMulTrans(g *tensor.Matrix) *tensor.Matrix {
	if g.Rows != c.NRows {
		panic("autodiff: CSR matmulTrans shape mismatch")
	}
	out := tensor.New(c.NCols, g.Cols)
	c.addMatMulTrans(out, g)
	return out
}

func (c *CSR) addMatMulTrans(dst, g *tensor.Matrix) {
	for i := 0; i < c.NRows; i++ {
		src := g.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			w := c.Weights[p]
			row := dst.Row(c.ColIdx[p])
			for j, v := range src {
				row[j] += w * v
			}
		}
	}
}

// Aggregate records out = A × h on the tape, propagating gradients
// through h but treating the adjacency weights as constants. This is the
// neighborhood-aggregation primitive all GNN layers build on.
func (t *Tape) Aggregate(a *CSR, h *Node) *Node {
	v := a.MatMul(h.Value)
	var out *Node
	out = t.op(v, func() {
		if !h.requiresGrad {
			return
		}
		a.addMatMulTrans(h.ensureGrad(), out.Grad)
	}, h)
	return out
}
