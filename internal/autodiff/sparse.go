package autodiff

import "turbo/internal/tensor"

// CSR is a fixed (non-trainable) sparse row-compressed matrix used for
// neighborhood aggregation in GNN layers: out = A × H where A is N×M.
// RowPtr has length N+1; ColIdx/Weights hold the entries of each row.
type CSR struct {
	NRows, NCols int
	RowPtr       []int
	ColIdx       []int
	Weights      []float64
}

// NewCSR builds a CSR matrix from per-row (column, weight) entries.
func NewCSR(nRows, nCols int, rows [][]int, weights [][]float64) *CSR {
	c := &CSR{NRows: nRows, NCols: nCols, RowPtr: make([]int, nRows+1)}
	for i := 0; i < nRows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + len(rows[i])
		c.ColIdx = append(c.ColIdx, rows[i]...)
		c.Weights = append(c.Weights, weights[i]...)
	}
	return c
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// MatMul computes A × H densely into a fresh matrix.
func (c *CSR) MatMul(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(c.NRows, h.Cols)
	c.MatMulInto(out, h)
	return out
}

// MatMulInto computes A × H, accumulating into a zeroed dst of shape
// NRows × h.Cols. dst must not alias h. Shared with the tape-free
// inference path so both paths run the identical kernel (same parallel
// row partition, same accumulation order).
func (c *CSR) MatMulInto(dst, h *tensor.Matrix) {
	if h.Rows != c.NCols || dst.Rows != c.NRows || dst.Cols != h.Cols {
		panic("autodiff: CSR matmul shape mismatch")
	}
	tensor.ParallelRows(c.NRows, c.NNZ()*h.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				w := c.Weights[p]
				src := h.Row(c.ColIdx[p])
				for j, v := range src {
					drow[j] += w * v
				}
			}
		}
	})
}

// MatMulRangeInto computes rows [lo, hi) of A × H sequentially,
// accumulating into zeroed dst rows. It is the caller-partitioned
// variant of MatMulInto: per-row arithmetic is identical, so any
// contiguous partition of [0, NRows) yields results bitwise equal to
// one MatMulInto call. dst rows outside [lo, hi) are untouched.
func (c *CSR) MatMulRangeInto(dst, h *tensor.Matrix, lo, hi int) {
	if h.Rows != c.NCols || dst.Rows != c.NRows || dst.Cols != h.Cols {
		panic("autodiff: CSR range matmul shape mismatch")
	}
	if lo < 0 || hi > c.NRows || lo > hi {
		panic("autodiff: CSR range matmul bad range")
	}
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			w := c.Weights[p]
			src := h.Row(c.ColIdx[p])
			for j, v := range src {
				drow[j] += w * v
			}
		}
	}
}

// MatMulRowInto computes row i of A × H into dst (1 × h.Cols), with the
// identical per-row arithmetic of MatMulInto. dst must be zeroed.
func (c *CSR) MatMulRowInto(dst, h *tensor.Matrix, i int) {
	if h.Rows != c.NCols || dst.Rows != 1 || dst.Cols != h.Cols {
		panic("autodiff: CSR row matmul shape mismatch")
	}
	drow := dst.Row(0)
	for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
		w := c.Weights[p]
		src := h.Row(c.ColIdx[p])
		for j, v := range src {
			drow[j] += w * v
		}
	}
}

// MatMulTrans computes Aᵀ × G, used for the backward pass.
func (c *CSR) MatMulTrans(g *tensor.Matrix) *tensor.Matrix {
	if g.Rows != c.NRows {
		panic("autodiff: CSR matmulTrans shape mismatch")
	}
	out := tensor.New(c.NCols, g.Cols)
	c.addMatMulTrans(out, g)
	return out
}

func (c *CSR) addMatMulTrans(dst, g *tensor.Matrix) {
	for i := 0; i < c.NRows; i++ {
		src := g.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			w := c.Weights[p]
			row := dst.Row(c.ColIdx[p])
			for j, v := range src {
				row[j] += w * v
			}
		}
	}
}

// fusedPanelRows is the row-panel height of the fused
// aggregate+transform kernels below: A×H is materialized only
// fusedPanelRows rows at a time in a pooled scratch panel that stays
// L1/L2-resident while it is immediately consumed by the dense layer
// transform, instead of round-tripping a full N×d intermediate through
// memory.
const fusedPanelRows = 32

// AggTransformRangeInto computes rows [lo, hi) of dst = (A × H) × W
// without materializing the full aggregation. Per output element the
// arithmetic is exactly CSR.MatMulRangeInto followed by
// tensor.MatMulRangeInto, so results are bitwise equal to the unfused
// pair and independent of the row partition. dst rows must be zeroed.
func (c *CSR) AggTransformRangeInto(dst, h, w *tensor.Matrix, lo, hi int) {
	c.aggTransformRange(dst, nil, h, w, nil, lo, hi)
}

// AggTransform2RangeInto is AggTransformRangeInto with two transforms
// sharing one aggregation: dst1 = (A×H)×W1 and dst2 = (A×H)×W2. The
// aggregated panel is computed once and consumed twice (the HAG gated
// layer needs both the neighbor transform and the attention projection
// of the same aggregate).
func (c *CSR) AggTransform2RangeInto(dst1, dst2, h, w1, w2 *tensor.Matrix, lo, hi int) {
	c.aggTransformRange(dst1, dst2, h, w1, w2, lo, hi)
}

func (c *CSR) aggTransformRange(dst1, dst2, h, w1, w2 *tensor.Matrix, lo, hi int) {
	if h.Rows != c.NCols || w1.Rows != h.Cols || dst1.Rows != c.NRows || dst1.Cols != w1.Cols {
		panic("autodiff: CSR fused agg+transform shape mismatch")
	}
	if dst2 != nil && (w2.Rows != h.Cols || dst2.Rows != c.NRows || dst2.Cols != w2.Cols) {
		panic("autodiff: CSR fused agg+transform shape mismatch (second output)")
	}
	if lo < 0 || hi > c.NRows || lo > hi {
		panic("autodiff: CSR fused agg+transform bad range")
	}
	panel := tensor.GetMatrix(fusedPanelRows, h.Cols)
	for r0 := lo; r0 < hi; r0 += fusedPanelRows {
		r1 := r0 + fusedPanelRows
		if r1 > hi {
			r1 = hi
		}
		pv := panel.RowsView(0, r1-r0)
		pv.Zero()
		for i := r0; i < r1; i++ {
			drow := pv.Row(i - r0)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				wgt := c.Weights[p]
				src := h.Row(c.ColIdx[p])
				for j, v := range src {
					drow[j] += wgt * v
				}
			}
		}
		tensor.MatMulRangeInto(dst1.RowsView(r0, r1), pv, w1, 0, r1-r0)
		if dst2 != nil {
			tensor.MatMulRangeInto(dst2.RowsView(r0, r1), pv, w2, 0, r1-r0)
		}
	}
	tensor.PutMatrix(panel)
}

// AggTransformInto computes dst = (A × H) × W with the fused panel
// kernel, fanning row ranges out across the worker pool like MatMulInto.
func (c *CSR) AggTransformInto(dst, h, w *tensor.Matrix) {
	work := (c.NNZ() + c.NRows*w.Cols) * h.Cols
	tensor.ParallelRows(c.NRows, work, func(lo, hi int) {
		c.AggTransformRangeInto(dst, h, w, lo, hi)
	})
}

// AggTransform2Into is the parallel wrapper of AggTransform2RangeInto.
func (c *CSR) AggTransform2Into(dst1, dst2, h, w1, w2 *tensor.Matrix) {
	work := (c.NNZ() + c.NRows*(w1.Cols+w2.Cols)) * h.Cols
	tensor.ParallelRows(c.NRows, work, func(lo, hi int) {
		c.AggTransform2RangeInto(dst1, dst2, h, w1, w2, lo, hi)
	})
}

// AggTransformSplitRangeInto computes rows [lo, hi) of
// dst = [H | A×H] × W — the GraphSAGE self‖neighbor step — with the
// aggregated half fused through the same panel scheme. Bitwise equal to
// aggregating fully and calling tensor.MatMulSplitRangeInto. dst rows
// must be zeroed.
func (c *CSR) AggTransformSplitRangeInto(dst, h, w *tensor.Matrix, lo, hi int) {
	if h.Rows != c.NCols || 2*h.Cols != w.Rows || dst.Rows != c.NRows || dst.Cols != w.Cols {
		panic("autodiff: CSR fused split agg+transform shape mismatch")
	}
	if lo < 0 || hi > c.NRows || lo > hi {
		panic("autodiff: CSR fused split agg+transform bad range")
	}
	panel := tensor.GetMatrix(fusedPanelRows, h.Cols)
	for r0 := lo; r0 < hi; r0 += fusedPanelRows {
		r1 := r0 + fusedPanelRows
		if r1 > hi {
			r1 = hi
		}
		pv := panel.RowsView(0, r1-r0)
		pv.Zero()
		for i := r0; i < r1; i++ {
			drow := pv.Row(i - r0)
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				wgt := c.Weights[p]
				src := h.Row(c.ColIdx[p])
				for j, v := range src {
					drow[j] += wgt * v
				}
			}
		}
		tensor.MatMulSplitRangeInto(dst.RowsView(r0, r1), h.RowsView(r0, r1), pv, w, 0, r1-r0)
	}
	tensor.PutMatrix(panel)
}

// AggTransformSplitInto is the parallel wrapper of
// AggTransformSplitRangeInto.
func (c *CSR) AggTransformSplitInto(dst, h, w *tensor.Matrix) {
	work := (c.NNZ() + 2*c.NRows*w.Cols) * h.Cols
	tensor.ParallelRows(c.NRows, work, func(lo, hi int) {
		c.AggTransformSplitRangeInto(dst, h, w, lo, hi)
	})
}

// Aggregate records out = A × h on the tape, propagating gradients
// through h but treating the adjacency weights as constants. This is the
// neighborhood-aggregation primitive all GNN layers build on.
func (t *Tape) Aggregate(a *CSR, h *Node) *Node {
	v := a.MatMul(h.Value)
	var out *Node
	out = t.op(v, func() {
		if !h.requiresGrad {
			return
		}
		a.addMatMulTrans(h.ensureGrad(), out.Grad)
	}, h)
	return out
}
