package autodiff

import (
	"math"

	"turbo/internal/tensor"
)

// LeakyReLU records c = x if x > 0 else slope·x, used by GAT attention.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	v := a.Value.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return slope * x
	})
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, x := range a.Value.Data {
			d := slope
			if x > 0 {
				d = 1
			}
			g.Data[i] += d * out.Grad.Data[i]
		}
	}, a)
	return out
}

// SegmentSoftmax records a softmax over groups of rows of an E×1 score
// vector: segments[k] lists the row indices belonging to group k (e.g.
// the incoming edges of one destination node in GAT edge attention).
// Rows not covered by any segment pass through as zeros.
func (t *Tape) SegmentSoftmax(a *Node, segments [][]int) *Node {
	if a.Value.Cols != 1 {
		panic("autodiff: SegmentSoftmax wants an E×1 score vector")
	}
	v := tensor.New(a.Value.Rows, 1)
	for _, seg := range segments {
		mx := math.Inf(-1)
		for _, i := range seg {
			if x := a.Value.Data[i]; x > mx {
				mx = x
			}
		}
		var sum float64
		for _, i := range seg {
			e := math.Exp(a.Value.Data[i] - mx)
			v.Data[i] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		for _, i := range seg {
			v.Data[i] /= sum
		}
	}
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for _, seg := range segments {
			var dot float64
			for _, i := range seg {
				dot += out.Grad.Data[i] * out.Value.Data[i]
			}
			for _, i := range seg {
				s := out.Value.Data[i]
				g.Data[i] += s * (out.Grad.Data[i] - dot)
			}
		}
	}, a)
	return out
}
