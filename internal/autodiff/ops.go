package autodiff

import (
	"math"

	"turbo/internal/tensor"
)

func anyGrad(nodes ...*Node) bool {
	for _, n := range nodes {
		if n.requiresGrad {
			return true
		}
	}
	return false
}

func (t *Tape) op(value *tensor.Matrix, backward func(), inputs ...*Node) *Node {
	n := &Node{Value: value}
	if anyGrad(inputs...) {
		n.requiresGrad = true
		n.backward = backward
	}
	return t.add(n)
}

// MatMul records c = a × b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := a.Value.MatMul(b.Value)
	var out *Node
	out = t.op(v, func() {
		g := out.Grad
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(g.MatMulTransB(b.Value))
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(a.Value.MatMulTransA(g))
		}
	}, a, b)
	return out
}

// Add records c = a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := a.Value.Add(b.Value)
	var out *Node
	out = t.op(v, func() {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(out.Grad)
		}
	}, a, b)
	return out
}

// Sub records c = a − b.
func (t *Tape) Sub(a, b *Node) *Node {
	v := a.Value.Sub(b.Value)
	var out *Node
	out = t.op(v, func() {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			b.ensureGrad().AddScaledInPlace(out.Grad, -1)
		}
	}, a, b)
	return out
}

// Mul records the element-wise product c = a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := a.Value.Mul(b.Value)
	var out *Node
	out = t.op(v, func() {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(out.Grad.Mul(b.Value))
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(out.Grad.Mul(a.Value))
		}
	}, a, b)
	return out
}

// Scale records c = s·a for a fixed scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := a.Value.Scale(s)
	var out *Node
	out = t.op(v, func() {
		if a.requiresGrad {
			a.ensureGrad().AddScaledInPlace(out.Grad, s)
		}
	}, a)
	return out
}

// AddRowVector records c = a + 1·vᵀ, broadcasting the 1×C bias v to rows.
func (t *Tape) AddRowVector(a, v *Node) *Node {
	val := a.Value.AddRowVector(v.Value)
	var out *Node
	out = t.op(val, func() {
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if v.requiresGrad {
			v.ensureGrad().AddInPlace(tensor.SumCols(out.Grad))
		}
	}, a, v)
	return out
}

// MulColVector records c[i,:] = a[i,:] · v[i], with v an N×1 column.
func (t *Tape) MulColVector(a, v *Node) *Node {
	val := a.Value.MulColVector(v.Value)
	var out *Node
	out = t.op(val, func() {
		g := out.Grad
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(g.MulColVector(v.Value))
		}
		if v.requiresGrad {
			gv := v.ensureGrad()
			for i := 0; i < a.Value.Rows; i++ {
				gv.Data[i] += tensor.Dot(g.Row(i), a.Value.Row(i))
			}
		}
	}, a, v)
	return out
}

// ReLU records c = max(0, a).
func (t *Tape) ReLU(a *Node) *Node {
	v := tensor.ReLU(a.Value)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, av := range a.Value.Data {
			if av > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}, a)
	return out
}

// Tanh records c = tanh(a).
func (t *Tape) Tanh(a *Node) *Node {
	v := tensor.Tanh(a.Value)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, tv := range out.Value.Data {
			g.Data[i] += out.Grad.Data[i] * (1 - tv*tv)
		}
	}, a)
	return out
}

// Sigmoid records c = σ(a).
func (t *Tape) Sigmoid(a *Node) *Node {
	v := tensor.Sigmoid(a.Value)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, sv := range out.Value.Data {
			g.Data[i] += out.Grad.Data[i] * sv * (1 - sv)
		}
	}, a)
	return out
}

// SoftmaxRows records row-wise softmax.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	v := tensor.SoftmaxRows(a.Value)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < v.Rows; i++ {
			srow := out.Value.Row(i)
			grow := out.Grad.Row(i)
			dot := tensor.Dot(grow, srow)
			dst := g.Row(i)
			for j, s := range srow {
				dst[j] += s * (grow[j] - dot)
			}
		}
	}, a)
	return out
}

// ConcatCols records c = [a ; b] side by side.
func (t *Tape) ConcatCols(a, b *Node) *Node {
	v := a.Value.ConcatCols(b.Value)
	var out *Node
	out = t.op(v, func() {
		g := out.Grad
		if a.requiresGrad {
			a.ensureGrad().AddInPlace(g.SliceCols(0, a.Value.Cols))
		}
		if b.requiresGrad {
			b.ensureGrad().AddInPlace(g.SliceCols(a.Value.Cols, g.Cols))
		}
	}, a, b)
	return out
}

// ConcatRows records c = a stacked on b.
func (t *Tape) ConcatRows(a, b *Node) *Node {
	v := a.Value.ConcatRows(b.Value)
	var out *Node
	out = t.op(v, func() {
		g := out.Grad
		if a.requiresGrad {
			ga := a.ensureGrad()
			for i := range ga.Data {
				ga.Data[i] += g.Data[i]
			}
		}
		if b.requiresGrad {
			gb := b.ensureGrad()
			off := len(a.Value.Data)
			for i := range gb.Data {
				gb.Data[i] += g.Data[off+i]
			}
		}
	}, a, b)
	return out
}

// SliceCols records c = a[:, from:to].
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	v := a.Value.SliceCols(from, to)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < v.Rows; i++ {
			src := out.Grad.Row(i)
			dst := g.Row(i)[from:to]
			for j, gv := range src {
				dst[j] += gv
			}
		}
	}, a)
	return out
}

// SelectRows records c = a[idx, :] (gather); the backward pass scatters.
func (t *Tape) SelectRows(a *Node, idx []int) *Node {
	v := a.Value.SelectRows(idx)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, r := range idx {
			dst := g.Row(r)
			src := out.Grad.Row(i)
			for j, gv := range src {
				dst[j] += gv
			}
		}
	}, a)
	return out
}

// SumRows records the N×1 column of row sums.
func (t *Tape) SumRows(a *Node) *Node {
	v := tensor.SumRows(a.Value)
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < a.Value.Rows; i++ {
			gi := out.Grad.Data[i]
			row := g.Row(i)
			for j := range row {
				row[j] += gi
			}
		}
	}, a)
	return out
}

// SumAll records the scalar sum of all elements.
func (t *Tape) SumAll(a *Node) *Node {
	v := tensor.New(1, 1)
	v.Data[0] = a.Value.Sum()
	var out *Node
	out = t.op(v, func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		gv := out.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += gv
		}
	}, a)
	return out
}

// MeanAll records the scalar mean of all elements.
func (t *Tape) MeanAll(a *Node) *Node {
	n := float64(len(a.Value.Data))
	if n == 0 {
		return t.Const(tensor.New(1, 1))
	}
	return t.Scale(t.SumAll(a), 1/n)
}

// Dropout records inverted dropout with keep-probability 1−rate. When
// rng is nil or rate <= 0 the input node is returned unchanged.
func (t *Tape) Dropout(a *Node, rate float64, rng *tensor.RNG) *Node {
	if rng == nil || rate <= 0 {
		return a
	}
	mask := tensor.New(a.Value.Rows, a.Value.Cols)
	scale := 1 / (1 - rate)
	for i := range mask.Data {
		if rng.Float64() >= rate {
			mask.Data[i] = scale
		}
	}
	return t.Mul(a, t.Const(mask))
}

// BCEWithLogits records the mean binary cross-entropy between logits
// (N×1) and labels (length N, values in {0,1}), computed in a numerically
// stable fused form: loss = mean(max(z,0) − z·y + log(1+e^{−|z|})).
func (t *Tape) BCEWithLogits(logits *Node, labels []float64) *Node {
	return t.WeightedBCEWithLogits(logits, labels, nil)
}

// WeightedBCEWithLogits is BCEWithLogits with optional per-example
// weights (nil means uniform). The loss is the weighted mean.
func (t *Tape) WeightedBCEWithLogits(logits *Node, labels, weights []float64) *Node {
	n := logits.Value.Rows
	if logits.Value.Cols != 1 || len(labels) != n {
		panic("autodiff: BCEWithLogits wants N×1 logits and N labels")
	}
	var wsum float64
	w := func(i int) float64 { return 1 }
	if weights != nil {
		if len(weights) != n {
			panic("autodiff: weights length mismatch")
		}
		w = func(i int) float64 { return weights[i] }
		for _, wi := range weights {
			wsum += wi
		}
	} else {
		wsum = float64(n)
	}
	if wsum == 0 {
		wsum = 1
	}
	v := tensor.New(1, 1)
	for i := 0; i < n; i++ {
		z := logits.Value.Data[i]
		y := labels[i]
		loss := math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		v.Data[0] += w(i) * loss
	}
	v.Data[0] /= wsum
	var out *Node
	out = t.op(v, func() {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		gs := out.Grad.Data[0] / wsum
		for i := 0; i < n; i++ {
			z := logits.Value.Data[i]
			g.Data[i] += gs * w(i) * (tensor.SigmoidScalar(z) - labels[i])
		}
	}, logits)
	return out
}
