package autodiff

import (
	"testing"

	"turbo/internal/tensor"
)

func fusedTestFixture(nRows, nCols, d int, seed uint64) (*CSR, *tensor.Matrix) {
	rng := tensor.NewRNG(seed)
	rows := make([][]int, nRows)
	weights := make([][]float64, nRows)
	for i := range rows {
		deg := rng.Intn(6)
		for k := 0; k < deg; k++ {
			rows[i] = append(rows[i], rng.Intn(nCols))
			weights[i] = append(weights[i], rng.NormFloat64())
		}
	}
	h := tensor.New(nCols, d)
	for i := range h.Data {
		h.Data[i] = rng.NormFloat64()
	}
	return NewCSR(nRows, nCols, rows, weights), h
}

func randW(rng *tensor.RNG, rows, cols int) *tensor.Matrix {
	w := tensor.New(rows, cols)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	return w
}

// TestAggTransformFusedBitwise pins the fused aggregate+transform kernel
// to the unfused pair: materialize A×H, then dense-multiply. Bitwise —
// the fusion must not change a single rounding.
func TestAggTransformFusedBitwise(t *testing.T) {
	// 100 rows crosses several 32-row panels including a ragged tail.
	c, h := fusedTestFixture(100, 80, 24, 41)
	rng := tensor.NewRNG(43)
	w1 := randW(rng, 24, 16)
	w2 := randW(rng, 24, 8)

	hn := tensor.New(c.NRows, h.Cols)
	c.MatMulInto(hn, h)
	want1 := tensor.New(c.NRows, w1.Cols)
	tensor.MatMulInto(want1, hn, w1)
	want2 := tensor.New(c.NRows, w2.Cols)
	tensor.MatMulInto(want2, hn, w2)

	got1 := tensor.New(c.NRows, w1.Cols)
	c.AggTransformInto(got1, h, w1)
	for i := range want1.Data {
		if got1.Data[i] != want1.Data[i] {
			t.Fatalf("fused element %d differs", i)
		}
	}

	got1.Zero()
	got2 := tensor.New(c.NRows, w2.Cols)
	c.AggTransform2Into(got1, got2, h, w1, w2)
	for i := range want1.Data {
		if got1.Data[i] != want1.Data[i] {
			t.Fatalf("fused2 first output element %d differs", i)
		}
	}
	for i := range want2.Data {
		if got2.Data[i] != want2.Data[i] {
			t.Fatalf("fused2 second output element %d differs", i)
		}
	}

	// caller-partitioned ranges must agree with the whole-matrix call
	gotR := tensor.New(c.NRows, w1.Cols)
	for lo := 0; lo < c.NRows; lo += 23 {
		hi := lo + 23
		if hi > c.NRows {
			hi = c.NRows
		}
		c.AggTransformRangeInto(gotR, h, w1, lo, hi)
	}
	for i := range want1.Data {
		if gotR.Data[i] != want1.Data[i] {
			t.Fatalf("fused range element %d differs", i)
		}
	}
}

// TestAggTransformSplitFusedBitwise pins the GraphSAGE-shaped fusion:
// dst = [H | A×H] × W.
func TestAggTransformSplitFusedBitwise(t *testing.T) {
	c, h := fusedTestFixture(90, 90, 20, 47)
	rng := tensor.NewRNG(53)
	w := randW(rng, 40, 12)

	hn := tensor.New(c.NRows, h.Cols)
	c.MatMulInto(hn, h)
	want := tensor.New(c.NRows, w.Cols)
	tensor.MatMulSplitInto(want, h, hn, w)

	got := tensor.New(c.NRows, w.Cols)
	c.AggTransformSplitInto(got, h, w)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fused split element %d differs", i)
		}
	}
}

func BenchmarkFusedAggTransform(b *testing.B) {
	c, h := fusedTestFixture(2048, 2048, 64, 61)
	rng := tensor.NewRNG(67)
	w := randW(rng, 64, 32)
	dst := tensor.New(c.NRows, w.Cols)
	hn := tensor.New(c.NRows, h.Cols)

	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hn.Zero()
			c.MatMulInto(hn, h)
			dst.Zero()
			tensor.MatMulInto(dst, hn, w)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst.Zero()
			c.AggTransformInto(dst, h, w)
		}
	})
}
