package autodiff

import (
	"testing"

	"turbo/internal/tensor"
)

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	x := tp.Param(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar Backward")
		}
	}()
	tp.Backward(x)
}

func TestConstGetsNoGradient(t *testing.T) {
	tp := NewTape()
	c := tp.Const(tensor.FromRows([][]float64{{1, 2}}))
	p := tp.Param(tensor.FromRows([][]float64{{3}, {4}}))
	out := tp.SumAll(tp.MatMul(c, p))
	tp.Backward(out)
	if c.Grad != nil {
		t.Fatal("const received a gradient buffer")
	}
	if p.Grad == nil || p.Grad.Data[0] != 1 || p.Grad.Data[1] != 2 {
		t.Fatalf("param grad wrong: %v", p.Grad)
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	v := tensor.FromRows([][]float64{{2}})
	g := tensor.New(1, 1)
	for i := 0; i < 3; i++ {
		tp := NewTape()
		x := tp.Leaf(v, g)
		tp.Backward(tp.Scale(x, 5))
	}
	if g.Data[0] != 15 {
		t.Fatalf("grad should accumulate to 15, got %v", g.Data[0])
	}
}

func TestDiamondGraphAccumulation(t *testing.T) {
	// y = x*x + x*x through two separate paths: dy/dx = 4x.
	v := tensor.FromRows([][]float64{{3}})
	g := tensor.New(1, 1)
	tp := NewTape()
	x := tp.Leaf(v, g)
	a := tp.Mul(x, x)
	b := tp.Mul(x, x)
	tp.Backward(tp.SumAll(tp.Add(a, b)))
	if g.Data[0] != 12 {
		t.Fatalf("diamond grad: want 12, got %v", g.Data[0])
	}
}

func TestLeafShapeMismatchPanics(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.Leaf(tensor.New(2, 2), tensor.New(1, 2))
}

func TestBackwardWithSeed(t *testing.T) {
	v := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	g := tensor.New(2, 2)
	tp := NewTape()
	x := tp.Leaf(v, g)
	y := tp.Scale(x, 3)
	seed := tensor.FromRows([][]float64{{1, 0}, {0, 2}})
	tp.BackwardWithSeed(y, seed)
	want := tensor.FromRows([][]float64{{3, 0}, {0, 6}})
	if !g.Equal(want, 0) {
		t.Fatalf("seeded grad: %v", g)
	}
}

func TestTapeResetAndLen(t *testing.T) {
	tp := NewTape()
	tp.Const(tensor.New(1, 1))
	tp.Const(tensor.New(1, 1))
	if tp.Len() != 2 {
		t.Fatalf("len %d", tp.Len())
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatalf("len after reset %d", tp.Len())
	}
}

func TestDropoutEvalModeIsIdentity(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{1, 2, 3}}))
	if tp.Dropout(x, 0.5, nil) != x {
		t.Fatal("nil rng must return input unchanged")
	}
	if tp.Dropout(x, 0, tensor.NewRNG(1)) != x {
		t.Fatal("rate 0 must return input unchanged")
	}
}

func TestDropoutScalesKeptUnits(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{1, 1, 1, 1, 1, 1, 1, 1}}))
	d := tp.Dropout(x, 0.5, tensor.NewRNG(3))
	for _, v := range d.Value.Data {
		if v != 0 && v != 2 {
			t.Fatalf("inverted dropout value should be 0 or 1/(1-rate): %v", v)
		}
	}
}

func TestBCEWithLogitsKnownValue(t *testing.T) {
	tp := NewTape()
	logits := tp.Const(tensor.FromRows([][]float64{{0}, {0}}))
	loss := tp.BCEWithLogits(logits, []float64{1, 0})
	// -log(0.5) for both examples.
	want := 0.6931471805599453
	if got := loss.Scalar(); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("bce at 0 logits: %v", got)
	}
}

func TestBCEWithLogitsValidatesShapes(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.BCEWithLogits(tp.Const(tensor.New(2, 2)), []float64{1, 0})
}

func TestSegmentSoftmaxUncoveredRowsAreZero(t *testing.T) {
	tp := NewTape()
	x := tp.Const(tensor.FromRows([][]float64{{1}, {2}, {3}}))
	s := tp.SegmentSoftmax(x, [][]int{{0, 1}})
	if s.Value.Data[2] != 0 {
		t.Fatalf("uncovered row should be 0, got %v", s.Value.Data[2])
	}
	sum := s.Value.Data[0] + s.Value.Data[1]
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("segment should sum to 1: %v", sum)
	}
}

func TestCSRMatMulKnownValues(t *testing.T) {
	csr := NewCSR(2, 3, [][]int{{0, 2}, {1}}, [][]float64{{1, 2}, {3}})
	h := tensor.FromRows([][]float64{{1, 0}, {0, 1}, {2, 2}})
	got := csr.MatMul(h)
	want := tensor.FromRows([][]float64{{5, 4}, {0, 3}})
	if !got.Equal(want, 0) {
		t.Fatalf("csr matmul: %v", got)
	}
	if csr.NNZ() != 3 {
		t.Fatalf("nnz %d", csr.NNZ())
	}
}

func TestCSRMatMulTransMatchesDense(t *testing.T) {
	csr := NewCSR(3, 4,
		[][]int{{0, 1}, {2, 3}, {1}},
		[][]float64{{0.5, 1.5}, {2, 1}, {1}})
	dense := tensor.New(3, 4)
	for i := 0; i < 3; i++ {
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			dense.Set(i, csr.ColIdx[p], csr.Weights[p])
		}
	}
	g := tensor.RandNormal(3, 2, 1, tensor.NewRNG(5))
	got := csr.MatMulTrans(g)
	want := dense.MatMulTransA(g)
	if !got.Equal(want, 1e-12) {
		t.Fatal("csr transpose product differs from dense")
	}
}
