package autodiff

import (
	"math"
	"testing"

	"turbo/internal/tensor"
)

// numericGrad estimates d loss / d x[i] by central differences, where
// loss is recomputed from scratch by fn for each perturbation.
func numericGrad(x *tensor.Matrix, fn func() float64) *tensor.Matrix {
	const eps = 1e-6
	g := tensor.New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := fn()
		x.Data[i] = orig - eps
		down := fn()
		x.Data[i] = orig
		g.Data[i] = (up - down) / (2 * eps)
	}
	return g
}

// checkGrad builds the scalar loss with build (given fresh leaf nodes for
// each input), runs Backward, and compares analytic gradients with
// central differences for every input.
func checkGrad(t *testing.T, name string, inputs []*tensor.Matrix, build func(tp *Tape, xs []*Node) *Node) {
	t.Helper()
	grads := make([]*tensor.Matrix, len(inputs))
	forward := func() float64 {
		tp := NewTape()
		xs := make([]*Node, len(inputs))
		for i, in := range inputs {
			grads[i] = tensor.New(in.Rows, in.Cols)
			xs[i] = tp.Leaf(in, grads[i])
		}
		return build(tp, xs).Scalar()
	}

	// Analytic pass.
	tp := NewTape()
	xs := make([]*Node, len(inputs))
	for i, in := range inputs {
		grads[i] = tensor.New(in.Rows, in.Cols)
		xs[i] = tp.Leaf(in, grads[i])
	}
	out := build(tp, xs)
	tp.Backward(out)
	analytic := make([]*tensor.Matrix, len(inputs))
	for i := range inputs {
		analytic[i] = grads[i].Clone()
	}

	for i, in := range inputs {
		numeric := numericGrad(in, forward)
		for k := range in.Data {
			a, n := analytic[i].Data[k], numeric.Data[k]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(a)+math.Abs(n)) {
				t.Fatalf("%s: input %d element %d: analytic %v vs numeric %v", name, i, k, a, n)
			}
		}
	}
}

func randM(rows, cols int, seed uint64) *tensor.Matrix {
	return tensor.RandNormal(rows, cols, 0.8, tensor.NewRNG(seed))
}

func TestGradMatMul(t *testing.T) {
	checkGrad(t, "matmul", []*tensor.Matrix{randM(3, 4, 1), randM(4, 2, 2)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.MatMul(xs[0], xs[1])))
		})
}

func TestGradAddSubMul(t *testing.T) {
	checkGrad(t, "add-sub-mul", []*tensor.Matrix{randM(3, 3, 3), randM(3, 3, 4), randM(3, 3, 5)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Mul(tp.Add(xs[0], xs[1]), tp.Sub(xs[1], xs[2])))
		})
}

func TestGradScale(t *testing.T) {
	checkGrad(t, "scale", []*tensor.Matrix{randM(2, 5, 6)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Scale(xs[0], -2.5))
		})
}

func TestGradAddRowVector(t *testing.T) {
	checkGrad(t, "addRowVector", []*tensor.Matrix{randM(4, 3, 7), randM(1, 3, 8)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.AddRowVector(xs[0], xs[1])))
		})
}

func TestGradMulColVector(t *testing.T) {
	checkGrad(t, "mulColVector", []*tensor.Matrix{randM(4, 3, 9), randM(4, 1, 10)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.MulColVector(xs[0], xs[1])))
		})
}

func TestGradActivations(t *testing.T) {
	// Shift values away from the ReLU kink to keep finite differences
	// meaningful.
	x := randM(3, 4, 11)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] += 0.1
		}
	}
	checkGrad(t, "relu", []*tensor.Matrix{x},
		func(tp *Tape, xs []*Node) *Node { return tp.SumAll(tp.ReLU(xs[0])) })
	checkGrad(t, "tanh", []*tensor.Matrix{randM(3, 4, 12)},
		func(tp *Tape, xs []*Node) *Node { return tp.SumAll(tp.Tanh(xs[0])) })
	checkGrad(t, "sigmoid", []*tensor.Matrix{randM(3, 4, 13)},
		func(tp *Tape, xs []*Node) *Node { return tp.SumAll(tp.Sigmoid(xs[0])) })
	y := randM(3, 4, 14)
	for i := range y.Data {
		if math.Abs(y.Data[i]) < 0.05 {
			y.Data[i] += 0.1
		}
	}
	checkGrad(t, "leakyReLU", []*tensor.Matrix{y},
		func(tp *Tape, xs []*Node) *Node { return tp.SumAll(tp.LeakyReLU(xs[0], 0.2)) })
}

func TestGradSoftmaxRows(t *testing.T) {
	checkGrad(t, "softmaxRows", []*tensor.Matrix{randM(3, 5, 15), randM(3, 5, 16)},
		func(tp *Tape, xs []*Node) *Node {
			// Weighted sum so the gradient is non-trivial per element.
			return tp.SumAll(tp.Mul(tp.SoftmaxRows(xs[0]), xs[1]))
		})
}

func TestGradConcatSlice(t *testing.T) {
	checkGrad(t, "concatCols+slice", []*tensor.Matrix{randM(3, 2, 17), randM(3, 3, 18)},
		func(tp *Tape, xs []*Node) *Node {
			c := tp.ConcatCols(xs[0], xs[1])
			return tp.SumAll(tp.Tanh(tp.SliceCols(c, 1, 4)))
		})
	checkGrad(t, "concatRows", []*tensor.Matrix{randM(2, 3, 19), randM(4, 3, 20)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.ConcatRows(xs[0], xs[1])))
		})
}

func TestGradSelectRows(t *testing.T) {
	checkGrad(t, "selectRows", []*tensor.Matrix{randM(5, 3, 21)},
		func(tp *Tape, xs []*Node) *Node {
			// Repeated index exercises scatter-add accumulation.
			return tp.SumAll(tp.Tanh(tp.SelectRows(xs[0], []int{0, 2, 2, 4})))
		})
}

func TestGradSumRowsAndAll(t *testing.T) {
	checkGrad(t, "sumRows", []*tensor.Matrix{randM(4, 3, 22)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.SumRows(xs[0])))
		})
	checkGrad(t, "meanAll", []*tensor.Matrix{randM(4, 3, 23)},
		func(tp *Tape, xs []*Node) *Node { return tp.MeanAll(xs[0]) })
}

func TestGradSegmentSoftmax(t *testing.T) {
	segments := [][]int{{0, 1, 2}, {3, 4}, {5}}
	checkGrad(t, "segmentSoftmax", []*tensor.Matrix{randM(6, 1, 24), randM(6, 1, 25)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Mul(tp.SegmentSoftmax(xs[0], segments), xs[1]))
		})
}

func TestGradAggregate(t *testing.T) {
	csr := NewCSR(3, 4,
		[][]int{{0, 1}, {2}, {0, 3}},
		[][]float64{{0.5, 0.5}, {1}, {0.3, 0.7}})
	checkGrad(t, "aggregate", []*tensor.Matrix{randM(4, 3, 26)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.SumAll(tp.Tanh(tp.Aggregate(csr, xs[0])))
		})
}

func TestGradBCEWithLogits(t *testing.T) {
	labels := []float64{1, 0, 1, 0}
	checkGrad(t, "bce", []*tensor.Matrix{randM(4, 1, 27)},
		func(tp *Tape, xs []*Node) *Node { return tp.BCEWithLogits(xs[0], labels) })
	weights := []float64{1, 2, 0.5, 3}
	checkGrad(t, "weightedBCE", []*tensor.Matrix{randM(4, 1, 28)},
		func(tp *Tape, xs []*Node) *Node {
			return tp.WeightedBCEWithLogits(xs[0], labels, weights)
		})
}

// TestGradDeepComposition checks a two-layer network end to end — the
// shape every model in the repo reduces to.
func TestGradDeepComposition(t *testing.T) {
	checkGrad(t, "two-layer",
		[]*tensor.Matrix{randM(5, 4, 29), randM(4, 6, 30), randM(1, 6, 31), randM(6, 1, 32)},
		func(tp *Tape, xs []*Node) *Node {
			h := tp.Tanh(tp.AddRowVector(tp.MatMul(xs[0], xs[1]), xs[2]))
			return tp.BCEWithLogits(tp.MatMul(h, xs[3]), []float64{1, 0, 0, 1, 1})
		})
}
