package persist

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// openTestWAL opens a WAL with test-friendly defaults.
func openTestWAL(t testing.TB, dir string, cfg Config) *WAL {
	t.Helper()
	cfg = cfg.withDefaults()
	cfg.Logf = t.Logf
	w, err := openWAL(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

type rec struct {
	lsn     uint64
	kind    byte
	payload string
}

func replayAll(t testing.TB, w *WAL, after uint64) ([]rec, ReplayStats) {
	t.Helper()
	var got []rec
	st, err := w.Replay(after, func(lsn uint64, kind byte, payload []byte) error {
		got = append(got, rec{lsn, kind, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), Config{Fsync: FsyncNone})
	defer w.Close()
	for i := 0; i < 10; i++ {
		kind := RecordLog
		if i%3 == 0 {
			kind = RecordTxn
		}
		lsn, err := w.Append(kind, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d want %d", lsn, i+1)
		}
	}
	got, st := replayAll(t, w, 0)
	if len(got) != 10 || st.Corrupt != 0 {
		t.Fatalf("replayed %d records, %d corrupt", len(got), st.Corrupt)
	}
	for i, r := range got {
		if r.lsn != uint64(i+1) || r.payload != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d: %+v", i, r)
		}
		wantKind := RecordLog
		if i%3 == 0 {
			wantKind = RecordTxn
		}
		if r.kind != wantKind {
			t.Fatalf("record %d kind %d want %d", i, r.kind, wantKind)
		}
	}
	// Replay after an LSN skips the prefix.
	tail, _ := replayAll(t, w, 7)
	if len(tail) != 3 || tail[0].lsn != 8 {
		t.Fatalf("tail after 7: %+v", tail)
	}
}

func TestWALRotationAndReopenContinuity(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, Config{Fsync: FsyncNone, SegmentSize: 64})
	for i := 0; i < 20; i++ {
		if _, err := w.Append(RecordLog, bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation, got %d segments", w.SegmentCount())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, Config{Fsync: FsyncNone, SegmentSize: 64})
	defer w2.Close()
	if got := w2.LastLSN(); got != 20 {
		t.Fatalf("reopened LastLSN %d want 20", got)
	}
	lsn, err := w2.Append(RecordLog, []byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 21 {
		t.Fatalf("post-reopen lsn %d want 21", lsn)
	}
	got, st := replayAll(t, w2, 0)
	if len(got) != 21 || st.Corrupt != 0 {
		t.Fatalf("replayed %d records, %d corrupt", len(got), st.Corrupt)
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, Config{Fsync: FsyncNone})
	for i := 0; i < 3; i++ {
		if _, err := w.Append(RecordLog, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 4 bytes, as if the process
	// died mid-write.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v err %v", segs, err)
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, Config{Fsync: FsyncNone})
	defer w2.Close()
	if w2.TornBytes() == 0 {
		t.Fatal("torn bytes not reported")
	}
	if got := w2.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after torn tail %d want 2", got)
	}
	got, st := replayAll(t, w2, 0)
	if len(got) != 2 || st.Corrupt != 0 {
		t.Fatalf("replayed %d records (corrupt %d) want 2 clean", len(got), st.Corrupt)
	}
	// The torn LSN is reused by the next append.
	if lsn, _ := w2.Append(RecordLog, []byte("retry")); lsn != 3 {
		t.Fatalf("lsn %d want 3", lsn)
	}
}

func TestWALCorruptRecordStopsReplayWithCount(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, Config{Fsync: FsyncNone})
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.Append(RecordLog, []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	recLen := frameOverhead + 8
	b[walHeaderLen+recLen+frameOverhead+2] ^= 0xff
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []rec
	st, err := w.Replay(0, func(lsn uint64, kind byte, payload []byte) error {
		got = append(got, rec{lsn, kind, string(payload)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || st.Corrupt != 1 {
		t.Fatalf("replayed %d (corrupt %d); want 1 record then stop", len(got), st.Corrupt)
	}
}

func TestWALTruncateBeforeKeepsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, Config{Fsync: FsyncNone, SegmentSize: 64})
	defer w.Close()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(RecordLog, bytes.Repeat([]byte{'x'}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.SegmentCount()
	if before < 3 {
		t.Fatalf("want ≥3 segments, got %d", before)
	}
	removed, err := w.TruncateBefore(w.LastLSN())
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || w.SegmentCount() != before-removed {
		t.Fatalf("removed %d, segments %d→%d", removed, before, w.SegmentCount())
	}
	if w.SegmentCount() < 1 {
		t.Fatal("active segment must survive")
	}
	// Everything still in the remaining segments replays.
	got, _ := replayAll(t, w, 0)
	for i := 1; i < len(got); i++ {
		if got[i].lsn != got[i-1].lsn+1 {
			t.Fatalf("LSN gap after truncation: %d then %d", got[i-1].lsn, got[i].lsn)
		}
	}
	if len(got) == 0 || got[len(got)-1].lsn != 30 {
		t.Fatalf("tail record missing: %+v", got)
	}
}

func TestWALAppendBatch(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), Config{Fsync: FsyncNone})
	defer w.Close()
	kinds := []byte{RecordLog, RecordTxn, RecordLog}
	payloads := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	first, err := w.AppendBatch(kinds, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || w.LastLSN() != 3 {
		t.Fatalf("first %d last %d", first, w.LastLSN())
	}
	got, _ := replayAll(t, w, 0)
	if len(got) != 3 || got[2].payload != "c" {
		t.Fatalf("batch replay %+v", got)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "none": FsyncNone,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() %q want %q", got.String(), s)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestWALFsyncIntervalBackgroundLoop(t *testing.T) {
	// Just exercises the background syncer start/append/stop path.
	dir := t.TempDir()
	w := openTestWAL(t, dir, Config{Fsync: FsyncInterval, FsyncInterval: time.Millisecond})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(RecordLog, []byte("tick")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openTestWAL(t, dir, Config{Fsync: FsyncNone})
	defer w2.Close()
	if got, _ := replayAll(t, w2, 0); len(got) != 5 {
		t.Fatalf("replayed %d want 5", len(got))
	}
}
