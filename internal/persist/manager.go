package persist

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"turbo/internal/behavior"
)

// Applier is the state the Manager journals and recovers — implemented
// by server.BNServer. RestoreCheckpoint installs a full checkpoint;
// ReplayLog and ReplayTxn re-apply single WAL records (without
// re-journaling them).
type Applier interface {
	RestoreCheckpoint(st *State) error
	ReplayLog(l behavior.Log)
	ReplayTxn(u behavior.UserID)
}

// Manager ties the WAL and the checkpoint store together around one
// invariant: under m.mu, a WAL append and its in-memory application are
// one atomic step, and a checkpoint capture reads the state together
// with the exact LSN it reflects. So a checkpoint never misses an event
// that is absent from the WAL tail, and never includes one the WAL would
// replay again — recovery applies every event exactly once.
//
// WAL append failures do not block ingestion: the in-memory state still
// advances, the loss of durability for that event is logged and counted
// (Metrics.AppendErrors).
type Manager struct {
	cfg  Config
	wal  *WAL
	logf func(string, ...any)

	mu     sync.Mutex
	source func() *State
	buf    []byte // reused append scratch

	ckptMu   sync.Mutex // serializes CheckpointNow
	lastCkpt struct {
		sync.Mutex
		lsn uint64
		at  time.Time
	}

	metrics Metrics
}

// Open initializes the data directory (creating wal/ and checkpoints/)
// and opens the WAL, truncating any torn tail left by a crash.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: Config.Dir is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: data dir: %w", err)
	}
	wal, err := openWAL(filepath.Join(cfg.Dir, "wal"), cfg)
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, wal: wal, logf: logf}, nil
}

// SetMetrics installs telemetry handles (any field may be nil) on the
// manager and its WAL. Call before ingestion starts.
func (m *Manager) SetMetrics(mt Metrics) {
	m.metrics = mt
	m.wal.metrics = mt
}

// SetSource installs the state-capture callback used by CheckpointNow.
// The callback runs under m.mu, so it observes a state exactly
// consistent with the WAL position.
func (m *Manager) SetSource(fn func() *State) {
	m.mu.Lock()
	m.source = fn
	m.mu.Unlock()
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.cfg.Dir }

// WAL exposes the underlying log (tests and benchmarks).
func (m *Manager) WAL() *WAL { return m.wal }

// AppendLog journals one behavior log and then runs apply (the
// in-memory ingestion) under the same lock. apply always runs, even
// when the journal write fails.
func (m *Manager) AppendLog(l behavior.Log, apply func()) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	m.buf, err = l.EncodeBinary(m.buf[:0])
	if err == nil {
		_, err = m.wal.Append(RecordLog, m.buf)
	}
	m.noteAppendErr(err)
	apply()
	return err
}

// AppendLogBatch journals a batch of logs as consecutive records (one
// fsync under FsyncAlways) and then runs apply.
func (m *Manager) AppendLogBatch(logs []behavior.Log, apply func()) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := make([]byte, 0, len(logs))
	payloads := make([][]byte, 0, len(logs))
	var err error
	for _, l := range logs {
		p, encErr := l.EncodeBinary(nil)
		if encErr != nil {
			err = encErr
			continue
		}
		kinds = append(kinds, RecordLog)
		payloads = append(payloads, p)
	}
	if len(kinds) > 0 {
		if _, aerr := m.wal.AppendBatch(kinds, payloads); aerr != nil {
			err = aerr
		}
	}
	m.noteAppendErr(err)
	apply()
	return err
}

// AppendTxn journals one transaction registration and runs apply.
func (m *Manager) AppendTxn(u behavior.UserID, apply func()) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	payload := binary.LittleEndian.AppendUint32(nil, uint32(u))
	_, err := m.wal.Append(RecordTxn, payload)
	m.noteAppendErr(err)
	apply()
	return err
}

func (m *Manager) noteAppendErr(err error) {
	if err == nil {
		return
	}
	inc(m.metrics.AppendErrors)
	m.logf("persist: wal append failed (event applied in memory, durability lost): %v", err)
}

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// CheckpointLoaded reports whether a checkpoint was restored;
	// CheckpointLSN is its WAL position.
	CheckpointLoaded bool
	CheckpointLSN    uint64
	// ReplayedLogs and ReplayedTxns count WAL records re-applied.
	ReplayedLogs int
	ReplayedTxns int
	// CorruptRecords counts WAL records dropped as torn or corrupt
	// during replay (plus undecodable payloads).
	CorruptRecords int
	// LastLSN is the WAL position after recovery.
	LastLSN uint64
}

// Recover rebuilds app from disk: newest valid checkpoint first, then
// the WAL tail (records with LSN beyond the checkpoint). Corrupt WAL
// payloads are skipped with a warning, never an error — losing the torn
// tail of the last segment is the expected crash shape.
func (m *Manager) Recover(app Applier) (RecoveryStats, error) {
	var rs RecoveryStats
	st, err := loadLatestCheckpoint(m.checkpointDir(), m.logf)
	if err != nil {
		return rs, err
	}
	var after uint64
	if st != nil {
		if err := app.RestoreCheckpoint(st); err != nil {
			return rs, fmt.Errorf("persist: restore checkpoint: %w", err)
		}
		rs.CheckpointLoaded = true
		rs.CheckpointLSN = st.WALLSN
		after = st.WALLSN
		m.lastCkpt.Lock()
		m.lastCkpt.lsn = st.WALLSN
		m.lastCkpt.at = st.CapturedAt
		m.lastCkpt.Unlock()
	}
	replay, err := m.wal.Replay(after, func(lsn uint64, kind byte, payload []byte) error {
		switch kind {
		case RecordLog:
			l, err := behavior.DecodeBehavior(payload)
			if err != nil {
				rs.CorruptRecords++
				m.logf("persist: recovery: dropping undecodable log record lsn=%d: %v", lsn, err)
				return nil
			}
			app.ReplayLog(l)
			rs.ReplayedLogs++
		case RecordTxn:
			if len(payload) != 4 {
				rs.CorruptRecords++
				m.logf("persist: recovery: dropping malformed txn record lsn=%d (%d bytes)", lsn, len(payload))
				return nil
			}
			app.ReplayTxn(behavior.UserID(binary.LittleEndian.Uint32(payload)))
			rs.ReplayedTxns++
		default:
			rs.CorruptRecords++
			m.logf("persist: recovery: dropping record lsn=%d of unknown kind %d", lsn, kind)
		}
		return nil
	})
	if err != nil {
		return rs, err
	}
	rs.CorruptRecords += replay.Corrupt
	rs.LastLSN = m.wal.LastLSN()
	add(m.metrics.Replayed, int64(rs.ReplayedLogs+rs.ReplayedTxns))
	add(m.metrics.CorruptRecords, int64(rs.CorruptRecords))
	return rs, nil
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	// LSN is the WAL position the checkpoint covers.
	LSN uint64
	// Path and Bytes locate and size the written file.
	Path  string
	Bytes int64
	// Took is capture + write + truncation time.
	Took time.Duration
	// TruncatedSegments is how many covered WAL segments were deleted.
	TruncatedSegments int
}

func (m *Manager) checkpointDir() string { return filepath.Join(m.cfg.Dir, "checkpoints") }

// CheckpointNow captures the current state (under the append lock, so
// the snapshot is exact), writes it atomically, truncates WAL segments
// it covers and prunes old checkpoint files. Concurrent calls are
// serialized; appends are only blocked during the in-memory capture,
// not during the disk write.
func (m *Manager) CheckpointNow() (CheckpointInfo, error) {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	start := time.Now()

	m.mu.Lock()
	source := m.source
	if source == nil {
		m.mu.Unlock()
		return CheckpointInfo{}, fmt.Errorf("persist: no checkpoint source installed")
	}
	st := source()
	st.WALLSN = m.wal.LastLSN()
	m.mu.Unlock()

	if st.CapturedAt.IsZero() {
		st.CapturedAt = start
	}
	// The WAL tail up to the cut must be durable before the checkpoint
	// claims to cover it (TruncateBefore deletes those records).
	if err := m.wal.Sync(); err != nil {
		inc(m.metrics.CheckpointErrors)
		return CheckpointInfo{}, err
	}
	path, n, err := writeCheckpoint(m.checkpointDir(), st)
	if err != nil {
		inc(m.metrics.CheckpointErrors)
		return CheckpointInfo{}, err
	}
	removed, err := m.wal.TruncateBefore(st.WALLSN)
	if err != nil {
		m.logf("persist: wal truncation after checkpoint: %v", err)
	}
	pruneCheckpoints(m.checkpointDir(), m.cfg.KeepCheckpoints, m.logf)

	took := time.Since(start)
	observe(m.metrics.CheckpointSeconds, took)
	inc(m.metrics.Checkpoints)
	m.lastCkpt.Lock()
	m.lastCkpt.lsn = st.WALLSN
	m.lastCkpt.at = st.CapturedAt
	m.lastCkpt.Unlock()
	return CheckpointInfo{LSN: st.WALLSN, Path: path, Bytes: n, Took: took, TruncatedSegments: removed}, nil
}

// LastCheckpoint returns the LSN and capture time of the most recent
// checkpoint (written or recovered); zero values if none.
func (m *Manager) LastCheckpoint() (uint64, time.Time) {
	m.lastCkpt.Lock()
	defer m.lastCkpt.Unlock()
	return m.lastCkpt.lsn, m.lastCkpt.at
}

// Run writes a checkpoint every interval until ctx is done, then writes
// one final checkpoint so a clean shutdown restarts with an empty WAL
// tail. Errors are logged and counted, never fatal.
func (m *Manager) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, err := m.CheckpointNow(); err != nil {
				m.logf("persist: final checkpoint: %v", err)
			}
			return
		case <-ticker.C:
			if _, err := m.CheckpointNow(); err != nil {
				m.logf("persist: periodic checkpoint: %v", err)
			}
		}
	}
}

// Close syncs and closes the WAL.
func (m *Manager) Close() error {
	return m.wal.Close()
}
